package graphbench_test

// One benchmark per table and figure of the paper's evaluation section,
// plus ablations for the design choices the package docs call out. Each
// benchmark regenerates its artifact from fresh simulated runs and
// prints it once, so `go test -bench=. -benchmem` reproduces the whole
// evaluation.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphbench/internal/blogel"
	"graphbench/internal/bsp"
	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/graph"
	"graphbench/internal/graphx"
	"graphbench/internal/haloop"
	"graphbench/internal/harness"
	"graphbench/internal/partition"
	"graphbench/internal/plan"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
	"graphbench/internal/snapshot"
)

// benchScale keeps full-grid artifacts fast; resource accounting is
// scale-invariant, so results match the default-scale harness.
const benchScale = 400_000

// messagePlaneScale sizes the skewed power-law fixture shared by
// BenchmarkMessagePlane and BenchmarkParallelSpeedup/Sharded: ~20k
// vertices and ~750k edges, large enough that a superstep's working
// set (inbox arena, combiner stamps, send buckets) spills the fast
// caches — the regime the message plane exists for.
const messagePlaneScale = 2000

// messagePlaneGraph generates that fixture once per process.
var messagePlaneGraph = sync.OnceValue(func() *graph.Graph {
	return datasets.Generate(datasets.Twitter, datasets.Options{Scale: messagePlaneScale, Seed: 1})
})

var printed sync.Map

// emit prints an artifact once per process, so bench output carries the
// regenerated tables without repeating them per b.N iteration.
func emit(name, out string) {
	if _, done := printed.LoadOrStore(name, true); !done {
		fmt.Printf("\n%s\n", out)
	}
}

func runner() *core.Runner { return core.NewRunner(benchScale, 1) }

func BenchmarkTable1Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("t1", harness.Table1Systems())
	}
}

func BenchmarkTable2Dimensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("t2", harness.Table2Dimensions())
	}
}

func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("t3", harness.Table3Datasets(benchScale, 1))
	}
}

func BenchmarkTable4Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("t4", harness.Table4Replication(benchScale, 1))
	}
}

func BenchmarkTable5Partitions(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("t5", harness.Table5Partitions(r))
	}
}

func BenchmarkTable6IterTime(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("t6", harness.Table6IterTime(r))
	}
}

func BenchmarkTable7ClueWeb(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("t7", harness.Table7ClueWeb(r))
	}
}

func BenchmarkTable8GiraphMemory(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("t8", harness.Table8GiraphMemory(r))
	}
}

func BenchmarkTable9COST(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("t9", harness.Table9COST(r))
	}
}

func BenchmarkTable10WorkloadScaling(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("t10", harness.Table10WorkloadScaling(r))
	}
}

func BenchmarkFigure1Cores(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f1", harness.Figure1Cores(r))
	}
}

func BenchmarkFigure2PartitionSweep(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f2", harness.Figure2PartitionSweep(r))
	}
}

func BenchmarkFigure3BlogelNoHDFS(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f3", harness.Figure3BlogelNoHDFS(r))
	}
}

func BenchmarkFigure4ApproxPR(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f4", harness.Figure4ApproxPR(r))
	}
}

func BenchmarkFigure5Twitter(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f5", harness.Figure5Twitter(r))
	}
}

func BenchmarkFigure6PageRank(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f6", harness.Figure6PageRank(r))
	}
}

func BenchmarkFigure7KHop(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f7", harness.Figure7KHop(r))
	}
}

func BenchmarkFigure8SSSP(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f8", harness.Figure8SSSP(r))
	}
}

func BenchmarkFigure9WCC(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f9", harness.Figure9WCC(r))
	}
}

func BenchmarkFigure10AsyncMemory(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f10", harness.Figure10AsyncMemory(r))
	}
}

func BenchmarkFigure11Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("f11", harness.Figure11Imbalance(1))
	}
}

func BenchmarkFigure12Vertica(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f12", harness.Figure12Vertica(r))
	}
}

func BenchmarkFigure13VerticaResources(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit("f13", harness.Figure13VerticaResources(r))
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationCombiner quantifies Giraph's message combiner.
func BenchmarkAblationCombiner(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.Dataset(datasets.Twitter)
		w := engine.NewPageRankIters(10)
		with := pregel.New().Run(sim.NewSize(16), d, w, engine.Options{})
		without := pregel.New().Run(sim.NewSize(16), d, w, engine.Options{DisableCombiner: true})
		emit("ab1", fmt.Sprintf(
			"Ablation: Giraph combiner (PageRank x10, Twitter, 16 machines)\n"+
				"  with combiner:    exec %.0fs, network %d GB\n"+
				"  without combiner: exec %.0fs, network %d GB\n",
			with.Exec, with.NetBytes>>30, without.Exec, without.NetBytes>>30))
	}
}

// BenchmarkAblationVoronoiSampling sweeps Blogel-B's GVD sampling rate
// on the road network, where block structure matters most.
func BenchmarkAblationVoronoiSampling(b *testing.B) {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: benchScale, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := "Ablation: Blogel-B GVD sampling rate (WRN analogue)\n"
		for _, rate := range []float64{0.0005, 0.001, 0.01, 0.05} {
			v := partition.BuildVoronoi(g, 16, 11, partition.VoronoiOptions{InitialRate: rate})
			out += fmt.Sprintf("  rate %.4f: %5d blocks, %6d cross-block edges, %d rounds\n",
				rate, v.NumBlocks, v.CrossBlockEdges(), v.Rounds)
		}
		emit("ab2", out)
	}
}

// BenchmarkAblationLineageCheckpoint sweeps GraphX checkpoint intervals.
func BenchmarkAblationLineageCheckpoint(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.Dataset(datasets.Twitter)
		w := engine.NewPageRankIters(12)
		out := "Ablation: GraphX checkpoint interval (PageRank x12, Twitter, 32 machines)\n"
		for _, every := range []int{0, 2, 5} {
			res := graphx.New().Run(sim.NewSize(32), d, w,
				engine.Options{NumPartitions: 256, CheckpointEvery: every})
			out += fmt.Sprintf("  every %d: exec %.0fs, peak mem/machine %.1f GB (%s)\n",
				every, res.Exec, float64(res.MemMax)/float64(sim.GB), res.Status)
		}
		emit("ab3", out)
	}
}

// BenchmarkAblationHaLoopCache isolates HaLoop's invariant-data cache.
func BenchmarkAblationHaLoopCache(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.Dataset(datasets.Twitter)
		w := engine.NewPageRankIters(10)
		with := haloop.New()
		without := haloop.New()
		without.InvariantCache = false
		rw := with.Run(sim.NewSize(16), d, w, engine.Options{})
		ro := without.Run(sim.NewSize(16), d, w, engine.Options{})
		emit("ab4", fmt.Sprintf(
			"Ablation: HaLoop invariant-data cache (PageRank x10, Twitter, 16 machines)\n"+
				"  cache on:  total %.0fs, disk wait %.0fs\n"+
				"  cache off: total %.0fs, disk wait %.0fs\n",
			rw.TotalTime(), rw.CPUIO, ro.TotalTime(), ro.CPUIO))
	}
}

// BenchmarkAblationBlogelBVsV compares the two Blogel modes end-to-end
// (§5.1's headline finding).
func BenchmarkAblationBlogelBVsV(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.Dataset(datasets.UK)
		w := r.Workload(engine.WCC, datasets.UK)
		bv := blogel.NewV().Run(sim.NewSize(32), d, w, engine.Options{})
		bb := blogel.NewB().Run(sim.NewSize(32), d, w, engine.Options{})
		emit("ab5", fmt.Sprintf(
			"Ablation: Blogel-B vs Blogel-V (WCC, UK, 32 machines)\n"+
				"  BV: exec %.0fs, total %.0fs\n"+
				"  BB: exec %.0fs, total %.0fs  (faster execute, slower end-to-end)\n",
			bv.Exec, bv.TotalTime(), bb.Exec, bb.TotalTime()))
	}
}

// BenchmarkMessagePlane isolates the BSP message plane — the CSR
// superstep inboxes, struct-of-arrays send buckets, and swapped value
// arenas — on the powerlaw (Twitter-analogue) dataset: a dense
// combiner-heavy workload (PageRank) and a sparse frontier-driven one
// (WCC), each at one and at eight shards. Run with -benchmem: allocs/op
// is the number the zero-allocation message plane drives down, and
// scripts/bench.sh records it per-date so the trajectory is tracked
// (use --compare to diff against a previous snapshot).
//
// The fixture runs at messagePlaneScale rather than benchScale: cache
// pressure is the regime where the sharded path's radix-partitioned
// merge (each destination shard touches only its own vertex range)
// pays for its bucket bookkeeping. shards=8 must beat shards=1 here
// even on one core, which the persistent worker runtime's
// zero-dispatch-overhead execution makes hold.
func BenchmarkMessagePlane(b *testing.B) {
	g := messagePlaneGraph()
	const m = 16
	cut := partition.EdgeCut{M: m, Seed: 7}
	base := bsp.Config{
		Graph: g, Scale: 1, M: m, MachineOf: cut.MachineOf, Profile: &blogel.Profile,
	}
	run := func(b *testing.B, cfg bsp.Config) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bsp.Run(sim.NewSize(m), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	src := datasets.SourceVertex(g, 42)
	pagerank := func(dir engine.Direction, shards int) bsp.Config {
		cfg := base
		cfg.Program = &bsp.PageRankProgram{Damping: 0.15}
		cfg.Combine = bsp.SumCombine
		cfg.FixedSupersteps = 10
		cfg.Shards = shards
		cfg.Direction = dir
		return cfg
	}
	wcc := func(dir engine.Direction, shards int) bsp.Config {
		cfg := base
		cfg.Program = bsp.WCCProgram{}
		cfg.Combine = bsp.MinCombine
		cfg.CombineFrom = 1
		cfg.UseInNeighbors = true
		cfg.Shards = shards
		cfg.Direction = dir
		return cfg
	}
	sssp := func(dir engine.Direction, shards int) bsp.Config {
		cfg := base
		cfg.Program = &bsp.SSSPProgram{Source: src}
		cfg.Combine = bsp.MinCombine
		cfg.Shards = shards
		cfg.Direction = dir
		return cfg
	}
	for _, shards := range []int{1, 8} {
		// The bare names run the default direction policy (auto), so
		// scripts/bench.sh --compare shows the direction-optimization win
		// against pre-policy snapshots on the same benchmark names. The
		// /push variants pin the flat message plane as the in-snapshot
		// baseline: the delta between the pair is the direction win alone,
		// with outputs and modeled costs bit-identical by contract.
		b.Run(fmt.Sprintf("PageRank/shards=%d", shards), func(b *testing.B) {
			run(b, pagerank(engine.DirectionAuto, shards))
		})
		b.Run(fmt.Sprintf("PageRank/push/shards=%d", shards), func(b *testing.B) {
			run(b, pagerank(engine.DirectionPush, shards))
		})
		b.Run(fmt.Sprintf("WCC/shards=%d", shards), func(b *testing.B) {
			run(b, wcc(engine.DirectionAuto, shards))
		})
		b.Run(fmt.Sprintf("WCC/push/shards=%d", shards), func(b *testing.B) {
			run(b, wcc(engine.DirectionPush, shards))
		})
		b.Run(fmt.Sprintf("SSSP/shards=%d", shards), func(b *testing.B) {
			run(b, sssp(engine.DirectionAuto, shards))
		})
		b.Run(fmt.Sprintf("SSSP/push/shards=%d", shards), func(b *testing.B) {
			run(b, sssp(engine.DirectionPush, shards))
		})
	}
}

// BenchmarkTraversal tracks the direction-optimizing single-thread
// primitives on the message-plane fixture: a full BFSDistances sweep
// with reused Traversal scratch, and the HashMinRounds fixpoint. With
// -benchmem the allocs/op row guards the Frontier double-buffer reuse
// (the BFS steady state must not allocate), and scripts/bench.sh's CI
// leg gates it alongside the message-plane benches.
func BenchmarkTraversal(b *testing.B) {
	g := messagePlaneGraph()
	b.Run("BFSDistances", func(b *testing.B) {
		b.ReportAllocs()
		var tr graph.Traversal
		dist := make([]int32, g.NumVertices())
		src := datasets.SourceVertex(g, 42)
		// One warm-up sweep sizes the Traversal's lazily grown frontier
		// scratch outside the timed region, so allocs/op reads the
		// steady state (0-1) at any -benchtime, including CI's 1x.
		tr.BFSDistances(g, src, dist)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.BFSDistances(g, src, dist)
		}
	})
	b.Run("HashMinRounds", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := graph.HashMinRounds(g); r == 0 {
				b.Fatal("HashMin converged in zero rounds")
			}
		}
	})
}

// BenchmarkParallelSpeedup measures the parallel execution subsystem at
// both of its layers.
//
// Grid runs one Table 9 row (Twitter PageRank, every main-grid system
// at 16 machines) once sequentially (one matrix worker, one shard per
// engine) and once fully parallel (GOMAXPROCS workers and shards).
// Determinism guarantees both produce identical modeled results; the
// benchmark reports the wall-clock ratio so later scaling PRs have a
// perf trajectory to compare against.
//
// Sharded measures the engine-level layer on its own: BSP PageRank on
// the skewed power-law (Twitter-analogue) input of BenchmarkMessagePlane
// at shards=1, 8, and GOMAXPROCS, so the edge-balanced plan's win over
// the heavy-shard serialization is visible per shard count. On a
// single-core machine the sharded runs measure pure runtime overhead
// plus the merge pass's partitioned locality; with more cores they
// measure real speedup — either way shards>1 must not lose to shards=1.
func BenchmarkParallelSpeedup(b *testing.B) {
	b.Run("Grid", func(b *testing.B) {
		var cells []core.Cell
		for _, s := range core.MainGridSystems() {
			cells = append(cells, core.Cell{System: s, Dataset: datasets.Twitter, Kind: engine.PageRank, Machines: 16})
		}
		time16 := func(r *core.Runner) (time.Duration, []*engine.Result) {
			r.Dataset(datasets.Twitter) // fixture generation outside the clock
			start := time.Now()
			res := r.RunGrid(cells)
			return time.Since(start), res
		}
		for i := 0; i < b.N; i++ {
			seq := runner()
			seq.Workers, seq.Shards = 1, 1
			seqDur, seqRes := time16(seq)

			par := runner() // Workers/Shards zero: GOMAXPROCS at both layers
			parDur, parRes := time16(par)

			for j := range cells {
				if seqRes[j].TotalTime() != parRes[j].TotalTime() || seqRes[j].NetBytes != parRes[j].NetBytes {
					b.Fatalf("cell %d: parallel run diverged from sequential (modeled %v/%v vs %v/%v)",
						j, parRes[j].TotalTime(), parRes[j].NetBytes, seqRes[j].TotalTime(), seqRes[j].NetBytes)
				}
			}
			speedup := seqDur.Seconds() / parDur.Seconds()
			b.ReportMetric(speedup, "speedup")
			emit("speedup", fmt.Sprintf(
				"Parallel speedup (Table 9 row: Twitter PageRank, %d systems @ 16 machines)\n"+
					"  sequential %v, parallel %v: %.1fx on %d cores\n",
				len(cells), seqDur.Round(time.Millisecond), parDur.Round(time.Millisecond),
				speedup, runtime.GOMAXPROCS(0)))
		}
	})
	b.Run("Sharded", func(b *testing.B) {
		g := messagePlaneGraph()
		const m = 16
		cut := partition.EdgeCut{M: m, Seed: 7}
		shardCounts := []int{1, 8}
		if p := runtime.GOMAXPROCS(0); p != 1 && p != 8 {
			shardCounts = append(shardCounts, p)
		}
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("PageRank/shards=%d", shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := bsp.Run(sim.NewSize(m), bsp.Config{
						Graph: g, Scale: 1, M: m, MachineOf: cut.MachineOf, Profile: &blogel.Profile,
						Program: &bsp.PageRankProgram{Damping: 0.15}, Combine: bsp.SumCombine,
						FixedSupersteps: 10, Shards: shards,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkScalability reports strong-scaling behaviour (§5.12): the
// native BSP systems improve steadily with cluster size; GraphX does
// not scale as well.
func BenchmarkScalability(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := "Strong scalability, Twitter PageRank (total seconds by cluster size)\n"
		for _, key := range []string{"blogel-v", "giraph", "gl-s-r-i", "gelly", "graphx"} {
			s, err := core.SystemByKey(key)
			if err != nil {
				b.Fatal(err)
			}
			line := fmt.Sprintf("  %-9s", s.Label)
			for _, m := range core.ClusterSizes {
				res := r.Run(s, datasets.Twitter, engine.PageRank, m)
				if res.Status != sim.OK {
					line += fmt.Sprintf(" %8s", res.Status)
				} else {
					line += fmt.Sprintf(" %7.0fs", res.TotalTime())
				}
			}
			out += line + "\n"
		}
		emit("ab6", out)
	}
}

// snapshotFixture generates the scale-default Twitter fixture shared
// by the snapshot-vs-text load benchmarks — the graph every engine
// loads at the start of a default harness run.
var snapshotFixture = sync.OnceValue(func() *graph.Graph {
	return datasets.Generate(datasets.Twitter, datasets.Options{Scale: datasets.DefaultScale, Seed: 1})
})

// BenchmarkSnapshotLoad measures opening a cached binary CSR snapshot
// of the scale-default Twitter fixture: one arena read (mmap on
// linux), a checksum, and linear validation scans. The acceptance bar
// for the snapshot subsystem is ≥10× BenchmarkTextDecode.
func BenchmarkSnapshotLoad(b *testing.B) {
	path := filepath.Join(b.TempDir(), "twitter"+snapshot.Ext)
	if err := snapshot.Save(path, snapshotFixture(), 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := snapshot.Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

// spillFixture generates the scale-up UK analogue (datagen -preset
// scale-up) shared by the spill benchmarks: large enough that a BSP
// run's lean residency (~8 MB: CSR both sides, twin inbox arenas, send
// buckets) overflows the benchmark's 4 MiB budget, forcing the
// out-of-core tier.
var spillFixture = sync.OnceValue(func() *graph.Graph {
	return datasets.Generate(datasets.UK, datasets.Options{Scale: datasets.ScaleUpScale, Seed: 1})
})

// BenchmarkSpill compares one governed out-of-core PageRank superstep
// sequence against the identical in-core run — same graph, same
// partition, same program — so the throughput cost of spilling the
// message plane to checksummed segments is a tracked number. The
// acceptance bar for the memory governor is Spill staying within a
// small constant factor of InCore — ~2x for traversal workloads, ~4x
// for PageRank, which rewrites the full message plane every superstep —
// while its tracked peak stays under the 4 MiB budget (asserted below;
// the bit-identity of outputs and modeled costs is pinned by
// internal/enginetest's acceptance test, not re-checked per iteration).
// Shards is fixed at 1 so allocs/op is deterministic for the
// scripts/bench.sh --compare gate.
func BenchmarkSpill(b *testing.B) {
	g := spillFixture()
	const m = 16
	cut := partition.EdgeCut{M: m, Seed: 7}
	cfg := bsp.Config{
		Graph: g, Scale: 1, M: m, MachineOf: cut.MachineOf, Profile: &blogel.Profile,
		Program: &bsp.PageRankProgram{Damping: 0.15}, Combine: bsp.SumCombine,
		FixedSupersteps: 10, Shards: 1,
	}
	b.Run("InCore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bsp.Run(sim.NewSize(m), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Spill", func(b *testing.B) {
		gov, err := govern.New(4<<20, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer gov.Close()
		govCfg := cfg
		govCfg.Governor = gov
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := bsp.Run(sim.NewSize(m), govCfg)
			if err != nil {
				b.Fatal(err)
			}
			if !out.Govern.Spilled || out.Govern.PeakBytes > gov.Budget() {
				b.Fatalf("run not bounded out-of-core: %+v", out.Govern)
			}
		}
	})
}

// BenchmarkTextDecode measures the line-by-line path the snapshot
// replaces: parsing the same fixture from the adjacency text format
// and rebuilding the CSR.
func BenchmarkTextDecode(b *testing.B) {
	g := snapshotFixture()
	var buf bytes.Buffer
	if err := graph.Encode(g, graph.FormatAdj, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Decode(bytes.NewReader(data), graph.FormatAdj, g.NumVertices()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanner measures one adaptive planning decision end to end
// at serve-path conditions: the dataset profile is already cached (as
// core.Runner caches it), so the cost is candidate scoring and the
// configuration heuristics. A fresh planner per iteration keeps the
// sticky-decision cache from short-circuiting the work being measured.
// Allocations here are per-request serve overhead, so the allocs gate
// tracks them.
func BenchmarkPlanner(b *testing.B) {
	r := runner()
	defer r.Close()
	pr, err := r.TryProfile(datasets.Twitter)
	if err != nil {
		b.Fatal(err)
	}
	req := plan.Request{Dataset: string(datasets.Twitter), Workload: "pagerank", Machines: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := plan.New().Decide(pr, req)
		if d.System == "" {
			b.Fatal("empty decision")
		}
	}
}
