module graphbench

go 1.24.0
