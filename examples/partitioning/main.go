// Partitioning: a tour of the partitioning substrate — the quality and
// cost trade-offs among GraphLab's vertex-cut strategies (§4.4.1,
// Table 4) and Blogel's Graph Voronoi Diagram blocks (§2.3).
package main

import (
	"fmt"

	"graphbench/internal/datasets"
	"graphbench/internal/graph"
	"graphbench/internal/partition"
)

func main() {
	tw := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 400_000, Seed: 1}).WithoutSelfEdges()
	fmt.Println("Vertex-cut replication factors on the Twitter analogue (Table 4):")
	fmt.Printf("%-10s %8s %8s %12s %8s\n", "machines", "random", "grid", "oblivious", "auto")
	for _, m := range []int{16, 32, 64, 128} {
		row := fmt.Sprintf("%-10d", m)
		for _, kind := range []partition.VertexCutKind{partition.VCRandom, partition.VCGrid, partition.VCOblivious} {
			if kind == partition.VCGrid {
				if k := partition.AutoKind(m); k != partition.VCGrid && m != 16 && m != 64 {
					row += fmt.Sprintf("%9s", "n/a")
					continue
				}
			}
			vc := partition.BuildVertexCut(tw, m, kind, 7)
			row += fmt.Sprintf("%9.1f", vc.ReplicationFactor())
		}
		auto := partition.AutoKind(m)
		vc := partition.BuildVertexCut(tw, m, auto, 7)
		row += fmt.Sprintf("%9.1f (%s)", vc.ReplicationFactor(), auto)
		fmt.Println(row)
	}

	fmt.Println("\nGraph Voronoi Diagram blocks on the road network (Blogel-B):")
	rn := datasets.Generate(datasets.WRN, datasets.Options{Scale: 400_000, Seed: 1})
	vor := partition.BuildVoronoi(rn, 16, 11, partition.VoronoiOptions{})
	fmt.Printf("  %d vertices -> %d connected blocks in %d sampling rounds\n",
		rn.NumVertices(), vor.NumBlocks, vor.Rounds)
	fmt.Printf("  cross-block edges: %d of %d (%.1f%%)\n",
		vor.CrossBlockEdges(), rn.NumEdges(),
		float64(vor.CrossBlockEdges())/float64(rn.NumEdges())*100)
	fmt.Printf("  graph diameter %d vs block-graph communication rounds: traversals\n",
		graph.EstimateDiameter(rn, 2, 1))
	fmt.Println("  collapse to block hops — Blogel-B's reachability win (§5.1).")
}
