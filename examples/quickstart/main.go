// Quickstart: generate a dataset analogue, run one workload on two
// systems over simulated clusters, and verify the outputs against the
// single-thread oracle — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"math"

	"graphbench/internal/blogel"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/hdfs"
	"graphbench/internal/metrics"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

func main() {
	// 1. Generate a Twitter analogue at 1/400,000 of the real dataset's
	// size. The graph remembers the scale, so resource accounting still
	// happens at paper scale.
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 400_000, Seed: 1})
	st := g.Stats()
	fmt.Printf("twitter analogue: %d vertices, %d edges, max degree %d\n",
		st.Vertices, st.Edges, st.MaxOutDegree)

	// 2. Stage it in simulated HDFS in all three file formats.
	fs := hdfs.New()
	src := datasets.SourceVertex(g, 42)
	d, err := engine.Prepare(fs, g, "data/twitter", 64, src)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run PageRank on Giraph and Blogel-V over a 16-machine cluster.
	w := engine.NewPageRank()
	for _, e := range []engine.Engine{pregel.New(), blogel.NewV()} {
		res := e.Run(sim.NewSize(16), d, w, engine.Options{})
		fmt.Printf("\n%s: %s\n", e.Name(), res.Status)
		fmt.Printf("  load %s  execute %s  save %s  overhead %s  total %s\n",
			metrics.FmtSeconds(res.Load), metrics.FmtSeconds(res.Exec),
			metrics.FmtSeconds(res.Save), metrics.FmtSeconds(res.Overhead),
			metrics.FmtSeconds(res.TotalTime()))
		fmt.Printf("  %d iterations, %s over the network, %s peak memory across the cluster\n",
			res.Iterations, metrics.FmtBytes(res.NetBytes), metrics.FmtBytes(res.MemTotal))

		// 4. Verify against the single-thread oracle.
		want, _, _ := singlethread.PageRank(g, w.Damping, w.Tolerance, 0)
		worst := 0.0
		for v := range want {
			if dd := math.Abs(res.Ranks[v] - want[v]); dd > worst {
				worst = dd
			}
		}
		fmt.Printf("  max deviation from single-thread oracle: %.2g\n", worst)
	}
}
