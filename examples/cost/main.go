// Cost: the paper's COST analysis (§5.13) as a runnable example —
// "Configuration that Outperforms a Single Thread". For each workload
// it compares the best 16-machine parallel system against the GAP-style
// single-thread implementation, showing that parallel systems can be
// slower than one well-written thread on reachability workloads.
package main

import (
	"fmt"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/metrics"
	"graphbench/internal/singlethread"
)

func main() {
	r := core.NewRunner(400_000, 1)
	fmt.Println("COST: best parallel system at 16 machines vs a single thread")

	for _, name := range []datasets.Name{datasets.Twitter, datasets.WRN} {
		g := datasets.Generate(name, datasets.Options{Scale: r.Scale, Seed: r.Seed})
		d := r.Dataset(name)
		fmt.Printf("\n%s:\n", name)

		for _, kind := range []engine.Kind{engine.PageRank, engine.SSSP, engine.WCC} {
			var single float64
			switch kind {
			case engine.PageRank:
				_, _, c := singlethread.PageRank(g, 0.15, 0.01, 0)
				single = singlethread.ModeledSeconds(c, r.Scale)
			case engine.SSSP:
				_, c := singlethread.SSSP(g, d.Source)
				single = singlethread.ModeledSeconds(c, r.Scale)
			case engine.WCC:
				_, c := singlethread.WCC(g)
				single = singlethread.ModeledSeconds(c, r.Scale)
			}

			var cells []core.Cell
			for _, s := range core.MainGridSystems() {
				cells = append(cells, core.Cell{System: s, Dataset: name, Kind: kind, Machines: 16})
			}
			best := core.BestParallel(r.RunGrid(cells))
			if best == nil {
				fmt.Printf("  %-9s no parallel system finished; single thread %s\n",
					kind, metrics.FmtSeconds(single))
				continue
			}
			cost := single / best.TotalTime()
			verdict := "the cluster wins"
			if cost < 1 {
				verdict = "ONE THREAD WINS — scalability, but at what cost?"
			}
			fmt.Printf("  %-9s best parallel %s=%s, single thread %s, COST %.2f (%s)\n",
				kind, best.System, metrics.FmtSeconds(best.TotalTime()),
				metrics.FmtSeconds(single), cost, verdict)
		}
	}
}
