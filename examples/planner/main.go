// Planner: the adaptive engine/shard planner as a runnable example.
// For a few (dataset, workload) cells it asks the planner to pick the
// system and run configuration at a 16-machine budget, executes the
// decision, and prints the full audit trace — profile, every scored
// candidate, the chosen configuration, and the realized cost beside
// the prediction once the run has fed its telemetry back.
package main

import (
	"fmt"
	"os"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/metrics"
	"graphbench/internal/sim"
)

func main() {
	r := core.NewRunner(400_000, 1)
	defer r.Close()
	fmt.Println("adaptive planning: auto-selected configurations at 16 machines")

	cells := []struct {
		dataset datasets.Name
		kind    engine.Kind
	}{
		{datasets.Twitter, engine.PageRank}, // power-law, shallow: weighted shards
		{datasets.Twitter, engine.Triangle}, // quadratic fan-out, push-only
		{datasets.WRN, engine.SSSP},         // huge diameter: uniform shards, no pull
	}
	for _, c := range cells {
		res, dec, err := r.TryRunAuto(nil, core.FaultOpts{}, c.dataset, c.kind, 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, "planner example:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(dec.Trace())
		if res.Status == sim.OK {
			fmt.Printf("ran %s: %s modeled, %s network\n",
				res.System, metrics.FmtSeconds(res.TotalTime()), metrics.FmtBytes(res.NetBytes))
		} else {
			fmt.Printf("ran %s: %s\n", res.System, res.Status)
		}
	}

	// Decisions are sticky: repeating a cell returns the pinned
	// decision, so caches keyed on it stay stable.
	again := r.Planner()
	fmt.Printf("\nplanner state: %d configurations observed\n", again.Observed())
}
