// Roadnetwork: why high-diameter graphs break distributed graph
// systems. Runs SSSP on the World Road Network analogue across the
// systems of the study, reproducing the paper's central negative
// finding (§5.3, §5.8): the per-iteration floor times 48,000 iterations
// exceeds any reasonable budget for most systems — only Blogel survives
// at every cluster size, and Blogel-B dies earlier, in partitioning,
// from the MPI overflow.
package main

import (
	"fmt"

	"graphbench/internal/blogel"
	"graphbench/internal/dataflow"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/hdfs"
	"graphbench/internal/mapreduce"
	"graphbench/internal/metrics"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

func main() {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 400_000, Seed: 1})
	fs := hdfs.New()
	src := datasets.SourceVertex(g, 42)
	d, err := engine.Prepare(fs, g, "data/wrn", 64, src)
	if err != nil {
		panic(err)
	}
	// Traversals on the analogue are dilated to the real dataset's
	// ~48,000-iteration depth.
	d.DilationSSSP = datasets.TraversalDilation(datasets.WRN, g, src)
	d.DilationWCC = datasets.WCCDilation(datasets.WRN, g)

	fmt.Println("SSSP on the World Road Network (paper diameter: 48,000)")
	fmt.Println("24-hour timeout; statuses match the paper's Figure 8 failure matrix.")

	engines := []engine.Engine{
		blogel.NewV(), blogel.NewB(), pregel.New(), dataflow.New(), mapreduce.New(),
	}
	for _, m := range []int{16, 64} {
		fmt.Printf("\n%d machines:\n", m)
		for _, e := range engines {
			res := e.Run(sim.NewSize(m), d, engine.NewSSSP(src), engine.Options{})
			status := res.Status.String()
			if res.Status == sim.OK {
				status = fmt.Sprintf("OK in %s (%d iterations)",
					metrics.FmtSeconds(res.TotalTime()), res.Iterations)
			}
			fmt.Printf("  %-10s %s\n", e.Name(), status)
		}
	}
	fmt.Println("\nBlogel-V wins by doing per-iteration work proportional to the frontier;")
	fmt.Println("Blogel-B would win harder, but GVD partitioning overflows MPI's integer")
	fmt.Println("offsets on billion-vertex graphs, exactly as the paper reports (§5.1).")
}
