// Package core is the experiment framework that ties the repository
// together: the registry of the systems under study (with the paper's
// run-label variants), cached dataset fixtures, and a runner that
// executes (system × workload × dataset × cluster size) grids on fresh
// simulated clusters.
package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"graphbench/internal/blogel"
	"graphbench/internal/dataflow"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/gas"
	"graphbench/internal/govern"
	"graphbench/internal/graph"
	"graphbench/internal/graphx"
	"graphbench/internal/haloop"
	"graphbench/internal/hdfs"
	"graphbench/internal/mapreduce"
	"graphbench/internal/metrics"
	"graphbench/internal/par"
	"graphbench/internal/plan"
	"graphbench/internal/pregel"
	"graphbench/internal/relational"
	"graphbench/internal/sim"
)

// ClusterSizes are the paper's scale-out points (Table 2).
var ClusterSizes = []int{16, 32, 64, 128}

// System is one entry of the study: an engine constructor plus the
// option variant it runs under, labeled as in the paper's figures.
type System struct {
	Key   string // stable identifier, e.g. "gl-s-r-t"
	Label string // figure abbreviation, e.g. "GL-S-R-T"
	New   func() engine.Engine
	Opt   engine.Options

	// Tweak adjusts the workload (e.g. the fixed-iteration PageRank
	// variants). May be nil.
	Tweak func(w engine.Workload) engine.Workload

	// PageRankOnly marks variants the paper only evaluates on PageRank
	// (the asynchronous and tolerance/iteration GraphLab variants).
	PageRankOnly bool
}

func fixedIters(n int) func(engine.Workload) engine.Workload {
	return func(w engine.Workload) engine.Workload {
		if w.Kind == engine.PageRank {
			w.Tolerance = 0
			w.MaxIterations = n
		}
		return w
	}
}

// Systems returns the full registry in the paper's figure order. The
// GraphLab entries mirror the six variants of §5: (A/S)ync × (A/R)
// partitioning × (T/I) stopping.
func Systems() []System {
	newGelly := func() engine.Engine { return dataflow.New() }
	return []System{
		{Key: "blogel-b", Label: "BB", New: func() engine.Engine { return blogel.NewB() }},
		{Key: "blogel-v", Label: "BV", New: func() engine.Engine { return blogel.NewV() }},
		{Key: "giraph", Label: "G", New: func() engine.Engine { return pregel.New() }},
		{Key: "gl-a-a-t", Label: "GL-A-A-T", New: func() engine.Engine { return gas.New() },
			Opt: engine.Options{Async: true, Partitioning: "auto"}, PageRankOnly: true},
		{Key: "gl-a-r-t", Label: "GL-A-R-T", New: func() engine.Engine { return gas.New() },
			Opt: engine.Options{Async: true}, PageRankOnly: true},
		{Key: "gl-s-a-i", Label: "GL-S-A-I", New: func() engine.Engine { return gas.New() },
			Opt: engine.Options{Partitioning: "auto"}, Tweak: fixedIters(30)},
		{Key: "gl-s-a-t", Label: "GL-S-A-T", New: func() engine.Engine { return gas.New() },
			Opt: engine.Options{Partitioning: "auto"}, PageRankOnly: true},
		{Key: "gl-s-r-i", Label: "GL-S-R-I", New: func() engine.Engine { return gas.New() },
			Tweak: fixedIters(30)},
		{Key: "gl-s-r-t", Label: "GL-S-R-T", New: func() engine.Engine { return gas.New() },
			PageRankOnly: true},
		{Key: "hadoop", Label: "HD", New: func() engine.Engine { return mapreduce.New() }},
		{Key: "haloop", Label: "HL", New: func() engine.Engine { return haloop.New() }},
		{Key: "graphx", Label: "S", New: func() engine.Engine { return graphx.New() }},
		{Key: "gelly", Label: "FG", New: newGelly},
	}
}

// MainGridSystems returns the systems of Figures 5 and 7–9 (non-
// PageRank workloads): the GraphLab iteration variants only.
func MainGridSystems() []System {
	var out []System
	for _, s := range Systems() {
		if !s.PageRankOnly {
			out = append(out, s)
		}
	}
	return out
}

// SystemByKey returns the registered system with the given key.
func SystemByKey(key string) (System, error) {
	for _, s := range Systems() {
		if s.Key == key {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("core: unknown system %q", key)
}

// Vertica returns the relational system entry. It is kept out of the
// main grid, as in the paper (§5.11: trial license, Figures 12–13 only).
func Vertica() System {
	return System{Key: "vertica", Label: "V", New: func() engine.Engine { return relational.New() }}
}

// Runner executes experiments at a fixed dataset scale, caching
// prepared fixtures. Every run owns a private sim.Cluster and engine
// instance, so the experiment matrix is embarrassingly parallel:
// Workers bounds how many runs execute concurrently and Shards how
// many worker goroutines each run's engine loops use. Both knobs only
// change wall time — modeled results are bit-identical at any setting.
type Runner struct {
	Scale float64
	Seed  int64

	// Workers is the concurrent-run budget of RunGrid and the harness
	// artifact generators (0 = GOMAXPROCS, 1 = sequential). It is the
	// -parallel flag of cmd/graphbench.
	Workers int

	// Shards, when non-zero, is the per-run engine shard count applied
	// to systems that don't pin one themselves (engine.Options.Shards).
	Shards int

	// SnapshotDir, when non-empty, caches generated dataset fixtures
	// as binary CSR snapshots (internal/snapshot) in that directory,
	// keyed by (name, scale, seed, format version): the first run
	// generates and saves, later runs — and CI jobs restoring the
	// directory — load the snapshot instead of regenerating. Loads are
	// bit-identical to generation, so results and modeled costs do not
	// depend on which path a fixture arrived by. NewRunner seeds it
	// from $GRAPHBENCH_SNAPSHOT_DIR; cmd/graphbench's -snapshot-dir
	// overrides. Set before the first Dataset call.
	SnapshotDir string

	// MemoryBudget, when positive, bounds the host-side working set of
	// every run this runner executes: a shared govern.Governor charges
	// the engines' large allocations against it, and runs degrade in
	// tiers — shed scratch, demand-page snapshot arenas, go out-of-core
	// with spill-to-disk — instead of growing past the budget. Runs
	// whose floor does not fit fail with an error unwrapping to
	// govern.ErrBudget. NewRunner seeds it from $GRAPHBENCH_MEM_BUDGET
	// (govern.ParseBytes syntax, e.g. "512m"); cmd flags override. Set
	// before the first run.
	MemoryBudget int64

	mu       sync.Mutex
	fixtures map[datasets.Name]*engine.Dataset
	graphs   map[datasets.Name]*graph.Graph // retained snapshots, for profiling
	profiles map[datasets.Name]*plan.Profile
	planner  *plan.Planner
	pool     *par.Pool
	governor *govern.Governor
	governed bool // governor initialized (possibly to nil on error)
}

// NewRunner returns a Runner at the given reduction scale (0 means
// datasets.DefaultScale). The snapshot cache directory defaults to
// $GRAPHBENCH_SNAPSHOT_DIR, so CI can point every runner at a restored
// fixture cache without threading a flag through each entry point.
func NewRunner(scale float64, seed int64) *Runner {
	if scale <= 0 {
		scale = datasets.DefaultScale
	}
	budget, err := govern.ParseBytes(os.Getenv("GRAPHBENCH_MEM_BUDGET"))
	if err != nil {
		// A malformed budget must not silently run ungoverned — but
		// NewRunner has no error path, so surface it loudly and run
		// without a budget rather than guessing one.
		fmt.Fprintf(os.Stderr, "graphbench: ignoring $GRAPHBENCH_MEM_BUDGET: %v\n", err)
		budget = 0
	}
	return &Runner{
		Scale:        scale,
		Seed:         seed,
		SnapshotDir:  os.Getenv("GRAPHBENCH_SNAPSHOT_DIR"),
		MemoryBudget: budget,
		fixtures:     make(map[datasets.Name]*engine.Dataset),
	}
}

// Governor returns the runner's shared memory governor, created on
// first use from MemoryBudget (nil — governing disabled — when the
// budget is zero or the spill root cannot be created). MemoryBudget
// must be set before the first run.
func (r *Runner) Governor() *govern.Governor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.governorLocked()
}

func (r *Runner) governorLocked() *govern.Governor {
	if !r.governed {
		g, err := govern.New(r.MemoryBudget, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: memory governor disabled: %v\n", err)
		}
		r.governor = g
		r.governed = true
	}
	return r.governor
}

// TryDataset returns the prepared fixture for name, generating it on
// first use — or loading its cached snapshot when SnapshotDir is set.
// An unknown dataset name or a fixture-preparation failure is returned
// as an error: long-lived callers (internal/serve) degrade one request
// instead of killing the process. CLI entry points that want the old
// die-on-bad-fixture behaviour use the Dataset shim.
func (r *Runner) TryDataset(name datasets.Name) (*engine.Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.fixtures[name]; ok {
		return d, nil
	}
	if !datasets.Known(name) {
		return nil, fmt.Errorf("core: unknown dataset %q", name)
	}
	opt := datasets.Options{Scale: r.Scale, Seed: r.Seed}
	var g *graph.Graph
	if r.SnapshotDir != "" {
		cache := datasets.NewCache(r.SnapshotDir)
		// Soft pressure: load the snapshot arena demand-paged instead
		// of prefaulted, so cold fixture regions never turn resident.
		if gov := r.governorLocked(); gov.Pressure() >= govern.PressureSoft {
			cache.Lazy = true
		}
		g = cache.Generate(name, opt)
	} else {
		g = datasets.Generate(name, opt)
	}
	fs := hdfs.New()
	src := datasets.SourceVertex(g, 42)
	d, err := engine.Prepare(fs, g, "data/"+string(name), 64, src)
	if err != nil {
		return nil, fmt.Errorf("core: preparing %s: %w", name, err)
	}
	d.DilationSSSP = datasets.TraversalDilation(name, g, src)
	d.DilationWCC = datasets.WCCDilation(name, g)
	r.fixtures[name] = d
	if r.graphs == nil {
		r.graphs = make(map[datasets.Name]*graph.Graph)
	}
	r.graphs[name] = g
	return d, nil
}

// Planner returns the runner's shared adaptive planner, created on
// first use. All planned runs feed their realized telemetry back into
// it (see plan.Planner.Observe).
func (r *Runner) Planner() *plan.Planner {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.planner == nil {
		r.planner = plan.New()
	}
	return r.planner
}

// TryProfile returns the planner profile of a dataset, built on first
// use from the retained graph snapshot and cached — profiles cost a
// few linear passes, decisions against them are table lookups.
func (r *Runner) TryProfile(name datasets.Name) (*plan.Profile, error) {
	d, err := r.TryDataset(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.profiles[name]; ok {
		return p, nil
	}
	p := plan.NewProfile(d, r.graphs[name])
	if r.profiles == nil {
		r.profiles = make(map[datasets.Name]*plan.Profile)
	}
	r.profiles[name] = p
	return p, nil
}

// TryDecide asks the planner for the configuration of one request
// cell. The runner's MemoryBudget rides along so the decision can
// pre-pick the out-of-core tier.
func (r *Runner) TryDecide(name datasets.Name, kind engine.Kind, machines int) (*plan.Decision, error) {
	p, err := r.TryProfile(name)
	if err != nil {
		return nil, err
	}
	req := plan.Request{
		Dataset:      string(name),
		Workload:     kind.String(),
		Machines:     machines,
		MemoryBudget: r.MemoryBudget,
	}
	return r.Planner().Decide(p, req), nil
}

// Dataset is the panic-wrapping shim over TryDataset for CLI callers
// and the harness, where a bad fixture is unrecoverable.
func (r *Runner) Dataset(name datasets.Name) *engine.Dataset {
	d, err := r.TryDataset(name)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// TryWorkload builds the workload instance for a dataset (the source
// vertex is per dataset, §3.3), propagating fixture errors.
func (r *Runner) TryWorkload(kind engine.Kind, name datasets.Name) (engine.Workload, error) {
	d, err := r.TryDataset(name)
	if err != nil {
		return engine.Workload{}, err
	}
	switch kind {
	case engine.PageRank:
		return engine.NewPageRank(), nil
	case engine.WCC:
		return engine.NewWCC(), nil
	case engine.SSSP:
		return engine.NewSSSP(d.Source), nil
	case engine.Triangle:
		return engine.NewTriangleCount(), nil
	case engine.LPA:
		return engine.NewLPA(), nil
	default:
		return engine.NewKHop(d.Source), nil
	}
}

// Workload is the panic-wrapping shim over TryWorkload.
func (r *Runner) Workload(kind engine.Kind, name datasets.Name) engine.Workload {
	w, err := r.TryWorkload(kind, name)
	if err != nil {
		panic(err.Error())
	}
	return w
}

// MatrixShards returns the per-run engine shard count for runs that
// execute concurrently on the matrix pool: the -shards override when
// set, otherwise just enough to keep GOMAXPROCS busy once multiplied
// by the pool's worker count — the two parallelism layers compose to
// ~GOMAXPROCS goroutines instead of its square.
func (r *Runner) MatrixShards() int {
	return matrixShards(r.Shards, r.Pool().Workers(), runtime.GOMAXPROCS(0))
}

// matrixShards computes the per-run shard default: the explicit
// override when set, otherwise ceil(procs/workers) so workers × shards
// covers every core. Floor division here was a latent bug: 3 workers on
// 8 cores yielded 2 shards × 3 workers = 6 goroutines, idling two
// cores.
func matrixShards(override, workers, procs int) int {
	if override != 0 {
		return override
	}
	if workers >= procs {
		return 1
	}
	return (procs + workers - 1) / workers
}

// MatrixOptions applies the matrix shard default to opt, for harness
// code that runs engines directly (bypassing Run) on the pool.
func (r *Runner) MatrixOptions(opt engine.Options) engine.Options {
	if opt.Shards == 0 {
		opt.Shards = r.MatrixShards()
	}
	return opt
}

// Run executes one experiment on a fresh cluster. A standalone run has
// the engine to itself, so its loops default to GOMAXPROCS shards.
func (r *Runner) Run(s System, name datasets.Name, kind engine.Kind, machines int) *engine.Result {
	res, err := r.tryRun(s, name, kind, machines, r.Shards, nil, FaultOpts{})
	if err != nil {
		panic(err.Error())
	}
	return res
}

// TryRun is Run with fixture failures returned as errors instead of
// panics — the run path long-lived servers use. Note the distinction:
// a *failed run* (OOM, timeout, …) is still a Result with a non-OK
// Status, because failures are findings in this study; only problems
// that prevent the run from starting at all (unknown dataset, broken
// fixture) are errors.
func (r *Runner) TryRun(s System, name datasets.Name, kind engine.Kind, machines int) (*engine.Result, error) {
	return r.tryRun(s, name, kind, machines, r.Shards, nil, FaultOpts{})
}

// TryRunOn is TryRun with the engine's shard loops borrowing the given
// persistent pool (serve mode keeps one warm per admission slot, so
// steady-state requests spawn no goroutines).
func (r *Runner) TryRunOn(pool *par.Pool, s System, name datasets.Name, kind engine.Kind, machines int) (*engine.Result, error) {
	return r.tryRun(s, name, kind, machines, r.Shards, pool, FaultOpts{})
}

// FaultOpts configures fault injection and recovery for one run.
type FaultOpts struct {
	// Injector, when non-nil, is installed on the run's fresh cluster
	// (internal/chaos builds seeded one-shot injectors).
	Injector sim.Injector
	// Recover enables the engine's fault tolerance, threading through
	// to engine.Options.Recover.
	Recover bool
	// CheckpointEvery overrides the recovery checkpoint cadence
	// (engine.Options.CheckpointEvery); 0 keeps the engine default.
	CheckpointEvery int

	// Plan, when non-nil, applies the planner decision's configuration
	// to the run (shards, shard plan, direction, memory tier) and feeds
	// the realized telemetry back into the planner afterwards. The
	// system is still chosen by the caller — TryRunPlanned resolves the
	// decision's system key and sets this field.
	Plan *plan.Decision
}

// TryRunPlanned executes a planner decision: the decision's system,
// cluster size, and configuration knobs, with realized telemetry
// observed back into the planner.
func (r *Runner) TryRunPlanned(pool *par.Pool, f FaultOpts, d *plan.Decision, name datasets.Name, kind engine.Kind) (*engine.Result, error) {
	s, err := SystemByKey(d.System)
	if err != nil {
		return nil, err
	}
	f.Plan = d
	return r.tryRun(s, name, kind, d.Machines, r.Shards, pool, f)
}

// TryRunAuto is the planner-driven run path: decide, then execute the
// decision. The decision (with realized cost) is returned alongside
// the result so callers can expose the trace.
func (r *Runner) TryRunAuto(pool *par.Pool, f FaultOpts, name datasets.Name, kind engine.Kind, machines int) (*engine.Result, *plan.Decision, error) {
	d, err := r.TryDecide(name, kind, machines)
	if err != nil {
		return nil, nil, err
	}
	res, err := r.TryRunPlanned(pool, f, d, name, kind)
	if err != nil {
		return nil, nil, err
	}
	return res, d, nil
}

// TryRunFault is TryRunOn with a fault-injection plan: the run's
// cluster gets the injector, and the engine runs with recovery
// configured per f. The serve path and the fault-matrix tests use this
// to compare faulted runs against clean ones.
func (r *Runner) TryRunFault(pool *par.Pool, f FaultOpts, s System, name datasets.Name, kind engine.Kind, machines int) (*engine.Result, error) {
	return r.tryRun(s, name, kind, machines, r.Shards, pool, f)
}

func (r *Runner) run(s System, name datasets.Name, kind engine.Kind, machines, shards int) *engine.Result {
	res, err := r.tryRun(s, name, kind, machines, shards, nil, FaultOpts{})
	if err != nil {
		panic(err.Error())
	}
	return res
}

func (r *Runner) tryRun(s System, name datasets.Name, kind engine.Kind, machines, shards int, pool *par.Pool, f FaultOpts) (*engine.Result, error) {
	d, err := r.TryDataset(name)
	if err != nil {
		return nil, err
	}
	w, err := r.TryWorkload(kind, name)
	if err != nil {
		return nil, err
	}
	if s.Tweak != nil {
		w = s.Tweak(w)
	}
	opt := s.Opt
	if f.Plan != nil {
		// A planner decision overrides the run-shape knobs. None of
		// them changes modeled results (the bit-identity contracts of
		// shards/plan/direction/tier), so planned and fixed runs stay
		// comparable.
		if f.Plan.Shards > 0 {
			opt.Shards = f.Plan.Shards
		}
		opt.ShardPlan = f.Plan.ShardPlan
		opt.Direction = f.Plan.Direction
		opt.MemoryTier = f.Plan.MemoryTier
	}
	if opt.Shards == 0 {
		opt.Shards = shards
	}
	opt.Pool = pool
	if f.Recover {
		opt.Recover = true
	}
	if f.CheckpointEvery > 0 {
		opt.CheckpointEvery = f.CheckpointEvery
	}
	// GraphX runs with the paper's tuned partition counts (Table 5)
	// unless the experiment overrides them.
	if s.Key == "graphx" && opt.NumPartitions == 0 {
		opt.NumPartitions = graphx.TunedPartitions(d, machines)
	}
	opt.Governor = r.Governor()
	c := sim.NewSize(machines)
	if f.Injector != nil {
		c.SetInjector(f.Injector)
	}
	res := s.New().Run(c, d, w, opt)
	res.System = s.Label
	if f.Plan != nil {
		r.Planner().Observe(f.Plan, metrics.ResourceOf(res))
	}
	return res, nil
}

// Cell identifies one grid entry.
type Cell struct {
	System   System
	Dataset  datasets.Name
	Kind     engine.Kind
	Machines int
}

// Pool returns the runner's experiment-matrix worker pool, sized by
// Workers and created on first use: the persistent workers are shared
// by every grid and artifact generator the runner serves, so repeated
// harness calls dispatch onto warm goroutines instead of spawning.
// Workers must therefore be set before the first Pool, RunGrid, or
// harness call. The pool is shut down by its finalizer when the runner
// is abandoned.
func (r *Runner) Pool() *par.Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pool == nil {
		r.pool = par.New(r.Workers)
	}
	return r.pool
}

// Close shuts down the runner's matrix pool and memory governor, if
// created. The pool finalizer would eventually do the same; owners with
// a clear lifecycle (a server shutting down, a test) should call Close
// so goroutine accounting is deterministic and the governor's spill
// root is removed promptly.
func (r *Runner) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pool != nil {
		r.pool.Close()
		r.pool = nil
	}
	if r.governor != nil {
		_ = r.governor.Close()
		r.governor = nil
	}
	r.governed = false
}

// RunGrid executes the cells concurrently on the runner's pool (each
// run on its own simulated cluster) and returns results in the input
// order.
func (r *Runner) RunGrid(cells []Cell) []*engine.Result {
	// Warm the fixture cache serially to keep generation single.
	for _, c := range cells {
		r.Dataset(c.Dataset)
	}
	shards := r.MatrixShards()
	return par.Map(r.Pool(), len(cells), func(i int) *engine.Result {
		c := cells[i]
		return r.run(c.System, c.Dataset, c.Kind, c.Machines, shards)
	})
}

// BestParallel returns the completed result with the smallest total
// time among the given results, or nil if none completed.
func BestParallel(results []*engine.Result) *engine.Result {
	var best *engine.Result
	for _, res := range results {
		if res == nil || res.Status != sim.OK {
			continue
		}
		if best == nil || res.TotalTime() < best.TotalTime() {
			best = res
		}
	}
	return best
}

// SortedKeys returns the registry keys, sorted — a convenience for CLIs.
func SortedKeys() []string {
	var keys []string
	for _, s := range Systems() {
		keys = append(keys, s.Key)
	}
	keys = append(keys, Vertica().Key)
	sort.Strings(keys)
	return keys
}
