package core

import (
	"reflect"
	"runtime"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/par"
	"graphbench/internal/sim"
)

func TestRegistryLabels(t *testing.T) {
	systems := Systems()
	if len(systems) != 13 {
		t.Fatalf("registry has %d systems, want 13 (8 systems, GL in 6 variants)", len(systems))
	}
	seen := map[string]bool{}
	for _, s := range systems {
		if seen[s.Key] {
			t.Errorf("duplicate key %q", s.Key)
		}
		seen[s.Key] = true
		if s.New == nil {
			t.Errorf("%s has no constructor", s.Key)
		}
	}
	// The paper's non-PageRank grids use only the GL iteration variants.
	main := MainGridSystems()
	for _, s := range main {
		if s.PageRankOnly {
			t.Errorf("%s leaked into the main grid", s.Key)
		}
	}
	if len(main) != 9 {
		t.Errorf("main grid has %d systems, want 9", len(main))
	}
}

func TestSystemByKey(t *testing.T) {
	if _, err := SystemByKey("giraph"); err != nil {
		t.Fatal(err)
	}
	if _, err := SystemByKey("nope"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if Vertica().Label != "V" {
		t.Fatal("vertica label")
	}
}

func TestRunnerFixtureCache(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	a := r.Dataset(datasets.Twitter)
	b := r.Dataset(datasets.Twitter)
	if a != b {
		t.Fatal("fixture not cached")
	}
	if a.DilationSSSP < 1 || a.DilationWCC < 1 {
		t.Fatalf("dilations not set: %+v", a)
	}
}

// TestMatrixShardsCoversEveryCore: the matrix shard default must round
// up, so workers × shards ≥ GOMAXPROCS — floor division left cores idle
// (8 procs / 3 workers = 2 shards × 3 workers = 6 goroutines).
func TestMatrixShardsCoversEveryCore(t *testing.T) {
	cases := []struct{ override, workers, procs, want int }{
		{0, 1, 1, 1},
		{0, 1, 8, 8},
		{0, 2, 8, 4},
		{0, 3, 8, 3},  // floor gave 2: the reported bug
		{0, 5, 8, 2},  // floor gave 1
		{0, 7, 8, 2},  // floor gave 1
		{0, 8, 8, 1},  // workers alone cover the cores
		{0, 16, 8, 1}, // oversubscribed pool still gets sequential runs
		{0, 3, 4, 2},
		{0, 2, 3, 2},
		{0, 6, 64, 11}, // ceil(64/6)
		{4, 3, 8, 4},   // explicit -shards override wins
		{1, 1, 64, 1},
	}
	for _, c := range cases {
		got := matrixShards(c.override, c.workers, c.procs)
		if got != c.want {
			t.Errorf("matrixShards(override=%d, workers=%d, procs=%d) = %d, want %d",
				c.override, c.workers, c.procs, got, c.want)
		}
		if c.override == 0 && got*c.workers < c.procs {
			t.Errorf("workers=%d procs=%d: %d shards × %d workers = %d goroutines idles cores",
				c.workers, c.procs, got, c.workers, got*c.workers)
		}
	}
	// Through the runner: a 3-worker pool on this machine must cover
	// GOMAXPROCS.
	r := NewRunner(2_000_000, 1)
	r.Workers = 3
	defer r.Close()
	if got, procs := r.MatrixShards(), runtime.GOMAXPROCS(0); got*3 < procs {
		t.Errorf("MatrixShards() = %d with 3 workers on %d procs", got, procs)
	}
}

// TestTryDatasetErrors: the serve-mode fixture path reports problems as
// errors; the CLI shim still panics.
func TestTryDatasetErrors(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	if _, err := r.TryDataset("no-such-dataset"); err == nil {
		t.Fatal("TryDataset accepted an unknown name")
	}
	if _, err := r.TryWorkload(engine.PageRank, "no-such-dataset"); err == nil {
		t.Fatal("TryWorkload accepted an unknown name")
	}
	s, _ := SystemByKey("giraph")
	if _, err := r.TryRun(s, "no-such-dataset", engine.PageRank, 16); err == nil {
		t.Fatal("TryRun accepted an unknown name")
	}
	if d, err := r.TryDataset(datasets.Twitter); err != nil || d == nil {
		t.Fatalf("TryDataset(twitter) = %v, %v", d, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dataset shim did not panic on an unknown name")
			}
		}()
		r.Dataset("no-such-dataset")
	}()
}

// TestTryRunOnBorrowedPool: a run on an externally owned pool must not
// close it, and must produce the same result as a standalone run (shard
// count only changes wall time).
func TestTryRunOnBorrowedPool(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	s, _ := SystemByKey("giraph")
	pool := par.New(2)
	defer pool.Close()
	a, err := r.TryRunOn(pool, s, datasets.Twitter, engine.PageRank, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.TryRunOn(pool, s, datasets.Twitter, engine.PageRank, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != sim.OK || b.Status != sim.OK {
		t.Fatalf("borrowed-pool runs failed: %v, %v", a.Status, b.Status)
	}
	cold := r.Run(s, datasets.Twitter, engine.PageRank, 16)
	if !reflect.DeepEqual(a.Ranks, cold.Ranks) || !reflect.DeepEqual(b.Ranks, cold.Ranks) {
		t.Fatal("borrowed-pool run diverged from standalone run")
	}
}

func TestRunnerDefaultScale(t *testing.T) {
	if r := NewRunner(0, 1); r.Scale != datasets.DefaultScale {
		t.Fatalf("Scale = %v", r.Scale)
	}
}

func TestWorkloadPerDataset(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	w := r.Workload(engine.SSSP, datasets.Twitter)
	if w.Source != r.Dataset(datasets.Twitter).Source {
		t.Fatal("SSSP source not wired to the dataset")
	}
	if k := r.Workload(engine.KHop, datasets.Twitter); k.K != 3 {
		t.Fatal("K != 3")
	}
}

func TestRunAndGrid(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	s, _ := SystemByKey("blogel-v")
	res := r.Run(s, datasets.Twitter, engine.KHop, 16)
	if res.Status != sim.OK {
		t.Fatalf("run failed: %v", res.Status)
	}
	if res.System != "BV" {
		t.Fatalf("result label = %q", res.System)
	}

	cells := []Cell{
		{System: s, Dataset: datasets.Twitter, Kind: engine.KHop, Machines: 16},
		{System: s, Dataset: datasets.Twitter, Kind: engine.KHop, Machines: 32},
	}
	results := r.RunGrid(cells)
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatal("grid lost results")
	}
	if results[0].Machines != 16 || results[1].Machines != 32 {
		t.Fatal("grid order not preserved")
	}
}

func TestGLVariantTweaks(t *testing.T) {
	s, _ := SystemByKey("gl-s-r-i")
	w := s.Tweak(engine.NewPageRank())
	if w.MaxIterations != 30 || w.Tolerance != 0 {
		t.Fatalf("iteration variant tweak = %+v", w)
	}
	// Non-PageRank workloads pass through unchanged.
	if w := s.Tweak(engine.NewWCC()); w.MaxIterations != 0 {
		t.Fatalf("WCC tweaked: %+v", w)
	}
}

func TestBestParallel(t *testing.T) {
	ok1 := &engine.Result{Status: sim.OK, Exec: 50}
	ok2 := &engine.Result{Status: sim.OK, Exec: 20}
	bad := &engine.Result{Status: sim.OOM, Exec: 1}
	if best := BestParallel([]*engine.Result{ok1, ok2, bad, nil}); best != ok2 {
		t.Fatalf("BestParallel picked %+v", best)
	}
	if best := BestParallel([]*engine.Result{bad}); best != nil {
		t.Fatal("failed run selected")
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys()
	if len(keys) != 14 {
		t.Fatalf("%d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
}
