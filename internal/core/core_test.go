package core

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/sim"
)

func TestRegistryLabels(t *testing.T) {
	systems := Systems()
	if len(systems) != 13 {
		t.Fatalf("registry has %d systems, want 13 (8 systems, GL in 6 variants)", len(systems))
	}
	seen := map[string]bool{}
	for _, s := range systems {
		if seen[s.Key] {
			t.Errorf("duplicate key %q", s.Key)
		}
		seen[s.Key] = true
		if s.New == nil {
			t.Errorf("%s has no constructor", s.Key)
		}
	}
	// The paper's non-PageRank grids use only the GL iteration variants.
	main := MainGridSystems()
	for _, s := range main {
		if s.PageRankOnly {
			t.Errorf("%s leaked into the main grid", s.Key)
		}
	}
	if len(main) != 9 {
		t.Errorf("main grid has %d systems, want 9", len(main))
	}
}

func TestSystemByKey(t *testing.T) {
	if _, err := SystemByKey("giraph"); err != nil {
		t.Fatal(err)
	}
	if _, err := SystemByKey("nope"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if Vertica().Label != "V" {
		t.Fatal("vertica label")
	}
}

func TestRunnerFixtureCache(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	a := r.Dataset(datasets.Twitter)
	b := r.Dataset(datasets.Twitter)
	if a != b {
		t.Fatal("fixture not cached")
	}
	if a.DilationSSSP < 1 || a.DilationWCC < 1 {
		t.Fatalf("dilations not set: %+v", a)
	}
}

func TestRunnerDefaultScale(t *testing.T) {
	if r := NewRunner(0, 1); r.Scale != datasets.DefaultScale {
		t.Fatalf("Scale = %v", r.Scale)
	}
}

func TestWorkloadPerDataset(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	w := r.Workload(engine.SSSP, datasets.Twitter)
	if w.Source != r.Dataset(datasets.Twitter).Source {
		t.Fatal("SSSP source not wired to the dataset")
	}
	if k := r.Workload(engine.KHop, datasets.Twitter); k.K != 3 {
		t.Fatal("K != 3")
	}
}

func TestRunAndGrid(t *testing.T) {
	r := NewRunner(2_000_000, 1)
	s, _ := SystemByKey("blogel-v")
	res := r.Run(s, datasets.Twitter, engine.KHop, 16)
	if res.Status != sim.OK {
		t.Fatalf("run failed: %v", res.Status)
	}
	if res.System != "BV" {
		t.Fatalf("result label = %q", res.System)
	}

	cells := []Cell{
		{System: s, Dataset: datasets.Twitter, Kind: engine.KHop, Machines: 16},
		{System: s, Dataset: datasets.Twitter, Kind: engine.KHop, Machines: 32},
	}
	results := r.RunGrid(cells)
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatal("grid lost results")
	}
	if results[0].Machines != 16 || results[1].Machines != 32 {
		t.Fatal("grid order not preserved")
	}
}

func TestGLVariantTweaks(t *testing.T) {
	s, _ := SystemByKey("gl-s-r-i")
	w := s.Tweak(engine.NewPageRank())
	if w.MaxIterations != 30 || w.Tolerance != 0 {
		t.Fatalf("iteration variant tweak = %+v", w)
	}
	// Non-PageRank workloads pass through unchanged.
	if w := s.Tweak(engine.NewWCC()); w.MaxIterations != 0 {
		t.Fatalf("WCC tweaked: %+v", w)
	}
}

func TestBestParallel(t *testing.T) {
	ok1 := &engine.Result{Status: sim.OK, Exec: 50}
	ok2 := &engine.Result{Status: sim.OK, Exec: 20}
	bad := &engine.Result{Status: sim.OOM, Exec: 1}
	if best := BestParallel([]*engine.Result{ok1, ok2, bad, nil}); best != ok2 {
		t.Fatalf("BestParallel picked %+v", best)
	}
	if best := BestParallel([]*engine.Result{bad}); best != nil {
		t.Fatal("failed run selected")
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys()
	if len(keys) != 14 {
		t.Fatalf("%d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
}
