package core

import (
	"os"
	"reflect"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
)

// TestSnapshotGridBitIdentical is the acceptance check for the
// snapshot subsystem at the experiment-grid level: the same grid run
// over generated fixtures, snapshot-saving fixtures (cold cache), and
// snapshot-loaded fixtures (warm cache) must produce bit-identical
// results and modeled costs. Engines never learn how a graph arrived,
// so any divergence means the container changed the CSR.
func TestSnapshotGridBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cells := func() []Cell {
		var cs []Cell
		for _, sysKey := range []string{"giraph", "blogel-b", "graphx"} {
			s, err := SystemByKey(sysKey)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []datasets.Name{datasets.Twitter, datasets.WRN} {
				for _, kind := range []engine.Kind{engine.PageRank, engine.WCC, engine.SSSP} {
					cs = append(cs, Cell{System: s, Dataset: name, Kind: kind, Machines: 32})
				}
			}
		}
		return cs
	}

	const scale, seed = 2_000_000, 1
	run := func(snapshotDir string) []*engine.Result {
		r := NewRunner(scale, seed)
		r.SnapshotDir = snapshotDir
		r.Workers = 2
		return r.RunGrid(cells())
	}

	generated := run("")
	cold := run(dir) // generates fixtures, saves snapshots
	if entries, err := os.ReadDir(dir); err != nil || len(entries) == 0 {
		t.Fatalf("cold run left no snapshots in %s (err %v)", dir, err)
	}
	warm := run(dir) // loads the snapshots written by the cold run

	for i := range generated {
		if !reflect.DeepEqual(generated[i], cold[i]) {
			t.Errorf("cell %d: cold-cache result differs from generated:\n  gen:  %+v\n  cold: %+v",
				i, generated[i], cold[i])
		}
		if !reflect.DeepEqual(generated[i], warm[i]) {
			t.Errorf("cell %d: snapshot-loaded result differs from generated:\n  gen:  %+v\n  warm: %+v",
				i, generated[i], warm[i])
		}
	}
}

// TestRunnerSnapshotDirFromEnv checks the CI wiring: a runner created
// under GRAPHBENCH_SNAPSHOT_DIR picks the cache directory up without
// any flag plumbing.
func TestRunnerSnapshotDirFromEnv(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GRAPHBENCH_SNAPSHOT_DIR", dir)
	r := NewRunner(2_000_000, 1)
	if r.SnapshotDir != dir {
		t.Fatalf("SnapshotDir = %q, want %q", r.SnapshotDir, dir)
	}
	r.Dataset(datasets.Twitter)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("dataset preparation did not populate the snapshot cache (err %v)", err)
	}
}
