package blogel

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

func TestVAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	enginetest.VerifyAllWorkloads(t, NewV(), f, 16, 1e-9, engine.Options{})
}

func TestVRoadNetworkAllSizes(t *testing.T) {
	// §5.1: Blogel-V is the only system finishing SSSP/WCC on WRN
	// across all cluster sizes, including 16 machines.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	for _, m := range []int{16, 128} {
		res := enginetest.RunOK(t, NewV(), f, m, engine.NewWCC(), engine.Options{})
		enginetest.VerifyWCC(t, f, res)
		res = enginetest.RunOK(t, NewV(), f, m, engine.NewSSSP(f.Dataset.Source), engine.Options{})
		enginetest.VerifySSSP(t, f, res)
	}
}

func TestVClueWebOnly128(t *testing.T) {
	// §5.9: ClueWeb fits only in the 128-machine cluster, and only for
	// Blogel-V; Giraph cannot even load it there.
	f := enginetest.Prepare(t, datasets.ClueWeb, 10_000_000)
	res := enginetest.RunOK(t, NewV(), f, 128, engine.NewPageRank(), engine.Options{})
	if res.Status != sim.OK {
		t.Fatalf("Blogel-V ClueWeb at 128: %v", res.Status)
	}
	small := NewV().Run(sim.NewSize(64), f.Dataset, engine.NewPageRank(), engine.Options{})
	if small.Status != sim.OOM {
		t.Errorf("Blogel-V ClueWeb at 64: status %v, want OOM", small.Status)
	}
	gir := pregel.New().Run(sim.NewSize(128), f.Dataset, engine.NewPageRank(), engine.Options{})
	if gir.Status != sim.OOM {
		t.Errorf("Giraph ClueWeb at 128: status %v, want OOM", gir.Status)
	}
}

func TestBAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	b := NewB()
	enginetest.VerifyWCC(t, f, enginetest.RunOK(t, b, f, 16, engine.NewWCC(), engine.Options{}))
	enginetest.VerifySSSP(t, f, enginetest.RunOK(t, b, f, 16, engine.NewSSSP(f.Dataset.Source), engine.Options{}))
	enginetest.VerifyKHop(t, f, enginetest.RunOK(t, b, f, 16, engine.NewKHop(f.Dataset.Source), engine.Options{}), 3)
	// Two-step PageRank converges to the same fixpoint within
	// tolerance, though through a worse path (§3.1.2).
	w := engine.NewPageRank()
	enginetest.VerifyPageRankRelative(t, f, enginetest.RunOK(t, b, f, 16, w, engine.Options{}), w, 0.1)
}

func TestBMPIOverflowOnWRNAndClueWeb(t *testing.T) {
	// §5.1: GVD partitioning crashes with an MPI integer overflow on
	// the billion-vertex datasets (WRN, ClueWeb), not on Twitter/UK.
	wrn := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	res := NewB().Run(sim.NewSize(16), wrn.Dataset, engine.NewWCC(), engine.Options{})
	if res.Status != sim.MPI {
		t.Errorf("Blogel-B on WRN: status %v, want MPI", res.Status)
	}
	cw := enginetest.Prepare(t, datasets.ClueWeb, 10_000_000)
	res = NewB().Run(sim.NewSize(128), cw.Dataset, engine.NewWCC(), engine.Options{})
	if res.Status != sim.MPI {
		t.Errorf("Blogel-B on ClueWeb: status %v, want MPI", res.Status)
	}
	uk := enginetest.Prepare(t, datasets.UK, 1_000_000)
	res = NewB().Run(sim.NewSize(32), uk.Dataset, engine.NewWCC(), engine.Options{})
	if res.Status != sim.OK {
		t.Errorf("Blogel-B on UK: status %v, want OK (%v)", res.Status, res.Err)
	}
}

func TestBFasterExecutionThanVOnTraversals(t *testing.T) {
	// §5.1: Blogel-B has the shortest execution time for reachability
	// workloads (WCC/SSSP) thanks to Voronoi blocks.
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	bv := enginetest.RunOK(t, NewV(), f, 32, engine.NewWCC(), engine.Options{})
	bb := enginetest.RunOK(t, NewB(), f, 32, engine.NewWCC(), engine.Options{})
	if bb.Exec >= bv.Exec {
		t.Errorf("Blogel-B exec %v not below Blogel-V %v", bb.Exec, bv.Exec)
	}
	// But end-to-end, the partitioning phase makes B slower (§5.1).
	if bb.TotalTime() <= bv.TotalTime() {
		t.Errorf("Blogel-B total %v should exceed Blogel-V %v (partitioning overhead)",
			bb.TotalTime(), bv.TotalTime())
	}
}

func TestFigure3SkipHDFSRoundTrip(t *testing.T) {
	// Figure 3: piping partitions straight into execution cuts the
	// load phase substantially (the paper reports ~50% of end-to-end).
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	std := enginetest.RunOK(t, NewB(), f, 16, engine.NewWCC(), engine.Options{})
	mod := enginetest.RunOK(t, NewB(), f, 16, engine.NewWCC(), engine.Options{SkipHDFSRoundTrip: true})
	if mod.Load >= std.Load {
		t.Fatalf("modified Blogel load %v not below standard %v", mod.Load, std.Load)
	}
	reduction := (std.TotalTime() - mod.TotalTime()) / std.TotalTime()
	if reduction < 0.15 {
		t.Errorf("end-to-end reduction = %.0f%%, want a substantial cut (paper: ~50%%)", reduction*100)
	}
}

func TestBPageRankSlowerThanV(t *testing.T) {
	// §5.1: the two-step PageRank takes more iterations and more
	// execution time than plain vertex-centric PageRank.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	bv := enginetest.RunOK(t, NewV(), f, 16, engine.NewPageRank(), engine.Options{})
	bb := enginetest.RunOK(t, NewB(), f, 16, engine.NewPageRank(), engine.Options{})
	if bb.Exec <= bv.Exec {
		t.Errorf("Blogel-B PageRank exec %v should exceed Blogel-V %v", bb.Exec, bv.Exec)
	}
}

func TestVBeatsGiraphEndToEnd(t *testing.T) {
	// §5.1: Blogel-V has the best end-to-end performance — no Hadoop
	// infrastructure, C++ libraries, small footprint.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	bv := enginetest.RunOK(t, NewV(), f, 16, engine.NewPageRank(), engine.Options{})
	g := enginetest.RunOK(t, pregel.New(), f, 16, engine.NewPageRank(), engine.Options{})
	if bv.TotalTime() >= g.TotalTime() {
		t.Errorf("Blogel-V total %v not below Giraph %v", bv.TotalTime(), g.TotalTime())
	}
}

func TestTable7ClueWebPhases(t *testing.T) {
	// Table 7 reports Blogel-V phase times on ClueWeb at 128 machines;
	// K-hop's execution is negligible next to its load time.
	f := enginetest.Prepare(t, datasets.ClueWeb, 10_000_000)
	khop := enginetest.RunOK(t, NewV(), f, 128, engine.NewKHop(f.Dataset.Source), engine.Options{})
	if khop.Exec >= khop.Load {
		t.Errorf("ClueWeb K-hop exec %v should be dwarfed by load %v (Table 7)", khop.Exec, khop.Load)
	}
}
