package blogel

import (
	"math"
	"slices"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/par"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// BEngine is Blogel-B, the block-centric mode.
type BEngine struct {
	Profile sim.Profile
}

// NewB returns Blogel-B with the default profile.
func NewB() *BEngine { return &BEngine{Profile: Profile} }

// Name implements engine.Engine.
func (e *BEngine) Name() string { return "blogel-b" }

// Run implements engine.Engine.
func (e *BEngine) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: e.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	prof := e.Profile
	m := c.Size()

	mark := c.Clock()
	if err := c.Advance(prof.StartupSeconds(m)); err != nil {
		res.Overhead = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Overhead = c.Clock() - mark

	// Load + GVD partition phase (all part of load time, §5.1).
	mark = c.Clock()
	gr, err := d.LoadGraph(graph.FormatAdjLong)
	if err != nil {
		return res.Finish(c, err)
	}
	loaded, err := chargeLoad(c, &prof, d, gr, w, graph.FormatAdjLong)
	if err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}

	// GVD sampling aggregates per-vertex block assignments on the
	// master through MPI, whose int buffer offsets overflow for
	// billion-vertex graphs (§5.1: WRN and ClueWeb).
	if float64(d.NumVertices)*d.Scale*4 > maxInt32 {
		res.Load = c.Clock() - mark
		return res.Finish(c, &sim.Failure{Status: sim.MPI,
			Detail: "integer overflow aggregating GVD block assignments at the master"})
	}
	vor := partition.BuildVoronoi(gr, m, 11, partition.VoronoiOptions{})
	if err := e.chargeVoronoi(c, d, gr, vor, opt); err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	// Execute block-centric computation. The persistent pool lives for
	// exactly this run.
	mark = c.Clock()
	pool, release := par.Use(opt.Pool, opt.Shards)
	defer release()
	bx := &bExec{cluster: c, prof: &prof, d: d, g: gr, vor: vor, w: w, res: res,
		pool: pool, sp: opt.ShardPlan}
	execErr := bx.run()
	res.Exec = c.Clock() - mark
	if execErr != nil {
		return res.Finish(c, execErr)
	}

	mark = c.Clock()
	resultBytes := int64(float64(gr.NumVertices()) * d.Scale * 16)
	if err := c.Advance(hdfs.WriteSeconds(resultBytes, m, c.Config().DiskBW, c.Config().NetBW)); err != nil {
		res.Save = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Save = c.Clock() - mark
	c.FreeAll(loaded)
	return res.Finish(c, nil)
}

// chargeVoronoi charges the GVD sampling rounds and — unless the
// modified pipeline of Figure 3 is enabled — the write of partitioned
// data back to HDFS and its re-read before execution, which the paper
// found responsible for ~50% of end-to-end time.
func (e *BEngine) chargeVoronoi(c *sim.Cluster, d *engine.Dataset, gr *graph.Graph,
	vor *partition.Voronoi, opt engine.Options) error {

	m := c.Size()
	prof := &e.Profile
	edges := float64(gr.NumEdges()) * d.Scale
	verts := float64(gr.NumVertices()) * d.Scale

	// Each sampling round is a multi-source BFS sweep plus a master
	// aggregation of block assignments.
	for r := 0; r < vor.Rounds; r++ {
		bfs := prof.EdgeSeconds(edges/float64(m)*prof.Imbalance, c.Config().Cores)
		aggBytes := verts * 4 / float64(m)
		costs := make([]sim.StepCost, m)
		for i := range costs {
			costs[i] = sim.StepCost{ComputeSeconds: bfs, NetSendBytes: aggBytes, NetRecvBytes: aggBytes}
		}
		if err := c.RunStep(costs); err != nil {
			return err
		}
	}

	if !opt.SkipHDFSRoundTrip {
		// Partition output is many small per-block files: the write
		// and re-read pay NameNode and seek overhead well beyond raw
		// streaming bandwidth.
		const partitionIOPenalty = 5
		bytes := d.FileBytes(graph.FormatAdjLong)
		write := hdfs.WriteSeconds(bytes, m, c.Config().DiskBW, c.Config().NetBW)
		read := hdfs.ParallelReadSeconds(bytes, m, m, c.Config().DiskBW)
		if err := c.Advance((write + read) * partitionIOPenalty); err != nil {
			return err
		}
	}
	return nil
}

// bExec runs the block-centric programs. Hot loops shard over blocks
// (or vertices) on the pool, with per-shard accumulators merged in
// shard order so any worker count produces identical runs.
type bExec struct {
	cluster *sim.Cluster
	prof    *sim.Profile
	d       *engine.Dataset
	g       *graph.Graph
	vor     *partition.Voronoi
	w       engine.Workload
	res     *engine.Result
	pool    *par.Pool
	sp      engine.ShardPlan
}

func (bx *bExec) run() error {
	switch bx.w.Kind {
	case engine.PageRank:
		return bx.pageRank()
	case engine.WCC:
		return bx.wcc()
	case engine.Triangle:
		return bx.triangles()
	case engine.LPA:
		return bx.lpa()
	default:
		return bx.traverse()
	}
}

// chargeRound charges one block-level superstep: serial in-block edge
// work, per-message CPU and network for cross-block traffic.
func (bx *bExec) chargeRound(edgeOps, msgs float64, dilated bool) error {
	c := bx.cluster
	m := float64(c.Size())
	p := bx.prof
	dil := 1.0
	if dilated {
		dil = bx.d.DilationFor(bx.w.Kind)
	}
	compute := p.EdgeSeconds(edgeOps/m*p.Imbalance*bx.d.Scale, c.Config().Cores) +
		p.MsgSeconds(2*msgs/m*p.Imbalance*bx.d.Scale, c.Config().Cores)
	net := msgs / m * p.Imbalance * p.MsgBytes * bx.d.Scale
	costs := make([]sim.StepCost, c.Size())
	for i := range costs {
		costs[i] = sim.StepCost{ComputeSeconds: compute, NetSendBytes: net, NetRecvBytes: net}
	}
	if err := c.RunStep(costs); err != nil {
		return err
	}
	return c.Advance(p.SuperstepFixed * dil)
}

// undirectedBlockAdj returns the undirected block adjacency.
func (bx *bExec) undirectedBlockAdj() [][]int32 {
	nb := bx.vor.NumBlocks
	adj := make([][]int32, nb)
	seen := make([]map[int32]bool, nb)
	add := func(a, b int32) {
		if seen[a] == nil {
			seen[a] = make(map[int32]bool)
		}
		if !seen[a][b] {
			seen[a][b] = true
			adj[a] = append(adj[a], b)
		}
	}
	for b, es := range bx.vor.BlockEdges {
		for nb2 := range es {
			add(int32(b), nb2)
			add(nb2, int32(b))
		}
	}
	return adj
}

// wcc runs block-centric HashMin: one serial pass establishes each
// block's minimum vertex id, then HashMin runs over the block graph —
// O(block-graph diameter) supersteps instead of O(graph diameter),
// Blogel-B's reachability win (§5.1).
func (bx *bExec) wcc() error {
	nb := bx.vor.NumBlocks
	labels := make([]float64, nb)
	for b := range labels {
		labels[b] = math.Inf(1)
	}
	for v := 0; v < bx.g.NumVertices(); v++ {
		b := bx.vor.BlockOf[v]
		if float64(v) < labels[b] {
			labels[b] = float64(v)
		}
	}
	// In-block serial pass: every edge touched once.
	if err := bx.chargeRound(float64(bx.g.NumEdges()), 0, false); err != nil {
		return err
	}

	adj := bx.undirectedBlockAdj()
	active := make([]bool, nb)
	for b := range active {
		active[b] = true
	}
	// Per-shard HashMin state, reused across rounds: a candidate-label
	// array plus the list of touched entries, so a round costs only
	// the edges of its active blocks, not Theta(workers·nb). Shards
	// are cut by block-adjacency degree, so a hub block doesn't
	// serialize the round behind one shard.
	type hashMinShard struct {
		edgeOps, msgs int64
		cand          []float64
		touched       []int32
	}
	blockWeights := make([]int64, nb)
	for b := range adj {
		blockWeights[b] = int64(1 + len(adj[b]))
	}
	pl := par.PlanWeighted(bx.pool.Workers(), blockWeights)
	hmShards := make([]*hashMinShard, pl.Count())
	for i := range hmShards {
		sh := &hashMinShard{cand: make([]float64, nb)}
		for o := range sh.cand {
			sh.cand[o] = math.Inf(1)
		}
		hmShards[i] = sh
	}

	// The round body, built once — steady-state rounds dispatch into
	// warm memory with zero allocations. Each shard of source blocks
	// collects candidate labels privately; the merge applies them in
	// shard order, keeping the minimum per destination. The sequential
	// loop's effect is the same per-destination minimum, so the round —
	// including which blocks activate — is identical for any shard
	// count.
	roundFn := func(i int) {
		sh := hmShards[i]
		sh.edgeOps, sh.msgs = 0, 0
		for _, o := range sh.touched {
			sh.cand[o] = math.Inf(1)
		}
		sh.touched = sh.touched[:0]
		s := pl.Shard(i)
		for b := s.Lo; b < s.Hi; b++ {
			if !active[b] {
				continue
			}
			sh.edgeOps += int64(len(adj[b]))
			sh.msgs += int64(len(adj[b]))
			for _, o := range adj[b] {
				if labels[b] < sh.cand[o] {
					if math.IsInf(sh.cand[o], 1) {
						sh.touched = append(sh.touched, o)
					}
					sh.cand[o] = labels[b]
				}
			}
		}
	}

	// Round buffers, reused: next labels are re-copied and next-active
	// flags cleared each round, then the pairs swap — no per-round
	// allocation.
	next := make([]bool, nb)
	newLabels := make([]float64, nb)
	rounds := 0
	for {
		rounds++
		bx.pool.ForEach(pl.Count(), roundFn)
		var msgs, edgeOps float64
		clear(next)
		copy(newLabels, labels)
		changedAny := false
		for _, sh := range hmShards {
			edgeOps += float64(sh.edgeOps)
			msgs += float64(sh.msgs)
			for _, o := range sh.touched {
				if sh.cand[o] < newLabels[o] {
					newLabels[o] = sh.cand[o]
					next[o] = true
					changedAny = true
				}
			}
		}
		labels, newLabels = newLabels, labels
		active, next = next, active
		bx.res.PerIteration = append(bx.res.PerIteration, engine.IterStat{Iteration: rounds, Active: nb})
		if err := bx.chargeRound(edgeOps, msgs, true); err != nil {
			return err
		}
		if !changedAny {
			break
		}
	}
	bx.res.Iterations = dilated(rounds, bx.d.DilationFor(engine.WCC))

	out := make([]graph.VertexID, bx.g.NumVertices())
	for v := range out {
		out[v] = graph.VertexID(labels[bx.vor.BlockOf[v]])
	}
	bx.res.Labels = out
	return nil
}

// traverse runs SSSP/K-hop: each round, blocks with pending distance
// updates run a serial multi-source BFS internally, then ship boundary
// improvements to neighboring blocks.
//
// Blocks run concurrently within a round: each block's BFS writes only
// its own vertices' distances; reads of foreign vertices go through a
// round-start snapshot, and boundary improvements are buffered as
// proposals applied in shard order after the round — the messages
// really do wait for the next superstep, which also makes the round
// deterministic (the old sequential loop leaked same-round updates
// between blocks in map-iteration order).
func (bx *bExec) traverse() error {
	n := bx.g.NumVertices()
	dist := make([]int32, n)
	distPrev := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	bound := int32(math.MaxInt32)
	if bx.w.Kind == engine.KHop {
		bound = int32(bx.w.K)
	}

	type proposal struct {
		v graph.VertexID
		d int32
	}
	// travShard is one worker's persistent round state: proposal and
	// write logs plus the two in-block BFS frontiers, all reused across
	// rounds. The frontiers are bitsets, so re-improving a vertex that
	// is already queued for the next level no longer enqueues it twice —
	// the duplicate used to be re-expanded with every write skipped,
	// inflating edge-op and boundary-message charges for work a real
	// BFS queue would not do.
	type travShard struct {
		edgeOps, msgs int64
		proposals     []proposal
		written       []graph.VertexID // in-block dist writes this round
		frontier      *graph.Frontier
		next          *graph.Frontier
	}
	shards := par.ScratchFor[travShard](bx.pool)
	// Per-block seed lists replace the old per-round map: slices are
	// truncated when their block is consumed and refilled by applied
	// proposals, so rounds allocate nothing once the buffers are warm.
	seeds := make([][]graph.VertexID, bx.vor.NumBlocks)
	blocks := make([]int32, 0, 1)
	nextBlocks := make([]int32, 0, 1)

	dist[bx.d.Source] = 0
	copy(distPrev, dist)
	src := bx.vor.BlockOf[bx.d.Source]
	seeds[src] = append(seeds[src], bx.d.Source)
	blocks = append(blocks, src)

	// The round body, built once: pl and blocks are rebound each round
	// and seen through the closure, so steady-state rounds dispatch
	// with zero allocations.
	var pl par.Plan
	roundFn := func(i int) {
		sh := shards.At(i)
		sh.edgeOps, sh.msgs = 0, 0
		sh.proposals, sh.written = sh.proposals[:0], sh.written[:0]
		if sh.frontier == nil {
			sh.frontier, sh.next = graph.NewFrontier(n), graph.NewFrontier(n)
		}
		s := pl.Shard(i)
		for bi := s.Lo; bi < s.Hi; bi++ {
			block := blocks[bi]
			// Serial BFS within the block from the updated vertices.
			sh.frontier.Clear()
			for _, v := range seeds[block] {
				sh.frontier.Add(v, 0)
			}
			for sh.frontier.Len() > 0 {
				sh.next.Clear()
				for _, v := range sh.frontier.Members() {
					if dist[v] >= bound {
						continue
					}
					for _, w := range bx.g.OutNeighbors(v) {
						sh.edgeOps++
						nd := dist[v] + 1
						if bx.vor.BlockOf[w] == block {
							if dist[w] != -1 && dist[w] <= nd {
								continue
							}
							dist[w] = nd
							sh.written = append(sh.written, w)
							sh.next.Add(w, 0)
						} else if distPrev[w] == -1 || nd < distPrev[w] {
							// Boundary improvement shipped to the
							// neighboring block for the next round.
							sh.msgs++
							sh.proposals = append(sh.proposals, proposal{v: w, d: nd})
						}
					}
				}
				sh.frontier, sh.next = sh.next, sh.frontier
			}
		}
	}
	rounds := 0
	for len(blocks) > 0 {
		rounds++
		pl = par.PlanShards(len(blocks), bx.pool.Workers())
		bx.pool.ForEach(pl.Count(), roundFn)
		// This round's seed lists are consumed; truncate them before the
		// proposal merge refills blocks for the next round.
		for _, b := range blocks {
			seeds[b] = seeds[b][:0]
		}
		nextBlocks = nextBlocks[:0]
		var edgeOps, msgs float64
		for i := 0; i < pl.Count(); i++ {
			sh := shards.At(i)
			edgeOps += float64(sh.edgeOps)
			msgs += float64(sh.msgs)
			for _, p := range sh.proposals {
				if dist[p.v] == -1 || p.d < dist[p.v] {
					dist[p.v] = p.d
					blk := bx.vor.BlockOf[p.v]
					if len(seeds[blk]) == 0 {
						nextBlocks = append(nextBlocks, blk)
					}
					seeds[blk] = append(seeds[blk], p.v)
				}
			}
		}
		// Sync the snapshot incrementally: only vertices written this
		// round (in-block BFS writes and applied proposals) changed, so
		// the round costs O(updates), not O(n).
		for i := 0; i < pl.Count(); i++ {
			sh := shards.At(i)
			for _, w := range sh.written {
				distPrev[w] = dist[w]
			}
			for _, p := range sh.proposals {
				distPrev[p.v] = dist[p.v]
			}
		}
		slices.Sort(nextBlocks)
		bx.res.PerIteration = append(bx.res.PerIteration, engine.IterStat{Iteration: rounds, Active: len(blocks)})
		if err := bx.chargeRound(edgeOps, msgs, true); err != nil {
			return err
		}
		blocks, nextBlocks = nextBlocks, blocks
	}
	bx.res.Iterations = dilated(rounds, bx.d.DilationFor(bx.w.Kind))
	bx.res.Dist = dist
	return nil
}

// triangles runs degree-ordered triangle counting block-centrically:
// every block enumerates its vertices' forward-neighbor pairs serially;
// candidate probes whose middle vertex lives in another block are
// shipped as messages, in-block probes are serial edge work. Block
// structure cannot change the counts — the algorithm and orientation
// are exactly the single-thread oracle's — so shards accumulate private
// count arrays merged by integer sum, bit-identical at any pool size.
func (bx *bExec) triangles() error {
	o, rank := graph.ForwardOrient(bx.g)
	n := o.NumVertices()
	type triAcc struct {
		counts        []int64
		edgeOps, msgs int64
		hits          int64
	}
	// Shard by the oriented graph's degree weights: candidate fan-out
	// concentrates on forward-heavy vertices.
	pl := par.PlanPrefix(o.WorkPrefix(), bx.pool.Workers())
	accs := par.MapPlan(bx.pool, pl, func(s par.Shard) triAcc {
		a := triAcc{counts: make([]int64, n)}
		for u := s.Lo; u < s.Hi; u++ {
			nbrs := o.OutNeighbors(graph.VertexID(u))
			for i, v := range nbrs {
				for _, w := range nbrs[i+1:] {
					lo, hi := v, w
					if rank[lo] > rank[hi] {
						lo, hi = hi, lo
					}
					a.edgeOps++
					if bx.vor.BlockOf[lo] != bx.vor.BlockOf[u] {
						a.msgs++ // candidate shipped to the probing block
					}
					if o.HasEdge(lo, hi) {
						a.hits++
						a.counts[u]++
						a.counts[v]++
						a.counts[w]++
					}
				}
			}
		}
		return a
	})
	counts := make([]int64, n)
	var edgeOps, msgs, hits float64
	for _, a := range accs {
		for v, c := range a.counts {
			counts[v] += c
		}
		edgeOps += float64(a.edgeOps)
		msgs += float64(a.msgs)
		hits += float64(a.hits)
	}
	bx.res.Triangles = counts
	bx.res.Iterations = 1
	bx.res.PerIteration = append(bx.res.PerIteration, engine.IterStat{
		Iteration: 1, Active: bx.vor.NumBlocks, Updates: int(hits),
	})
	// Credits to corners in foreign blocks also cross the wire.
	return bx.chargeRound(edgeOps, msgs+2*hits, false)
}

// lpa runs synchronous label propagation: the rounds are globally
// synchronous with a fixed cap, so block structure only changes the
// cost split — in-block edges are serial label reads, cross-block edges
// carry boundary label messages — never the labels themselves.
func (bx *bExec) lpa() error {
	u := bx.g.Simple()
	n := u.NumVertices()
	rounds := bx.w.LPAIterations()

	// Cross-block undirected edges, counted once: each round ships the
	// boundary labels.
	var crossE float64
	u.Edges(func(src, dst graph.VertexID) bool {
		if bx.vor.BlockOf[src] != bx.vor.BlockOf[dst] {
			crossE++
		}
		return true
	})

	labels := make([]float64, n)
	next := make([]float64, n)
	for v := range labels {
		labels[v] = float64(v)
	}
	// Shard by the simple view's degrees; the round body is built once,
	// so steady-state rounds dispatch with zero allocations.
	pl := par.PlanPrefix(u.WorkPrefix(), bx.pool.Workers())
	scratch := make([][]float64, pl.Count())
	updates := make([]int64, pl.Count())

	finish := func(iters int) {
		bx.res.Iterations = iters
		out := make([]graph.VertexID, n)
		for v, x := range labels {
			out[v] = graph.VertexID(x)
		}
		bx.res.Labels = graph.CanonicalizeLabels(out)
	}

	roundFn := func(i int) {
		s := pl.Shard(i)
		var upd int64
		buf := scratch[i]
		for v := s.Lo; v < s.Hi; v++ {
			nbrs := u.OutNeighbors(graph.VertexID(v))
			buf = buf[:0]
			for _, w := range nbrs {
				buf = append(buf, labels[w])
			}
			slices.Sort(buf)
			nv := singlethread.ModeMaxLabel(buf, labels[v])
			if nv != labels[v] {
				upd++
			}
			next[v] = nv
		}
		scratch[i] = buf
		updates[i] = upd
	}

	for it := 1; it <= rounds; it++ {
		bx.pool.ForEach(pl.Count(), roundFn)
		var upd float64
		for _, x := range updates {
			upd += float64(x)
		}
		labels, next = next, labels
		bx.res.PerIteration = append(bx.res.PerIteration, engine.IterStat{
			Iteration: it, Active: n, Updates: int(upd),
		})
		if err := bx.chargeRound(float64(u.NumEdges()), crossE, false); err != nil {
			finish(it)
			return err
		}
	}
	finish(rounds)
	return nil
}

// pageRank runs the paper's two-step block PageRank (§3.1.2): local
// PageRank inside each block, a vertex-centric PageRank over the block
// graph with edge-count weights, then a full vertex-centric phase
// seeded with pr(v)·pr(b). The initialization is poor, so the vertex
// phase needs more iterations than plain PageRank — the reason Blogel-B
// loses this workload (§5.1).
func (bx *bExec) pageRank() error {
	n := bx.g.NumVertices()
	nb := bx.vor.NumBlocks
	tol := bx.w.Tolerance
	if tol <= 0 {
		tol = 0.01
	}

	// Step 1a: local PageRank within blocks (internal edges only). The
	// vertex sweeps shard over the degree-balanced plan with phase
	// bodies and a per-shard delta slab built once, so steady-state
	// iterations dispatch with zero allocations.
	pl := bx.sp.Cut(bx.g, bx.pool.Workers())
	deltas := make([]float64, pl.Count())
	local := make([]float64, n)
	for i := range local {
		local[i] = 1
	}
	contrib := make([]float64, n)
	localScatterFn := func(i int) {
		s := pl.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			internal := 0
			for _, w := range bx.g.OutNeighbors(graph.VertexID(v)) {
				if bx.vor.BlockOf[w] == bx.vor.BlockOf[v] {
					internal++
				}
			}
			if internal > 0 {
				contrib[v] = local[v] / float64(internal)
			} else {
				contrib[v] = 0
			}
		}
	}
	localGatherFn := func(i int) {
		s := pl.Shard(i)
		maxDelta := 0.0
		for v := s.Lo; v < s.Hi; v++ {
			sum := 0.0
			for _, u := range bx.g.InNeighbors(graph.VertexID(v)) {
				if bx.vor.BlockOf[u] == bx.vor.BlockOf[v] {
					sum += contrib[u]
				}
			}
			nv := bx.w.Damping + (1-bx.w.Damping)*sum
			if d := math.Abs(nv - local[v]); d > maxDelta {
				maxDelta = d
			}
			local[v] = nv
		}
		deltas[i] = maxDelta
	}
	localIters := 0
	for ; localIters < 30; localIters++ {
		bx.pool.ForEach(pl.Count(), localScatterFn)
		bx.pool.ForEach(pl.Count(), localGatherFn)
		maxDelta := 0.0
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
		if err := bx.chargeRound(float64(bx.g.NumEdges()), 0, false); err != nil {
			return err
		}
		if maxDelta < tol {
			break
		}
	}

	// Step 1b: PageRank over the block graph, weighted by edge counts.
	blockRank := make([]float64, nb)
	for b := range blockRank {
		blockRank[b] = 1
	}
	outW := make([]float64, nb)
	for b, es := range bx.vor.BlockEdges {
		for _, cnt := range es {
			outW[b] += float64(cnt)
		}
	}
	next := make([]float64, nb) // reused across iterations via swap
	for it := 0; it < 30; it++ {
		for b := range next {
			next[b] = bx.w.Damping
		}
		for b, es := range bx.vor.BlockEdges {
			if outW[b] == 0 {
				continue
			}
			for o, cnt := range es {
				next[o] += (1 - bx.w.Damping) * blockRank[b] * float64(cnt) / outW[b]
			}
		}
		maxDelta := 0.0
		for b := range next {
			if d := math.Abs(next[b] - blockRank[b]); d > maxDelta {
				maxDelta = d
			}
		}
		blockRank, next = next, blockRank
		if err := bx.chargeRound(float64(bx.vor.CrossBlockEdges()), float64(bx.vor.CrossBlockEdges()), false); err != nil {
			return err
		}
		if maxDelta < tol {
			break
		}
	}

	// Step 2: vertex-centric PageRank seeded with pr(v)·pr(b), on the
	// same plan, delta slab, and hoisted-phase pattern as step 1a.
	ranks := make([]float64, n)
	for v := 0; v < n; v++ {
		ranks[v] = local[v] * blockRank[bx.vor.BlockOf[v]]
	}
	globalScatterFn := func(i int) {
		s := pl.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			if d := bx.g.OutDegree(graph.VertexID(v)); d > 0 {
				contrib[v] = ranks[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
	}
	globalGatherFn := func(i int) {
		s := pl.Shard(i)
		maxDelta := 0.0
		for v := s.Lo; v < s.Hi; v++ {
			sum := 0.0
			for _, u := range bx.g.InNeighbors(graph.VertexID(v)) {
				sum += contrib[u]
			}
			nv := bx.w.Damping + (1-bx.w.Damping)*sum
			if d := math.Abs(nv - ranks[v]); d > maxDelta {
				maxDelta = d
			}
			ranks[v] = nv
		}
		deltas[i] = maxDelta
	}
	iters := 0
	for {
		iters++
		bx.pool.ForEach(pl.Count(), globalScatterFn)
		bx.pool.ForEach(pl.Count(), globalGatherFn)
		maxDelta := 0.0
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
		bx.res.PerIteration = append(bx.res.PerIteration, engine.IterStat{Iteration: iters, Active: n})
		// Step 2 is plain vertex-centric PageRank: every edge carries a
		// rank message, so it pays the full per-message cost.
		if err := bx.chargeRound(float64(bx.g.NumEdges()), float64(bx.g.NumEdges()), false); err != nil {
			return err
		}
		if bx.w.MaxIterations > 0 && iters >= bx.w.MaxIterations {
			break
		}
		if bx.w.MaxIterations <= 0 && maxDelta < tol {
			break
		}
	}
	bx.res.Iterations = localIters + iters
	bx.res.Ranks = ranks
	return nil
}
