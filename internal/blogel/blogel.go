// Package blogel implements Blogel (§2.1.3, §2.3): the paper's overall
// winner. Blogel-V is vertex-centric BSP over MPI — no Hadoop/Spark
// infrastructure, C++ speeds, a small memory footprint (the only system
// that processes ClueWeb, Table 7), and active-vertex-only supersteps.
// Blogel-B is block-centric: Graph Voronoi Diagram partitioning groups
// vertices into connected blocks, serial algorithms run inside blocks,
// and BSP synchronizes at block granularity — collapsing the iteration
// count on high-diameter graphs, at the price of a partitioning phase
// whose HDFS round-trip dominates end-to-end time (§5.1, Figure 3) and
// whose MPI aggregation overflows on billion-vertex datasets (WRN,
// ClueWeb).
package blogel

import (
	"graphbench/internal/bsp"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// Profile is Blogel's cost profile (both modes): C++ and MPI, lean
// memory, minimal per-superstep coordination.
var Profile = sim.Profile{
	Name: "blogel", Lang: "C++",
	EdgeOpsPerSec:   120e6,
	VertexScanNs:    100,
	MsgCPUNs:        120,
	MsgBytes:        12,
	VertexBytes:     100,
	EdgeBytes:       40,
	MsgMemBytes:     12,
	PerMachineBase:  1 * sim.GB,
	Imbalance:       1.2,
	SuperstepFixed:  0.08,
	JobStartup:      1.5,
	JobStartupPerM:  0.02,
	PressurePenalty: 2,
}

// maxInt32 is the MPI buffer-offset limit behind Blogel-B's GVD
// aggregation crash (§5.1): offsets into the gather buffer are C ints.
const maxInt32 = 1<<31 - 1

// VEngine is Blogel-V.
type VEngine struct {
	Profile sim.Profile
}

// NewV returns Blogel-V with the default profile.
func NewV() *VEngine { return &VEngine{Profile: Profile} }

// Name implements engine.Engine.
func (e *VEngine) Name() string { return "blogel-v" }

// Run implements engine.Engine.
func (e *VEngine) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: e.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	prof := e.Profile
	m := c.Size()

	mark := c.Clock()
	if err := c.Advance(prof.StartupSeconds(m)); err != nil {
		res.Overhead = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Overhead = c.Clock() - mark

	// Load the adj-long format (§4.3: Blogel needs every vertex to have
	// a line so in-edge-only vertices exist).
	mark = c.Clock()
	gr, err := d.LoadGraph(graph.FormatAdjLong)
	if err != nil {
		return res.Finish(c, err)
	}
	loaded, err := chargeLoad(c, &prof, d, gr, w, graph.FormatAdjLong)
	if err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	mark = c.Clock()
	cut := partition.EdgeCut{M: m, Seed: 7}
	cfg := bsp.Config{
		Graph:           gr,
		Scale:           d.Scale,
		M:               m,
		MachineOf:       cut.MachineOf,
		Profile:         &prof,
		ScanAll:         false, // Blogel touches only active vertices
		Shards:          opt.Shards,
		Pool:            opt.Pool,
		RecordIterStats: true,
		CheckpointEvery: opt.CheckpointInterval(),
		Direction:       opt.Direction,
		Governor:        opt.Governor,
		ShardPlan:       opt.ShardPlan,
		MemoryTier:      opt.MemoryTier,
	}
	configureWorkload(&cfg, w, d, opt)
	out, err := bsp.Run(c, cfg)
	res.Exec = c.Clock() - mark
	res.Iterations = dilated(out.Supersteps, cfg.TimeDilation)
	res.Costs = out.Recovery
	res.Govern = out.Govern
	res.PerIteration = out.IterStats
	fillOutputs(res, w, out)
	if err != nil {
		return res.Finish(c, err)
	}

	mark = c.Clock()
	resultBytes := int64(float64(gr.NumVertices()) * d.Scale * 16)
	if err := c.Advance(hdfs.WriteSeconds(resultBytes, m, c.Config().DiskBW, c.Config().NetBW)); err != nil {
		res.Save = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Save = c.Clock() - mark
	c.FreeAll(loaded)
	return res.Finish(c, nil)
}

// chargeLoad models the chunk-parallel C++ HDFS read (§4.3), the hash
// shuffle, and the resident graph memory. Shared by both modes.
func chargeLoad(c *sim.Cluster, prof *sim.Profile, d *engine.Dataset, gr *graph.Graph, w engine.Workload, format graph.Format) (int64, error) {
	m := c.Size()
	file, err := d.Open(format)
	if err != nil {
		return 0, err
	}
	perMachine := float64(file.PaperBytes) / float64(m)
	parse := prof.EdgeSeconds(float64(gr.NumEdges())*d.Scale/float64(m), c.Config().Cores)
	costs := make([]sim.StepCost, m)
	for i := range costs {
		costs[i] = sim.StepCost{
			ComputeSeconds: parse,
			DiskReadBytes:  perMachine,
			NetSendBytes:   perMachine * float64(m-1) / float64(m),
			NetRecvBytes:   perMachine * float64(m-1) / float64(m),
		}
	}
	if err := c.RunStep(costs); err != nil {
		return 0, err
	}
	// Single-chunk files serialize the read on one machine (§4.3).
	if file.Chunks < m {
		extra := hdfs.ParallelReadSeconds(file.PaperBytes, m, file.Chunks, c.Config().DiskBW) -
			perMachine/c.Config().DiskBW
		if extra > 0 {
			if err := c.Advance(extra); err != nil {
				return 0, err
			}
		}
	}

	vf, ef := 1.0, 1.0
	if w.Kind == engine.WCC {
		// Reverse-edge discovery grows edge storage (§5.8) — but lean
		// enough that ClueWeb WCC still fits at 128 machines alongside
		// the first superstep's message buffers (Table 7).
		vf, ef = 1.5, 1.45
	}
	memBytes := float64(gr.NumVertices())*d.Scale*prof.VertexBytes*vf +
		float64(gr.NumEdges())*d.Scale*prof.EdgeBytes*ef
	per := int64(memBytes/float64(m)*prof.Imbalance) + prof.PerMachineBase
	for i := 0; i < m; i++ {
		if err := c.Alloc(i, per); err != nil {
			return per, err
		}
	}
	return per, nil
}

func configureWorkload(cfg *bsp.Config, w engine.Workload, d *engine.Dataset, opt engine.Options) {
	switch w.Kind {
	case engine.PageRank:
		cfg.Program = &bsp.PageRankProgram{Damping: w.Damping}
		cfg.Combine = bsp.SumCombine
		cfg.StopDeltaBelow = w.Tolerance
		cfg.FixedSupersteps = w.MaxIterations
	case engine.WCC:
		cfg.Program = bsp.WCCProgram{}
		cfg.Combine = bsp.MinCombine
		cfg.CombineFrom = 1
		cfg.UseInNeighbors = true
		cfg.TimeDilation = d.DilationFor(engine.WCC)
	case engine.SSSP:
		cfg.Program = &bsp.SSSPProgram{Source: d.Source}
		cfg.Combine = bsp.MinCombine
		cfg.TimeDilation = d.DilationFor(engine.SSSP)
	case engine.KHop:
		cfg.Program = &bsp.KHopProgram{Source: d.Source, K: w.K}
		cfg.Combine = bsp.MinCombine
	case engine.Triangle:
		oriented, rank := graph.ForwardOrient(cfg.Graph)
		cfg.Graph = oriented
		cfg.Program = &bsp.TriangleProgram{Rank: rank}
		cfg.Combine = bsp.SumCombine
		cfg.CombineFrom = 1
	case engine.LPA:
		cfg.Graph = cfg.Graph.Simple()
		cfg.Program = &bsp.LPAProgram{Rounds: w.LPAIterations()}
	}
	if opt.DisableCombiner {
		cfg.Combine = nil
	}
	if w.MaxIterations > 0 && w.Kind != engine.PageRank && w.Kind != engine.LPA {
		cfg.MaxSupersteps = w.MaxIterations
	}
}

func dilated(supersteps int, dilation float64) int {
	if dilation < 1 {
		dilation = 1
	}
	return int(float64(supersteps)*dilation + 0.5)
}

func fillOutputs(res *engine.Result, w engine.Workload, out *bsp.Output) {
	switch w.Kind {
	case engine.PageRank:
		res.Ranks = out.Values
	case engine.WCC:
		res.Labels = bsp.LabelsFromValues(out.Values)
	case engine.SSSP, engine.KHop:
		res.Dist = bsp.DistancesFromValues(out.Values)
	case engine.Triangle:
		res.Triangles = bsp.TrianglesFromValues(out.Values)
	case engine.LPA:
		res.Labels = bsp.CommunityLabelsFromValues(out.Values)
	}
}
