package snapshot_test

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"graphbench/internal/snapshot"
)

// FuzzSnapshotDecode drives the container parser with arbitrary bytes:
// input must either fail with an error or yield a graph that writes
// back to a container decoding to the identical CSR — and must never
// panic or allocate unboundedly (section sizes are slices of the input,
// never allocations derived from header counts). The seed corpus
// covers valid containers plus each corruption class the decoder
// rejects.
func FuzzSnapshotDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range []struct{ n, e int }{{1, 0}, {4, 9}, {32, 150}} {
		g := randomMultigraph(rng, shape.n, shape.e, "seed", 100)
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, g, int64(shape.n)); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(slices.Clone(valid))
		f.Add(slices.Clone(valid[:len(valid)/2])) // truncated
		f.Add(slices.Clone(valid[:64]))           // header only
		corrupt := slices.Clone(valid)
		corrupt[len(corrupt)/3] ^= 0x40
		f.Add(corrupt) // checksum mismatch
	}
	f.Add([]byte{})
	f.Add([]byte("GBCSRSNP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, seed, err := snapshot.Decode(data)
		if err != nil {
			return // rejected input: an error, never a panic
		}
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, g, seed); err != nil {
			t.Fatalf("re-encoding a decoded graph failed: %v", err)
		}
		g2, seed2, err := snapshot.Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decoding written output failed: %v", err)
		}
		c, c2 := g.RawCSR(), g2.RawCSR()
		if seed2 != seed {
			t.Fatalf("seed changed across round trip: %d vs %d", seed, seed2)
		}
		if c.Name != c2.Name || c.Scale != c2.Scale || c.SelfEdges != c2.SelfEdges ||
			!slices.Equal(c.OutOffsets, c2.OutOffsets) || !slices.Equal(c.OutEdges, c2.OutEdges) ||
			!slices.Equal(c.InOffsets, c2.InOffsets) || !slices.Equal(c.InEdges, c2.InEdges) ||
			!slices.Equal(c.WorkPrefix, c2.WorkPrefix) {
			t.Fatalf("round trip through Write changed the CSR")
		}
	})
}
