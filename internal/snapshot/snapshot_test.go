package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"graphbench/internal/graph"
	"graphbench/internal/snapshot"
)

// randomMultigraph builds a graph with duplicate edges and self-loops —
// the shapes the generators produce — so round-trip tests cover the
// full invariant surface (sorted runs with dupes, self-edge counting).
func randomMultigraph(rng *rand.Rand, n, e int, name string, scale float64) *graph.Graph {
	b := graph.NewBuilder(n).SetName(name).SetScaleFactor(scale)
	for i := 0; i < e; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// assertIdentical fails unless got reproduces every CSR array and
// metadata field of want exactly.
func assertIdentical(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	w, g := want.RawCSR(), got.RawCSR()
	if g.Name != w.Name || g.Scale != w.Scale || g.SelfEdges != w.SelfEdges {
		t.Fatalf("metadata changed: (%q, %g, %d) vs (%q, %g, %d)",
			w.Name, w.Scale, w.SelfEdges, g.Name, g.Scale, g.SelfEdges)
	}
	if !slices.Equal(g.OutOffsets, w.OutOffsets) || !slices.Equal(g.OutEdges, w.OutEdges) {
		t.Fatalf("out-CSR arrays changed")
	}
	if !slices.Equal(g.InOffsets, w.InOffsets) || !slices.Equal(g.InEdges, w.InEdges) {
		t.Fatalf("in-CSR arrays changed")
	}
	if !slices.Equal(g.WorkPrefix, w.WorkPrefix) {
		t.Fatalf("work prefix changed")
	}
	if want.Stats() != got.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", want.Stats(), got.Stats())
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ n, e int }{
		{1, 0}, {1, 5}, {2, 3}, {17, 60}, {100, 1000}, {500, 200},
	}
	for _, c := range cases {
		for trial := 0; trial < 5; trial++ {
			g := randomMultigraph(rng, c.n, c.e, "rand", 1+rng.Float64()*1e6)
			var buf bytes.Buffer
			seed := rng.Int63()
			if err := snapshot.Write(&buf, g, seed); err != nil {
				t.Fatalf("n=%d e=%d: write: %v", c.n, c.e, err)
			}
			got, gotSeed, err := snapshot.Decode(buf.Bytes())
			if err != nil {
				t.Fatalf("n=%d e=%d: decode: %v", c.n, c.e, err)
			}
			assertIdentical(t, g, got)
			if gotSeed != seed {
				t.Fatalf("seed round-tripped to %d, want %d", gotSeed, seed)
			}
		}
	}
}

func TestRoundTripEmptyAndZeroValue(t *testing.T) {
	for _, g := range []*graph.Graph{graph.NewBuilder(0).Build(), {}} {
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, g, 0); err != nil {
			t.Fatal(err)
		}
		got, _, err := snapshot.Decode(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != 0 || got.NumEdges() != 0 {
			t.Fatalf("empty graph round-tripped to %d vertices, %d edges",
				got.NumVertices(), got.NumEdges())
		}
	}
}

func TestSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMultigraph(rng, 64, 400, "twitter", 100000)
	path := filepath.Join(t.TempDir(), "nested", "dir", "twitter"+snapshot.Ext)
	if err := snapshot.Save(path, g, 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // repeated loads (mmap path) must agree
		got, seed, err := snapshot.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, g, got)
		if seed != 42 {
			t.Fatalf("loaded seed %d, want 42", seed)
		}
	}
	// No temp files left behind by the atomic save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("save left %d directory entries, want 1", len(entries))
	}
}

// snapshotBytes returns a valid container for corruption tests.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	g := randomMultigraph(rand.New(rand.NewSource(3)), 32, 150, "t", 10)
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, g, 7); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixCRC recomputes the trailer checksum after a deliberate mutation,
// so corruption reaches the structural validators instead of the
// checksum gate.
func fixCRC(data []byte) {
	sum := crc32.Checksum(data[:len(data)-8], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-8:], sum)
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := snapshotBytes(t)
	mutate := func(fn func(d []byte)) []byte {
		d := slices.Clone(valid)
		fn(d)
		return d
	}
	cases := map[string][]byte{
		"empty":        {},
		"header only":  valid[:64],
		"bad magic":    mutate(func(d []byte) { d[0] ^= 0xff }),
		"bad version":  mutate(func(d []byte) { d[8] = 99 }),
		"flipped byte": mutate(func(d []byte) { d[len(d)/2] ^= 1 }),
		"bad end magic": mutate(func(d []byte) {
			d[len(d)-1] ^= 0xff
		}),
		"section out of bounds": mutate(func(d []byte) {
			// Grow the out-edges section length past the file end.
			binary.LittleEndian.PutUint64(d[64+24*2+16:], 1<<40)
			fixCRC(d)
		}),
		"self-edge count lies": mutate(func(d []byte) {
			binary.LittleEndian.PutUint64(d[32:], binary.LittleEndian.Uint64(d[32:])+1)
			fixCRC(d)
		}),
		"implausible vertex count": mutate(func(d []byte) {
			binary.LittleEndian.PutUint64(d[16:], 1<<40)
			fixCRC(d)
		}),
	}
	for name, data := range cases {
		if _, _, err := snapshot.Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	valid := snapshotBytes(t)
	for n := 0; n < len(valid); n++ {
		if _, _, err := snapshot.Decode(valid[:n]); err == nil {
			t.Fatalf("decode accepted truncation to %d of %d bytes", n, len(valid))
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := snapshot.Load(filepath.Join(t.TempDir(), "absent"+snapshot.Ext)); err == nil {
		t.Fatal("load of a missing file succeeded")
	}
}
