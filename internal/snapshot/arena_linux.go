//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// readArena returns the file's bytes as one arena. On linux it
// memory-maps the file read-only — the zero-copy fast path: no read(2)
// copy, pages fault in on demand, and repeated loads of a cached
// fixture share the page cache. The returned release func unmaps the
// arena (hooked to the graph's lifetime by Load); it is nil when the
// arena is ordinary heap memory. Mapping failures (pseudo-files, empty
// files, exotic filesystems) fall back to os.ReadFile. populate selects
// MAP_POPULATE prefaulting; the governor's soft-pressure tier passes
// false to keep the arena demand-paged.
func readArena(path string, populate bool) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	// MAP_POPULATE prefaults the whole file in the mmap call: the
	// checksum and validation scans touch every page immediately
	// anyway, so one readahead beats a page fault per 4 KiB. Under
	// memory pressure the caller disables it and pages fault on demand.
	flags := syscall.MAP_PRIVATE
	if populate {
		flags |= syscall.MAP_POPULATE
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, flags)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
