// Package snapshot persists built graphs as versioned, checksummed
// binary CSR containers, so paper-scale fixtures load in O(sections)
// arena slices instead of O(E) text parsing — the I/O wall GraphD
// attacks with streamed binary adjacency (PAPERS.md).
//
// # Container layout (version 2, all fields little-endian)
//
//	offset  size  field
//	0       8     magic "GBCSRSNP"
//	8       4     format version (uint32)
//	12      4     flags (bit 0: work-prefix section present)
//	16      8     vertex count (uint64)
//	24      8     edge count (uint64)
//	32      8     self-edge count (uint64)
//	40      8     scale factor (float64 bits)
//	48      8     generation seed (int64 bits)
//	56      4     section count (uint32)
//	60      4     reserved
//	64      24×k  section table: {kind u32, pad u32, offset u64, bytes u64}
//	...           section payloads, each starting at an 8-aligned offset
//	end-8   4     CRC-32C (Castagnoli) of every preceding byte
//	end-4   4     end magic "GBSE"
//
// Version 2 added the generation seed (and grew the header from 56 to
// 64 bytes): the graph's bytes don't encode the seed that produced
// them, so a version-1 snapshot renamed — or restored by CI under the
// wrong seed's cache key — loaded silently with wrong data.
// datasets.Cache now rejects entries whose embedded seed disagrees
// with the requested one.
//
// Sections persist the already-built CSR arrays of graph.CSR: the
// dataset name (raw UTF-8), out-offsets/out-edges, in-offsets/in-edges
// (int32), and the cached work-prefix sums (int64). Offsets live in the
// header's section table, so a loader slurps the file into one arena
// (mmap on linux, os.ReadFile elsewhere) and aliases each array
// in place; on little-endian hosts no per-element work happens at all
// beyond validation.
//
// # Versioning and compatibility
//
// Version is bumped whenever the byte layout, the section set, or the
// semantics of a section change. Readers reject other versions — a
// snapshot is a cache entry, not an archival format, and the writer is
// always available to regenerate it (datasets.Cache keys file names by
// this version, so a bump simply misses the cache). Unknown section
// kinds are ignored, which leaves room for additive extensions within
// a version.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"graphbench/internal/graph"
)

// Version is the container format version. datasets.Cache keys cache
// file names by it, so bumping it invalidates every cached snapshot.
// Version 2: generation seed embedded in the header (64-byte header).
const Version = 2

// Ext is the conventional file extension for snapshot files.
const Ext = ".csrbin"

const (
	magic    = "GBCSRSNP"
	endMagic = "GBSE"

	flagWorkPrefix = 1 << 0

	headerSize = 64
	entrySize  = 24
	trailerLen = 8

	secName       = 1
	secOutOffsets = 2
	secOutEdges   = 3
	secInOffsets  = 4
	secInEdges    = 5
	secWorkPrefix = 6

	// maxSections bounds the table a reader will walk; version 1
	// writes exactly 6.
	maxSections = 64
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Write streams g as a snapshot container to w in one pass (the
// checksum lives in a trailer, so no seeking is needed). seed is the
// generation seed the graph was built from, persisted so cache lookups
// can reject entries restored under the wrong key; writers without a
// meaningful seed (hand-built graphs) pass 0.
func Write(w io.Writer, g *graph.Graph, seed int64) error {
	c := g.RawCSR()
	n := uint64(len(c.OutOffsets) - 1)

	type section struct {
		kind    uint32
		payload []byte
	}
	sections := []section{
		{secName, []byte(c.Name)},
		{secOutOffsets, int32Bytes(c.OutOffsets)},
		{secOutEdges, vidBytes(c.OutEdges)},
		{secInOffsets, int32Bytes(c.InOffsets)},
		{secInEdges, vidBytes(c.InEdges)},
		{secWorkPrefix, int64Bytes(c.WorkPrefix)},
	}

	header := make([]byte, headerSize+entrySize*len(sections))
	copy(header, magic)
	le := binary.LittleEndian
	le.PutUint32(header[8:], Version)
	le.PutUint32(header[12:], flagWorkPrefix)
	le.PutUint64(header[16:], n)
	le.PutUint64(header[24:], uint64(len(c.OutEdges)))
	le.PutUint64(header[32:], uint64(c.SelfEdges))
	le.PutUint64(header[40:], math.Float64bits(c.Scale))
	le.PutUint64(header[48:], uint64(seed))
	le.PutUint32(header[56:], uint32(len(sections)))

	offset := uint64(len(header))
	for i, s := range sections {
		offset = align8(offset)
		e := header[headerSize+entrySize*i:]
		le.PutUint32(e, s.kind)
		le.PutUint64(e[8:], offset)
		le.PutUint64(e[16:], uint64(len(s.payload)))
		offset += uint64(len(s.payload))
	}

	cw := &crcWriter{w: w}
	if _, err := cw.Write(header); err != nil {
		return err
	}
	var pad [8]byte
	written := uint64(len(header))
	for _, s := range sections {
		if p := align8(written) - written; p > 0 {
			if _, err := cw.Write(pad[:p]); err != nil {
				return err
			}
			written += p
		}
		if _, err := cw.Write(s.payload); err != nil {
			return err
		}
		written += uint64(len(s.payload))
	}
	var trailer [trailerLen]byte
	le.PutUint32(trailer[:], cw.sum)
	copy(trailer[4:], endMagic)
	_, err := w.Write(trailer[:])
	return err
}

// Save writes g's snapshot to path atomically and durably: temp file +
// fsync + rename in the same directory, then an fsync of the directory
// so the rename itself survives a crash. Parent directories are created
// as needed. Partial writes are never visible to concurrent loaders,
// and the temp file is removed on every error path — a disk-full or
// crashed writer leaves no .tmp* litter behind.
func Save(path string, g *graph.Graph, seed int64) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, g, seed); err != nil {
		tmp.Close()
		return err
	}
	// Data must be durable before the rename publishes the name: a
	// rename that survives a crash while the bytes did not is exactly
	// the torn snapshot the checksum exists to catch — don't write one.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory containing a just-renamed file, making
// the rename durable. Filesystems that cannot fsync a directory (some
// network and FUSE mounts) degrade to the old behaviour: the data is
// synced, only the directory entry rides on the next journal flush.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}

// Load reads the snapshot at path and reconstructs the graph plus the
// generation seed recorded by the writer. On linux
// the file is memory-mapped and the CSR arrays alias the mapping
// (released when the Graph is garbage-collected); elsewhere, or when
// mapping fails, the file is read into one heap arena. Either way the
// arrays are aliased in place on little-endian hosts — load cost is
// the checksum plus validation scans, not per-element parsing.
func Load(path string) (*graph.Graph, int64, error) {
	return load(path, true)
}

// LoadLazy is Load without readahead prefaulting: the mmap arena is
// mapped demand-paged instead of MAP_POPULATE, so pages fault in as the
// run touches them and cold regions never become resident. The memory
// governor's soft-pressure tier loads fixtures this way — trading the
// first traversal's page-fault latency for a smaller resident set.
func LoadLazy(path string) (*graph.Graph, int64, error) {
	return load(path, false)
}

func load(path string, populate bool) (*graph.Graph, int64, error) {
	data, release, err := readArena(path, populate)
	if err != nil {
		return nil, 0, err
	}
	g, seed, err := Decode(data)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, 0, err
	}
	if release != nil {
		arenaCleanup(g, release)
	}
	return g, seed, nil
}

// Decode reconstructs a graph (and the generation seed recorded by the
// writer) from snapshot container bytes. The returned graph's arrays
// alias data (on little-endian hosts), which must therefore stay live
// and unmodified for the graph's lifetime. Arbitrary input yields an
// error, never a panic.
func Decode(data []byte) (*graph.Graph, int64, error) {
	le := binary.LittleEndian
	if len(data) < headerSize+trailerLen {
		return nil, 0, fmt.Errorf("snapshot: truncated: %d bytes", len(data))
	}
	if string(data[:8]) != magic {
		return nil, 0, fmt.Errorf("snapshot: bad magic")
	}
	if v := le.Uint32(data[8:]); v != Version {
		return nil, 0, fmt.Errorf("snapshot: format version %d, reader supports %d", v, Version)
	}
	if string(data[len(data)-4:]) != endMagic {
		return nil, 0, fmt.Errorf("snapshot: bad end magic (truncated file?)")
	}
	body := data[:len(data)-trailerLen]
	if sum := crc32.Checksum(body, castagnoli); sum != le.Uint32(data[len(data)-trailerLen:]) {
		return nil, 0, fmt.Errorf("snapshot: checksum mismatch (corrupt file)")
	}

	flags := le.Uint32(data[12:])
	nv := le.Uint64(data[16:])
	ne := le.Uint64(data[24:])
	selfEdges := le.Uint64(data[32:])
	scale := math.Float64frombits(le.Uint64(data[40:]))
	seed := int64(le.Uint64(data[48:]))
	nsec := le.Uint32(data[56:])
	if nv > math.MaxInt32 || ne > math.MaxInt32 || selfEdges > ne {
		return nil, 0, fmt.Errorf("snapshot: implausible counts: %d vertices, %d edges, %d self-edges", nv, ne, selfEdges)
	}
	if nsec > maxSections {
		return nil, 0, fmt.Errorf("snapshot: %d sections exceeds limit %d", nsec, maxSections)
	}
	tableEnd := uint64(headerSize) + entrySize*uint64(nsec)
	if tableEnd > uint64(len(body)) {
		return nil, 0, fmt.Errorf("snapshot: section table overruns file")
	}

	sections := make(map[uint32][]byte, nsec)
	for i := uint64(0); i < uint64(nsec); i++ {
		e := data[headerSize+entrySize*i:]
		kind := le.Uint32(e)
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		if off < tableEnd || off > uint64(len(body)) || length > uint64(len(body))-off {
			return nil, 0, fmt.Errorf("snapshot: section %d out of bounds (offset %d, %d bytes)", kind, off, length)
		}
		if kind != secName && off%8 != 0 {
			return nil, 0, fmt.Errorf("snapshot: section %d misaligned at offset %d", kind, off)
		}
		if _, dup := sections[kind]; dup {
			return nil, 0, fmt.Errorf("snapshot: duplicate section %d", kind)
		}
		sections[kind] = data[off : off+length]
	}

	outOffsets, err := int32Section(sections, secOutOffsets, nv+1)
	if err != nil {
		return nil, 0, err
	}
	outEdges, err := int32Section(sections, secOutEdges, ne)
	if err != nil {
		return nil, 0, err
	}
	inOffsets, err := int32Section(sections, secInOffsets, nv+1)
	if err != nil {
		return nil, 0, err
	}
	inEdges, err := int32Section(sections, secInEdges, ne)
	if err != nil {
		return nil, 0, err
	}
	c := graph.CSR{
		Name:       string(sections[secName]),
		Scale:      scale,
		SelfEdges:  int(selfEdges),
		OutOffsets: outOffsets,
		OutEdges:   asVertexIDs(outEdges),
		InOffsets:  inOffsets,
		InEdges:    asVertexIDs(inEdges),
	}
	if flags&flagWorkPrefix != 0 {
		if c.WorkPrefix, err = int64Section(sections, secWorkPrefix, nv+1); err != nil {
			return nil, 0, err
		}
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, 0, fmt.Errorf("snapshot: invalid scale factor %v", scale)
	}
	g, err := graph.FromCSR(c)
	if err != nil {
		return nil, 0, err
	}
	return g, seed, nil
}

func int32Section(sections map[uint32][]byte, kind uint32, count uint64) ([]int32, error) {
	b, ok := sections[kind]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing section %d", kind)
	}
	if uint64(len(b)) != 4*count {
		return nil, fmt.Errorf("snapshot: section %d is %d bytes, want %d", kind, len(b), 4*count)
	}
	return asInt32s(b), nil
}

func int64Section(sections map[uint32][]byte, kind uint32, count uint64) ([]int64, error) {
	b, ok := sections[kind]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing section %d", kind)
	}
	if uint64(len(b)) != 8*count {
		return nil, fmt.Errorf("snapshot: section %d is %d bytes, want %d", kind, len(b), 8*count)
	}
	return asInt64s(b), nil
}

type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, castagnoli, p)
	return c.w.Write(p)
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }
