package snapshot

import (
	"encoding/binary"
	"runtime"
	"unsafe"

	"graphbench/internal/graph"
)

// hostLittleEndian reports whether the native byte order matches the
// container's little-endian layout. When it does (every platform this
// repo targets), sections are aliased in place; otherwise they are
// copy-decoded element by element.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// asInt32s reinterprets b as []int32 without copying when the host is
// little-endian and the section is aligned (the writer 8-aligns every
// array section, and arenas are at least 8-aligned).
func asInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func asInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// asVertexIDs reinterprets []int32 as []graph.VertexID — the types
// share the int32 representation.
func asVertexIDs(s []int32) []graph.VertexID {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.VertexID)(unsafe.Pointer(&s[0])), len(s))
}

// int32Bytes views s as its little-endian byte encoding, aliasing on
// little-endian hosts (the writer only reads the result).
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func vidBytes(s []graph.VertexID) []byte {
	if len(s) == 0 {
		return nil
	}
	return int32Bytes(unsafe.Slice((*int32)(unsafe.Pointer(&s[0])), len(s)))
}

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	b := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

// arenaCleanup releases a graph's backing arena (the mmap mapping)
// once the graph becomes unreachable. Slices handed out by the graph
// (OutNeighbors etc.) alias its storage and must not outlive it, which
// is already the package contract.
func arenaCleanup(g *graph.Graph, release func()) {
	runtime.AddCleanup(g, func(r func()) { r() }, release)
}
