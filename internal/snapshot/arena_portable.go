//go:build !linux

package snapshot

import "os"

// readArena returns the file's bytes as one heap arena — the portable
// fallback for platforms without the mmap fast path. The release func
// is always nil: the arena is garbage-collected with the graph. The
// populate hint is meaningless for a heap arena.
func readArena(path string, _ bool) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
