package chaos

import (
	"reflect"
	"sync"
	"testing"

	"graphbench/internal/sim"
)

func TestNewPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		a := NewPlan(seed, 16, 10)
		b := NewPlan(seed, 16, 10)
		if a != b {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
		if a.KillMachine < 0 || a.KillMachine >= 16 {
			t.Fatalf("seed %d: victim %d out of [0,16)", seed, a.KillMachine)
		}
		if a.AtSuperstep < 0 || a.AtSuperstep >= 10 {
			t.Fatalf("seed %d: boundary %d out of [0,10)", seed, a.AtSuperstep)
		}
		if a.Kind != KillMachine {
			t.Fatalf("seed %d: kind %v", seed, a.Kind)
		}
	}
	// Different seeds spread over victims and boundaries.
	victims, bounds := map[int]bool{}, map[int]bool{}
	for seed := int64(0); seed < 100; seed++ {
		p := NewPlan(seed, 16, 10)
		victims[p.KillMachine] = true
		bounds[p.AtSuperstep] = true
	}
	if len(victims) < 8 || len(bounds) < 5 {
		t.Fatalf("poor spread: %d victims, %d boundaries over 100 seeds", len(victims), len(bounds))
	}
	// Degenerate sizes clamp to 1, not panic.
	if p := NewPlan(1, 0, -3); p.KillMachine != 0 || p.AtSuperstep != 0 {
		t.Fatalf("degenerate plan %+v, want machine 0 boundary 0", p)
	}
}

func TestPlanFailure(t *testing.T) {
	p := Plan{Seed: 9, Kind: KillMachine, KillMachine: 5, AtSuperstep: 2}
	f := p.Failure()
	if f.Status != sim.Killed || f.Machine != 5 || !f.Recoverable {
		t.Fatalf("failure %+v", f)
	}
	if !sim.IsRecoverable(f) {
		t.Fatal("injected kill must be recoverable")
	}
}

func TestInjectorOneShot(t *testing.T) {
	p := Plan{KillMachine: 3, AtSuperstep: 2}
	in := p.Injector()
	if in.Fired() {
		t.Fatal("fresh injector claims fired")
	}
	// Boundaries before the target pass clean.
	for b := 0; b < 2; b++ {
		if f := in.NextFault(b, 8); f != nil {
			t.Fatalf("boundary %d: unexpected fault %v", b, f)
		}
	}
	f := in.NextFault(2, 8)
	if f == nil || f.Machine != 3 || f.Status != sim.Killed {
		t.Fatalf("boundary 2: fault %+v", f)
	}
	if !in.Fired() {
		t.Fatal("injector not marked fired")
	}
	// One-shot: replaying the same boundary after recovery is clean.
	if f := in.NextFault(2, 8); f != nil {
		t.Fatalf("refire: %v", f)
	}
}

func TestInjectorClampsVictim(t *testing.T) {
	in := (&Plan{KillMachine: 13, AtSuperstep: 0}).Injector()
	f := in.NextFault(0, 4)
	if f == nil || f.Machine != 13%4 {
		t.Fatalf("clamped fault %+v, want machine %d", f, 13%4)
	}
}

func TestSourceRates(t *testing.T) {
	// Nil and rate-0 sources never inject.
	var nilSrc *Source
	if p := nilSrc.PlanFor("k", 0, 8); p != nil {
		t.Fatalf("nil source injected %+v", p)
	}
	off := NewSource(1, 0)
	for a := 0; a < 50; a++ {
		if p := off.PlanFor("k", a, 8); p != nil {
			t.Fatalf("rate-0 source injected %+v", p)
		}
	}
	// Rate 1 injects every attempt, with boundaries low enough to fire
	// on the shortest workload.
	on := NewSource(1, 1)
	for a := 0; a < 50; a++ {
		p := on.PlanFor("k", a, 8)
		if p == nil {
			t.Fatalf("rate-1 source spared attempt %d", a)
		}
		if p.AtSuperstep < 0 || p.AtSuperstep >= sourceBoundaries {
			t.Fatalf("attempt %d: boundary %d out of [0,%d)", a, p.AtSuperstep, sourceBoundaries)
		}
		if p.KillMachine < 0 || p.KillMachine >= 8 {
			t.Fatalf("attempt %d: victim %d out of [0,8)", a, p.KillMachine)
		}
	}
	// A mid rate lands near its target over many keys.
	mid := NewSource(42, 0.3)
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if mid.PlanFor(string(rune('a'+i%26))+string(rune('0'+i/26%10)), i, 8) != nil {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.2 || frac > 0.4 {
		t.Fatalf("rate 0.3 injected %.3f of attempts", frac)
	}
}

func TestSourceDeterministicPerAttempt(t *testing.T) {
	s := NewSource(7, 0.5)
	// Same (key, attempt) → same verdict and plan, across calls and
	// across source instances with the same seed.
	s2 := NewSource(7, 0.5)
	differ := false
	for a := 0; a < 20; a++ {
		p1 := s.PlanFor("twitter/pagerank/giraph/m16/s1", a, 16)
		p2 := s.PlanFor("twitter/pagerank/giraph/m16/s1", a, 16)
		p3 := s2.PlanFor("twitter/pagerank/giraph/m16/s1", a, 16)
		if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(p1, p3) {
			t.Fatalf("attempt %d: verdicts diverge: %+v %+v %+v", a, p1, p2, p3)
		}
		if (p1 == nil) != (s.PlanFor("twitter/wcc/giraph/m16/s1", a, 16) == nil) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("distinct keys never diverged over 20 attempts at rate 0.5")
	}
}

func TestSourceSetRateConcurrent(t *testing.T) {
	s := NewSource(1, 0.5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.SetRate(float64(j % 2)) // flip 0 ↔ 1
				s.PlanFor("k", j, 8)
				_ = s.Rate()
			}
		}()
	}
	wg.Wait()
	s.SetRate(0.25)
	if got := s.Rate(); got != 0.25 {
		t.Fatalf("rate %v after concurrent churn, want 0.25", got)
	}
}
