// Package chaos provides deterministic fault injection for the
// simulated cluster: seeded plans that kill a chosen machine at a
// chosen superstep/job boundary, and a rate-based source that derives
// per-attempt plans for serve-path chaos testing.
//
// Everything here is reproducible. A Plan is a pure value; the victim
// machine and boundary derived by NewPlan are splitmix64 functions of
// the seed, and a Source's per-attempt verdicts are hash functions of
// (seed, request key, attempt number) — the same run always sees the
// same failure schedule, which is what makes recovered runs comparable
// bit-for-bit against failure-free ones (internal/enginetest's fault
// matrix) and chaos tests stable under -race.
package chaos

import (
	"fmt"
	"math"
	"sync/atomic"

	"graphbench/internal/sim"
)

// Kind is the class of fault a plan injects.
type Kind int

const (
	// KillMachine fails one machine at a boundary. It is recoverable:
	// the machine's state is recomputable from a checkpoint, the job's
	// materialized inputs, or lineage, depending on the system.
	KillMachine Kind = iota
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KillMachine:
		return "kill-machine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan is one deterministic fault schedule: machine KillMachine dies
// when the run crosses boundary AtSuperstep (a superstep for BSP
// engines, a job index for MapReduce chains, an iteration or stage for
// GraphX). The zero Plan kills machine 0 at boundary 0.
type Plan struct {
	Seed        int64
	Kind        Kind
	KillMachine int
	AtSuperstep int
}

// NewPlan derives a reproducible plan from seed for a run on machines
// machines expected to cross about boundaries superstep/job
// boundaries: two splitmix64 streams pick the victim machine and the
// boundary. The same seed always yields the same plan.
func NewPlan(seed int64, machines, boundaries int) Plan {
	if machines < 1 {
		machines = 1
	}
	if boundaries < 1 {
		boundaries = 1
	}
	h1 := splitmix64(uint64(seed))
	h2 := splitmix64(h1)
	return Plan{
		Seed:        seed,
		Kind:        KillMachine,
		KillMachine: int(h1 % uint64(machines)),
		AtSuperstep: int(h2 % uint64(boundaries)),
	}
}

// String describes the plan.
func (p Plan) String() string {
	return fmt.Sprintf("%v %d at boundary %d (seed %d)", p.Kind, p.KillMachine, p.AtSuperstep, p.Seed)
}

// Failure builds the recoverable sim.Failure this plan injects.
func (p Plan) Failure() *sim.Failure {
	return &sim.Failure{
		Status:      sim.Killed,
		Machine:     p.KillMachine,
		Recoverable: true,
		Detail:      fmt.Sprintf("injected %v", p),
	}
}

// Injector returns a fresh one-shot injector for the plan: the fault
// fires the first time a run crosses the plan's boundary and never
// again, so replay after recovery proceeds cleanly and the whole
// schedule reproduces from the seed. An Injector belongs to a single
// run; it is not safe for concurrent use.
func (p Plan) Injector() *Injector { return &Injector{plan: p} }

// Injector is the one-shot sim.Injector of a Plan.
type Injector struct {
	plan  Plan
	fired bool
}

// NextFault implements sim.Injector.
func (in *Injector) NextFault(boundary, machines int) *sim.Failure {
	if in.fired || boundary != in.plan.AtSuperstep {
		return nil
	}
	in.fired = true
	f := in.plan.Failure()
	if machines > 0 && f.Machine >= machines {
		// The plan was derived for a larger cluster; kill a real machine
		// so the failure stays meaningful.
		f.Machine %= machines
	}
	return f
}

// Fired reports whether the fault has been delivered.
func (in *Injector) Fired() bool { return in.fired }

// sourceBoundaries is how many early boundaries a Source's derived
// plans target. Keeping AtSuperstep below the shortest workload's
// boundary count (triangle counting: 3 jobs/supersteps/stages) means
// an injected plan actually fires on every workload.
const sourceBoundaries = 3

// Source derives per-attempt fault plans for a stream of run attempts
// — the serve path's chaos feed. Attempt a of request key k suffers a
// fault with probability Rate, decided by hashing (Seed, k, a): the
// same attempt always gets the same verdict, so failure schedules are
// reproducible across processes and under -race, while retries (higher
// attempt numbers) draw fresh verdicts and almost surely succeed.
//
// The rate is mutable at runtime (SetRate) so operators and tests can
// turn chaos off without restarting; all methods are safe for
// concurrent use.
type Source struct {
	seed     int64
	rateBits atomic.Uint64 // math.Float64bits of the injection rate
}

// NewSource returns a source injecting faults into the given fraction
// of attempts (0 disables, 1 fails every attempt).
func NewSource(seed int64, rate float64) *Source {
	s := &Source{seed: seed}
	s.SetRate(rate)
	return s
}

// Seed returns the source's seed.
func (s *Source) Seed() int64 { return s.seed }

// Rate returns the current injection rate.
func (s *Source) Rate() float64 { return math.Float64frombits(s.rateBits.Load()) }

// SetRate changes the injection rate; 0 turns chaos off.
func (s *Source) SetRate(rate float64) { s.rateBits.Store(math.Float64bits(rate)) }

// PlanFor returns the plan for attempt attempt of the run identified
// by key on a machines-machine cluster, or nil when this attempt is
// spared. Nil receivers never inject.
func (s *Source) PlanFor(key string, attempt, machines int) *Plan {
	if s == nil {
		return nil
	}
	rate := s.Rate()
	if rate <= 0 {
		return nil
	}
	h := splitmix64(uint64(s.seed))
	for _, b := range []byte(key) {
		h = splitmix64(h ^ uint64(b))
	}
	h = splitmix64(h ^ uint64(attempt))
	if float64(h%(1<<20))/float64(1<<20) >= rate {
		return nil
	}
	p := NewPlan(int64(splitmix64(h)), machines, sourceBoundaries)
	return &p
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mix used to derive victims, boundaries, and verdicts from
// seeds without any global random state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
