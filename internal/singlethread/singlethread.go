// Package singlethread implements the GAP Benchmark Suite style
// single-thread algorithms the paper uses for its COST analysis (§5.13)
// and for the "single thread" reference line in Figures 5–9:
// PageRank, direction-optimizing BFS for SSSP, Shiloach–Vishkin WCC,
// and bounded BFS for K-hop.
//
// These implementations also serve as the correctness oracles for every
// distributed engine in the repository: engine outputs are compared
// against them in the integration tests. The extension workloads'
// oracles — forward triangle counting and synchronous label
// propagation — live in workloads.go next to this file.
//
// Each algorithm returns operation Counters; the harness converts them
// to modeled seconds with the single-thread cost profile to place the
// COST line.
package singlethread

import (
	"graphbench/internal/graph"
)

// Counters tallies the abstract work of a run, for COST accounting.
type Counters struct {
	EdgeOps   float64 // edge examinations
	VertexOps float64 // vertex updates/scans
}

// PageRank runs the paper's PageRank (§3.1): pr(v) = δ + (1−δ)·Σ
// pr(u)/outDegree(u) over in-edges, synchronously, starting from rank 1,
// until the maximum change drops below tol or maxIter iterations pass
// (whichever comes first; maxIter ≤ 0 means unbounded). Dangling mass is
// not redistributed, matching the Pregel-style implementations the
// paper's systems ship.
func PageRank(g *graph.Graph, damping, tol float64, maxIter int) (ranks []float64, iters int, c Counters) {
	n := g.NumVertices()
	ranks = make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0
	}
	contrib := make([]float64, n)
	next := make([]float64, n)
	for {
		iters++
		for v := 0; v < n; v++ {
			if d := g.OutDegree(graph.VertexID(v)); d > 0 {
				contrib[v] = ranks[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		maxDelta := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.VertexID(v)) {
				sum += contrib[u]
			}
			next[v] = damping + (1-damping)*sum
			if d := abs(next[v] - ranks[v]); d > maxDelta {
				maxDelta = d
			}
		}
		ranks, next = next, ranks
		c.EdgeOps += float64(g.NumEdges())
		c.VertexOps += float64(n)
		if maxIter > 0 && iters >= maxIter {
			break
		}
		if maxIter <= 0 && maxDelta < tol {
			break
		}
	}
	return ranks, iters, c
}

// WCC computes weakly connected components with the Shiloach–Vishkin
// algorithm (hooking + pointer jumping) over the undirected view — the
// optimized single-thread implementation the paper's COST experiment
// uses. Labels are canonicalized to the minimum vertex id of each
// component, so they are directly comparable with HashMin outputs.
func WCC(g *graph.Graph) (labels []graph.VertexID, c Counters) {
	n := g.NumVertices()
	parent := make([]graph.VertexID, n)
	for i := range parent {
		parent[i] = graph.VertexID(i)
	}
	u := g.Undirected()

	for changed := true; changed; {
		changed = false
		// Hooking: for each edge, attach the larger root under the smaller.
		u.Edges(func(a, b graph.VertexID) bool {
			c.EdgeOps++
			pa, pb := parent[a], parent[b]
			if pa == pb {
				return true
			}
			if parent[pa] == pa && pa > pb {
				parent[pa] = pb
				changed = true
			} else if parent[pb] == pb && pb > pa {
				parent[pb] = pa
				changed = true
			}
			return true
		})
		// Pointer jumping (path compression).
		for v := 0; v < n; v++ {
			c.VertexOps++
			for parent[v] != parent[parent[v]] {
				parent[v] = parent[parent[v]]
				c.VertexOps++
			}
		}
	}

	labels = make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		labels[v] = parent[v]
	}
	return labels, c
}

// WCCReference computes the same canonical labels by plain BFS — the
// simple oracle the optimized implementations are verified against.
func WCCReference(g *graph.Graph) []graph.VertexID {
	u := g.Undirected()
	n := u.NumVertices()
	labels := make([]graph.VertexID, n)
	for i := range labels {
		labels[i] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		// v is the smallest unvisited id, hence its component's label.
		labels[v] = graph.VertexID(v)
		queue := []graph.VertexID{graph.VertexID(v)}
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range u.OutNeighbors(x) {
				if labels[w] < 0 {
					labels[w] = graph.VertexID(v)
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

// SSSP computes hop distances from source with direction-optimizing BFS
// (Beamer et al.), the GAP implementation the paper's COST experiment
// uses: top-down push on small frontiers, bottom-up pull on large ones.
// The initial phase precomputes degrees, as the paper notes (§5.13).
func SSSP(g *graph.Graph, source graph.VertexID) (dist []int32, c Counters) {
	n := g.NumVertices()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 {
		return dist, c
	}
	// Degree precomputation phase.
	remaining := 0 // sum of out-degrees of unvisited vertices
	for v := 0; v < n; v++ {
		remaining += g.OutDegree(graph.VertexID(v))
		c.VertexOps++
	}

	dist[source] = 0
	frontier := []graph.VertexID{source}
	frontierEdges := g.OutDegree(source)
	level := int32(0)
	for len(frontier) > 0 {
		level++
		if frontierEdges > remaining/8 {
			// Bottom-up: every unvisited vertex scans its in-edges for
			// a visited parent.
			var next []graph.VertexID
			for v := 0; v < n; v++ {
				if dist[v] >= 0 {
					continue
				}
				c.VertexOps++
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					c.EdgeOps++
					if dist[u] == level-1 {
						dist[v] = level
						next = append(next, graph.VertexID(v))
						break
					}
				}
			}
			frontier = next
		} else {
			// Top-down push.
			var next []graph.VertexID
			for _, v := range frontier {
				for _, w := range g.OutNeighbors(v) {
					c.EdgeOps++
					if dist[w] < 0 {
						dist[w] = level
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		frontierEdges = 0
		for _, v := range frontier {
			remaining -= g.OutDegree(v)
			frontierEdges += g.OutDegree(v)
		}
	}
	return dist, c
}

// KHop computes hop distances from source bounded by k: vertices beyond
// k hops keep distance -1 (§3.3; the paper fixes k=3).
func KHop(g *graph.Graph, source graph.VertexID, k int) (dist []int32, c Counters) {
	n := g.NumVertices()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 {
		return dist, c
	}
	dist[source] = 0
	frontier := []graph.VertexID{source}
	for level := int32(1); int(level) <= k && len(frontier) > 0; level++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, w := range g.OutNeighbors(v) {
				c.EdgeOps++
				if dist[w] < 0 {
					dist[w] = level
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist, c
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// OpsPerSecond is the modeled single-thread throughput of the GAP
// implementations on the paper's 512 GB COST machine: graph workloads
// are random-access bound, so the effective rate is far below peak ALU
// throughput. Calibrated so the PageRank COST factor lands in the
// paper's 2–3 band (§5.13).
const OpsPerSecond = 55e6

// ModeledSeconds converts operation counters from a synthetic-scale run
// into modeled single-thread seconds at paper scale.
func ModeledSeconds(c Counters, scale float64) float64 {
	return (c.EdgeOps + c.VertexOps) * scale / OpsPerSecond
}
