package singlethread

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphbench/internal/datasets"
	"graphbench/internal/graph"
)

func star(n int) *graph.Graph { // 0 -> 1..n-1
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	return b.Build()
}

func TestPageRankStarFixpoint(t *testing.T) {
	g := star(5)
	ranks, iters, c := PageRank(g, 0.15, 1e-12, 0)
	if iters < 2 {
		t.Fatalf("converged suspiciously fast: %d iterations", iters)
	}
	// Leaves receive 0.85 * center/4; center receives nothing.
	if math.Abs(ranks[0]-0.15) > 1e-9 {
		t.Errorf("center rank = %v, want 0.15", ranks[0])
	}
	wantLeaf := 0.15 + 0.85*(0.15/4)
	for v := 1; v < 5; v++ {
		if math.Abs(ranks[v]-wantLeaf) > 1e-9 {
			t.Errorf("leaf %d rank = %v, want %v", v, ranks[v], wantLeaf)
		}
	}
	if c.EdgeOps == 0 || c.VertexOps == 0 {
		t.Error("counters not populated")
	}
}

func TestPageRankFixedIterations(t *testing.T) {
	g := star(4)
	_, iters, _ := PageRank(g, 0.15, 0, 7)
	if iters != 7 {
		t.Fatalf("fixed-iteration run did %d iterations, want 7", iters)
	}
}

func TestPageRankRankSumBounded(t *testing.T) {
	// Without dangling redistribution the total rank is bounded by
	// n*damping from below and n from above after any iteration count.
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 400_000, Seed: 3})
	ranks, _, _ := PageRank(g, 0.15, 1e-4, 0)
	sum := 0.0
	for _, r := range ranks {
		sum += r
		if r < 0.15-1e-9 {
			t.Fatalf("rank below damping floor: %v", r)
		}
	}
	n := float64(g.NumVertices())
	if sum < 0.15*n || sum > 2*n {
		t.Fatalf("total rank %v outside plausible bounds for n=%v", sum, n)
	}
}

func TestWCCMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		got, _ := WCC(g)
		want := WCCReference(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d: label[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestWCCTwoComponents(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 3) // component {3,4}; vertex 5 isolated
	g := b.Build()
	labels, _ := WCC(g)
	want := []graph.VertexID{0, 0, 0, 3, 3, 5}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestSSSPMatchesBFS(t *testing.T) {
	for _, name := range []datasets.Name{datasets.Twitter, datasets.WRN} {
		g := datasets.Generate(name, datasets.Options{Scale: 400_000, Seed: 1})
		src := datasets.SourceVertex(g, 42)
		got, c := SSSP(g, src)
		want := graph.BFSDistances(g, src)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
		if c.EdgeOps == 0 {
			t.Errorf("%s: no edge ops counted", name)
		}
	}
}

func TestSSSPUsesBottomUp(t *testing.T) {
	// On a dense power-law graph the direction-optimizing BFS should
	// examine fewer edges than plain BFS's |E| per full sweep would
	// suggest it at least engages the bottom-up path. We detect the
	// optimization by checking edge ops < full scans per level.
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 300_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	_, c := SSSP(g, src)
	dist := graph.BFSDistances(g, src)
	levels := int32(0)
	for _, d := range dist {
		if d > levels {
			levels = d
		}
	}
	naive := float64(g.NumEdges()) * float64(levels)
	if levels > 1 && c.EdgeOps >= naive {
		t.Errorf("edge ops %v >= naive bound %v: no direction optimization", c.EdgeOps, naive)
	}
}

func TestKHop(t *testing.T) {
	g := star(4) // distances from 0: all 1
	dist, _ := KHop(g, 0, 3)
	for v := 1; v < 4; v++ {
		if dist[v] != 1 {
			t.Fatalf("dist[%d] = %d, want 1", v, dist[v])
		}
	}
	// Chain 0->1->2->3->4 truncated at k=2.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	chain := b.Build()
	dist, _ = KHop(chain, 0, 2)
	want := []int32{0, 1, 2, -1, -1}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("khop chain dist = %v, want %v", dist, want)
		}
	}
}

func TestKHopMatchesTruncatedBFS(t *testing.T) {
	g := datasets.Generate(datasets.UK, datasets.Options{Scale: 400_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	got, _ := KHop(g, src, 3)
	full := graph.BFSDistances(g, src)
	for v := range got {
		want := full[v]
		if want > 3 {
			want = -1
		}
		if got[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want)
		}
	}
}

func TestEmptyGraphSafety(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if d, _ := SSSP(g, 0); len(d) != 0 {
		t.Error("SSSP on empty graph")
	}
	if d, _ := KHop(g, 0, 3); len(d) != 0 {
		t.Error("KHop on empty graph")
	}
}

// Property: SSSP distances satisfy the BFS triangle property: for every
// edge (u,v), dist[v] <= dist[u] + 1 when u is reachable.
func TestQuickSSSPTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		dist, _ := SSSP(g, 0)
		ok := true
		g.Edges(func(u, v graph.VertexID) bool {
			if dist[u] >= 0 && (dist[v] < 0 || dist[v] > dist[u]+1) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: WCC labels are idempotent under relabeling — every vertex's
// label equals the label of its label, and neighbors share labels.
func TestQuickWCCConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		labels, _ := WCC(g)
		ok := true
		for v := range labels {
			if labels[labels[v]] != labels[v] {
				return false
			}
			if labels[v] > graph.VertexID(v) {
				return false // canonical label is the component minimum
			}
		}
		g.Edges(func(u, v graph.VertexID) bool {
			if labels[u] != labels[v] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
