package singlethread

import (
	"math/rand"
	"testing"

	"graphbench/internal/graph"
)

// randomGraph builds a seeded random directed multigraph — duplicate
// edges and self-edges included, since the workloads are defined over
// the undirected simple view and must be insensitive to both.
func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// TestTrianglePropertySumAndNaive: on random graphs, the forward
// algorithm's per-vertex counts must sum to exactly 3x the global total
// and match the naive O(V·d²) reference per vertex.
func TestTrianglePropertySumAndNaive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		n := 8 + int(seed)*7
		m := n * int(2+seed%5)
		g := randomGraph(n, m, seed)
		counts, total, _ := TriangleCounts(g)
		var sum int64
		for _, c := range counts {
			sum += c
		}
		if sum != 3*total {
			t.Fatalf("seed %d: per-vertex sum %d != 3x total %d", seed, sum, total)
		}
		naive := TriangleCountsNaive(g)
		for v := range naive {
			if counts[v] != naive[v] {
				t.Fatalf("seed %d: counts[%d] = %d, naive reference %d", seed, v, counts[v], naive[v])
			}
		}
	}
}

// TestTrianglePropertyRelabelInvariance: permuting vertex ids permutes
// the per-vertex counts and leaves the total unchanged — triangle
// counting is a graph invariant, whatever the degree-order tie-breaks
// do under the new ids.
func TestTrianglePropertyRelabelInvariance(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := 10 + int(seed)*9
		g := randomGraph(n, n*4, seed)
		counts, total, _ := TriangleCounts(g)

		rng := rand.New(rand.NewSource(seed * 101))
		perm := rng.Perm(n)
		b := graph.NewBuilder(n)
		g.Edges(func(src, dst graph.VertexID) bool {
			b.AddEdge(graph.VertexID(perm[src]), graph.VertexID(perm[dst]))
			return true
		})
		counts2, total2, _ := TriangleCounts(b.Build())
		if total2 != total {
			t.Fatalf("seed %d: total %d after relabeling, want %d", seed, total2, total)
		}
		for v := range counts {
			if counts2[perm[v]] != counts[v] {
				t.Fatalf("seed %d: counts[π(%d)] = %d, want %d", seed, v, counts2[perm[v]], counts[v])
			}
		}
	}
}

// TestLPAPropertyPartitionValid: the canonical labeling is a valid
// partition — every label is the id of a vertex that belongs to that
// community (specifically its smallest member), and labels are in
// range. Stability: a second run over the same input is bit-identical.
func TestLPAPropertyPartitionValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		n := 12 + int(seed)*11
		m := n * int(1+seed%4)
		g := randomGraph(n, m, seed)
		labels, _ := LabelPropagation(g, 10)
		if len(labels) != n {
			t.Fatalf("seed %d: %d labels for %d vertices", seed, len(labels), n)
		}
		for v, l := range labels {
			if l < 0 || int(l) >= n {
				t.Fatalf("seed %d: label[%d] = %d out of range", seed, v, l)
			}
			if labels[l] != l {
				t.Fatalf("seed %d: label %d is not a member of its own community (label[%d] = %d)",
					seed, l, l, labels[l])
			}
			if l > graph.VertexID(v) {
				t.Fatalf("seed %d: label[%d] = %d exceeds the vertex id — not the smallest member", seed, v, l)
			}
		}
		again, _ := LabelPropagation(g, 10)
		for v := range labels {
			if again[v] != labels[v] {
				t.Fatalf("seed %d: second run diverged at %d: %d vs %d", seed, v, again[v], labels[v])
			}
		}
	}
}

// TestLPAFindsCommunities: two dense cliques joined by one bridge edge
// must resolve into exactly two communities — the qualitative behaviour
// the workload exists to exercise.
func TestLPAFindsCommunities(t *testing.T) {
	const k = 8
	b := graph.NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			b.AddEdge(graph.VertexID(k+i), graph.VertexID(k+j))
		}
	}
	b.AddEdge(0, k)
	labels, _ := LabelPropagation(b.Build(), 10)
	for v := 1; v < k; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique A split: label[%d] = %d, label[0] = %d", v, labels[v], labels[0])
		}
	}
	for v := k + 1; v < 2*k; v++ {
		if labels[v] != labels[k] {
			t.Fatalf("clique B split: label[%d] = %d, label[%d] = %d", v, labels[v], k, labels[k])
		}
	}
	if labels[0] == labels[k] {
		t.Fatal("bridge edge merged the two cliques into one community")
	}
}

// TestModeMaxLabel pins the tie-break rule every engine shares.
func TestModeMaxLabel(t *testing.T) {
	cases := []struct {
		in   []float64
		keep float64
		want float64
	}{
		{nil, 7, 7},
		{[]float64{3}, 7, 3},
		{[]float64{1, 1, 2}, 7, 1},
		{[]float64{1, 2, 2}, 7, 2},
		{[]float64{1, 1, 2, 2}, 7, 2}, // frequency tie -> larger label
		{[]float64{0, 0, 0, 5, 5}, 7, 0},
		{[]float64{2, 2, 4, 4, 9}, 7, 4},
	}
	for _, c := range cases {
		if got := ModeMaxLabel(c.in, c.keep); got != c.want {
			t.Errorf("ModeMaxLabel(%v, %v) = %v, want %v", c.in, c.keep, got, c.want)
		}
	}
}

// TestTriangleCountsKnownGraphs checks hand-computable cases.
func TestTriangleCountsKnownGraphs(t *testing.T) {
	// K4: 4 triangles, each vertex on 3 of them.
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	counts, total, _ := TriangleCounts(b.Build())
	if total != 4 {
		t.Fatalf("K4 total = %d, want 4", total)
	}
	for v, c := range counts {
		if c != 3 {
			t.Fatalf("K4 counts[%d] = %d, want 3", v, c)
		}
	}

	// A 4-cycle has no triangles; self-edges and duplicates don't create
	// any.
	b = graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	if _, total, _ := TriangleCounts(b.Build()); total != 0 {
		t.Fatalf("C4 total = %d, want 0", total)
	}
}
