package singlethread

import (
	"slices"

	"graphbench/internal/graph"
)

// ForwardCountTriangles runs the serial forward-counting kernel over an
// already-oriented graph (see graph.ForwardOrient): for every vertex u
// and every pair of its forward neighbors, probe the oriented closing
// edge. Each triangle a≺b≺c is discovered exactly once (at u=a) and
// credited to all three corners. cands is the number of candidate pairs
// probed — the message volume of the distributed implementations. The
// serial engines (Hadoop job chains, GraphX stages) share this kernel
// with the oracle so the counts cannot diverge.
func ForwardCountTriangles(o *graph.Graph, rank []int32) (counts []int64, total, cands int64) {
	n := o.NumVertices()
	counts = make([]int64, n)
	for u := 0; u < n; u++ {
		nbrs := o.OutNeighbors(graph.VertexID(u))
		for i, v := range nbrs {
			for _, w := range nbrs[i+1:] {
				// Probe the closing edge in forward orientation: from the
				// lower-ranked of {v, w} to the higher.
				a, b := v, w
				if rank[a] > rank[b] {
					a, b = b, a
				}
				cands++
				if o.HasEdge(a, b) {
					counts[u]++
					counts[v]++
					counts[w]++
					total++
				}
			}
		}
	}
	return counts, total, cands
}

// TriangleCounts runs the degree-ordered (forward) triangle counting
// oracle — the same algorithm every distributed engine implements:
// orient each undirected simple edge from its lower (degree, id) rank
// endpoint to the higher, then count with the forward kernel. The
// per-vertex counts are incident-triangle counts and their sum is 3×
// the global total.
func TriangleCounts(g *graph.Graph) (counts []int64, total int64, c Counters) {
	o, rank := graph.ForwardOrient(g)
	var cands int64
	counts, total, cands = ForwardCountTriangles(o, rank)
	c.VertexOps = float64(o.NumVertices())
	c.EdgeOps = float64(cands)
	return counts, total, c
}

// TriangleCountsNaive is the O(V·d²) reference the optimized forward
// implementation is verified against: for every vertex, count the
// neighbor pairs that are themselves adjacent, over the undirected
// simple view. Per-vertex counts are incident-triangle counts, directly
// comparable with TriangleCounts.
func TriangleCountsNaive(g *graph.Graph) []int64 {
	u := g.Simple()
	n := u.NumVertices()
	counts := make([]int64, n)
	for v := 0; v < n; v++ {
		nbrs := u.OutNeighbors(graph.VertexID(v))
		for i, a := range nbrs {
			for _, b := range nbrs[i+1:] {
				if u.HasEdge(a, b) {
					counts[v]++
				}
			}
		}
	}
	return counts
}

// ModeMaxLabel returns the most frequent value in the sorted slice,
// breaking frequency ties toward the largest value — the LPA update
// rule. The slice must be sorted ascending; empty input returns keep.
// Shared by every engine so the tie-break is identical everywhere.
func ModeMaxLabel(sorted []float64, keep float64) float64 {
	if len(sorted) == 0 {
		return keep
	}
	best, bestLen := sorted[0], 0
	runStart := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || sorted[i] != sorted[runStart] {
			// >= prefers the later (larger) label on frequency ties.
			if i-runStart >= bestLen {
				best, bestLen = sorted[runStart], i-runStart
			}
			runStart = i
		}
	}
	return best
}

// LPAOnSimple runs the serial synchronous label-propagation rounds over
// an undirected simple view (see graph.Graph.Simple): labels start at
// the vertex id; each round every vertex adopts the most frequent label
// among its neighbors (from the previous round), ties broken toward the
// largest label; isolated vertices keep their label. perRound, when
// non-nil, runs after each round with the round number and the number
// of labels that changed — the serial engines hang their per-round cost
// charging there; a non-nil error stops after that round. The returned
// labeling reflects the rounds completed and is canonicalized to the
// smallest member id per community, which is what makes the output a
// valid partition (every label is a member vertex's id) and comparable
// bit-for-bit across engines.
func LPAOnSimple(u *graph.Graph, rounds int, perRound func(it, changed int) error) ([]graph.VertexID, error) {
	n := u.NumVertices()
	cur := make([]float64, n)
	next := make([]float64, n)
	for v := range cur {
		cur[v] = float64(v)
	}
	var scratch []float64
	canonical := func() []graph.VertexID {
		raw := make([]graph.VertexID, n)
		for v := range raw {
			raw[v] = graph.VertexID(cur[v])
		}
		return graph.CanonicalizeLabels(raw)
	}
	for it := 1; it <= rounds; it++ {
		changed := 0
		for v := 0; v < n; v++ {
			nbrs := u.OutNeighbors(graph.VertexID(v))
			scratch = scratch[:0]
			for _, w := range nbrs {
				scratch = append(scratch, cur[w])
			}
			slices.Sort(scratch)
			next[v] = ModeMaxLabel(scratch, cur[v])
			if next[v] != cur[v] {
				changed++
			}
		}
		cur, next = next, cur
		if perRound != nil {
			if err := perRound(it, changed); err != nil {
				return canonical(), err
			}
		}
	}
	return canonical(), nil
}

// LabelPropagation runs the synchronous label-propagation oracle for
// iters rounds over g's undirected simple view.
func LabelPropagation(g *graph.Graph, iters int) (labels []graph.VertexID, c Counters) {
	u := g.Simple()
	labels, _ = LPAOnSimple(u, iters, nil)
	c.VertexOps = float64(u.NumVertices() * iters)
	c.EdgeOps = float64(u.NumEdges() * iters)
	return labels, c
}
