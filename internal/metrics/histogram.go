package metrics

import (
	"math"
	"sync"
)

// histogramBuckets are the upper bounds, in seconds, of the latency
// histogram's buckets. They grow geometrically (×2 per bucket) from
// 100µs to ~1700s, which spans everything graphserve observes — from a
// cache hit served in microseconds to a cold multi-engine run — with a
// worst-case quantile error of one octave. Observations beyond the last
// bound land in an implicit +Inf overflow bucket.
var histogramBuckets = func() []float64 {
	var b []float64
	for v := 100e-6; v < 2000; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// Histogram is a concurrency-safe latency histogram with fixed
// logarithmic buckets. The zero value is not ready for use; call
// NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per histogramBuckets entry, plus overflow
	total  uint64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(histogramBuckets)+1)}
}

// Observe records one latency sample, in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(histogramBuckets) && seconds > histogramBuckets[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += seconds
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values, in seconds.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q ≤ 1), in seconds — an over-estimate by at most one
// bucket width. It returns 0 for an empty histogram and +Inf when the
// quantile falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(histogramBuckets) {
				return histogramBuckets[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
