package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"graphbench/internal/engine"
	"graphbench/internal/sim"
)

func sampleResult() *engine.Result {
	return &engine.Result{
		System: "BV", Dataset: "twitter", Workload: engine.NewPageRank(),
		Machines: 16, Status: sim.OK,
		Load: 10, Exec: 55, Save: 1, Overhead: 2,
		Iterations: 7, NetBytes: 1 << 30, MemTotal: 90 << 30, MemMax: 6 << 30,
		CPUUser: 100, CPUIO: 5, CPUNet: 20, CPUIdle: 30,
		ReplicationFactor: 9.3,
	}
}

func TestFromResult(t *testing.T) {
	r := FromResult(sampleResult())
	if r.System != "BV" || r.Workload != "pagerank" || r.Status != "OK" {
		t.Fatalf("record = %+v", r)
	}
	if r.Total != 68 {
		t.Fatalf("Total = %v, want 68", r.Total)
	}
	if r.RepFact != 9.3 {
		t.Fatalf("RepFact = %v", r.RepFact)
	}
}

func TestLogRoundTrip(t *testing.T) {
	recs := []Record{FromResult(sampleResult()), FromResult(sampleResult())}
	recs[1].System = "G"
	var buf bytes.Buffer
	if err := WriteLog(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].System != "BV" || got[1].System != "G" {
		t.Fatalf("round trip lost records: %+v", got)
	}
}

func TestReadLogSkipsBlanksRejectsGarbage(t *testing.T) {
	got, err := ReadLog(strings.NewReader("\n\n{\"system\":\"BV\"}\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank handling: %v %v", got, err)
	}
	if _, err := ReadLog(strings.NewReader("not json\n{\"system\":\"BV\"}\n")); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

// TestReadLogPartialTornFinalLine: a malformed last line is the
// signature of a writer killed mid-append — complete records come back
// with a warning, not an error.
func TestReadLogPartialTornFinalLine(t *testing.T) {
	in := "{\"system\":\"BV\"}\n{\"system\":\"G\"}\n{\"system\":\"GX\",\"exec_s"
	recs, warn, err := ReadLogPartial(strings.NewReader(in))
	if err != nil {
		t.Fatalf("torn final line should not error: %v", err)
	}
	if len(recs) != 2 || recs[0].System != "BV" || recs[1].System != "G" {
		t.Fatalf("complete records lost: %+v", recs)
	}
	if !strings.Contains(warn, "line 3") {
		t.Fatalf("warning does not identify the torn line: %q", warn)
	}
	// Trailing blanks after the torn line keep it "final".
	recs, warn, err = ReadLogPartial(strings.NewReader(in + "\n\n  \n"))
	if err != nil || len(recs) != 2 || warn == "" {
		t.Fatalf("trailing blanks changed torn-line handling: %d recs, warn %q, err %v",
			len(recs), warn, err)
	}
}

// TestReadLogPartialMidFileGarbage: a malformed line with records after
// it means the file itself is damaged, which stays a hard error.
func TestReadLogPartialMidFileGarbage(t *testing.T) {
	in := "{\"system\":\"BV\"}\nnot json\n{\"system\":\"G\"}\n"
	if _, _, err := ReadLogPartial(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file garbage accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not identify the bad line: %v", err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zero")
	}
	// 90 fast observations and 10 slow ones: the median lands in the
	// fast bucket, the p99 in the slow one. Bucket bounds are powers of
	// two times 100µs, so 0.001 rounds up to 0.0016 and 1.0 to 1.6384.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 0.001 || p50 > 0.002 {
		t.Fatalf("p50 = %v, want ~0.0016", p50)
	}
	if p99 < 1.0 || p99 > 2.0 {
		t.Fatalf("p99 = %v, want ~1.6", p99)
	}
	if sum := h.Sum(); sum < 10.08 || sum > 10.1 {
		t.Fatalf("Sum = %v, want 10.09", sum)
	}
	// Overflow bucket: beyond the last bound the quantile is +Inf, an
	// honest "off the scale" rather than a fabricated bound.
	h2 := NewHistogram()
	h2.Observe(1e6)
	if !math.IsInf(h2.Quantile(0.5), 1) {
		t.Fatalf("overflow quantile = %v, want +Inf", h2.Quantile(0.5))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

func TestFilter(t *testing.T) {
	recs := []Record{
		{System: "BV", Dataset: "twitter", Workload: "pagerank", Machines: 16},
		{System: "G", Dataset: "twitter", Workload: "wcc", Machines: 32},
		{System: "BV", Dataset: "wrn", Workload: "pagerank", Machines: 16},
	}
	if got := Filter(recs, "BV", "", "", 0); len(got) != 2 {
		t.Fatalf("system filter: %d", len(got))
	}
	if got := Filter(recs, "", "twitter", "", 0); len(got) != 2 {
		t.Fatalf("dataset filter: %d", len(got))
	}
	if got := Filter(recs, "BV", "twitter", "pagerank", 16); len(got) != 1 {
		t.Fatalf("combined filter: %d", len(got))
	}
	if got := Filter(recs, "", "", "", 64); len(got) != 0 {
		t.Fatalf("machines filter: %d", len(got))
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "█████" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(0, 100, 10); got != "" {
		t.Errorf("zero Bar = %q", got)
	}
	if got := Bar(1, 1000, 10); got != "█" {
		t.Errorf("tiny nonzero should render one cell, got %q", got)
	}
	if got := Bar(200, 100, 10); len([]rune(got)) != 10 {
		t.Errorf("overflow Bar = %q", got)
	}
	if got := Bar(5, 0, 10); got != "" {
		t.Errorf("zero-max Bar = %q", got)
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1.5:    "1.50s",
		42:     "42s",
		999:    "999s",
		12117:  "12,117s",
		123456: "123,456s",
	}
	for in, want := range cases {
		if got := FmtSeconds(in); got != want {
			t.Errorf("FmtSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	if got := FmtBytes(191 << 30); got != "191 GB" {
		t.Errorf("FmtBytes = %q", got)
	}
	if got := FmtBytes(3 << 30); got != "3.0 GB" {
		t.Errorf("FmtBytes = %q", got)
	}
	if got := FmtBytes(10 << 20); got != "10 MB" {
		t.Errorf("FmtBytes = %q", got)
	}
}
