package metrics

import (
	"bytes"
	"strings"
	"testing"

	"graphbench/internal/engine"
	"graphbench/internal/sim"
)

func sampleResult() *engine.Result {
	return &engine.Result{
		System: "BV", Dataset: "twitter", Workload: engine.NewPageRank(),
		Machines: 16, Status: sim.OK,
		Load: 10, Exec: 55, Save: 1, Overhead: 2,
		Iterations: 7, NetBytes: 1 << 30, MemTotal: 90 << 30, MemMax: 6 << 30,
		CPUUser: 100, CPUIO: 5, CPUNet: 20, CPUIdle: 30,
		ReplicationFactor: 9.3,
	}
}

func TestFromResult(t *testing.T) {
	r := FromResult(sampleResult())
	if r.System != "BV" || r.Workload != "pagerank" || r.Status != "OK" {
		t.Fatalf("record = %+v", r)
	}
	if r.Total != 68 {
		t.Fatalf("Total = %v, want 68", r.Total)
	}
	if r.RepFact != 9.3 {
		t.Fatalf("RepFact = %v", r.RepFact)
	}
}

func TestLogRoundTrip(t *testing.T) {
	recs := []Record{FromResult(sampleResult()), FromResult(sampleResult())}
	recs[1].System = "G"
	var buf bytes.Buffer
	if err := WriteLog(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].System != "BV" || got[1].System != "G" {
		t.Fatalf("round trip lost records: %+v", got)
	}
}

func TestReadLogSkipsBlanksRejectsGarbage(t *testing.T) {
	got, err := ReadLog(strings.NewReader("\n\n{\"system\":\"BV\"}\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank handling: %v %v", got, err)
	}
	if _, err := ReadLog(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFilter(t *testing.T) {
	recs := []Record{
		{System: "BV", Dataset: "twitter", Workload: "pagerank", Machines: 16},
		{System: "G", Dataset: "twitter", Workload: "wcc", Machines: 32},
		{System: "BV", Dataset: "wrn", Workload: "pagerank", Machines: 16},
	}
	if got := Filter(recs, "BV", "", "", 0); len(got) != 2 {
		t.Fatalf("system filter: %d", len(got))
	}
	if got := Filter(recs, "", "twitter", "", 0); len(got) != 2 {
		t.Fatalf("dataset filter: %d", len(got))
	}
	if got := Filter(recs, "BV", "twitter", "pagerank", 16); len(got) != 1 {
		t.Fatalf("combined filter: %d", len(got))
	}
	if got := Filter(recs, "", "", "", 64); len(got) != 0 {
		t.Fatalf("machines filter: %d", len(got))
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "█████" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(0, 100, 10); got != "" {
		t.Errorf("zero Bar = %q", got)
	}
	if got := Bar(1, 1000, 10); got != "█" {
		t.Errorf("tiny nonzero should render one cell, got %q", got)
	}
	if got := Bar(200, 100, 10); len([]rune(got)) != 10 {
		t.Errorf("overflow Bar = %q", got)
	}
	if got := Bar(5, 0, 10); got != "" {
		t.Errorf("zero-max Bar = %q", got)
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1.5:    "1.50s",
		42:     "42s",
		999:    "999s",
		12117:  "12,117s",
		123456: "123,456s",
	}
	for in, want := range cases {
		if got := FmtSeconds(in); got != want {
			t.Errorf("FmtSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	if got := FmtBytes(191 << 30); got != "191 GB" {
		t.Errorf("FmtBytes = %q", got)
	}
	if got := FmtBytes(3 << 30); got != "3.0 GB" {
		t.Errorf("FmtBytes = %q", got)
	}
	if got := FmtBytes(10 << 20); got != "10 MB" {
		t.Errorf("FmtBytes = %q", got)
	}
}
