// Package metrics turns engine results into durable run records — the
// analogue of the paper's 20 GB of log files — and provides the ASCII
// rendering primitives the visualization tool (cmd/logviz) and the
// harness figures are built from.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"graphbench/internal/engine"
)

// Record is one experiment run in log form.
type Record struct {
	System   string  `json:"system"`
	Dataset  string  `json:"dataset"`
	Workload string  `json:"workload"`
	Machines int     `json:"machines"`
	Status   string  `json:"status"`
	Load     float64 `json:"load_sec"`
	Exec     float64 `json:"exec_sec"`
	Save     float64 `json:"save_sec"`
	Overhead float64 `json:"overhead_sec"`
	Total    float64 `json:"total_sec"`
	Iters    int     `json:"iterations"`
	NetBytes int64   `json:"net_bytes"`
	MemTotal int64   `json:"mem_total_bytes"`
	MemMax   int64   `json:"mem_max_bytes"`
	CPUUser  float64 `json:"cpu_user_sec"`
	CPUIO    float64 `json:"cpu_io_sec"`
	CPUNet   float64 `json:"cpu_net_sec"`
	CPUIdle  float64 `json:"cpu_idle_sec"`
	RepFact  float64 `json:"replication_factor,omitempty"`

	// Memory-governor accounting (host-side, distinct from the modeled
	// mem_* fields above); zero/omitted for ungoverned runs.
	MemBudget  int64  `json:"mem_budget_bytes,omitempty"`
	PeakHeap   int64  `json:"peak_heap_bytes,omitempty"`
	SpillBytes int64  `json:"spill_bytes,omitempty"`
	SoftEvents uint64 `json:"pressure_soft_events,omitempty"`
	HardEvents uint64 `json:"pressure_hard_events,omitempty"`
	Spilled    bool   `json:"spilled,omitempty"`

	// Adaptive-planner provenance: the decision key that produced this
	// run and its realized composite resource cost (see
	// plan.Score). Omitted for runs with a fixed configuration.
	PlanKey      string  `json:"plan_key,omitempty"`
	ResourceCost float64 `json:"resource_cost,omitempty"`
}

// Resource is the per-run resource telemetry the adaptive planner's
// cost model consumes: the axes of the resource-efficiency study
// (wall time, CPU time, memory footprint, message volume) plus the
// cluster size that produced them. Extracted from results by
// ResourceOf and fed back via plan.Planner.Observe.
type Resource struct {
	TimeSec       float64 `json:"time_sec"`
	CPUSec        float64 `json:"cpu_sec"`
	MemTotalBytes int64   `json:"mem_total_bytes"`
	MemMaxBytes   int64   `json:"mem_max_bytes"`
	NetBytes      int64   `json:"net_bytes"`
	Machines      int     `json:"machines"`
	Status        string  `json:"status"`
}

// OK reports whether the run the telemetry came from succeeded.
func (r Resource) OK() bool { return r.Status == "OK" }

// ResourceOf extracts the planner-facing telemetry from a result.
func ResourceOf(r *engine.Result) Resource {
	return Resource{
		TimeSec:       r.TotalTime(),
		CPUSec:        r.CPUUser + r.CPUIO + r.CPUNet,
		MemTotalBytes: r.MemTotal,
		MemMaxBytes:   r.MemMax,
		NetBytes:      r.NetBytes,
		Machines:      r.Machines,
		Status:        r.Status.String(),
	}
}

// FromResult converts an engine result into a Record.
func FromResult(r *engine.Result) Record {
	return Record{
		System:   r.System,
		Dataset:  r.Dataset,
		Workload: r.Workload.Kind.String(),
		Machines: r.Machines,
		Status:   r.Status.String(),
		Load:     r.Load,
		Exec:     r.Exec,
		Save:     r.Save,
		Overhead: r.Overhead,
		Total:    r.TotalTime(),
		Iters:    r.Iterations,
		NetBytes: r.NetBytes,
		MemTotal: r.MemTotal,
		MemMax:   r.MemMax,
		CPUUser:  r.CPUUser,
		CPUIO:    r.CPUIO,
		CPUNet:   r.CPUNet,
		CPUIdle:  r.CPUIdle,
		RepFact:  r.ReplicationFactor,

		MemBudget:  r.Govern.BudgetBytes,
		PeakHeap:   r.Govern.PeakBytes,
		SpillBytes: r.Govern.SpillBytes,
		SoftEvents: r.Govern.SoftEvents,
		HardEvents: r.Govern.HardEvents,
		Spilled:    r.Govern.Spilled,
	}
}

// WriteLog writes records as JSON lines.
func WriteLog(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadLog parses JSON-lines records, skipping blank lines. A malformed
// final line — the usual signature of a run killed mid-append — is
// skipped with a warning on stderr rather than failing the whole log;
// malformed lines anywhere else still error (see ReadLogPartial).
func ReadLog(r io.Reader) ([]Record, error) {
	recs, warn, err := ReadLogPartial(r)
	if warn != "" {
		fmt.Fprintln(os.Stderr, "metrics:", warn)
	}
	return recs, err
}

// ReadLogPartial parses JSON-lines records, skipping blank lines. It
// distinguishes two failure shapes: a malformed line followed by more
// records means the file itself is damaged and is returned as an error,
// while a malformed line at the very end means the writer was killed
// mid-append — the torn line is dropped, every complete record is
// returned, and warn describes what was skipped.
func ReadLogPartial(r io.Reader) (recs []Record, warn string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	var pendingErr error // malformed line, fatal only if records follow
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if pendingErr != nil {
			return nil, "", pendingErr
		}
		var rec Record
		if uerr := json.Unmarshal([]byte(text), &rec); uerr != nil {
			pendingErr = fmt.Errorf("metrics: log line %d: %w", line, uerr)
			continue
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return nil, "", serr
	}
	if pendingErr != nil {
		warn = fmt.Sprintf("skipping torn final log line: %v", pendingErr)
	}
	return recs, warn, nil
}

// Filter returns the records matching every non-empty criterion.
func Filter(recs []Record, system, dataset, workload string, machines int) []Record {
	var out []Record
	for _, r := range recs {
		if system != "" && r.System != system {
			continue
		}
		if dataset != "" && r.Dataset != dataset {
			continue
		}
		if workload != "" && r.Workload != workload {
			continue
		}
		if machines != 0 && r.Machines != machines {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Bar renders a horizontal ASCII bar of value relative to max.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 1 && value > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// FmtSeconds renders a duration in the paper's style: seconds with
// thousands separators for large values.
func FmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 10:
		return fmt.Sprintf("%.2fs", s)
	case s < 1000:
		return fmt.Sprintf("%.0fs", s)
	default:
		return addCommas(int64(s+0.5)) + "s"
	}
}

// FmtBytes renders byte counts in GB as the paper's tables do.
func FmtBytes(b int64) string {
	gb := float64(b) / (1 << 30)
	switch {
	case gb >= 100:
		return fmt.Sprintf("%.0f GB", gb)
	case gb >= 1:
		return fmt.Sprintf("%.1f GB", gb)
	default:
		return fmt.Sprintf("%.0f MB", float64(b)/(1<<20))
	}
}

func addCommas(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}
