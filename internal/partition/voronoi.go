package partition

import (
	"math/rand"
	"sort"

	"graphbench/internal/graph"
)

// Voronoi is the output of Blogel-B's Graph Voronoi Diagram (GVD)
// partitioning (§2.3): vertices grouped into connected blocks grown by
// multi-source BFS from sampled seeds, blocks packed onto machines, and
// the block-level graph that block-centric computation runs on.
type Voronoi struct {
	NumBlocks    int
	BlockOf      []int32 // vertex -> block
	BlockMachine []int32 // block -> machine
	BlockSizes   []int   // block -> vertex count
	Rounds       int     // sampling rounds used

	// BlockEdges is the multigraph of blocks: BlockEdges[b] maps
	// neighbor block -> number of underlying graph edges, the weights
	// Blogel-B's block PageRank uses (§3.1.2).
	BlockEdges []map[int32]int
}

// VoronoiOptions tunes GVD sampling; zero values take Blogel defaults.
type VoronoiOptions struct {
	InitialRate float64 // seed sampling probability, default 0.001
	MaxRounds   int     // default 10; leftovers become singleton blocks
}

// BuildVoronoi runs GVD partitioning of g for m machines. Sampling and
// BFS run on the undirected view, so blocks are connected vertex sets.
// The sampling rate doubles each round, as in Blogel, until every
// vertex is assigned or MaxRounds is reached.
func BuildVoronoi(g *graph.Graph, m int, seed int64, opt VoronoiOptions) *Voronoi {
	if opt.InitialRate <= 0 {
		opt.InitialRate = 0.001
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 10
	}
	u := g.Undirected()
	n := u.NumVertices()
	rng := rand.New(rand.NewSource(seed))

	v := &Voronoi{BlockOf: make([]int32, n)}
	for i := range v.BlockOf {
		v.BlockOf[i] = -1
	}

	unassigned := n
	rate := opt.InitialRate
	for round := 0; round < opt.MaxRounds && unassigned > 0; round++ {
		v.Rounds++
		// Sample seeds among unassigned vertices.
		want := int(float64(unassigned) * rate)
		if want < 1 {
			want = 1
		}
		var seeds []graph.VertexID
		for i := 0; i < n && len(seeds) < want; i++ {
			if v.BlockOf[i] < 0 && rng.Float64() < rate*4 {
				seeds = append(seeds, graph.VertexID(i))
			}
		}
		if len(seeds) == 0 {
			for i := 0; i < n; i++ {
				if v.BlockOf[i] < 0 {
					seeds = append(seeds, graph.VertexID(i))
					break
				}
			}
		}
		// Multi-source BFS over unassigned vertices only: each seed
		// grows a connected block.
		frontier := make([]graph.VertexID, 0, len(seeds))
		for _, s := range seeds {
			if v.BlockOf[s] >= 0 {
				continue
			}
			v.BlockOf[s] = int32(v.NumBlocks)
			v.NumBlocks++
			frontier = append(frontier, s)
			unassigned--
		}
		for len(frontier) > 0 {
			var next []graph.VertexID
			for _, x := range frontier {
				for _, w := range u.OutNeighbors(x) {
					if v.BlockOf[w] < 0 {
						v.BlockOf[w] = v.BlockOf[x]
						unassigned--
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		rate *= 2
	}
	// Anything still unassigned (isolated vertices or round budget
	// exhausted) becomes singleton blocks.
	for i := 0; i < n; i++ {
		if v.BlockOf[i] < 0 {
			v.BlockOf[i] = int32(v.NumBlocks)
			v.NumBlocks++
			unassigned--
		}
	}

	v.BlockSizes = make([]int, v.NumBlocks)
	for i := 0; i < n; i++ {
		v.BlockSizes[v.BlockOf[i]]++
	}

	v.packBlocks(m)
	v.buildBlockGraph(g)
	return v
}

// packBlocks assigns blocks to machines greedily, largest block first
// onto the least-loaded machine — Blogel's balance objective.
func (v *Voronoi) packBlocks(m int) {
	order := make([]int, v.NumBlocks)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if v.BlockSizes[order[a]] != v.BlockSizes[order[b]] {
			return v.BlockSizes[order[a]] > v.BlockSizes[order[b]]
		}
		return order[a] < order[b]
	})
	v.BlockMachine = make([]int32, v.NumBlocks)
	load := make([]int, m)
	for _, b := range order {
		best := 0
		for i := 1; i < m; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		v.BlockMachine[b] = int32(best)
		load[best] += v.BlockSizes[b]
	}
}

func (v *Voronoi) buildBlockGraph(g *graph.Graph) {
	v.BlockEdges = make([]map[int32]int, v.NumBlocks)
	g.Edges(func(src, dst graph.VertexID) bool {
		bs, bd := v.BlockOf[src], v.BlockOf[dst]
		if bs == bd {
			return true
		}
		if v.BlockEdges[bs] == nil {
			v.BlockEdges[bs] = make(map[int32]int)
		}
		v.BlockEdges[bs][bd]++
		return true
	})
}

// MachineOf returns the machine owning vertex x's block.
func (v *Voronoi) MachineOf(x graph.VertexID) int {
	return int(v.BlockMachine[v.BlockOf[x]])
}

// CrossBlockEdges counts edges whose endpoints lie in different blocks.
func (v *Voronoi) CrossBlockEdges() int {
	t := 0
	for _, es := range v.BlockEdges {
		for _, c := range es {
			t += c
		}
	}
	return t
}

// CrossMachineEdges counts edges whose endpoints lie on different
// machines — the traffic block-centric BSP actually ships.
func (v *Voronoi) CrossMachineEdges(g *graph.Graph) int {
	t := 0
	g.Edges(func(src, dst graph.VertexID) bool {
		if v.MachineOf(src) != v.MachineOf(dst) {
			t++
		}
		return true
	})
	return t
}

// MachineVertexCounts returns per-machine vertex totals.
func (v *Voronoi) MachineVertexCounts(m int) []int {
	counts := make([]int, m)
	for b := 0; b < v.NumBlocks; b++ {
		counts[v.BlockMachine[b]] += v.BlockSizes[b]
	}
	return counts
}
