// Package partition implements every partitioning strategy used in the
// paper: random hash edge-cut (Hadoop, HaLoop, Giraph, Vertica, Gelly),
// the four vertex-cut strategies of GraphLab/PowerGraph with the Auto
// selection rule of §4.4.1 (Random, Grid, PDS, Oblivious), the Graph
// Voronoi Diagram partitioner of Blogel-B, and the Spark partition
// placement model behind Figure 11's imbalance.
package partition

import (
	"graphbench/internal/graph"
)

// hash64 is a splitmix64-style mixer: deterministic, seedable, and good
// enough to stand in for the hash partitioners of the real systems.
func hash64(x, seed uint64) uint64 {
	x += seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// EdgeCut is random hash edge-cut partitioning: each vertex (with all
// its out-edges) is assigned to one machine.
type EdgeCut struct {
	M    int
	Seed int64
}

// MachineOf returns the machine that owns vertex v.
func (p EdgeCut) MachineOf(v graph.VertexID) int {
	return int(hash64(uint64(v), uint64(p.Seed)) % uint64(p.M))
}

// Counts returns per-machine counts of owned vertices and of the
// out-edges stored with them.
func (p EdgeCut) Counts(g *graph.Graph) (vertices, edges []int) {
	vertices = make([]int, p.M)
	edges = make([]int, p.M)
	for v := 0; v < g.NumVertices(); v++ {
		m := p.MachineOf(graph.VertexID(v))
		vertices[m]++
		edges[m] += g.OutDegree(graph.VertexID(v))
	}
	return vertices, edges
}

// Imbalance returns max/avg of the per-machine edge counts — the
// straggler factor of a partitioning.
func Imbalance(counts []int) float64 {
	if len(counts) == 0 {
		return 1
	}
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	avg := float64(total) / float64(len(counts))
	return float64(max) / avg
}
