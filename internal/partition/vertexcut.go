package partition

import (
	"fmt"
	"math/bits"

	"graphbench/internal/graph"
)

// VertexCutKind selects a GraphLab/PowerGraph edge-placement strategy.
type VertexCutKind int

// The strategies of §4.4.1.
const (
	VCRandom VertexCutKind = iota
	VCGrid
	VCPDS
	VCOblivious
)

// String names the strategy as in the paper.
func (k VertexCutKind) String() string {
	switch k {
	case VCRandom:
		return "random"
	case VCGrid:
		return "grid"
	case VCPDS:
		return "pds"
	case VCOblivious:
		return "oblivious"
	default:
		return fmt.Sprintf("VertexCutKind(%d)", int(k))
	}
}

// AutoKind implements GraphLab's "Auto" mode: PDS when the machine
// count is p²+p+1 for a prime power p, else Grid when the machines
// form a near-square rectangle (|X−Y| ≤ 2), else Oblivious (§4.4.1,
// §5.4). For the paper's cluster sizes this selects Grid at 16 and 64
// and Oblivious at 32 and 128 — the source of GraphLab-auto's load-time
// cliff between those sizes.
func AutoKind(m int) VertexCutKind {
	if _, ok := pdsOrder(m); ok {
		return VCPDS
	}
	if _, _, ok := gridShape(m); ok {
		return VCGrid
	}
	return VCOblivious
}

// gridShape factors m into the most square X×Y rectangle and reports
// whether it satisfies the paper's |X−Y| ≤ 2 requirement.
func gridShape(m int) (x, y int, ok bool) {
	best := -1
	for a := 1; a*a <= m; a++ {
		if m%a == 0 {
			best = a
		}
	}
	if best <= 0 {
		return 0, 0, false
	}
	x, y = best, m/best
	return x, y, y-x <= 2
}

// pdsOrder reports whether m = p²+p+1 for some prime power p ≥ 2 and
// returns p.
func pdsOrder(m int) (p int, ok bool) {
	for p = 2; p*p+p+1 <= m; p++ {
		if p*p+p+1 == m && isPrimePower(p) {
			return p, true
		}
	}
	return 0, false
}

func isPrimePower(n int) bool {
	if n < 2 {
		return false
	}
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			for n%f == 0 {
				n /= f
			}
			return n == 1
		}
	}
	return true // prime
}

// perfectDifferenceSet finds a set S of size p+1 over Z_m (m = p²+p+1)
// such that every non-zero residue mod m is the difference of exactly
// one ordered pair from S. Backtracking is fast for the small p used by
// clusters of ≤ a few hundred machines.
func perfectDifferenceSet(m, p int) []int {
	size := p + 1
	set := make([]int, 0, size)
	used := make([]bool, m) // used[d] = difference d already produced
	var rec func(next int) bool
	rec = func(next int) bool {
		if len(set) == size {
			return true
		}
		for cand := next; cand < m; cand++ {
			diffs := make([]int, 0, 2*len(set))
			ok := true
			for _, s := range set {
				d1 := (cand - s + m) % m
				d2 := (s - cand + m) % m
				if used[d1] || used[d2] || d1 == d2 {
					ok = false
					break
				}
				used[d1], used[d2] = true, true
				diffs = append(diffs, d1, d2)
			}
			if ok {
				set = append(set, cand)
				if rec(cand + 1) {
					return true
				}
				set = set[:len(set)-1]
			}
			for _, d := range diffs {
				used[d] = false
			}
		}
		return false
	}
	set = append(set, 0)
	if !rec(1) {
		panic(fmt.Sprintf("partition: no perfect difference set for m=%d p=%d", m, p))
	}
	return set
}

// replicaSet is a machine bitset (supports clusters up to 192 machines,
// beyond the paper's 128).
type replicaSet [3]uint64

func (r *replicaSet) add(m int)     { r[m>>6] |= 1 << (m & 63) }
func (r replicaSet) has(m int) bool { return r[m>>6]&(1<<(m&63)) != 0 }
func (r replicaSet) count() int {
	return bits.OnesCount64(r[0]) + bits.OnesCount64(r[1]) + bits.OnesCount64(r[2])
}
func (r replicaSet) empty() bool { return r[0] == 0 && r[1] == 0 && r[2] == 0 }
func intersect(a, b replicaSet) replicaSet {
	return replicaSet{a[0] & b[0], a[1] & b[1], a[2] & b[2]}
}
func union(a, b replicaSet) replicaSet {
	return replicaSet{a[0] | b[0], a[1] | b[1], a[2] | b[2]}
}

// VertexCut is the result of edge-disjoint (vertex-cut) partitioning:
// every edge lives on exactly one machine; vertices are replicated on
// every machine holding one of their edges.
type VertexCut struct {
	M    int
	Kind VertexCutKind

	edgeMachine []int32      // per edge, in CSR iteration order
	replicas    []replicaSet // per vertex
	edgeCounts  []int        // per machine

	repFactor float64
}

// BuildVertexCut partitions g's edges across m machines.
func BuildVertexCut(g *graph.Graph, m int, kind VertexCutKind, seed int64) *VertexCut {
	if m > 192 {
		panic("partition: vertex-cut supports at most 192 machines")
	}
	vc := &VertexCut{
		M:           m,
		Kind:        kind,
		edgeMachine: make([]int32, g.NumEdges()),
		replicas:    make([]replicaSet, g.NumVertices()),
		edgeCounts:  make([]int, m),
	}

	var constraint [][]int // per vertex-hash machine, candidate machines
	switch kind {
	case VCGrid:
		x, y, ok := gridShape(m)
		if !ok {
			panic(fmt.Sprintf("partition: %d machines do not form a grid", m))
		}
		constraint = gridConstraints(m, x, y)
	case VCPDS:
		p, ok := pdsOrder(m)
		if !ok {
			panic(fmt.Sprintf("partition: %d machines do not admit a PDS", m))
		}
		constraint = pdsConstraints(m, p)
	}

	idx := 0
	g.Edges(func(src, dst graph.VertexID) bool {
		var machine int
		switch kind {
		case VCRandom:
			machine = int(hash64(uint64(src)*1_000_003+uint64(dst), uint64(seed)) % uint64(m))
		case VCGrid, VCPDS:
			su := constraint[vc.hashMachine(src, seed)]
			sv := constraint[vc.hashMachine(dst, seed)]
			machine = vc.leastLoadedCommon(su, sv)
		case VCOblivious:
			machine = vc.obliviousPlace(src, dst)
		}
		vc.edgeMachine[idx] = int32(machine)
		vc.edgeCounts[machine]++
		vc.replicas[src].add(machine)
		vc.replicas[dst].add(machine)
		idx++
		return true
	})

	placed, verts := 0, 0
	for v := range vc.replicas {
		if c := vc.replicas[v].count(); c > 0 {
			placed += c
			verts++
		}
	}
	if verts > 0 {
		vc.repFactor = float64(placed) / float64(verts)
	}
	return vc
}

func (vc *VertexCut) hashMachine(v graph.VertexID, seed int64) int {
	return int(hash64(uint64(v), uint64(seed)) % uint64(vc.M))
}

// leastLoadedCommon picks the least-loaded machine present in both
// candidate lists; the Grid and PDS constructions guarantee a non-empty
// intersection.
func (vc *VertexCut) leastLoadedCommon(su, sv []int) int {
	var inSv replicaSet
	for _, x := range sv {
		inSv.add(x)
	}
	best, bestLoad := -1, int(^uint(0)>>1)
	for _, x := range su {
		if inSv.has(x) && vc.edgeCounts[x] < bestLoad {
			best, bestLoad = x, vc.edgeCounts[x]
		}
	}
	if best < 0 {
		panic("partition: constrained placement found no common machine")
	}
	return best
}

// obliviousPlace implements PowerGraph's greedy heuristic: place the
// edge on the least-loaded machine already holding replicas of both
// endpoints, else of either endpoint, else anywhere (§4.4.1) — subject
// to PowerGraph's balance constraint: when every candidate is already
// overloaded relative to the cluster average, the edge goes to the
// globally least-loaded machine instead. Without the constraint the
// greedy rule collapses everything onto one machine.
func (vc *VertexCut) obliviousPlace(src, dst graph.VertexID) int {
	globalBest, globalLoad, total := 0, vc.edgeCounts[0], 0
	for i := 0; i < vc.M; i++ {
		total += vc.edgeCounts[i]
		if vc.edgeCounts[i] < globalLoad {
			globalBest, globalLoad = i, vc.edgeCounts[i]
		}
	}

	su, sv := vc.replicas[src], vc.replicas[dst]
	var candidates replicaSet
	switch {
	case !intersect(su, sv).empty():
		candidates = intersect(su, sv)
	case !su.empty() && !sv.empty():
		candidates = union(su, sv)
	case !su.empty():
		candidates = su
	case !sv.empty():
		candidates = sv
	default:
		return globalBest
	}
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := 0; i < vc.M; i++ {
		if candidates.has(i) && vc.edgeCounts[i] < bestLoad {
			best, bestLoad = i, vc.edgeCounts[i]
		}
	}
	avg := float64(total) / float64(vc.M)
	if float64(bestLoad) > avg*1.2+4 {
		return globalBest
	}
	return best
}

func gridConstraints(m, x, y int) [][]int {
	out := make([][]int, m)
	for mach := 0; mach < m; mach++ {
		r, c := mach/y, mach%y
		seen := map[int]bool{}
		var set []int
		for cc := 0; cc < y; cc++ {
			if id := r*y + cc; id < m && !seen[id] {
				seen[id] = true
				set = append(set, id)
			}
		}
		for rr := 0; rr < x; rr++ {
			if id := rr*y + c; id < m && !seen[id] {
				seen[id] = true
				set = append(set, id)
			}
		}
		out[mach] = set
	}
	return out
}

func pdsConstraints(m, p int) [][]int {
	base := perfectDifferenceSet(m, p)
	out := make([][]int, m)
	for i := 0; i < m; i++ {
		set := make([]int, len(base))
		for j, s := range base {
			set[j] = (s + i) % m
		}
		out[i] = set
	}
	return out
}

// MachineOfEdge returns the machine holding the idx-th edge in CSR
// iteration order.
func (vc *VertexCut) MachineOfEdge(idx int) int { return int(vc.edgeMachine[idx]) }

// Replicas returns the machines holding replicas of v.
func (vc *VertexCut) Replicas(v graph.VertexID) []int {
	var out []int
	for i := 0; i < vc.M; i++ {
		if vc.replicas[v].has(i) {
			out = append(out, i)
		}
	}
	return out
}

// NumReplicas returns how many machines hold v.
func (vc *VertexCut) NumReplicas(v graph.VertexID) int { return vc.replicas[v].count() }

// MasterOf returns the machine acting as v's master (the lowest-id
// replica, or a hash assignment for vertices with no edges).
func (vc *VertexCut) MasterOf(v graph.VertexID) int {
	for i := 0; i < vc.M; i++ {
		if vc.replicas[v].has(i) {
			return i
		}
	}
	return int(hash64(uint64(v), 1) % uint64(vc.M))
}

// ReplicationFactor returns the average number of replicas per vertex
// that has at least one edge (Table 4).
func (vc *VertexCut) ReplicationFactor() float64 { return vc.repFactor }

// EdgeCounts returns per-machine edge counts.
func (vc *VertexCut) EdgeCounts() []int { return vc.edgeCounts }

// TotalReplicas returns the summed replica count across vertices — the
// quantity that drives GraphLab's memory footprint.
func (vc *VertexCut) TotalReplicas() int {
	t := 0
	for v := range vc.replicas {
		t += vc.replicas[v].count()
	}
	return t
}
