package partition

// TunedPartitions is the paper's GraphX partition-count rule (§5.6):
// use the number of HDFS blocks, capped at twice the number of cores in
// the cluster so stragglers can be reassigned. This reproduces Table 5.
func TunedPartitions(blocks, totalCores int) int {
	cap := 2 * totalCores
	if blocks > cap {
		return cap
	}
	return blocks
}

// SparkPlacement models how Spark assigns RDD partitions to machines.
// Spark schedules tasks with HDFS locality preference, and consecutive
// blocks of a file tend to share datanodes, so runs of consecutive
// partitions land on the same machine. The clumping grows with cluster
// size — on small clusters every machine hosts replicas of most blocks
// and placement stays balanced, while at 128 machines the paper
// observed one machine with 54 of 1200 partitions against a balanced
// 9.4 (Figure 11, §5.6: GraphX on UK at 128 machines was worse than at
// 64 because of exactly this skew).
//
// The model: partitions are grouped into locality runs with geometric
// lengths whose mean scales with machines/32, each run hashed to a
// machine. Returned is the per-machine partition count.
func SparkPlacement(partitions, machines int, seed int64) []int {
	counts := make([]int, machines)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = hash64(state, 0xabcdef)
		return state
	}
	meanRun := machines / 32
	if meanRun < 1 {
		meanRun = 1
	}
	cap := machines / 2
	if cap < 8 {
		cap = 8
	}
	p := 0
	// On very large clusters one machine ends up hosting a big clump of
	// consecutive blocks (the paper observed 54 of 1200 partitions on a
	// single machine of 128).
	if machines >= 96 && partitions >= 96 {
		clump := partitions / 24
		mach := int(next() % uint64(machines))
		counts[mach] += clump
		p += clump
	}
	for p < partitions {
		run := 1
		for run < cap && int(next()%uint64(meanRun+1)) != 0 {
			run++
		}
		mach := int(next() % uint64(machines))
		for i := 0; i < run && p < partitions; i++ {
			counts[mach]++
			p++
		}
	}
	return counts
}

// MaxCount returns the largest entry of counts.
func MaxCount(counts []int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}
