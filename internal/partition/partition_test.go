package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphbench/internal/datasets"
	"graphbench/internal/graph"
)

func randomGraph(n, e int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < e; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

func TestEdgeCutDeterministicAndComplete(t *testing.T) {
	g := randomGraph(100, 400, 1)
	p := EdgeCut{M: 8, Seed: 42}
	for v := 0; v < g.NumVertices(); v++ {
		m := p.MachineOf(graph.VertexID(v))
		if m < 0 || m >= 8 {
			t.Fatalf("machine %d out of range", m)
		}
		if m != p.MachineOf(graph.VertexID(v)) {
			t.Fatal("MachineOf not deterministic")
		}
	}
	verts, edges := p.Counts(g)
	tv, te := 0, 0
	for i := range verts {
		tv += verts[i]
		te += edges[i]
	}
	if tv != 100 || te != 400 {
		t.Fatalf("counts lose mass: %d vertices, %d edges", tv, te)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int{10, 10, 10, 10}); got != 1 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	if got := Imbalance([]int{30, 10}); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
	if got := Imbalance(nil); got != 1 {
		t.Errorf("empty imbalance = %v, want 1", got)
	}
	if got := Imbalance([]int{0, 0}); got != 1 {
		t.Errorf("zero imbalance = %v, want 1", got)
	}
}

func TestGridShape(t *testing.T) {
	cases := []struct {
		m, x, y int
		ok      bool
	}{
		{16, 4, 4, true},
		{64, 8, 8, true},
		{12, 3, 4, true},
		{6, 2, 3, true},
		{32, 4, 8, false}, // |4-8| > 2
		{128, 8, 16, false},
	}
	for _, c := range cases {
		x, y, ok := gridShape(c.m)
		if ok != c.ok || (ok && (x != c.x || y != c.y)) {
			t.Errorf("gridShape(%d) = (%d,%d,%v), want (%d,%d,%v)", c.m, x, y, ok, c.x, c.y, c.ok)
		}
	}
}

func TestPDSOrder(t *testing.T) {
	for _, m := range []int{7, 13, 21, 31, 57, 133} {
		if _, ok := pdsOrder(m); !ok {
			t.Errorf("pdsOrder(%d) not recognized", m)
		}
	}
	for _, m := range []int{16, 32, 64, 128} {
		if _, ok := pdsOrder(m); ok {
			t.Errorf("pdsOrder(%d) should not exist (paper cluster sizes use grid/oblivious)", m)
		}
	}
}

func TestPerfectDifferenceSetProperty(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5} {
		m := p*p + p + 1
		s := perfectDifferenceSet(m, p)
		if len(s) != p+1 {
			t.Fatalf("p=%d: set size %d, want %d", p, len(s), p+1)
		}
		seen := make([]bool, m)
		for i := range s {
			for j := range s {
				if i == j {
					continue
				}
				d := ((s[i]-s[j])%m + m) % m
				if seen[d] {
					t.Fatalf("p=%d: difference %d repeated", p, d)
				}
				seen[d] = true
			}
		}
		for d := 1; d < m; d++ {
			if !seen[d] {
				t.Fatalf("p=%d: difference %d missing", p, d)
			}
		}
	}
}

func TestAutoKindMatchesPaper(t *testing.T) {
	// §5.4: Grid at 16 and 64 machines, Oblivious at 32 and 128.
	cases := map[int]VertexCutKind{
		16: VCGrid, 64: VCGrid,
		32: VCOblivious, 128: VCOblivious,
		13: VCPDS, 57: VCPDS,
	}
	for m, want := range cases {
		if got := AutoKind(m); got != want {
			t.Errorf("AutoKind(%d) = %v, want %v", m, got, want)
		}
	}
}

func TestVertexCutInvariants(t *testing.T) {
	g := randomGraph(200, 2000, 3)
	for _, kind := range []VertexCutKind{VCRandom, VCGrid, VCOblivious} {
		m := 16
		vc := BuildVertexCut(g, m, kind, 7)
		// Every edge assigned exactly once to a valid machine.
		total := 0
		for _, c := range vc.EdgeCounts() {
			total += c
		}
		if total != g.NumEdges() {
			t.Errorf("%v: %d edges placed, want %d", kind, total, g.NumEdges())
		}
		// Each edge's machine holds replicas of both endpoints.
		idx := 0
		bad := 0
		g.Edges(func(src, dst graph.VertexID) bool {
			mach := vc.MachineOfEdge(idx)
			if !vc.replicas[src].has(mach) || !vc.replicas[dst].has(mach) {
				bad++
			}
			idx++
			return true
		})
		if bad > 0 {
			t.Errorf("%v: %d edges on machines lacking endpoint replicas", kind, bad)
		}
		rf := vc.ReplicationFactor()
		if rf < 1 || rf > float64(m) {
			t.Errorf("%v: replication factor %v out of range", kind, rf)
		}
	}
}

func TestVertexCutPDS(t *testing.T) {
	g := randomGraph(150, 1500, 5)
	vc := BuildVertexCut(g, 13, VCPDS, 7) // 13 = 3²+3+1
	total := 0
	for _, c := range vc.EdgeCounts() {
		total += c
	}
	if total != g.NumEdges() {
		t.Fatalf("PDS lost edges: %d/%d", total, g.NumEdges())
	}
	// PDS bounds replicas by |S| = p+1 = 4... plus the endpoint's own
	// hash set; every vertex's replicas must lie inside its candidate
	// set, which has p+1 members for each of the two roles.
	if rf := vc.ReplicationFactor(); rf > 8 {
		t.Errorf("PDS replication factor %v, want <= 2(p+1)", rf)
	}
}

func TestConstrainedCutsReduceReplication(t *testing.T) {
	// §4.4.1: grid/oblivious exist to reduce the replication factor
	// versus random. Use a skewed graph where it matters.
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 200_000, Seed: 1})
	random := BuildVertexCut(g, 16, VCRandom, 7).ReplicationFactor()
	grid := BuildVertexCut(g, 16, VCGrid, 7).ReplicationFactor()
	obl := BuildVertexCut(g, 16, VCOblivious, 7).ReplicationFactor()
	if grid >= random {
		t.Errorf("grid replication %v not below random %v", grid, random)
	}
	if obl >= random {
		t.Errorf("oblivious replication %v not below random %v", obl, random)
	}
}

func TestMasterOf(t *testing.T) {
	g := randomGraph(50, 200, 9)
	vc := BuildVertexCut(g, 8, VCRandom, 7)
	for v := 0; v < g.NumVertices(); v++ {
		master := vc.MasterOf(graph.VertexID(v))
		if master < 0 || master >= 8 {
			t.Fatalf("master %d out of range", master)
		}
		if vc.NumReplicas(graph.VertexID(v)) > 0 && !vc.replicas[v].has(master) {
			t.Fatalf("master of %d not among its replicas", v)
		}
	}
}

func TestVoronoiCoversAllVertices(t *testing.T) {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 400_000, Seed: 1})
	v := BuildVoronoi(g, 4, 11, VoronoiOptions{})
	for i, b := range v.BlockOf {
		if b < 0 || int(b) >= v.NumBlocks {
			t.Fatalf("vertex %d in invalid block %d", i, b)
		}
	}
	sum := 0
	for _, s := range v.BlockSizes {
		sum += s
	}
	if sum != g.NumVertices() {
		t.Fatalf("block sizes sum to %d, want %d", sum, g.NumVertices())
	}
}

func TestVoronoiBlocksAreConnected(t *testing.T) {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 800_000, Seed: 2})
	u := g.Undirected()
	v := BuildVoronoi(g, 4, 3, VoronoiOptions{})
	// BFS within each block must reach the whole block.
	seen := make([]bool, g.NumVertices())
	for start := 0; start < g.NumVertices(); start++ {
		if seen[start] {
			continue
		}
		block := v.BlockOf[start]
		count := 0
		stack := []graph.VertexID{graph.VertexID(start)}
		seen[start] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, w := range u.OutNeighbors(x) {
				if !seen[w] && v.BlockOf[w] == block {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		_ = count
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("vertex %d not reached within its own block: block not connected", i)
		}
	}
}

func TestVoronoiBlockGraphAndPacking(t *testing.T) {
	g := datasets.Generate(datasets.UK, datasets.Options{Scale: 400_000, Seed: 1})
	m := 8
	v := BuildVoronoi(g, m, 5, VoronoiOptions{})
	if v.NumBlocks < m {
		t.Logf("only %d blocks for %d machines (acceptable for tiny graphs)", v.NumBlocks, m)
	}
	counts := v.MachineVertexCounts(m)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != g.NumVertices() {
		t.Fatalf("machine vertex counts sum to %d, want %d", total, g.NumVertices())
	}
	// Cross-block edges must be consistent between the two counters.
	if v.CrossBlockEdges() < v.CrossMachineEdges(g) {
		t.Errorf("cross-block (%d) < cross-machine (%d): blocks span machines?",
			v.CrossBlockEdges(), v.CrossMachineEdges(g))
	}
	for x := 0; x < g.NumVertices(); x++ {
		mach := v.MachineOf(graph.VertexID(x))
		if mach < 0 || mach >= m {
			t.Fatalf("vertex %d on invalid machine %d", x, mach)
		}
	}
}

func TestVoronoiReducesDiameterForRoads(t *testing.T) {
	// The entire point of Blogel-B on WRN: the block graph has a far
	// smaller diameter than the vertex graph.
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 400_000, Seed: 1})
	v := BuildVoronoi(g, 8, 3, VoronoiOptions{})
	if v.NumBlocks >= g.NumVertices()/2 {
		t.Fatalf("voronoi produced %d blocks for %d vertices: no compression", v.NumBlocks, g.NumVertices())
	}
}

func TestTunedPartitionsMatchesTable5(t *testing.T) {
	// Table 5: per dataset blocks and cluster size -> partitions.
	cases := []struct {
		blocks, machines, want int
	}{
		{440, 16, 128}, {440, 32, 256}, {440, 64, 440}, {440, 128, 440},
		{240, 16, 128}, {240, 32, 240}, {240, 64, 240}, {240, 128, 240},
		{1200, 16, 128}, {1200, 32, 256}, {1200, 64, 512}, {1200, 128, 1024},
	}
	for _, c := range cases {
		if got := TunedPartitions(c.blocks, c.machines*4); got != c.want {
			t.Errorf("TunedPartitions(%d, %d machines) = %d, want %d", c.blocks, c.machines, got, c.want)
		}
	}
}

func TestSparkPlacementSkewed(t *testing.T) {
	counts := SparkPlacement(1200, 128, 1)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1200 {
		t.Fatalf("placement lost partitions: %d/1200", total)
	}
	max := MaxCount(counts)
	// Figure 11: balanced would be 9.4; the paper observed one machine
	// with 54. The model must reproduce a severe skew.
	if max < 25 {
		t.Errorf("max partitions per machine = %d, want the Figure 11 skew (>= 25)", max)
	}
	if max > 120 {
		t.Errorf("max partitions per machine = %d: implausibly skewed", max)
	}
}

// Property: vertex-cut never loses or duplicates edges for any graph.
func TestQuickVertexCutComplete(t *testing.T) {
	f := func(seed int64, mSel uint8) bool {
		ms := []int{2, 4, 6, 16}[int(mSel)%4]
		g := randomGraph(40, 160, seed)
		for _, kind := range []VertexCutKind{VCRandom, VCGrid, VCOblivious} {
			if kind == VCGrid {
				if _, _, ok := gridShape(ms); !ok {
					continue
				}
			}
			vc := BuildVertexCut(g, ms, kind, seed)
			total := 0
			for _, c := range vc.EdgeCounts() {
				total += c
			}
			if total != g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
