package enginetest

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/pregel"
)

// oocBudget returns a budget small enough that the workload's lean
// in-core residency on the scale-up UK fixture overflows it (10–17 MB
// at 64 machines) while the out-of-core working set still fits. WCC
// mirrors every edge through the in-neighbor CSR, which both inflates
// its lean residency (~16 MB) and widens its out-of-core windows, so it
// gets a bit more headroom. Triangle counting is the exception by
// design: its forward-orientation graph halves the edge count, so it
// runs in-core under soft pressure — which is itself worth pinning
// down: the governor must pick the cheapest mode that fits, not spill
// unconditionally.
func oocBudget(k engine.Kind) int64 {
	if k == engine.WCC {
		return 11 << 20
	}
	return 9 << 20
}

// TestOutOfCoreBitIdentity is the acceptance test for the memory
// governor: a run under a budget that forces out-of-core execution must
// produce outputs, iteration stats, and modeled costs bit-identical to
// the unbounded in-core run at every shard count, while its tracked peak
// stays within the budget and the message plane demonstrably spills.
func TestOutOfCoreBitIdentity(t *testing.T) {
	f := Prepare(t, datasets.UK, datasets.ScaleUpScale)
	workloads := []engine.Workload{
		engine.NewPageRank(),
		engine.NewWCC(),
		engine.NewSSSP(f.Dataset.Source),
		engine.NewKHop(f.Dataset.Source),
		engine.NewTriangleCount(),
		engine.NewLPA(),
	}
	// 64 machines keeps every workload under the simulated cluster's
	// modeled memory capacity at this scale (the host-side governor is
	// a separate ledger and must not change any modeled number).
	const machines = 64

	for _, shards := range []int{1, 8} {
		for _, w := range workloads {
			t.Run(fmt.Sprintf("%s/shards=%d", w.Kind, shards), func(t *testing.T) {
				t0 := time.Now()
				plain := RunOK(t, pregel.New(), f, machines, w, engine.Options{Shards: shards})
				inCore := time.Since(t0)
				if plain.Govern != (govern.RunStats{}) {
					t.Fatalf("ungoverned run has governor stats: %+v", plain.Govern)
				}

				budget := oocBudget(w.Kind)
				gov, err := govern.New(budget, t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				defer gov.Close()
				t0 = time.Now()
				got := RunOK(t, pregel.New(), f, machines, w,
					engine.Options{Shards: shards, Governor: gov})
				bounded := time.Since(t0)

				requireSameComputation(t, "governed vs in-core", plain, got)
				if !reflect.DeepEqual(got.PerIteration, plain.PerIteration) {
					t.Fatal("governed PerIteration differs from in-core")
				}
				// The governor is invisible to the cost model: modeled
				// time, traffic, memory, and CPU are bit-identical.
				if got.TotalTime() != plain.TotalTime() ||
					got.Load != plain.Load || got.Exec != plain.Exec ||
					got.Save != plain.Save || got.Overhead != plain.Overhead {
					t.Fatalf("modeled time differs: governed %v, in-core %v",
						got.TotalTime(), plain.TotalTime())
				}
				if got.NetBytes != plain.NetBytes || got.MemTotal != plain.MemTotal ||
					got.MemMax != plain.MemMax {
					t.Fatalf("modeled resources differ: governed (%d,%d,%d), in-core (%d,%d,%d)",
						got.NetBytes, got.MemTotal, got.MemMax,
						plain.NetBytes, plain.MemTotal, plain.MemMax)
				}
				if got.CPUUser != plain.CPUUser || got.CPUIO != plain.CPUIO ||
					got.CPUNet != plain.CPUNet || got.CPUIdle != plain.CPUIdle {
					t.Fatal("modeled CPU decomposition differs under the governor")
				}

				// Ledger invariants: accounted, bounded, and — for the
				// workloads whose plane overflows the budget — spilled.
				gs := got.Govern
				if gs.BudgetBytes != budget {
					t.Fatalf("Govern.BudgetBytes = %d, want %d", gs.BudgetBytes, budget)
				}
				if gs.PeakBytes <= 0 || gs.PeakBytes > budget {
					t.Fatalf("tracked peak %d outside (0, %d]", gs.PeakBytes, budget)
				}
				if w.Kind == engine.Triangle {
					if gs.Spilled {
						t.Fatalf("triangle run spilled (%+v); its halved plane fits in-core", gs)
					}
					if gs.SoftEvents == 0 {
						t.Fatalf("triangle run saw no soft pressure: %+v", gs)
					}
				} else {
					if !gs.Spilled || gs.HardEvents == 0 {
						t.Fatalf("run did not go out-of-core: %+v", gs)
					}
					if gs.SpillBytes == 0 {
						t.Fatalf("out-of-core run spilled no bytes: %+v", gs)
					}
				}

				// All leases are closed: the spill root holds no leftover
				// run directories or segment files.
				ents, err := os.ReadDir(gov.Root())
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Fatalf("spill root not empty after run: %d entries", len(ents))
				}
				t.Logf("in-core %v, bounded %v (%.2fx), spilled %d bytes, peak %d/%d",
					inCore, bounded, float64(bounded)/float64(inCore),
					gs.SpillBytes, gs.PeakBytes, budget)
			})
		}
	}
}
