package enginetest

import (
	"reflect"
	"testing"

	"graphbench/internal/blogel"
	"graphbench/internal/chaos"
	"graphbench/internal/dataflow"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/graphx"
	"graphbench/internal/haloop"
	"graphbench/internal/mapreduce"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

// maxFaultBoundaries is a runaway bound on the per-cell boundary scan.
const maxFaultBoundaries = 500

// TestFaultMatrixRecovery is the acceptance test for the recovery
// tentpole: for every fault-tolerant engine × workload, injecting one
// recoverable machine kill at EACH superstep/job/stage boundary must
// yield a recovered run whose outputs, iteration count, and status are
// bit-identical to the failure-free run, with nonzero recovery cost
// recorded and a strictly larger modeled total time. The boundary scan
// is exhaustive: boundaries are discovered by injecting at index
// 0, 1, 2, ... until a plan no longer fires.
func TestFaultMatrixRecovery(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)

	// Fresh engine per run: Gelly models a session leak across runs of
	// one engine value, and every cell must start from identical state.
	// Machine counts are per-engine: 64 keeps every cell under the
	// modeled memory capacity, but HaLoop must stay below the 64-machine
	// threshold of its shuffle bug — injected kills must be the only
	// faults in the matrix.
	makers := []struct {
		mk       func() engine.Engine
		machines int
	}{
		{func() engine.Engine { return pregel.New() }, 64},
		{func() engine.Engine { return blogel.NewV() }, 64},
		{func() engine.Engine { return dataflow.New() }, 64},
		{func() engine.Engine { return mapreduce.New() }, 64},
		{func() engine.Engine { return haloop.New() }, 32},
		{func() engine.Engine { return graphx.New() }, 64},
	}
	workloads := []engine.Workload{
		engine.NewPageRank(),
		engine.NewWCC(),
		engine.NewSSSP(f.Dataset.Source),
		engine.NewKHop(f.Dataset.Source),
		engine.NewTriangleCount(),
		engine.NewLPA(),
	}

	opt := engine.Options{Shards: 1, Recover: true, CheckpointEvery: 2}
	runWith := func(mk func() engine.Engine, machines int, w engine.Workload, inj sim.Injector) *engine.Result {
		c := sim.NewSize(machines)
		if inj != nil {
			c.SetInjector(inj)
		}
		return mk().Run(c, f.Dataset, w, opt)
	}

	for _, m := range makers {
		mk, machines := m.mk, m.machines
		name := mk().Name()
		for _, w := range workloads {
			t.Run(name+"/"+w.Kind.String(), func(t *testing.T) {
				clean := runWith(mk, machines, w, nil)
				if clean.Status != sim.OK {
					t.Fatalf("failure-free run: status %v (%v)", clean.Status, clean.Err)
				}
				if clean.Costs.Failures != 0 || clean.Costs.RestartSeconds != 0 || clean.Costs.ReplaySeconds != 0 {
					t.Fatalf("failure-free run recorded recovery costs: %+v", clean.Costs)
				}
				// Recovery plumbing must not perturb the computation:
				// the recover-enabled run matches the plain one.
				plain := mk().Run(sim.NewSize(machines), f.Dataset, w, engine.Options{Shards: 1})
				requireSameComputation(t, "recover-enabled vs plain", plain, clean)

				boundaries := 0
				for b := 0; b <= maxFaultBoundaries; b++ {
					if b == maxFaultBoundaries {
						t.Fatalf("still crossing boundaries after %d injections", b)
					}
					plan := chaos.Plan{
						Seed:        int64(b),
						Kind:        chaos.KillMachine,
						KillMachine: b % machines,
						AtSuperstep: b,
					}
					inj := plan.Injector()
					got := runWith(mk, machines, w, inj)
					if !inj.Fired() {
						boundaries = b
						break
					}
					if got.Status != sim.OK {
						t.Fatalf("boundary %d: recovered run status %v (%v)", b, got.Status, got.Err)
					}
					requireSameComputation(t, plan.String(), clean, got)
					if got.Costs.Failures != 1 {
						t.Fatalf("boundary %d: Costs.Failures = %d, want 1", b, got.Costs.Failures)
					}
					if got.Costs.TotalSeconds() <= 0 {
						t.Fatalf("boundary %d: recovery cost %v, want > 0", b, got.Costs)
					}
					if got.TotalTime() <= clean.TotalTime() {
						t.Fatalf("boundary %d: recovered TotalTime %v <= clean %v",
							b, got.TotalTime(), clean.TotalTime())
					}
					if b == 0 {
						// The seeded schedule replays deterministically:
						// the same plan reproduces the run bit-for-bit,
						// recovery costs included.
						again := runWith(mk, machines, w, plan.Injector())
						requireSameComputation(t, "replayed "+plan.String(), got, again)
						if again.TotalTime() != got.TotalTime() {
							t.Fatalf("replay TotalTime %v != %v", again.TotalTime(), got.TotalTime())
						}
						if !reflect.DeepEqual(again.Costs, got.Costs) {
							t.Fatalf("replay Costs %+v != %+v", again.Costs, got.Costs)
						}
					}
				}
				if boundaries == 0 {
					t.Fatal("no boundary ever crossed: injection is not wired into this engine")
				}
			})
		}
	}
}

// requireSameComputation asserts two runs computed the same thing:
// status, iteration count, and all outputs bit-identical. Modeled
// timing is deliberately NOT compared — recovered runs are slower.
func requireSameComputation(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status %v, want %v", label, got.Status, want.Status)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: Iterations %d, want %d", label, got.Iterations, want.Iterations)
	}
	if len(got.Ranks) != len(want.Ranks) || len(got.Labels) != len(want.Labels) ||
		len(got.Dist) != len(want.Dist) || len(got.Triangles) != len(want.Triangles) {
		t.Fatalf("%s: output lengths (%d,%d,%d,%d), want (%d,%d,%d,%d)", label,
			len(got.Ranks), len(got.Labels), len(got.Dist), len(got.Triangles),
			len(want.Ranks), len(want.Labels), len(want.Dist), len(want.Triangles))
	}
	for v := range want.Ranks {
		if got.Ranks[v] != want.Ranks[v] {
			t.Fatalf("%s: Ranks[%d] = %v, want %v (bit-identical)", label, v, got.Ranks[v], want.Ranks[v])
		}
	}
	for v := range want.Labels {
		if got.Labels[v] != want.Labels[v] {
			t.Fatalf("%s: Labels[%d] = %d, want %d", label, v, got.Labels[v], want.Labels[v])
		}
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("%s: Dist[%d] = %d, want %d", label, v, got.Dist[v], want.Dist[v])
		}
	}
	for v := range want.Triangles {
		if got.Triangles[v] != want.Triangles[v] {
			t.Fatalf("%s: Triangles[%d] = %d, want %d", label, v, got.Triangles[v], want.Triangles[v])
		}
	}
}
