package enginetest

import (
	"testing"

	"graphbench/internal/blogel"
	"graphbench/internal/dataflow"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/gas"
	"graphbench/internal/govern"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

// TestShardPlanIdentity locks in the planner-knob contract for shard
// plans: cutting the vertex ranges uniformly instead of by edge-
// balanced prefix must produce bit-identical outputs, iteration stats,
// and modeled costs on every engine family that consumes the knob —
// the plan only moves which worker computes which range. The weighted
// plan is the historical default (and the zero value), so the golden
// run needs no option at all.
func TestShardPlanIdentity(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)

	makers := []func() engine.Engine{
		func() engine.Engine { return pregel.New() },
		func() engine.Engine { return blogel.NewV() },
		func() engine.Engine { return dataflow.New() },
		func() engine.Engine { return gas.New() },
	}
	workloads := []engine.Workload{
		engine.NewPageRank(),
		engine.NewWCC(),
		engine.NewSSSP(f.Dataset.Source),
	}

	for _, mk := range makers {
		name := mk().Name()
		for _, w := range workloads {
			t.Run(name+"/"+w.Kind.String(), func(t *testing.T) {
				golden := RunOK(t, mk(), f, 64, w, engine.Options{Shards: 4})
				for _, shards := range []int{1, 4, 8} {
					got := RunOK(t, mk(), f, 64, w, engine.Options{
						Shards: shards, ShardPlan: engine.ShardPlanUniform,
					})
					requireIdenticalRuns(t, shards, golden, got)
				}
			})
		}
	}
}

// TestMemoryTierIdentity: TierSpill (start out-of-core, skipping the
// governor's reservation probes) must match the TierAuto run bit for
// bit — outputs, iteration stats, modeled costs — and still respect
// the budget. The tier is a planner hint about where the governor
// search should start, never about what the engine computes.
func TestMemoryTierIdentity(t *testing.T) {
	f := Prepare(t, datasets.UK, datasets.ScaleUpScale)
	w := engine.NewPageRank()
	const machines, budget = 64, 24 << 20

	plain := RunOK(t, pregel.New(), f, machines, w, engine.Options{Shards: 4})

	for _, tier := range []engine.MemoryTier{engine.TierAuto, engine.TierSpill} {
		gov, err := govern.New(budget, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		got := RunOK(t, pregel.New(), f, machines, w, engine.Options{
			Shards: 4, Governor: gov, MemoryTier: tier,
		})
		requireSameComputation(t, "tier="+tier.String(), plain, got)
		if got.TotalTime() != plain.TotalTime() ||
			got.NetBytes != plain.NetBytes || got.MemMax != plain.MemMax {
			t.Fatalf("tier=%s changed modeled costs", tier)
		}
		if got.Govern.PeakBytes > budget {
			t.Fatalf("tier=%s peak %d exceeds budget %d", tier, got.Govern.PeakBytes, budget)
		}
		gov.Close()
	}
}

// TestPlannedRunMatchesManual: applying a planner decision through the
// engine options must be exactly equivalent to setting the same knobs
// by hand — the decision is configuration, not computation.
func TestPlannedRunMatchesManual(t *testing.T) {
	f := Prepare(t, datasets.Twitter, 1_000_000)
	w := engine.NewWCC()

	manual := RunOK(t, pregel.New(), f, 32, w, engine.Options{
		Shards:    6,
		ShardPlan: engine.ShardPlanUniform,
		Direction: engine.DirectionAuto,
	})
	again := RunOK(t, pregel.New(), f, 32, w, engine.Options{
		Shards:    6,
		ShardPlan: engine.ShardPlanUniform,
		Direction: engine.DirectionAuto,
	})
	requireIdenticalRuns(t, 6, manual, again)

	// And the knobs stay invisible to the simulated cluster.
	if manual.Status != sim.OK {
		t.Fatalf("run failed: %v", manual.Status)
	}
}
