package enginetest

import (
	"testing"

	"graphbench/internal/blogel"
	"graphbench/internal/chaos"
	"graphbench/internal/dataflow"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

// TestDirectionPolicyIdentity locks in the direction-optimization
// contract (internal/bsp/pull.go): for every BSP engine and every
// workload with a pull kernel, DirectionPush, DirectionPull, and
// DirectionAuto must produce bit-identical outputs, modeled costs, and
// per-iteration stats at every shard count. The push-only sequential
// run is the golden baseline — it takes the classic send-bucket path
// untouched by this feature — and is itself checked against the
// single-thread oracles, so every direction × shard combination below
// is transitively oracle-identical.
func TestDirectionPolicyIdentity(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)

	makers := []func() engine.Engine{
		func() engine.Engine { return pregel.New() },
		func() engine.Engine { return blogel.NewV() },
		func() engine.Engine { return dataflow.New() },
	}
	workloads := []engine.Workload{
		engine.NewPageRank(),
		engine.NewWCC(),
		engine.NewSSSP(f.Dataset.Source),
	}
	directions := []struct {
		name string
		d    engine.Direction
	}{
		{"push", engine.DirectionPush},
		{"auto", engine.DirectionAuto},
		{"pull", engine.DirectionPull},
	}

	for _, mk := range makers {
		name := mk().Name()
		for _, w := range workloads {
			t.Run(name+"/"+w.Kind.String(), func(t *testing.T) {
				golden := mk().Run(sim.NewSize(64), f.Dataset, w,
					engine.Options{Shards: 1, Direction: engine.DirectionPush})
				if golden.Status != sim.OK {
					t.Fatalf("push golden run failed: %v (%v)", golden.Status, golden.Err)
				}
				switch w.Kind {
				case engine.WCC:
					VerifyWCC(t, f, golden)
				case engine.SSSP:
					VerifySSSP(t, f, golden)
				default:
					VerifyPageRank(t, f, golden, w, 1e-3)
				}
				for _, dir := range directions {
					for _, shards := range []int{1, 2, 8} {
						if dir.d == engine.DirectionPush && shards == 1 {
							continue // the golden run itself
						}
						t.Run(dir.name, func(t *testing.T) {
							got := mk().Run(sim.NewSize(64), f.Dataset, w,
								engine.Options{Shards: shards, Direction: dir.d})
							requireIdenticalRuns(t, shards, golden, got)
							requireIdenticalIterStats(t, shards, golden, got)
						})
					}
				}
			})
		}
	}
}

// TestDirectionUncombinedIdentity repeats the direction contract with
// the combiner ablation: without a combiner the delivery accounting
// counts raw message multiplicity instead of distinct (machine,
// receiver) pairs, which is a separate code path in the pull sweeps.
func TestDirectionUncombinedIdentity(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)
	for _, w := range []engine.Workload{engine.NewPageRank(), engine.NewWCC()} {
		t.Run(w.Kind.String(), func(t *testing.T) {
			golden := pregel.New().Run(sim.NewSize(64), f.Dataset, w,
				engine.Options{Shards: 1, DisableCombiner: true, Direction: engine.DirectionPush})
			if golden.Status != sim.OK {
				t.Fatalf("push golden run failed: %v (%v)", golden.Status, golden.Err)
			}
			for _, dir := range []engine.Direction{engine.DirectionAuto, engine.DirectionPull} {
				for _, shards := range []int{1, 8} {
					got := pregel.New().Run(sim.NewSize(64), f.Dataset, w,
						engine.Options{Shards: shards, DisableCombiner: true, Direction: dir})
					requireIdenticalRuns(t, shards, golden, got)
					requireIdenticalIterStats(t, shards, golden, got)
				}
			}
		})
	}
}

// TestDirectionRecoveryIdentity checks the checkpoint/rollback side of
// the feature: a checkpoint taken right after a pull superstep has no
// fresh inbox arena and snapshots the sender frontier instead, and a
// rollback must restore it (and the arena-freshness flag) so the replay
// reproduces the failure-free run bit for bit — under forced pull,
// where every checkpoint from superstep 2 on takes that path.
func TestDirectionRecoveryIdentity(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)
	for _, w := range []engine.Workload{engine.NewWCC(), engine.NewSSSP(f.Dataset.Source)} {
		for _, dir := range []struct {
			name string
			d    engine.Direction
		}{{"auto", engine.DirectionAuto}, {"pull", engine.DirectionPull}} {
			t.Run(w.Kind.String()+"/"+dir.name, func(t *testing.T) {
				opt := engine.Options{Shards: 1, Recover: true, CheckpointEvery: 2, Direction: dir.d}
				clean := pregel.New().Run(sim.NewSize(64), f.Dataset, w, opt)
				if clean.Status != sim.OK {
					t.Fatalf("failure-free run: status %v (%v)", clean.Status, clean.Err)
				}
				// Recovery plumbing must not perturb the computation, and
				// the direction policy must not perturb the checkpoint
				// charges: the failure-free recover-enabled run matches
				// the push one on every modeled dimension.
				push := pregel.New().Run(sim.NewSize(64), f.Dataset, w,
					engine.Options{Shards: 1, Recover: true, CheckpointEvery: 2, Direction: engine.DirectionPush})
				requireIdenticalRuns(t, 1, push, clean)
				requireIdenticalIterStats(t, 1, push, clean)
				for b := 2; b <= 5; b++ {
					plan := chaos.Plan{Seed: int64(b), Kind: chaos.KillMachine, KillMachine: b % 64, AtSuperstep: b}
					inj := plan.Injector()
					c := sim.NewSize(64)
					c.SetInjector(inj)
					got := pregel.New().Run(c, f.Dataset, w, opt)
					if !inj.Fired() {
						break
					}
					if got.Status != sim.OK {
						t.Fatalf("boundary %d: recovered run status %v (%v)", b, got.Status, got.Err)
					}
					requireSameComputation(t, plan.String(), clean, got)
					if got.Costs.Failures != 1 {
						t.Fatalf("boundary %d: Costs.Failures = %d, want 1", b, got.Costs.Failures)
					}
				}
			})
		}
	}
}

// requireIdenticalIterStats asserts the per-iteration traces match
// exactly: same superstep count, and bitwise-equal active counts,
// update counts, and modeled seconds at every superstep. This is the
// strongest form of the bit-identity contract — a pull sweep that
// miscounts activity or message volume at any single superstep fails
// here even if the final outputs happen to agree.
func requireIdenticalIterStats(t *testing.T, shards int, want, got *engine.Result) {
	t.Helper()
	if len(got.PerIteration) != len(want.PerIteration) {
		t.Fatalf("shards=%d: %d iteration stats, want %d", shards, len(got.PerIteration), len(want.PerIteration))
	}
	for i, w := range want.PerIteration {
		g := got.PerIteration[i]
		if g != w {
			t.Fatalf("shards=%d: PerIteration[%d] = %+v, want %+v", shards, i, g, w)
		}
	}
}
