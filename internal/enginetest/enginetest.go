// Package enginetest provides the shared verification harness for the
// eight engine packages: dataset preparation at test scale and output
// checks against the single-thread oracles. Every engine's integration
// tests run the same workloads — the paper's four plus the triangle
// counting and LPA extensions — through these helpers, which is how
// the repository enforces the paper's "uniform algorithm across
// systems" methodology.
package enginetest

import (
	"math"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// Fixture bundles a prepared dataset with its in-memory truth.
type Fixture struct {
	Graph   *graph.Graph
	Dataset *engine.Dataset
}

// Prepare generates the named dataset at the given scale, stores it in
// a fresh simulated HDFS, and returns the fixture.
func Prepare(t *testing.T, name datasets.Name, scale float64) *Fixture {
	t.Helper()
	g := datasets.Generate(name, datasets.Options{Scale: scale, Seed: 1})
	fs := hdfs.New()
	src := datasets.SourceVertex(g, 42)
	d, err := engine.Prepare(fs, g, "data/"+string(name), 64, src)
	if err != nil {
		t.Fatalf("preparing %s: %v", name, err)
	}
	d.DilationSSSP = datasets.TraversalDilation(name, g, src)
	d.DilationWCC = datasets.WCCDilation(name, g)
	return &Fixture{Graph: g, Dataset: d}
}

// RunOK runs the workload and requires a successful completion.
func RunOK(t *testing.T, e engine.Engine, f *Fixture, machines int, w engine.Workload, opt engine.Options) *engine.Result {
	t.Helper()
	res := e.Run(sim.NewSize(machines), f.Dataset, w, opt)
	if res.Status != sim.OK {
		t.Fatalf("%s/%s on %s@%d: status %v (%v)", e.Name(), w.Kind, f.Dataset.Name, machines, res.Status, res.Err)
	}
	return res
}

// VerifyPageRank checks ranks against the single-thread oracle with the
// same stopping criterion. tol is the comparison tolerance (engines with
// different summation orders need ~1e-9; asynchronous engines more).
func VerifyPageRank(t *testing.T, f *Fixture, res *engine.Result, w engine.Workload, tol float64) {
	t.Helper()
	want, iters, _ := singlethread.PageRank(f.Graph, w.Damping, w.Tolerance, w.MaxIterations)
	if len(res.Ranks) != len(want) {
		t.Fatalf("ranks length %d, want %d", len(res.Ranks), len(want))
	}
	worst := 0.0
	for v := range want {
		if d := math.Abs(res.Ranks[v] - want[v]); d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Fatalf("max rank deviation %v > %v (oracle converged in %d iterations, engine in %d)",
			worst, tol, iters, res.Iterations)
	}
}

// VerifyPageRankRelative is VerifyPageRank with a per-vertex relative
// tolerance — hub vertices carry ranks orders of magnitude above the
// floor, so approximate engines are compared proportionally.
func VerifyPageRankRelative(t *testing.T, f *Fixture, res *engine.Result, w engine.Workload, relTol float64) {
	t.Helper()
	want, _, _ := singlethread.PageRank(f.Graph, w.Damping, w.Tolerance, w.MaxIterations)
	if len(res.Ranks) != len(want) {
		t.Fatalf("ranks length %d, want %d", len(res.Ranks), len(want))
	}
	worst := 0.0
	for v := range want {
		denom := math.Abs(want[v])
		if denom < 1 {
			denom = 1
		}
		if d := math.Abs(res.Ranks[v]-want[v]) / denom; d > worst {
			worst = d
		}
	}
	if worst > relTol {
		t.Fatalf("max relative rank deviation %v > %v", worst, relTol)
	}
}

// VerifyWCC checks component labels exactly.
func VerifyWCC(t *testing.T, f *Fixture, res *engine.Result) {
	t.Helper()
	want := singlethread.WCCReference(f.Graph)
	if len(res.Labels) != len(want) {
		t.Fatalf("labels length %d, want %d", len(res.Labels), len(want))
	}
	for v := range want {
		if res.Labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, res.Labels[v], want[v])
		}
	}
}

// VerifySSSP checks hop distances exactly.
func VerifySSSP(t *testing.T, f *Fixture, res *engine.Result) {
	t.Helper()
	want := graph.BFSDistances(f.Graph, f.Dataset.Source)
	verifyDistances(t, res.Dist, want)
}

// VerifyKHop checks distances truncated at k.
func VerifyKHop(t *testing.T, f *Fixture, res *engine.Result, k int) {
	t.Helper()
	want, _ := singlethread.KHop(f.Graph, f.Dataset.Source, k)
	verifyDistances(t, res.Dist, want)
}

func verifyDistances(t *testing.T, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("distances length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// VerifyTriangles checks per-vertex incident-triangle counts exactly
// against the forward-algorithm oracle, plus the sum invariant: the
// per-vertex counts must sum to exactly three times the global total.
func VerifyTriangles(t *testing.T, f *Fixture, res *engine.Result) {
	t.Helper()
	want, total, _ := singlethread.TriangleCounts(f.Graph)
	if len(res.Triangles) != len(want) {
		t.Fatalf("triangle counts length %d, want %d", len(res.Triangles), len(want))
	}
	var sum int64
	for v := range want {
		if res.Triangles[v] != want[v] {
			t.Fatalf("triangles[%d] = %d, want %d", v, res.Triangles[v], want[v])
		}
		sum += res.Triangles[v]
	}
	if sum != 3*total {
		t.Fatalf("per-vertex counts sum to %d, want 3x%d", sum, total)
	}
	if got := res.TotalTriangles(); got != total {
		t.Fatalf("TotalTriangles = %d, want %d", got, total)
	}
}

// VerifyLPA checks the canonical community labels exactly against the
// synchronous label-propagation oracle at the workload's round cap.
func VerifyLPA(t *testing.T, f *Fixture, res *engine.Result, w engine.Workload) {
	t.Helper()
	want, _ := singlethread.LabelPropagation(f.Graph, w.LPAIterations())
	if len(res.Labels) != len(want) {
		t.Fatalf("labels length %d, want %d", len(res.Labels), len(want))
	}
	for v := range want {
		if res.Labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, res.Labels[v], want[v])
		}
	}
}

// VerifyAllWorkloads runs every workload — the paper's four plus the
// extension workloads — at the given cluster size and verifies each
// against its oracle; the common body of every engine's integration
// test.
func VerifyAllWorkloads(t *testing.T, e engine.Engine, f *Fixture, machines int, prTol float64, opt engine.Options) {
	t.Helper()
	w := engine.NewPageRank()
	VerifyPageRank(t, f, RunOK(t, e, f, machines, w, opt), w, prTol)
	VerifyWCC(t, f, RunOK(t, e, f, machines, engine.NewWCC(), opt))
	VerifySSSP(t, f, RunOK(t, e, f, machines, engine.NewSSSP(f.Dataset.Source), opt))
	VerifyKHop(t, f, RunOK(t, e, f, machines, engine.NewKHop(f.Dataset.Source), opt), 3)
	VerifyTriangles(t, f, RunOK(t, e, f, machines, engine.NewTriangleCount(), opt))
	lpa := engine.NewLPA()
	VerifyLPA(t, f, RunOK(t, e, f, machines, lpa, opt), lpa)
}
