package enginetest

import (
	"testing"

	"graphbench/internal/blogel"
	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/gas"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

// TestParallelDeterminism locks in the internal/par contract: the
// sharded runtimes (BSP compute/send, GAS gather/apply, Blogel block
// mode) merge per-shard state in shard order, so every pool size must
// produce bit-identical workload outputs AND identical modeled costs.
// Shards:1 is the sequential golden run (the par pool runs inline on
// one worker); 2 and 8 exercise uneven sharding below and above the
// shard count the fixtures' vertex counts divide evenly by; 0 is the
// GOMAXPROCS default every ordinary run uses.
func TestParallelDeterminism(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)

	makers := []func() engine.Engine{
		func() engine.Engine { return pregel.New() },
		func() engine.Engine { return gas.New() },
		func() engine.Engine { return blogel.NewV() },
		func() engine.Engine { return blogel.NewB() },
	}
	workloads := []engine.Workload{
		engine.NewPageRank(),
		engine.NewWCC(),
		engine.NewSSSP(f.Dataset.Source),
		engine.NewKHop(f.Dataset.Source),
		engine.NewTriangleCount(),
		engine.NewLPA(),
	}

	for _, mk := range makers {
		name := mk().Name()
		for _, w := range workloads {
			t.Run(name+"/"+w.Kind.String(), func(t *testing.T) {
				golden := mk().Run(sim.NewSize(64), f.Dataset, w, engine.Options{Shards: 1})
				if golden.Status != sim.OK {
					t.Fatalf("sequential golden run failed: %v (%v)", golden.Status, golden.Err)
				}
				// The sequential golden run itself must equal the
				// single-thread oracle for the extension workloads, so
				// every pool size below is transitively oracle-identical.
				switch w.Kind {
				case engine.Triangle:
					VerifyTriangles(t, f, golden)
				case engine.LPA:
					VerifyLPA(t, f, golden, w)
				}
				for _, shards := range []int{2, 8, 0} {
					got := mk().Run(sim.NewSize(64), f.Dataset, w, engine.Options{Shards: shards})
					requireIdenticalRuns(t, shards, golden, got)
				}
			})
		}
	}
}

// requireIdenticalRuns asserts two runs are indistinguishable: same
// status, bit-identical outputs, and identical modeled time, network,
// and iteration counts.
func requireIdenticalRuns(t *testing.T, shards int, want, got *engine.Result) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("shards=%d: status %v, want %v", shards, got.Status, want.Status)
	}
	if got.TotalTime() != want.TotalTime() {
		t.Errorf("shards=%d: TotalTime %v, want %v", shards, got.TotalTime(), want.TotalTime())
	}
	if got.NetBytes != want.NetBytes {
		t.Errorf("shards=%d: NetBytes %d, want %d", shards, got.NetBytes, want.NetBytes)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("shards=%d: Iterations %d, want %d", shards, got.Iterations, want.Iterations)
	}
	if got.MemTotal != want.MemTotal {
		t.Errorf("shards=%d: MemTotal %d, want %d", shards, got.MemTotal, want.MemTotal)
	}
	if len(got.Ranks) != len(want.Ranks) || len(got.Labels) != len(want.Labels) || len(got.Dist) != len(want.Dist) {
		t.Fatalf("shards=%d: output lengths (%d,%d,%d), want (%d,%d,%d)", shards,
			len(got.Ranks), len(got.Labels), len(got.Dist),
			len(want.Ranks), len(want.Labels), len(want.Dist))
	}
	for v := range want.Ranks {
		if got.Ranks[v] != want.Ranks[v] {
			t.Fatalf("shards=%d: Ranks[%d] = %v, want %v (bit-identical)", shards, v, got.Ranks[v], want.Ranks[v])
		}
	}
	for v := range want.Labels {
		if got.Labels[v] != want.Labels[v] {
			t.Fatalf("shards=%d: Labels[%d] = %d, want %d", shards, v, got.Labels[v], want.Labels[v])
		}
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("shards=%d: Dist[%d] = %d, want %d", shards, v, got.Dist[v], want.Dist[v])
		}
	}
	if len(got.Triangles) != len(want.Triangles) {
		t.Fatalf("shards=%d: Triangles length %d, want %d", shards, len(got.Triangles), len(want.Triangles))
	}
	for v := range want.Triangles {
		if got.Triangles[v] != want.Triangles[v] {
			t.Fatalf("shards=%d: Triangles[%d] = %d, want %d", shards, v, got.Triangles[v], want.Triangles[v])
		}
	}
}

// TestGridDeterminism runs the same experiment grid through
// core.RunGrid at matrix pool sizes 1, 2 and 8: harness-level
// concurrency must not perturb modeled results either.
func TestGridDeterminism(t *testing.T) {
	var cells []core.Cell
	for _, key := range []string{"giraph", "blogel-v", "gl-s-r-i", "graphx"} {
		s, err := core.SystemByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, core.Cell{System: s, Dataset: datasets.Twitter, Kind: engine.PageRank, Machines: 16})
	}
	run := func(workers int) []*engine.Result {
		r := core.NewRunner(600_000, 1)
		r.Workers = workers
		return r.RunGrid(cells)
	}
	golden := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range cells {
			requireIdenticalRuns(t, workers, golden[i], got[i])
		}
	}
}
