package enginetest

import (
	"os"
	"testing"

	"graphbench/internal/chaos"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

// TestFaultMatrixSpillRecovery extends the fault matrix to out-of-core
// runs: a machine kill fired at each superstep boundary — while spill
// segments are live on disk — must recover to outputs bit-identical to
// the failure-free spilled run (which itself matches the in-core run),
// and every recovery must leave the spill root empty: rollback either
// restores checkpointed segments or invalidates them; it never leaks.
func TestFaultMatrixSpillRecovery(t *testing.T) {
	f := Prepare(t, datasets.UK, datasets.ScaleUpScale)
	const machines = 64

	workloads := []engine.Workload{
		engine.NewPageRank(),
		engine.NewWCC(),
	}
	runWith := func(w engine.Workload, gov *govern.Governor, inj sim.Injector, opt engine.Options) *engine.Result {
		opt.Governor = gov
		c := sim.NewSize(machines)
		if inj != nil {
			c.SetInjector(inj)
		}
		return pregel.New().Run(c, f.Dataset, w, opt)
	}
	requireCleanRoot := func(t *testing.T, gov *govern.Governor, label string) {
		t.Helper()
		ents, err := os.ReadDir(gov.Root())
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("%s: spill root holds %d leftover entries", label, len(ents))
		}
	}

	opt := engine.Options{Shards: 1, Recover: true, CheckpointEvery: 2}
	for _, w := range workloads {
		t.Run(w.Kind.String(), func(t *testing.T) {
			gov, err := govern.New(oocBudget(w.Kind), t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer gov.Close()

			// The checkpointing spilled run computes exactly what the
			// unbounded, checkpoint-free run computes.
			plain := RunOK(t, pregel.New(), f, machines, w, engine.Options{Shards: 1})
			clean := runWith(w, gov, nil, opt)
			if clean.Status != sim.OK {
				t.Fatalf("failure-free spilled run: status %v (%v)", clean.Status, clean.Err)
			}
			if !clean.Govern.Spilled || clean.Govern.SpillBytes == 0 {
				t.Fatalf("run stayed in-core (%+v); the fixture no longer overflows the budget", clean.Govern)
			}
			requireSameComputation(t, "spilled vs in-core", plain, clean)
			requireCleanRoot(t, gov, "failure-free spilled run")

			boundaries := 0
			for b := 0; b <= maxFaultBoundaries; b++ {
				if b == maxFaultBoundaries {
					t.Fatalf("still crossing boundaries after %d injections", b)
				}
				plan := chaos.Plan{
					Seed:        int64(b),
					Kind:        chaos.KillMachine,
					KillMachine: b % machines,
					AtSuperstep: b,
				}
				inj := plan.Injector()
				got := runWith(w, gov, inj, opt)
				if !inj.Fired() {
					boundaries = b
					break
				}
				if got.Status != sim.OK {
					t.Fatalf("boundary %d: recovered spilled run status %v (%v)", b, got.Status, got.Err)
				}
				requireSameComputation(t, plan.String(), clean, got)
				if !got.Govern.Spilled {
					t.Fatalf("boundary %d: recovered run did not stay out-of-core: %+v", b, got.Govern)
				}
				if got.Costs.Failures != 1 {
					t.Fatalf("boundary %d: Costs.Failures = %d, want 1", b, got.Costs.Failures)
				}
				requireCleanRoot(t, gov, plan.String())
			}
			if boundaries == 0 {
				t.Fatal("no boundary ever crossed: injection is not reaching the spilled run")
			}

			root := gov.Root()
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(root); !os.IsNotExist(err) {
				t.Fatalf("governor Close left spill root behind (stat err %v)", err)
			}
		})
	}
}
