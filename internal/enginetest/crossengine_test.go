package enginetest

import (
	"math"
	"testing"

	"graphbench/internal/blogel"
	"graphbench/internal/dataflow"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/gas"
	"graphbench/internal/graphx"
	"graphbench/internal/haloop"
	"graphbench/internal/mapreduce"
	"graphbench/internal/pregel"
	"graphbench/internal/relational"
	"graphbench/internal/sim"
)

// engineMakers constructs a fresh instance of every engine in the
// study per run: Gelly leaks memory across jobs on one instance (the
// paper restarted Flink per workload), so instances are not shared.
func engineMakers() []func() engine.Engine {
	return []func() engine.Engine{
		func() engine.Engine { return pregel.New() },
		func() engine.Engine { return gas.New() },
		func() engine.Engine { return blogel.NewV() },
		func() engine.Engine { return blogel.NewB() },
		func() engine.Engine { return mapreduce.New() },
		func() engine.Engine { return haloop.New() },
		func() engine.Engine { return graphx.New() },
		func() engine.Engine { return relational.New() },
		func() engine.Engine { return dataflow.New() },
	}
}

func allEngines() []engine.Engine {
	var out []engine.Engine
	for _, mk := range engineMakers() {
		out = append(out, mk())
	}
	return out
}

// TestCrossEngineAgreement is the paper's methodology check: every
// system runs the same algorithm (§3), so all engines must produce
// identical outputs on the same dataset. WRN is used because it has no
// self-edges (GraphLab drops those) and Blogel-B's MPI overflow does
// not trigger at this scale factor... except it does at paper scale, so
// Blogel-B runs against a UK fixture instead for the traversals.
func TestCrossEngineAgreement(t *testing.T) {
	f := Prepare(t, datasets.UK, 1_000_000)
	clean := &Fixture{Graph: f.Graph.WithoutSelfEdges(), Dataset: f.Dataset}

	for _, mk := range engineMakers() {
		e := mk()
		machines := 64 // everything loads UK at 64...
		if e.Name() == "haloop" {
			machines = 32 // ...but HaLoop hits its shuffle bug there (§5.10)
		}
		t.Run(e.Name()+"/wcc", func(t *testing.T) {
			res := mk().Run(sim.NewSize(machines), f.Dataset, engine.NewWCC(), engine.Options{})
			if res.Status != sim.OK {
				t.Fatalf("status %v (%v)", res.Status, res.Err)
			}
			VerifyWCC(t, f, res)
		})
		t.Run(e.Name()+"/sssp", func(t *testing.T) {
			res := mk().Run(sim.NewSize(machines), f.Dataset, engine.NewSSSP(f.Dataset.Source), engine.Options{})
			if res.Status != sim.OK {
				t.Fatalf("status %v (%v)", res.Status, res.Err)
			}
			VerifySSSP(t, f, res)
		})
		t.Run(e.Name()+"/khop", func(t *testing.T) {
			res := mk().Run(sim.NewSize(machines), f.Dataset, engine.NewKHop(f.Dataset.Source), engine.Options{})
			if res.Status != sim.OK {
				t.Fatalf("status %v (%v)", res.Status, res.Err)
			}
			VerifyKHop(t, f, res, 3)
		})
		t.Run(e.Name()+"/triangle", func(t *testing.T) {
			res := mk().Run(sim.NewSize(machines), f.Dataset, engine.NewTriangleCount(), engine.Options{})
			if res.Status != sim.OK {
				t.Fatalf("status %v (%v)", res.Status, res.Err)
			}
			// Triangle counting runs on the undirected simple view, so
			// GraphLab's self-edge drop cannot perturb it: every engine
			// must match the oracle exactly.
			VerifyTriangles(t, f, res)
		})
		t.Run(e.Name()+"/lpa", func(t *testing.T) {
			w := engine.NewLPA()
			res := mk().Run(sim.NewSize(machines), f.Dataset, w, engine.Options{})
			if res.Status != sim.OK {
				t.Fatalf("status %v (%v)", res.Status, res.Err)
			}
			VerifyLPA(t, f, res, w)
		})
		t.Run(e.Name()+"/pagerank", func(t *testing.T) {
			w := engine.NewPageRank()
			res := mk().Run(sim.NewSize(machines), f.Dataset, w, engine.Options{})
			if res.Status != sim.OK {
				t.Fatalf("status %v (%v)", res.Status, res.Err)
			}
			// GraphLab drops self-edges (§3.1.1); Blogel-B's two-step
			// algorithm converges along a different path (§3.1.2).
			switch e.Name() {
			case "graphlab":
				VerifyPageRank(t, clean, res, w, 1e-9)
			case "blogel-b":
				VerifyPageRankRelative(t, f, res, w, 0.1)
			default:
				VerifyPageRank(t, f, res, w, 1e-9)
			}
		})
	}
}

// TestRankSumInvariant: without dangling redistribution, the PageRank
// vector of every engine must satisfy sum(r) = n·δ + (1−δ)·Σ_{v:out>0}
// contributions — bounded by [n·δ, n]. A cheap cross-engine invariant
// on top of the exact oracle comparison.
func TestRankSumInvariant(t *testing.T) {
	f := Prepare(t, datasets.Twitter, 600_000)
	n := float64(f.Graph.NumVertices())
	for _, e := range allEngines() {
		if e.Name() == "blogel-b" {
			continue // two-step PageRank is approximate by design
		}
		res := e.Run(sim.NewSize(16), f.Dataset, engine.NewPageRank(), engine.Options{})
		if res.Status != sim.OK {
			t.Fatalf("%s: %v", e.Name(), res.Status)
		}
		sum := 0.0
		for _, r := range res.Ranks {
			sum += r
		}
		if sum < 0.15*n-1e-6 || sum > 2*n {
			t.Errorf("%s: rank sum %v outside [%v, %v]", e.Name(), sum, 0.15*n, 2*n)
		}
	}
}

// TestTimeoutInjection: with an artificially tiny timeout every engine
// aborts with TO rather than hanging or panicking.
func TestTimeoutInjection(t *testing.T) {
	f := Prepare(t, datasets.Twitter, 600_000)
	for _, e := range allEngines() {
		cfg := sim.NewConfig(16)
		cfg.Timeout = 1 // one simulated second
		res := e.Run(sim.New(cfg), f.Dataset, engine.NewPageRank(), engine.Options{})
		if res.Status != sim.TO {
			t.Errorf("%s: status %v, want TO under a 1s budget", e.Name(), res.Status)
		}
	}
}

// TestMemoryStarvationInjection: with one-byte machines every in-memory
// engine OOMs cleanly; the disk-based ones (Hadoop, HaLoop, Vertica)
// still fail because even their fixed buffers exceed the budget.
func TestMemoryStarvationInjection(t *testing.T) {
	f := Prepare(t, datasets.Twitter, 600_000)
	for _, e := range allEngines() {
		cfg := sim.NewConfig(16)
		cfg.MemoryBytes = 1
		res := e.Run(sim.New(cfg), f.Dataset, engine.NewKHop(f.Dataset.Source), engine.Options{})
		if res.Status != sim.OOM {
			t.Errorf("%s: status %v, want OOM with 1-byte machines", e.Name(), res.Status)
		}
	}
}

// TestDeterminism: running the same experiment twice produces identical
// modeled times and outputs.
func TestDeterminism(t *testing.T) {
	f := Prepare(t, datasets.Twitter, 600_000)
	for _, mk := range []func() engine.Engine{
		func() engine.Engine { return pregel.New() },
		func() engine.Engine { return graphx.New() },
	} {
		a := mk().Run(sim.NewSize(16), f.Dataset, engine.NewPageRank(), engine.Options{})
		b := mk().Run(sim.NewSize(16), f.Dataset, engine.NewPageRank(), engine.Options{})
		if a.Exec != b.Exec || a.NetBytes != b.NetBytes || a.Iterations != b.Iterations {
			t.Errorf("%s: nondeterministic: %v/%v vs %v/%v",
				a.System, a.Exec, a.NetBytes, b.Exec, b.NetBytes)
		}
		for v := range a.Ranks {
			if math.Abs(a.Ranks[v]-b.Ranks[v]) > 0 {
				t.Errorf("%s: ranks differ at %d", a.System, v)
				break
			}
		}
	}
}
