//go:build race

package par

// RaceEnabled reports whether the binary was built with the race
// detector. Its instrumentation changes allocation behaviour, so the
// allocation-budget regression tests skip when it is on.
const RaceEnabled = true
