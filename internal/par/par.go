// Package par is the shared parallel-execution layer: a bounded worker
// pool, contiguous vertex-range sharding, and order-preserving map
// helpers. The runtimes (bsp, gas, blogel) shard their hot per-vertex
// loops over a Plan and merge per-shard accumulators in shard order, so
// a run's outputs and modeled costs are bit-identical for every worker
// count — the property internal/enginetest's determinism tests lock in.
// The harness uses the same pool to run independent experiments of a
// grid concurrently (each run owns a private sim.Cluster, so the matrix
// is embarrassingly parallel).
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool runs tasks on a fixed number of workers. The zero value is not
// usable; construct with New.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; values <= 0 mean
// runtime.GOMAXPROCS(0). A one-worker pool runs everything inline on
// the calling goroutine — the sequential execution mode.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// WorkerPanic carries a panic out of a pool goroutine to the caller of
// ForEach, preserving the worker's stack trace.
type WorkerPanic struct {
	Value any    // the value originally passed to panic
	Stack []byte // the panicking worker's stack
}

func (wp *WorkerPanic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", wp.Value, wp.Stack)
}

// ForEach runs fn(i) for every i in [0, n), distributing indices over
// the pool's workers. It returns after all calls complete. A panic in
// fn is re-raised on the calling goroutine as a *WorkerPanic (inline
// single-worker execution panics with the original value). Remaining
// tasks still run after a panic, so partial side effects are bounded
// by n either way.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[WorkerPanic]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &WorkerPanic{Value: r, Stack: debug.Stack()})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if wp := panicked.Load(); wp != nil {
		panic(wp)
	}
}

// Shard is one contiguous index range [Lo, Hi) of a Plan.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Len returns the number of indices in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Plan splits [0, n) into k contiguous shards whose sizes differ by at
// most one. Shards are never empty: k is capped at n.
type Plan struct {
	n, k      int
	base, rem int // first rem shards have base+1 elements, the rest base
}

// PlanShards builds a Plan over n indices with (at most) k shards.
// k <= 0 means one shard; n == 0 yields an empty plan.
func PlanShards(n, k int) Plan {
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	pl := Plan{n: n, k: k}
	if k > 0 {
		pl.base = n / k
		pl.rem = n % k
	}
	return pl
}

// Count returns the number of shards.
func (pl Plan) Count() int { return pl.k }

// Shard returns the i-th shard.
func (pl Plan) Shard(i int) Shard {
	lo := i * pl.base
	if i < pl.rem {
		lo += i
	} else {
		lo += pl.rem
	}
	hi := lo + pl.base
	if i < pl.rem {
		hi++
	}
	return Shard{Index: i, Lo: lo, Hi: hi}
}

// ShardOf returns the index of the shard containing v.
func (pl Plan) ShardOf(v int) int {
	wide := pl.rem * (pl.base + 1)
	if v < wide {
		return v / (pl.base + 1)
	}
	return pl.rem + (v-wide)/pl.base
}

// ForEachShard splits [0, n) into one shard per pool worker and runs
// fn on each shard concurrently.
func (p *Pool) ForEachShard(n int, fn func(s Shard)) {
	pl := PlanShards(n, p.workers)
	p.ForEach(pl.Count(), func(i int) { fn(pl.Shard(i)) })
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the
// results in index order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapShards splits [0, n) into one shard per pool worker, runs fn on
// each shard concurrently, and returns the per-shard results in shard
// order — the deterministic-merge building block: callers fold the
// returned slice left to right, which reproduces the sequential
// accumulation order regardless of worker count.
func MapShards[T any](p *Pool, n int, fn func(s Shard) T) []T {
	pl := PlanShards(n, p.workers)
	return MapPlan(p, pl, fn)
}

// MapPlan is MapShards over an explicit Plan, for callers that need the
// same plan for sharding and for routing (e.g. bsp's per-destination
// message buckets).
func MapPlan[T any](p *Pool, pl Plan, fn func(s Shard) T) []T {
	out := make([]T, pl.Count())
	p.ForEach(pl.Count(), func(i int) { out[i] = fn(pl.Shard(i)) })
	return out
}

// Grow returns s resized to length n, reusing the existing backing
// array when it is large enough and allocating a fresh one otherwise.
// Element contents are unspecified; callers overwrite every slot. It is
// the arena building block of the zero-allocation message plane: hot
// loops keep a buffer across rounds and Grow it to the round's size, so
// steady-state rounds allocate nothing.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	// Over-allocate by 25% so a sequence of slowly growing rounds
	// settles instead of reallocating every time.
	return make([]T, n, n+n/4)
}
