// Package par is the shared parallel-execution layer: a persistent
// worker runtime, contiguous vertex-range sharding (uniform or
// weight-balanced), and order-preserving map helpers. The runtimes
// (bsp, gas, blogel) shard their hot per-vertex loops over a Plan and
// merge per-shard accumulators in shard order, so a run's outputs and
// modeled costs are bit-identical for every worker count — the property
// internal/enginetest's determinism tests lock in. The harness uses the
// same pool to run independent experiments of a grid concurrently (each
// run owns a private sim.Cluster, so the matrix is embarrassingly
// parallel).
//
// Pools are persistent: New launches its helper goroutines once and
// every subsequent ForEach dispatch reuses them, so a steady-state
// dispatch performs zero allocations — no goroutine spawns, no
// WaitGroup, no closure boxing. Callers that dispatch in a hot loop
// should hoist the loop body into a closure built once (assigning it to
// the pool's job slot does not allocate; creating the closure does).
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool runs tasks on a persistent worker runtime. The zero value is not
// usable; construct with New.
//
// Workers() is the pool's *shard granularity* — the number the engines
// size their Plans by, so modeled executions are identical wherever the
// pool runs. The number of OS-level helper goroutines is capped at
// GOMAXPROCS: requesting 8 shards on a 2-core box still executes the
// 8-shard plan (bit-identically), just on 2 goroutines stealing shard
// tickets.
type Pool struct {
	k  int
	rt *poolRuntime // nil when the pool executes inline (parallelism 1)
}

// poolRuntime is the state shared with the helper goroutines. It is
// split from Pool so that parked helpers do not keep the Pool object
// reachable: when a caller abandons a pool without Close, the Pool's
// finalizer still runs and shuts the helpers down.
type poolRuntime struct {
	mu     sync.Mutex      // serializes dispatches; ForEach is not reentrant
	wake   []chan struct{} // one buffered token channel per helper
	idle   chan struct{}   // signaled by the last helper to finish a job
	closed bool

	// The reusable job slot: rebuilt in place by every dispatch, so a
	// steady-state ForEach allocates nothing.
	fn       func(int)
	n        int64
	next     atomic.Int64
	pending  atomic.Int64
	stop     atomic.Bool
	panicked atomic.Pointer[WorkerPanic]
}

// New returns a pool with the given shard granularity; values <= 0 mean
// runtime.GOMAXPROCS(0). The pool launches min(k, GOMAXPROCS)-1
// persistent helper goroutines once — the dispatching goroutine itself
// executes tickets too, so a one-worker (or one-CPU) pool runs
// everything inline on the caller with no goroutines at all: the
// sequential execution mode.
//
// Helpers park between dispatches and live until Close. An abandoned
// pool is shut down by a finalizer, but owners with a clear lifecycle
// (an engine run, a Runner) should Close explicitly.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{k: workers}
	helpers := workers
	if max := runtime.GOMAXPROCS(0); helpers > max {
		helpers = max
	}
	helpers-- // the caller is worker zero
	if helpers > 0 {
		rt := &poolRuntime{
			wake: make([]chan struct{}, helpers),
			idle: make(chan struct{}, 1),
		}
		for w := range rt.wake {
			rt.wake[w] = make(chan struct{}, 1)
			go rt.helper(w)
		}
		p.rt = rt
		runtime.SetFinalizer(p, func(p *Pool) { p.rt.close() })
	}
	return p
}

// Workers returns the pool's shard granularity (the worker count it was
// constructed with), the number MapShards and ForEachShard split work
// into.
func (p *Pool) Workers() int { return p.k }

// Parallelism returns how many goroutines actually execute a dispatch:
// min(Workers, GOMAXPROCS at construction), counting the caller.
func (p *Pool) Parallelism() int {
	if p.rt == nil {
		return 1
	}
	return len(p.rt.wake) + 1
}

// Close shuts the helper goroutines down. The pool must not be used
// afterwards. Close is idempotent and safe to call while no dispatch is
// in flight.
func (p *Pool) Close() {
	if p.rt != nil {
		runtime.SetFinalizer(p, nil)
		p.rt.close()
	}
}

func (rt *poolRuntime) close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	for _, ch := range rt.wake {
		close(ch)
	}
}

// helper is one parked worker goroutine: it wakes on its token channel,
// drains tickets of the current job, and parks again. The last helper
// to finish signals the dispatcher.
func (rt *poolRuntime) helper(w int) {
	for range rt.wake[w] {
		rt.runTickets()
		if rt.pending.Add(-1) == 0 {
			rt.idle <- struct{}{}
		}
	}
}

// runTickets executes job tickets until the job is exhausted or a panic
// set the stop flag. Each ticket runs under its own recover, so a panic
// in one task stops the drain promptly: no task observed to start after
// the flag is set.
func (rt *poolRuntime) runTickets() {
	for {
		if rt.stop.Load() {
			return
		}
		i := rt.next.Add(1) - 1
		if i >= rt.n {
			return
		}
		rt.runOne(int(i))
	}
}

func (rt *poolRuntime) runOne(i int) {
	defer func() {
		if r := recover(); r != nil {
			rt.panicked.CompareAndSwap(nil, &WorkerPanic{Value: r, Stack: debug.Stack()})
			rt.stop.Store(true)
		}
	}()
	rt.fn(i)
}

// WorkerPanic carries a panic out of a pool worker to the caller of
// ForEach, preserving the panicking worker's stack trace.
type WorkerPanic struct {
	Value any    // the value originally passed to panic
	Stack []byte // the panicking worker's stack
}

func (wp *WorkerPanic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", wp.Value, wp.Stack)
}

// ForEach runs fn(i) for every i in [0, n), distributing indices over
// the pool's workers, and returns after all calls complete. A
// steady-state call allocates nothing: the job is written into the
// pool's reusable slot and the persistent helpers are woken by one
// channel token each.
//
// A panic in fn is re-raised on the calling goroutine as a *WorkerPanic
// (inline execution — one-worker pools, single-task jobs — panics with
// the original value). After a panic, workers stop claiming new tasks
// promptly: tasks already in flight on other workers finish, but no
// task starts once the panic has been recorded, so partial side effects
// are bounded by parallelism, not by n.
//
// ForEach must not be called from inside a task running on the same
// pool.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	rt := p.rt
	if rt == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.fn = fn
	rt.n = int64(n)
	rt.next.Store(0)
	rt.stop.Store(false)
	rt.panicked.Store(nil)
	helpers := len(rt.wake)
	if helpers > n-1 {
		helpers = n - 1
	}
	rt.pending.Store(int64(helpers))
	for w := 0; w < helpers; w++ {
		rt.wake[w] <- struct{}{}
	}
	rt.runTickets()
	if helpers > 0 {
		<-rt.idle
	}
	rt.fn = nil
	if wp := rt.panicked.Load(); wp != nil {
		panic(wp)
	}
}

// Use returns the external pool when it is non-nil, otherwise a fresh
// pool with the given shard granularity, plus a release func that
// closes only an owned pool. It is the borrow point for serve mode:
// engines run their shard loops on a caller-provided persistent pool
// (kept warm across requests) instead of spawning and closing a private
// one per run, and the shared `pool, release := par.Use(...); defer
// release()` idiom keeps both lifecycles in one line. A borrowed pool
// must not be used by two concurrent runs: ForEach serializes
// dispatches, but interleaving two runs' phases would destroy the
// warm-scratch ownership the engines rely on.
func Use(external *Pool, shards int) (*Pool, func()) {
	if external != nil {
		return external, func() {}
	}
	p := New(shards)
	return p, p.Close
}

// Shard is one contiguous index range [Lo, Hi) of a Plan.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Len returns the number of indices in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Plan splits [0, n) into k contiguous shards: uniformly (PlanShards,
// sizes differ by at most one) or balanced by per-index weights
// (PlanWeighted/PlanPrefix, so power-law skew doesn't serialize behind
// one heavy shard). Shards are always contiguous, disjoint, and cover
// [0, n); weighted shards may be empty when the weight mass is
// concentrated.
type Plan struct {
	n, k      int
	base, rem int     // uniform: first rem shards have base+1 elements
	bounds    []int32 // weighted: bounds[i] is the start of shard i; len k+1
}

// PlanShards builds a uniform Plan over n indices with (at most) k
// shards. k <= 0 means one shard; n == 0 yields an empty plan.
func PlanShards(n, k int) Plan {
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	pl := Plan{n: n, k: k}
	if k > 0 {
		pl.base = n / k
		pl.rem = n % k
	}
	return pl
}

// PlanWeighted builds a Plan over len(weights) indices with (at most) k
// shards whose weight sums are balanced: every shard's weight is at
// most total/k + max(weight). Cut points are drawn deterministically
// from the weight prefix sum, so the plan is a pure function of
// (weights, k). Uniform weights degenerate to exactly PlanShards.
func PlanWeighted(k int, weights []int64) Plan {
	n := len(weights)
	uniform := true
	for i := 1; i < n; i++ {
		if weights[i] != weights[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return PlanShards(n, k)
	}
	prefix := make([]int64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	return PlanPrefix(prefix, k)
}

// PlanPrefix is PlanWeighted for callers that already hold the weight
// prefix sum (len n+1, prefix[i+1]-prefix[i] = weight of index i) —
// e.g. CSR offset arrays, which are exactly the prefix-summed degrees.
// The prefix must be non-decreasing. The slice is only read during the
// call.
func PlanPrefix(prefix []int64, k int) Plan {
	n := len(prefix) - 1
	if n < 0 {
		n = 0
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		return PlanShards(n, k)
	}
	total := prefix[n] - prefix[0]
	bounds := make([]int32, k+1)
	bounds[k] = int32(n)
	j := 0
	for i := 1; i < k; i++ {
		// First index whose prefix reaches the i-th weight quantile;
		// targets are non-decreasing, so j only moves forward.
		target := prefix[0] + total*int64(i)/int64(k)
		for j < n && prefix[j] < target {
			j++
		}
		bounds[i] = int32(j)
	}
	return Plan{n: n, k: k, bounds: bounds}
}

// Count returns the number of shards.
func (pl Plan) Count() int { return pl.k }

// Weighted reports whether the plan was built from weights.
func (pl Plan) Weighted() bool { return pl.bounds != nil }

// Shard returns the i-th shard.
func (pl Plan) Shard(i int) Shard {
	if pl.bounds != nil {
		return Shard{Index: i, Lo: int(pl.bounds[i]), Hi: int(pl.bounds[i+1])}
	}
	lo := i * pl.base
	if i < pl.rem {
		lo += i
	} else {
		lo += pl.rem
	}
	hi := lo + pl.base
	if i < pl.rem {
		hi++
	}
	return Shard{Index: i, Lo: lo, Hi: hi}
}

// ShardOf returns the index of the shard containing v. Hot send loops
// should prefer a precomputed index-to-shard lookup array (see
// FillShardOf): it is one load instead of a division or binary search.
func (pl Plan) ShardOf(v int) int {
	if pl.bounds != nil {
		lo, hi := 0, pl.k-1
		for lo < hi {
			mid := (lo + hi) / 2
			if int(pl.bounds[mid+1]) <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	wide := pl.rem * (pl.base + 1)
	if v < wide {
		return v / (pl.base + 1)
	}
	return pl.rem + (v-wide)/pl.base
}

// FillShardOf writes the shard index of every v in [0, n) into out
// (which must have length pl.n) and returns it. Runtimes that route per
// message build this once per run and replace the per-send ShardOf
// arithmetic with a single array load.
func (pl Plan) FillShardOf(out []int32) []int32 {
	for i := 0; i < pl.k; i++ {
		s := pl.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			out[v] = int32(i)
		}
	}
	return out
}

// ForEachShard splits [0, n) into one shard per pool worker and runs
// fn on each shard concurrently.
func (p *Pool) ForEachShard(n int, fn func(s Shard)) {
	pl := PlanShards(n, p.k)
	p.ForEach(pl.Count(), func(i int) { fn(pl.Shard(i)) })
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the
// results in index order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapShards splits [0, n) into one shard per pool worker, runs fn on
// each shard concurrently, and returns the per-shard results in shard
// order — the deterministic-merge building block: callers fold the
// returned slice left to right, which reproduces the sequential
// accumulation order regardless of worker count.
func MapShards[T any](p *Pool, n int, fn func(s Shard) T) []T {
	pl := PlanShards(n, p.k)
	return MapPlan(p, pl, fn)
}

// MapPlan is MapShards over an explicit Plan, for callers that need the
// same plan for sharding and for routing (e.g. bsp's per-destination
// message buckets) or a weight-balanced plan.
func MapPlan[T any](p *Pool, pl Plan, fn func(s Shard) T) []T {
	out := make([]T, pl.Count())
	p.ForEach(pl.Count(), func(i int) { out[i] = fn(pl.Shard(i)) })
	return out
}

// WorkerScratch is a slab of per-shard scratch state, one slot per
// worker (shard) of the pool it was built for. Engines keep one across
// supersteps so each shard's tallies, buffers, and send buckets live in
// warm memory: slot i is written only by the task running shard i, and
// the coordinating goroutine reads all slots between dispatches — the
// same ownership discipline as every other shard-merged structure.
type WorkerScratch[T any] struct{ slots []T }

// ScratchFor returns a scratch slab sized to the pool's shard count.
func ScratchFor[T any](p *Pool) *WorkerScratch[T] {
	return &WorkerScratch[T]{slots: make([]T, p.k)}
}

// At returns a pointer to slot i.
func (ws *WorkerScratch[T]) At(i int) *T { return &ws.slots[i] }

// Slots returns the backing slice, for shard-order merges.
func (ws *WorkerScratch[T]) Slots() []T { return ws.slots }

// Grow returns s resized to length n, reusing the existing backing
// array when it is large enough and allocating a fresh one otherwise.
// Element contents are unspecified; callers overwrite every slot. It is
// the arena building block of the zero-allocation message plane: hot
// loops keep a buffer across rounds and Grow it to the round's size, so
// steady-state rounds allocate nothing.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	// Over-allocate by 25% so a sequence of slowly growing rounds
	// settles instead of reallocating every time.
	return make([]T, n, n+n/4)
}
