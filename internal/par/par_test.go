package par

import (
	"sync/atomic"
	"testing"
)

// workerCounts covers the boundary shapes the runtimes hit: sequential,
// fewer workers than items, n == workers, n < workers, and n not
// divisible by workers.
var workerCounts = []int{1, 2, 3, 7, 8, 64}

func TestPlanShardsCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 8, 63, 64, 1000} {
		for _, k := range workerCounts {
			pl := PlanShards(n, k)
			if n == 0 && pl.Count() != 0 {
				t.Fatalf("PlanShards(0, %d).Count() = %d, want 0", k, pl.Count())
			}
			want := k
			if want > n {
				want = n
			}
			if pl.Count() != want {
				t.Fatalf("PlanShards(%d, %d).Count() = %d, want %d", n, k, pl.Count(), want)
			}
			next := 0
			for i := 0; i < pl.Count(); i++ {
				s := pl.Shard(i)
				if s.Lo != next {
					t.Fatalf("PlanShards(%d, %d): shard %d starts at %d, want %d", n, k, i, s.Lo, next)
				}
				if s.Len() < 1 {
					t.Fatalf("PlanShards(%d, %d): shard %d is empty", n, k, i)
				}
				for v := s.Lo; v < s.Hi; v++ {
					if got := pl.ShardOf(v); got != i {
						t.Fatalf("PlanShards(%d, %d).ShardOf(%d) = %d, want %d", n, k, v, got, i)
					}
				}
				next = s.Hi
			}
			if next != n {
				t.Fatalf("PlanShards(%d, %d): shards end at %d, want %d", n, k, next, n)
			}
		}
	}
}

func TestPlanShardsBalance(t *testing.T) {
	pl := PlanShards(10, 4)
	sizes := []int{}
	for i := 0; i < pl.Count(); i++ {
		sizes = append(sizes, pl.Shard(i).Len())
	}
	for _, s := range sizes {
		if s < 2 || s > 3 {
			t.Fatalf("PlanShards(10, 4) sizes %v: want each in [2, 3]", sizes)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		for _, w := range workerCounts {
			counts := make([]int32, n)
			New(w).ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) has no workers")
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("New(3).Workers() = %d", got)
	}
}

// TestMergeOrderDeterminism is the property every runtime relies on:
// per-shard results folded in shard order reproduce the sequential
// order exactly, for any worker count. Run under -race this also
// checks the shard writes never overlap.
func TestMergeOrderDeterminism(t *testing.T) {
	const n = 10_000
	want := make([]int, n)
	for i := range want {
		want[i] = i * 31
	}
	for _, w := range workerCounts {
		chunks := MapShards(New(w), n, func(s Shard) []int {
			out := make([]int, 0, s.Len())
			for v := s.Lo; v < s.Hi; v++ {
				out = append(out, want[v])
			}
			return out
		})
		var got []int
		for _, c := range chunks {
			got = append(got, c...)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: merged %d items, want %d", w, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: merged[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(New(8), 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				switch wp := r.(type) {
				case *WorkerPanic:
					if wp.Value != "boom" {
						t.Fatalf("workers=%d: panic value %v, want boom", w, wp.Value)
					}
					if len(wp.Stack) == 0 {
						t.Fatalf("workers=%d: worker panic lost its stack", w)
					}
				case string:
					if wp != "boom" {
						t.Fatalf("workers=%d: panic value %v, want boom", w, wp)
					}
				default:
					t.Fatalf("workers=%d: unexpected panic value %T %v", w, r, r)
				}
			}()
			New(w).ForEach(100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
		}()
	}
}

func TestGrowReusesCapacity(t *testing.T) {
	s := make([]float64, 0, 100)
	base := &s[:1][0]
	s = Grow(s, 80)
	if len(s) != 80 || &s[0] != base {
		t.Fatalf("Grow(80) reallocated despite cap 100 (len %d)", len(s))
	}
	s = Grow(s, 40)
	if len(s) != 40 || &s[0] != base {
		t.Fatalf("Grow(40) reallocated despite cap 100 (len %d)", len(s))
	}
	s = Grow(s, 200)
	if len(s) != 200 {
		t.Fatalf("Grow(200) len %d", len(s))
	}
	if cap(s) < 200 {
		t.Fatalf("Grow(200) cap %d", cap(s))
	}
}
