package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// withWorkers raises GOMAXPROCS for the duration of a test so pools
// spawn real helper goroutines even on a single-CPU machine — the
// persistent dispatch path would otherwise run inline everywhere.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// workerCounts covers the boundary shapes the runtimes hit: sequential,
// fewer workers than items, n == workers, n < workers, and n not
// divisible by workers.
var workerCounts = []int{1, 2, 3, 7, 8, 64}

func TestPlanShardsCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 8, 63, 64, 1000} {
		for _, k := range workerCounts {
			pl := PlanShards(n, k)
			if n == 0 && pl.Count() != 0 {
				t.Fatalf("PlanShards(0, %d).Count() = %d, want 0", k, pl.Count())
			}
			want := k
			if want > n {
				want = n
			}
			if pl.Count() != want {
				t.Fatalf("PlanShards(%d, %d).Count() = %d, want %d", n, k, pl.Count(), want)
			}
			next := 0
			for i := 0; i < pl.Count(); i++ {
				s := pl.Shard(i)
				if s.Lo != next {
					t.Fatalf("PlanShards(%d, %d): shard %d starts at %d, want %d", n, k, i, s.Lo, next)
				}
				if s.Len() < 1 {
					t.Fatalf("PlanShards(%d, %d): shard %d is empty", n, k, i)
				}
				for v := s.Lo; v < s.Hi; v++ {
					if got := pl.ShardOf(v); got != i {
						t.Fatalf("PlanShards(%d, %d).ShardOf(%d) = %d, want %d", n, k, v, got, i)
					}
				}
				next = s.Hi
			}
			if next != n {
				t.Fatalf("PlanShards(%d, %d): shards end at %d, want %d", n, k, next, n)
			}
		}
	}
}

func TestPlanShardsBalance(t *testing.T) {
	pl := PlanShards(10, 4)
	sizes := []int{}
	for i := 0; i < pl.Count(); i++ {
		sizes = append(sizes, pl.Shard(i).Len())
	}
	for _, s := range sizes {
		if s < 2 || s > 3 {
			t.Fatalf("PlanShards(10, 4) sizes %v: want each in [2, 3]", sizes)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		for _, w := range workerCounts {
			counts := make([]int32, n)
			New(w).ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) has no workers")
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("New(3).Workers() = %d", got)
	}
}

// TestMergeOrderDeterminism is the property every runtime relies on:
// per-shard results folded in shard order reproduce the sequential
// order exactly, for any worker count. Run under -race this also
// checks the shard writes never overlap.
func TestMergeOrderDeterminism(t *testing.T) {
	const n = 10_000
	want := make([]int, n)
	for i := range want {
		want[i] = i * 31
	}
	for _, w := range workerCounts {
		chunks := MapShards(New(w), n, func(s Shard) []int {
			out := make([]int, 0, s.Len())
			for v := s.Lo; v < s.Hi; v++ {
				out = append(out, want[v])
			}
			return out
		})
		var got []int
		for _, c := range chunks {
			got = append(got, c...)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: merged %d items, want %d", w, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: merged[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(New(8), 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				switch wp := r.(type) {
				case *WorkerPanic:
					if wp.Value != "boom" {
						t.Fatalf("workers=%d: panic value %v, want boom", w, wp.Value)
					}
					if len(wp.Stack) == 0 {
						t.Fatalf("workers=%d: worker panic lost its stack", w)
					}
				case string:
					if wp != "boom" {
						t.Fatalf("workers=%d: panic value %v, want boom", w, wp)
					}
				default:
					t.Fatalf("workers=%d: unexpected panic value %T %v", w, r, r)
				}
			}()
			New(w).ForEach(100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
		}()
	}
}

// TestPanicStopsDraining locks in the prompt-stop contract: once a task
// panics, no new task may start — only tasks already in flight on other
// workers finish, so partial side effects are bounded by parallelism,
// not by n.
func TestPanicStopsDraining(t *testing.T) {
	withWorkers(t, 4)
	p := New(4)
	defer p.Close()
	if p.Parallelism() < 2 {
		t.Fatalf("Parallelism() = %d, want >= 2 with GOMAXPROCS raised", p.Parallelism())
	}
	const n = 1000
	var ran atomic.Int32
	func() {
		defer func() {
			wp, ok := recover().(*WorkerPanic)
			if !ok {
				t.Fatalf("expected *WorkerPanic, got %v", wp)
			}
			if wp.Value != "boom" {
				t.Fatalf("panic value %v, want boom", wp.Value)
			}
		}()
		p.ForEach(n, func(i int) {
			if i == 0 {
				panic("boom") // ticket 0 is claimed first, so this fires immediately
			}
			ran.Add(1)
			time.Sleep(time.Millisecond)
		})
	}()
	// Each worker may finish the one task it had in flight when the
	// stop flag was set, plus scheduling slack; without the drain-stop
	// nearly all n tasks would run.
	if got := ran.Load(); got > 50 {
		t.Fatalf("after a panic, %d of %d remaining tasks still ran; drain should stop promptly", got, n-1)
	}
}

// TestForEachSteadyStateAllocs locks in the persistent runtime's core
// promise: dispatching a job onto warm workers allocates nothing — no
// goroutine spawns, no WaitGroup, no closure boxing (the closure itself
// is hoisted by the caller, as the engines do).
func TestForEachSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	withWorkers(t, 4)
	p := New(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	p.ForEach(64, fn) // warm the runtime
	if allocs := testing.AllocsPerRun(100, func() { p.ForEach(64, fn) }); allocs > 0 {
		t.Errorf("steady-state ForEach allocates %.1f objects, want 0", allocs)
	}
}

// TestCloseStopsHelpers verifies the pool lifecycle: Close parks no
// goroutines behind and is idempotent.
func TestCloseStopsHelpers(t *testing.T) {
	withWorkers(t, 4)
	before := runtime.NumGoroutine()
	p := New(4)
	var total atomic.Int64
	p.ForEach(100, func(i int) { total.Add(1) })
	if total.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", total.Load())
	}
	p.Close()
	p.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("helpers still running after Close: %d goroutines, started with %d",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParallelismCappedByGOMAXPROCS(t *testing.T) {
	withWorkers(t, 2)
	if got := New(8).Parallelism(); got != 2 {
		t.Fatalf("New(8).Parallelism() = %d with GOMAXPROCS=2, want 2", got)
	}
	if got := New(8).Workers(); got != 8 {
		t.Fatalf("New(8).Workers() = %d, want 8 (shard granularity is preserved)", got)
	}
	if got := New(1).Parallelism(); got != 1 {
		t.Fatalf("New(1).Parallelism() = %d, want 1", got)
	}
}

// planWeights builds a skewed weight vector: mostly units with
// occasional heavy entries, the power-law shape the weighted plans
// exist for.
func planWeights(rng *rand.Rand, n int) (weights []int64, total, maxw int64) {
	weights = make([]int64, n)
	for i := range weights {
		w := int64(1)
		if rng.Intn(4) == 0 {
			w += int64(rng.Intn(1000))
		}
		weights[i] = w
		total += w
		if w > maxw {
			maxw = w
		}
	}
	return weights, total, maxw
}

// TestPlanWeightedProperties checks the weighted-plan contract on
// random skewed inputs: shards are contiguous, disjoint, and cover
// [0, n); every shard's weight is at most ceil(total/k) + max(weight);
// ShardOf agrees with the shard ranges; and the plan is a pure function
// of (weights, k).
func TestPlanWeightedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(2000)
		k := workerCounts[rng.Intn(len(workerCounts))]
		weights, total, maxw := planWeights(rng, n)
		pl := PlanWeighted(k, weights)

		wantCount := k
		if wantCount > n {
			wantCount = n
		}
		if pl.Count() != wantCount {
			t.Fatalf("n=%d k=%d: Count() = %d, want %d", n, k, pl.Count(), wantCount)
		}
		next := 0
		kk := pl.Count()
		for i := 0; i < kk; i++ {
			s := pl.Shard(i)
			if s.Lo != next || s.Hi < s.Lo {
				t.Fatalf("n=%d k=%d: shard %d = [%d,%d), want contiguous from %d", n, k, i, s.Lo, s.Hi, next)
			}
			next = s.Hi
			var w int64
			for v := s.Lo; v < s.Hi; v++ {
				w += weights[v]
				if got := pl.ShardOf(v); got != i {
					t.Fatalf("n=%d k=%d: ShardOf(%d) = %d, want %d", n, k, v, got, i)
				}
			}
			if limit := (total+int64(kk)-1)/int64(kk) + maxw; w > limit {
				t.Fatalf("n=%d k=%d: shard %d weight %d exceeds total/k + max(weight) = %d", n, k, i, w, limit)
			}
		}
		if next != n {
			t.Fatalf("n=%d k=%d: shards end at %d, want %d", n, k, next, n)
		}

		again := PlanWeighted(k, weights)
		for i := 0; i < kk; i++ {
			if pl.Shard(i) != again.Shard(i) {
				t.Fatalf("n=%d k=%d: plan not deterministic: shard %d %v vs %v", n, k, i, pl.Shard(i), again.Shard(i))
			}
		}
	}
}

// TestPlanWeightedUniformDegeneratesToPlanShards: uniform weights carry
// no balance information, so the weighted plan must equal the uniform
// plan exactly — same shard boundaries, same ShardOf.
func TestPlanWeightedUniformDegeneratesToPlanShards(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, k := range workerCounts {
			for _, unit := range []int64{1, 5} {
				weights := make([]int64, n)
				for i := range weights {
					weights[i] = unit
				}
				got, want := PlanWeighted(k, weights), PlanShards(n, k)
				if got.Count() != want.Count() {
					t.Fatalf("n=%d k=%d unit=%d: Count %d, want %d", n, k, unit, got.Count(), want.Count())
				}
				for i := 0; i < want.Count(); i++ {
					if got.Shard(i) != want.Shard(i) {
						t.Fatalf("n=%d k=%d unit=%d: shard %d = %v, want %v", n, k, unit, i, got.Shard(i), want.Shard(i))
					}
				}
			}
		}
	}
}

// TestFillShardOf checks the precomputed router agrees with ShardOf for
// both uniform and weighted plans.
func TestFillShardOf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		k := workerCounts[rng.Intn(len(workerCounts))]
		weights, _, _ := planWeights(rng, n)
		for _, pl := range []Plan{PlanShards(n, k), PlanWeighted(k, weights)} {
			out := pl.FillShardOf(make([]int32, n))
			for v := 0; v < n; v++ {
				if int(out[v]) != pl.ShardOf(v) {
					t.Fatalf("n=%d k=%d weighted=%v: FillShardOf[%d] = %d, ShardOf = %d",
						n, k, pl.Weighted(), v, out[v], pl.ShardOf(v))
				}
			}
		}
	}
}

func TestWorkerScratch(t *testing.T) {
	p := New(4)
	defer p.Close()
	ws := ScratchFor[[]int](p)
	if len(ws.Slots()) != 4 {
		t.Fatalf("ScratchFor sized %d slots, want 4", len(ws.Slots()))
	}
	p.ForEach(4, func(i int) { *ws.At(i) = append(*ws.At(i), i) })
	p.ForEach(4, func(i int) { *ws.At(i) = append(*ws.At(i), i*10) })
	for i, s := range ws.Slots() {
		if len(s) != 2 || s[0] != i || s[1] != i*10 {
			t.Fatalf("slot %d = %v, want [%d %d] (retained across dispatches)", i, s, i, i*10)
		}
	}
}

func TestGrowReusesCapacity(t *testing.T) {
	s := make([]float64, 0, 100)
	base := &s[:1][0]
	s = Grow(s, 80)
	if len(s) != 80 || &s[0] != base {
		t.Fatalf("Grow(80) reallocated despite cap 100 (len %d)", len(s))
	}
	s = Grow(s, 40)
	if len(s) != 40 || &s[0] != base {
		t.Fatalf("Grow(40) reallocated despite cap 100 (len %d)", len(s))
	}
	s = Grow(s, 200)
	if len(s) != 200 {
		t.Fatalf("Grow(200) len %d", len(s))
	}
	if cap(s) < 200 {
		t.Fatalf("Grow(200) cap %d", cap(s))
	}
}
