package datasets

import (
	"log"
	"path/filepath"
	"strconv"

	"graphbench/internal/graph"
	"graphbench/internal/snapshot"
)

// Cache is a content-keyed snapshot store layered over Generate:
// datasets are persisted as binary CSR snapshots (internal/snapshot)
// under Dir, keyed by (name, scale, seed, snapshot format version), so
// later runs — and CI jobs restoring the directory — open the snapshot
// instead of regenerating. Generation is deterministic in the key, so
// a cache hit is bit-identical to a fresh generation; every miss,
// corruption, or version mismatch falls back to generating (and
// rewrites the entry), never to an error.
type Cache struct {
	Dir string

	// Lazy loads snapshot arenas demand-paged (snapshot.LoadLazy)
	// instead of prefaulted: the memory governor's soft-pressure tier
	// sets it so cold fixture regions never become resident. Loads stay
	// bit-identical — only residency timing changes.
	Lazy bool

	// Logf receives degradation warnings (an unwritable or full cache
	// directory). Nil means log.Printf.
	Logf func(format string, args ...any)
}

// NewCache returns a cache rooted at dir. The directory is created on
// first save.
func NewCache(dir string) *Cache { return &Cache{Dir: dir} }

// Path returns the cache file for the given generation key. The file
// name encodes every input that determines the graph's bytes plus the
// snapshot format version, so format bumps and parameter changes miss
// cleanly instead of loading stale data.
func (c *Cache) Path(name Name, opt Options) string {
	if opt.Scale <= 0 {
		opt.Scale = DefaultScale
	}
	return filepath.Join(c.Dir, string(name)+
		"_s"+strconv.FormatFloat(opt.Scale, 'g', -1, 64)+
		"_seed"+strconv.FormatInt(opt.Seed, 10)+
		"_v"+strconv.Itoa(snapshot.Version)+snapshot.Ext)
}

// Generate returns the named dataset, loading its cached snapshot when
// present and valid, otherwise generating it and writing the snapshot
// for the next run. Cache I/O failures degrade to plain generation.
//
// Validation covers every component of the generation key: name and
// scale from the graph itself, and the generation seed persisted in
// the snapshot header. The seed check matters because the graph's
// bytes don't otherwise encode it — a snapshot file renamed, or
// restored by CI under the wrong seed's cache key, would load silently
// with wrong data and poison every downstream "bit-identical to
// generation" guarantee.
func (c *Cache) Generate(name Name, opt Options) *graph.Graph {
	if opt.Scale <= 0 {
		opt.Scale = DefaultScale
	}
	path := c.Path(name, opt)
	load := snapshot.Load
	if c.Lazy {
		load = snapshot.LoadLazy
	}
	if g, seed, err := load(path); err == nil &&
		g.Name() == string(name) && g.ScaleFactor() == opt.Scale && seed == opt.Seed {
		return g
	}
	g := Generate(name, opt)
	// Best-effort save: a read-only or full cache directory must not
	// fail the run — it degrades to serving the in-memory graph and
	// regenerating next time. A mismatched entry is overwritten with
	// the correct one (heal-on-miss).
	if err := snapshot.Save(path, g, opt.Seed); err != nil {
		c.warnf("datasets: snapshot cache unwritable, serving %s from memory: %v", name, err)
	}
	return g
}

func (c *Cache) warnf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Catalog mirrors the package-level Catalog through the cache.
func (c *Cache) Catalog(scale float64, seed int64) map[Name]*graph.Graph {
	out := make(map[Name]*graph.Graph, len(AllNames()))
	for _, n := range AllNames() {
		out[n] = c.Generate(n, Options{Scale: scale, Seed: seed})
	}
	return out
}
