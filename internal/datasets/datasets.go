// Package datasets generates deterministic synthetic analogues of the
// four datasets used in the paper (Table 3): Twitter, World Road Network
// (WRN), UK200705, and ClueWeb.
//
// The real datasets are 0.7–42.5 billion edges and cannot be shipped or
// processed here, so each analogue preserves the properties the paper's
// findings depend on, at a configurable reduction Scale:
//
//   - relative sizes (ClueWeb ≈ 29× Twitter edges, UK ≈ 2.5× Twitter, …)
//   - vertex:edge ratio (WRN and ClueWeb are vertex-heavy — this drives
//     the MPI overflow in Blogel-B and WCC memory pressure)
//   - degree skew (power-law with Twitter's max degree the most extreme
//     relative to graph size; WRN bounded by 9)
//   - diameter (WRN's is orders of magnitude larger than the web/social
//     graphs — this drives iteration counts and the TO failure matrix)
//   - component structure (Twitter has a single giant component; the web
//     graphs have several)
//   - self-edges exist in the social/web graphs (GraphLab's limitation)
//
// A graph generated at Scale S carries ScaleFactor S: engines multiply
// per-vertex/edge resource charges by S so memory and time accounting
// reflect the paper-scale dataset while computation runs on the analogue.
package datasets

import (
	"fmt"
	"math/rand"

	"graphbench/internal/graph"
)

// Name identifies one of the paper's four datasets.
type Name string

// The four datasets of Table 3.
const (
	Twitter Name = "twitter"
	WRN     Name = "wrn"
	UK      Name = "uk200705"
	ClueWeb Name = "clueweb"
)

// AllNames lists the datasets in the paper's order.
func AllNames() []Name { return []Name{Twitter, WRN, UK, ClueWeb} }

// Known reports whether name is a registered dataset — the validation
// entry point for callers (servers, CLIs) that receive names from
// outside and must not hit SpecFor's panic.
func Known(name Name) bool {
	_, ok := specs[name]
	return ok
}

// Spec records the paper-scale characteristics of a dataset (Table 3,
// §5.9) plus generator parameters for its synthetic analogue.
type Spec struct {
	Name          Name
	PaperVertices int64   // real vertex count
	PaperEdges    int64   // real directed edge count
	PaperAvgDeg   float64 // Table 3
	PaperMaxDeg   int64   // Table 3
	PaperDiameter float64 // Table 3 (effective diameter for the power-law graphs)
	PaperAdjGB    float64 // on-disk size of the adjacency format, GB

	// TraversalDepth is the number of BSP iterations traversal
	// workloads (SSSP, WCC) need on the real dataset — the paper
	// reports 116 SSSP iterations for UK (Fig. 12) and O(48K) for WRN.
	// Down-scaled analogues necessarily have smaller diameters, so
	// engines dilate per-iteration charges by TraversalDepth divided by
	// the synthetic traversal depth (see engine.Dataset.DilationFor).
	TraversalDepth float64

	kind      kind
	skew      float64 // RMAT "a" parameter for power-law analogues
	locality  float64 // fraction of edges kept host-local (web graphs)
	selfLoop  float64 // fraction of self-edges
	connected bool    // force a single giant component
}

type kind int

const (
	kindPowerLaw kind = iota
	kindRoad
)

var specs = map[Name]Spec{
	Twitter: {
		Name: Twitter, PaperVertices: 41_652_230, PaperEdges: 1_460_000_000,
		PaperAvgDeg: 35, PaperMaxDeg: 2_900_000, PaperDiameter: 5.29, PaperAdjGB: 12.5,
		TraversalDepth: 16,
		kind:           kindPowerLaw, skew: 0.62, locality: 0, selfLoop: 0.001, connected: true,
	},
	WRN: {
		Name: WRN, PaperVertices: 682_857_142, PaperEdges: 717_000_000,
		PaperAvgDeg: 1.05, PaperMaxDeg: 9, PaperDiameter: 48_000, PaperAdjGB: 13.6,
		TraversalDepth: 48_000,
		kind:           kindRoad,
	},
	UK: {
		Name: UK, PaperVertices: 104_815_818, PaperEdges: 3_700_000_000,
		PaperAvgDeg: 35.3, PaperMaxDeg: 975_000, PaperDiameter: 22.78, PaperAdjGB: 31.9,
		TraversalDepth: 116, // Fig. 12: SSSP on UK takes 116 iterations
		kind:           kindPowerLaw, skew: 0.57, locality: 0.6, selfLoop: 0.0005,
	},
	ClueWeb: {
		Name: ClueWeb, PaperVertices: 978_408_098, PaperEdges: 42_500_000_000,
		PaperAvgDeg: 43.5, PaperMaxDeg: 75_000_000, PaperDiameter: 15.7, PaperAdjGB: 700,
		TraversalDepth: 40,
		kind:           kindPowerLaw, skew: 0.59, locality: 0.5, selfLoop: 0.0005,
	},
}

// SpecFor returns the Spec for name. It panics on an unknown name, which
// is a programming error.
func SpecFor(name Name) Spec {
	s, ok := specs[name]
	if !ok {
		panic(fmt.Sprintf("datasets: unknown dataset %q", name))
	}
	return s
}

// Options controls generation.
type Options struct {
	// Scale is the reduction factor: the analogue has approximately
	// PaperVertices/Scale vertices and PaperEdges/Scale edges. The
	// generated graph carries Scale as its ScaleFactor. If zero,
	// DefaultScale is used.
	Scale float64
	// Seed makes generation deterministic. The same (name, Scale, Seed)
	// always yields the identical graph.
	Seed int64
}

// DefaultScale is the reduction used by the experiment harness: large
// enough that the full grid runs in seconds, small enough that every
// shape property survives.
const DefaultScale = 100_000

// ScaleUpScale is the reduction of the "scale-up" fixture used by the
// bounded-memory CI leg and the spill benchmark (datagen -preset
// scale-up): 5× the vertices and edges of DefaultScale, sized so a BSP
// run's message plane overflows a few-MiB memory budget — forcing the
// governor's out-of-core tier — while generation still takes well under
// a second.
const ScaleUpScale = 20_000

// Generate builds the synthetic analogue of the named dataset.
func Generate(name Name, opt Options) *graph.Graph {
	spec := SpecFor(name)
	if opt.Scale <= 0 {
		opt.Scale = DefaultScale
	}
	n := int(float64(spec.PaperVertices) / opt.Scale)
	if n < 16 {
		n = 16
	}
	e := int(float64(spec.PaperEdges) / opt.Scale)
	if e < n {
		e = n
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(len(name))*7919))

	var g *graph.Graph
	switch spec.kind {
	case kindRoad:
		g = generateRoad(n, e, opt.Scale, rng)
	default:
		g = generatePowerLaw(spec, n, e, opt.Scale, rng)
	}
	return g
}

// Catalog generates all four datasets at the given scale and seed.
func Catalog(scale float64, seed int64) map[Name]*graph.Graph {
	out := make(map[Name]*graph.Graph, 4)
	for _, n := range AllNames() {
		out[n] = Generate(n, Options{Scale: scale, Seed: seed})
	}
	return out
}

// TraversalDilation computes the SSSP iteration-dilation factor for a
// synthetic analogue: the dataset's paper-scale traversal depth divided
// by the synthetic depth (the BFS eccentricity of the chosen source).
// Engines multiply per-iteration charges by this factor so the modeled
// clock reflects the real dataset's iteration count — without it, the
// down-scaled WRN would not reproduce the paper's timeout matrix.
func TraversalDilation(name Name, g *graph.Graph, source graph.VertexID) float64 {
	return clampDilation(SpecFor(name).TraversalDepth, graph.Eccentricity(g, source))
}

// WCCDilation computes the WCC iteration-dilation factor, normalizing
// by the exact number of synchronous HashMin rounds the synthetic
// analogue needs (measured once here), so dilated runs land on the
// paper-scale iteration count.
func WCCDilation(name Name, g *graph.Graph) float64 {
	return clampDilation(SpecFor(name).TraversalDepth, graph.HashMinRounds(g))
}

func clampDilation(depth float64, ecc int) float64 {
	if ecc < 1 {
		ecc = 1
	}
	d := depth / float64(ecc)
	if d < 1 {
		return 1
	}
	return d
}

// SourceVertex returns the deterministic start vertex used for SSSP and
// K-hop on g, mirroring the paper's "random start vertex chosen for each
// graph dataset and used consistently in all experiments" (§3.3). Among
// a few seeded candidates it picks the one that reaches the most
// vertices, so traversal workloads exercise a representative portion of
// the graph rather than a dead end.
func SourceVertex(g *graph.Graph, seed int64) graph.VertexID {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	best, bestReach := graph.VertexID(0), -1
	for i := 0; i < 5; i++ {
		cand := graph.VertexID(rng.Intn(n))
		reach := 0
		for _, d := range graph.BFSDistances(g, cand) {
			if d >= 0 {
				reach++
			}
		}
		if reach > bestReach {
			best, bestReach = cand, reach
		}
	}
	return best
}
