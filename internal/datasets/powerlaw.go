package datasets

import (
	"math/rand"

	"graphbench/internal/graph"
)

// generatePowerLaw builds a social/web graph analogue with an R-MAT style
// recursive generator. The skew parameter controls how extreme the
// degree distribution is (Twitter's max degree is ~7% of |V|, UK's is
// ~1%). For the web graphs a locality fraction of edges is redirected to
// nearby vertex ids, modelling host-local hyperlinks (the structure that
// URL-prefix and Voronoi partitioners exploit), which also leaves the
// web graphs with more than one component.
func generatePowerLaw(spec Spec, n, e int, scale float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	b.SetName(string(spec.Name)).SetScaleFactor(scale).Dedupe(false)

	// Round n up to a power of two for the quadrant recursion; samples
	// that land outside [0,n) are rejected.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	a := spec.skew
	bq := (1 - a) / 3
	cq := bq
	// Remaining mass on the d quadrant.

	selfLoops := int(float64(e) * spec.selfLoop)
	local := int(float64(e) * spec.locality)
	plain := e - selfLoops - local

	for i := 0; i < plain; i++ {
		src, dst := rmatEdge(pow, a, bq, cq, rng)
		for src >= n || dst >= n {
			src, dst = rmatEdge(pow, a, bq, cq, rng)
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
	}

	// Host-local edges: destination within a small window of the
	// source. Window size ~ sqrt(n) mimics host-sized clusters of
	// pages. Sources follow the same skewed distribution as the global
	// links — hub pages carry most of the out-links — so locality does
	// not flatten the degree distribution (vertex-cut replication
	// factors depend on it; Table 4).
	window := 2
	for window*window < n {
		window++
	}
	for i := 0; i < local; i++ {
		src, _ := rmatEdge(pow, a, bq, cq, rng)
		for src >= n {
			src, _ = rmatEdge(pow, a, bq, cq, rng)
		}
		off := rng.Intn(2*window+1) - window
		dst := src + off
		if dst < 0 || dst >= n || dst == src {
			dst = (src + 1) % n
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
	}

	for i := 0; i < selfLoops; i++ {
		v := rng.Intn(n)
		b.AddEdge(graph.VertexID(v), graph.VertexID(v))
	}

	if spec.connected {
		// A random cycle through all vertices guarantees a single giant
		// component (Twitter's structure, §4.4.1) at the cost of |V|
		// extra edges — negligible next to |E| at avg degree 35.
		perm := rng.Perm(n)
		for i := range perm {
			b.AddEdge(graph.VertexID(perm[i]), graph.VertexID(perm[(i+1)%n]))
		}
	}
	return b.Build()
}

// rmatEdge samples one edge by recursive quadrant selection over a
// pow×pow adjacency matrix (R-MAT). Small per-level noise keeps the
// generated graph from having the exact fractal artifacts of pure R-MAT.
func rmatEdge(pow int, a, b, c float64, rng *rand.Rand) (src, dst int) {
	for half := pow / 2; half >= 1; half /= 2 {
		an := a + a*0.1*(rng.Float64()-0.5)
		r := rng.Float64()
		switch {
		case r < an:
			// top-left: no change
		case r < an+b:
			dst += half
		case r < an+b+c:
			src += half
		default:
			src += half
			dst += half
		}
	}
	return src, dst
}
