package datasets

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"graphbench/internal/graph"
	"graphbench/internal/snapshot"
)

// cacheScale keeps the cached fixtures tiny (a few hundred edges) so
// the tests exercise the full generate→save→load cycle in milliseconds.
const cacheScale = 5_000_000

func sameGraph(a, b *graph.Graph) bool {
	ca, cb := a.RawCSR(), b.RawCSR()
	return ca.Name == cb.Name && ca.Scale == cb.Scale && ca.SelfEdges == cb.SelfEdges &&
		slices.Equal(ca.OutOffsets, cb.OutOffsets) && slices.Equal(ca.OutEdges, cb.OutEdges) &&
		slices.Equal(ca.InOffsets, cb.InOffsets) && slices.Equal(ca.InEdges, cb.InEdges)
}

func TestCacheHitIsBitIdenticalToGeneration(t *testing.T) {
	c := NewCache(t.TempDir())
	opt := Options{Scale: cacheScale, Seed: 7}
	fresh := Generate(Twitter, opt)

	cold := c.Generate(Twitter, opt) // miss: generates + saves
	if !sameGraph(fresh, cold) {
		t.Fatal("cold cache generation differs from plain generation")
	}
	if _, err := os.Stat(c.Path(Twitter, opt)); err != nil {
		t.Fatalf("cold generation did not write the snapshot: %v", err)
	}
	warm := c.Generate(Twitter, opt) // hit: loads the snapshot
	if !sameGraph(fresh, warm) {
		t.Fatal("snapshot-loaded graph differs from plain generation")
	}
}

// TestCacheHitLoadsSnapshot proves the snapshot takes precedence over
// regeneration: a hand-planted snapshot at the cache key (same name
// and scale, different structure) is what Generate returns.
func TestCacheHitLoadsSnapshot(t *testing.T) {
	c := NewCache(t.TempDir())
	opt := Options{Scale: cacheScale, Seed: 7}
	planted := graph.NewBuilder(3).SetName(string(Twitter)).SetScaleFactor(cacheScale)
	planted.AddEdge(0, 1)
	planted.AddEdge(1, 2)
	if err := snapshot.Save(c.Path(Twitter, opt), planted.Build(), opt.Seed); err != nil {
		t.Fatal(err)
	}
	got := c.Generate(Twitter, opt)
	if got.NumVertices() != 3 || got.NumEdges() != 2 {
		t.Fatalf("cache ignored the planted snapshot: got %d vertices, %d edges",
			got.NumVertices(), got.NumEdges())
	}
}

// TestCacheRejectsWrongSeedSnapshot: a snapshot restored under the
// wrong seed's cache key (renamed file, mispopulated CI cache) must be
// regenerated, not loaded — the graph's bytes alone can't reveal the
// mismatch, which is why the container persists the generation seed.
func TestCacheRejectsWrongSeedSnapshot(t *testing.T) {
	c := NewCache(t.TempDir())
	wrong := Options{Scale: cacheScale, Seed: 1}
	want := Options{Scale: cacheScale, Seed: 2}
	// Plant seed-1 bytes at seed-2's cache key, as a rename would.
	if err := snapshot.Save(c.Path(Twitter, want), Generate(Twitter, wrong), wrong.Seed); err != nil {
		t.Fatal(err)
	}
	got := c.Generate(Twitter, want)
	if !sameGraph(Generate(Twitter, want), got) {
		t.Fatal("cache served the wrong seed's graph")
	}
	// The mismatched entry must have been healed in place.
	if g, seed, err := snapshot.Load(c.Path(Twitter, want)); err != nil {
		t.Fatalf("cache did not heal the mismatched entry: %v", err)
	} else if seed != want.Seed || !sameGraph(got, g) {
		t.Fatalf("healed entry carries seed %d, want %d", seed, want.Seed)
	}
}

func TestCacheCorruptSnapshotFallsBackAndHeals(t *testing.T) {
	c := NewCache(t.TempDir())
	opt := Options{Scale: cacheScale, Seed: 3}
	path := c.Path(WRN, opt)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := c.Generate(WRN, opt)
	if !sameGraph(Generate(WRN, opt), got) {
		t.Fatal("corrupt snapshot changed the generated graph")
	}
	// The entry must have been rewritten with a valid snapshot.
	if g, _, err := snapshot.Load(path); err != nil {
		t.Fatalf("cache did not heal the corrupt entry: %v", err)
	} else if !sameGraph(got, g) {
		t.Fatal("healed entry differs from the returned graph")
	}
}

func TestCachePathKeying(t *testing.T) {
	c := NewCache("dir")
	base := c.Path(Twitter, Options{Scale: 100, Seed: 1})
	for _, other := range []string{
		c.Path(UK, Options{Scale: 100, Seed: 1}),
		c.Path(Twitter, Options{Scale: 200, Seed: 1}),
		c.Path(Twitter, Options{Scale: 100, Seed: 2}),
	} {
		if other == base {
			t.Fatalf("distinct keys share cache path %s", base)
		}
	}
	if got, want := c.Path(Twitter, Options{}), c.Path(Twitter, Options{Scale: DefaultScale}); got != want {
		t.Fatalf("zero scale should key as DefaultScale: %s vs %s", got, want)
	}
	if !strings.HasSuffix(base, snapshot.Ext) {
		t.Fatalf("cache path %s lacks the %s extension", base, snapshot.Ext)
	}
}

func TestCacheCatalog(t *testing.T) {
	c := NewCache(t.TempDir())
	cat := c.Catalog(cacheScale, 1)
	if len(cat) != len(AllNames()) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(AllNames()))
	}
	for _, n := range AllNames() {
		if !sameGraph(Generate(n, Options{Scale: cacheScale, Seed: 1}), cat[n]) {
			t.Fatalf("cached catalog entry %s differs from generation", n)
		}
	}
}

// TestCacheDegradesWhenDirUnwritable: a cache whose directory cannot be
// created or written (read-only volume, ENOSPC, a file squatting on the
// path) must not fail the run — it warns once and serves the generated
// in-memory graph, bit-identical to an uncached generation.
func TestCacheDegradesWhenDirUnwritable(t *testing.T) {
	// A regular file where the cache directory should be: MkdirAll and
	// every write under it fail regardless of uid (chmod-based read-only
	// setups are defeated by root, which CI containers run as).
	squat := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(squat, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(filepath.Join(squat, "cache"))
	var warnings []string
	c.Logf = func(format string, args ...any) {
		warnings = append(warnings, format)
	}

	opt := Options{Scale: cacheScale, Seed: 7}
	got := c.Generate(Twitter, opt)
	if !sameGraph(Generate(Twitter, opt), got) {
		t.Fatal("degraded cache served a graph that differs from generation")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "unwritable") {
		t.Fatalf("degradation warnings = %q, want one unwritable warning", warnings)
	}

	// Still serving (and still warning) on the next call: degradation
	// is per-attempt, not a poisoned state.
	if !sameGraph(Generate(Twitter, opt), c.Generate(Twitter, opt)) {
		t.Fatal("second degraded generation differs")
	}
	if len(warnings) != 2 {
		t.Fatalf("second miss warned %d times total, want 2", len(warnings))
	}
}
