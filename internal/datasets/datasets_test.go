package datasets

import (
	"testing"

	"graphbench/internal/graph"
)

const testScale = 200_000 // small graphs keep the test suite fast

func TestDeterministic(t *testing.T) {
	for _, name := range AllNames() {
		a := Generate(name, Options{Scale: testScale, Seed: 7})
		b := Generate(name, Options{Scale: testScale, Seed: 7})
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: generation not deterministic", name)
		}
		for v := 0; v < a.NumVertices(); v++ {
			an, bn := a.OutNeighbors(graph.VertexID(v)), b.OutNeighbors(graph.VertexID(v))
			if len(an) != len(bn) {
				t.Fatalf("%s: vertex %d degree differs across runs", name, v)
			}
			for i := range an {
				if an[i] != bn[i] {
					t.Fatalf("%s: vertex %d adjacency differs across runs", name, v)
				}
			}
		}
	}
}

func TestSeedChangesGraph(t *testing.T) {
	a := Generate(Twitter, Options{Scale: testScale, Seed: 1})
	b := Generate(Twitter, Options{Scale: testScale, Seed: 2})
	same := a.NumEdges() == b.NumEdges()
	if same {
		diff := false
		for v := 0; v < a.NumVertices() && !diff; v++ {
			an, bn := a.OutNeighbors(graph.VertexID(v)), b.OutNeighbors(graph.VertexID(v))
			if len(an) != len(bn) {
				diff = true
				break
			}
			for i := range an {
				if an[i] != bn[i] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical Twitter graphs")
		}
	}
}

func TestRelativeSizes(t *testing.T) {
	cat := Catalog(testScale, 1)
	tw, uk, cw, rn := cat[Twitter], cat[UK], cat[ClueWeb], cat[WRN]

	if !(cw.NumEdges() > uk.NumEdges() && uk.NumEdges() > tw.NumEdges()) {
		t.Errorf("edge ordering violated: clueweb=%d uk=%d twitter=%d",
			cw.NumEdges(), uk.NumEdges(), tw.NumEdges())
	}
	// WRN and ClueWeb are the vertex-heavy datasets (drives Blogel-B's
	// MPI overflow and WCC memory pressure).
	if !(rn.NumVertices() > uk.NumVertices() && rn.NumVertices() > tw.NumVertices()) {
		t.Errorf("WRN should have the most vertices after ClueWeb: wrn=%d uk=%d tw=%d",
			rn.NumVertices(), uk.NumVertices(), tw.NumVertices())
	}
	if cw.NumVertices() < rn.NumVertices() {
		t.Errorf("ClueWeb should have at least as many vertices as WRN: %d < %d",
			cw.NumVertices(), rn.NumVertices())
	}
}

func TestDegreeShape(t *testing.T) {
	cat := Catalog(testScale, 1)

	twStats := cat[Twitter].Stats()
	rnStats := cat[WRN].Stats()

	if twStats.AvgOutDegree < 10 {
		t.Errorf("twitter avg degree = %.1f, want >= 10 (paper: 35)", twStats.AvgOutDegree)
	}
	if rnStats.AvgOutDegree > 2.0 {
		t.Errorf("wrn avg degree = %.2f, want <= 2 (paper: 1.05)", rnStats.AvgOutDegree)
	}
	if rnStats.MaxOutDegree > 16 {
		t.Errorf("wrn max degree = %d, want bounded (paper: 9)", rnStats.MaxOutDegree)
	}
	// Power-law skew: Twitter's hub dwarfs the average.
	if float64(twStats.MaxOutDegree) < 20*twStats.AvgOutDegree {
		t.Errorf("twitter max degree %d not skewed vs avg %.1f", twStats.MaxOutDegree, twStats.AvgOutDegree)
	}
}

func TestDiameterShape(t *testing.T) {
	cat := Catalog(testScale, 1)
	dTw := graph.EstimateDiameter(cat[Twitter], 2, 1)
	dRn := graph.EstimateDiameter(cat[WRN], 2, 1)
	if dRn < 20*dTw {
		t.Errorf("WRN diameter (%d) should dwarf Twitter's (%d)", dRn, dTw)
	}
	if dRn < 50 {
		t.Errorf("WRN diameter = %d, want a long-diameter road analogue", dRn)
	}
}

func TestTwitterGiantComponent(t *testing.T) {
	g := Generate(Twitter, Options{Scale: testScale, Seed: 1})
	if f := graph.LargestComponentFraction(g); f < 0.999 {
		t.Errorf("twitter largest component fraction = %.4f, want ~1.0 (single giant component)", f)
	}
}

func TestSelfEdgesPresence(t *testing.T) {
	if g := Generate(Twitter, Options{Scale: testScale, Seed: 1}); g.SelfEdges() == 0 {
		t.Error("twitter analogue should contain self-edges (GraphLab limitation, paper §3.1.1)")
	}
	if g := Generate(WRN, Options{Scale: testScale, Seed: 1}); g.SelfEdges() != 0 {
		t.Error("road network should not contain self-edges")
	}
}

func TestScaleFactorRecorded(t *testing.T) {
	g := Generate(UK, Options{Scale: 50_000, Seed: 1})
	if g.ScaleFactor() != 50_000 {
		t.Fatalf("ScaleFactor = %v, want 50000", g.ScaleFactor())
	}
	if g.Name() != string(UK) {
		t.Fatalf("Name = %q, want %q", g.Name(), UK)
	}
}

func TestSpecForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpecFor(unknown) should panic")
		}
	}()
	SpecFor(Name("nope"))
}

func TestSourceVertexDeterministicAndUseful(t *testing.T) {
	g := Generate(WRN, Options{Scale: testScale, Seed: 1})
	s1 := SourceVertex(g, 42)
	s2 := SourceVertex(g, 42)
	if s1 != s2 {
		t.Fatalf("SourceVertex not deterministic: %d vs %d", s1, s2)
	}
	reach := 0
	for _, d := range graph.BFSDistances(g, s1) {
		if d >= 0 {
			reach++
		}
	}
	if reach < g.NumVertices()/100 {
		t.Errorf("source vertex reaches only %d of %d vertices", reach, g.NumVertices())
	}
}

func TestGenerateTinyScaleStillValid(t *testing.T) {
	// Extremely aggressive scales must still produce a usable graph.
	for _, name := range AllNames() {
		g := Generate(name, Options{Scale: 1e12, Seed: 1})
		if g.NumVertices() < 16 {
			t.Errorf("%s: tiny-scale graph has %d vertices, want >= 16", name, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: tiny-scale graph has no edges", name)
		}
	}
}

func TestPaperSpecValues(t *testing.T) {
	// Guard the transcription of Table 3.
	tw := SpecFor(Twitter)
	if tw.PaperEdges != 1_460_000_000 || tw.PaperDiameter != 5.29 {
		t.Errorf("twitter spec drifted: %+v", tw)
	}
	if SpecFor(ClueWeb).PaperEdges != 42_500_000_000 {
		t.Errorf("clueweb spec drifted")
	}
	if SpecFor(WRN).PaperDiameter != 48_000 {
		t.Errorf("wrn spec drifted")
	}
}
