package datasets

import (
	"math/rand"

	"graphbench/internal/graph"
)

// generateRoad builds the World Road Network analogue: a long, thin
// lattice of height roadHeight whose length grows with the vertex
// count, so the diameter is Θ(n) — orders of magnitude beyond the
// social/web analogues, exactly the property that makes traversal
// workloads on WRN pathological in the paper (§5.3, §5.6, §5.8).
//
// Every lattice vertex gets a forward edge along its row (the "highway"
// direction); a small fraction of backward and cross-row edges brings
// the average out-degree to WRN's ≈1.05 while keeping the max degree
// bounded by a handful, as in Table 3 (max 9).
const roadHeight = 4

func generateRoad(n, e int, scale float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	b.SetName(string(WRN)).SetScaleFactor(scale).Dedupe(true)

	width := n / roadHeight
	if width < 2 {
		width = 2
	}
	// Vertex ids are a random permutation of lattice positions: real
	// road-network ids carry no geometric order, and id order matters
	// to HashMin WCC — with monotone ids every vertex would relabel
	// every round (a pathological cascade real datasets don't exhibit).
	perm := rng.Perm(n)
	at := func(row, col int) graph.VertexID {
		id := row*width + col
		if id >= n {
			id = n - 1
		}
		return graph.VertexID(perm[id])
	}

	// Forward highway edges: (r,c) -> (r,c+1).
	for r := 0; r < roadHeight; r++ {
		for c := 0; c+1 < width; c++ {
			if int(at(r, c)) >= n-1 {
				break
			}
			b.AddEdge(at(r, c), at(r, c+1))
		}
	}
	// Leftover positions beyond the lattice tail extend the last row.
	for id := roadHeight * width; id < n; id++ {
		b.AddEdge(graph.VertexID(perm[id-1]), graph.VertexID(perm[id]))
	}

	// Extra edges up to the target count: mostly backward lanes and
	// vertical connectors between adjacent rows.
	for b.NumEdges() < e {
		r := rng.Intn(roadHeight)
		c := rng.Intn(width - 1)
		switch rng.Intn(3) {
		case 0: // backward lane
			b.AddEdge(at(r, c+1), at(r, c))
		case 1: // connector down
			if r+1 < roadHeight {
				b.AddEdge(at(r, c), at(r+1, c))
			}
		default: // connector up
			if r > 0 {
				b.AddEdge(at(r, c), at(r-1, c))
			}
		}
	}
	return b.Build()
}
