package rdd

import (
	"testing"

	"graphbench/internal/sim"
)

var prof = sim.Profile{Name: "test", RecordCPUNs: 100, PressurePenalty: 0}

func TestUtilization(t *testing.T) {
	c := sim.NewSize(32) // 128 cores
	if u := NewContext(c, &prof, 1, 64, 1).Utilization(); u != 0.5 {
		t.Errorf("Utilization(64 partitions) = %v, want 0.5", u)
	}
	if u := NewContext(c, &prof, 1, 256, 1).Utilization(); u != 1 {
		t.Errorf("Utilization(256) = %v, want 1", u)
	}
}

func TestStragglerSmallClustersBalanced(t *testing.T) {
	// Placement skew is a large-cluster phenomenon; at 16-32 machines
	// the factor stays modest, at 128 it is severe.
	small := NewContext(sim.NewSize(16), &prof, 1, 128, 17).Straggler()
	large := NewContext(sim.NewSize(128), &prof, 1, 1024, 17).Straggler()
	if small > 3 {
		t.Errorf("straggler at 16 machines = %v, want modest", small)
	}
	if large < 3 {
		t.Errorf("straggler at 128 machines = %v, want severe (Figure 11)", large)
	}
	if large <= small {
		t.Errorf("straggler should grow with cluster size: %v <= %v", large, small)
	}
}

func TestRunStageChargesTime(t *testing.T) {
	c := sim.NewSize(4)
	sc := NewContext(c, &prof, 1000, 16, 1)
	before := c.Clock()
	if err := sc.RunStage(StageCost{Records: 1e6, ShuffleBytes: 1e6}); err != nil {
		t.Fatal(err)
	}
	if c.Clock() <= before {
		t.Fatal("stage advanced no time")
	}
	if c.Machine(0).DiskRead == 0 || c.Machine(0).NetSent == 0 {
		t.Fatal("shuffle I/O not charged")
	}
}

func TestDilationMultipliesFixedWork(t *testing.T) {
	run := func(dil float64) float64 {
		c := sim.NewSize(4)
		sc := NewContext(c, &prof, 1000, 16, 1)
		if err := sc.RunStage(StageCost{Records: 1e6, Dilation: dil}); err != nil {
			t.Fatal(err)
		}
		return c.Clock()
	}
	if a, b := run(1), run(10); b <= a {
		t.Fatalf("dilated stage (%v) not above plain (%v)", b, a)
	}
}

func TestLineageGrowsAndCheckpointReleases(t *testing.T) {
	c := sim.NewSize(2)
	sc := NewContext(c, &prof, 1, 16, 1)
	for i := 0; i < 5; i++ {
		if err := sc.ExtendLineage(sim.MB); err != nil {
			t.Fatal(err)
		}
	}
	if sc.LineageBytes() != 5*sim.MB {
		t.Fatalf("lineage = %d", sc.LineageBytes())
	}
	if c.Machine(0).MemUsed() != 5*sim.MB {
		t.Fatalf("lineage memory not charged: %d", c.Machine(0).MemUsed())
	}
	if err := sc.Checkpoint(1000); err != nil {
		t.Fatal(err)
	}
	if sc.LineageBytes() != 0 || c.Machine(0).MemUsed() != 0 {
		t.Fatal("checkpoint did not release lineage")
	}
	if c.Machine(0).DiskWrite == 0 {
		t.Fatal("checkpoint wrote nothing")
	}
}

func TestLineageOOM(t *testing.T) {
	c := sim.NewSize(1)
	sc := NewContext(c, &prof, 1, 4, 1)
	err := sc.ExtendLineage(2 * sim.MemoryPerMachine)
	if sim.StatusOf(err) != sim.OOM {
		t.Fatalf("want OOM, got %v", err)
	}
}

func TestPartitionsClampedToOne(t *testing.T) {
	sc := NewContext(sim.NewSize(2), &prof, 1, 0, 1)
	if sc.Partitions != 1 {
		t.Fatalf("Partitions = %d, want 1", sc.Partitions)
	}
}
