// Package rdd models Spark's core execution machinery (§2.5.2) as used
// by GraphX: stages of tasks over partitioned RDDs, shuffle boundaries,
// lineage growth with optional checkpointing, and the partition
// placement skew behind Figure 11.
//
// Three Spark behaviours drive the paper's GraphX findings and are
// modeled explicitly:
//
//   - every stage schedules one task per partition: too few partitions
//     under-utilize the cluster, too many pay task overhead and skew
//     (Table 5, Figure 2);
//   - tasks are placed with data locality, which clumps consecutive
//     partitions onto the same machines; the slowest machine gates the
//     synchronous stage (Figure 11, §5.6);
//   - fault tolerance keeps RDD lineage alive: every iteration retains
//     references to its predecessors, growing memory until an OOM —
//     unless checkpointing trades the memory for expensive disk I/O
//     (§5.6: the WCC-on-WRN failure in all cluster sizes).
package rdd

import (
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// TaskLatency is the per-task launch cost in seconds.
const TaskLatency = 0.03

// SchedulerDelay is the fixed per-stage scheduling cost in seconds.
const SchedulerDelay = 0.4

// DriverDispatch is the driver-side serialization cost per task: with
// thousands of partitions the master becomes the bottleneck — the right
// side of Figure 2's U-shape.
const DriverDispatch = 0.008

// Context is a Spark application context bound to a cluster.
type Context struct {
	Cluster *sim.Cluster
	Prof    *sim.Profile
	Scale   float64

	Partitions int
	placement  []int
	straggler  float64

	lineagePerMachine int64 // bytes currently retained by lineage
}

// NewContext creates a context with the given partition count.
// Placement follows Spark's locality clumping.
func NewContext(c *sim.Cluster, prof *sim.Profile, scale float64, partitions int, seed int64) *Context {
	if partitions < 1 {
		partitions = 1
	}
	// The straggler factor compares the most loaded machine's task
	// waves against the ideal wave count. Fewer partitions than cores
	// is an under-utilization problem (see Utilization), not a
	// straggler problem.
	pl := partition.SparkPlacement(partitions, c.Size(), seed)
	maxWaves := float64(partition.MaxCount(pl)) / float64(c.Config().Cores)
	idealWaves := float64(partitions) / float64(c.TotalCores())
	if maxWaves < 1 {
		maxWaves = 1
	}
	if idealWaves < 1 {
		idealWaves = 1
	}
	strag := maxWaves / idealWaves
	if strag < 1 {
		strag = 1
	}
	return &Context{
		Cluster: c, Prof: prof, Scale: scale,
		Partitions: partitions, placement: pl, straggler: strag,
	}
}

// Straggler returns the placement skew factor (max/avg partitions per
// machine) — Figure 11's quantity.
func (sc *Context) Straggler() float64 { return sc.straggler }

// Placement returns partitions per machine.
func (sc *Context) Placement() []int { return sc.placement }

// Utilization returns the fraction of cluster cores a stage with this
// partition count can keep busy (fewer partitions than cores idles the
// remainder — the left side of Figure 2's U-shape).
func (sc *Context) Utilization() float64 {
	cores := float64(sc.Cluster.TotalCores())
	p := float64(sc.Partitions)
	if p >= cores {
		return 1
	}
	return p / cores
}

// StageCost describes one stage.
type StageCost struct {
	Records      float64 // records processed across the cluster (paper scale applied by caller? no — synthetic; Scale applied here)
	ShuffleBytes float64 // synthetic-scale shuffle volume in records*bytes
	Dilation     float64 // iteration dilation on this stage's fixed work
}

// RunStage charges one stage: scheduler delay, task waves, record CPU
// (slowed by placement skew and memory pressure), and shuffle I/O.
func (sc *Context) RunStage(st StageCost) error {
	c := sc.Cluster
	p := sc.Prof
	m := float64(c.Size())
	dil := st.Dilation
	if dil < 1 {
		dil = 1
	}

	waves := float64((sc.Partitions + c.TotalCores() - 1) / c.TotalCores())
	fixed := SchedulerDelay + float64(sc.Partitions)*DriverDispatch + waves*TaskLatency*sc.straggler

	cpu := p.RecordSeconds(st.Records*sc.Scale/m, c.Config().Cores)
	cpu = cpu / sc.Utilization() * sc.straggler

	shufflePer := st.ShuffleBytes * sc.Scale / m * sc.straggler
	costs := make([]sim.StepCost, c.Size())
	for i := range costs {
		compute := (fixed + cpu*dil) * p.PressureFactor(c.Machine(i).MemUsed(), c.Config().MemoryBytes)
		costs[i] = sim.StepCost{
			ComputeSeconds: compute,
			DiskReadBytes:  shufflePer,
			DiskWriteBytes: shufflePer,
			NetSendBytes:   shufflePer * (m - 1) / m,
			NetRecvBytes:   shufflePer * (m - 1) / m,
		}
	}
	return c.RunStep(costs)
}

// ExtendLineage retains bytes-per-machine of lineage for fault
// tolerance; the allocation stays until Checkpoint or ReleaseLineage.
func (sc *Context) ExtendLineage(bytesPerMachine int64) error {
	sc.lineagePerMachine += bytesPerMachine
	return sc.Cluster.AllocAll(bytesPerMachine)
}

// LineageBytes returns the current per-machine lineage footprint.
func (sc *Context) LineageBytes() int64 { return sc.lineagePerMachine }

// Checkpoint writes the dataset to HDFS (replicated) and truncates the
// lineage, releasing its memory — lineage-for-I/O, §5.6's trade.
func (sc *Context) Checkpoint(datasetBytes float64) error {
	c := sc.Cluster
	m := float64(c.Size())
	per := datasetBytes * sc.Scale / m
	costs := make([]sim.StepCost, c.Size())
	for i := range costs {
		costs[i] = sim.StepCost{
			DiskWriteBytes: per * 3,
			NetSendBytes:   per * 2,
			NetRecvBytes:   per * 2,
		}
	}
	if err := c.RunStep(costs); err != nil {
		return err
	}
	sc.ReleaseLineage()
	return nil
}

// ReleaseLineage frees retained lineage memory.
func (sc *Context) ReleaseLineage() {
	if sc.lineagePerMachine > 0 {
		sc.Cluster.FreeAll(sc.lineagePerMachine)
		sc.lineagePerMachine = 0
	}
}
