// Package hdfs simulates the distributed file system every system in
// the paper (except Vertica) reads inputs from and writes results to.
//
// Files hold real synthetic-scale bytes (engines genuinely parse them)
// plus a modeled paper-scale size used for I/O cost accounting and for
// the block count that drives GraphX's default partition number
// (Table 5: #partitions defaults to #blocks; the HDFS block size is
// 64 MB). Files also record a chunk count: the paper pre-partitions
// datasets into similar-size chunks because the C++ HDFS client used by
// Blogel and GraphLab spawns one reader thread per chunk — a single
// chunk serializes the entire load onto the master (§4.3).
package hdfs

import (
	"bytes"
	"fmt"
	"sort"

	"graphbench/internal/graph"
)

// BlockSize is the HDFS default block size used in the paper (64 MB).
const BlockSize = 64 << 20

// ReplicationFactor is HDFS's default write replication.
const ReplicationFactor = 3

// EdgeFormatBytesPerEdge is the average on-disk bytes per edge of the
// paper's edge-format files (two ~9-digit ids, a space, a newline),
// fitted to Table 5's block counts.
const EdgeFormatBytesPerEdge = 21

// File is a stored file.
type File struct {
	Name       string
	Data       []byte
	PaperBytes int64 // modeled on-disk size at paper scale
	Chunks     int   // number of similar-size chunks the file is split into
}

// Blocks returns the number of HDFS blocks the file occupies at paper
// scale — the quantity GraphX uses as its default partition count.
func (f *File) Blocks() int {
	if f.PaperBytes <= 0 {
		return 1
	}
	b := int((f.PaperBytes + BlockSize - 1) / BlockSize)
	if b < 1 {
		b = 1
	}
	return b
}

// FS is an in-memory simulated HDFS namespace.
type FS struct {
	files map[string]*File
}

// New returns an empty file system.
func New() *FS { return &FS{files: make(map[string]*File)} }

// Create stores a file, replacing any previous file of the same name.
func (fs *FS) Create(name string, data []byte, paperBytes int64, chunks int) *File {
	if chunks < 1 {
		chunks = 1
	}
	f := &File{Name: name, Data: data, PaperBytes: paperBytes, Chunks: chunks}
	fs.files[name] = f
	return f
}

// Open returns the named file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", name)
	}
	return f, nil
}

// Exists reports whether the named file exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Delete removes the named file; deleting a missing file is a no-op.
func (fs *FS) Delete(name string) { delete(fs.files, name) }

// List returns all file names in sorted order.
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteGraph encodes g in the given format and stores it under name with
// the supplied paper-scale size and chunk count.
func (fs *FS) WriteGraph(name string, g *graph.Graph, format graph.Format, paperBytes int64, chunks int) (*File, error) {
	var buf bytes.Buffer
	if err := graph.Encode(g, format, &buf); err != nil {
		return nil, fmt.Errorf("hdfs: encoding %q: %w", name, err)
	}
	return fs.Create(name, buf.Bytes(), paperBytes, chunks), nil
}

// ReadGraph decodes the named file as a graph in the given format.
func (fs *FS) ReadGraph(name string, format graph.Format, numVertices int) (*graph.Graph, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	g, err := graph.Decode(bytes.NewReader(f.Data), format, numVertices)
	if err != nil {
		return nil, fmt.Errorf("hdfs: decoding %q: %w", name, err)
	}
	return g, nil
}

// ParallelReadSeconds models the time for a cluster of m machines to
// read a file of paperBytes split into `chunks` chunks, with one reader
// stream per chunk: effective parallelism is min(chunks, m). A
// single-chunk file serializes the whole read through one machine —
// the Blogel/GraphLab loading pathology the paper works around by
// pre-partitioning inputs (§4.3).
func ParallelReadSeconds(paperBytes int64, m, chunks int, diskBW float64) float64 {
	if paperBytes <= 0 || diskBW <= 0 {
		return 0
	}
	par := chunks
	if m < par {
		par = m
	}
	if par < 1 {
		par = 1
	}
	return float64(paperBytes) / diskBW / float64(par)
}

// WriteSeconds models an HDFS write of paperBytes spread over m
// machines, including the replication pipeline (each byte is written
// ReplicationFactor times, two of them across the network).
func WriteSeconds(paperBytes int64, m int, diskBW, netBW float64) float64 {
	if paperBytes <= 0 || m < 1 {
		return 0
	}
	per := float64(paperBytes) / float64(m)
	disk := per * ReplicationFactor / diskBW
	net := per * (ReplicationFactor - 1) / netBW
	return disk + net
}
