package hdfs

import (
	"testing"

	"graphbench/internal/graph"
)

func TestCreateOpenDelete(t *testing.T) {
	fs := New()
	fs.Create("a", []byte("hello"), 100, 2)
	f, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "hello" || f.PaperBytes != 100 || f.Chunks != 2 {
		t.Fatalf("file mismatch: %+v", f)
	}
	if !fs.Exists("a") || fs.Exists("b") {
		t.Fatal("Exists wrong")
	}
	fs.Delete("a")
	if _, err := fs.Open("a"); err == nil {
		t.Fatal("open after delete succeeded")
	}
	fs.Delete("a") // no-op
}

func TestCreateClampsChunks(t *testing.T) {
	fs := New()
	f := fs.Create("x", nil, 0, 0)
	if f.Chunks != 1 {
		t.Fatalf("Chunks = %d, want 1", f.Chunks)
	}
}

func TestList(t *testing.T) {
	fs := New()
	fs.Create("b", nil, 0, 1)
	fs.Create("a", nil, 0, 1)
	got := fs.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("List = %v", got)
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct {
		paperBytes int64
		want       int
	}{
		{0, 1},
		{1, 1},
		{BlockSize, 1},
		{BlockSize + 1, 2},
		{10 * BlockSize, 10},
	}
	for _, c := range cases {
		f := &File{PaperBytes: c.paperBytes}
		if got := f.Blocks(); got != c.want {
			t.Errorf("Blocks(%d) = %d, want %d", c.paperBytes, got, c.want)
		}
	}
}

func TestBlocksMatchPaperTable5(t *testing.T) {
	// Table 5 reports the default GraphX partition count (= #blocks of
	// the edge-format file): Twitter 440, WRN 240, UK 1200. The paper's
	// edge files average ~21 bytes/edge for these datasets.
	cases := []struct {
		name  string
		edges int64
		want  int
		tol   int
	}{
		{"twitter", 1_460_000_000, 440, 60},
		{"wrn", 717_000_000, 240, 40},
		{"uk", 3_700_000_000, 1200, 150},
	}
	for _, c := range cases {
		f := &File{PaperBytes: c.edges * EdgeFormatBytesPerEdge}
		got := f.Blocks()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s: Blocks = %d, want %d±%d", c.name, got, c.want, c.tol)
		}
	}
}

func TestWriteReadGraph(t *testing.T) {
	fs := New()
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()

	if _, err := fs.WriteGraph("g.edge", g, graph.FormatEdge, 1000, 4); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadGraph("g.edge", graph.FormatEdge, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 || got.OutNeighbors(0)[0] != 1 {
		t.Fatalf("round-trip mismatch")
	}
	if _, err := fs.ReadGraph("missing", graph.FormatEdge, 3); err == nil {
		t.Fatal("reading missing file succeeded")
	}
	// Wrong format must fail to parse.
	if _, err := fs.ReadGraph("g.edge", graph.FormatAdjLong, 3); err == nil {
		t.Fatal("decoding edge file as adj-long succeeded")
	}
}

func TestParallelReadSeconds(t *testing.T) {
	// 1000 bytes at 10 B/s: one chunk serializes on one machine.
	if got := ParallelReadSeconds(1000, 8, 1, 10); got != 100 {
		t.Errorf("single chunk: %v, want 100", got)
	}
	// 8 chunks on 8 machines: 8-way parallel.
	if got := ParallelReadSeconds(1000, 8, 8, 10); got != 12.5 {
		t.Errorf("8 chunks: %v, want 12.5", got)
	}
	// More chunks than machines: bounded by machines.
	if got := ParallelReadSeconds(1000, 4, 100, 10); got != 25 {
		t.Errorf("chunk surplus: %v, want 25", got)
	}
	if got := ParallelReadSeconds(0, 4, 4, 10); got != 0 {
		t.Errorf("empty file: %v, want 0", got)
	}
}

func TestWriteSeconds(t *testing.T) {
	// 300 bytes over 3 machines: 100 B each, 3x replication disk,
	// 2x over network.
	got := WriteSeconds(300, 3, 100, 200)
	want := 100*3/100.0 + 100*2/200.0
	if got != want {
		t.Errorf("WriteSeconds = %v, want %v", got, want)
	}
	if WriteSeconds(0, 3, 100, 200) != 0 {
		t.Error("empty write should cost 0")
	}
}
