package dataflow

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/pregel"
	"graphbench/internal/sim"
)

func TestAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	g := New()
	w := engine.NewPageRank()
	enginetest.VerifyPageRank(t, f, enginetest.RunOK(t, g, f, 16, w, engine.Options{}), w, 1e-9)
	g.Restart()
	enginetest.VerifyWCC(t, f, enginetest.RunOK(t, g, f, 16, engine.NewWCC(), engine.Options{}))
	g.Restart()
	enginetest.VerifySSSP(t, f, enginetest.RunOK(t, g, f, 16, engine.NewSSSP(f.Dataset.Source), engine.Options{}))
	g.Restart()
	enginetest.VerifyKHop(t, f, enginetest.RunOK(t, g, f, 16, engine.NewKHop(f.Dataset.Source), engine.Options{}), 3)
	g.Restart()
	enginetest.VerifyTriangles(t, f, enginetest.RunOK(t, g, f, 16, engine.NewTriangleCount(), engine.Options{}))
	g.Restart()
	lpa := engine.NewLPA()
	enginetest.VerifyLPA(t, f, enginetest.RunOK(t, g, f, 16, lpa, engine.Options{}), lpa)
}

func TestMemoryLeakAcrossJobs(t *testing.T) {
	// §5.7: Flink does not reclaim memory between workloads and
	// eventually fails; the paper restarted it after each workload.
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	g := New()
	w := engine.NewKHop(f.Dataset.Source)
	sawFailure := false
	for i := 0; i < 6; i++ {
		res := g.Run(sim.NewSize(32), f.Dataset, w, engine.Options{})
		if res.Status == sim.OOM {
			sawFailure = true
			break
		}
	}
	if !sawFailure {
		t.Fatal("six consecutive jobs without restart never hit the leak OOM")
	}
	// After a restart everything works again.
	g.Restart()
	res := g.Run(sim.NewSize(32), f.Dataset, w, engine.Options{})
	if res.Status != sim.OK {
		t.Fatalf("after restart: %v", res.Status)
	}
}

func TestLowFrameworkOverhead(t *testing.T) {
	// §5.7: Gelly's job overhead is small next to Giraph's
	// Hadoop-based startup.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	fg := enginetest.RunOK(t, New(), f, 64, engine.NewKHop(f.Dataset.Source), engine.Options{})
	gir := enginetest.RunOK(t, pregel.New(), f, 64, engine.NewKHop(f.Dataset.Source), engine.Options{})
	if fg.Overhead >= gir.Overhead {
		t.Errorf("Gelly overhead %v not below Giraph %v", fg.Overhead, gir.Overhead)
	}
}

func TestWRNWCCTimeoutMatrix(t *testing.T) {
	// §5.8: Gelly WCC on WRN times out at 16/32/64 machines and
	// finishes in slightly less than 24 hours at 128.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	for _, m := range []int{16, 64} {
		res := New().Run(sim.NewSize(m), f.Dataset, engine.NewWCC(), engine.Options{})
		if res.Status != sim.TO {
			t.Errorf("Gelly WRN WCC at %d: status %v, want TO", m, res.Status)
		}
	}
	res := New().Run(sim.NewSize(128), f.Dataset, engine.NewWCC(), engine.Options{})
	if res.Status != sim.OK {
		t.Fatalf("Gelly WRN WCC at 128: status %v, want OK (%v)", res.Status, res.Err)
	}
	if res.Exec < 10*3600 {
		t.Errorf("Gelly WRN WCC at 128 took %.0fs; paper reports slightly under 24 hours", res.Exec)
	}
}

func TestUKWCCAllSizes(t *testing.T) {
	// §5.8: Gelly finished WCC for Twitter and UK in all clusters.
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	for _, m := range []int{16, 128} {
		res := New().Run(sim.NewSize(m), f.Dataset, engine.NewWCC(), engine.Options{})
		if res.Status != sim.OK {
			t.Errorf("Gelly UK WCC at %d: status %v, want OK (%v)", m, res.Status, res.Err)
		}
	}
}

func TestClueWebFails(t *testing.T) {
	// §5.9: Gelly could not finish ClueWeb even at 128 machines.
	f := enginetest.Prepare(t, datasets.ClueWeb, 10_000_000)
	res := New().Run(sim.NewSize(128), f.Dataset, engine.NewPageRank(), engine.Options{})
	if res.Status == sim.OK {
		t.Fatal("Gelly ClueWeb PageRank at 128 should not complete")
	}
}
