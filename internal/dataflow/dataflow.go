// Package dataflow implements Flink and its graph API Gelly (§2.7):
// computations are operator DAGs (source → transform → bulk-iteration →
// sink) executed in batch mode, which the paper uses so load time can
// be separated from execution.
//
// Gelly's scatter-gather iteration is vertex-centric BSP running inside
// Flink's bulk-iteration operator; each superstep re-scans the full
// vertex dataset (a coGroup), giving Gelly a per-iteration floor like
// Giraph's. Two Flink behaviours from the paper are modeled:
//
//   - low framework overhead (§5.7: "the overhead time is small in
//     Flink Gelly") — no Hadoop/Spark job machinery;
//   - the memory leak across consecutive jobs: Flink does not reclaim
//     all managed memory between workloads, so after a few runs the
//     system OOMs unless restarted (§5.7) — Restart models the paper's
//     workaround of restarting Flink after every workload.
package dataflow

import (
	"graphbench/internal/bsp"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// Profile is Flink Gelly's cost profile.
var Profile = sim.Profile{
	Name: "gelly", Lang: "Java",
	EdgeOpsPerSec:   70e6,
	VertexScanNs:    500, // full-dataset coGroup per superstep
	MsgCPUNs:        450,
	RecordCPUNs:     700,
	MsgBytes:        16,
	VertexBytes:     150,
	EdgeBytes:       62,
	MsgMemBytes:     16,
	PerMachineBase:  4 * sim.GB,
	Imbalance:       1.15,
	SuperstepFixed:  0.7, // bulk-iteration superstep scheduling
	JobStartup:      3,
	JobStartupPerM:  0.05,
	PressurePenalty: 6,
}

// netBufferBytesPerMachine is Flink's network-stack allocation per
// machine per cluster peer (all-to-all channels).
const netBufferBytesPerMachine = 20 * sim.MB

// leakFraction is the share of a run's graph memory that Flink fails to
// reclaim when the job ends (§5.7).
const leakFraction = 0.3

// maxRunsBeforeRestart is how many workloads a Flink session survives
// before the accumulated leak kills it.
const maxRunsBeforeRestart = 3

// Gelly is the engine. Unlike the stateless engines, a Gelly value
// models one running Flink session: leaked memory accumulates across
// Run calls until Restart.
type Gelly struct {
	Profile sim.Profile

	runsSinceRestart int
	leakedPerMachine int64
}

// New returns a fresh Flink session.
func New() *Gelly { return &Gelly{Profile: Profile} }

// Restart models restarting the Flink cluster, reclaiming leaked
// memory — the paper had to do this after every workload.
func (g *Gelly) Restart() {
	g.runsSinceRestart = 0
	g.leakedPerMachine = 0
}

// Name implements engine.Engine.
func (g *Gelly) Name() string { return "gelly" }

// Run implements engine.Engine.
func (g *Gelly) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: g.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	prof := g.Profile
	m := c.Size()

	// Memory leaked by earlier jobs in this session is still resident.
	if g.leakedPerMachine > 0 {
		if err := c.AllocAll(g.leakedPerMachine); err != nil {
			return res.Finish(c, err)
		}
	}
	if g.runsSinceRestart >= maxRunsBeforeRestart {
		return res.Finish(c, &sim.Failure{Status: sim.OOM,
			Detail: "managed memory not reclaimed across jobs; Flink needs a restart"})
	}
	g.runsSinceRestart++

	mark := c.Clock()
	if err := c.Advance(prof.StartupSeconds(m)); err != nil {
		res.Overhead = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Overhead = c.Clock() - mark

	// Source + map operators: read the edge file, build the Gelly
	// graph datasets.
	mark = c.Clock()
	gr, err := d.LoadGraph(graph.FormatEdge)
	if err != nil {
		return res.Finish(c, err)
	}
	loaded, err := g.chargeLoad(c, &prof, d, gr, w)
	if err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	// Bulk-iteration operator: scatter-gather BSP.
	mark = c.Clock()
	cut := partition.EdgeCut{M: m, Seed: 7}
	cfg := bsp.Config{
		Graph:           gr,
		Scale:           d.Scale,
		M:               m,
		MachineOf:       cut.MachineOf,
		Profile:         &prof,
		ScanAll:         true, // coGroup re-scans the full dataset
		Shards:          opt.Shards,
		Pool:            opt.Pool,
		RecordIterStats: true,
		CheckpointEvery: opt.CheckpointInterval(),
		Direction:       opt.Direction,
		Governor:        opt.Governor,
		ShardPlan:       opt.ShardPlan,
		MemoryTier:      opt.MemoryTier,
	}
	configureWorkload(&cfg, w, d)
	out, err := bsp.Run(c, cfg)
	res.Exec = c.Clock() - mark
	res.Iterations = dilatedIters(out.Supersteps, cfg.TimeDilation)
	res.Costs = out.Recovery
	res.Govern = out.Govern
	res.PerIteration = out.IterStats
	fillOutputs(res, w, out)
	if err != nil {
		return res.Finish(c, err)
	}

	// Sink operator: write results.
	mark = c.Clock()
	resultBytes := int64(float64(gr.NumVertices()) * d.Scale * 16)
	saveErr := c.Advance(hdfs.WriteSeconds(resultBytes, m, c.Config().DiskBW, c.Config().NetBW))
	res.Save = c.Clock() - mark

	// The job releases its memory — minus the leak.
	c.FreeAll(loaded)
	g.leakedPerMachine += int64(float64(loaded) * leakFraction)
	return res.Finish(c, saveErr)
}

func (g *Gelly) chargeLoad(c *sim.Cluster, prof *sim.Profile, d *engine.Dataset, gr *graph.Graph, w engine.Workload) (int64, error) {
	m := c.Size()
	bytes := d.FileBytes(graph.FormatEdge)
	per := float64(bytes) / float64(m)
	parse := prof.RecordSeconds(float64(gr.NumEdges())*d.Scale/float64(m), c.Config().Cores)
	costs := make([]sim.StepCost, m)
	for i := range costs {
		costs[i] = sim.StepCost{
			ComputeSeconds: parse,
			DiskReadBytes:  per,
			NetSendBytes:   per * float64(m-1) / float64(m),
			NetRecvBytes:   per * float64(m-1) / float64(m),
		}
	}
	if err := c.RunStep(costs); err != nil {
		return 0, err
	}

	vf, ef := 1.0, 1.0
	if w.Kind == engine.WCC {
		// In-neighbor pre-computation (§5.8), lean enough that UK WCC
		// fits even at 16 machines, as the paper observed.
		vf, ef = 1.4, 1.3
	}
	memBytes := float64(gr.NumVertices())*d.Scale*prof.VertexBytes*vf +
		float64(gr.NumEdges())*d.Scale*prof.EdgeBytes*ef
	per2 := int64(memBytes/float64(m)*prof.Imbalance) +
		prof.PerMachineBase + int64(netBufferBytesPerMachine*int64(m))
	for i := 0; i < m; i++ {
		if err := c.Alloc(i, per2); err != nil {
			return per2, err
		}
	}
	return per2, nil
}

func configureWorkload(cfg *bsp.Config, w engine.Workload, d *engine.Dataset) {
	switch w.Kind {
	case engine.PageRank:
		cfg.Program = &bsp.PageRankProgram{Damping: w.Damping}
		cfg.Combine = bsp.SumCombine
		cfg.StopDeltaBelow = w.Tolerance
		cfg.FixedSupersteps = w.MaxIterations
	case engine.WCC:
		cfg.Program = bsp.WCCProgram{}
		cfg.Combine = bsp.MinCombine
		cfg.CombineFrom = 1
		cfg.UseInNeighbors = true
		cfg.TimeDilation = d.DilationFor(engine.WCC)
	case engine.SSSP:
		cfg.Program = &bsp.SSSPProgram{Source: d.Source}
		cfg.Combine = bsp.MinCombine
		cfg.TimeDilation = d.DilationFor(engine.SSSP)
	case engine.KHop:
		cfg.Program = &bsp.KHopProgram{Source: d.Source, K: w.K}
		cfg.Combine = bsp.MinCombine
	case engine.Triangle:
		oriented, rank := graph.ForwardOrient(cfg.Graph)
		cfg.Graph = oriented
		cfg.Program = &bsp.TriangleProgram{Rank: rank}
		cfg.Combine = bsp.SumCombine
		cfg.CombineFrom = 1
	case engine.LPA:
		cfg.Graph = cfg.Graph.Simple()
		cfg.Program = &bsp.LPAProgram{Rounds: w.LPAIterations()}
	}
	if w.MaxIterations > 0 && w.Kind != engine.PageRank && w.Kind != engine.LPA {
		cfg.MaxSupersteps = w.MaxIterations
	}
}

func dilatedIters(supersteps int, dil float64) int {
	if dil < 1 {
		dil = 1
	}
	return int(float64(supersteps)*dil + 0.5)
}

func fillOutputs(res *engine.Result, w engine.Workload, out *bsp.Output) {
	switch w.Kind {
	case engine.PageRank:
		res.Ranks = out.Values
	case engine.WCC:
		res.Labels = bsp.LabelsFromValues(out.Values)
	case engine.SSSP, engine.KHop:
		res.Dist = bsp.DistancesFromValues(out.Values)
	case engine.Triangle:
		res.Triangles = bsp.TrianglesFromValues(out.Values)
	case engine.LPA:
		res.Labels = bsp.CommunityLabelsFromValues(out.Values)
	}
}
