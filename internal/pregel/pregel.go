// Package pregel implements Giraph (§2.1.1): the open-source Pregel.
// It is a map-only Hadoop application, so every run pays Hadoop job
// startup/teardown that grows with cluster size (§5.5, §5.7); the graph
// is loaded fully into memory with random hash edge-cut partitioning;
// computation is vertex-centric BSP with message combiners; every
// superstep touches all owned vertex partitions, which puts a floor on
// per-iteration time (Table 6).
package pregel

import (
	"graphbench/internal/bsp"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// Profile is Giraph's cost profile. Calibration (paper Tables 6-10):
// per-vertex scan cost fitted to Table 6's WRN iteration times (6 s at
// 16 machines, 3 s at 32, including the 1.3x straggler factor); the
// memory model to Table 8's cluster totals (~192 GB for Twitter at 16
// machines, growing ~6 GB per added machine).
var Profile = sim.Profile{
	Name: "giraph", Lang: "Java",
	EdgeOpsPerSec:   60e6,
	VertexScanNs:    440,
	MsgCPUNs:        600,
	MsgBytes:        12,
	VertexBytes:     300,
	EdgeBytes:       60,
	MsgMemBytes:     16,
	PerMachineBase:  6 * sim.GB,
	Imbalance:       1.3,
	SuperstepFixed:  0.1,
	JobStartup:      15,
	JobStartupPerM:  0.5,
	PressurePenalty: 4,
}

// Giraph is the engine.
type Giraph struct {
	Profile sim.Profile
}

// New returns a Giraph engine with the default profile.
func New() *Giraph { return &Giraph{Profile: Profile} }

// Name implements engine.Engine.
func (g *Giraph) Name() string { return "giraph" }

// memFactors returns the workload-specific multipliers on vertex and
// edge memory: WCC materializes reverse edges and per-vertex neighbor
// sets (§5.8), roughly doubling both.
func memFactors(w engine.Workload) (vf, ef float64) {
	if w.Kind == engine.WCC {
		return 2.0, 2.4
	}
	return 1, 1
}

// Run implements engine.Engine.
func (g *Giraph) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: g.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	prof := g.Profile
	m := c.Size()

	// Job startup through the Hadoop resource manager.
	mark := c.Clock()
	if err := c.Advance(prof.StartupSeconds(m)); err != nil {
		res.Overhead = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Overhead = c.Clock() - mark

	// Load: read the adj file from HDFS, shuffle records to their hash
	// partition, build in-memory vertex/edge structures.
	mark = c.Clock()
	gr, err := d.LoadGraph(graph.FormatAdj)
	if err != nil {
		return res.Finish(c, err)
	}
	loaded, err := chargeLoad(c, &prof, d, gr, w)
	if err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	// Execute.
	mark = c.Clock()
	cut := partition.EdgeCut{M: m, Seed: 7}
	cfg := bsp.Config{
		Graph:           gr,
		Scale:           d.Scale,
		M:               m,
		MachineOf:       cut.MachineOf,
		Profile:         &prof,
		ScanAll:         true,
		Shards:          opt.Shards,
		Pool:            opt.Pool,
		RecordIterStats: true,
		CheckpointEvery: opt.CheckpointInterval(),
		Direction:       opt.Direction,
		Governor:        opt.Governor,
		ShardPlan:       opt.ShardPlan,
		MemoryTier:      opt.MemoryTier,
	}
	configureWorkload(&cfg, w, d, opt)
	out, err := bsp.Run(c, cfg)
	res.Exec = c.Clock() - mark
	res.Iterations = dilatedIterations(out.Supersteps, cfg.TimeDilation)
	res.Costs = out.Recovery
	res.Govern = out.Govern
	res.PerIteration = out.IterStats
	fillOutputs(res, w, out)
	if err != nil {
		return res.Finish(c, err)
	}

	// Save results to HDFS (one record per vertex).
	mark = c.Clock()
	resultBytes := int64(float64(gr.NumVertices()) * d.Scale * 16)
	if err := c.Advance(hdfs.WriteSeconds(resultBytes, m, c.Config().DiskBW, c.Config().NetBW)); err != nil {
		res.Save = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Save = c.Clock() - mark

	// Teardown: releasing containers back to Hadoop.
	mark = c.Clock()
	err = c.Advance(prof.StartupSeconds(m) * 0.4)
	res.Overhead += c.Clock() - mark
	c.FreeAll(loaded)
	return res.Finish(c, err)
}

// chargeLoad charges the read+shuffle+build time and the resident
// memory of the loaded graph; it returns the per-machine bytes held
// until the run ends.
func chargeLoad(c *sim.Cluster, prof *sim.Profile, d *engine.Dataset, gr *graph.Graph, w engine.Workload) (int64, error) {
	m := c.Size()
	bytes := d.FileBytes(graph.FormatAdj)
	perMachine := float64(bytes) / float64(m)
	costs := make([]sim.StepCost, m)
	parse := prof.EdgeSeconds(float64(gr.NumEdges())*d.Scale/float64(m), c.Config().Cores)
	for i := range costs {
		costs[i] = sim.StepCost{
			ComputeSeconds: parse,
			DiskReadBytes:  perMachine,
			NetSendBytes:   perMachine * float64(m-1) / float64(m),
			NetRecvBytes:   perMachine * float64(m-1) / float64(m),
		}
	}
	if err := c.RunStep(costs); err != nil {
		return 0, err
	}

	vf, ef := memFactors(w)
	graphBytes := float64(gr.NumVertices())*d.Scale*prof.VertexBytes*vf +
		float64(gr.NumEdges())*d.Scale*prof.EdgeBytes*ef
	perMachineMem := int64(graphBytes/float64(m)*prof.Imbalance) + prof.PerMachineBase
	for i := 0; i < m; i++ {
		if err := c.Alloc(i, perMachineMem); err != nil {
			return perMachineMem, err
		}
	}
	return perMachineMem, nil
}

// configureWorkload wires the §3 vertex programs into the BSP config.
func configureWorkload(cfg *bsp.Config, w engine.Workload, d *engine.Dataset, opt engine.Options) {
	switch w.Kind {
	case engine.PageRank:
		cfg.Program = &bsp.PageRankProgram{Damping: w.Damping}
		cfg.Combine = bsp.SumCombine
		cfg.StopDeltaBelow = w.Tolerance
		cfg.FixedSupersteps = w.MaxIterations
	case engine.WCC:
		cfg.Program = bsp.WCCProgram{}
		cfg.Combine = bsp.MinCombine
		cfg.CombineFrom = 1
		cfg.UseInNeighbors = true
		cfg.TimeDilation = d.DilationFor(engine.WCC)
	case engine.SSSP:
		cfg.Program = &bsp.SSSPProgram{Source: d.Source}
		cfg.Combine = bsp.MinCombine
		cfg.TimeDilation = d.DilationFor(engine.SSSP)
	case engine.KHop:
		cfg.Program = &bsp.KHopProgram{Source: d.Source, K: w.K}
		cfg.Combine = bsp.MinCombine
	case engine.Triangle:
		// The degree-ordered orientation replaces the loaded graph so
		// candidate message volume matches every other engine's; credits
		// (sent from superstep 1 on) may be sum-combined.
		oriented, rank := graph.ForwardOrient(cfg.Graph)
		cfg.Graph = oriented
		cfg.Program = &bsp.TriangleProgram{Rank: rank}
		cfg.Combine = bsp.SumCombine
		cfg.CombineFrom = 1
	case engine.LPA:
		// Synchronous rounds over the undirected simple view; no
		// combiner — label frequencies matter.
		cfg.Graph = cfg.Graph.Simple()
		cfg.Program = &bsp.LPAProgram{Rounds: w.LPAIterations()}
	}
	if opt.DisableCombiner {
		cfg.Combine = nil
	}
	if w.MaxIterations > 0 && w.Kind != engine.PageRank && w.Kind != engine.LPA {
		cfg.MaxSupersteps = w.MaxIterations
	}
}

// dilatedIterations reports iteration counts at paper scale.
func dilatedIterations(supersteps int, dilation float64) int {
	if dilation < 1 {
		dilation = 1
	}
	return int(float64(supersteps)*dilation + 0.5)
}

// fillOutputs maps BSP values onto the result's typed outputs.
func fillOutputs(res *engine.Result, w engine.Workload, out *bsp.Output) {
	switch w.Kind {
	case engine.PageRank:
		res.Ranks = out.Values
	case engine.WCC:
		res.Labels = bsp.LabelsFromValues(out.Values)
	case engine.SSSP, engine.KHop:
		res.Dist = bsp.DistancesFromValues(out.Values)
	case engine.Triangle:
		res.Triangles = bsp.TrianglesFromValues(out.Values)
	case engine.LPA:
		res.Labels = bsp.CommunityLabelsFromValues(out.Values)
	}
}
