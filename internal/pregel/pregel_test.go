package pregel

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/sim"
)

func TestAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 16, 1e-9, engine.Options{})
}

func TestWCCOnRoadNetworkNearTimeout(t *testing.T) {
	// §5.8: Giraph "succeeded to compute the WCC [on WRN] in almost 24
	// hours using the 64 machine cluster" — but timed out at 32.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	res := enginetest.RunOK(t, New(), f, 64, engine.NewWCC(), engine.Options{})
	enginetest.VerifyWCC(t, f, res)
	if res.Iterations < 10 {
		t.Errorf("WCC on a road network took only %d iterations; diameter should force many", res.Iterations)
	}
	if res.Exec < 6*3600 {
		t.Errorf("WRN WCC at 64 machines took %.0fs; paper reports nearly a full day", res.Exec)
	}
	at32 := New().Run(sim.NewSize(32), f.Dataset, engine.NewWCC(), engine.Options{})
	if at32.Status != sim.TO {
		t.Errorf("WRN WCC at 32 machines: status %v, want TO", at32.Status)
	}
}

func TestSSSPOnRoadNetworkTimesOut(t *testing.T) {
	// Table 6: Giraph SSSP on WRN needs <= 2.4 s/iteration to finish in
	// 24 hours but takes ~3 s at 32 machines (and ~6 s at 16), so both
	// cluster sizes time out.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	for _, m := range []int{16, 32} {
		res := New().Run(sim.NewSize(m), f.Dataset, engine.NewSSSP(f.Dataset.Source), engine.Options{})
		if res.Status != sim.TO {
			t.Errorf("WRN SSSP at %d machines: status %v, want TO", m, res.Status)
		}
	}
}

func TestTimeDecomposition(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	res := enginetest.RunOK(t, New(), f, 16, engine.NewPageRank(), engine.Options{})
	if res.Load <= 0 || res.Exec <= 0 || res.Save <= 0 || res.Overhead <= 0 {
		t.Fatalf("phase times missing: load=%v exec=%v save=%v overhead=%v",
			res.Load, res.Exec, res.Save, res.Overhead)
	}
	if res.TotalTime() <= res.Exec {
		t.Fatal("total must exceed execute")
	}
	if res.Iterations == 0 || res.NetBytes == 0 || res.MemTotal == 0 {
		t.Fatalf("resource accounting missing: %+v", res)
	}
}

func TestStartupOverheadGrowsWithCluster(t *testing.T) {
	// §5.5: Giraph spends more time requesting/releasing resources as
	// the cluster grows.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	small := enginetest.RunOK(t, New(), f, 16, engine.NewKHop(f.Dataset.Source), engine.Options{})
	large := enginetest.RunOK(t, New(), f, 128, engine.NewKHop(f.Dataset.Source), engine.Options{})
	if large.Overhead <= small.Overhead {
		t.Fatalf("overhead at 128 machines (%v) not above 16 machines (%v)", large.Overhead, small.Overhead)
	}
}

func TestTable8MemoryShape(t *testing.T) {
	// Table 8: total Giraph memory grows with cluster size for the
	// same dataset, and sits in the hundreds-of-GB range for Twitter.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	prev := int64(0)
	for _, m := range []int{16, 32, 64} {
		res := enginetest.RunOK(t, New(), f, m, engine.NewPageRankIters(3), engine.Options{})
		if res.MemTotal <= prev {
			t.Fatalf("total memory at %d machines (%d) not above smaller cluster (%d)", m, res.MemTotal, prev)
		}
		prev = res.MemTotal
	}
	// Paper: 191.5 GB at 16 machines. Accept a generous band.
	res := enginetest.RunOK(t, New(), f, 16, engine.NewPageRankIters(3), engine.Options{})
	gb := float64(res.MemTotal) / float64(sim.GB)
	if gb < 100 || gb > 350 {
		t.Errorf("Twitter@16 total memory = %.1f GB, want ~190 GB (Table 8)", gb)
	}
}

func TestUKWCCSmallClusterOOM(t *testing.T) {
	// §5.8: Giraph failed to load UK0705 for WCC on 16 and 32 machines
	// but succeeded at 64.
	f := enginetest.Prepare(t, datasets.UK, 400_000)
	for _, m := range []int{16, 32} {
		res := New().Run(sim.NewSize(m), f.Dataset, engine.NewWCC(), engine.Options{})
		if res.Status != sim.OOM {
			t.Errorf("UK WCC at %d machines: status %v, want OOM", m, res.Status)
		}
	}
	res := New().Run(sim.NewSize(64), f.Dataset, engine.NewWCC(), engine.Options{})
	if res.Status != sim.OK {
		t.Errorf("UK WCC at 64 machines: status %v, want OK", res.Status)
	}
}

func TestWRNWCCOOMAt16(t *testing.T) {
	// §5.8: Giraph failed to load WRN for WCC in the 16-machine cluster.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	res := New().Run(sim.NewSize(16), f.Dataset, engine.NewWCC(), engine.Options{})
	if res.Status != sim.OOM {
		t.Errorf("WRN WCC at 16 machines: status %v, want OOM", res.Status)
	}
}

func TestPerIterationStatsForTable6(t *testing.T) {
	// Measure per-iteration time the way the paper's Table 6 does:
	// over a bounded run (the full traversal times out by design).
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	w := engine.NewSSSP(f.Dataset.Source)
	w.MaxIterations = 5 // bounded: the full traversal times out by design
	res := enginetest.RunOK(t, New(), f, 32, w, engine.Options{})
	if len(res.PerIteration) < 3 {
		t.Fatalf("no per-iteration stats: %d", len(res.PerIteration))
	}
	// Table 6 mechanism: mid-run iterations cost roughly the full
	// vertex scan even with a tiny frontier (~3 s at 32 machines).
	mid := res.PerIteration[len(res.PerIteration)/2]
	if mid.Seconds < 1 || mid.Seconds > 10 {
		t.Errorf("mid iteration = %vs; want ~3 s (Table 6, Giraph SSSP on WRN at 32 machines)", mid.Seconds)
	}
}

func TestCombinerAblation(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	with := enginetest.RunOK(t, New(), f, 16, engine.NewPageRankIters(5), engine.Options{})
	without := enginetest.RunOK(t, New(), f, 16, engine.NewPageRankIters(5), engine.Options{DisableCombiner: true})
	if with.NetBytes >= without.NetBytes {
		t.Fatalf("combiner did not reduce network: %d >= %d", with.NetBytes, without.NetBytes)
	}
	enginetest.VerifyPageRank(t, f, without, engine.NewPageRankIters(5), 1e-9)
}

func TestFixedVsToleranceStopping(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	fixed := enginetest.RunOK(t, New(), f, 16, engine.NewPageRankIters(4), engine.Options{})
	if fixed.Iterations != 4 {
		t.Fatalf("fixed-iteration run did %d iterations, want 4", fixed.Iterations)
	}
	tol := enginetest.RunOK(t, New(), f, 16, engine.NewPageRank(), engine.Options{})
	if tol.Iterations <= 4 {
		t.Fatalf("tolerance run converged implausibly fast: %d iterations", tol.Iterations)
	}
}
