package harness

import (
	"fmt"
	"strings"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/graphx"
	"graphbench/internal/metrics"
	"graphbench/internal/par"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// Table1Systems renders the system feature matrix (Table 1).
func Table1Systems() string {
	rows := [][]string{
		{"Hadoop", "Disk", "BSP", "no", "Random", "Synchronous", "re-execution"},
		{"HaLoop", "Disk", "BSP-extension", "no", "Random", "Synchronous", "re-execution"},
		{"Giraph", "Memory", "Vertex-Centric", "no", "Random", "Synchronous", "global checkpoint"},
		{"GraphLab", "Memory", "Vertex-Centric", "no", "Random/Vertex-cut", "(A)synchronous", "global checkpoint"},
		{"Spark/GraphX", "Memory/Disk", "BSP-extension", "no", "Random/Vertex-cut", "Synchronous", "global checkpoint"},
		{"Blogel", "Memory", "Block-Centric", "no", "Voronoi/2D", "Synchronous", "global checkpoint"},
		{"Vertica", "Disk", "Relational", "yes (SQL)", "Random", "Synchronous", "N/A"},
		{"Flink Gelly", "Memory", "Stream/Dataflow", "no", "Random", "Synchronous", "global checkpoint"},
	}
	return "Table 1: Graph processing systems\n" + table(
		[]string{"System", "Memory/Disk", "Computing paradigm", "Declarative", "Partitioning", "Synchronization", "Fault tolerance"},
		rows)
}

// Table2Dimensions renders the experiment dimension summary (Table 2).
func Table2Dimensions() string {
	var sys []string
	for _, s := range core.Systems() {
		sys = append(sys, s.Label)
	}
	var kinds []string
	for _, k := range engine.ExtendedKinds() {
		kinds = append(kinds, k.String())
	}
	rows := [][]string{
		{"Systems", strings.Join(sys, ", ") + ", V"},
		{"Workloads", strings.Join(kinds, ", ")},
		{"Datasets", "Twitter, UK, ClueWeb, WRN"},
		{"Cluster Size", "16, 32, 64, 128"},
		{"Instance type", "r3.xlarge (4 cores, 30.5 GB, simulated)"},
	}
	return "Table 2: A summary of experiment dimensions (paper workloads + triangle/lpa extensions)\n" +
		table([]string{"Dimension", "Values"}, rows)
}

// Table3Datasets renders dataset characteristics (Table 3), measured on
// the synthetic analogues next to the paper's real values.
func Table3Datasets(scale float64, seed int64) string {
	var rows [][]string
	for _, name := range datasets.AllNames() {
		spec := datasets.SpecFor(name)
		g := datasets.Generate(name, datasets.Options{Scale: scale, Seed: seed})
		st := g.Stats()
		diam := graph.EstimateDiameter(g, 2, seed)
		rows = append(rows, []string{
			string(name),
			fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%.1f / %d", st.AvgOutDegree, st.MaxOutDegree),
			fmt.Sprintf("%d", diam),
			fmt.Sprintf("%.2g", float64(spec.PaperEdges)),
			fmt.Sprintf("%.1f / %.2g", spec.PaperAvgDeg, float64(spec.PaperMaxDeg)),
			fmt.Sprintf("%.4g", spec.PaperDiameter),
		})
	}
	return fmt.Sprintf("Table 3: Real graph datasets (synthetic analogues at scale 1/%g)\n", scale) +
		table([]string{"Dataset", "|E| syn", "Avg/Max deg syn", "Diam syn", "|E| paper", "Avg/Max paper", "Diam paper"}, rows)
}

// Table4Replication renders GraphLab's replication factors (Table 4):
// random vs auto partitioning per dataset and cluster size.
func Table4Replication(scale float64, seed int64) string {
	var rows [][]string
	for _, name := range []datasets.Name{datasets.Twitter, datasets.WRN, datasets.UK} {
		g := datasets.Generate(name, datasets.Options{Scale: scale, Seed: seed}).WithoutSelfEdges()
		for _, m := range core.ClusterSizes {
			random := partition.BuildVertexCut(g, m, partition.VCRandom, seed)
			auto := partition.BuildVertexCut(g, m, partition.AutoKind(m), seed)
			rows = append(rows, []string{
				string(name), fmt.Sprintf("%d", m),
				fmt.Sprintf("%.1f", random.ReplicationFactor()),
				fmt.Sprintf("%.1f (%s)", auto.ReplicationFactor(), partition.AutoKind(m)),
			})
		}
	}
	return "Table 4: The replication factor in GraphLab\n" +
		table([]string{"Dataset", "Cluster", "Random", "Auto"}, rows)
}

// Table5Partitions renders GraphX's partition counts (Table 5).
func Table5Partitions(r *core.Runner) string {
	var rows [][]string
	for _, name := range []datasets.Name{datasets.Twitter, datasets.WRN, datasets.UK} {
		d := r.Dataset(name)
		blocks := graphx.DefaultPartitions(d)
		row := []string{string(name), fmt.Sprintf("%d", blocks)}
		for _, m := range core.ClusterSizes {
			row = append(row, fmt.Sprintf("%d", graphx.TunedPartitions(d, m)))
		}
		rows = append(rows, row)
	}
	return "Table 5: Number of partitions for GraphX per cluster size\n" +
		table([]string{"Dataset", "#blocks", "16", "32", "64", "128"}, rows)
}

// Table6IterTime renders per-iteration times on WRN for Giraph and
// GraphX (Table 6), measured over a bounded run — the full traversals
// time out by design. The paper's thresholds: finishing SSSP (WCC) on
// WRN within 24 hours needs <= 2.4 s (1.8 s) per iteration.
func Table6IterTime(r *core.Runner) string {
	midIter := func(sysKey string, kind engine.Kind, machines int) string {
		s, err := core.SystemByKey(sysKey)
		if err != nil {
			return "?"
		}
		d := r.Dataset(datasets.WRN)
		w := r.Workload(kind, datasets.WRN)
		w.MaxIterations = 5
		opt := s.Opt
		if sysKey == "graphx" {
			opt.NumPartitions = graphx.TunedPartitions(d, machines)
		}
		res := s.New().Run(sim.NewSize(machines), d, w, r.MatrixOptions(opt))
		// The paper measured per-iteration times from the logs of runs
		// that ultimately failed (none of these finish on WRN); use
		// whatever iterations completed before the failure.
		if len(res.PerIteration) == 0 {
			return res.Status.String()
		}
		mid := res.PerIteration[len(res.PerIteration)/2]
		suffix := ""
		if res.Status != sim.OK {
			suffix = " (" + res.Status.String() + ")"
		}
		return fmt.Sprintf("%.1f%s", mid.Seconds, suffix)
	}
	// The eight cells are independent timed runs: fill them on the
	// runner's pool.
	machines := []int{16, 32}
	type cellSpec struct {
		sys  string
		kind engine.Kind
		m    int
	}
	var specs []cellSpec
	for _, m := range machines {
		specs = append(specs,
			cellSpec{"giraph", engine.SSSP, m}, cellSpec{"giraph", engine.WCC, m},
			cellSpec{"graphx", engine.SSSP, m}, cellSpec{"graphx", engine.WCC, m})
	}
	r.Dataset(datasets.WRN)
	cellVals := par.Map(r.Pool(), len(specs), func(i int) string {
		return midIter(specs[i].sys, specs[i].kind, specs[i].m)
	})
	var rows [][]string
	for i, m := range machines {
		rows = append(rows, append([]string{fmt.Sprintf("%d", m)}, cellVals[i*4:i*4+4]...))
	}
	return "Table 6: Seconds per iteration on WRN (paper @16: Giraph 6/OOM, GraphX 120/420; @32: 3/3.2, 17/30)\n" +
		table([]string{"Machines", "Giraph SSSP", "Giraph WCC", "GraphX SSSP", "GraphX WCC"}, rows)
}

// Table7ClueWeb renders Blogel-V's phase times on ClueWeb at 128
// machines (Table 7).
func Table7ClueWeb(r *core.Runner) string {
	s, _ := core.SystemByKey("blogel-v")
	kinds := engine.AllKinds()
	r.Dataset(datasets.ClueWeb)
	results := par.Map(r.Pool(), len(kinds), func(i int) *engine.Result {
		return r.Run(s, datasets.ClueWeb, kinds[i], 128)
	})
	var rows [][]string
	for i, kind := range kinds {
		res := results[i]
		if res.Status != sim.OK {
			rows = append(rows, []string{kind.String(), res.Status.String(), "", "", ""})
			continue
		}
		rows = append(rows, []string{
			kind.String(),
			fmt.Sprintf("%.1f", res.Load),
			fmt.Sprintf("%.1f", res.Exec),
			fmt.Sprintf("%.1f", res.Save),
			fmt.Sprintf("%.1f", res.Overhead),
		})
	}
	return "Table 7: Blogel-V on ClueWeb, 128 machines (seconds per phase; paper PR: 132.5/139.7/10.5/15.3)\n" +
		table([]string{"Workload", "Read", "Execute", "Save", "Others"}, rows)
}

// Table8GiraphMemory renders total Giraph memory across the cluster
// (Table 8). Failed loads are marked with their status.
func Table8GiraphMemory(r *core.Runner) string {
	s, _ := core.SystemByKey("giraph")
	names := []datasets.Name{datasets.Twitter, datasets.UK, datasets.WRN}
	sizes := core.ClusterSizes
	for _, name := range names {
		r.Dataset(name)
	}
	cells := par.Map(r.Pool(), len(names)*len(sizes), func(i int) string {
		d := r.Dataset(names[i/len(sizes)])
		m := sizes[i%len(sizes)]
		res := s.New().Run(sim.NewSize(m), d, engine.NewPageRankIters(3), r.MatrixOptions(s.Opt))
		if res.Status != sim.OK {
			return res.Status.String()
		}
		return metrics.FmtBytes(res.MemTotal)
	})
	var rows [][]string
	for i, name := range names {
		rows = append(rows, append([]string{string(name)}, cells[i*len(sizes):(i+1)*len(sizes)]...))
	}
	return "Table 8: Total Giraph memory across the cluster (paper Twitter: 191.5/323.6/606.4/923.5 GB)\n" +
		table([]string{"Dataset", "16", "32", "64", "128"}, rows)
}

// Table10WorkloadScaling is the first extension artifact beyond the
// paper: every workload — the paper's four plus triangle counting and
// LPA — against cluster size on Twitter, reporting the best completed
// system and its end-to-end time per cell. Triangle counting's
// quadratic candidate fan-out and LPA's non-shrinking rounds stress the
// engines differently from the traversal workloads, which is the point
// of the uniform-workload expansion.
func Table10WorkloadScaling(r *core.Runner) string {
	kinds := engine.ExtendedKinds()
	systems := core.MainGridSystems()
	var cells []core.Cell
	for _, kind := range kinds {
		for _, m := range core.ClusterSizes {
			for _, s := range systems {
				cells = append(cells, core.Cell{System: s, Dataset: datasets.Twitter, Kind: kind, Machines: m})
			}
		}
	}
	results := r.RunGrid(cells)
	var rows [][]string
	i := 0
	for _, kind := range kinds {
		row := []string{kind.String()}
		for range core.ClusterSizes {
			best := core.BestParallel(results[i : i+len(systems)])
			i += len(systems)
			if best == nil {
				row = append(row, "none")
				continue
			}
			row = append(row, fmt.Sprintf("%s %s", best.System, metrics.FmtSeconds(best.TotalTime())))
		}
		rows = append(rows, row)
	}
	return "Table 10: best system per workload x cluster size (Twitter, end-to-end seconds)\n" +
		table([]string{"Workload", "16", "32", "64", "128"}, rows)
}

// Table9COST renders the COST experiment (Table 9): single-thread GAP
// implementations versus the best parallel system at 16 machines.
func Table9COST(r *core.Runner) string {
	singles := func(name datasets.Name, kind engine.Kind) float64 {
		d := r.Dataset(name)
		g := datasets.Generate(name, datasets.Options{Scale: r.Scale, Seed: r.Seed})
		switch kind {
		case engine.PageRank:
			_, _, c := singlethread.PageRank(g, 0.15, 0.01, 0)
			return singlethread.ModeledSeconds(c, r.Scale)
		case engine.WCC:
			_, c := singlethread.WCC(g)
			return singlethread.ModeledSeconds(c, r.Scale)
		default:
			_, c := singlethread.SSSP(g, d.Source)
			return singlethread.ModeledSeconds(c, r.Scale)
		}
	}

	var rows [][]string
	for _, name := range []datasets.Name{datasets.Twitter, datasets.UK, datasets.WRN} {
		row := []string{string(name)}
		for _, kind := range []engine.Kind{engine.PageRank, engine.SSSP, engine.WCC} {
			var cells []core.Cell
			for _, s := range core.MainGridSystems() {
				cells = append(cells, core.Cell{System: s, Dataset: name, Kind: kind, Machines: 16})
			}
			best := core.BestParallel(r.RunGrid(cells))
			st := singles(name, kind)
			if best == nil {
				row = append(row, fmt.Sprintf("none / S=%.0fs", st))
				continue
			}
			row = append(row, fmt.Sprintf("%s=%.0fs / S=%.0fs (COST %.2f)",
				best.System, best.TotalTime(), st, st/best.TotalTime()))
		}
		rows = append(rows, row)
	}
	return "Table 9: COST — best parallel system at 16 machines (P) vs single thread (S)\n" +
		table([]string{"Dataset", "PageRank P/S", "SSSP P/S", "WCC P/S"}, rows)
}
