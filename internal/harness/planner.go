package harness

import (
	"fmt"
	"sort"
	"strings"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/metrics"
	"graphbench/internal/plan"
)

// plannerDatasets are the fixtures the planner artifact compares on:
// the power-law fixture and the uniform (road) fixture.
var plannerDatasets = []datasets.Name{datasets.Twitter, datasets.WRN}

// PlannerGrid renders the adaptive-planner acceptance artifact: the
// planner's total composite resource cost over the full workload grid
// (twitter + wrn × every workload × every cluster size) against every
// fixed system configuration, followed by the decision trace of every
// cell. Every number is a realized run — the fixed baselines execute
// the whole grid, and the planner's per-cell cost is the realized cost
// of its chosen system on that cell (shard count, shard plan,
// direction, and memory tier never change modeled cost, so one run
// covers every fixed shard variant of a system).
func PlannerGrid(r *core.Runner) string {
	kinds := engine.ExtendedKinds()
	fixed := core.MainGridSystems()

	// Assemble the run grid: the nine full-coverage systems on every
	// cell, plus the PageRank-only variants on the PageRank cells (the
	// planner may pick them there, as the paper's Figure 6 does).
	var cells []core.Cell
	for _, name := range plannerDatasets {
		for _, k := range kinds {
			systems := fixed
			if k == engine.PageRank {
				systems = core.Systems()
			}
			for _, m := range core.ClusterSizes {
				for _, s := range systems {
					cells = append(cells, core.Cell{System: s, Dataset: name, Kind: k, Machines: m})
				}
			}
		}
	}
	results := r.RunGrid(cells)
	byCell := make(map[string]metrics.Resource, len(results))
	for i, res := range results {
		c := cells[i]
		key := fmt.Sprintf("%s|%s|%s|%d", c.System.Key, c.Dataset, c.Kind, c.Machines)
		byCell[key] = metrics.ResourceOf(res)
	}

	// Decide every cell first (decisions are pure functions of the
	// profiles), then feed realized telemetry back.
	var decisions []*plan.Decision
	for _, name := range plannerDatasets {
		for _, k := range kinds {
			for _, m := range core.ClusterSizes {
				d, err := r.TryDecide(name, k, m)
				if err != nil {
					panic(err.Error())
				}
				decisions = append(decisions, d)
			}
		}
	}
	plannerTotal, plannerFails := 0.0, 0
	for _, d := range decisions {
		key := fmt.Sprintf("%s|%s|%s|%d", d.System, d.Request.Dataset, d.Request.Workload, d.Machines)
		rsc, ok := byCell[key]
		if !ok {
			panic("harness: planner chose a system outside the run grid: " + key)
		}
		r.Planner().Observe(d, rsc)
		plannerTotal += d.RealizedScore
		if !rsc.OK() {
			plannerFails++
		}
	}

	// Fixed-configuration totals over the same cells.
	type fixedRow struct {
		label string
		total float64
		fails int
	}
	var rows []fixedRow
	for _, s := range fixed {
		row := fixedRow{label: s.Label}
		for _, name := range plannerDatasets {
			for _, k := range kinds {
				for _, m := range core.ClusterSizes {
					rsc := byCell[fmt.Sprintf("%s|%s|%s|%d", s.Key, name, k, m)]
					row.total += plan.ResourceScore(rsc)
					if !rsc.OK() {
						row.fails++
					}
				}
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total < rows[j].total })

	beats := plannerTotal < rows[0].total
	out := [][]string{{
		"planner (adaptive)", fmt.Sprintf("%d", plannerFails),
		fmt.Sprintf("%.0f", plannerTotal), "--",
	}}
	for _, row := range rows {
		out = append(out, []string{
			"fixed " + row.label, fmt.Sprintf("%d", row.fails),
			fmt.Sprintf("%.0f", row.total),
			fmt.Sprintf("%+.0f", row.total-plannerTotal),
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Planner grid: adaptive vs fixed configurations (%d cells: twitter+wrn x %d workloads x %v machines)\n",
		len(decisions), len(kinds), core.ClusterSizes)
	b.WriteString("Composite cost per cell: time + 0.05*memGB + 0.05*netGB + 0.01*machines*time; failures cost 86400s.\n")
	b.WriteString("Modeled cost is shard-invariant, so each fixed row covers every shard count of that system.\n")
	b.WriteString(table([]string{"Config", "Fails", "Total cost (s)", "vs planner"}, out))
	fmt.Fprintf(&b, "planner beats every fixed configuration: %v\n", beats)
	b.WriteString("\nDecision traces:\n")
	for _, d := range decisions {
		b.WriteString(d.Trace())
	}
	return b.String()
}
