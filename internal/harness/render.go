// Package harness regenerates every table and figure of the paper's
// evaluation section from experiment runs on the simulated cluster.
// Each function returns the rendered artifact as text; the benchmarks
// in bench_test.go and cmd/graphbench print them.
package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"graphbench/internal/engine"
	"graphbench/internal/metrics"
	"graphbench/internal/sim"
)

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	fmt.Fprintln(tw, strings.Join(underline(header), "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return b.String()
}

func underline(header []string) []string {
	out := make([]string, len(header))
	for i, h := range header {
		out[i] = strings.Repeat("-", len(h))
	}
	return out
}

// cellTime formats a result the way the paper's charts label bars:
// total seconds for completions, the failure code otherwise.
func cellTime(res *engine.Result) string {
	if res == nil {
		return "-"
	}
	if res.Status != sim.OK {
		return res.Status.String()
	}
	return metrics.FmtSeconds(res.TotalTime())
}

// cellPhases formats the load/execute/save/overhead decomposition.
func cellPhases(res *engine.Result) string {
	if res == nil {
		return "-"
	}
	if res.Status != sim.OK {
		return res.Status.String()
	}
	return fmt.Sprintf("L%s E%s S%s O%s",
		metrics.FmtSeconds(res.Load), metrics.FmtSeconds(res.Exec),
		metrics.FmtSeconds(res.Save), metrics.FmtSeconds(res.Overhead))
}

// barLine renders one labeled horizontal bar.
func barLine(label string, value, max float64, width int, suffix string) string {
	return fmt.Sprintf("%-12s %-*s %s", label, width, metrics.Bar(value, max, width), suffix)
}
