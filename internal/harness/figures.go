package harness

import (
	"fmt"
	"strings"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/graphx"
	"graphbench/internal/metrics"
	"graphbench/internal/par"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// Figure1Cores reproduces Figure 1: GraphLab PageRank (30 iterations,
// Twitter, 16 machines) with the default two reserved communication
// cores versus all four cores, sync and async.
func Figure1Cores(r *core.Runner) string {
	run := func(async, allCores bool) *engine.Result {
		s, _ := core.SystemByKey("gl-s-r-i")
		d := r.Dataset(datasets.Twitter)
		w := engine.NewPageRankIters(30)
		opt := engine.Options{Async: async, UseAllCores: allCores}
		return s.New().Run(sim.NewSize(16), d, w, r.MatrixOptions(opt))
	}
	configs := []struct {
		label           string
		async, allCores bool
	}{
		{"sync/2cores", false, false},
		{"sync/4cores", false, true},
		{"async/2cores", true, false},
		{"async/4cores", true, true},
	}
	var b strings.Builder
	b.WriteString("Figure 1: GraphLab cores for computation (PageRank x30, Twitter, 16 machines)\n")
	r.Dataset(datasets.Twitter)
	times := par.Map(r.Pool(), len(configs), func(i int) float64 {
		return run(configs[i].async, configs[i].allCores).Exec
	})
	max := 0.0
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	for i, c := range configs {
		b.WriteString(barLine(c.label, times[i], max, 40, metrics.FmtSeconds(times[i])) + "\n")
	}
	return b.String()
}

// Figure2PartitionSweep reproduces Figure 2: GraphX execution time as a
// function of the partition count, for Twitter and UK at 32/64/128
// machines. The default (#blocks) is marked.
func Figure2PartitionSweep(r *core.Runner) string {
	var b strings.Builder
	b.WriteString("Figure 2: GraphX performance vs number of partitions (PageRank x10)\n")
	s, _ := core.SystemByKey("graphx")
	for _, name := range []datasets.Name{datasets.Twitter, datasets.UK} {
		d := r.Dataset(name)
		def := graphx.DefaultPartitions(d)
		sweep := []int{64, 128, 256, 512, 1024, def}
		for _, m := range []int{32, 64, 128} {
			fmt.Fprintf(&b, "  %s @ %d machines (default=%d partitions):\n", name, m, def)
			times := par.Map(r.Pool(), len(sweep), func(i int) float64 {
				w := engine.NewPageRankIters(10)
				res := s.New().Run(sim.NewSize(m), d, w,
					r.MatrixOptions(engine.Options{NumPartitions: sweep[i]}))
				if res.Status != sim.OK {
					return 0
				}
				return res.Exec
			})
			max := 0.0
			for _, t := range times {
				if t > max {
					max = t
				}
			}
			for i, p := range sweep {
				label := fmt.Sprintf("p=%d", p)
				if p == def {
					label += "*"
				}
				suffix := metrics.FmtSeconds(times[i])
				if times[i] == 0 {
					suffix = "failed"
				}
				b.WriteString("    " + barLine(label, times[i], max, 36, suffix) + "\n")
			}
		}
	}
	return b.String()
}

// Figure3BlogelNoHDFS reproduces Figure 3: Blogel-B WCC on 16 machines
// with and without the HDFS round-trip between partitioning and
// execution.
func Figure3BlogelNoHDFS(r *core.Runner) string {
	s, _ := core.SystemByKey("blogel-b")
	std := r.Run(s, datasets.Twitter, engine.WCC, 16)
	mod := s.New().Run(sim.NewSize(16), r.Dataset(datasets.Twitter), r.Workload(engine.WCC, datasets.Twitter),
		r.MatrixOptions(engine.Options{SkipHDFSRoundTrip: true}))
	var b strings.Builder
	b.WriteString("Figure 3: modified Blogel-B (no HDFS round-trip), WCC, Twitter, 16 machines\n")
	max := std.TotalTime()
	b.WriteString(barLine("standard", std.TotalTime(), max, 40, cellPhases(std)) + "\n")
	b.WriteString(barLine("modified", mod.TotalTime(), max, 40, cellPhases(mod)) + "\n")
	reduction := (std.TotalTime() - mod.TotalTime()) / std.TotalTime() * 100
	fmt.Fprintf(&b, "end-to-end reduction: %.0f%% (paper: ~50%%)\n", reduction)
	return b.String()
}

// Figure4ApproxPR reproduces Figure 4: percentage of updated vertices
// per iteration, approximate versus exact PageRank (GraphLab).
func Figure4ApproxPR(r *core.Runner) string {
	var b strings.Builder
	b.WriteString("Figure 4: % of vertices updated per iteration, approximate vs exact PageRank\n")
	s, _ := core.SystemByKey("gl-s-r-t")
	// Cluster sizes where GraphLab-random can load each dataset: WRN
	// and UK do not fit small clusters (§5.2).
	machinesFor := map[datasets.Name]int{datasets.Twitter: 16, datasets.UK: 64, datasets.WRN: 32}
	names := []datasets.Name{datasets.Twitter, datasets.UK, datasets.WRN}
	for _, name := range names {
		r.Dataset(name)
	}
	runs := par.Map(r.Pool(), len(names), func(i int) *engine.Result {
		name := names[i]
		return s.New().Run(sim.NewSize(machinesFor[name]), r.Dataset(name),
			engine.NewPageRank(), r.MatrixOptions(engine.Options{Approximate: true}))
	})
	for i, name := range names {
		approx := runs[i]
		if approx.Status != sim.OK {
			fmt.Fprintf(&b, "  %s: %s\n", name, approx.Status)
			continue
		}
		n := 0
		for _, st := range approx.PerIteration {
			if st.Active > n {
				n = st.Active
			}
		}
		fmt.Fprintf(&b, "  %s (exact updates 100%% every iteration):\n", name)
		for i, st := range approx.PerIteration {
			if i >= 10 {
				fmt.Fprintf(&b, "    ... %d more iterations\n", len(approx.PerIteration)-i)
				break
			}
			pct := float64(st.Active) / float64(n) * 100
			b.WriteString("    " + barLine(fmt.Sprintf("iter %d", st.Iteration), pct, 100, 30,
				fmt.Sprintf("%.0f%%", pct)) + "\n")
		}
	}
	return b.String()
}

// mainGrid renders one of the Figures 5–9 grids: systems × cluster
// sizes for a workload and dataset, with phase decomposition and the
// single-thread reference.
func mainGrid(r *core.Runner, kind engine.Kind, names []datasets.Name, title string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	systems := core.MainGridSystems()
	if kind == engine.PageRank {
		systems = core.Systems()
	}
	for _, name := range names {
		st := singleThreadSeconds(r, name, kind)
		fmt.Fprintf(&b, "  %s (single thread: %s)\n", name, metrics.FmtSeconds(st))
		var cells []core.Cell
		for _, m := range core.ClusterSizes {
			for _, s := range systems {
				cells = append(cells, core.Cell{System: s, Dataset: name, Kind: kind, Machines: m})
			}
		}
		results := r.RunGrid(cells)
		i := 0
		for _, m := range core.ClusterSizes {
			fmt.Fprintf(&b, "    %d machines:\n", m)
			max := 0.0
			for j := range systems {
				if res := results[i+j]; res != nil && res.Status == sim.OK && res.TotalTime() > max {
					max = res.TotalTime()
				}
			}
			for _, s := range systems {
				res := results[i]
				i++
				val := 0.0
				if res != nil && res.Status == sim.OK {
					val = res.TotalTime()
				}
				b.WriteString("      " + barLine(s.Label, val, max, 30, cellPhases(res)) + "\n")
			}
		}
	}
	return b.String()
}

func singleThreadSeconds(r *core.Runner, name datasets.Name, kind engine.Kind) float64 {
	g := datasets.Generate(name, datasets.Options{Scale: r.Scale, Seed: r.Seed})
	d := r.Dataset(name)
	switch kind {
	case engine.PageRank:
		_, _, c := singlethread.PageRank(g, 0.15, 0.01, 0)
		return singlethread.ModeledSeconds(c, r.Scale)
	case engine.WCC:
		_, c := singlethread.WCC(g)
		return singlethread.ModeledSeconds(c, r.Scale)
	case engine.SSSP:
		_, c := singlethread.SSSP(g, d.Source)
		return singlethread.ModeledSeconds(c, r.Scale)
	default:
		_, c := singlethread.KHop(g, d.Source, 3)
		return singlethread.ModeledSeconds(c, r.Scale)
	}
}

// Figure5Twitter reproduces Figure 5: Twitter across K-hop, WCC and
// SSSP for all systems and cluster sizes.
func Figure5Twitter(r *core.Runner) string {
	var b strings.Builder
	for _, kind := range []engine.Kind{engine.KHop, engine.WCC, engine.SSSP} {
		b.WriteString(mainGrid(r, kind, []datasets.Name{datasets.Twitter},
			fmt.Sprintf("Figure 5 (%s): Twitter results", kind)))
	}
	return b.String()
}

// Figure6PageRank reproduces Figure 6: PageRank over WRN, UK and
// Twitter for all systems (including the six GraphLab variants).
func Figure6PageRank(r *core.Runner) string {
	return mainGrid(r, engine.PageRank,
		[]datasets.Name{datasets.WRN, datasets.UK, datasets.Twitter},
		"Figure 6: PageRank query results")
}

// Figure7KHop reproduces Figure 7.
func Figure7KHop(r *core.Runner) string {
	return mainGrid(r, engine.KHop,
		[]datasets.Name{datasets.WRN, datasets.UK, datasets.Twitter},
		"Figure 7: K-hop query results")
}

// Figure8SSSP reproduces Figure 8.
func Figure8SSSP(r *core.Runner) string {
	return mainGrid(r, engine.SSSP,
		[]datasets.Name{datasets.WRN, datasets.UK, datasets.Twitter},
		"Figure 8: SSSP query results")
}

// Figure9WCC reproduces Figure 9.
func Figure9WCC(r *core.Runner) string {
	return mainGrid(r, engine.WCC,
		[]datasets.Name{datasets.WRN, datasets.UK, datasets.Twitter},
		"Figure 9: WCC query results")
}

// Figure10AsyncMemory reproduces Figure 10: per-worker memory timelines
// of GraphLab sync vs async PageRank on WRN at 128 machines.
func Figure10AsyncMemory(r *core.Runner) string {
	d := r.Dataset(datasets.WRN)
	s, _ := core.SystemByKey("gl-s-r-t")
	var b strings.Builder
	b.WriteString("Figure 10: GraphLab memory per worker, PageRank on WRN, 128 machines\n")
	modes := []struct {
		label string
		async bool
	}{{"synchronous", false}, {"asynchronous", true}}
	runs := par.Map(r.Pool(), len(modes), func(i int) *engine.Result {
		return s.New().Run(sim.NewSize(128), d, engine.NewPageRank(),
			r.MatrixOptions(engine.Options{Async: modes[i].async, SampleMemory: true}))
	})
	for i, mode := range modes {
		res := runs[i]
		fmt.Fprintf(&b, "  %s (status %s):\n", mode.label, res.Status)
		samples := res.MemTimeline
		stride := len(samples)/8 + 1
		for i := 0; i < len(samples); i += stride {
			smp := samples[i]
			var maxMem int64
			for _, m := range smp.PerMach {
				if m > maxMem {
					maxMem = m
				}
			}
			b.WriteString("    " + barLine(fmt.Sprintf("t=%s", metrics.FmtSeconds(smp.Time)),
				float64(maxMem), float64(32*sim.GB), 30, metrics.FmtBytes(maxMem)) + "\n")
		}
	}
	return b.String()
}

// Figure11Imbalance reproduces Figure 11: the distribution of 1200
// partitions over 128 machines under Spark's placement.
func Figure11Imbalance(seed int64) string {
	counts := partition.SparkPlacement(1200, 128, seed)
	hist := map[int]int{} // partitions-per-machine -> machines
	maxC := 0
	for _, c := range counts {
		bucket := c / 5 * 5
		hist[bucket]++
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	b.WriteString("Figure 11: GraphX partition placement, 1200 partitions on 128 machines\n")
	fmt.Fprintf(&b, "  balanced would be %.1f per machine; most loaded machine has %d (paper: 54)\n",
		1200.0/128, maxC)
	for bucket := 0; bucket <= maxC; bucket += 5 {
		if n := hist[bucket]; n > 0 {
			b.WriteString("  " + barLine(fmt.Sprintf("%d-%d", bucket, bucket+4),
				float64(n), 128, 40, fmt.Sprintf("%d machines", n)) + "\n")
		}
	}
	return b.String()
}

// Figure12Vertica reproduces Figure 12: Vertica vs the graph systems on
// UK at 32 machines — SSSP (116 iterations at paper scale) and 55
// iterations of PageRank.
func Figure12Vertica(r *core.Runner) string {
	systems := []core.System{core.Vertica()}
	for _, key := range []string{"blogel-v", "giraph", "gl-s-r-i", "graphx"} {
		s, _ := core.SystemByKey(key)
		systems = append(systems, s)
	}
	var b strings.Builder
	b.WriteString("Figure 12: Vertica vs graph systems, UK, 32 machines\n")
	for _, spec := range []struct {
		label string
		kind  engine.Kind
		iters int
	}{{"SSSP", engine.SSSP, 0}, {"PageRank x55", engine.PageRank, 55}} {
		fmt.Fprintf(&b, "  %s:\n", spec.label)
		r.Dataset(datasets.UK)
		results := par.Map(r.Pool(), len(systems), func(i int) *engine.Result {
			s := systems[i]
			d := r.Dataset(datasets.UK)
			w := r.Workload(spec.kind, datasets.UK)
			if spec.iters > 0 {
				w = engine.NewPageRankIters(spec.iters)
			}
			opt := s.Opt
			if s.Key == "graphx" {
				opt.NumPartitions = graphx.TunedPartitions(d, 32)
			}
			return s.New().Run(sim.NewSize(32), d, w, r.MatrixOptions(opt))
		})
		max := 0.0
		for _, res := range results {
			if res.Status == sim.OK && res.TotalTime() > max {
				max = res.TotalTime()
			}
		}
		for i, s := range systems {
			val := 0.0
			if results[i].Status == sim.OK {
				val = results[i].TotalTime()
			}
			b.WriteString("    " + barLine(s.Label, val, max, 36, cellTime(results[i])) + "\n")
		}
	}
	return b.String()
}

// Figure13VerticaResources reproduces Figure 13: how Vertica uses
// resources versus the graph systems while computing 55 iterations of
// PageRank on UK with 64 machines — max user/I-O CPU, memory footprint,
// and network usage.
func Figure13VerticaResources(r *core.Runner) string {
	systems := []core.System{core.Vertica()}
	for _, key := range []string{"blogel-v", "giraph", "gl-s-r-i"} {
		s, _ := core.SystemByKey(key)
		systems = append(systems, s)
	}
	var b strings.Builder
	b.WriteString("Figure 13: resource usage, PageRank x55, UK, 64 machines\n")
	b.WriteString(fmt.Sprintf("  %-10s %12s %12s %14s %12s\n", "system", "user CPU", "I/O wait", "mem footprint", "network"))
	r.Dataset(datasets.UK)
	runs := par.Map(r.Pool(), len(systems), func(i int) *engine.Result {
		return systems[i].New().Run(sim.NewSize(64), r.Dataset(datasets.UK),
			engine.NewPageRankIters(55), r.MatrixOptions(systems[i].Opt))
	})
	for i, s := range systems {
		res := runs[i]
		if res.Status != sim.OK {
			fmt.Fprintf(&b, "  %-10s %s\n", s.Label, res.Status)
			continue
		}
		fmt.Fprintf(&b, "  %-10s %12s %12s %14s %12s\n", s.Label,
			metrics.FmtSeconds(res.CPUUser), metrics.FmtSeconds(res.CPUIO),
			metrics.FmtBytes(res.MemMax), metrics.FmtBytes(res.NetBytes))
	}
	return b.String()
}
