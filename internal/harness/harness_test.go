package harness

import (
	"strings"
	"testing"

	"graphbench/internal/core"
)

// testRunner uses a coarse scale so the full-grid figures stay fast.
func testRunner() *core.Runner { return core.NewRunner(400_000, 1) }

func TestStaticTables(t *testing.T) {
	if out := Table1Systems(); !strings.Contains(out, "Blogel") || !strings.Contains(out, "Vertica") {
		t.Errorf("Table 1 incomplete:\n%s", out)
	}
	if out := Table2Dimensions(); !strings.Contains(out, "Cluster Size") {
		t.Errorf("Table 2 incomplete:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	out := Table3Datasets(400_000, 1)
	for _, want := range []string{"twitter", "wrn", "uk200705", "clueweb", "4.8e+04"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4ReplicationShape(t *testing.T) {
	out := Table4Replication(400_000, 1)
	if !strings.Contains(out, "grid") || !strings.Contains(out, "oblivious") {
		t.Errorf("Table 4 should name the auto strategies:\n%s", out)
	}
}

func TestTable5(t *testing.T) {
	out := Table5Partitions(testRunner())
	if !strings.Contains(out, "1024") {
		t.Errorf("Table 5 missing the UK@128 tuned value:\n%s", out)
	}
}

func TestTable6(t *testing.T) {
	out := Table6IterTime(testRunner())
	if !strings.Contains(out, "Giraph SSSP") {
		t.Errorf("Table 6 malformed:\n%s", out)
	}
}

func TestTable7(t *testing.T) {
	out := Table7ClueWeb(core.NewRunner(10_000_000, 1))
	for _, w := range []string{"pagerank", "wcc", "sssp", "khop"} {
		if !strings.Contains(out, w) {
			t.Errorf("Table 7 missing %s:\n%s", w, out)
		}
	}
	if strings.Contains(out, "OOM") {
		t.Errorf("Blogel-V should complete every ClueWeb workload (Table 7):\n%s", out)
	}
}

func TestTable8(t *testing.T) {
	out := Table8GiraphMemory(testRunner())
	if !strings.Contains(out, "GB") {
		t.Errorf("Table 8 has no memory values:\n%s", out)
	}
}

func TestTable9COST(t *testing.T) {
	out := Table9COST(testRunner())
	if !strings.Contains(out, "COST") || !strings.Contains(out, "S=") {
		t.Errorf("Table 9 malformed:\n%s", out)
	}
}

func TestTable10WorkloadScaling(t *testing.T) {
	out := Table10WorkloadScaling(testRunner())
	for _, w := range []string{"pagerank", "wcc", "sssp", "khop", "triangle", "lpa"} {
		if !strings.Contains(out, w) {
			t.Errorf("Table 10 missing workload %s:\n%s", w, out)
		}
	}
	// Every Twitter cell completes at this scale: each row must name a
	// winning system label, never a "none" placeholder.
	if strings.Contains(out, "none") {
		t.Errorf("Table 10 has empty cells on Twitter:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	out := Figure1Cores(testRunner())
	if !strings.Contains(out, "sync/4cores") {
		t.Errorf("Figure 1 malformed:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	out := Figure3BlogelNoHDFS(testRunner())
	if !strings.Contains(out, "reduction") {
		t.Errorf("Figure 3 malformed:\n%s", out)
	}
}

func TestFigure4(t *testing.T) {
	out := Figure4ApproxPR(testRunner())
	if !strings.Contains(out, "iter 1") {
		t.Errorf("Figure 4 malformed:\n%s", out)
	}
}

func TestFigure10(t *testing.T) {
	out := Figure10AsyncMemory(testRunner())
	if !strings.Contains(out, "asynchronous") || !strings.Contains(out, "OOM") {
		t.Errorf("Figure 10 should show the async OOM:\n%s", out)
	}
}

func TestFigure11(t *testing.T) {
	out := Figure11Imbalance(1)
	if !strings.Contains(out, "most loaded machine") {
		t.Errorf("Figure 11 malformed:\n%s", out)
	}
}

func TestFigure12(t *testing.T) {
	out := Figure12Vertica(testRunner())
	if !strings.Contains(out, "PageRank x55") || !strings.Contains(out, "V ") {
		t.Errorf("Figure 12 malformed:\n%s", out)
	}
}

func TestFigure13(t *testing.T) {
	out := Figure13VerticaResources(testRunner())
	if !strings.Contains(out, "I/O wait") {
		t.Errorf("Figure 13 malformed:\n%s", out)
	}
}

// TestPaperFindings asserts the headline claims of §1 hold in the
// regenerated main grid at a representative point.
func TestPaperFindings(t *testing.T) {
	r := testRunner()

	// "Blogel is the overall winner": BV has the best end-to-end time
	// for Twitter PageRank at 16 machines among completions.
	var cells []core.Cell
	for _, s := range core.MainGridSystems() {
		cells = append(cells, core.Cell{System: s, Dataset: "twitter", Kind: 0, Machines: 16})
	}
	best := core.BestParallel(r.RunGrid(cells))
	if best == nil || best.System != "BV" {
		got := "none"
		if best != nil {
			got = best.System
		}
		t.Errorf("best Twitter PageRank system = %s, want BV", got)
	}
}
