// Package sim models the shared-nothing cluster on which every engine in
// this repository runs: N machines of the paper's EC2 r3.xlarge shape
// (4 cores, 30.5 GB, SSD, 1 GbE), a simulated clock, a per-machine
// memory ledger, and CPU/disk/network accounting.
//
// Engines perform real computation on the synthetic graphs but charge
// modeled resources here. The charges are expressed at paper scale
// (engines multiply counts by the dataset's ScaleFactor), so modeled
// times and memory are directly comparable to the paper's reported
// values, and the paper's failure matrix — OOM when a machine's ledger
// exceeds capacity, TO at the 24-hour timeout — falls out of the same
// mechanics that produced it on the real clusters.
package sim

import "fmt"

// Hardware constants of the paper's instance type (§4.1).
const (
	CoresPerMachine  = 4
	MemoryPerMachine = int64(30.5 * float64(GB))

	// GB is 2^30 bytes.
	GB = 1 << 30
	// MB is 2^20 bytes.
	MB = 1 << 20

	// TimeoutSeconds is the paper's 24-hour execution cap (§5).
	TimeoutSeconds = 24 * 3600.0
)

// Config describes a cluster.
type Config struct {
	Machines    int
	Cores       int     // per machine
	MemoryBytes int64   // per machine
	NetBW       float64 // bytes/sec per machine NIC
	DiskBW      float64 // bytes/sec per machine SSD
	BarrierLat  float64 // seconds per global synchronization barrier
	Timeout     float64 // seconds of simulated time before TO
}

// NewConfig returns the r3.xlarge cluster of the paper with n machines.
func NewConfig(n int) Config {
	return Config{
		Machines:    n,
		Cores:       CoresPerMachine,
		MemoryBytes: MemoryPerMachine,
		NetBW:       120 * float64(MB), // ~1 GbE effective
		DiskBW:      250 * float64(MB), // SSD sequential
		BarrierLat:  0.05,
		Timeout:     TimeoutSeconds,
	}
}

// Machine is one cluster node. All quantities are modeled (paper-scale).
type Machine struct {
	ID int

	memUsed int64
	memPeak int64

	CPUUser float64 // seconds spent computing
	CPUIO   float64 // seconds waiting on disk
	CPUNet  float64 // seconds waiting on network
	CPUIdle float64 // seconds waiting at barriers

	NetSent   int64
	NetRecv   int64
	DiskRead  int64
	DiskWrite int64
}

// MemUsed returns the machine's current modeled allocation.
func (m *Machine) MemUsed() int64 { return m.memUsed }

// MemPeak returns the machine's peak modeled allocation.
func (m *Machine) MemPeak() int64 { return m.memPeak }

// Cluster is a simulated shared-nothing cluster.
type Cluster struct {
	cfg      Config
	clock    float64
	machines []*Machine
	samples  []MemSample
	sampling bool
	busy     []float64 // RunStep scratch, reused so steps allocate nothing
	injector Injector
}

// Injector decides whether a fault occurs at a superstep/job boundary.
// Engines cross boundaries via Cluster.Boundary; internal/chaos
// provides seeded, deterministic, one-shot injectors.
type Injector interface {
	// NextFault is consulted once per boundary crossing with the
	// engine's boundary index (superstep for BSP engines, job index for
	// MapReduce chains, iteration or stage for GraphX) and the cluster
	// size. It returns the failure to inject, or nil.
	NextFault(boundary, machines int) *Failure
}

// SetInjector installs a fault injector the cluster consults at every
// Boundary crossing. A nil injector (the default) disables injection.
func (c *Cluster) SetInjector(inj Injector) { c.injector = inj }

// Boundary marks the end of superstep/job/stage boundary i — the
// points where a machine failure is detectable and, for systems with
// fault tolerance, survivable. It returns the injected failure, if the
// installed injector chose this boundary, and nil otherwise.
func (c *Cluster) Boundary(i int) error {
	if c.injector == nil {
		return nil
	}
	if f := c.injector.NextFault(i, len(c.machines)); f != nil {
		return f
	}
	return nil
}

// MemSample is a point-in-time snapshot of per-machine memory, used for
// the paper's memory-timeline figures (Figure 10).
type MemSample struct {
	Time    float64
	PerMach []int64
}

// New creates a cluster from cfg.
func New(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		panic("sim: cluster needs at least one machine")
	}
	c := &Cluster{cfg: cfg}
	c.machines = make([]*Machine, cfg.Machines)
	for i := range c.machines {
		c.machines[i] = &Machine{ID: i}
	}
	return c
}

// NewSize creates the paper's cluster with n machines.
func NewSize(n int) *Cluster { return New(NewConfig(n)) }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// TotalCores returns cores across the cluster.
func (c *Cluster) TotalCores() int { return c.cfg.Cores * len(c.machines) }

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine { return c.machines[i] }

// Machines returns all machines. The slice must not be modified.
func (c *Cluster) Machines() []*Machine { return c.machines }

// Clock returns the simulated time in seconds.
func (c *Cluster) Clock() float64 { return c.clock }

// EnableSampling turns on per-step memory snapshots.
func (c *Cluster) EnableSampling() { c.sampling = true }

// Samples returns the collected memory snapshots.
func (c *Cluster) Samples() []MemSample { return c.samples }

// Sample records a memory snapshot at the current clock if sampling is on.
func (c *Cluster) Sample() {
	if !c.sampling {
		return
	}
	per := make([]int64, len(c.machines))
	for i, m := range c.machines {
		per[i] = m.memUsed
	}
	c.samples = append(c.samples, MemSample{Time: c.clock, PerMach: per})
}

// Alloc charges bytes of modeled memory to machine i, failing with an
// OOM Failure when the machine exceeds capacity — the paper's most
// common failure mode.
func (c *Cluster) Alloc(i int, bytes int64) error {
	m := c.machines[i]
	m.memUsed += bytes
	if m.memUsed > m.memPeak {
		m.memPeak = m.memUsed
	}
	if m.memUsed > c.cfg.MemoryBytes {
		return &Failure{Status: OOM, Machine: i,
			Detail: fmt.Sprintf("allocated %.1f GB > %.1f GB capacity",
				float64(m.memUsed)/float64(GB), float64(c.cfg.MemoryBytes)/float64(GB))}
	}
	return nil
}

// AllocAll charges the same number of bytes on every machine.
func (c *Cluster) AllocAll(bytes int64) error {
	for i := range c.machines {
		if err := c.Alloc(i, bytes); err != nil {
			return err
		}
	}
	return nil
}

// Free releases modeled memory on machine i. Releasing more than is held
// clamps to zero; the ledger is a model, not an allocator.
func (c *Cluster) Free(i int, bytes int64) {
	m := c.machines[i]
	m.memUsed -= bytes
	if m.memUsed < 0 {
		m.memUsed = 0
	}
}

// FreeAll releases bytes on every machine.
func (c *Cluster) FreeAll(bytes int64) {
	for i := range c.machines {
		c.Free(i, bytes)
	}
}

// ResetMemory zeroes current usage on all machines (peak is kept).
func (c *Cluster) ResetMemory() {
	for _, m := range c.machines {
		m.memUsed = 0
	}
}

// TotalMemPeak sums peak memory across machines (Table 8).
func (c *Cluster) TotalMemPeak() int64 {
	var t int64
	for _, m := range c.machines {
		t += m.memPeak
	}
	return t
}

// MaxMemPeak returns the highest per-machine peak.
func (c *Cluster) MaxMemPeak() int64 {
	var t int64
	for _, m := range c.machines {
		if m.memPeak > t {
			t = m.memPeak
		}
	}
	return t
}

// TotalNetBytes returns bytes sent across the cluster.
func (c *Cluster) TotalNetBytes() int64 {
	var t int64
	for _, m := range c.machines {
		t += m.NetSent
	}
	return t
}

// StepCost is one machine's share of a parallel step.
type StepCost struct {
	ComputeSeconds float64
	DiskReadBytes  float64
	DiskWriteBytes float64
	NetSendBytes   float64
	NetRecvBytes   float64
}

// RunStep executes one synchronized parallel step: each machine works for
// its own compute+disk+network time, then all wait at a barrier. The
// step's wall time is the slowest machine plus barrier latency — the BSP
// straggler effect that drives several of the paper's findings. It
// returns a TO Failure if the simulated clock passes the timeout.
func (c *Cluster) RunStep(costs []StepCost) error {
	if len(costs) != len(c.machines) {
		panic(fmt.Sprintf("sim: RunStep got %d costs for %d machines", len(costs), len(c.machines)))
	}
	slowest := 0.0
	if c.busy == nil {
		c.busy = make([]float64, len(costs))
	}
	busy := c.busy
	for i, sc := range costs {
		disk := (sc.DiskReadBytes + sc.DiskWriteBytes) / c.cfg.DiskBW
		net := maxf(sc.NetSendBytes, sc.NetRecvBytes) / c.cfg.NetBW
		total := sc.ComputeSeconds + disk + net
		busy[i] = total
		if total > slowest {
			slowest = total
		}
		m := c.machines[i]
		m.CPUUser += sc.ComputeSeconds
		m.CPUIO += disk
		m.CPUNet += net
		m.NetSent += int64(sc.NetSendBytes)
		m.NetRecv += int64(sc.NetRecvBytes)
		m.DiskRead += int64(sc.DiskReadBytes)
		m.DiskWrite += int64(sc.DiskWriteBytes)
	}
	step := slowest + c.cfg.BarrierLat
	for i := range c.machines {
		c.machines[i].CPUIdle += step - busy[i]
	}
	c.clock += step
	c.Sample()
	if c.clock > c.cfg.Timeout {
		return &Failure{Status: TO, Detail: fmt.Sprintf("simulated clock %.0fs past %.0fs timeout", c.clock, c.cfg.Timeout)}
	}
	return nil
}

// UniformStep runs a step where every machine bears the same cost.
func (c *Cluster) UniformStep(cost StepCost) error {
	costs := make([]StepCost, len(c.machines))
	for i := range costs {
		costs[i] = cost
	}
	return c.RunStep(costs)
}

// Advance moves the clock forward without charging any machine — used
// for framework overheads (job scheduling, teardown).
func (c *Cluster) Advance(seconds float64) error {
	c.clock += seconds
	if c.clock > c.cfg.Timeout {
		return &Failure{Status: TO, Detail: "timeout during framework overhead"}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
