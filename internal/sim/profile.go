package sim

// Profile is a system cost profile: the per-unit compute, messaging,
// memory, and framework-overhead constants that distinguish the eight
// systems. Engines combine these with real operation counts (times the
// dataset ScaleFactor) to charge the cluster.
//
// The constants are calibrated against the paper's measurements (see
// the paper's Tables 6-10): e.g. Giraph's per-vertex scan cost is
// fitted to Table 6's per-iteration times on WRN, and its memory model
// to Table 8's totals.
type Profile struct {
	Name string
	Lang string // "C++", "Java", "Scala", "SQL" — Table 1 commentary

	// Compute throughput.
	EdgeOpsPerSec float64 // edge operations per second per core
	VertexScanNs  float64 // ns per vertex touched per superstep (active or not)
	MsgCPUNs      float64 // ns of CPU per message produced+consumed
	RecordCPUNs   float64 // ns per record for record-oriented systems (MR, SQL)

	// Wire format.
	MsgBytes float64 // bytes per message on the network

	// Memory model (bytes at paper scale).
	VertexBytes    float64 // resident bytes per vertex
	EdgeBytes      float64 // resident bytes per directed edge
	MsgMemBytes    float64 // buffered bytes per in-flight message
	PerMachineBase int64   // fixed runtime footprint per machine (heap, buffers)

	// Cluster behaviour.
	Imbalance       float64 // max/avg partition load ratio under this system's partitioning
	SuperstepFixed  float64 // fixed seconds per superstep (coordination)
	JobStartup      float64 // seconds to launch a job
	JobStartupPerM  float64 // additional seconds per machine at job launch
	PressurePenalty float64 // compute multiplier slope under memory pressure (GC/spill)

	// ComputeCores is how many cores the system uses for computation;
	// 0 means all available (GraphLab reserves 2 for communication by
	// default — Figure 1 studies exactly this).
	ComputeCores int
}

// Cores returns the number of compute cores the profile uses on a
// machine with the given total.
func (p *Profile) Cores(machineCores int) int {
	if p.ComputeCores <= 0 || p.ComputeCores > machineCores {
		return machineCores
	}
	return p.ComputeCores
}

// EdgeSeconds converts edge-operation counts to seconds on one machine.
func (p *Profile) EdgeSeconds(ops float64, machineCores int) float64 {
	return ops / (p.EdgeOpsPerSec * float64(p.Cores(machineCores)))
}

// ScanSeconds converts vertex-touch counts to seconds on one machine.
func (p *Profile) ScanSeconds(vertices float64, machineCores int) float64 {
	return vertices * p.VertexScanNs * 1e-9 / float64(p.Cores(machineCores))
}

// MsgSeconds converts message counts to seconds on one machine.
func (p *Profile) MsgSeconds(msgs float64, machineCores int) float64 {
	return msgs * p.MsgCPUNs * 1e-9 / float64(p.Cores(machineCores))
}

// RecordSeconds converts record counts to seconds on one machine.
func (p *Profile) RecordSeconds(records float64, machineCores int) float64 {
	return records * p.RecordCPUNs * 1e-9 / float64(p.Cores(machineCores))
}

// StartupSeconds is the job-launch overhead on a cluster of m machines.
func (p *Profile) StartupSeconds(m int) float64 {
	return p.JobStartup + p.JobStartupPerM*float64(m)
}

// PressureFactor returns the compute-slowdown multiplier for a machine
// whose modeled memory sits at used/capacity. Below 70% utilization the
// factor is 1; above it, GC churn and spilling slow computation linearly
// up to 1+PressurePenalty at 100% — the mechanism behind GraphX's
// pathological per-iteration times on small clusters (Table 6).
func (p *Profile) PressureFactor(used, capacity int64) float64 {
	if capacity <= 0 || p.PressurePenalty <= 0 {
		return 1
	}
	u := float64(used) / float64(capacity)
	if u <= 0.7 {
		return 1
	}
	return 1 + p.PressurePenalty*(u-0.7)/0.3
}
