package sim

import (
	"context"
	"errors"
	"fmt"
)

// Status classifies the outcome of an experiment, matching the paper's
// result-table legend (§5): OK for success, and the four failure modes
// observed across systems — plus two statuses this repository adds:
// Killed for injected machine failures (internal/chaos) and Canceled
// for runs abandoned by their caller (serve-mode deadlines and client
// disconnects), which are conditions of the request, not findings about
// the simulated system.
type Status int

const (
	// OK means the run completed.
	OK Status = iota
	// OOM is an out-of-memory failure on any machine.
	OOM
	// TO is a timeout: execution exceeded 24 simulated hours.
	TO
	// SHFL is the HaLoop shuffle bug: mapper output deleted before all
	// reducers consumed it (happens on large clusters).
	SHFL
	// MPI is the Blogel-B failure: integer overflow in the MPI buffer
	// offsets while aggregating Voronoi block assignments for graphs
	// with very large vertex counts.
	MPI
	// Killed is an injected machine failure (a chaos plan's kill). When
	// the Failure is marked Recoverable, engines running with recovery
	// enabled survive it by checkpoint rollback, job retry, or lineage
	// recomputation; without recovery it ends the run like any fault.
	Killed
	// Canceled means the caller abandoned the run (context canceled or
	// deadline exceeded) — not a simulated 24-hour timeout.
	Canceled
)

// String returns the paper's abbreviation for the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case OOM:
		return "OOM"
	case TO:
		return "TO"
	case SHFL:
		return "SHFL"
	case MPI:
		return "MPI"
	case Killed:
		return "KILL"
	case Canceled:
		return "CANCEL"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Failure is an experiment-aborting error carrying the paper's status
// code and, where meaningful, the machine that failed.
type Failure struct {
	Status  Status
	Machine int // machine index, or -1 when cluster-wide
	Detail  string

	// Recoverable marks failures the system's fault-tolerance design
	// can survive (an injected machine kill with a checkpoint, retryable
	// job, or intact lineage behind it). Deterministic findings — OOM,
	// TO, SHFL, MPI — are never recoverable: rerunning reproduces them.
	Recoverable bool
}

// Error implements the error interface.
func (f *Failure) Error() string {
	if f.Detail == "" {
		return f.Status.String()
	}
	return fmt.Sprintf("%s: %s", f.Status, f.Detail)
}

// StatusOf extracts the Status from err: OK for nil, the Failure's
// status when a *Failure is in err's chain, Canceled for context
// cancellation/expiry, and TO otherwise (unknown errors are treated as
// non-completions).
func StatusOf(err error) Status {
	if err == nil {
		return OK
	}
	var f *Failure
	if errors.As(err, &f) {
		return f.Status
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Canceled
	}
	return TO
}

// IsRecoverable reports whether err carries a recoverable *Failure —
// the condition under which engine-level recovery or a serve-path
// retry is worth attempting.
func IsRecoverable(err error) bool {
	var f *Failure
	return errors.As(err, &f) && f.Recoverable
}
