package sim

import "fmt"

// Status classifies the outcome of an experiment, matching the paper's
// result-table legend (§5): OK for success, and the four failure modes
// observed across systems.
type Status int

const (
	// OK means the run completed.
	OK Status = iota
	// OOM is an out-of-memory failure on any machine.
	OOM
	// TO is a timeout: execution exceeded 24 simulated hours.
	TO
	// SHFL is the HaLoop shuffle bug: mapper output deleted before all
	// reducers consumed it (happens on large clusters).
	SHFL
	// MPI is the Blogel-B failure: integer overflow in the MPI buffer
	// offsets while aggregating Voronoi block assignments for graphs
	// with very large vertex counts.
	MPI
)

// String returns the paper's abbreviation for the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case OOM:
		return "OOM"
	case TO:
		return "TO"
	case SHFL:
		return "SHFL"
	case MPI:
		return "MPI"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Failure is an experiment-aborting error carrying the paper's status
// code and, where meaningful, the machine that failed.
type Failure struct {
	Status  Status
	Machine int // machine index, or -1 when cluster-wide
	Detail  string
}

// Error implements the error interface.
func (f *Failure) Error() string {
	if f.Detail == "" {
		return f.Status.String()
	}
	return fmt.Sprintf("%s: %s", f.Status, f.Detail)
}

// StatusOf extracts the Status from err: OK for nil, the Failure's
// status when err is a *Failure, and TO otherwise (unknown errors are
// treated as non-completions).
func StatusOf(err error) Status {
	if err == nil {
		return OK
	}
	if f, ok := err.(*Failure); ok {
		return f.Status
	}
	return TO
}
