package sim

import (
	"context"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewConfigShape(t *testing.T) {
	cfg := NewConfig(16)
	if cfg.Machines != 16 || cfg.Cores != 4 {
		t.Fatalf("unexpected config: %+v", cfg)
	}
	if cfg.MemoryBytes != MemoryPerMachine {
		t.Fatalf("memory = %d, want %d", cfg.MemoryBytes, MemoryPerMachine)
	}
}

func TestNewPanicsOnZeroMachines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Machines: 0})
}

func TestAllocOOM(t *testing.T) {
	c := NewSize(2)
	if err := c.Alloc(0, MemoryPerMachine/2); err != nil {
		t.Fatalf("alloc within capacity failed: %v", err)
	}
	err := c.Alloc(0, MemoryPerMachine)
	if err == nil {
		t.Fatal("expected OOM")
	}
	f, ok := err.(*Failure)
	if !ok || f.Status != OOM || f.Machine != 0 {
		t.Fatalf("wrong failure: %v", err)
	}
	// Machine 1 untouched.
	if c.Machine(1).MemUsed() != 0 {
		t.Fatal("machine 1 was charged")
	}
}

func TestFreeClampsAtZero(t *testing.T) {
	c := NewSize(1)
	if err := c.Alloc(0, 100); err != nil {
		t.Fatal(err)
	}
	c.Free(0, 1000)
	if got := c.Machine(0).MemUsed(); got != 0 {
		t.Fatalf("MemUsed = %d, want 0", got)
	}
	if got := c.Machine(0).MemPeak(); got != 100 {
		t.Fatalf("MemPeak = %d, want 100 (peak survives free)", got)
	}
}

func TestAllocAllAndTotals(t *testing.T) {
	c := NewSize(4)
	if err := c.AllocAll(10 * MB); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalMemPeak(); got != 40*MB {
		t.Fatalf("TotalMemPeak = %d, want %d", got, 40*MB)
	}
	if got := c.MaxMemPeak(); got != 10*MB {
		t.Fatalf("MaxMemPeak = %d, want %d", got, 10*MB)
	}
	c.FreeAll(10 * MB)
	if c.Machine(3).MemUsed() != 0 {
		t.Fatal("FreeAll did not release")
	}
}

func TestRunStepTiming(t *testing.T) {
	cfg := NewConfig(2)
	cfg.BarrierLat = 1.0
	c := New(cfg)
	err := c.RunStep([]StepCost{
		{ComputeSeconds: 2},
		{ComputeSeconds: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wall time = slowest machine (5s) + barrier (1s).
	if got := c.Clock(); got != 6 {
		t.Fatalf("clock = %v, want 6", got)
	}
	// The fast machine idled for the difference.
	if got := c.Machine(0).CPUIdle; got != 4 {
		t.Fatalf("machine 0 idle = %v, want 4", got)
	}
	if got := c.Machine(1).CPUUser; got != 5 {
		t.Fatalf("machine 1 user = %v, want 5", got)
	}
}

func TestRunStepChargesIOAndNetwork(t *testing.T) {
	cfg := NewConfig(1)
	cfg.DiskBW = 100
	cfg.NetBW = 50
	cfg.BarrierLat = 0
	c := New(cfg)
	err := c.RunStep([]StepCost{{
		DiskReadBytes: 200, DiskWriteBytes: 100,
		NetSendBytes: 100, NetRecvBytes: 25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Machine(0)
	if math.Abs(m.CPUIO-3.0) > 1e-9 { // 300 bytes / 100 Bps
		t.Errorf("CPUIO = %v, want 3", m.CPUIO)
	}
	if math.Abs(m.CPUNet-2.0) > 1e-9 { // max(100,25)/50
		t.Errorf("CPUNet = %v, want 2", m.CPUNet)
	}
	if m.NetSent != 100 || m.DiskRead != 200 || m.DiskWrite != 100 {
		t.Errorf("counters wrong: %+v", m)
	}
}

func TestRunStepPanicsOnWrongLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSize(2).RunStep([]StepCost{{}})
}

func TestTimeout(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Timeout = 10
	c := New(cfg)
	if err := c.UniformStep(StepCost{ComputeSeconds: 5}); err != nil {
		t.Fatalf("first step should pass: %v", err)
	}
	err := c.UniformStep(StepCost{ComputeSeconds: 6})
	if StatusOf(err) != TO {
		t.Fatalf("expected TO, got %v", err)
	}
}

func TestAdvanceTimeout(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Timeout = 10
	c := New(cfg)
	if err := c.Advance(11); StatusOf(err) != TO {
		t.Fatalf("expected TO, got %v", err)
	}
}

func TestSampling(t *testing.T) {
	c := NewSize(2)
	c.EnableSampling()
	if err := c.Alloc(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.UniformStep(StepCost{ComputeSeconds: 1}); err != nil {
		t.Fatal(err)
	}
	samples := c.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	if samples[0].PerMach[0] != 42 || samples[0].PerMach[1] != 0 {
		t.Fatalf("sample = %+v", samples[0])
	}
	// Without sampling enabled nothing is recorded.
	c2 := NewSize(1)
	c2.Sample()
	if len(c2.Samples()) != 0 {
		t.Fatal("sampling recorded while disabled")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		OK: "OK", OOM: "OOM", TO: "TO", SHFL: "SHFL", MPI: "MPI",
		Killed: "KILL", Canceled: "CANCEL",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestStatusOf(t *testing.T) {
	if StatusOf(nil) != OK {
		t.Error("StatusOf(nil) != OK")
	}
	if StatusOf(&Failure{Status: MPI}) != MPI {
		t.Error("StatusOf(Failure{MPI}) != MPI")
	}
	// A wrapped Failure still classifies by its status.
	wrapped := fmt.Errorf("run: %w", &Failure{Status: Killed})
	if StatusOf(wrapped) != Killed {
		t.Errorf("StatusOf(wrapped kill) = %v, want Killed", StatusOf(wrapped))
	}
	// Caller-initiated context errors are cancellations, not modeled
	// timeouts: the run was interrupted, not measured as too slow.
	if StatusOf(context.Canceled) != Canceled {
		t.Errorf("StatusOf(context.Canceled) = %v, want Canceled", StatusOf(context.Canceled))
	}
	if StatusOf(context.DeadlineExceeded) != Canceled {
		t.Errorf("StatusOf(context.DeadlineExceeded) = %v, want Canceled", StatusOf(context.DeadlineExceeded))
	}
	// Unknown errors stay modeled timeouts.
	if StatusOf(fmt.Errorf("mystery")) != TO {
		t.Errorf("StatusOf(unknown) = %v, want TO", StatusOf(fmt.Errorf("mystery")))
	}
}

func TestIsRecoverable(t *testing.T) {
	if IsRecoverable(nil) {
		t.Error("nil error is not recoverable")
	}
	kill := &Failure{Status: Killed, Recoverable: true}
	if !IsRecoverable(kill) || !IsRecoverable(fmt.Errorf("run: %w", kill)) {
		t.Error("recoverable kill not detected (bare or wrapped)")
	}
	for _, f := range []*Failure{
		{Status: OOM},
		{Status: TO},
		{Status: SHFL},
		{Status: Killed}, // a kill without the flag set
	} {
		if IsRecoverable(f) {
			t.Errorf("%v reported recoverable", f.Status)
		}
	}
	if IsRecoverable(fmt.Errorf("not a failure")) {
		t.Error("plain error reported recoverable")
	}
}

// stubInjector fires a chosen failure at a chosen boundary, recording
// the machine count the cluster reported.
type stubInjector struct {
	at       int
	fail     *Failure
	machines int
	calls    int
}

func (s *stubInjector) NextFault(boundary, machines int) *Failure {
	s.calls++
	s.machines = machines
	if boundary != s.at {
		return nil
	}
	return s.fail
}

func TestBoundary(t *testing.T) {
	// Without an injector every boundary passes.
	c := NewSize(4)
	for i := 0; i < 3; i++ {
		if err := c.Boundary(i); err != nil {
			t.Fatalf("boundary %d without injector: %v", i, err)
		}
	}

	// With one, only the armed boundary fails, the failure comes back
	// as a *Failure, and the injector sees the real cluster size.
	inj := &stubInjector{at: 2, fail: &Failure{Status: Killed, Machine: 1, Recoverable: true}}
	c.SetInjector(inj)
	if err := c.Boundary(0); err != nil {
		t.Fatalf("boundary 0: %v", err)
	}
	err := c.Boundary(2)
	if StatusOf(err) != Killed || !IsRecoverable(err) {
		t.Fatalf("boundary 2: %v, want recoverable kill", err)
	}
	if inj.machines != 4 {
		t.Fatalf("injector saw %d machines, want 4", inj.machines)
	}

	// Detaching restores clean boundaries; the injector is not called.
	before := inj.calls
	c.SetInjector(nil)
	if err := c.Boundary(2); err != nil {
		t.Fatalf("boundary after detach: %v", err)
	}
	if inj.calls != before {
		t.Fatal("detached injector was still consulted")
	}
}

func TestFailureError(t *testing.T) {
	f := &Failure{Status: OOM, Machine: 3, Detail: "boom"}
	if f.Error() != "OOM: boom" {
		t.Errorf("Error() = %q", f.Error())
	}
	if (&Failure{Status: TO}).Error() != "TO" {
		t.Errorf("bare failure Error() = %q", (&Failure{Status: TO}).Error())
	}
}

func TestProfileHelpers(t *testing.T) {
	p := Profile{EdgeOpsPerSec: 1e6, VertexScanNs: 1000, MsgCPUNs: 500, RecordCPUNs: 2000, ComputeCores: 2}
	if got := p.Cores(4); got != 2 {
		t.Errorf("Cores(4) = %d, want 2", got)
	}
	if got := p.Cores(1); got != 1 {
		t.Errorf("Cores(1) = %d, want clamped 1", got)
	}
	if got := p.EdgeSeconds(2e6, 4); got != 1.0 {
		t.Errorf("EdgeSeconds = %v, want 1", got)
	}
	if got := p.ScanSeconds(2e6, 4); got != 1.0 {
		t.Errorf("ScanSeconds = %v, want 1", got)
	}
	if got := p.MsgSeconds(4e6, 4); got != 1.0 {
		t.Errorf("MsgSeconds = %v, want 1", got)
	}
	if got := p.RecordSeconds(1e6, 4); got != 1.0 {
		t.Errorf("RecordSeconds = %v, want 1", got)
	}
	allCores := Profile{EdgeOpsPerSec: 1e6}
	if got := allCores.Cores(4); got != 4 {
		t.Errorf("Cores with ComputeCores=0 = %d, want 4", got)
	}
}

func TestStartupSeconds(t *testing.T) {
	p := Profile{JobStartup: 10, JobStartupPerM: 0.5}
	if got := p.StartupSeconds(16); got != 18 {
		t.Errorf("StartupSeconds(16) = %v, want 18", got)
	}
}

func TestPressureFactor(t *testing.T) {
	p := Profile{PressurePenalty: 9}
	if got := p.PressureFactor(50, 100); got != 1 {
		t.Errorf("below threshold: factor = %v, want 1", got)
	}
	if got := p.PressureFactor(100, 100); math.Abs(got-10) > 1e-9 {
		t.Errorf("at capacity: factor = %v, want 10", got)
	}
	mid := p.PressureFactor(85, 100)
	if mid <= 1 || mid >= 10 {
		t.Errorf("mid pressure factor = %v, want between 1 and 10", mid)
	}
	if got := (&Profile{}).PressureFactor(100, 100); got != 1 {
		t.Errorf("no penalty profile: factor = %v, want 1", got)
	}
}

// Property: clock is monotone and idle time is never negative.
func TestQuickClockMonotone(t *testing.T) {
	f := func(a, b, c uint16) bool {
		cl := NewSize(3)
		costs := []StepCost{
			{ComputeSeconds: float64(a) / 100},
			{ComputeSeconds: float64(b) / 100},
			{ComputeSeconds: float64(c) / 100},
		}
		before := cl.Clock()
		if err := cl.RunStep(costs); err != nil {
			return false
		}
		if cl.Clock() < before {
			return false
		}
		for _, m := range cl.Machines() {
			if m.CPUIdle < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
