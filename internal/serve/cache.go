package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
)

// runKey identifies one cacheable run. It covers every input that
// determines the modeled result: the runner pins scale and seed, so
// (dataset, workload, system, machines, shards) is the rest of the key.
// Shards is part of the key defensively — results are bit-identical at
// any shard count, but a key that under-identifies its value is how
// caches rot.
type runKey struct {
	dataset  datasets.Name
	kind     engine.Kind
	system   string
	machines int
	shards   int
}

// String renders the key — used in logs and as the chaos source's
// stable per-run identity, so injected fault schedules are a pure
// function of (chaos seed, key, attempt).
func (k runKey) String() string {
	return fmt.Sprintf("%s/%s/%s/m%d/s%d", k.dataset, k.kind, k.system, k.machines, k.shards)
}

// cacheEntry is one in-progress or completed run. res and err are
// written exactly once, before done is closed; readers must wait on
// done first (the close is the happens-before edge).
type cacheEntry struct {
	done chan struct{}
	res  *engine.Result
	err  error
}

// resultCache memoizes run results with single-flight semantics: the
// first request for a key becomes the leader and computes; concurrent
// requests for the same key coalesce onto the leader's entry instead of
// burning a second admission slot on identical work.
//
// The leader computes in a detached goroutine, so a leader whose
// client disconnects mid-run still finishes and warms the cache for the
// next request (slot queueing happens inside compute and does respect
// the caller's deadline, so abandoned requests never hold a queue
// position). Failed *runs* (OOM,
// timeout — deterministic modeled outcomes) are cached like successes;
// only errors (fixture failures, overload, deadline) evict the entry so
// a later request retries.
type resultCache struct {
	mu sync.Mutex
	m  map[runKey]*cacheEntry

	hits, misses, coalesced atomic.Uint64
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[runKey]*cacheEntry)}
}

// get returns the cached result for key, computing it via compute on a
// miss. The returned status is "hit" (entry was complete), "coalesced"
// (waited on another request's in-flight computation), or "miss" (this
// call was the leader). On ctx expiry the caller gets ctx.Err() but an
// already-admitted computation keeps running and caches its result.
func (c *resultCache) get(ctx context.Context, key runKey, compute func() (*engine.Result, error)) (*engine.Result, string, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		select {
		case <-e.done:
			c.mu.Unlock()
			c.hits.Add(1)
			return e.res, "hit", e.err
		default:
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-e.done:
				return e.res, "coalesced", e.err
			case <-ctx.Done():
				return nil, "coalesced", ctx.Err()
			}
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	go func() {
		e.res, e.err = compute()
		if e.err != nil {
			// Errors are conditions of the attempt, not of the key:
			// evict so the next request retries instead of replaying a
			// transient failure forever.
			c.mu.Lock()
			if c.m[key] == e {
				delete(c.m, key)
			}
			c.mu.Unlock()
		}
		close(e.done)
	}()

	select {
	case <-e.done:
		return e.res, "miss", e.err
	case <-ctx.Done():
		return nil, "miss", ctx.Err()
	}
}

// stats returns the cumulative hit/miss/coalesced counters.
func (c *resultCache) stats() (hits, misses, coalesced uint64) {
	return c.hits.Load(), c.misses.Load(), c.coalesced.Load()
}
