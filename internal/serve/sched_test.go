package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphbench/internal/par"
)

// TestBackoffDelayHighAttempts is the regression test for the shift
// overflow: base << (attempt-1) at attempt ≥ 40 went negative and made
// rand.Int64N panic, killing the request goroutine. The delay must stay
// capped at 1s and positive for every attempt count.
func TestBackoffDelayHighAttempts(t *testing.T) {
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{10 * time.Millisecond, 1, 10 * time.Millisecond},
		{10 * time.Millisecond, 3, 40 * time.Millisecond},
		{10 * time.Millisecond, 7, 640 * time.Millisecond},
		{10 * time.Millisecond, 8, time.Second}, // first capped attempt
		{10 * time.Millisecond, 40, time.Second},
		{10 * time.Millisecond, 64, time.Second},
		{10 * time.Millisecond, 1 << 20, time.Second},
		{time.Nanosecond, 63, time.Second},
		{time.Nanosecond, 10_000, time.Second},
		{2 * time.Second, 1, time.Second}, // base above the cap
		{0, 40, 0},
	}
	for _, c := range cases {
		if got := backoffDelay(c.base, c.attempt); got != c.want {
			t.Errorf("backoffDelay(%v, %d) = %v, want %v", c.base, c.attempt, got, c.want)
		}
	}
	// The full sleep path (delay + jitter draw) must not panic at high
	// attempt counts; a nanosecond-scale capped value keeps it fast only
	// when the base is tiny and the attempt is small.
	sleepBackoff(time.Nanosecond, 1)
	sleepBackoff(0, 1<<30)
}

// TestSchedulerGaugeBoundsUnderLoad hammers acquire/release from many
// goroutines while concurrently scraping snapshot(), asserting the
// consistent-snapshot contract: in-flight never exceeds the slot count
// and queue depth never exceeds maxWait, even mid-acquire.
func TestSchedulerGaugeBoundsUnderLoad(t *testing.T) {
	cases := []struct {
		name             string
		slots, wait, par int
	}{
		{"1slot", 1, 2, 8},
		{"2slots", 2, 3, 12},
		{"4slots", 4, 8, 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newScheduler(c.slots, c.wait, 1)
			defer s.close()

			var stop atomic.Bool
			var violations atomic.Int64
			var scraper sync.WaitGroup
			scraper.Add(1)
			go func() {
				defer scraper.Done()
				for !stop.Load() {
					inFlight, queued := s.snapshot()
					if inFlight < 0 || inFlight > c.slots || queued < 0 || queued > int64(c.wait) {
						violations.Add(1)
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for i := 0; i < c.par; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 200; j++ {
						ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
						p, err := s.acquire(ctx)
						if err == nil {
							s.release(p)
						}
						cancel()
					}
				}()
			}
			wg.Wait()
			stop.Store(true)
			scraper.Wait()
			if n := violations.Load(); n > 0 {
				t.Fatalf("gauge snapshot out of bounds %d times", n)
			}
			if inFlight, queued := s.snapshot(); inFlight != 0 || queued != 0 {
				t.Fatalf("idle scheduler reports inFlight=%d queued=%d", inFlight, queued)
			}
		})
	}
}

// TestSchedulerOverloadAndHandoff checks the admission edges: queue
// fills to exactly maxWait then sheds, and a release hands the pool to
// the first waiter without the in-flight gauge dipping.
func TestSchedulerOverloadAndHandoff(t *testing.T) {
	s := newScheduler(1, 1, 1)
	defer s.close()

	p, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		p   *par.Pool
		err error
	}
	done := make(chan res, 1)
	go func() {
		wp, werr := s.acquire(context.Background())
		done <- res{wp, werr}
	}()
	waitFor(t, func() bool { return s.queueDepth() == 1 })
	if _, err := s.acquire(context.Background()); err != errOverloaded {
		t.Fatalf("expected errOverloaded with full queue, got %v", err)
	}
	s.release(p)
	r := <-done
	if r.err != nil {
		t.Fatalf("queued acquire failed: %v", r.err)
	}
	if inFlight, queued := s.snapshot(); inFlight != 1 || queued != 0 {
		t.Fatalf("after handoff: inFlight=%d queued=%d, want 1, 0", inFlight, queued)
	}
	s.release(r.p)
}

// TestSchedulerCtxExpiredWhileQueued checks that a waiter whose context
// expires leaves no queue residue and loses no pool, including the race
// where release commits a handoff concurrently with the timeout.
func TestSchedulerCtxExpiredWhileQueued(t *testing.T) {
	s := newScheduler(1, 4, 1)
	defer s.close()
	p, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if inFlight, queued := s.snapshot(); inFlight != 1 || queued != 0 {
		t.Fatalf("after expiry: inFlight=%d queued=%d, want 1, 0", inFlight, queued)
	}
	s.release(p)
	// The slot must still be acquirable: the expired waiter returned any
	// handed-off pool.
	p2, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s.release(p2)
}
