package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
)

// errBreakerOpen is returned by the compute path when the circuit
// breaker for the request's (dataset, workload) is open; the handler
// maps it to 503 + Retry-After.
var errBreakerOpen = errors.New("serve: circuit breaker open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerState(%d)", int(s))
	}
}

// breaker is a circuit breaker over one (dataset, workload) pair.
// threshold consecutive compute errors open it; after cooldown it
// half-opens and admits a single probe — a probe success closes it, a
// probe failure re-opens it for another cooldown. Deterministic modeled
// failures (an OOM result, say) are successes here: they are findings
// served from cache, not signs of a struggling compute path. Only
// errors — retries exhausted against injected faults, broken fixtures —
// count against the threshold.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    breakerState
	failures int // consecutive errors while closed
	openedAt time.Time
	probing  bool // half-open: the single probe is in flight
}

// allow reports whether a compute attempt may proceed, transitioning
// open → half-open once the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// cancel releases a half-open probe slot without recording an outcome
// — the attempt was shed or abandoned before the run started.
func (b *breaker) cancel() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// record feeds an attempt's outcome back.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = time.Now()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// currentState returns the state for metrics, applying the open →
// half-open timer so a cooled-down breaker reads as half-open even
// before the next probe arrives.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return breakerHalfOpen
	}
	return b.state
}

// breakerKey scopes a breaker: faults of one dataset × workload must
// not block queries for the rest of the grid.
type breakerKey struct {
	dataset datasets.Name
	kind    engine.Kind
}

// breakerSet lazily creates one breaker per (dataset, workload).
type breakerSet struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[breakerKey]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[breakerKey]*breaker)}
}

func (s *breakerSet) get(name datasets.Name, kind engine.Kind) *breaker {
	key := breakerKey{dataset: name, kind: kind}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = &breaker{threshold: s.threshold, cooldown: s.cooldown}
		s.m[key] = b
	}
	return b
}

// states snapshots every instantiated breaker as "dataset/workload" →
// state, sorted keys, for /metrics.
func (s *breakerSet) states() map[string]string {
	s.mu.Lock()
	keys := make([]breakerKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].dataset != keys[b].dataset {
			return keys[a].dataset < keys[b].dataset
		}
		return keys[a].kind < keys[b].kind
	})
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[string(k.dataset)+"/"+k.kind.String()] = s.get(k.dataset, k.kind).currentState().String()
	}
	return out
}
