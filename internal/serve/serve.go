// Package serve exposes the simulated study as a long-lived query
// service: cmd/graphserve loads the dataset fixtures once at startup,
// keeps persistent engine worker pools warm, and answers workload
// queries (PageRank top-k, WCC membership, SSSP distance, triangle
// counts, LPA communities) over HTTP as JSON.
//
// Three mechanisms make the server fit for concurrent clients:
//
//   - Admission control (scheduler): at most MaxInFlight runs execute
//     at once, each on its own persistent par.Pool; at most MaxQueue
//     requests wait behind them; beyond that the server sheds load with
//     429 + Retry-After instead of queueing unboundedly.
//   - Single-flight result cache (resultCache): runs are deterministic
//     given (dataset, workload, system, machines, shards), so results
//     are memoized and concurrent identical requests coalesce onto one
//     computation. Cache state travels in the X-Graphserve-Cache header
//     (hit | miss | coalesced) — never in the body, so a cached
//     response is byte-identical to the cold one.
//   - Per-request deadlines: every query runs under RequestTimeout;
//     expiry returns 504 while an admitted run finishes in the
//     background and warms the cache.
//
// GET /metrics reports request counts by status, latency quantiles from
// a log-bucketed histogram, cache hit rate, queue depth, and in-flight
// runs. GET /healthz is the readiness probe.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/metrics"
	"graphbench/internal/sim"
)

// Config parameterizes a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	Scale float64 // dataset reduction scale (0 = datasets.DefaultScale)
	Seed  int64   // generation seed

	// Shards is the worker count of each slot's persistent pool (0 =
	// ceil(GOMAXPROCS / MaxInFlight), so concurrent runs share the
	// machine instead of each claiming all of it).
	Shards int

	SnapshotDir string // fixture snapshot cache directory ("" = generate)

	MaxInFlight    int           // concurrent runs (0 = 2)
	MaxQueue       int           // queued requests beyond that (0 = 8)
	RequestTimeout time.Duration // per-request deadline (0 = 60s)

	// Datasets to warm at startup (nil = all four). Queries against
	// datasets outside this list still work — their fixture is prepared
	// on first use, paying the generation cost on that request.
	Datasets []datasets.Name
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = (runtime.GOMAXPROCS(0) + c.MaxInFlight - 1) / c.MaxInFlight
	}
	if c.Datasets == nil {
		c.Datasets = datasets.AllNames()
	}
	return c
}

// Server is the long-lived query service. Create with New, serve with
// any http.Server (it implements http.Handler), shut down with Close.
type Server struct {
	cfg    Config
	runner *core.Runner
	sched  *scheduler
	cache  *resultCache
	mux    *http.ServeMux

	mu       sync.Mutex
	byCode   map[int]uint64
	requests uint64
	latency  *metrics.Histogram

	closeOnce sync.Once
}

// New builds a server and warms every configured dataset fixture, so
// the first query pays no generation cost. A fixture that cannot be
// prepared fails startup — a server that would 500 every request is
// better caught at boot.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	r := core.NewRunner(cfg.Scale, cfg.Seed)
	r.Shards = cfg.Shards
	if cfg.SnapshotDir != "" {
		r.SnapshotDir = cfg.SnapshotDir
	}
	for _, name := range cfg.Datasets {
		if _, err := r.TryDataset(name); err != nil {
			return nil, fmt.Errorf("serve: warming fixtures: %w", err)
		}
	}
	s := &Server{
		cfg:     cfg,
		runner:  r,
		sched:   newScheduler(cfg.MaxInFlight, cfg.MaxQueue, cfg.Shards),
		cache:   newResultCache(),
		byCode:  make(map[int]uint64),
		latency: metrics.NewHistogram(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/pagerank", s.instrument(s.handleQuery(engine.PageRank)))
	s.mux.HandleFunc("GET /v1/wcc", s.instrument(s.handleQuery(engine.WCC)))
	s.mux.HandleFunc("GET /v1/sssp", s.instrument(s.handleQuery(engine.SSSP)))
	s.mux.HandleFunc("GET /v1/triangle", s.instrument(s.handleQuery(engine.Triangle)))
	s.mux.HandleFunc("GET /v1/lpa", s.instrument(s.handleQuery(engine.LPA)))
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts down the slot pools and the runner's matrix pool. It
// blocks until in-flight runs finish; callers should stop the HTTP
// listener first.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.sched.close()
		s.runner.Close()
	})
}

// statusRecorder captures the response code for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a query handler with request counting and latency
// observation.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		sec := time.Since(start).Seconds()
		s.mu.Lock()
		s.requests++
		s.byCode[rec.code]++
		s.mu.Unlock()
		s.latency.Observe(sec)
	}
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsBody is the /metrics response. Quantiles are in seconds; -1
// means the quantile fell beyond the histogram's last bucket.
type metricsBody struct {
	RequestsTotal   uint64            `json:"requests_total"`
	ResponsesByCode map[string]uint64 `json:"responses_by_code"`
	Latency         latencyBody       `json:"latency_seconds"`
	Cache           cacheBody         `json:"cache"`
	QueueDepth      int64             `json:"queue_depth"`
	InFlight        int               `json:"in_flight"`
}

type latencyBody struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

type cacheBody struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
}

// finiteQuantile reads a histogram quantile, mapping the +Inf overflow
// bucket to -1 (JSON cannot carry infinities).
func finiteQuantile(h *metrics.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, coalesced := s.cache.stats()
	lookups := hits + misses + coalesced
	rate := 0.0
	if lookups > 0 {
		// Coalesced lookups count as hits: they were served without a
		// run of their own.
		rate = float64(hits+coalesced) / float64(lookups)
	}
	s.mu.Lock()
	body := metricsBody{
		RequestsTotal:   s.requests,
		ResponsesByCode: make(map[string]uint64, len(s.byCode)),
	}
	for code, n := range s.byCode {
		body.ResponsesByCode[strconv.Itoa(code)] = n
	}
	s.mu.Unlock()
	body.Latency = latencyBody{
		Count: s.latency.Count(),
		P50:   finiteQuantile(s.latency, 0.50),
		P95:   finiteQuantile(s.latency, 0.95),
		P99:   finiteQuantile(s.latency, 0.99),
	}
	body.Cache = cacheBody{Hits: hits, Misses: misses, Coalesced: coalesced, HitRate: rate}
	body.QueueDepth = s.sched.queueDepth()
	body.InFlight = s.sched.inFlight()
	writeJSON(w, http.StatusOK, body)
}

// query holds one parsed and validated /v1 request.
type query struct {
	key    runKey
	sys    core.System
	d      *engine.Dataset
	vertex graph.VertexID // wcc/sssp/lpa/triangle target (triangle: -1 = global)
	topK   int            // pagerank
}

// parseQuery validates the common parameters. It writes the error
// response itself and returns ok=false on failure.
func (s *Server) parseQuery(w http.ResponseWriter, r *http.Request, kind engine.Kind) (query, bool) {
	var q query
	vals := r.URL.Query()

	name := datasets.Name(vals.Get("dataset"))
	if name == "" {
		name = datasets.Twitter
	}
	if !datasets.Known(name) {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return q, false
	}

	sysKey := vals.Get("system")
	if sysKey == "" {
		sysKey = "giraph"
	}
	sys, err := core.SystemByKey(sysKey)
	if err != nil {
		writeError(w, http.StatusBadRequest, "unknown system %q", sysKey)
		return q, false
	}
	if sys.PageRankOnly && kind != engine.PageRank {
		writeError(w, http.StatusBadRequest,
			"system %q is a PageRank-only variant and cannot run %s", sysKey, kind)
		return q, false
	}

	machines := 16
	if m := vals.Get("machines"); m != "" {
		machines, err = strconv.Atoi(m)
		if err != nil || machines < 1 || machines > 4096 {
			writeError(w, http.StatusBadRequest, "machines must be a positive integer, got %q", m)
			return q, false
		}
	}

	// The fixture is warmed at startup for configured datasets; a cold
	// one generates here, under this request's budget.
	d, err := s.runner.TryDataset(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "preparing fixture: %v", err)
		return q, false
	}

	q = query{
		key: runKey{dataset: name, kind: kind, system: sys.Key,
			machines: machines, shards: s.cfg.Shards},
		sys: sys,
		d:   d,
	}

	switch kind {
	case engine.PageRank:
		q.topK = 10
		if k := vals.Get("k"); k != "" {
			q.topK, err = strconv.Atoi(k)
			if err != nil || q.topK < 1 {
				writeError(w, http.StatusBadRequest, "k must be a positive integer, got %q", k)
				return q, false
			}
		}
	case engine.Triangle:
		q.vertex = -1 // global count unless a vertex is named
		if v := vals.Get("vertex"); v != "" {
			if q.vertex, err = parseVertex(v, d.NumVertices); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return q, false
			}
		}
	default: // WCC, SSSP, LPA: vertex-targeted, defaulting to the source
		q.vertex = d.Source
		if v := vals.Get("vertex"); v != "" {
			if q.vertex, err = parseVertex(v, d.NumVertices); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return q, false
			}
		}
	}
	return q, true
}

func parseVertex(s string, n int) (graph.VertexID, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v >= n {
		return 0, fmt.Errorf("vertex must be in [0, %d), got %q", n, s)
	}
	return graph.VertexID(v), nil
}

// runMeta is the run provenance common to every query response. All
// fields are deterministic functions of the cache key, so responses
// stay byte-identical between cold and cached serves.
type runMeta struct {
	Dataset    string  `json:"dataset"`
	System     string  `json:"system"`
	Workload   string  `json:"workload"`
	Machines   int     `json:"machines"`
	Status     string  `json:"status"`
	Iterations int     `json:"iterations"`
	TotalSec   float64 `json:"modeled_total_sec"`
}

func metaOf(key runKey, res *engine.Result) runMeta {
	return runMeta{
		Dataset:    string(key.dataset),
		System:     res.System,
		Workload:   key.kind.String(),
		Machines:   key.machines,
		Status:     res.Status.String(),
		Iterations: res.Iterations,
		TotalSec:   res.TotalTime(),
	}
}

func (s *Server) handleQuery(kind engine.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		q, ok := s.parseQuery(w, r, kind)
		if !ok {
			return
		}

		res, cacheStatus, err := s.cache.get(ctx, q.key, func() (*engine.Result, error) {
			pool, err := s.sched.acquire(ctx)
			if err != nil {
				return nil, err
			}
			defer s.sched.release(pool)
			return s.runner.TryRunOn(pool, q.sys, q.key.dataset, kind, q.key.machines)
		})
		if err != nil {
			switch {
			case errors.Is(err, errOverloaded):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
			default:
				writeError(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}

		// Cache provenance goes in a header, never the body: cached
		// bodies must be byte-identical to cold ones.
		w.Header().Set("X-Graphserve-Cache", cacheStatus)

		meta := metaOf(q.key, res)
		if res.Status != sim.OK {
			// A failed run is a deterministic modeled outcome (OOM,
			// timeout, …) — a finding, served as 500 with the same
			// body every time.
			writeJSON(w, http.StatusInternalServerError, struct {
				runMeta
				Error string `json:"error"`
			}{meta, fmt.Sprintf("run failed: %s", res.Status)})
			return
		}
		writeJSON(w, http.StatusOK, queryBody(kind, q, meta, res))
	}
}

// rankedVertex is one PageRank top-k entry.
type rankedVertex struct {
	Vertex int     `json:"vertex"`
	Rank   float64 `json:"rank"`
}

// queryBody builds the workload-specific response. Everything here is
// a pure function of the cached result, keeping bodies deterministic.
func queryBody(kind engine.Kind, q query, meta runMeta, res *engine.Result) any {
	switch kind {
	case engine.PageRank:
		return struct {
			runMeta
			K   int            `json:"k"`
			Top []rankedVertex `json:"top"`
		}{meta, q.topK, topRanks(res.Ranks, q.topK)}
	case engine.WCC:
		comp := res.Labels[q.vertex]
		return struct {
			runMeta
			Vertex        int `json:"vertex"`
			Component     int `json:"component"`
			ComponentSize int `json:"component_size"`
		}{meta, int(q.vertex), int(comp), countLabel(res.Labels, comp)}
	case engine.SSSP:
		dist := res.Dist[q.vertex]
		return struct {
			runMeta
			Source    int  `json:"source"`
			Vertex    int  `json:"vertex"`
			Distance  int  `json:"distance"`
			Reachable bool `json:"reachable"`
		}{meta, int(q.d.Source), int(q.vertex), int(dist), dist >= 0}
	case engine.Triangle:
		if q.vertex < 0 {
			return struct {
				runMeta
				TotalTriangles int64 `json:"total_triangles"`
			}{meta, res.TotalTriangles()}
		}
		return struct {
			runMeta
			Vertex            int   `json:"vertex"`
			IncidentTriangles int64 `json:"incident_triangles"`
		}{meta, int(q.vertex), res.Triangles[q.vertex]}
	default: // LPA
		label := res.Labels[q.vertex]
		return struct {
			runMeta
			Vertex        int `json:"vertex"`
			Label         int `json:"label"`
			CommunitySize int `json:"community_size"`
		}{meta, int(q.vertex), int(label), countLabel(res.Labels, label)}
	}
}

// topRanks returns the k highest-ranked vertices, ties broken toward
// the smaller vertex id so the ordering (and the response bytes) are
// fully deterministic.
func topRanks(ranks []float64, k int) []rankedVertex {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ranks[idx[a]] != ranks[idx[b]] {
			return ranks[idx[a]] > ranks[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]rankedVertex, k)
	for i := 0; i < k; i++ {
		out[i] = rankedVertex{Vertex: idx[i], Rank: ranks[idx[i]]}
	}
	return out
}

func countLabel(labels []graph.VertexID, want graph.VertexID) int {
	n := 0
	for _, l := range labels {
		if l == want {
			n++
		}
	}
	return n
}
