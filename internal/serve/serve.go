// Package serve exposes the simulated study as a long-lived query
// service: cmd/graphserve loads the dataset fixtures once at startup,
// keeps persistent engine worker pools warm, and answers workload
// queries (PageRank top-k, WCC membership, SSSP distance, triangle
// counts, LPA communities) over HTTP as JSON.
//
// Three mechanisms make the server fit for concurrent clients:
//
//   - Admission control (scheduler): at most MaxInFlight runs execute
//     at once, each on its own persistent par.Pool; at most MaxQueue
//     requests wait behind them; beyond that the server sheds load with
//     429 + Retry-After instead of queueing unboundedly.
//   - Single-flight result cache (resultCache): runs are deterministic
//     given (dataset, workload, system, machines, shards), so results
//     are memoized and concurrent identical requests coalesce onto one
//     computation. Cache state travels in the X-Graphserve-Cache header
//     (hit | miss | coalesced) — never in the body, so a cached
//     response is byte-identical to the cold one.
//   - Per-request deadlines: every query runs under RequestTimeout;
//     expiry returns 504 while an admitted run finishes in the
//     background and warms the cache.
//
// The serve path is also resilient to recoverable faults (injected by
// an optional chaos.Source, or real in a future backend): runs killed
// by a recoverable failure are retried with exponential backoff and
// jitter; a per-(dataset, workload) circuit breaker turns persistent
// compute errors into fast 503 + Retry-After responses and half-opens
// after a cooldown; and a panic-recovery middleware converts handler
// panics into 500s instead of killing the process.
//
// GET /metrics reports request counts by status, latency quantiles from
// a log-bucketed histogram, cache hit rate, queue depth, in-flight
// runs, fault/retry/recovery counters, and breaker states. GET /healthz
// is the readiness probe.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphbench/internal/chaos"
	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/graph"
	"graphbench/internal/metrics"
	"graphbench/internal/par"
	"graphbench/internal/plan"
	"graphbench/internal/sim"
)

// Config parameterizes a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	Scale float64 // dataset reduction scale (0 = datasets.DefaultScale)
	Seed  int64   // generation seed

	// Shards is the worker count of each slot's persistent pool (0 =
	// ceil(GOMAXPROCS / MaxInFlight), so concurrent runs share the
	// machine instead of each claiming all of it).
	Shards int

	SnapshotDir string // fixture snapshot cache directory ("" = generate)

	// MemBudget, when positive, bounds the host-side working set of
	// served runs (core.Runner.MemoryBudget): runs degrade — shed
	// scratch, go out-of-core with spill-to-disk — under pressure, and
	// a request whose floor cannot fit the budget is answered 503 +
	// Retry-After instead of OOM-killing the server. Zero keeps the
	// runner's default ($GRAPHBENCH_MEM_BUDGET).
	MemBudget int64

	MaxInFlight    int           // concurrent runs (0 = 2)
	MaxQueue       int           // queued requests beyond that (0 = 8)
	RequestTimeout time.Duration // per-request deadline (0 = 60s)

	// Datasets to warm at startup (nil = all four). Queries against
	// datasets outside this list still work — their fixture is prepared
	// on first use, paying the generation cost on that request.
	Datasets []datasets.Name

	// MaxRetries is how many times a run killed by a recoverable fault
	// is retried before the request fails (0 = 2, negative = none).
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry; it
	// doubles per attempt, capped at 1s, with up to 50% jitter (0 = 25ms).
	RetryBackoff time.Duration

	// BreakerThreshold is the consecutive-compute-error count that opens
	// a (dataset, workload) circuit breaker (0 = 3, negative disables by
	// using a very high threshold).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects with 503
	// before half-opening for a probe (0 = 2s).
	BreakerCooldown time.Duration

	// Chaos, when non-nil, injects seeded machine-kill faults into the
	// configured fraction of run attempts (see chaos.Source). Nil
	// disables injection.
	Chaos *chaos.Source
	// Recover enables engine-level fault recovery on served runs
	// (checkpoint rollback, job retry, lineage recomputation), absorbing
	// injected faults inside the run instead of surfacing them to the
	// serve-level retry loop. Note that recovered runs report a larger
	// modeled time, so cached bodies differ from fault-free ones; the
	// default (off) keeps bodies byte-identical by retrying whole runs.
	Recover bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = (runtime.GOMAXPROCS(0) + c.MaxInFlight - 1) / c.MaxInFlight
	}
	if c.Datasets == nil {
		c.Datasets = datasets.AllNames()
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	} else if c.BreakerThreshold < 0 {
		c.BreakerThreshold = math.MaxInt32
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	return c
}

// Server is the long-lived query service. Create with New, serve with
// any http.Server (it implements http.Handler), shut down with Close.
type Server struct {
	cfg      Config
	runner   *core.Runner
	sched    *scheduler
	cache    *resultCache
	breakers *breakerSet
	mux      *http.ServeMux

	mu       sync.Mutex
	byCode   map[int]uint64
	requests uint64
	latency  *metrics.Histogram

	faultsInjected   atomic.Uint64 // chaos faults that actually fired
	faultsRecovered  atomic.Uint64 // faults absorbed by engine recovery
	retriesTotal     atomic.Uint64 // serve-level run retries
	retriesExhausted atomic.Uint64 // requests failed after all retries
	panics           atomic.Uint64 // handler panics converted to 500s

	// Adaptive-planner state: decision count and the latest decision
	// summary per request cell, surfaced on /metrics.
	planTotal     atomic.Uint64
	planMu        sync.Mutex
	planDecisions map[string]string

	closeOnce sync.Once
}

// New builds a server and warms every configured dataset fixture, so
// the first query pays no generation cost. A fixture that cannot be
// prepared fails startup — a server that would 500 every request is
// better caught at boot.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	r := core.NewRunner(cfg.Scale, cfg.Seed)
	r.Shards = cfg.Shards
	if cfg.SnapshotDir != "" {
		r.SnapshotDir = cfg.SnapshotDir
	}
	if cfg.MemBudget > 0 {
		r.MemoryBudget = cfg.MemBudget
	}
	for _, name := range cfg.Datasets {
		if _, err := r.TryDataset(name); err != nil {
			return nil, fmt.Errorf("serve: warming fixtures: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		runner:   r,
		sched:    newScheduler(cfg.MaxInFlight, cfg.MaxQueue, cfg.Shards),
		cache:    newResultCache(),
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		byCode:   make(map[int]uint64),
		latency:  metrics.NewHistogram(),

		planDecisions: make(map[string]string),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/pagerank", s.instrument(s.handleQuery(engine.PageRank)))
	s.mux.HandleFunc("GET /v1/wcc", s.instrument(s.handleQuery(engine.WCC)))
	s.mux.HandleFunc("GET /v1/sssp", s.instrument(s.handleQuery(engine.SSSP)))
	s.mux.HandleFunc("GET /v1/triangle", s.instrument(s.handleQuery(engine.Triangle)))
	s.mux.HandleFunc("GET /v1/lpa", s.instrument(s.handleQuery(engine.LPA)))
	return s, nil
}

// ServeHTTP dispatches to the mux behind a panic-recovery middleware:
// a panicking handler costs its request a 500, never the process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			writeError(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Close shuts down the slot pools and the runner's matrix pool. It
// blocks until in-flight runs finish; callers should stop the HTTP
// listener first.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.sched.close()
		s.runner.Close()
	})
}

// statusRecorder captures the response code for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a query handler with request counting and latency
// observation.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		sec := time.Since(start).Seconds()
		s.mu.Lock()
		s.requests++
		s.byCode[rec.code]++
		s.mu.Unlock()
		s.latency.Observe(sec)
	}
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsBody is the /metrics response. Quantiles are in seconds; -1
// means the quantile fell beyond the histogram's last bucket.
type metricsBody struct {
	RequestsTotal   uint64            `json:"requests_total"`
	ResponsesByCode map[string]uint64 `json:"responses_by_code"`
	Latency         latencyBody       `json:"latency_seconds"`
	Cache           cacheBody         `json:"cache"`
	QueueDepth      int64             `json:"queue_depth"`
	InFlight        int               `json:"in_flight"`
	Faults          faultsBody        `json:"faults"`
	Breakers        map[string]string `json:"breakers"`

	// Governor reports the memory governor's ledger (peak tracked heap,
	// spill volume, pressure events); omitted when no budget is set.
	Governor *govern.Stats `json:"governor,omitempty"`

	// Planner reports the adaptive planner's activity (decision count,
	// observed configurations, the latest decision summary per request
	// cell); omitted until the first system=auto request.
	Planner *plannerBody `json:"planner,omitempty"`
}

// plannerBody is the /metrics view of the adaptive planner.
type plannerBody struct {
	DecisionsTotal uint64            `json:"decisions_total"`
	Observed       int               `json:"observed_configs"`
	Decisions      map[string]string `json:"decisions"`
}

// faultsBody reports the resilience counters: chaos injection, engine
// recovery, serve-level retries, and panic conversions.
type faultsBody struct {
	ChaosRate        float64 `json:"chaos_rate"`
	Injected         uint64  `json:"injected_total"`
	Recovered        uint64  `json:"recovered_total"`
	Retries          uint64  `json:"retries_total"`
	RetriesExhausted uint64  `json:"retries_exhausted_total"`
	Panics           uint64  `json:"panics_total"`
}

type latencyBody struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

type cacheBody struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
}

// finiteQuantile reads a histogram quantile, mapping the +Inf overflow
// bucket to -1 (JSON cannot carry infinities).
func finiteQuantile(h *metrics.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, coalesced := s.cache.stats()
	lookups := hits + misses + coalesced
	rate := 0.0
	if lookups > 0 {
		// Coalesced lookups count as hits: they were served without a
		// run of their own.
		rate = float64(hits+coalesced) / float64(lookups)
	}
	s.mu.Lock()
	body := metricsBody{
		RequestsTotal:   s.requests,
		ResponsesByCode: make(map[string]uint64, len(s.byCode)),
	}
	for code, n := range s.byCode {
		body.ResponsesByCode[strconv.Itoa(code)] = n
	}
	s.mu.Unlock()
	body.Latency = latencyBody{
		Count: s.latency.Count(),
		P50:   finiteQuantile(s.latency, 0.50),
		P95:   finiteQuantile(s.latency, 0.95),
		P99:   finiteQuantile(s.latency, 0.99),
	}
	body.Cache = cacheBody{Hits: hits, Misses: misses, Coalesced: coalesced, HitRate: rate}
	body.InFlight, body.QueueDepth = s.sched.snapshot()
	chaosRate := 0.0
	if s.cfg.Chaos != nil {
		chaosRate = s.cfg.Chaos.Rate()
	}
	body.Faults = faultsBody{
		ChaosRate:        chaosRate,
		Injected:         s.faultsInjected.Load(),
		Recovered:        s.faultsRecovered.Load(),
		Retries:          s.retriesTotal.Load(),
		RetriesExhausted: s.retriesExhausted.Load(),
		Panics:           s.panics.Load(),
	}
	body.Breakers = s.breakers.states()
	if gov := s.runner.Governor(); gov.Enabled() {
		st := gov.Stats()
		body.Governor = &st
	}
	if total := s.planTotal.Load(); total > 0 {
		s.planMu.Lock()
		decisions := make(map[string]string, len(s.planDecisions))
		for k, v := range s.planDecisions {
			decisions[k] = v
		}
		s.planMu.Unlock()
		body.Planner = &plannerBody{
			DecisionsTotal: total,
			Observed:       s.runner.Planner().Observed(),
			Decisions:      decisions,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// query holds one parsed and validated /v1 request.
type query struct {
	key    runKey
	sys    core.System
	d      *engine.Dataset
	vertex graph.VertexID // wcc/sssp/lpa/triangle target (triangle: -1 = global)
	topK   int            // pagerank

	// plan is the adaptive planner's decision when the request asked
	// for system=auto (the default); nil for explicitly-pinned systems.
	// Its summary travels in the X-Graphserve-Plan response header —
	// like cache provenance, never in the body, so planned responses
	// stay byte-identical to pinned ones.
	plan *plan.Decision
}

// parseQuery validates the common parameters. It writes the error
// response itself and returns ok=false on failure.
func (s *Server) parseQuery(w http.ResponseWriter, r *http.Request, kind engine.Kind) (query, bool) {
	var q query
	vals := r.URL.Query()

	name := datasets.Name(vals.Get("dataset"))
	if name == "" {
		name = datasets.Twitter
	}
	if !datasets.Known(name) {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return q, false
	}

	machines := 16
	if m := vals.Get("machines"); m != "" {
		var err error
		machines, err = strconv.Atoi(m)
		if err != nil || machines < 1 || machines > 4096 {
			writeError(w, http.StatusBadRequest, "machines must be a positive integer, got %q", m)
			return q, false
		}
	}

	// The adaptive planner picks the system (and run configuration)
	// unless the request pins one explicitly.
	sysKey := vals.Get("system")
	if sysKey == "" {
		sysKey = "auto"
	}
	var sys core.System
	var dec *plan.Decision
	if sysKey == "auto" {
		var err error
		dec, err = s.runner.TryDecide(name, kind, machines)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "planning: %v", err)
			return q, false
		}
		if sys, err = core.SystemByKey(dec.System); err != nil {
			writeError(w, http.StatusInternalServerError, "planning: %v", err)
			return q, false
		}
		s.planTotal.Add(1)
		s.planMu.Lock()
		s.planDecisions[dec.Key()] = dec.Summary()
		s.planMu.Unlock()
	} else {
		var err error
		sys, err = core.SystemByKey(sysKey)
		if err != nil {
			writeError(w, http.StatusBadRequest, "unknown system %q", sysKey)
			return q, false
		}
		if sys.PageRankOnly && kind != engine.PageRank {
			writeError(w, http.StatusBadRequest,
				"system %q is a PageRank-only variant and cannot run %s", sysKey, kind)
			return q, false
		}
	}

	// The fixture is warmed at startup for configured datasets; a cold
	// one generates here, under this request's budget.
	d, err := s.runner.TryDataset(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "preparing fixture: %v", err)
		return q, false
	}

	shards := s.cfg.Shards
	if dec != nil {
		// The decision's shard count keys the cache: a planned run and
		// a pinned run of the same system produce bit-identical results
		// (the shard-merge contract), but distinct keys keep the
		// provenance header truthful.
		shards = dec.Shards
	}
	q = query{
		key: runKey{dataset: name, kind: kind, system: sys.Key,
			machines: machines, shards: shards},
		sys:  sys,
		d:    d,
		plan: dec,
	}

	switch kind {
	case engine.PageRank:
		q.topK = 10
		if k := vals.Get("k"); k != "" {
			q.topK, err = strconv.Atoi(k)
			if err != nil || q.topK < 1 {
				writeError(w, http.StatusBadRequest, "k must be a positive integer, got %q", k)
				return q, false
			}
		}
	case engine.Triangle:
		q.vertex = -1 // global count unless a vertex is named
		if v := vals.Get("vertex"); v != "" {
			if q.vertex, err = parseVertex(v, d.NumVertices); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return q, false
			}
		}
	default: // WCC, SSSP, LPA: vertex-targeted, defaulting to the source
		q.vertex = d.Source
		if v := vals.Get("vertex"); v != "" {
			if q.vertex, err = parseVertex(v, d.NumVertices); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return q, false
			}
		}
	}
	return q, true
}

func parseVertex(s string, n int) (graph.VertexID, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v >= n {
		return 0, fmt.Errorf("vertex must be in [0, %d), got %q", n, s)
	}
	return graph.VertexID(v), nil
}

// runMeta is the run provenance common to every query response. All
// fields are deterministic functions of the cache key, so responses
// stay byte-identical between cold and cached serves.
type runMeta struct {
	Dataset    string  `json:"dataset"`
	System     string  `json:"system"`
	Workload   string  `json:"workload"`
	Machines   int     `json:"machines"`
	Status     string  `json:"status"`
	Iterations int     `json:"iterations"`
	TotalSec   float64 `json:"modeled_total_sec"`
}

func metaOf(key runKey, res *engine.Result) runMeta {
	return runMeta{
		Dataset:    string(key.dataset),
		System:     res.System,
		Workload:   key.kind.String(),
		Machines:   key.machines,
		Status:     res.Status.String(),
		Iterations: res.Iterations,
		TotalSec:   res.TotalTime(),
	}
}

func (s *Server) handleQuery(kind engine.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		q, ok := s.parseQuery(w, r, kind)
		if !ok {
			return
		}

		res, cacheStatus, err := s.cache.get(ctx, q.key, func() (*engine.Result, error) {
			return s.compute(ctx, q, kind)
		})
		if err != nil {
			switch {
			case errors.Is(err, errOverloaded):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			case errors.Is(err, errBreakerOpen):
				w.Header().Set("Retry-After", s.breakerRetryAfter())
				writeError(w, http.StatusServiceUnavailable,
					"circuit breaker open for %s/%s, retry later", q.key.dataset, kind)
			case errors.Is(err, govern.ErrBudget):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					"memory budget exhausted for %s/%s, retry later", q.key.dataset, kind)
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
			default:
				writeError(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}

		// Cache provenance goes in a header, never the body: cached
		// bodies must be byte-identical to cold ones. The planner
		// decision trace travels the same way.
		w.Header().Set("X-Graphserve-Cache", cacheStatus)
		if q.plan != nil {
			w.Header().Set("X-Graphserve-Plan", q.plan.Summary())
		}

		meta := metaOf(q.key, res)
		if res.Status != sim.OK {
			// A failed run is a deterministic modeled outcome (OOM,
			// timeout, …) — a finding, served as 500 with the same
			// body every time.
			writeJSON(w, http.StatusInternalServerError, struct {
				runMeta
				Error string `json:"error"`
			}{meta, fmt.Sprintf("run failed: %s", res.Status)})
			return
		}
		writeJSON(w, http.StatusOK, queryBody(kind, q, meta, res))
	}
}

// compute runs the query's experiment behind the circuit breaker and
// the retry loop; it executes on the cache's single-flight leader.
// Load shedding and deadline expiry during admission are conditions of
// the request load, not of this (dataset, workload), so they bypass the
// breaker's failure accounting.
func (s *Server) compute(ctx context.Context, q query, kind engine.Kind) (*engine.Result, error) {
	br := s.breakers.get(q.key.dataset, kind)
	if !br.allow() {
		return nil, errBreakerOpen
	}
	pool, err := s.sched.acquire(ctx)
	if err != nil {
		br.cancel()
		return nil, err
	}
	defer s.sched.release(pool)
	res, err := s.runWithRetry(pool, q, kind)
	if errors.Is(err, govern.ErrBudget) {
		// A budget rejection is a condition of the server's memory
		// budget, not of this (dataset, workload): don't count it
		// against the breaker, and don't cache it — headroom may be
		// back for the next request.
		br.cancel()
		return nil, err
	}
	br.record(err == nil)
	return res, err
}

// runWithRetry executes the run, injecting chaos-source faults when
// configured, and retries runs killed by a recoverable fault the engine
// did not absorb — with exponential backoff and jitter, on the detached
// cache leader, while holding the admission slot. Deterministic modeled
// failures (OOM, TO, SHFL, MPI) are findings, returned as results, not
// retried.
func (s *Server) runWithRetry(pool *par.Pool, q query, kind engine.Kind) (*engine.Result, error) {
	attempts := s.cfg.MaxRetries + 1
	var res *engine.Result
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.retriesTotal.Add(1)
			sleepBackoff(s.cfg.RetryBackoff, attempt)
		}
		f := core.FaultOpts{Recover: s.cfg.Recover, Plan: q.plan}
		var inj *chaos.Injector
		if p := s.cfg.Chaos.PlanFor(q.key.String(), attempt, q.key.machines); p != nil {
			inj = p.Injector()
			f.Injector = inj
		}
		var err error
		res, err = s.runner.TryRunFault(pool, f, q.sys, q.key.dataset, kind, q.key.machines)
		if err != nil {
			return nil, err // fixture/infrastructure errors: not retryable here
		}
		if inj != nil && inj.Fired() {
			s.faultsInjected.Add(1)
		}
		if n := res.Costs.Failures; n > 0 {
			s.faultsRecovered.Add(uint64(n))
		}
		if errors.Is(res.Err, govern.ErrBudget) {
			// Budget floor unreachable: surfaced as a transport error
			// (503 + Retry-After), never as a cached failed result —
			// the rejection reflects this moment's memory pressure,
			// not the run's deterministic outcome.
			return nil, res.Err
		}
		if !sim.IsRecoverable(res.Err) {
			return res, nil
		}
	}
	s.retriesExhausted.Add(1)
	return nil, fmt.Errorf("run killed by injected fault after %d attempts: %w", attempts, res.Err)
}

// sleepBackoff sleeps the exponential backoff for retry attempt
// (1-based): base doubling per attempt, capped at 1s, plus up to 50%
// random jitter to decorrelate concurrent retriers. The doubling stops
// as soon as the cap is reached — a single shift by attempt-1 would
// overflow to a negative duration during a long retry storm (attempt
// ≥ ~33 for a millisecond base) and panic in rand.Int64N.
func sleepBackoff(base time.Duration, attempt int) {
	if d := backoffDelay(base, attempt); d > 0 {
		time.Sleep(d + time.Duration(rand.Int64N(int64(d)+1))/2)
	}
}

// backoffDelay returns the pre-jitter delay for retry attempt (1-based):
// base·2^(attempt-1), capped at 1s. Always in (0, 1s] for base > 0.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < time.Second; i++ {
		d <<= 1
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// breakerRetryAfter renders the breaker cooldown as a Retry-After
// value, rounded up to at least one second.
func (s *Server) breakerRetryAfter() string {
	sec := int(math.Ceil(s.cfg.BreakerCooldown.Seconds()))
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

// rankedVertex is one PageRank top-k entry.
type rankedVertex struct {
	Vertex int     `json:"vertex"`
	Rank   float64 `json:"rank"`
}

// queryBody builds the workload-specific response. Everything here is
// a pure function of the cached result, keeping bodies deterministic.
func queryBody(kind engine.Kind, q query, meta runMeta, res *engine.Result) any {
	switch kind {
	case engine.PageRank:
		return struct {
			runMeta
			K   int            `json:"k"`
			Top []rankedVertex `json:"top"`
		}{meta, q.topK, topRanks(res.Ranks, q.topK)}
	case engine.WCC:
		comp := res.Labels[q.vertex]
		return struct {
			runMeta
			Vertex        int `json:"vertex"`
			Component     int `json:"component"`
			ComponentSize int `json:"component_size"`
		}{meta, int(q.vertex), int(comp), countLabel(res.Labels, comp)}
	case engine.SSSP:
		dist := res.Dist[q.vertex]
		return struct {
			runMeta
			Source    int  `json:"source"`
			Vertex    int  `json:"vertex"`
			Distance  int  `json:"distance"`
			Reachable bool `json:"reachable"`
		}{meta, int(q.d.Source), int(q.vertex), int(dist), dist >= 0}
	case engine.Triangle:
		if q.vertex < 0 {
			return struct {
				runMeta
				TotalTriangles int64 `json:"total_triangles"`
			}{meta, res.TotalTriangles()}
		}
		return struct {
			runMeta
			Vertex            int   `json:"vertex"`
			IncidentTriangles int64 `json:"incident_triangles"`
		}{meta, int(q.vertex), res.Triangles[q.vertex]}
	default: // LPA
		label := res.Labels[q.vertex]
		return struct {
			runMeta
			Vertex        int `json:"vertex"`
			Label         int `json:"label"`
			CommunitySize int `json:"community_size"`
		}{meta, int(q.vertex), int(label), countLabel(res.Labels, label)}
	}
}

// topRanks returns the k highest-ranked vertices, ties broken toward
// the smaller vertex id so the ordering (and the response bytes) are
// fully deterministic.
func topRanks(ranks []float64, k int) []rankedVertex {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ranks[idx[a]] != ranks[idx[b]] {
			return ranks[idx[a]] > ranks[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]rankedVertex, k)
	for i := 0; i < k; i++ {
		out[i] = rankedVertex{Vertex: idx[i], Rank: ranks[idx[i]]}
	}
	return out
}

func countLabel(labels []graph.VertexID, want graph.VertexID) int {
	n := 0
	for _, l := range labels {
		if l == want {
			n++
		}
	}
	return n
}
