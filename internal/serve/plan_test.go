package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestServerAutoPlan covers the adaptive default: a query with no
// system parameter is planned, the decision summary travels in the
// X-Graphserve-Plan header (never the body), an identical repeat
// reuses both the pinned decision and the result cache, and /metrics
// exposes the planner block.
func TestServerAutoPlan(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: 4})

	const path = "/v1/pagerank?k=3"
	code, hdr, body := get(t, ts.URL+path)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	plan := hdr.Get("X-Graphserve-Plan")
	if plan == "" {
		t.Fatal("auto query answered without an X-Graphserve-Plan header")
	}
	for _, field := range []string{"system=", "shards=", "plan=", "dir=", "tier=", "score="} {
		if !strings.Contains(plan, field) {
			t.Errorf("plan summary %q missing %s", plan, field)
		}
	}
	if strings.Contains(string(body), "\"plan\"") {
		t.Fatalf("decision leaked into the response body: %s", body)
	}

	// A pinned system must not get a plan header: nothing was planned.
	_, pinnedHdr, _ := get(t, ts.URL+path+"&system=giraph")
	if got := pinnedHdr.Get("X-Graphserve-Plan"); got != "" {
		t.Fatalf("pinned query carries a plan header: %q", got)
	}

	// The repeat is decision-stable (sticky planner) and cache-warm.
	code, hdr2, body2 := get(t, ts.URL+path)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	if got := hdr2.Get("X-Graphserve-Plan"); got != plan {
		t.Fatalf("repeat re-planned: %q then %q", plan, got)
	}
	if got := hdr2.Get("X-Graphserve-Cache"); got != "hit" {
		t.Fatalf("repeat cache %q, want hit", got)
	}
	if string(body2) != string(body) {
		t.Fatal("repeat body differs")
	}

	var m metricsBody
	_, _, mb := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if m.Planner == nil {
		t.Fatal("/metrics has no planner block after auto queries")
	}
	if m.Planner.DecisionsTotal < 2 {
		t.Fatalf("decisions_total = %d, want >= 2", m.Planner.DecisionsTotal)
	}
	if m.Planner.Observed == 0 {
		t.Fatal("no realized telemetry observed after a planned run")
	}
	found := false
	for _, summary := range m.Planner.Decisions {
		if summary == plan {
			found = true
		}
	}
	if !found {
		t.Fatalf("served decision %q not in /metrics decisions %v", plan, m.Planner.Decisions)
	}
	_ = s
}
