package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/sim"
)

// serveScale keeps fixtures tiny so a cold run takes milliseconds.
const serveScale = 5_000_000

func TestSchedulerAdmissionControl(t *testing.T) {
	s := newScheduler(1, 1, 1)
	defer s.close()

	p1, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue.
	got := make(chan error, 1)
	go func() {
		p, err := s.acquire(context.Background())
		if err == nil {
			s.release(p)
		}
		got <- err
	}()
	waitFor(t, func() bool { return s.queueDepth() == 1 })

	// The queue is full now: the next acquire sheds immediately.
	if _, err := s.acquire(context.Background()); !errors.Is(err, errOverloaded) {
		t.Fatalf("overloaded acquire returned %v, want errOverloaded", err)
	}

	s.release(p1)
	if err := <-got; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}

	// A queued caller whose deadline expires gets the context error.
	p2, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired acquire returned %v, want DeadlineExceeded", err)
	}
	s.release(p2)
}

// TestSchedulerReusesPools: the slot carries one persistent pool, so
// consecutive runs land on the same warm workers.
func TestSchedulerReusesPools(t *testing.T) {
	s := newScheduler(1, 1, 2)
	defer s.close()
	p1, _ := s.acquire(context.Background())
	s.release(p1)
	p2, _ := s.acquire(context.Background())
	s.release(p2)
	if p1 != p2 {
		t.Fatal("scheduler handed out a different pool on reacquire")
	}
	if p1.Workers() != 2 {
		t.Fatalf("slot pool has %d workers, want 2", p1.Workers())
	}
}

func TestResultCacheSingleFlight(t *testing.T) {
	c := newResultCache()
	key := runKey{dataset: datasets.Twitter, kind: engine.PageRank, system: "giraph", machines: 16}
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() (*engine.Result, error) {
		computes.Add(1)
		<-release
		return &engine.Result{System: "G", Status: sim.OK}, nil
	}

	const callers = 8
	statuses := make(chan string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, status, err := c.get(context.Background(), key, compute)
			if err != nil || res == nil {
				t.Errorf("get: %v %v", res, err)
			}
			statuses <- status
		}()
	}
	// Wait until every caller is either the leader or coalesced onto
	// it, then let the single compute finish.
	waitFor(t, func() bool {
		h, m, co := c.stats()
		return h+m+co == callers
	})
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (single-flight)", n)
	}
	counts := map[string]int{}
	for i := 0; i < callers; i++ {
		counts[<-statuses]++
	}
	if counts["miss"] != 1 || counts["coalesced"] != callers-1 {
		t.Fatalf("statuses = %v, want 1 miss and %d coalesced", counts, callers-1)
	}

	// A later call is a plain hit and never invokes compute.
	if _, status, _ := c.get(context.Background(), key, compute); status != "hit" {
		t.Fatalf("warm get = %q, want hit", status)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("hit recomputed: %d computes", n)
	}
}

// TestResultCacheErrorsEvict: an errored computation must not poison
// the key — the next request retries.
func TestResultCacheErrorsEvict(t *testing.T) {
	c := newResultCache()
	key := runKey{dataset: datasets.WRN, kind: engine.WCC, system: "giraph", machines: 16}
	boom := errors.New("boom")
	fail := func() (*engine.Result, error) { return nil, boom }
	if _, _, err := c.get(context.Background(), key, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	res, status, err := c.get(context.Background(), key, func() (*engine.Result, error) {
		return &engine.Result{Status: sim.OK}, nil
	})
	if err != nil || res == nil || status != "miss" {
		t.Fatalf("retry after error: res=%v status=%q err=%v", res, status, err)
	}
}

// TestResultCacheDetachedFill: a leader whose context expires mid-run
// gets an error, but the computation finishes and warms the cache.
func TestResultCacheDetachedFill(t *testing.T) {
	c := newResultCache()
	key := runKey{dataset: datasets.UK, kind: engine.SSSP, system: "giraph", machines: 16}
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the leader's client is already gone
	_, _, err := c.get(ctx, key, func() (*engine.Result, error) {
		defer close(done)
		return &engine.Result{Status: sim.OK}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	<-done // the detached fill still completed
	waitFor(t, func() bool {
		_, status, _ := c.get(context.Background(), key, nil)
		return status == "hit"
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = serveScale
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Datasets == nil {
		cfg.Datasets = []datasets.Name{datasets.Twitter}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestServerQueriesAllWorkloads exercises one query per endpoint and
// asserts the cached replay is byte-identical to the cold serve.
func TestServerQueriesAllWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: 8})

	urls := []string{
		ts.URL + "/v1/pagerank?k=5",
		ts.URL + "/v1/wcc?vertex=3",
		ts.URL + "/v1/sssp?vertex=3",
		ts.URL + "/v1/triangle",
		ts.URL + "/v1/lpa?vertex=3",
	}
	for _, url := range urls {
		code, hdr, cold := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: cold status %d: %s", url, code, cold)
		}
		if got := hdr.Get("X-Graphserve-Cache"); got != "miss" {
			t.Fatalf("%s: cold cache header %q, want miss", url, got)
		}
		var decoded map[string]any
		if err := json.Unmarshal(cold, &decoded); err != nil {
			t.Fatalf("%s: body is not JSON: %v", url, err)
		}
		if decoded["status"] != "OK" {
			t.Fatalf("%s: run status %v", url, decoded["status"])
		}

		code, hdr, warm := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: warm status %d", url, code)
		}
		if got := hdr.Get("X-Graphserve-Cache"); got != "hit" {
			t.Fatalf("%s: warm cache header %q, want hit", url, got)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("%s: cached body differs from cold body:\ncold: %s\nwarm: %s", url, cold, warm)
		}
	}

	// Same workload, different parameters: a distinct cache key runs
	// cold; a pagerank k change reuses the cached run's result.
	if _, hdr, _ := get(t, ts.URL+"/v1/pagerank?k=5&machines=32"); hdr.Get("X-Graphserve-Cache") != "miss" {
		t.Fatal("different machines count should be a cache miss")
	}
	if code, _, body := get(t, ts.URL+"/v1/pagerank?k=3"); code != http.StatusOK {
		t.Fatalf("k=3 over cached run: %d %s", code, body)
	} else {
		var pr struct {
			Top []rankedVertex `json:"top"`
		}
		if err := json.Unmarshal(body, &pr); err != nil || len(pr.Top) != 3 {
			t.Fatalf("top-3 body: %s (err %v)", body, err)
		}
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 2})
	cases := []struct {
		path string
		want int
	}{
		{"/v1/pagerank?dataset=nope", http.StatusNotFound},
		{"/v1/pagerank?system=nope", http.StatusBadRequest},
		{"/v1/wcc?system=gl-a-r-t", http.StatusBadRequest}, // PageRank-only variant
		{"/v1/pagerank?machines=0", http.StatusBadRequest},
		{"/v1/pagerank?machines=zig", http.StatusBadRequest},
		{"/v1/pagerank?k=-1", http.StatusBadRequest},
		{"/v1/sssp?vertex=-1", http.StatusBadRequest},
		{"/v1/sssp?vertex=99999999", http.StatusBadRequest},
		{"/v1/lpa?vertex=glue", http.StatusBadRequest},
	}
	for _, c := range cases {
		code, _, body := get(t, ts.URL+c.path)
		if code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.path, code, c.want, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s", c.path, body)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	code, _, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

// TestServerLoadGenerator drives concurrent mixed-workload traffic at
// a small server, then asserts: every response is a valid outcome, a
// cached replay of each URL is byte-identical to the first serve,
// overload surfaces as 429 + Retry-After, and closing the server
// releases its goroutines (the pools are reused, not respawned).
func TestServerLoadGenerator(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 2, Shards: 2})

	// Mixed workloads over distinct cache keys (machines varies), all
	// fired while the only admission slot is held below: exactly
	// MaxQueue of them queue, the rest must shed with 429.
	kinds := []string{"pagerank", "wcc", "sssp", "triangle", "lpa"}
	var urls []string
	for i := 0; i < 24; i++ {
		urls = append(urls, fmt.Sprintf("%s/v1/%s?machines=%d", ts.URL, kinds[i%len(kinds)], 16+i))
	}

	// Occupy the slot so the burst deterministically overloads the
	// scheduler regardless of how fast individual runs are.
	blocker, err := s.sched.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		code int
		hdr  http.Header
		body []byte
		err  error
	}
	results := make([]outcome, len(urls))
	var done atomic.Int64
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer done.Add(1)
			resp, err := http.Get(url)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			results[i] = outcome{resp.StatusCode, resp.Header, body, err}
		}()
	}
	// Release the slot only once the queue is saturated and every
	// other request has already shed — the two queued requests then
	// run for real, and no straggler can sneak into a freed slot.
	waitFor(t, func() bool { return s.sched.queueDepth() == 2 && done.Load() == 22 })
	s.sched.release(blocker)
	wg.Wait()

	var ok, shed int
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("%s: %v", urls[i], r.err)
		}
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.hdr.Get("Retry-After") == "" {
				t.Errorf("%s: 429 without Retry-After", urls[i])
			}
		default:
			t.Errorf("%s: unexpected status %d: %s", urls[i], r.code, r.body)
		}
	}
	if ok != 2 || shed != 22 {
		t.Fatalf("load: %d ok, %d shed; want exactly 2 admitted (queue depth) and 22 shed", ok, shed)
	}
	t.Logf("load: %d ok, %d shed (429) of %d", ok, shed, len(urls))

	// Replay every successful URL: all hits, byte-identical bodies.
	for i, r := range results {
		if r.code != http.StatusOK {
			continue
		}
		code, hdr, body := get(t, urls[i])
		if code != http.StatusOK || hdr.Get("X-Graphserve-Cache") != "hit" {
			t.Fatalf("%s: replay %d cache=%q", urls[i], code, hdr.Get("X-Graphserve-Cache"))
		}
		if !bytes.Equal(r.body, body) {
			t.Fatalf("%s: cached body differs from cold serve", urls[i])
		}
	}

	// The metrics endpoint reports the story: latency quantiles, the
	// shed requests, and a warm cache.
	code, _, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var m metricsBody
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics body: %v\n%s", err, body)
	}
	if m.RequestsTotal == 0 || m.Latency.Count != m.RequestsTotal {
		t.Fatalf("metrics counters: %+v", m)
	}
	if m.ResponsesByCode["429"] == 0 {
		t.Fatalf("metrics missed the shed requests: %+v", m.ResponsesByCode)
	}
	if m.Cache.Hits == 0 || m.Cache.HitRate <= 0 {
		t.Fatalf("metrics cache stats: %+v", m.Cache)
	}
	t.Logf("latency: p50=%.4fs p95=%.4fs p99=%.4fs over %d requests; cache hit rate %.2f",
		m.Latency.P50, m.Latency.P95, m.Latency.P99, m.Latency.Count, m.Cache.HitRate)

	// Shutdown releases the slot pools and the runner pool: goroutines
	// return to (near) the pre-server baseline, proving runs borrowed
	// the persistent pools instead of leaking per-request workers.
	ts.Close()
	s.Close()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+3 })
}

// waitFor polls cond for up to ~2s, failing the test on timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
