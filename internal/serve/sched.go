package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"graphbench/internal/par"
)

// errOverloaded is returned by scheduler.acquire when the wait queue is
// full; handlers translate it to 429 + Retry-After.
var errOverloaded = errors.New("serve: server overloaded")

// scheduler is the admission controller: a fixed set of run slots, each
// carrying its own persistent par.Pool, plus a bounded wait queue.
// Bounding in-flight runs keeps concurrent engines from oversubscribing
// the machine; carrying the pool in the slot means every admitted run
// dispatches onto warm, parked workers — steady-state requests spawn no
// engine goroutines at all.
type scheduler struct {
	slots   chan *par.Pool
	waiting atomic.Int64
	maxWait int64
}

// newScheduler creates inFlight slots whose pools run shards worker
// goroutines each, with at most maxWait callers queued behind them.
func newScheduler(inFlight, maxWait, shards int) *scheduler {
	s := &scheduler{
		slots:   make(chan *par.Pool, inFlight),
		maxWait: int64(maxWait),
	}
	for i := 0; i < inFlight; i++ {
		s.slots <- par.New(shards)
	}
	return s
}

// acquire returns a slot's pool, queueing while all slots are busy. It
// fails fast with errOverloaded when the queue is already full, and
// with ctx.Err() when the caller's deadline expires while queued.
func (s *scheduler) acquire(ctx context.Context) (*par.Pool, error) {
	select {
	case p := <-s.slots:
		return p, nil
	default:
	}
	if s.waiting.Add(1) > s.maxWait {
		s.waiting.Add(-1)
		return nil, errOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case p := <-s.slots:
		return p, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a pool to its slot.
func (s *scheduler) release(p *par.Pool) { s.slots <- p }

// queueDepth reports how many callers are waiting for a slot.
func (s *scheduler) queueDepth() int64 { return s.waiting.Load() }

// inFlight reports how many slots are currently running.
func (s *scheduler) inFlight() int { return cap(s.slots) - len(s.slots) }

// close reclaims every slot — blocking until in-flight runs release
// theirs — and shuts the pools down, so a server shutdown leaves no
// worker goroutines behind.
func (s *scheduler) close() {
	for i := 0; i < cap(s.slots); i++ {
		(<-s.slots).Close()
	}
}
