package serve

import (
	"context"
	"errors"
	"sync"

	"graphbench/internal/par"
)

// errOverloaded is returned by scheduler.acquire when the wait queue is
// full; handlers translate it to 429 + Retry-After.
var errOverloaded = errors.New("serve: server overloaded")

// scheduler is the admission controller: a fixed set of run slots, each
// carrying its own persistent par.Pool, plus a bounded wait queue.
// Bounding in-flight runs keeps concurrent engines from oversubscribing
// the machine; carrying the pool in the slot means every admitted run
// dispatches onto warm, parked workers — steady-state requests spawn no
// engine goroutines at all.
//
// All admission state (running count, wait queue, idle pools) lives
// under one mutex, and a released pool is handed directly to the first
// waiter without passing through the idle list. That gives two
// invariants the old channel-derived gauges could not: running never
// exceeds the slot count even mid-acquire, and queue length never
// exceeds maxWait, so a /metrics scrape reading snapshot() always sees a
// consistent (in-flight ≤ MaxInFlight, queued ≤ MaxQueue) pair.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled when running drops, for close()
	running int
	maxRun  int
	maxWait int
	free    []*par.Pool      // idle pools; len == maxRun - running - handoffs
	queue   []chan *par.Pool // FIFO waiters, each with a 1-buffered handoff chan
}

// newScheduler creates inFlight slots whose pools run shards worker
// goroutines each, with at most maxWait callers queued behind them.
func newScheduler(inFlight, maxWait, shards int) *scheduler {
	s := &scheduler{maxRun: inFlight, maxWait: maxWait}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < inFlight; i++ {
		s.free = append(s.free, par.New(shards))
	}
	return s
}

// acquire returns a slot's pool, queueing while all slots are busy. It
// fails fast with errOverloaded when the queue is already full, and
// with ctx.Err() when the caller's deadline expires while queued.
func (s *scheduler) acquire(ctx context.Context) (*par.Pool, error) {
	s.mu.Lock()
	if s.running < s.maxRun {
		p := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.running++
		s.mu.Unlock()
		return p, nil
	}
	if len(s.queue) >= s.maxWait {
		s.mu.Unlock()
		return nil, errOverloaded
	}
	ch := make(chan *par.Pool, 1)
	s.queue = append(s.queue, ch)
	s.mu.Unlock()

	select {
	case p := <-ch:
		return p, nil
	case <-ctx.Done():
	}
	// Deadline expired. Dequeue ourselves — unless release already
	// committed a handoff (we left the queue and count as running), in
	// which case the pool must go back.
	s.mu.Lock()
	for i, c := range s.queue {
		if c == ch {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	s.mu.Unlock()
	s.release(<-ch)
	return nil, ctx.Err()
}

// release returns a pool: directly to the first queued waiter if any
// (the slot stays running, so the in-flight gauge never dips and spikes
// across a handoff), otherwise onto the idle list.
func (s *scheduler) release(p *par.Pool) {
	s.mu.Lock()
	if len(s.queue) > 0 {
		ch := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		ch <- p
		return
	}
	s.running--
	s.free = append(s.free, p)
	s.cond.Signal()
	s.mu.Unlock()
}

// snapshot returns the in-flight and queued counts read atomically under
// one lock hold, so the pair is consistent: inFlight ≤ maxRun and
// queued ≤ maxWait simultaneously.
func (s *scheduler) snapshot() (inFlight int, queued int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running, int64(len(s.queue))
}

// queueDepth reports how many callers are waiting for a slot.
func (s *scheduler) queueDepth() int64 {
	_, q := s.snapshot()
	return q
}

// inFlight reports how many slots are currently running.
func (s *scheduler) inFlight() int {
	r, _ := s.snapshot()
	return r
}

// close reclaims every slot — blocking until in-flight runs release
// theirs — and shuts the pools down, so a server shutdown leaves no
// worker goroutines behind.
func (s *scheduler) close() {
	s.mu.Lock()
	for s.running > 0 || len(s.queue) > 0 {
		s.cond.Wait()
	}
	pools := s.free
	s.free = nil
	s.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}
