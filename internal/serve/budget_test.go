package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestServerBudget503 pins the serve-path semantics of an unreachable
// memory budget: a budget below even the out-of-core floor answers
// 503 + Retry-After (the request was fine, the moment was not), the
// failure is never cached, and — unlike compute errors — it does not
// count toward the circuit breaker, so the path stays closed and
// recovers the instant capacity would return.
func TestServerBudget503(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight:      1,
		MaxQueue:         4,
		BreakerThreshold: 2,
		MemBudget:        4096, // below the smallest out-of-core floor
	})
	if got := s.runner.MemoryBudget; got != 4096 {
		t.Fatalf("runner budget %d, want 4096", got)
	}

	// Pin a BSP engine: the governor charges BSP runs, and the adaptive
	// default may pick an engine that never reserves against the ledger.
	const path = "/v1/pagerank?k=3&system=giraph"
	// Well past BreakerThreshold: were budget rejections counted as
	// compute errors, the breaker would open partway through.
	for i := 0; i < 5; i++ {
		code, hdr, body := get(t, ts.URL+path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status %d, want 503: %s", i, code, body)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("attempt %d: 503 without Retry-After", i)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("attempt %d: error body %s", i, body)
		}
	}

	var m metricsBody
	_, _, mb := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if state, ok := m.Breakers["twitter/pagerank"]; ok && state != "closed" {
		t.Fatalf("breaker state %q after budget rejections, want closed (%v)", state, m.Breakers)
	}
	if m.Governor == nil {
		t.Fatal("/metrics has no governor block on a budgeted server")
	}
	if m.Governor.BudgetBytes != 4096 || m.Governor.Rejections == 0 {
		t.Fatalf("governor metrics %+v, want budget 4096 and rejections > 0", m.Governor)
	}
	if m.Governor.UsedBytes != 0 {
		t.Fatalf("rejected runs left %d bytes charged", m.Governor.UsedBytes)
	}

	// The health endpoint still answers: budget exhaustion is load
	// shedding, not a crash.
	if code, _, body := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after rejections: %d %s", code, body)
	}
}

// TestServerBudgetGenerous: a budget the workload fits under changes
// nothing observable — queries answer 200 with the same body as an
// unbudgeted server, and /metrics reports the ledger drained.
func TestServerBudgetGenerous(t *testing.T) {
	_, free := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4})
	_, capped := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4, MemBudget: 1 << 30})

	const path = "/v1/wcc?vertex=3"
	codeF, _, bodyF := get(t, free.URL+path)
	codeC, _, bodyC := get(t, capped.URL+path)
	if codeF != http.StatusOK || codeC != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", codeF, codeC)
	}
	if string(bodyF) != string(bodyC) {
		t.Fatalf("budgeted body differs:\nfree:   %s\ncapped: %s", bodyF, bodyC)
	}

	var m metricsBody
	_, _, mb := get(t, capped.URL+"/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if m.Governor == nil || m.Governor.BudgetBytes != 1<<30 {
		t.Fatalf("governor metrics %+v", m.Governor)
	}
	if m.Governor.UsedBytes != 0 || m.Governor.Rejections != 0 {
		t.Fatalf("generous budget saw pressure: %+v", m.Governor)
	}
}
