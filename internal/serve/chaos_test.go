package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"graphbench/internal/chaos"
)

// TestServerChaosInjection is the serve-path load-generator test under
// fault injection: with a seeded chaos source killing a sizable
// fraction of run attempts, concurrent mixed-workload traffic must
// still come back 200 with bodies byte-identical to a chaos-free
// control server — killed runs are retried, never served — and the
// /metrics fault counters must record the story.
func TestServerChaosInjection(t *testing.T) {
	source := chaos.NewSource(11, 0.4)
	_, chaotic := newTestServer(t, Config{
		MaxInFlight:  2,
		MaxQueue:     32,
		Chaos:        source,
		MaxRetries:   10,
		RetryBackoff: time.Millisecond,
	})
	_, control := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: 32})

	kinds := []string{"pagerank", "wcc", "sssp", "triangle", "lpa"}
	var paths []string
	for i := 0; i < 10; i++ {
		paths = append(paths, fmt.Sprintf("/v1/%s?machines=%d", kinds[i%len(kinds)], 16+i))
	}

	// Fire the whole set concurrently (the queue is sized to hold it):
	// chaos, retry, and single-flight coalescing all race under -race.
	bodies := make([][]byte, len(paths))
	var wg sync.WaitGroup
	for i, p := range paths {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(chaotic.URL + p)
			if err != nil {
				t.Errorf("%s: %v", p, err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d under chaos: %s", p, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every body matches the chaos-free control serve byte for byte, and
	// a replay against the chaotic server is a cache hit — failed
	// attempts were retried out of band, not cached.
	for i, p := range paths {
		if _, _, want := get(t, control.URL+p); !bytes.Equal(bodies[i], want) {
			t.Fatalf("%s: body under chaos differs from control:\nchaos:   %s\ncontrol: %s",
				p, bodies[i], want)
		}
		code, hdr, replay := get(t, chaotic.URL+p)
		if code != http.StatusOK || hdr.Get("X-Graphserve-Cache") != "hit" {
			t.Fatalf("%s: replay %d cache=%q", p, code, hdr.Get("X-Graphserve-Cache"))
		}
		if !bytes.Equal(bodies[i], replay) {
			t.Fatalf("%s: cached replay differs from first serve", p)
		}
	}

	// The seeded schedule at rate 0.4 over 10 keys × 11 attempts is
	// deterministic, and some attempts certainly drew a fault.
	var m metricsBody
	_, _, body := get(t, chaotic.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics body: %v\n%s", err, body)
	}
	if m.Faults.ChaosRate != 0.4 {
		t.Fatalf("metrics chaos_rate = %v, want 0.4", m.Faults.ChaosRate)
	}
	if m.Faults.Injected == 0 || m.Faults.Retries == 0 {
		t.Fatalf("chaos left no trace in metrics: %+v", m.Faults)
	}
	if m.Faults.RetriesExhausted != 0 {
		t.Fatalf("retries exhausted under a 10-retry budget: %+v", m.Faults)
	}
	t.Logf("chaos: %d faults injected, %d retries across %d keys",
		m.Faults.Injected, m.Faults.Retries, len(paths))
}

// TestServerChaosWithRecovery: same contract with Recover on — faults
// are absorbed inside the engines via checkpoint/retry/lineage
// recovery, so runs succeed on the first attempt, recovered_total
// counts the absorbed faults, and outputs still match a fault-free
// control (recovered runs differ only in modeled time, which the
// response body rounds into modeled_total_sec — so compare the
// decoded outputs, not raw bytes).
func TestServerChaosWithRecovery(t *testing.T) {
	_, chaotic := newTestServer(t, Config{
		MaxInFlight:  2,
		MaxQueue:     8,
		Chaos:        chaos.NewSource(7, 1), // every first attempt draws a fault
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		Recover:      true,
	})
	_, control := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: 8})

	const path = "/v1/pagerank?k=5&system=giraph&machines=64"
	code, _, body := get(t, chaotic.URL+path)
	if code != http.StatusOK {
		t.Fatalf("recovered run: status %d: %s", code, body)
	}
	var got, want map[string]any
	_, _, controlBody := get(t, control.URL+path)
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(controlBody, &want); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"status", "iterations", "top"} {
		if fmt.Sprint(got[field]) != fmt.Sprint(want[field]) {
			t.Fatalf("recovered %s = %v, control %v", field, got[field], want[field])
		}
	}
	if gotSec, wantSec := got["modeled_total_sec"], want["modeled_total_sec"]; gotSec == wantSec {
		t.Fatalf("recovered modeled_total_sec %v should exceed control %v", gotSec, wantSec)
	}

	var m metricsBody
	_, _, mb := get(t, chaotic.URL+"/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if m.Faults.Injected == 0 || m.Faults.Recovered == 0 {
		t.Fatalf("recovery left no trace in metrics: %+v", m.Faults)
	}
}

// TestServerBreakerOpensAndRecovers walks the circuit breaker through
// its whole life: persistent injected faults with no retry budget trip
// it (500s, then 503 + Retry-After), errors evict the cache key so no
// failure is ever memoized, and once the faults stop the half-open
// probe closes it again and the path serves normally.
func TestServerBreakerOpensAndRecovers(t *testing.T) {
	source := chaos.NewSource(3, 1) // every attempt draws a fault
	s, ts := newTestServer(t, Config{
		MaxInFlight:      1,
		MaxQueue:         4,
		Chaos:            source,
		MaxRetries:       -1, // no retries: every fault is a compute error
		BreakerThreshold: 2,
		BreakerCooldown:  150 * time.Millisecond,
	})

	// Pin a BSP engine: faults are drawn at superstep/job boundaries,
	// and the adaptive default may pick a GAS engine, which has none.
	const path = "/v1/pagerank?k=3&system=giraph"

	// Two consecutive compute errors: 500s, each evicting its cache
	// entry. Eviction is observable through the fault counter: every
	// attempt must reach the engine and draw a fresh injected kill — a
	// poisoned cache entry would serve the old error without running.
	for i := 0; i < 2; i++ {
		before := s.faultsInjected.Load()
		code, _, body := get(t, ts.URL+path)
		if code != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d, want 500: %s", i, code, body)
		}
		if s.faultsInjected.Load() == before {
			t.Fatalf("attempt %d: engine never ran — errors must evict, not cache", i)
		}
	}

	// The breaker is open now: requests shed with 503 + Retry-After
	// without consuming an admission slot or an engine run.
	injectedBefore := s.faultsInjected.Load()
	code, hdr, body := get(t, ts.URL+path)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("open breaker: 503 without Retry-After")
	}
	if s.faultsInjected.Load() != injectedBefore {
		t.Fatal("open breaker still ran the engine")
	}
	var m metricsBody
	_, _, mb := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if m.Faults.RetriesExhausted != 2 {
		t.Fatalf("retries_exhausted = %d, want 2", m.Faults.RetriesExhausted)
	}
	if state := m.Breakers["twitter/pagerank"]; state != "open" {
		t.Fatalf("breaker state %q, want open (%v)", state, m.Breakers)
	}

	// Stop the faults, wait out the cooldown: the half-open probe
	// succeeds, the breaker closes, and the path serves normally again.
	source.SetRate(0)
	waitFor(t, func() bool {
		code, _, _ := get(t, ts.URL+path)
		return code == http.StatusOK
	})
	code, _, first := get(t, ts.URL+path)
	if code != http.StatusOK {
		t.Fatalf("recovered path: status %d", code)
	}
	code, hdr, replay := get(t, ts.URL+path)
	if code != http.StatusOK || hdr.Get("X-Graphserve-Cache") != "hit" {
		t.Fatalf("recovered replay: %d cache=%q", code, hdr.Get("X-Graphserve-Cache"))
	}
	if !bytes.Equal(first, replay) {
		t.Fatal("recovered replay differs from first healthy serve")
	}
	_, _, mb = get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if state := m.Breakers["twitter/pagerank"]; state != "closed" {
		t.Fatalf("breaker state %q after recovery, want closed", state)
	}
}
