package relational

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/gas"
	"graphbench/internal/sim"
)

func TestAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 16, 1e-9, engine.Options{})
}

func TestJoinOperators(t *testing.T) {
	// Tiny SQL sanity: edges (0->1, 0->2, 1->2), ranks 1 each,
	// outdeg 2,1,0.
	src := Column{0, 0, 1}
	dst := Column{1, 2, 2}
	val := Column{1, 1, 1}
	weight := Column{2, 1, 0}
	sums := JoinSumByDst(src, dst, val, weight, 3)
	if sums[0] != 0 || sums[1] != 0.5 || sums[2] != 1.5 {
		t.Fatalf("JoinSumByDst = %v", sums)
	}
	active := []bool{true, false, false}
	mins := JoinMinByDst(src, dst, Column{0, 9, 9}, active, 1, 99, 3)
	if mins[1] != 1 || mins[2] != 1 || mins[0] != 99 {
		t.Fatalf("JoinMinByDst = %v", mins)
	}
}

func TestTableBasics(t *testing.T) {
	cols := []string{"id", "rank"}
	tb := NewTable("v", cols...)
	tb.Append(cols, 0, 1.0)
	tb.Append(cols, 1, 2.0)
	if tb.N != 2 || tb.Col("rank")[1] != 2.0 {
		t.Fatalf("table = %+v", tb)
	}
	tb.SetCol("rank", Column{3, 4})
	if tb.Col("rank")[0] != 3 {
		t.Fatal("SetCol failed")
	}
}

func TestSmallMemoryLargeIO(t *testing.T) {
	// Figure 13: Vertica's footprint is small, but I/O wait and
	// network dominate versus a native graph system.
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	w := engine.NewPageRankIters(20)
	v := enginetest.RunOK(t, New(), f, 64, w, engine.Options{})
	gl := enginetest.RunOK(t, gas.New(), f, 64, w, engine.Options{})
	if v.MemMax >= gl.MemMax {
		t.Errorf("Vertica memory %d not below GraphLab %d", v.MemMax, gl.MemMax)
	}
	if v.CPUIO <= gl.CPUIO {
		t.Errorf("Vertica I/O wait %v not above GraphLab %v", v.CPUIO, gl.CPUIO)
	}
	if v.NetBytes <= gl.NetBytes {
		t.Errorf("Vertica network %d not above GraphLab %d", v.NetBytes, gl.NetBytes)
	}
}

func TestGapGrowsWithClusterSize(t *testing.T) {
	// §5.11: "As the cluster size increases, so does the gap between
	// its performance and other systems."
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	w := engine.NewPageRankIters(20)
	ratio := func(m int) float64 {
		// GraphLab needs auto partitioning to load UK below 32
		// machines (§5.2), so compare at 32 and 128.
		v := enginetest.RunOK(t, New(), f, m, w, engine.Options{})
		gl := enginetest.RunOK(t, gas.New(), f, m, w, engine.Options{Partitioning: "auto"})
		return v.Exec / gl.Exec
	}
	small, large := ratio(32), ratio(128)
	if large <= small {
		t.Errorf("Vertica/GraphLab exec ratio at 128 (%v) not above 32 (%v)", large, small)
	}
	if small < 1 {
		t.Errorf("Vertica (%v) should already be slower at 32 machines", small)
	}
}

func TestNoOOMEver(t *testing.T) {
	// Disk-resident tables: even ClueWeb-scale joins spill, not crash.
	f := enginetest.Prepare(t, datasets.ClueWeb, 10_000_000)
	res := New().Run(sim.NewSize(16), f.Dataset, engine.NewKHop(f.Dataset.Source), engine.Options{})
	if res.Status != sim.OK {
		t.Fatalf("Vertica ClueWeb K-hop at 16: %v", res.Status)
	}
}
