package relational

import (
	"math"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/sim"
)

// Profile is Vertica's cost profile: fast vectorized C++ execution over
// disk-resident projections, with a small memory footprint.
var Profile = sim.Profile{
	Name: "vertica", Lang: "SQL",
	RecordCPUNs:     120, // vectorized probe/aggregate per row
	MsgBytes:        12,  // re-segmentation record
	PerMachineBase:  1 * sim.GB,
	Imbalance:       1.1,
	JobStartup:      1,
	JobStartupPerM:  0.02,
	PressurePenalty: 0, // spills instead of failing
}

// tempTableFixed is the per-iteration catalog cost of creating,
// distributing and dropping temporary tables, which grows with cluster
// size (§5.11: "its requirement to create and delete new temporary
// tables during execution, because each table is partitioned across
// multiple machines").
const tempTableFixed = 1.2

const tempTablePerMachine = 0.12

// edgeRowBytes is the on-disk projection width of an edge row.
const edgeRowBytes = 12

// vertexRowBytes is the on-disk width of a vertex-state row.
const vertexRowBytes = 24

// Vertica is the engine.
type Vertica struct {
	Profile sim.Profile
}

// New returns a Vertica engine with the default profile.
func New() *Vertica { return &Vertica{Profile: Profile} }

// Name implements engine.Engine.
func (e *Vertica) Name() string { return "vertica" }

// Run implements engine.Engine.
func (e *Vertica) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: e.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	m := c.Size()
	if err := c.AllocAll(e.Profile.PerMachineBase); err != nil {
		return res.Finish(c, err)
	}

	// Load: COPY the edge list into the segmented, sorted edge
	// projection. Vertica uses its own storage, not HDFS (§2.6).
	mark := c.Clock()
	gr, err := d.LoadGraph(graph.FormatEdge)
	if err != nil {
		return res.Finish(c, err)
	}
	edgeBytes := float64(gr.NumEdges()) * d.Scale * edgeRowBytes
	loadCosts := make([]sim.StepCost, m)
	parse := e.Profile.RecordSeconds(float64(gr.NumEdges())*d.Scale/float64(m), c.Config().Cores)
	for i := range loadCosts {
		loadCosts[i] = sim.StepCost{
			ComputeSeconds: parse * 2, // parse + sort for the projection
			DiskWriteBytes: edgeBytes / float64(m) * 2,
			NetSendBytes:   edgeBytes / float64(m),
			NetRecvBytes:   edgeBytes / float64(m),
		}
	}
	if err := c.RunStep(loadCosts); err != nil {
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	// Build the edge table (real columns).
	work := gr
	if w.Kind == engine.WCC {
		work = gr.Undirected()
	}
	src := make(Column, 0, work.NumEdges())
	dst := make(Column, 0, work.NumEdges())
	work.Edges(func(s, t graph.VertexID) bool {
		src = append(src, float64(s))
		dst = append(dst, float64(t))
		return true
	})

	mark = c.Clock()
	execErr := e.iterate(c, d, work, src, dst, w, res)
	res.Exec = c.Clock() - mark
	if execErr != nil {
		return res.Finish(c, execErr)
	}

	// Save: the final vertex table is already a table; export it.
	mark = c.Clock()
	outBytes := float64(work.NumVertices()) * d.Scale * vertexRowBytes
	saveCosts := make([]sim.StepCost, m)
	for i := range saveCosts {
		saveCosts[i] = sim.StepCost{DiskWriteBytes: outBytes / float64(m)}
	}
	saveErr := c.RunStep(saveCosts)
	res.Save = c.Clock() - mark
	return res.Finish(c, saveErr)
}

// chargeIteration charges one SQL iteration: the edge projection scan,
// the join/aggregate CPU, the re-segmentation shuffle, and the
// temp-table swap.
func (e *Vertica) chargeIteration(c *sim.Cluster, d *engine.Dataset, scanRows, shuffleRows, outRows float64, dil float64) error {
	m := float64(c.Size())
	p := &e.Profile
	cpu := p.RecordSeconds(scanRows*d.Scale/m*p.Imbalance, c.Config().Cores)
	read := scanRows * d.Scale * edgeRowBytes / m
	write := outRows * d.Scale * vertexRowBytes * 2 / m // new table + WOS flush
	net := shuffleRows * d.Scale * float64(p.MsgBytes) / m

	costs := make([]sim.StepCost, c.Size())
	for i := range costs {
		costs[i] = sim.StepCost{
			ComputeSeconds: cpu * dil,
			DiskReadBytes:  read * dil,
			DiskWriteBytes: write,
			NetSendBytes:   net,
			NetRecvBytes:   net,
		}
	}
	if err := c.RunStep(costs); err != nil {
		return err
	}
	return c.Advance((tempTableFixed + tempTablePerMachine*m) * dil)
}

func (e *Vertica) iterate(c *sim.Cluster, d *engine.Dataset, work *graph.Graph,
	src, dst Column, w engine.Workload, res *engine.Result) error {

	n := work.NumVertices()
	dil := d.DilationFor(w.Kind)
	eRows := float64(len(src))

	switch w.Kind {
	case engine.PageRank:
		ranks := make(Column, n)
		weight := make(Column, n)
		for v := 0; v < n; v++ {
			ranks[v] = 1
			weight[v] = float64(work.OutDegree(graph.VertexID(v)))
		}
		iters := 0
		for {
			iters++
			sums := JoinSumByDst(src, dst, ranks, weight, n)
			maxDelta := 0.0
			for v := range sums {
				nv := w.Damping + (1-w.Damping)*sums[v]
				if dd := math.Abs(nv - ranks[v]); dd > maxDelta {
					maxDelta = dd
				}
				sums[v] = nv
			}
			ranks = sums // CREATE TABLE new AS ... ; swap (§2.6)
			res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: iters, Active: n})
			// Shuffle: contributions re-segmented by dst, aggregates
			// re-joined with the vertex table, and the new table
			// distributed — roughly 2.5 row-movements per edge row.
			if err := e.chargeIteration(c, d, eRows, eRows*2.5, float64(n), 1); err != nil {
				res.Iterations = iters
				res.Ranks = ranks
				return err
			}
			if w.MaxIterations > 0 && iters >= w.MaxIterations {
				break
			}
			if w.MaxIterations <= 0 && maxDelta < w.Tolerance {
				break
			}
		}
		res.Iterations = iters
		res.Ranks = ranks
		return nil

	case engine.Triangle:
		// CREATE TABLE oriented AS SELECT ... : a degree aggregate joined
		// back onto the edge table, filtered to the forward direction.
		o, _ := graph.ForwardOrient(work)
		oRows := float64(o.NumEdges())
		if err := e.chargeIteration(c, d, 2*eRows, eRows, oRows, 1); err != nil {
			res.Iterations = 1
			return err
		}
		counts, joinRows := TriangleSelfJoin(o)
		res.Triangles = counts
		res.Iterations = 2
		res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: 1, Active: n})
		// The three-way self-join: two scans of the oriented projection,
		// the e1⋈e2 intermediate re-segmented by its probe key, and the
		// credit aggregate written back to the vertex table.
		return e.chargeIteration(c, d, 2*oRows+float64(joinRows), 2*float64(joinRows), float64(n), 1)

	case engine.LPA:
		u := work.Simple()
		usrc := make(Column, 0, u.NumEdges())
		udst := make(Column, 0, u.NumEdges())
		u.Edges(func(s, t graph.VertexID) bool {
			usrc = append(usrc, float64(s))
			udst = append(udst, float64(t))
			return true
		})
		uRows := float64(len(usrc))
		labels := make(Column, n)
		for v := range labels {
			labels[v] = float64(v)
		}
		rounds := w.LPAIterations()
		finish := func(iters int) {
			res.Iterations = iters
			out := make([]graph.VertexID, n)
			for v := range labels {
				out[v] = graph.VertexID(labels[v])
			}
			res.Labels = graph.CanonicalizeLabels(out)
		}
		// Symmetrize: CREATE TABLE und AS SELECT both directions.
		if err := e.chargeIteration(c, d, eRows, uRows, uRows/2, 1); err != nil {
			finish(0)
			return err
		}
		for it := 1; it <= rounds; it++ {
			next := JoinModeByDst(usrc, udst, labels, labels, n)
			changed := 0
			for v := range next {
				if next[v] != labels[v] {
					changed++
				}
			}
			labels = next // CREATE TABLE new AS ... ; swap (§2.6)
			res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: it, Active: n, Updates: changed})
			if err := e.chargeIteration(c, d, uRows, uRows*2.5, float64(n), 1); err != nil {
				finish(it)
				return err
			}
		}
		finish(rounds)
		return nil

	default:
		// Traversals: the active-vertex temp table optimization. The
		// join still scans the full edge projection; only the build
		// side shrinks.
		vals := make(Column, n)
		for v := range vals {
			vals[v] = math.Inf(1)
		}
		delta := 1.0
		if w.Kind == engine.WCC {
			delta = 0
			for v := range vals {
				vals[v] = float64(v)
			}
		} else {
			vals[d.Source] = 0
		}
		active := make([]bool, n)
		if w.Kind == engine.WCC {
			for v := range active {
				active[v] = true
			}
		} else {
			active[d.Source] = true
		}

		iters := 0
		for {
			iters++
			mins := JoinMinByDst(src, dst, vals, active, delta, math.Inf(1), n)
			activeRows := 0.0
			for v := range active {
				if active[v] {
					activeRows++
				}
			}
			changed := 0
			nextActive := make([]bool, n)
			for v := range mins {
				if mins[v] < vals[v] {
					vals[v] = mins[v]
					nextActive[v] = true
					changed++
				}
			}
			active = nextActive
			res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: iters, Active: int(activeRows), Updates: changed})
			if err := e.chargeIteration(c, d, eRows, activeRows*4, float64(changed), dil); err != nil {
				break
			}
			if changed == 0 {
				break
			}
			if w.Kind == engine.KHop && iters >= w.K {
				break
			}
		}
		res.Iterations = int(float64(iters)*dil + 0.5)
		if w.Kind == engine.WCC {
			labels := make([]graph.VertexID, n)
			for v := range vals {
				labels[v] = graph.VertexID(vals[v])
			}
			res.Labels = labels
		} else {
			dist := make([]int32, n)
			for v := range vals {
				if math.IsInf(vals[v], 1) {
					dist[v] = -1
				} else {
					dist[v] = int32(vals[v])
				}
			}
			res.Dist = dist
		}
		return nil
	}
}
