// Package relational implements the Vertica approach of §2.6: graphs as
// edge and vertex tables in a shared-nothing columnar store, workloads
// as iterated join + aggregate queries, with the paper's two
// optimizations — replacing the vertex table wholesale instead of
// updating in place (sequential instead of random I/O), and keeping
// traversal frontiers in an active-vertex temporary table.
//
// The executor is real: columns hold values, joins and aggregations
// compute them. Costs are charged per operator: projection scans from
// disk (Vertica's I/O wait, Figure 13a), re-segmentation shuffles for
// joins and group-bys (Figure 13c: network grows with the cluster), and
// temp-table create/swap catalog work per iteration — the overheads
// behind §5.11's finding that Vertica is not competitive and falls
// further behind as the cluster grows.
package relational

import (
	"slices"

	"graphbench/internal/graph"
	"graphbench/internal/singlethread"
)

// Column is a columnar vector. Vertex ids are stored as float64, which
// is lossless below 2^53.
type Column []float64

// Table is a named collection of equal-length columns, hash-segmented
// across machines by its first column.
type Table struct {
	Name string
	N    int
	cols map[string]Column
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, colNames ...string) *Table {
	t := &Table{Name: name, cols: make(map[string]Column, len(colNames))}
	for _, c := range colNames {
		t.cols[c] = nil
	}
	return t
}

// Append adds one row; values follow the order used at construction.
func (t *Table) Append(colNames []string, vals ...float64) {
	for i, c := range colNames {
		t.cols[c] = append(t.cols[c], vals[i])
	}
	t.N++
}

// Col returns the named column.
func (t *Table) Col(name string) Column { return t.cols[name] }

// SetCol replaces the named column.
func (t *Table) SetCol(name string, c Column) {
	t.cols[name] = c
	if len(c) > t.N {
		t.N = len(c)
	}
}

// JoinSumByDst computes, in one pass, the canonical PageRank query:
//
//	SELECT e.dst, SUM(v.val / v.weight)
//	FROM edges e JOIN vertices v ON e.src = v.id GROUP BY e.dst
//
// vertices are addressed positionally (id = row index), as Vertica's
// dense projections allow. weight entries <= 0 contribute nothing.
func JoinSumByDst(src, dst Column, val, weight Column, n int) Column {
	out := make(Column, n)
	for i := range src {
		s, d := int(src[i]), int(dst[i])
		if w := weight[s]; w > 0 {
			out[d] += val[s] / w
		}
	}
	return out
}

// TriangleSelfJoin evaluates the canonical triangle query as a
// three-way self-join over the forward-oriented edge projection:
//
//	SELECT e1.src, e1.dst, e2.dst
//	FROM oriented e1
//	JOIN oriented e2 ON e2.src = e1.dst
//	JOIN oriented e3 ON e3.src = e1.src AND e3.dst = e2.dst
//
// Each match is one triangle (discovered exactly once thanks to the
// degree-ordered orientation) credited to all three corners, so the
// returned counts are per-vertex incident-triangle counts. joinRows is
// the e1⋈e2 intermediate cardinality — the rows probed against e3 and
// the dominant cost of the plan.
func TriangleSelfJoin(o *graph.Graph) (counts []int64, joinRows int64) {
	n := o.NumVertices()
	counts = make([]int64, n)
	for u := 0; u < n; u++ {
		for _, v := range o.OutNeighbors(graph.VertexID(u)) {
			for _, w := range o.OutNeighbors(v) {
				joinRows++
				if o.HasEdge(graph.VertexID(u), w) {
					counts[u]++
					counts[v]++
					counts[w]++
				}
			}
		}
	}
	return counts, joinRows
}

// JoinModeByDst computes the LPA round query:
//
//	SELECT e.dst, MODE(v.label)  -- ties broken toward the largest label
//	FROM edges e JOIN vertices v ON e.src = v.id GROUP BY e.dst
//
// Vertices with no incoming rows keep their value from keep. vertices
// are addressed positionally, as in the other join operators.
func JoinModeByDst(src, dst Column, val, keep Column, n int) Column {
	offsets := make([]int32, n+1)
	for _, d := range dst {
		offsets[int(d)+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	bucketed := make([]float64, len(src))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := range src {
		d := int(dst[i])
		bucketed[cursor[d]] = val[int(src[i])]
		cursor[d]++
	}
	out := make(Column, n)
	for v := 0; v < n; v++ {
		run := bucketed[offsets[v]:offsets[v+1]]
		slices.Sort(run)
		out[v] = singlethread.ModeMaxLabel(run, keep[v])
	}
	return out
}

// JoinMinByDst computes the traversal query:
//
//	SELECT e.dst, MIN(v.val + delta)
//	FROM edges e JOIN active v ON e.src = v.id GROUP BY e.dst
//
// restricted to src rows flagged active. Entries with no incoming
// update keep +Inf (represented by the supplied init).
func JoinMinByDst(src, dst Column, val Column, active []bool, delta float64, init float64, n int) Column {
	out := make(Column, n)
	for i := range out {
		out[i] = init
	}
	for i := range src {
		s, d := int(src[i]), int(dst[i])
		if active != nil && !active[s] {
			continue
		}
		if v := val[s] + delta; v < out[d] {
			out[d] = v
		}
	}
	return out
}
