// Package relational implements the Vertica approach of §2.6: graphs as
// edge and vertex tables in a shared-nothing columnar store, workloads
// as iterated join + aggregate queries, with the paper's two
// optimizations — replacing the vertex table wholesale instead of
// updating in place (sequential instead of random I/O), and keeping
// traversal frontiers in an active-vertex temporary table.
//
// The executor is real: columns hold values, joins and aggregations
// compute them. Costs are charged per operator: projection scans from
// disk (Vertica's I/O wait, Figure 13a), re-segmentation shuffles for
// joins and group-bys (Figure 13c: network grows with the cluster), and
// temp-table create/swap catalog work per iteration — the overheads
// behind §5.11's finding that Vertica is not competitive and falls
// further behind as the cluster grows.
package relational

// Column is a columnar vector. Vertex ids are stored as float64, which
// is lossless below 2^53.
type Column []float64

// Table is a named collection of equal-length columns, hash-segmented
// across machines by its first column.
type Table struct {
	Name string
	N    int
	cols map[string]Column
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, colNames ...string) *Table {
	t := &Table{Name: name, cols: make(map[string]Column, len(colNames))}
	for _, c := range colNames {
		t.cols[c] = nil
	}
	return t
}

// Append adds one row; values follow the order used at construction.
func (t *Table) Append(colNames []string, vals ...float64) {
	for i, c := range colNames {
		t.cols[c] = append(t.cols[c], vals[i])
	}
	t.N++
}

// Col returns the named column.
func (t *Table) Col(name string) Column { return t.cols[name] }

// SetCol replaces the named column.
func (t *Table) SetCol(name string, c Column) {
	t.cols[name] = c
	if len(c) > t.N {
		t.N = len(c)
	}
}

// JoinSumByDst computes, in one pass, the canonical PageRank query:
//
//	SELECT e.dst, SUM(v.val / v.weight)
//	FROM edges e JOIN vertices v ON e.src = v.id GROUP BY e.dst
//
// vertices are addressed positionally (id = row index), as Vertica's
// dense projections allow. weight entries <= 0 contribute nothing.
func JoinSumByDst(src, dst Column, val, weight Column, n int) Column {
	out := make(Column, n)
	for i := range src {
		s, d := int(src[i]), int(dst[i])
		if w := weight[s]; w > 0 {
			out[d] += val[s] / w
		}
	}
	return out
}

// JoinMinByDst computes the traversal query:
//
//	SELECT e.dst, MIN(v.val + delta)
//	FROM edges e JOIN active v ON e.src = v.id GROUP BY e.dst
//
// restricted to src rows flagged active. Entries with no incoming
// update keep +Inf (represented by the supplied init).
func JoinMinByDst(src, dst Column, val Column, active []bool, delta float64, init float64, n int) Column {
	out := make(Column, n)
	for i := range out {
		out[i] = init
	}
	for i := range src {
		s, d := int(src[i]), int(dst[i])
		if active != nil && !active[s] {
			continue
		}
		if v := val[s] + delta; v < out[d] {
			out[d] = v
		}
	}
	return out
}
