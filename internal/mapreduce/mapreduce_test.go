package mapreduce

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/sim"
)

func TestAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 16, 1e-9, engine.Options{})
}

func TestDiskBasedNeverOOMs(t *testing.T) {
	// §5.9: out-of-core systems can finish when memory is constrained.
	// ClueWeb K-hop on a 16-machine cluster kills every in-memory
	// system; Hadoop plods through.
	f := enginetest.Prepare(t, datasets.ClueWeb, 10_000_000)
	res := New().Run(sim.NewSize(16), f.Dataset, engine.NewKHop(f.Dataset.Source), engine.Options{})
	if res.Status != sim.OK {
		t.Fatalf("Hadoop ClueWeb K-hop at 16: status %v (%v)", res.Status, res.Err)
	}
	if res.MemMax > 10*sim.GB {
		t.Errorf("Hadoop per-machine memory = %d bytes; should stay small and fixed", res.MemMax)
	}
}

func TestSlowestOnIterativeWorkloads(t *testing.T) {
	// Hadoop pays a full job (startup + scan + shuffle + write) per
	// iteration; per-iteration cost must dwarf BSP systems'.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	res := enginetest.RunOK(t, New(), f, 16, engine.NewPageRankIters(5), engine.Options{})
	perIter := res.Exec / 5
	if perIter < 30 {
		t.Errorf("Hadoop per-iteration time = %.1fs; the paper reports minutes-scale iterations", perIter)
	}
	if res.CPUIO <= 0 {
		t.Error("no disk I/O charged")
	}
}

func TestWRNTraversalTimesOut(t *testing.T) {
	// Figure 8: Hadoop cannot finish SSSP on the road network within
	// 24 hours at any cluster size.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	res := New().Run(sim.NewSize(128), f.Dataset, engine.NewSSSP(f.Dataset.Source), engine.Options{})
	if res.Status != sim.TO {
		t.Fatalf("Hadoop WRN SSSP at 128: status %v, want TO", res.Status)
	}
}

func TestHadoopNoShuffleBug(t *testing.T) {
	// The SHFL failure belongs to HaLoop, not Hadoop.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	res := enginetest.RunOK(t, New(), f, 64, engine.NewPageRankIters(8), engine.Options{})
	if res.Status != sim.OK {
		t.Fatalf("plain Hadoop hit %v", res.Status)
	}
}
