// Package mapreduce implements Hadoop MapReduce (§2.4): a disk-based
// BSP data-processing framework running graph workloads as chains of
// map/shuffle/sort/reduce jobs, one job per iteration.
//
// The paper's Hadoop pathology is reproduced structurally: every
// iteration re-reads the whole graph from HDFS, shuffles both structure
// and messages across the network, sorts them, and writes everything
// back with replication — "excessive I/O with HDFS and data shuffling
// at every iteration". The payoff, also reproduced: a small, fixed
// memory footprint that never OOMs, making Hadoop the fallback when
// graphs exceed cluster memory (§5.9, §5.10).
package mapreduce

import (
	"math"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// Profile is Hadoop's cost profile: 4 mappers / 2 reducers per machine,
// 30 GB granted, JVM text-record processing.
var Profile = sim.Profile{
	Name: "hadoop", Lang: "Java",
	EdgeOpsPerSec:   40e6,
	RecordCPUNs:     1500, // parse + serialize a text record
	MsgBytes:        24,   // shuffled message record
	MsgMemBytes:     0,    // disk-based: messages spill, they don't reside
	VertexBytes:     0,
	EdgeBytes:       0,
	PerMachineBase:  5 * sim.GB, // mapper/reducer JVM heaps
	Imbalance:       1.2,
	JobStartup:      18, // job setup + task launch
	JobStartupPerM:  0.12,
	PressurePenalty: 0,
}

// Hadoop is the engine.
type Hadoop struct {
	Profile sim.Profile
	// haloop-style extensions are configured by the haloop package.
	InvariantCache bool    // cache loop-invariant data on local disk
	LoopAwareSched bool    // mapper/partition affinity cuts shuffle
	ShuffleBugAt   int     // iteration at which the SHFL bug fires on >=64 machines (0: never)
	SpeedupName    string  // engine name override
	ShuffleFactor  float64 // fraction of shuffle remaining under loop-aware scheduling
}

// New returns a plain Hadoop engine.
func New() *Hadoop { return &Hadoop{Profile: Profile, ShuffleFactor: 1} }

// Name implements engine.Engine.
func (h *Hadoop) Name() string {
	if h.SpeedupName != "" {
		return h.SpeedupName
	}
	return "hadoop"
}

// jobCost is the modeled cost of one MapReduce job.
type jobCost struct {
	inputBytes   float64 // read from HDFS by mappers
	mapRecords   float64 // records processed by mappers
	interBytes   float64 // map output: spilled, shuffled, sorted
	interRecords float64
	reduceOut    float64 // bytes written back to HDFS (before replication)
	dilation     float64 // iteration-dilation on this job's fixed costs
}

// charge runs one job against the cluster.
func (h *Hadoop) charge(c *sim.Cluster, jc jobCost) error {
	p := &h.Profile
	m := float64(c.Size())
	cores := c.Config().Cores
	dil := jc.dilation
	if dil < 1 {
		dil = 1
	}

	if err := c.Advance(p.StartupSeconds(c.Size()) * dil); err != nil {
		return err
	}

	shuffle := jc.interBytes * h.shuffleFactor()
	sortCPU := jc.interRecords * math.Log2(math.Max(jc.interRecords/m, 2)) * 80e-9 / float64(cores)
	cpu := p.RecordSeconds((jc.mapRecords+jc.interRecords)/m*p.Imbalance, cores) + sortCPU/m*p.Imbalance
	// Per-machine shuffle share: 1/m of the volume, (m-1)/m of which
	// crosses the network.
	netPerMachine := shuffle / m * (m - 1) / m * p.Imbalance

	costs := make([]sim.StepCost, c.Size())
	for i := range costs {
		costs[i] = sim.StepCost{
			ComputeSeconds: cpu * dil,
			DiskReadBytes:  (jc.inputBytes*dil + jc.interBytes) / m * p.Imbalance,
			DiskWriteBytes: (jc.interBytes + jc.reduceOut*3) / m * p.Imbalance,
			NetSendBytes:   netPerMachine,
			NetRecvBytes:   netPerMachine,
		}
	}
	return c.RunStep(costs)
}

func (h *Hadoop) shuffleFactor() float64 {
	if h.LoopAwareSched && h.ShuffleFactor > 0 {
		return h.ShuffleFactor
	}
	return 1
}

// restartStartupFraction scales job startup into the overhead of
// detecting a lost task tracker and re-provisioning its slots.
const restartStartupFraction = 0.3

// jobRunner sequences the jobs of one run. Each job is charged and then
// crosses a cluster boundary (sim.Cluster.Boundary) where injected
// machine failures surface. With recovery enabled, a recoverable
// failure is survived the MapReduce way: every job's inputs are
// materialized in HDFS, so the failed job simply re-runs — no
// checkpointing machinery, just the framework's natural retry.
type jobRunner struct {
	h       *Hadoop
	c       *sim.Cluster
	recover bool
	job     int // boundary index of the next job
	costs   *engine.RecoveryCosts
}

// run charges one job and survives a recoverable boundary failure by
// re-running it from materialized inputs.
func (jr *jobRunner) run(jc jobCost) error {
	err := jr.h.charge(jr.c, jc)
	if err == nil {
		err = jr.c.Boundary(jr.job)
		jr.job++
	}
	if err == nil || !jr.recover || !sim.IsRecoverable(err) {
		return err
	}
	jr.costs.Failures++
	// Failure detection plus re-provisioning of the lost task slots.
	before := jr.c.Clock()
	if rerr := jr.c.Advance(jr.h.Profile.StartupSeconds(jr.c.Size()) * restartStartupFraction); rerr != nil {
		return rerr
	}
	jr.costs.RestartSeconds += jr.c.Clock() - before
	// Re-run the whole job from its HDFS inputs.
	before = jr.c.Clock()
	if rerr := jr.h.charge(jr.c, jc); rerr != nil {
		return rerr
	}
	jr.costs.ReplaySeconds += jr.c.Clock() - before
	return nil
}

// Run implements engine.Engine.
func (h *Hadoop) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: h.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}

	// Fixed JVM footprint for the task slots; disk-based processing
	// never grows it (§5.9's "out-of-core systems may have a role").
	if err := c.AllocAll(h.Profile.PerMachineBase); err != nil {
		return res.Finish(c, err)
	}

	mark := c.Clock()
	gr, err := d.LoadGraph(graph.FormatAdj)
	if err != nil {
		return res.Finish(c, err)
	}
	// "Load" for Hadoop is only staging: the data is already in HDFS.
	res.Load = c.Clock() - mark

	mark = c.Clock()
	jr := &jobRunner{h: h, c: c, recover: opt.Recover, costs: &res.Costs}
	execErr := h.iterate(c, d, gr, w, res, jr)
	res.Exec = c.Clock() - mark
	if execErr != nil {
		return res.Finish(c, execErr)
	}

	// Final results are the last job's reduce output; saving is folded
	// into the last job's write. Teardown:
	mark = c.Clock()
	err = c.Advance(h.Profile.StartupSeconds(c.Size()) * 0.3)
	res.Overhead = c.Clock() - mark
	return res.Finish(c, err)
}

// iterate drives the per-workload job chains. All workloads do real
// computation over the decoded graph; each iteration is charged as a
// full MapReduce job.
func (h *Hadoop) iterate(c *sim.Cluster, d *engine.Dataset, gr *graph.Graph, w engine.Workload, res *engine.Result, jr *jobRunner) error {
	switch w.Kind {
	case engine.Triangle:
		return h.triangles(c, d, gr, res, jr)
	case engine.LPA:
		return h.lpa(c, d, gr, w, res, jr)
	}
	n := gr.NumVertices()
	adjBytes := float64(d.FileBytes(graph.FormatAdj))
	stateBytes := float64(n) * d.Scale * 16
	dil := d.DilationFor(w.Kind)

	// The WCC chain starts with a reverse-edge job: map emits both
	// directions, reduce materializes the undirected adjacency.
	work := gr
	if w.Kind == engine.WCC {
		work = gr.Undirected()
		if err := jr.run(jobCost{
			inputBytes:   adjBytes,
			mapRecords:   (float64(n) + float64(gr.NumEdges())) * d.Scale,
			interBytes:   2 * float64(gr.NumEdges()) * d.Scale * h.Profile.MsgBytes,
			interRecords: 2 * float64(gr.NumEdges()) * d.Scale,
			reduceOut:    2 * adjBytes,
			dilation:     1,
		}); err != nil {
			return err
		}
		adjBytes *= 2
	}

	values := make([]float64, n)
	contrib := make([]float64, n)
	next := make([]float64, n)
	for v := range values {
		switch w.Kind {
		case engine.PageRank:
			values[v] = 1
		case engine.WCC:
			values[v] = float64(v)
		default:
			values[v] = math.Inf(1)
		}
	}
	if w.Kind == engine.SSSP || w.Kind == engine.KHop {
		values[d.Source] = 0
	}

	iters := 0
	for {
		iters++
		var msgs float64
		maxDelta := 0.0
		changed := 0

		switch w.Kind {
		case engine.PageRank:
			for v := 0; v < n; v++ {
				if deg := work.OutDegree(graph.VertexID(v)); deg > 0 {
					contrib[v] = values[v] / float64(deg)
					msgs += float64(deg)
				} else {
					contrib[v] = 0
				}
			}
			for v := 0; v < n; v++ {
				sum := 0.0
				for _, u := range work.InNeighbors(graph.VertexID(v)) {
					sum += contrib[u]
				}
				nv := w.Damping + (1-w.Damping)*sum
				if dd := math.Abs(nv - values[v]); dd > maxDelta {
					maxDelta = dd
				}
				next[v] = nv
			}
			values, next = next, values
		default:
			// HashMin / BFS relaxation: map emits values along edges,
			// reduce takes the min. Hadoop scans every record whether
			// or not it changed — the frontier does not shrink the job.
			copy(next, values)
			for v := 0; v < n; v++ {
				if math.IsInf(values[v], 1) {
					continue
				}
				emit := values[v]
				if w.Kind != engine.WCC {
					emit++
				}
				for _, u := range work.OutNeighbors(graph.VertexID(v)) {
					msgs++
					if emit < next[u] {
						next[u] = emit
					}
				}
			}
			for v := range next {
				if next[v] != values[v] {
					changed++
				}
			}
			values, next = next, values
		}

		res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: iters, Active: n, Updates: changed})

		// The HaLoop shuffle bug: on large clusters mapper output is
		// occasionally deleted before all reducers consume it, killing
		// the run after a few iterations (§5.10).
		if h.ShuffleBugAt > 0 && c.Size() >= 64 && iters >= h.ShuffleBugAt {
			res.Iterations = iters
			h.fill(res, w, values)
			return &sim.Failure{Status: sim.SHFL,
				Detail: "mapper output deleted before reducers consumed it"}
		}

		jc := jobCost{
			inputBytes:   adjBytes + stateBytes,
			mapRecords:   float64(n)*d.Scale + msgs*d.Scale,
			interBytes:   msgs*d.Scale*h.Profile.MsgBytes + adjBytes, // messages + structure pass-through
			interRecords: msgs*d.Scale + float64(n)*d.Scale,
			reduceOut:    adjBytes + stateBytes,
			dilation:     dil,
		}
		if h.InvariantCache && iters > 1 {
			// HaLoop: loop-invariant adjacency is cached and indexed on
			// local disk; state is re-read from HDFS, the structure is
			// read from the local cache (cheaper, not free) and no
			// longer rides the shuffle (§2.5.1). The savings are real
			// but far from the 2x HaLoop's authors reported (§5.10).
			jc.inputBytes = stateBytes + adjBytes*0.6
			jc.interBytes = msgs * d.Scale * h.Profile.MsgBytes
			jc.reduceOut = stateBytes + adjBytes*0.3
		}
		if err := jr.run(jc); err != nil {
			res.Iterations = iters
			h.fill(res, w, values)
			return err
		}

		switch w.Kind {
		case engine.PageRank:
			if w.MaxIterations > 0 && iters >= w.MaxIterations {
				goto done
			}
			if w.MaxIterations <= 0 && maxDelta < w.Tolerance {
				goto done
			}
		case engine.KHop:
			if iters >= w.K {
				goto done
			}
		default:
			if changed == 0 {
				goto done
			}
		}
	}
done:
	res.Iterations = int(float64(iters)*dil + 0.5)
	h.fill(res, w, values)
	return nil
}

// triangles runs degree-ordered triangle counting as a three-job chain:
// orient (map emits degree-tagged edges, reduce builds the forward
// adjacency), join (map emits each vertex's forward-neighbor pairs —
// the quadratic shuffle — and reduce probes the closing edges), and
// credit aggregation (map emits three credits per triangle, reduce sums
// per vertex). The computation itself is the oracle's forward algorithm.
func (h *Hadoop) triangles(c *sim.Cluster, d *engine.Dataset, gr *graph.Graph, res *engine.Result, jr *jobRunner) error {
	adjBytes := float64(d.FileBytes(graph.FormatAdj))
	o, rank := graph.ForwardOrient(gr)
	n := o.NumVertices()
	oe := float64(o.NumEdges())
	stateBytes := float64(n) * d.Scale * 16

	// The real computation is the oracle's forward kernel.
	counts, hits64, cands64 := singlethread.ForwardCountTriangles(o, rank)
	cands, hits := float64(cands64), float64(hits64)
	res.Triangles = counts
	res.Iterations = 3

	jobs := []jobCost{
		{ // orient: degree join + forward filter
			inputBytes:   adjBytes,
			mapRecords:   (float64(n) + float64(gr.NumEdges())) * d.Scale,
			interBytes:   2 * float64(gr.NumEdges()) * d.Scale * h.Profile.MsgBytes,
			interRecords: 2 * float64(gr.NumEdges()) * d.Scale,
			reduceOut:    adjBytes,
			dilation:     1,
		},
		{ // join: candidate pairs shuffled to their probing vertex
			inputBytes:   adjBytes,
			mapRecords:   (float64(n) + oe) * d.Scale,
			interBytes:   cands * d.Scale * h.Profile.MsgBytes,
			interRecords: cands * d.Scale,
			reduceOut:    stateBytes,
			dilation:     1,
		},
		{ // credits: three per triangle, summed per vertex
			inputBytes:   stateBytes,
			mapRecords:   hits * d.Scale,
			interBytes:   3 * hits * d.Scale * h.Profile.MsgBytes,
			interRecords: 3 * hits * d.Scale,
			reduceOut:    stateBytes,
			dilation:     1,
		},
	}
	for _, jc := range jobs {
		if err := jr.run(jc); err != nil {
			return err
		}
	}
	return nil
}

// lpa runs synchronous label propagation: a symmetrize job builds the
// undirected simple adjacency, then one full map/shuffle/reduce job per
// round ships every neighbor label to its destination and reduces with
// the most-frequent / max-tie-break rule. Hadoop scans and shuffles the
// whole graph every round, cap or no cap — and on large clusters the
// HaLoop shuffle bug kills the multi-round chain just as it does the
// traversals (§5.10).
func (h *Hadoop) lpa(c *sim.Cluster, d *engine.Dataset, gr *graph.Graph, w engine.Workload, res *engine.Result, jr *jobRunner) error {
	adjBytes := float64(d.FileBytes(graph.FormatAdj))
	u := gr.Simple()
	n := u.NumVertices()
	stateBytes := float64(n) * d.Scale * 16

	// Symmetrize job, like the WCC chain's reverse-edge job.
	if err := jr.run(jobCost{
		inputBytes:   adjBytes,
		mapRecords:   (float64(n) + float64(gr.NumEdges())) * d.Scale,
		interBytes:   2 * float64(gr.NumEdges()) * d.Scale * h.Profile.MsgBytes,
		interRecords: 2 * float64(gr.NumEdges()) * d.Scale,
		reduceOut:    2 * adjBytes,
		dilation:     1,
	}); err != nil {
		return err
	}
	undBytes := 2 * adjBytes

	msgs := float64(u.NumEdges())
	iters := 0
	labels, err := singlethread.LPAOnSimple(u, w.LPAIterations(), func(it, changed int) error {
		iters = it
		res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: it, Active: n, Updates: changed})

		if h.ShuffleBugAt > 0 && c.Size() >= 64 && it >= h.ShuffleBugAt {
			return &sim.Failure{Status: sim.SHFL,
				Detail: "mapper output deleted before reducers consumed it"}
		}

		jc := jobCost{
			inputBytes:   undBytes + stateBytes,
			mapRecords:   (float64(n) + msgs) * d.Scale,
			interBytes:   msgs*d.Scale*h.Profile.MsgBytes + undBytes,
			interRecords: (msgs + float64(n)) * d.Scale,
			reduceOut:    undBytes + stateBytes,
			dilation:     1,
		}
		if h.InvariantCache && it > 1 {
			jc.inputBytes = stateBytes + undBytes*0.6
			jc.interBytes = msgs * d.Scale * h.Profile.MsgBytes
			jc.reduceOut = stateBytes + undBytes*0.3
		}
		return jr.run(jc)
	})
	res.Iterations = iters
	res.Labels = labels
	return err
}

func (h *Hadoop) fill(res *engine.Result, w engine.Workload, values []float64) {
	switch w.Kind {
	case engine.PageRank:
		res.Ranks = values
	case engine.WCC:
		labels := make([]graph.VertexID, len(values))
		for i, v := range values {
			labels[i] = graph.VertexID(v)
		}
		res.Labels = labels
	default:
		dist := make([]int32, len(values))
		for i, v := range values {
			if math.IsInf(v, 1) {
				dist[i] = -1
			} else {
				dist[i] = int32(v)
			}
		}
		res.Dist = dist
	}
}
