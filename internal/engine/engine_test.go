package engine

import (
	"testing"

	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/sim"
)

func TestWorkloadConstructors(t *testing.T) {
	pr := NewPageRank()
	if pr.Kind != PageRank || pr.Damping != 0.15 || pr.Tolerance != 0.01 || pr.MaxIterations != 0 {
		t.Fatalf("NewPageRank = %+v", pr)
	}
	pri := NewPageRankIters(30)
	if pri.MaxIterations != 30 {
		t.Fatalf("NewPageRankIters = %+v", pri)
	}
	if w := NewKHop(7); w.K != 3 || w.Source != 7 {
		t.Fatalf("NewKHop = %+v", w)
	}
	if w := NewSSSP(9); w.Source != 9 || w.Kind != SSSP {
		t.Fatalf("NewSSSP = %+v", w)
	}
	if NewWCC().Kind != WCC {
		t.Fatal("NewWCC kind")
	}
	if w := NewTriangleCount(); w.Kind != Triangle {
		t.Fatalf("NewTriangleCount = %+v", w)
	}
	lpa := NewLPA()
	if lpa.Kind != LPA || lpa.MaxIterations != DefaultLPAIterations {
		t.Fatalf("NewLPA = %+v", lpa)
	}
	if lpa.LPAIterations() != DefaultLPAIterations {
		t.Fatalf("LPAIterations = %d", lpa.LPAIterations())
	}
	if (Workload{Kind: LPA}).LPAIterations() != DefaultLPAIterations {
		t.Fatal("zero cap must fall back to the default")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		PageRank: "pagerank", WCC: "wcc", SSSP: "sssp", KHop: "khop",
		Triangle: "triangle", LPA: "lpa",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if len(AllKinds()) != 4 {
		t.Error("AllKinds must stay the paper's four workloads")
	}
	if len(ExtendedKinds()) != 6 {
		t.Error("ExtendedKinds incomplete")
	}
}

func TestTotalTriangles(t *testing.T) {
	r := &Result{Triangles: []int64{3, 2, 2, 1, 1}}
	if got := r.TotalTriangles(); got != 3 {
		t.Fatalf("TotalTriangles = %d, want 3", got)
	}
	if (&Result{}).TotalTriangles() != 0 {
		t.Fatal("empty result must report zero triangles")
	}
}

func TestDilationFor(t *testing.T) {
	d := &Dataset{DilationSSSP: 100, DilationWCC: 50}
	if d.DilationFor(SSSP) != 100 || d.DilationFor(WCC) != 50 {
		t.Fatal("traversal dilations wrong")
	}
	if d.DilationFor(PageRank) != 1 || d.DilationFor(KHop) != 1 {
		t.Fatal("non-traversal workloads must not dilate")
	}
	if d.DilationFor(Triangle) != 1 || d.DilationFor(LPA) != 1 {
		t.Fatal("extension workloads must not dilate")
	}
	empty := &Dataset{}
	if empty.DilationFor(SSSP) != 1 {
		t.Fatal("zero dilation must clamp to 1")
	}
}

func TestPrepareWritesAllFormats(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.SetName("tiny").SetScaleFactor(1000).Build()
	fs := hdfs.New()
	d, err := Prepare(fs, g, "data/tiny", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []graph.Format{graph.FormatAdj, graph.FormatAdjLong, graph.FormatEdge} {
		file, err := d.Open(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if file.Chunks != 8 {
			t.Errorf("%v: chunks = %d", f, file.Chunks)
		}
		if d.FileBytes(f) <= 0 {
			t.Errorf("%v: no paper bytes", f)
		}
		got, err := d.LoadGraph(f)
		if err != nil {
			t.Fatalf("%v: load: %v", f, err)
		}
		if got.NumEdges() != 3 {
			t.Errorf("%v: %d edges", f, got.NumEdges())
		}
	}
	// Edge format carries ~21 B/edge at paper scale.
	if got := d.FileBytes(graph.FormatEdge); got != 3*1000*hdfs.EdgeFormatBytesPerEdge {
		t.Errorf("edge bytes = %d", got)
	}
}

func TestResultFinishAggregates(t *testing.T) {
	c := sim.NewSize(2)
	if err := c.Alloc(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.UniformStep(sim.StepCost{ComputeSeconds: 2, NetSendBytes: 50}); err != nil {
		t.Fatal(err)
	}
	res := (&Result{}).Finish(c, nil)
	if res.Status != sim.OK {
		t.Fatalf("status %v", res.Status)
	}
	if res.CPUUser != 4 { // 2s on each of 2 machines
		t.Errorf("CPUUser = %v", res.CPUUser)
	}
	if res.NetBytes != 100 {
		t.Errorf("NetBytes = %v", res.NetBytes)
	}
	if res.MemTotal != 100 || res.MemMax != 100 {
		t.Errorf("memory: %d/%d", res.MemTotal, res.MemMax)
	}
	failed := (&Result{}).Finish(c, &sim.Failure{Status: sim.MPI})
	if failed.Status != sim.MPI || failed.Err == nil {
		t.Errorf("failure not propagated: %+v", failed)
	}
}

func TestTotalTime(t *testing.T) {
	r := &Result{Load: 1, Exec: 2, Save: 3, Overhead: 4}
	if r.TotalTime() != 10 {
		t.Fatalf("TotalTime = %v", r.TotalTime())
	}
}
