// Package engine defines the contract shared by the eight system
// implementations: the workload specifications of §3 of the paper, the
// dataset handle engines load from simulated HDFS, per-run options, and
// the Result record with the paper's time decomposition
// (load / execute / save / overhead) and failure status.
package engine

import (
	"fmt"

	"graphbench/internal/govern"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/par"
	"graphbench/internal/sim"
)

// Kind identifies a workload: the paper's four (§3) plus the two
// extension workloads (triangle counting and label-propagation
// community detection) this repository adds on top of the study.
type Kind int

// The four workloads of §3, then the extensions.
const (
	PageRank Kind = iota
	WCC
	SSSP
	KHop
	// Triangle is degree-ordered (forward) triangle counting: per-vertex
	// incident-triangle counts whose sum is three times the global
	// total. Every engine runs the same forward algorithm over the same
	// graph.ForwardOrient orientation, so message volume is comparable
	// across systems.
	Triangle
	// LPA is synchronous label-propagation community detection: labels
	// start at the vertex id, each round every vertex adopts the most
	// frequent label among its undirected simple neighbors (ties broken
	// toward the largest label), for a fixed iteration cap. Final labels
	// are canonicalized to the smallest member id of each community.
	LPA
)

// String returns the workload name as used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case PageRank:
		return "pagerank"
	case WCC:
		return "wcc"
	case SSSP:
		return "sssp"
	case KHop:
		return "khop"
	case Triangle:
		return "triangle"
	case LPA:
		return "lpa"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists the paper's workloads in the paper's order. Artifacts
// that reproduce the paper's tables and figures iterate these four;
// extended experiments use ExtendedKinds.
func AllKinds() []Kind { return []Kind{PageRank, WCC, SSSP, KHop} }

// ExtendedKinds lists every workload the repository implements: the
// paper's four followed by the extension workloads.
func ExtendedKinds() []Kind { return []Kind{PageRank, WCC, SSSP, KHop, Triangle, LPA} }

// Workload is a fully specified workload instance.
type Workload struct {
	Kind Kind

	// Source is the start vertex for SSSP and K-hop (§3.3: one random
	// vertex per dataset, used consistently).
	Source graph.VertexID

	// K bounds K-hop; the paper fixes K=3.
	K int

	// Damping is PageRank's δ (0.15 in the paper).
	Damping float64

	// Tolerance stops PageRank when the maximum rank change falls
	// below it (the paper's "T" stopping criterion).
	Tolerance float64

	// MaxIterations, when positive, stops PageRank after a fixed
	// number of iterations (the paper's "I" criterion) regardless of
	// Tolerance. For other workloads it is a safety bound only.
	MaxIterations int
}

// NewPageRank returns the paper's standard PageRank workload with the
// tolerance stopping criterion.
func NewPageRank() Workload {
	return Workload{Kind: PageRank, Damping: 0.15, Tolerance: 0.01}
}

// NewPageRankIters returns PageRank with the fixed-iteration criterion.
func NewPageRankIters(n int) Workload {
	return Workload{Kind: PageRank, Damping: 0.15, MaxIterations: n}
}

// NewWCC returns the WCC (HashMin) workload.
func NewWCC() Workload { return Workload{Kind: WCC} }

// NewSSSP returns SSSP from the given source.
func NewSSSP(source graph.VertexID) Workload {
	return Workload{Kind: SSSP, Source: source}
}

// NewKHop returns the paper's K-hop workload (K=3).
func NewKHop(source graph.VertexID) Workload {
	return Workload{Kind: KHop, Source: source, K: 3}
}

// DefaultLPAIterations is the fixed synchronous round cap of the LPA
// workload. A fixed cap (instead of a convergence test) keeps the
// workload deterministic: synchronous LPA can oscillate forever on
// bipartite structures, and every engine must stop at the same round.
const DefaultLPAIterations = 10

// NewTriangleCount returns the triangle counting workload.
func NewTriangleCount() Workload { return Workload{Kind: Triangle} }

// NewLPA returns the label-propagation workload with the default
// iteration cap.
func NewLPA() Workload { return Workload{Kind: LPA, MaxIterations: DefaultLPAIterations} }

// LPAIterations returns the workload's synchronous round cap.
func (w Workload) LPAIterations() int {
	if w.MaxIterations > 0 {
		return w.MaxIterations
	}
	return DefaultLPAIterations
}

// Options carries per-run tuning that the paper varies per system.
type Options struct {
	// Partitioning selects GraphLab's strategy: "random" or "auto"
	// (§4.4.1). Empty means the engine default.
	Partitioning string

	// Async selects GraphLab's asynchronous engine (§2.2).
	Async bool

	// UseAllCores overrides GraphLab's default of reserving two cores
	// for communication (Figure 1).
	UseAllCores bool

	// NumPartitions overrides GraphX's partition count (Table 5,
	// Figure 2). Zero means the system default (#HDFS blocks).
	NumPartitions int

	// SkipHDFSRoundTrip makes Blogel-B pipe partitions directly into
	// execution instead of writing them back to HDFS first (the
	// modified Blogel of Figure 3).
	SkipHDFSRoundTrip bool

	// DisableCombiner turns off Giraph's message combiner (ablation).
	DisableCombiner bool

	// Approximate lets converged PageRank vertices drop out of the
	// computation (GraphLab-only behaviour, §5.2).
	Approximate bool

	// CheckpointEvery is the fault-tolerance checkpoint cadence in
	// iterations/supersteps: GraphX truncates its lineage to a
	// materialized checkpoint every n iterations, and the BSP engines
	// (when Recover is set) snapshot the vertex-value plane and pending
	// inbox every n supersteps. Zero uses the system default
	// (DefaultCheckpointInterval for recovering BSP runs; GraphX keeps
	// lineage until the run ends).
	CheckpointEvery int

	// Recover enables engine-level recovery from recoverable injected
	// failures (internal/chaos): BSP engines roll back to the last
	// superstep checkpoint and replay, Hadoop/HaLoop re-run the failed
	// job from its materialized shuffle inputs, GraphX recomputes the
	// lost partition from lineage. Without it a recoverable fault ends
	// the run with a Killed status, leaving retry to the caller (the
	// serve path's job-level retry loop).
	Recover bool

	// SampleMemory enables the per-step memory timelines of Figure 10.
	SampleMemory bool

	// Shards is the number of vertex-range shards the engine's hot
	// loops run on: 0 means GOMAXPROCS, 1 forces sequential execution.
	// Shards execute on a persistent worker pool (goroutine count
	// capped at GOMAXPROCS) over edge-balanced plans, and shard
	// results are merged in shard order, so every value produces
	// bit-identical outputs and modeled costs (enforced by
	// internal/enginetest's determinism tests).
	Shards int

	// Pool, when non-nil, is an external persistent worker pool the
	// engine's shard loops borrow instead of creating (and closing) a
	// private one; its Workers() granularity then supersedes Shards.
	// Serve mode keeps one warm pool per admission slot so steady-state
	// requests spawn no goroutines. The pool must not be shared by
	// concurrent runs.
	Pool *par.Pool

	// Direction selects the traversal direction policy for runtimes
	// that support direction-optimized sweeps (the BSP message plane's
	// pull kernels, the GAS PageRank reactivation scan). The default,
	// DirectionAuto, switches per iteration on frontier density; the
	// forced modes exist for ablation and equivalence testing. Every
	// policy produces bit-identical outputs and modeled costs — the
	// direction only changes host wall-clock time.
	Direction Direction

	// Governor, when non-nil, bounds the host-side working set of the
	// run: large allocations (inbox arenas, send buckets, traversal
	// scratch) are charged against its byte budget, and BSP engines
	// degrade — shed optional scratch, then go out-of-core with
	// spill-to-disk — instead of growing past it. Runs whose floor does
	// not fit fail with an error unwrapping to govern.ErrBudget.
	// Governed and ungoverned runs produce bit-identical outputs,
	// IterStats, and modeled costs.
	Governor *govern.Governor

	// ShardPlan selects how the engines' primary vertex sweeps are cut
	// into Shards ranges: the default (ShardPlanWeighted) cuts on the
	// degree-work prefix so power-law skew doesn't serialize behind one
	// hot shard, ShardPlanUniform cuts uniform vertex ranges and skips
	// the prefix pass — cheaper, and just as balanced when degrees are
	// near-uniform (road networks). Like Shards, the plan changes host
	// wall time only: outputs and modeled costs are bit-identical under
	// either plan (the shard-merge contract).
	ShardPlan ShardPlan

	// MemoryTier, under a Governor, pre-picks the governed execution
	// tier instead of letting the run probe from the top: TierSpill
	// skips the in-core and lean reservation attempts and goes straight
	// to out-of-core streaming. The adaptive planner sets it when the
	// projected in-core working set clearly exceeds the budget, saving
	// the doomed probe charges. Ignored without a Governor. Out-of-core
	// execution is bit-identical, so the tier never changes results.
	MemoryTier MemoryTier
}

// ShardPlan selects the cut strategy of the engines' shard plans; see
// Options.ShardPlan.
type ShardPlan int

// Shard-plan strategies. ShardPlanWeighted is the zero value (the
// engines' historical behaviour).
const (
	// ShardPlanWeighted cuts shards on the degree-work prefix
	// (par.PlanPrefix over graph.WorkPrefix): edge-balanced, the right
	// default for skewed graphs.
	ShardPlanWeighted ShardPlan = iota
	// ShardPlanUniform cuts uniform vertex ranges (par.PlanShards):
	// skips the O(V) prefix consultation, equally balanced when the
	// degree distribution is near-uniform.
	ShardPlanUniform
)

// String names the plan for traces and logs.
func (sp ShardPlan) String() string {
	if sp == ShardPlanUniform {
		return "uniform"
	}
	return "weighted"
}

// Cut builds the shard plan for g's vertex range with (at most) k
// shards, honoring the strategy.
func (sp ShardPlan) Cut(g *graph.Graph, k int) par.Plan {
	if sp == ShardPlanUniform {
		return par.PlanShards(g.NumVertices(), k)
	}
	return par.PlanPrefix(g.WorkPrefix(), k)
}

// MemoryTier pre-picks the governed execution tier; see
// Options.MemoryTier.
type MemoryTier int

// Memory tiers. TierAuto is the zero value.
const (
	// TierAuto lets the governed run probe tiers from the top: full
	// in-core, then lean (shed scratch), then out-of-core.
	TierAuto MemoryTier = iota
	// TierSpill goes straight to out-of-core streaming, skipping the
	// in-core reservation attempts.
	TierSpill
)

// String names the tier for traces and logs.
func (t MemoryTier) String() string {
	if t == TierSpill {
		return "spill"
	}
	return "auto"
}

// Direction is a traversal direction policy; see Options.Direction.
type Direction int

// Direction policies. DirectionAuto is the zero value.
const (
	// DirectionAuto switches between push and pull per iteration using
	// the Beamer-style density heuristic (graph.FrontierAlpha/Beta).
	DirectionAuto Direction = iota
	// DirectionPush forces top-down push sweeps / the flat message
	// plane on every iteration.
	DirectionPush
	// DirectionPull forces bottom-up pull sweeps on every iteration
	// that has a pull kernel (iteration 0 always pushes).
	DirectionPull
)

// DefaultCheckpointInterval is the superstep checkpoint cadence BSP
// engines use when Recover is set without an explicit CheckpointEvery:
// frequent enough that a mid-run kill replays only a few supersteps,
// sparse enough that checkpoint writes stay a small fraction of
// execution time (the recovery-cost-vs-interval trade of §2.5).
const DefaultCheckpointInterval = 5

// CheckpointInterval returns the BSP superstep-checkpoint interval the
// options imply: 0 (checkpointing off) unless Recover is set, then
// CheckpointEvery or the default.
func (o Options) CheckpointInterval() int {
	if !o.Recover {
		return 0
	}
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return DefaultCheckpointInterval
}

// RecoveryCosts is the modeled overhead a run paid to fault tolerance:
// checkpoints written, failures survived, and the time spent detecting,
// restarting, and re-executing lost work. All seconds are simulated
// cluster time, already included in the Result's time decomposition —
// these fields break the overhead out so recovery cost per checkpoint
// interval is measurable per system.
type RecoveryCosts struct {
	// Failures is how many recoverable failures the run survived.
	Failures int
	// CheckpointSeconds is time spent writing superstep checkpoints
	// (BSP engines; Hadoop's jobs materialize outputs anyway and GraphX
	// checkpoints are charged by the lineage model, not here).
	CheckpointSeconds float64
	// RestartSeconds is failure detection, rescheduling, and
	// checkpoint-reload time.
	RestartSeconds float64
	// ReplaySeconds is time spent re-executing lost work: supersteps
	// replayed from the checkpoint, jobs re-run from materialized
	// inputs, lineage stages recomputed.
	ReplaySeconds float64
}

// TotalSeconds sums the recovery time components.
func (rc RecoveryCosts) TotalSeconds() float64 {
	return rc.CheckpointSeconds + rc.RestartSeconds + rc.ReplaySeconds
}

// Add accumulates other into rc.
func (rc *RecoveryCosts) Add(other RecoveryCosts) {
	rc.Failures += other.Failures
	rc.CheckpointSeconds += other.CheckpointSeconds
	rc.RestartSeconds += other.RestartSeconds
	rc.ReplaySeconds += other.ReplaySeconds
}

// IterStat records one iteration for the per-iteration analyses
// (Figure 4, Table 6).
type IterStat struct {
	Iteration int
	Active    int     // vertices participating
	Updates   int     // vertex values changed
	Seconds   float64 // modeled wall time of the iteration
}

// Result is the outcome of one experiment run.
type Result struct {
	System   string
	Dataset  string
	Workload Workload
	Machines int

	Status sim.Status
	Err    error // non-nil iff Status != OK

	// The paper's time decomposition (§4.2): Total is end-to-end and
	// includes overhead that the phases don't capture.
	Load, Exec, Save, Overhead float64

	Iterations int
	NetBytes   int64
	MemTotal   int64 // sum of per-machine peaks (Table 8)
	MemMax     int64 // largest per-machine peak

	// CPU seconds summed over machines, by class (Figure 13).
	CPUUser, CPUIO, CPUNet, CPUIdle float64

	ReplicationFactor float64 // vertex-cut systems (Table 4)

	// Costs is the fault-tolerance overhead of the run (zero for runs
	// that neither checkpointed nor recovered).
	Costs RecoveryCosts

	PerIteration []IterStat

	// Govern is the run's slice of the memory governor's ledger (zero
	// for ungoverned runs): peak tracked host bytes, spill volume, and
	// pressure reactions. Host-side accounting — distinct from the
	// modeled MemTotal/MemMax above.
	Govern govern.RunStats

	// Outputs for verification against the single-thread oracles.
	Ranks     []float64        // PageRank
	Labels    []graph.VertexID // WCC component ids / LPA community labels
	Dist      []int32          // SSSP / K-hop hop distances (-1 unreachable)
	Triangles []int64          // per-vertex incident triangle counts

	MemTimeline []sim.MemSample // when Options.SampleMemory
}

// TotalTime returns the end-to-end response time.
func (r *Result) TotalTime() float64 { return r.Load + r.Exec + r.Save + r.Overhead }

// TotalTriangles returns the global triangle count: every triangle is
// counted once at each of its three corners, so the total is the sum of
// the per-vertex counts divided by three.
func (r *Result) TotalTriangles() int64 {
	var sum int64
	for _, c := range r.Triangles {
		sum += c
	}
	return sum / 3
}

// Finish populates the resource fields of r from the cluster's final
// state and the given error, and returns r for chaining.
func (r *Result) Finish(c *sim.Cluster, err error) *Result {
	r.Status = sim.StatusOf(err)
	r.Err = err
	r.NetBytes = c.TotalNetBytes()
	r.MemTotal = c.TotalMemPeak()
	r.MemMax = c.MaxMemPeak()
	for _, m := range c.Machines() {
		r.CPUUser += m.CPUUser
		r.CPUIO += m.CPUIO
		r.CPUNet += m.CPUNet
		r.CPUIdle += m.CPUIdle
	}
	r.MemTimeline = c.Samples()
	return r
}

// Engine is one of the eight systems under study.
type Engine interface {
	// Name returns the system name as used in the paper's figures
	// (e.g. "giraph", "blogel-v", "graphlab").
	Name() string
	// Run executes the workload on the dataset over the given cluster.
	// The returned Result always carries a Status; Run does not return
	// an error because failed runs (OOM/TO/...) are results, not
	// errors, in this study.
	Run(c *sim.Cluster, d *Dataset, w Workload, opt Options) *Result
}

// Dataset is the handle engines receive: files in simulated HDFS in the
// three formats, plus the metadata needed for cost accounting.
type Dataset struct {
	Name        string
	FS          *hdfs.FS
	PathPrefix  string
	NumVertices int
	Scale       float64 // paper-scale multiplier (graph.ScaleFactor)
	Source      graph.VertexID

	// Paper-scale file sizes per format, for I/O cost accounting.
	PaperBytes map[graph.Format]int64

	// DilationSSSP and DilationWCC are the iteration-dilation factors
	// for the traversal workloads: how many paper-scale BSP iterations
	// one synthetic iteration stands for. Down-scaling a graph shrinks
	// its diameter, so a synthetic traversal finishes in fewer
	// supersteps than the real dataset's; engines multiply
	// per-superstep charges by the factor to keep the modeled clock at
	// paper scale (the WRN timeout matrix depends on it). SSSP's factor
	// is normalized by the source's directed eccentricity, WCC's by the
	// undirected label-propagation depth. Values below 1 mean 1.
	DilationSSSP float64
	DilationWCC  float64
}

// DilationFor returns the iteration-dilation factor (>= 1) for the
// workload kind; non-traversal workloads are never dilated.
func (d *Dataset) DilationFor(k Kind) float64 {
	var v float64
	switch k {
	case SSSP:
		v = d.DilationSSSP
	case WCC:
		v = d.DilationWCC
	}
	if v < 1 {
		return 1
	}
	return v
}

// Path returns the HDFS path of the dataset in the given format.
func (d *Dataset) Path(f graph.Format) string {
	return d.PathPrefix + "." + f.String()
}

// Open returns the dataset file in the given format.
func (d *Dataset) Open(f graph.Format) (*hdfs.File, error) {
	return d.FS.Open(d.Path(f))
}

// LoadGraph decodes the dataset from HDFS in the given format. This is
// the real parsing work every engine performs at load time.
func (d *Dataset) LoadGraph(f graph.Format) (*graph.Graph, error) {
	return d.FS.ReadGraph(d.Path(f), f, d.NumVertices)
}

// FileBytes returns the paper-scale size of the dataset in format f.
func (d *Dataset) FileBytes(f graph.Format) int64 { return d.PaperBytes[f] }

// Prepare encodes g into all three formats in fs under prefix, split
// into `chunks` chunks, and returns the Dataset handle. The paper-scale
// file sizes are estimated from real per-format byte rates: ~21 B/edge
// for the edge format (fitted to Table 5's block counts), 9 B/edge +
// 8 B/vertex for adj, and adj plus 4 B/vertex for adj-long (real
// datasets carry ~9-digit ids).
func Prepare(fs *hdfs.FS, g *graph.Graph, prefix string, chunks int, source graph.VertexID) (*Dataset, error) {
	scale := g.ScaleFactor()
	pv := float64(g.NumVertices()) * scale
	pe := float64(g.NumEdges()) * scale
	d := &Dataset{
		Name:        g.Name(),
		FS:          fs,
		PathPrefix:  prefix,
		NumVertices: g.NumVertices(),
		Scale:       scale,
		Source:      source,
		PaperBytes: map[graph.Format]int64{
			graph.FormatEdge:    int64(pe * hdfs.EdgeFormatBytesPerEdge),
			graph.FormatAdj:     int64(pe*9 + pv*8),
			graph.FormatAdjLong: int64(pe*9 + pv*12),
		},
	}
	for _, f := range []graph.Format{graph.FormatAdj, graph.FormatAdjLong, graph.FormatEdge} {
		if _, err := fs.WriteGraph(d.Path(f), g, f, d.PaperBytes[f], chunks); err != nil {
			return nil, err
		}
	}
	return d, nil
}
