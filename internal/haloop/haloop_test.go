package haloop

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/mapreduce"
	"graphbench/internal/sim"
)

func TestAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 16, 1e-9, engine.Options{})
}

func TestFasterThanHadoopButNotDouble(t *testing.T) {
	// §5.10: HaLoop beats Hadoop, but "our experiments do not show the
	// 2x speedup that was reported in the HaLoop paper".
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	w := engine.NewPageRankIters(10)
	hd := enginetest.RunOK(t, mapreduce.New(), f, 16, w, engine.Options{})
	hl := enginetest.RunOK(t, New(), f, 16, w, engine.Options{})
	if hl.TotalTime() >= hd.TotalTime() {
		t.Fatalf("HaLoop total %v not below Hadoop %v", hl.TotalTime(), hd.TotalTime())
	}
	speedup := hd.TotalTime() / hl.TotalTime()
	if speedup >= 2.0 {
		t.Errorf("speedup = %.2fx; the paper observed well under 2x", speedup)
	}
	if speedup < 1.1 {
		t.Errorf("speedup = %.2fx; the cache should help measurably", speedup)
	}
}

func TestShuffleBugOnLargeClusters(t *testing.T) {
	// §5.10: multi-iteration workloads fail with SHFL on 64 and 128
	// machines; K-hop (3 iterations) completes everywhere.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	for _, m := range []int{64, 128} {
		res := New().Run(sim.NewSize(m), f.Dataset, engine.NewPageRank(), engine.Options{})
		if res.Status != sim.SHFL {
			t.Errorf("HaLoop PageRank at %d: status %v, want SHFL", m, res.Status)
		}
		khop := New().Run(sim.NewSize(m), f.Dataset, engine.NewKHop(f.Dataset.Source), engine.Options{})
		if khop.Status != sim.OK {
			t.Errorf("HaLoop K-hop at %d: status %v, want OK (short runs dodge the bug)", m, khop.Status)
		}
	}
	// Small clusters are unaffected.
	res := New().Run(sim.NewSize(32), f.Dataset, engine.NewPageRank(), engine.Options{})
	if res.Status != sim.OK {
		t.Errorf("HaLoop PageRank at 32: status %v, want OK", res.Status)
	}
}

func TestBetterCPUUtilization(t *testing.T) {
	// §5.10: HaLoop's CPUs wait on I/O less than Hadoop's.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	w := engine.NewPageRankIters(8)
	hd := enginetest.RunOK(t, mapreduce.New(), f, 16, w, engine.Options{})
	hl := enginetest.RunOK(t, New(), f, 16, w, engine.Options{})
	if hl.CPUIO >= hd.CPUIO {
		t.Errorf("HaLoop I/O wait %v not below Hadoop %v", hl.CPUIO, hd.CPUIO)
	}
	// Both use similar, fixed memory (§5.10).
	ratio := float64(hl.MemMax) / float64(hd.MemMax)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("memory ratio %v; paper reports similar footprints", ratio)
	}
}
