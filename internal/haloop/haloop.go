// Package haloop implements HaLoop (§2.5.1): Hadoop modified for
// iterative workloads. Relative to Hadoop it adds
//
//   - a loop-aware task scheduler that co-schedules tasks with their
//     data, cutting inter-iteration shuffle traffic;
//   - mapper-side caching and indexing of loop-invariant data, so the
//     adjacency structure is read and shuffled only in iteration 1;
//   - cached reducer output for local fixpoint evaluation (the paper
//     notes the loop manager also breaks Hadoop counters);
//   - and, faithfully, the shuffle bug: on 64- and 128-machine clusters
//     mapper output is occasionally deleted before reducers consume it,
//     failing multi-iteration runs after a few iterations (§5.10) —
//     which is why K-hop (3 iterations) survives where PageRank, WCC
//     and SSSP die with SHFL.
//
// The paper measured HaLoop faster than Hadoop but well short of the
// 2x its authors reported; the cache and shuffle savings here reproduce
// that: most of the per-iteration disk traffic remains.
//
// Fault tolerance is inherited unchanged from Hadoop: every job's
// inputs are materialized in HDFS, so a recoverable machine failure at
// a job boundary (engine.Options.Recover) is survived by re-running
// the failed job — the shuffle bug, by contrast, is a deterministic
// finding and is never retried.
package haloop

import (
	"graphbench/internal/mapreduce"
)

// ShuffleBugIteration is the iteration at which the mapper-output bug
// fires on clusters of 64 machines or more ("typically fails after a
// few iterations", §5.10).
const ShuffleBugIteration = 5

// New returns a HaLoop engine: Hadoop with the loop optimizations and
// the large-cluster shuffle bug.
func New() *mapreduce.Hadoop {
	h := mapreduce.New()
	h.SpeedupName = "haloop"
	h.InvariantCache = true
	h.LoopAwareSched = true
	h.ShuffleFactor = 0.35
	h.ShuffleBugAt = ShuffleBugIteration
	// HaLoop keeps many more files open (cache indexes); the paper had
	// to raise the OS nofile limit. Startup is slightly heavier.
	h.Profile.JobStartup += 2
	return h
}
