package bsp

import (
	"math"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/graph"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// testProfile is a fast, featureless profile for unit tests.
var testProfile = sim.Profile{
	Name: "test", EdgeOpsPerSec: 1e9, VertexScanNs: 1, MsgCPUNs: 1,
	MsgBytes: 12, MsgMemBytes: 16,
}

func runOn(t *testing.T, g *graph.Graph, m int, cfg Config) *Output {
	t.Helper()
	cluster := sim.NewSize(m)
	cut := partition.EdgeCut{M: m, Seed: 7}
	cfg.Graph = g
	cfg.Scale = 1
	cfg.M = m
	cfg.MachineOf = cut.MachineOf
	if cfg.Profile == nil {
		cfg.Profile = &testProfile
	}
	out, err := Run(cluster, cfg)
	if err != nil {
		t.Fatalf("bsp.Run failed: %v", err)
	}
	return out
}

func TestPageRankMatchesSingleThread(t *testing.T) {
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 400_000, Seed: 1})
	want, wantIters, _ := singlethread.PageRank(g, 0.15, 0.01, 0)

	out := runOn(t, g, 4, Config{
		Program:        &PageRankProgram{Damping: 0.15},
		Combine:        SumCombine,
		ScanAll:        true,
		StopDeltaBelow: 0.01,
	})
	if out.Supersteps != wantIters {
		t.Fatalf("iterations = %d, want %d", out.Supersteps, wantIters)
	}
	for v := range want {
		if math.Abs(out.Values[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, out.Values[v], want[v])
		}
	}
}

func TestPageRankFixedIterations(t *testing.T) {
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1})
	want, _, _ := singlethread.PageRank(g, 0.15, 0, 5)
	out := runOn(t, g, 2, Config{
		Program:         &PageRankProgram{Damping: 0.15},
		Combine:         SumCombine,
		FixedSupersteps: 5,
	})
	if out.Supersteps != 5 {
		t.Fatalf("supersteps = %d, want 5", out.Supersteps)
	}
	for v := range want {
		if math.Abs(out.Values[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, out.Values[v], want[v])
		}
	}
}

func TestWCCMatchesOracle(t *testing.T) {
	for _, name := range []datasets.Name{datasets.Twitter, datasets.UK, datasets.WRN} {
		g := datasets.Generate(name, datasets.Options{Scale: 600_000, Seed: 2})
		want := singlethread.WCCReference(g)
		out := runOn(t, g, 4, Config{
			Program:        WCCProgram{},
			Combine:        MinCombine,
			CombineFrom:    1,
			UseInNeighbors: true,
		})
		labels := LabelsFromValues(out.Values)
		for v := range want {
			if labels[v] != want[v] {
				t.Fatalf("%s: label[%d] = %d, want %d", name, v, labels[v], want[v])
			}
		}
	}
}

func TestSSSPMatchesOracle(t *testing.T) {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 800_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	want := graph.BFSDistances(g, src)
	out := runOn(t, g, 4, Config{
		Program: &SSSPProgram{Source: src},
		Combine: MinCombine,
	})
	dist := DistancesFromValues(out.Values)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestKHopMatchesOracle(t *testing.T) {
	g := datasets.Generate(datasets.UK, datasets.Options{Scale: 600_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	want, _ := singlethread.KHop(g, src, 3)
	out := runOn(t, g, 4, Config{
		Program: &KHopProgram{Source: src, K: 3},
		Combine: MinCombine,
	})
	dist := DistancesFromValues(out.Values)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
	// K-hop supersteps are bounded by K+1 regardless of diameter.
	if out.Supersteps > 4 {
		t.Fatalf("khop took %d supersteps, want <= 4", out.Supersteps)
	}
}

func TestCombinerReducesMessagesOnWire(t *testing.T) {
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 400_000, Seed: 1})
	run := func(combine func(a, b float64) float64) int64 {
		cluster := sim.NewSize(4)
		cut := partition.EdgeCut{M: 4, Seed: 7}
		_, err := Run(cluster, Config{
			Graph: g, Scale: 1, M: 4, MachineOf: cut.MachineOf,
			Profile: &testProfile, Program: &PageRankProgram{Damping: 0.15},
			Combine: combine, FixedSupersteps: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cluster.TotalNetBytes()
	}
	with := run(SumCombine)
	without := run(nil)
	if with >= without {
		t.Fatalf("combiner did not reduce network: %d >= %d", with, without)
	}
}

func TestScanAllChargesIdleVertices(t *testing.T) {
	// With ScanAll (Giraph) SSSP supersteps cost at least the full
	// vertex scan even when the frontier is one vertex (Table 6's
	// mechanism). Without it (Blogel) late supersteps are cheaper.
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 800_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	prof := testProfile
	prof.VertexScanNs = 1000

	cost := func(scanAll bool) float64 {
		cluster := sim.NewSize(4)
		cut := partition.EdgeCut{M: 4, Seed: 7}
		_, err := Run(cluster, Config{
			Graph: g, Scale: 1, M: 4, MachineOf: cut.MachineOf,
			Profile: &prof, Program: &SSSPProgram{Source: src},
			Combine: MinCombine, ScanAll: scanAll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cluster.Clock()
	}
	if all, active := cost(true), cost(false); all <= active {
		t.Fatalf("ScanAll total %v not above active-only %v", all, active)
	}
}

func TestTimeoutPropagates(t *testing.T) {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 800_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	cfg := sim.NewConfig(2)
	cfg.Timeout = 0.5 // absurdly small: force TO mid-run
	cluster := sim.New(cfg)
	cut := partition.EdgeCut{M: 2, Seed: 7}
	prof := testProfile
	prof.SuperstepFixed = 0.05
	out, err := Run(cluster, Config{
		Graph: g, Scale: 1, M: 2, MachineOf: cut.MachineOf,
		Profile: &prof, Program: &SSSPProgram{Source: src}, Combine: MinCombine,
	})
	if sim.StatusOf(err) != sim.TO {
		t.Fatalf("expected TO, got %v", err)
	}
	if out.Supersteps >= graph.EstimateDiameter(g, 1, 1) {
		t.Fatalf("run did not abort early: %d supersteps", out.Supersteps)
	}
}

func TestOOMOnMessageBuffers(t *testing.T) {
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 400_000, Seed: 1})
	cluster := sim.NewSize(2)
	cut := partition.EdgeCut{M: 2, Seed: 7}
	prof := testProfile
	prof.MsgMemBytes = 16
	_, err := Run(cluster, Config{
		Graph: g, Scale: 1e9, M: 2, MachineOf: cut.MachineOf, // absurd scale: buffers blow up
		Profile: &prof, Program: &PageRankProgram{Damping: 0.15},
		FixedSupersteps: 3,
	})
	if sim.StatusOf(err) != sim.OOM {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestIterStatsRecorded(t *testing.T) {
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1})
	out := runOn(t, g, 2, Config{
		Program: &PageRankProgram{Damping: 0.15}, Combine: SumCombine,
		FixedSupersteps: 4, RecordIterStats: true,
	})
	if len(out.IterStats) != 5 { // superstep 0 + 4 iterations
		t.Fatalf("got %d iter stats, want 5", len(out.IterStats))
	}
	for _, st := range out.IterStats {
		if st.Active == 0 {
			t.Fatalf("iteration %d recorded 0 active vertices", st.Iteration)
		}
		if st.Seconds <= 0 {
			t.Fatalf("iteration %d recorded non-positive time", st.Iteration)
		}
	}
}

func TestMessagesCounted(t *testing.T) {
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1})
	out := runOn(t, g, 2, Config{
		Program: &PageRankProgram{Damping: 0.15}, Combine: SumCombine,
		FixedSupersteps: 2,
	})
	// Each of 3 compute supersteps (0,1,2) sends ~|E| messages.
	minWant := float64(g.NumEdges()) * 2
	if out.Messages < minWant {
		t.Fatalf("messages = %v, want >= %v", out.Messages, minWant)
	}
}
