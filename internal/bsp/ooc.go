package bsp

// Out-of-core execution under a memory governor (internal/govern).
//
// A governed run sizes its working set before allocating anything and
// picks one of three modes:
//
//   - in-core: everything fits inside the soft fraction of the budget.
//     One up-front reservation covers the projected working set (state
//     planes, resident CSR, twin inbox arenas, send buckets, optional
//     pull scratch) and the run executes exactly as ungoverned.
//   - in-core lean (soft pressure): the full projection exceeds the
//     soft fraction but the push-only working set still fits. The run
//     forces DirectionPush — shedding the direction-optimization
//     scratch (frontiers, snapshot values, counting masks) — which is
//     bit-identical by the direction contract.
//   - out-of-core (hard pressure): even the lean projection exceeds
//     the available budget. The run forces push and streams instead of
//     residing: edge blocks are re-laid out into checksummed segment
//     files read through small per-shard windows; send buckets spill
//     to per-shard chunk files once their in-memory bytes pass a
//     threshold; and the merged inbox arena is written per destination
//     shard to segment files that the next superstep's compute streams
//     back. Only the O(V) state planes, the combiner slots, and the
//     bounded windows/regions stay charged.
//
// The spill layout preserves the exact sequential message order: a
// destination's messages are replayed per source shard as that shard's
// spilled chunks in flush order followed by its in-memory remainder —
// the same concatenation the in-core merge performs — so the deposit
// pass, the combiner state, outputs, IterStats, and every modeled cost
// are bit-identical to in-core execution at every shard count. Modeled
// costs never see the host strategy at all: out-of-core is a host-side
// execution detail, like shard count or traversal direction.
//
// Checkpoints copy the current inbox segment files next to the resident
// state; a rollback deletes both live inbox file sets (invalidating any
// in-flight spill), restores the checkpoint copies, and lets replay
// regenerate bucket spill files from scratch — deterministically, since
// replayed supersteps recompute identical state. All spill files live
// in the run's private lease directory, removed when the run ends.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"unsafe"

	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/graph"
	"graphbench/internal/sim"
)

// oocWindowBytes is the streaming window granularity: two segment pages.
const oocWindowBytes = 2 * govern.PageBytes

// Bucket spill thresholds: a shard flushes its buckets once their
// in-memory bytes pass a budget-derived threshold clamped to this range.
const (
	minSpillThreshold = 16 << 10
	maxSpillThreshold = 1 << 20
)

var oocCRC = crc32.MakeTable(crc32.Castagnoli)

// budgetFailure couples a budget rejection to the paper's OOM status:
// errors.Is(err, govern.ErrBudget) identifies it for the serve path,
// and errors.As(*sim.Failure) gives StatusOf the OOM classification.
// It is never Recoverable — retrying under the same budget reproduces it.
type budgetFailure struct {
	f   *sim.Failure
	err error
}

func (e *budgetFailure) Error() string   { return e.f.Error() }
func (e *budgetFailure) Unwrap() []error { return []error{e.f, e.err} }

// wrapBudget dresses budget rejections as OOM failures; other errors
// pass through untouched.
func wrapBudget(err error) error {
	if err == nil || !errors.Is(err, govern.ErrBudget) {
		return err
	}
	return &budgetFailure{
		f:   &sim.Failure{Status: sim.OOM, Machine: -1, Detail: "host memory budget: " + err.Error()},
		err: err,
	}
}

// governSizes are the projected working sets the mode decision weighs.
type governSizes struct {
	floor int64 // resident in every mode: state planes, offsets, combiner, checkpoint planes
	full  int64 // in-core with direction-optimization scratch
	lean  int64 // in-core, forced push
	fixed int64 // out-of-core streaming buffers (windows, chunk buffers, bucket residue)
}

func (rt *runtime) governSizes(threshold int64) governSizes {
	g := rt.cfg.Graph
	n := int64(g.NumVertices())
	e := int64(g.NumEdges()) // the in-CSR mirrors every out-edge
	var s governSizes
	// values 8 + halted 1 + four offset planes 16 + owner 4 + shardOf 4.
	s.floor = n * 33
	s.floor += (n + 1) * 4 // out-offsets stay resident even when streaming
	if rt.cfg.UseInNeighbors {
		s.floor += (n + 1) * 4
	}
	if rt.cfg.Combine != nil {
		s.floor += int64(rt.cfg.M) * n * 8 // stamp + slotIdx per machine
	}
	raw := e
	if rt.cfg.UseInNeighbors {
		raw += e
	}
	if rt.cfg.CheckpointEvery > 0 {
		s.floor += n * 17 // checkpointed values, halted, inStart, inLen
	}
	s.lean = s.floor + e*8 + raw*32 // resident CSR both sides + twin arenas & buckets
	if rt.cfg.CheckpointEvery > 0 {
		s.lean += raw * 8 // checkpointed inbox values
	}
	s.full = s.lean + n*18 // fvals, counting masks, frontier bitsets
	nsh := int64(rt.plan.Count())
	win := int64(oocWindowBytes)
	s.fixed = nsh * (win /*edges out*/ + win /*inbox*/ + (threshold + 64) /*chunk buf*/ + 2*threshold /*bucket residue*/)
	if rt.cfg.UseInNeighbors {
		s.fixed += nsh * win
	}
	return s
}

// setupGovernor runs once before any plane is allocated: it leases the
// run's share of the budget and picks the execution mode. It may force
// cfg.Direction to push (bit-identical) and, under hard pressure,
// install the out-of-core phase bodies. A budget below even the
// out-of-core floor fails with a budgetFailure.
func (rt *runtime) setupGovernor() error {
	g := rt.cfg.Governor
	if !g.Enabled() {
		return nil
	}
	rt.lease = g.NewLease()
	avail := rt.lease.Available()
	threshold := avail / (int64(rt.plan.Count()) * 10)
	if threshold < minSpillThreshold {
		threshold = minSpillThreshold
	}
	if threshold > maxSpillThreshold {
		threshold = maxSpillThreshold
	}
	sizes := rt.governSizes(threshold)
	// TierSpill (set by the planner when the in-core working set clearly
	// exceeds the budget) skips the doomed in-core reservation probes
	// and goes straight to the out-of-core tier below.
	if rt.cfg.MemoryTier != engine.TierSpill {
		if sizes.full <= int64(float64(avail)*govern.SoftFraction) {
			if rt.lease.TryCharge(sizes.full) == nil {
				return nil
			}
		}
		if sizes.lean <= avail && rt.lease.TryCharge(sizes.lean) == nil {
			// Soft pressure: shed the optional scratch, keep everything
			// else resident.
			rt.cfg.Direction = engine.DirectionPush
			rt.lease.NoteSoft()
			return nil
		}
	}
	// Hard pressure: go out-of-core, or reject if even that cannot fit.
	if err := rt.lease.TryCharge(sizes.floor + sizes.fixed); err != nil {
		rt.lease.Close()
		rt.lease = nil
		return wrapBudget(err)
	}
	rt.lease.NoteHard()
	rt.cfg.Direction = engine.DirectionPush
	if err := rt.setupOOC(int(threshold)); err != nil {
		if rt.oc != nil {
			rt.oc.closeFiles()
			rt.oc = nil
		}
		rt.lease.Close()
		rt.lease = nil
		return wrapBudget(err)
	}
	return nil
}

// finishGovernor closes spill files, returns the lease, and publishes
// the run's ledger stats. Safe to call on ungoverned runs.
func (rt *runtime) finishGovernor(out *Output) {
	if rt.lease == nil {
		return
	}
	if rt.oc != nil {
		rt.oc.closeFiles()
	}
	out.Govern = rt.lease.Stats()
	rt.lease.Close()
}

// oocState is the out-of-core machinery of one run.
type oocState struct {
	rt        *runtime
	lease     *govern.Lease
	dir       string
	threshold int

	outSeg, inSeg *govern.SegmentReader // shared streamed edge blocks

	inbox    []winReader // per compute shard, over the current inbox set
	regions  [][]float64 // per merge shard, reused across supersteps
	chunkBuf [][]byte    // per merge shard, spilled-chunk read scratch

	// Double-buffered inbox segment files: set inSet holds the current
	// superstep's messages, the other set is written by the merge pass;
	// deliver flips. inBase/nextBase are each shard's region base — the
	// global arena offset its file's first value corresponds to.
	inSet    int
	inBase   []int32
	nextBase []int32

	// Checkpoint copies of the inbox set (ckptHas marks shards whose
	// region file existed at checkpoint time).
	ckptBase []int32
	ckptHas  []bool

	mu  sync.Mutex
	err error
}

// fail records the run's first out-of-core error; the superstep loop
// aborts the run once the current phase drains.
func (oc *oocState) fail(err error) {
	oc.mu.Lock()
	if oc.err == nil {
		oc.err = err
	}
	oc.mu.Unlock()
}

func (oc *oocState) firstErr() error {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return oc.err
}

// charge asks the lease for n more bytes, converting a rejection into
// the run's failure.
func (oc *oocState) charge(n int64) bool {
	if err := oc.lease.TryCharge(n); err != nil {
		oc.fail(err)
		return false
	}
	return true
}

func (oc *oocState) inboxPath(set, shard int) string {
	return filepath.Join(oc.dir, fmt.Sprintf("inbox-%d-s%d.seg", set, shard))
}

func (oc *oocState) ckptPath(shard int) string {
	return filepath.Join(oc.dir, fmt.Sprintf("ckpt-inbox-s%d.seg", shard))
}

// setupOOC writes the edge segments, installs per-shard streams and
// spill state, and swaps in the out-of-core phase bodies. The fixed
// buffers it allocates were already charged by setupGovernor.
func (rt *runtime) setupOOC(threshold int) error {
	lease := rt.lease
	dir, err := lease.Dir()
	if err != nil {
		return err
	}
	nsh := rt.plan.Count()
	oc := &oocState{
		rt:        rt,
		lease:     lease,
		dir:       dir,
		threshold: threshold,
		inbox:     make([]winReader, nsh),
		regions:   make([][]float64, nsh),
		chunkBuf:  make([][]byte, nsh),
		inBase:    make([]int32, nsh),
		nextBase:  make([]int32, nsh),
		ckptBase:  make([]int32, nsh),
		ckptHas:   make([]bool, nsh),
	}
	csr := rt.cfg.Graph.RawCSR()
	writeEdges := func(name string, edges []graph.VertexID) (*govern.SegmentReader, error) {
		path := filepath.Join(dir, name)
		w, err := govern.CreateSegment(path, lease)
		if err != nil {
			return nil, err
		}
		if len(edges) > 0 {
			if _, err := w.Write(bytesOfVIDs(edges)); err != nil {
				w.Finish()
				return nil, err
			}
		}
		if err := w.Finish(); err != nil {
			return nil, err
		}
		return govern.OpenSegment(path)
	}
	if oc.outSeg, err = writeEdges("edges-out.seg", csr.OutEdges); err != nil {
		return err
	}
	if rt.cfg.UseInNeighbors {
		if oc.inSeg, err = writeEdges("edges-in.seg", csr.InEdges); err != nil {
			return err
		}
	}
	for i, ss := range rt.shards {
		ss.edgeOut = &edgeStream{oc: oc, off: csr.OutOffsets, win: winReader{seg: oc.outSeg, buf: govern.AlignedBytes(oocWindowBytes)}}
		if rt.cfg.UseInNeighbors {
			ss.edgeIn = &edgeStream{oc: oc, off: csr.InOffsets, win: winReader{seg: oc.inSeg, buf: govern.AlignedBytes(oocWindowBytes)}}
		}
		ss.spill = &bucketSpill{
			oc:        oc,
			shard:     i,
			path:      filepath.Join(dir, fmt.Sprintf("bkt-s%d.dat", i)),
			threshold: threshold,
			chunks:    make([][]chunkRef, nsh),
			counts:    make([]int, nsh),
		}
		oc.inbox[i].buf = govern.AlignedBytes(oocWindowBytes)
		oc.chunkBuf[i] = govern.AlignedBytes(threshold + 64)
	}
	rt.oc = oc
	rt.computeFn = rt.oocComputeFn()
	rt.mergeFn = rt.oocMergeFn()
	return nil
}

// closeFiles closes every open spill file descriptor. The files
// themselves are removed with the lease directory.
func (oc *oocState) closeFiles() {
	if oc.outSeg != nil {
		oc.outSeg.Close()
	}
	if oc.inSeg != nil {
		oc.inSeg.Close()
	}
	for i := range oc.inbox {
		oc.closeInboxReader(i)
	}
	for _, ss := range oc.rt.shards {
		if ss.spill != nil && ss.spill.f != nil {
			ss.spill.f.Close()
			ss.spill.f = nil
		}
	}
}

func (oc *oocState) closeInboxReader(i int) {
	if w := &oc.inbox[i]; w.seg != nil {
		w.seg.Close()
		w.seg = nil
		w.lo, w.hi = 0, 0
	}
}

// inboxMsgs streams vertex messages [start, start+mlen) of shard i's
// current inbox region file. The returned slice aliases the shard's
// window and is valid until the shard's next inbox read; programs may
// mutate it (it is scratch, exactly like the in-core arena slice).
func (oc *oocState) inboxMsgs(i int, start, mlen int32) []float64 {
	if mlen == 0 {
		return nil
	}
	w := &oc.inbox[i]
	if w.seg == nil {
		seg, err := govern.OpenSegment(oc.inboxPath(oc.inSet, i))
		if err != nil {
			oc.fail(err)
			return nil
		}
		w.seg = seg
		w.lo, w.hi = 0, 0
	}
	p := w.view(oc, (int64(start)-int64(oc.inBase[i]))*8, int64(mlen)*8)
	if p == nil {
		return nil
	}
	return floatsOf(p)
}

// region returns merge shard i's region buffer grown to n values,
// charging only capacity growth.
func (oc *oocState) region(i, n int) []float64 {
	r := oc.regions[i]
	if cap(r) < n {
		if !oc.charge(int64(n-cap(r)) * 8) {
			return nil
		}
		r = make([]float64, n)
	}
	oc.regions[i] = r[:n]
	return oc.regions[i]
}

// writeRegion seals merge shard i's next inbox region to its segment
// file and records the region base for the next superstep's reads.
func (oc *oocState) writeRegion(i int, region []float64, base int32) {
	w, err := govern.CreateSegment(oc.inboxPath(1-oc.inSet, i), oc.lease)
	if err != nil {
		oc.fail(err)
		return
	}
	if len(region) > 0 {
		if _, err := w.Write(bytesOfFloats(region)); err != nil {
			oc.fail(err)
			w.Finish()
			return
		}
	}
	if err := w.Finish(); err != nil {
		oc.fail(err)
		return
	}
	oc.nextBase[i] = base
}

// flip publishes the merged inbox set — the out-of-core half of
// deliver's arena swap.
func (oc *oocState) flip() {
	for i := range oc.inbox {
		oc.closeInboxReader(i)
	}
	oc.inBase, oc.nextBase = oc.nextBase, oc.inBase
	oc.inSet = 1 - oc.inSet
}

// saveInbox checkpoints the current inbox segment files (takeCheckpoint
// calls it where the in-core path copies the arena values).
func (oc *oocState) saveInbox() error {
	for i := range oc.inbox {
		cur := oc.inboxPath(oc.inSet, i)
		if _, err := os.Stat(cur); err != nil {
			os.Remove(oc.ckptPath(i))
			oc.ckptHas[i] = false
			continue
		}
		if err := govern.CopyFile(oc.ckptPath(i), cur); err != nil {
			return fmt.Errorf("bsp: checkpoint spill segment: %w", err)
		}
		oc.ckptHas[i] = true
	}
	copy(oc.ckptBase, oc.inBase)
	return nil
}

// restoreInbox rolls the spill state back to the last checkpoint: both
// live inbox sets are deleted (invalidating everything in flight), the
// checkpoint copies become set 0, and replay regenerates bucket spill
// files from scratch.
func (oc *oocState) restoreInbox() error {
	for i := range oc.inbox {
		oc.closeInboxReader(i)
		os.Remove(oc.inboxPath(0, i))
		os.Remove(oc.inboxPath(1, i))
		if oc.ckptHas[i] {
			if err := govern.CopyFile(oc.inboxPath(0, i), oc.ckptPath(i)); err != nil {
				return fmt.Errorf("bsp: restore spill segment: %w", err)
			}
		}
	}
	oc.inSet = 0
	copy(oc.inBase, oc.ckptBase)
	return nil
}

// winReader is a verified sliding window over a segment: view returns
// in-window payload bytes, refilling (and growing, charged) on miss.
// Windows start page-aligned, so 8-aligned payload offsets stay
// 8-aligned in the buffer.
type winReader struct {
	seg    *govern.SegmentReader
	buf    []byte
	lo, hi int64
}

func (w *winReader) view(oc *oocState, off, n int64) []byte {
	if off >= w.lo && off+n <= w.hi {
		return w.buf[off-w.lo : off-w.lo+n]
	}
	lo := off - off%govern.PageBytes
	if need := int(off + n - lo); need > len(w.buf) {
		sz := (need + govern.PageBytes - 1) / govern.PageBytes * govern.PageBytes
		if !oc.charge(int64(sz - len(w.buf))) {
			return nil
		}
		w.buf = govern.AlignedBytes(sz)
	}
	got, err := w.seg.ReadPages(w.buf, int(lo/govern.PageBytes))
	if err != nil {
		oc.fail(err)
		return nil
	}
	w.lo, w.hi = lo, lo+int64(got)
	if off+n > w.hi {
		oc.fail(fmt.Errorf("bsp: spill read [%d,%d) past segment end %d", off, off+n, w.hi))
		return nil
	}
	return w.buf[off-w.lo : off-w.lo+n]
}

// edgeStream serves one vertex's neighbor list from a streamed edge
// segment; offsets stay resident. Vertices are visited in ascending
// order per shard, so reads are sequential.
type edgeStream struct {
	oc  *oocState
	off []int32
	win winReader
}

// neighbors returns v's adjacency list. The slice aliases the shard's
// window and is valid until the shard's next neighbor fetch from the
// same stream.
func (es *edgeStream) neighbors(v graph.VertexID) []graph.VertexID {
	lo := int64(es.off[v]) * 4
	hi := int64(es.off[v+1]) * 4
	if hi == lo {
		return nil
	}
	p := es.win.view(es.oc, lo, hi-lo)
	if p == nil {
		return nil
	}
	return vidsOf(p)
}

// chunkRef locates one spilled bucket chunk: count messages for a
// single destination shard, stored as [dst 4B×n][srcM 4B×n][val 8B×n]
// and guarded by a CRC-32C over the whole chunk.
type chunkRef struct {
	off   int64
	count int32
	crc   uint32
}

// bucketSpill is one compute shard's send-bucket spill file. Chunks are
// appended in flush order; the merge pass replays each destination's
// chunks in that order followed by the in-memory remainder, preserving
// the exact sequential message stream.
type bucketSpill struct {
	oc        *oocState
	shard     int
	path      string
	f         *os.File
	off       int64
	threshold int
	pending   int          // in-memory bucket bytes since the last flush
	chunks    [][]chunkRef // per destination shard
	counts    []int        // spilled messages per destination shard
}

// reset clears the per-superstep spill state; the file is overwritten
// in place from offset zero.
func (sp *bucketSpill) reset() {
	for d := range sp.chunks {
		sp.chunks[d] = sp.chunks[d][:0]
		sp.counts[d] = 0
	}
	sp.pending = 0
	sp.off = 0
}

// noteSend is the send-path hook: once the shard's in-memory buckets
// pass the threshold, flush them all.
func (sp *bucketSpill) noteSend(ss *shardState) {
	sp.pending += 16
	if sp.pending >= sp.threshold {
		sp.flush(ss)
	}
}

// flush spills every non-empty bucket of the shard as one chunk each
// and truncates the in-memory buffers.
func (sp *bucketSpill) flush(ss *shardState) {
	if sp.f == nil {
		f, err := os.OpenFile(sp.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			sp.oc.fail(err)
			return
		}
		sp.f = f
	}
	for d := range ss.out {
		b := &ss.out[d]
		n := len(b.dst)
		if n == 0 {
			continue
		}
		dstB := bytesOfVIDs(b.dst)
		srcB := bytesOfInt32s(b.srcM)
		valB := bytesOfFloats(b.val)
		crc := crc32.Update(0, oocCRC, dstB)
		crc = crc32.Update(crc, oocCRC, srcB)
		crc = crc32.Update(crc, oocCRC, valB)
		start := sp.off
		ok := sp.writeAt(dstB, start) &&
			sp.writeAt(srcB, start+int64(4*n)) &&
			sp.writeAt(valB, start+int64(8*n))
		if !ok {
			return
		}
		sp.off += int64(16 * n)
		sp.chunks[d] = append(sp.chunks[d], chunkRef{off: start, count: int32(n), crc: crc})
		sp.counts[d] += n
		sp.oc.lease.AddSpill(int64(16 * n))
		b.dst, b.srcM, b.val = b.dst[:0], b.srcM[:0], b.val[:0]
	}
	sp.pending = 0
}

func (sp *bucketSpill) writeAt(p []byte, off int64) bool {
	if _, err := sp.f.WriteAt(p, off); err != nil {
		sp.oc.fail(err)
		return false
	}
	return true
}

// readChunk reads and verifies one spilled chunk into merge shard
// mergeIdx's scratch buffer and returns aliased views of its columns.
func (sp *bucketSpill) readChunk(mergeIdx int, ref chunkRef) (dst []graph.VertexID, srcM []int32, val []float64, ok bool) {
	oc := sp.oc
	n := int(ref.count)
	size := 16 * n
	buf := oc.chunkBuf[mergeIdx]
	if len(buf) < size {
		if !oc.charge(int64(size - len(buf))) {
			return nil, nil, nil, false
		}
		buf = govern.AlignedBytes(size)
		oc.chunkBuf[mergeIdx] = buf
	}
	if _, err := sp.f.ReadAt(buf[:size], ref.off); err != nil {
		oc.fail(fmt.Errorf("bsp: spill chunk read: %w", err))
		return nil, nil, nil, false
	}
	if got := crc32.Checksum(buf[:size], oocCRC); got != ref.crc {
		oc.fail(fmt.Errorf("bsp: spill chunk at %d checksum mismatch (corrupt spill)", ref.off))
		return nil, nil, nil, false
	}
	return vidsOf(buf[:4*n]), int32sOf(buf[4*n : 8*n]), floatsOf(buf[8*n : 16*n]), true
}

// oocComputeFn mirrors the in-core compute/send body, sourcing messages
// from the streamed inbox regions instead of the resident arena.
func (rt *runtime) oocComputeFn() func(int) {
	return func(i int) {
		ss := rt.shards[i]
		ss.sent, ss.active, ss.updates, ss.maxDelta = 0, 0, 0, 0
		for d := range ss.out {
			b := &ss.out[d]
			b.dst, b.srcM, b.val = b.dst[:0], b.srcM[:0], b.val[:0]
		}
		ss.spill.reset()
		oc := rt.oc
		s := rt.plan.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			mlen := rt.inLen[v]
			if rt.halted[v] && mlen == 0 {
				continue
			}
			msgs := oc.inboxMsgs(i, rt.inStart[v], mlen)
			rt.halted[v] = false
			ss.active++
			ss.ctx.v = graph.VertexID(v)
			ss.ctx.srcM = rt.owner[v]
			rt.cfg.Program.Compute(&ss.ctx, msgs)
		}
	}
}

// oocMergeFn mirrors the in-core fused count+layout+deposit body,
// folding each source shard's spilled chunks (flush order) before its
// in-memory remainder — the exact sequential stream — into a region
// buffer that is then sealed to the shard's next inbox segment.
func (rt *runtime) oocMergeFn() func(int) {
	return func(i int) {
		oc := rt.oc
		s := rt.plan.Shard(i)
		cnt := rt.nextLen
		for v := s.Lo; v < s.Hi; v++ {
			cnt[v] = 0
		}
		for _, src := range rt.shards {
			for _, ref := range src.spill.chunks[s.Index] {
				dsts, _, _, ok := src.spill.readChunk(i, ref)
				if !ok {
					return
				}
				for _, w := range dsts {
					cnt[w]++
				}
			}
			for _, w := range src.out[s.Index].dst {
				cnt[w]++
			}
		}
		base := rt.shardBase[i]
		run := base
		for v := s.Lo; v < s.Hi; v++ {
			rt.nextStart[v] = run
			run += cnt[v]
			cnt[v] = 0
		}
		region := oc.region(i, int(run-base))
		if region == nil && run != base {
			return
		}
		var d delivery
		tag := int32(rt.superstep)
		for _, src := range rt.shards {
			for _, ref := range src.spill.chunks[s.Index] {
				dsts, srcMs, vals, ok := src.spill.readChunk(i, ref)
				if !ok {
					return
				}
				for k, dst := range dsts {
					del, cross := rt.depositRegion(region, base, srcMs[k], dst, vals[k], tag)
					d.delivered += del
					d.cross += cross
				}
			}
			b := &src.out[s.Index]
			for k, dst := range b.dst {
				del, cross := rt.depositRegion(region, base, b.srcM[k], dst, b.val[k], tag)
				d.delivered += del
				d.cross += cross
			}
		}
		rt.merged[i] = d
		oc.writeRegion(i, region, base)
	}
}

// depositRegion is deposit against a region buffer: identical logic and
// float operations, with arena indices translated by the region base
// (the combiner's slotIdx stays a global arena index, exactly as
// in-core, so checkpoint/rollback state is shared unchanged).
func (rt *runtime) depositRegion(region []float64, base int32, srcM int32, dst graph.VertexID, val float64, tag int32) (delivered, cross int64) {
	if rt.cfg.Combine != nil && int(tag) >= rt.cfg.CombineFrom {
		if rt.stamp[srcM][dst] == tag {
			i := rt.slotIdx[srcM][dst] - base
			region[i] = rt.cfg.Combine(region[i], val)
			return 0, 0 // merged: no new wire message
		}
		rt.stamp[srcM][dst] = tag
		rt.slotIdx[srcM][dst] = rt.nextStart[dst] + rt.nextLen[dst]
	}
	region[rt.nextStart[dst]+rt.nextLen[dst]-base] = val
	rt.nextLen[dst]++
	delivered = 1
	if srcM != rt.owner[dst] {
		cross = 1
	}
	return delivered, cross
}

// Unsafe aliased views between typed slices and their raw bytes. All
// spill I/O stays on one host, so native byte order is fine; alignment
// holds because buffers come from govern.AlignedBytes and every typed
// view starts at an offset that is a multiple of its element size.

func bytesOfVIDs(s []graph.VertexID) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func bytesOfInt32s(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func bytesOfFloats(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func vidsOf(p []byte) []graph.VertexID {
	if len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.VertexID)(unsafe.Pointer(&p[0])), len(p)/4)
}

func int32sOf(p []byte) []int32 {
	if len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), len(p)/4)
}

func floatsOf(p []byte) []float64 {
	if len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), len(p)/8)
}
