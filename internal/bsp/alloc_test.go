package bsp

import (
	"fmt"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/par"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// shardBudgets are the per-superstep allocation budgets by shard
// count. The sequential budget leaves headroom for incidental runtime
// noise only; the sharded budget is its double — the acceptance bound
// this PR's persistent worker runtime has to hold (the per-dispatch
// goroutine spawns that used to cost ~100 allocations per superstep at
// 8 shards are gone; dispatches onto the persistent pool allocate
// nothing).
var shardBudgets = map[int]float64{1: 4, 8: 8}

// TestSuperstepAllocBudget locks in the zero-allocation message plane:
// once the arenas and send buckets are warm, a PageRank superstep must
// cost only a constant handful of allocations (IterStats disabled),
// never O(messages) — at any shard count. It measures the marginal
// cost per superstep by differencing a long run against a short one,
// so per-run setup (graph state, arenas reaching steady capacity)
// cancels out.
func TestSuperstepAllocBudget(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1})
	cut := partition.EdgeCut{M: 4, Seed: 7}
	for shards, budget := range shardBudgets {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(iters int) float64 {
				return testing.AllocsPerRun(3, func() {
					_, err := Run(sim.NewSize(4), Config{
						Graph: g, Scale: 1, M: 4, MachineOf: cut.MachineOf,
						Profile: &testProfile, Program: &PageRankProgram{Damping: 0.15},
						Combine: SumCombine, FixedSupersteps: iters, Shards: shards,
					})
					if err != nil {
						panic(err)
					}
				})
			}
			short, long := run(5), run(45)
			perStep := (long - short) / 40
			if perStep > budget {
				t.Errorf("PageRank superstep allocates %.1f objects in steady state at %d shards, budget %.0f (short run %.0f, long run %.0f)",
					perStep, shards, budget, short, long)
			}
		})
	}
}

// TestSuperstepAllocBudgetTraversal is the same check for the sparse
// path: WCC supersteps where most vertices are halted must also stay
// within a constant allocation budget.
func TestSuperstepAllocBudgetTraversal(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 2_000_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	cut := partition.EdgeCut{M: 4, Seed: 7}
	for shards, budget := range shardBudgets {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(iters int) float64 {
				return testing.AllocsPerRun(3, func() {
					_, err := Run(sim.NewSize(4), Config{
						Graph: g, Scale: 1, M: 4, MachineOf: cut.MachineOf,
						Profile: &testProfile, Program: &SSSPProgram{Source: src},
						Combine: MinCombine, MaxSupersteps: iters, Shards: shards,
					})
					if err != nil {
						panic(err)
					}
				})
			}
			short, long := run(5), run(45)
			perStep := (long - short) / 40
			if perStep > budget {
				t.Errorf("SSSP superstep allocates %.1f objects in steady state at %d shards, budget %.0f (short run %.0f, long run %.0f)",
					perStep, shards, budget, short, long)
			}
		})
	}
}

// TestSuperstepAllocBudgetPull pins the same steady-state guarantee on
// the pull kernels: with the direction forced to pull, a PageRank
// superstep is a full in-CSR sweep over warm fvals/slot arrays and an
// SSSP superstep is a frontier-driven min sweep — neither may allocate
// per superstep once the frontier bitset and snapshot arrays have
// reached capacity. The sharded budgets carry a little extra headroom
// for the frontier's sparse list reaching its high-water mark during
// the differenced window.
func TestSuperstepAllocBudgetPull(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cut := partition.EdgeCut{M: 4, Seed: 7}
	prg := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1})
	wrn := datasets.Generate(datasets.WRN, datasets.Options{Scale: 2_000_000, Seed: 1})
	src := datasets.SourceVertex(wrn, 42)
	cases := map[string]func(iters, shards int) Config{
		"pagerank": func(iters, shards int) Config {
			return Config{
				Graph: prg, Scale: 1, M: 4, MachineOf: cut.MachineOf,
				Profile: &testProfile, Program: &PageRankProgram{Damping: 0.15},
				Combine: SumCombine, FixedSupersteps: iters, Shards: shards,
				Direction: engine.DirectionPull,
			}
		},
		"sssp": func(iters, shards int) Config {
			return Config{
				Graph: wrn, Scale: 1, M: 4, MachineOf: cut.MachineOf,
				Profile: &testProfile, Program: &SSSPProgram{Source: src},
				Combine: MinCombine, MaxSupersteps: iters, Shards: shards,
				Direction: engine.DirectionPull,
			}
		},
	}
	for name, mk := range cases {
		for shards, budget := range shardBudgets {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				run := func(iters int) float64 {
					return testing.AllocsPerRun(3, func() {
						_, err := Run(sim.NewSize(4), mk(iters, shards))
						if err != nil {
							panic(err)
						}
					})
				}
				short, long := run(5), run(45)
				perStep := (long - short) / 40
				if perStep > budget {
					t.Errorf("%s pull superstep allocates %.1f objects in steady state at %d shards, budget %.0f (short run %.0f, long run %.0f)",
						name, perStep, shards, budget, short, long)
				}
			})
		}
	}
}

// TestSuperstepAllocBudgetLPA extends the zero-allocation guarantee to
// the label-propagation workload: each synchronous round sorts its
// inbox slice in place and re-sends into warm buckets, so the marginal
// cost per extra round must stay a constant handful of objects — never
// O(messages), even though every vertex messages every neighbor every
// round.
func TestSuperstepAllocBudgetLPA(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1}).Simple()
	cut := partition.EdgeCut{M: 4, Seed: 7}
	run := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			_, err := Run(sim.NewSize(4), Config{
				Graph: g, Scale: 1, M: 4, MachineOf: cut.MachineOf,
				Profile: &testProfile, Program: &LPAProgram{Rounds: rounds}, Shards: 1,
			})
			if err != nil {
				panic(err)
			}
		})
	}
	short, long := run(5), run(45)
	perStep := (long - short) / 40
	const budget = 4
	if perStep > budget {
		t.Errorf("LPA superstep allocates %.1f objects in steady state, budget %d (short run %.0f, long run %.0f)",
			perStep, budget, short, long)
	}
}

// TestTriangleAllocConstantInMessages guards the triangle program's
// ride on the flat message plane: the candidate fan-out is quadratic in
// forward degrees (tens of thousands of messages on the dense fixture),
// but a whole run must stay within a constant allocation budget —
// per-message boxing would show up as O(candidates) allocations.
func TestTriangleAllocConstantInMessages(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cut := partition.EdgeCut{M: 4, Seed: 7}
	run := func(scale float64) float64 {
		g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: scale, Seed: 1})
		oriented, rank := graph.ForwardOrient(g)
		return testing.AllocsPerRun(3, func() {
			_, err := Run(sim.NewSize(4), Config{
				Graph: oriented, Scale: 1, M: 4, MachineOf: cut.MachineOf,
				Profile: &testProfile, Program: &TriangleProgram{Rank: rank},
				Combine: SumCombine, CombineFrom: 1, Shards: 1,
			})
			if err != nil {
				panic(err)
			}
		})
	}
	// The denser fixture carries several times the candidate volume of
	// the sparser one; allocation counts must not follow.
	sparse, dense := run(1_200_000), run(400_000)
	const runBudget = 400 // per-run setup arrays, far below any per-message regime
	if dense > runBudget {
		t.Errorf("triangle run allocates %.0f objects, budget %d", dense, runBudget)
	}
	if dense > sparse+100 {
		t.Errorf("triangle allocations grew with message volume: %.0f (dense) vs %.0f (sparse)", dense, sparse)
	}
}

// TestQuiescenceStopsAfterArenaSwap verifies the quiescence stop
// condition against the swapped-arena deliver(): a run whose frontier
// dies out must observe deliveredTotal == 0 with every vertex halted
// and stop, rather than spinning on a stale inbox arena.
func TestQuiescenceStopsAfterArenaSwap(t *testing.T) {
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 2_000_000, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	cut := partition.EdgeCut{M: 4, Seed: 7}
	out, err := Run(sim.NewSize(4), Config{
		Graph: g, Scale: 1, M: 4, MachineOf: cut.MachineOf,
		Profile: &testProfile, Program: &SSSPProgram{Source: src},
		Combine: MinCombine,
	})
	if err != nil {
		t.Fatalf("bsp.Run failed: %v", err)
	}
	// BFS reaches quiescence in O(diameter) supersteps; the safety
	// bound is 2^20, so finishing anywhere near the diameter means the
	// stop condition fired on real quiescence, not the bound.
	if out.Supersteps >= DefaultMaxSupersteps {
		t.Fatalf("run only stopped at the safety bound (%d supersteps)", out.Supersteps)
	}
	maxWant := 4 * (1 + int(float64(g.NumVertices()))) // generous: any real stop is far below
	if out.Supersteps > maxWant {
		t.Fatalf("suspiciously many supersteps: %d", out.Supersteps)
	}
}
