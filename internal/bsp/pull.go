package bsp

import (
	"math"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/par"
)

// Direction-optimizing execution for the BSP runtime.
//
// A push superstep routes every message through the per-shard send
// buckets and the merge pass — the right shape when few vertices send.
// When the sender frontier is dense, the same superstep can instead be
// computed as a pull sweep: every vertex scans its in-edges for members
// of the previous superstep's sender set and folds their (snapshotted)
// message values directly, bypassing the buckets, the arena layout, and
// the deposit pass entirely. This is Beamer's direction-optimizing
// traversal lifted from BFS to the three message-monoid programs the
// runtime ships: min-propagation over out-edges (SSSP), min-propagation
// over all edges (WCC/HashMin), and rank-sum (PageRank).
//
// The contract is strict bit-identity: outputs, per-superstep IterStats,
// and every modeled cost (sent, delivered, cross-machine, active counts
// — hence charged seconds and network bytes) are identical under
// DirectionPush, DirectionPull, and DirectionAuto at every shard count.
// The direction changes only host wall-clock time. The kernels below
// therefore replicate the push path's accounting exactly, including the
// sender-side combiner's distinct-(machine, receiver) delivery counts
// and PageRank's float summation order.

// PullKind classifies a program's pull kernel.
type PullKind int

const (
	// PullNone marks a program with no pull kernel; it always pushes.
	PullNone PullKind = iota
	// PullSum is the PageRank shape: every vertex is active every
	// superstep, messages are value/out-degree along out-edges, and the
	// receiver folds them with +.
	PullSum
	// PullMinOut is the SSSP shape: changed vertices send value+Delta
	// along out-edges, receivers min-fold against their own value, and
	// every vertex votes to halt each superstep.
	PullMinOut
	// PullMinAll is the WCC/HashMin shape: like PullMinOut but changed
	// vertices send along out- and (from superstep 1, when the run uses
	// reverse-edge discovery) in-edges, and every active vertex sends
	// once more at superstep 1 even when unchanged.
	PullMinAll
)

// PullSpec describes the pull kernel of a program.
type PullSpec struct {
	Kind PullKind
	// Damping is the PullSum damping factor (PageRank's δ).
	Damping float64
	// Delta is added to a sender's value to form its outgoing message
	// (SSSP sends value+1; WCC sends the value itself).
	Delta float64
	// Monotone promises that a vertex's value, once finite, is never
	// improved by a later message — true for hop-counting wavefronts
	// like SSSP, where a vertex settles at its first finite value. A
	// monotone pull sweep skips every settled vertex outright: its
	// in-edge scan cannot change anything, and its contribution to the
	// superstep's active count ("received at least one message" — every
	// vertex has voted to halt from superstep 0 on) is recovered from
	// the counting pass's distinct-receiver tally instead. This is the
	// bottom-up half of Beamer's heuristic: across a whole run each
	// vertex's in-edges are scanned roughly once — until it settles —
	// rather than once per dense superstep.
	Monotone bool
}

// directionProbe counts direction-machinery events for tests guarding
// against vacuous coverage. Settable only from within the package.
type directionProbe struct {
	pulled       int // pull supersteps executed
	materialized int // pull-to-push inbox rebuilds with pending messages
}

// PullProgram is implemented by programs whose supersteps can be
// computed by a pull sweep. The spec is a promise that Compute's
// superstep-1-onward behaviour is exactly the declared kind's kernel;
// the runtime checks nothing at runtime and bit-identity is asserted by
// the enginetest direction suites instead.
type PullProgram interface {
	Program
	PullSpec() PullSpec
}

// PullSpec declares PageRank's rank-sum pull kernel.
func (p *PageRankProgram) PullSpec() PullSpec { return PullSpec{Kind: PullSum, Damping: p.Damping} }

// PullSpec declares HashMin's all-neighbors min pull kernel.
func (WCCProgram) PullSpec() PullSpec { return PullSpec{Kind: PullMinAll} }

// PullSpec declares SSSP's out-edge min pull kernel. The kernel is
// monotone: messages are hop counts (value+1), so the first finite
// value a vertex adopts is its BFS level and no later message beats it.
func (p *SSSPProgram) PullSpec() PullSpec {
	return PullSpec{Kind: PullMinOut, Delta: 1, Monotone: true}
}

// setupDirection resolves the run's pull spec and allocates the
// direction-optimization state. It runs once, after vertex init. A
// forced-push run skips everything: no frontier tracking, no scratch.
func (rt *runtime) setupDirection() {
	if rt.cfg.Direction == engine.DirectionPush {
		return
	}
	pp, ok := rt.cfg.Program.(PullProgram)
	if !ok {
		return
	}
	spec := pp.PullSpec()
	if spec.Kind == PullNone {
		return
	}
	// PullSum caches delivered/cross from superstep 0's real push, which
	// is only valid when superstep 0 combines the same way later
	// supersteps do.
	if spec.Kind == PullSum && rt.cfg.Combine != nil && rt.cfg.CombineFrom != 0 {
		return
	}
	rt.spec = spec
	n := rt.cfg.Graph.NumVertices()
	rt.fvals = make([]float64, n)
	rt.totalMass = int64(rt.cfg.Graph.NumEdges())
	if rt.allShape(1) {
		rt.totalMass *= 2 // the in-CSR mirrors every out-edge
	}
	if spec.Kind == PullSum {
		rt.buildSumKernel()
		return
	}
	rt.trackSenders = true
	rt.frontier = graph.NewFrontier(n)
	rt.nextFront = graph.NewFrontier(n)
	for _, ss := range rt.shards {
		ss.pullStamp = make([]int32, rt.cfg.M)
		for m := range ss.pullStamp {
			ss.pullStamp[m] = -1
		}
	}
	rt.buildMinKernel()
}

// allShape reports whether messages sent in superstep s use the
// all-neighbors shape — out-edges plus in-edges — rather than out-edges
// only. Mirrors Context.SendToAllNeighbors' gate.
func (rt *runtime) allShape(s int) bool {
	return rt.spec.Kind == PullMinAll && rt.cfg.UseInNeighbors && s >= 1
}

// sendMass is the number of messages v emits when it sends in
// superstep s — the frontier edge weight driving the density heuristic.
func (rt *runtime) sendMass(v graph.VertexID, s int) int {
	d := rt.cfg.Graph.OutDegree(v)
	if rt.allShape(s) {
		d += rt.cfg.Graph.InDegree(v)
	}
	return d
}

// pullThisStep decides the current superstep's direction. Superstep 0
// always pushes — the seeding supersteps have program-specific shapes
// (PageRank's degree division, SSSP's source-only send) that the pull
// kernels deliberately do not model. PullSum always pulls afterwards:
// its frontier is implicitly every vertex. The min kinds apply the
// Beamer heuristic with hysteresis derived from arenaFresh (false iff
// the previous superstep pulled): push→pull when the sender frontier's
// edge mass passes totalMass/FrontierAlpha, pull→push when it falls
// below totalMass/(FrontierAlpha·FrontierBeta). The wide band exists
// because a pulled superstep's sweep cost is near-flat in frontier
// size: once a run has gone dense enough to pull, flipping back only
// pays once the frontier has collapsed by another factor of Beta, not
// at the first sub-dense superstep.
func (rt *runtime) pullThisStep() bool {
	if rt.spec.Kind == PullNone || rt.superstep == 0 {
		return false
	}
	switch rt.cfg.Direction {
	case engine.DirectionPush:
		return false
	case engine.DirectionPull:
		return true
	}
	if rt.spec.Kind == PullSum {
		return true
	}
	if !rt.arenaFresh {
		return rt.frontier.Edges()*graph.FrontierAlpha*graph.FrontierBeta >= rt.totalMass
	}
	return rt.frontier.Dense(rt.totalMass)
}

// finishPush runs after a push superstep survives its boundary: PullSum
// captures the constant per-superstep delivery counts from superstep
// 0's real merge pass, and the min kinds fold the per-shard sender
// lists — shard order, hence ascending vertex order — into the frontier
// the next superstep's direction decision and potential pull sweep use.
func (rt *runtime) finishPush() {
	if rt.spec.Kind == PullSum {
		if rt.superstep == 0 {
			rt.prD, rt.prC = rt.deliveredTotal, rt.crossTotal
		}
		return
	}
	if !rt.trackSenders {
		return
	}
	rt.frontier.Clear()
	s := rt.superstep
	for _, ss := range rt.shards {
		for _, u := range ss.senders {
			rt.frontier.Add(u, rt.sendMass(u, s))
		}
	}
}

// pullPhase computes one superstep as a pull sweep, replicating
// computePhase's outputs and accounting bit for bit.
func (rt *runtime) pullPhase() int {
	rt.updates = 0
	rt.maxDelta = 0
	rt.sentTotal = 0
	rt.activeTotal = 0
	rt.deliveredTotal = 0
	rt.crossTotal = 0
	if rt.cfg.probe != nil {
		rt.cfg.probe.pulled++
	}
	if rt.spec.Kind == PullSum {
		return rt.pullSumPhase()
	}
	return rt.pullMinPhase()
}

// pullSumPhase is the PageRank superstep as two sharded sweeps: snapshot
// every vertex's outgoing contribution value/out-degree (what push would
// have sent), then recompute every rank from the in-CSR. Delivered and
// cross-machine counts are structural constants — every superstep's
// message plane has the same shape — cached from superstep 0.
func (rt *runtime) pullSumPhase() int {
	rt.pool.ForEach(rt.plan.Count(), rt.snapFn)
	rt.pool.ForEach(rt.plan.Count(), rt.pullFn)
	active := 0
	for _, ss := range rt.shards {
		active += int(ss.active)
		rt.sentTotal += float64(ss.sent)
		rt.totalMsgs += float64(ss.sent)
		rt.updates += ss.updates
		if ss.maxDelta > rt.maxDelta {
			rt.maxDelta = ss.maxDelta
		}
	}
	rt.deliveredTotal = rt.prD
	rt.crossTotal = rt.prC
	rt.activeTotal = float64(active)
	return active
}

// buildSumKernel builds the PullSum closures once. The sweep replicates
// the push path's float summation exactly: the merge pass deposits raw
// messages in ascending source order (shards are ascending vertex
// ranges replayed in order) and the combiner folds each machine's
// messages into the slot claimed at that machine's first message, so
// the receiver's inbox holds per-machine partial sums in first-
// appearance order, which Compute then sums left to right. The sweep
// reproduces that grouping with per-machine slots (pullStamp/pullSlot/
// pullAcc) claimed in first-appearance order over the ascending
// in-neighbor scan. Without a combiner the inbox is the raw ascending
// message stream and a plain left fold matches.
func (rt *runtime) buildSumKernel() {
	g := rt.cfg.Graph
	combined := rt.cfg.Combine != nil
	if combined {
		for _, ss := range rt.shards {
			ss.pullStamp = make([]int32, rt.cfg.M)
			for m := range ss.pullStamp {
				ss.pullStamp[m] = -1
			}
			ss.pullSlot = make([]int32, rt.cfg.M)
			ss.pullAcc = make([]float64, rt.cfg.M)
		}
	}
	rt.snapFn = func(i int) {
		s := rt.plan.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			if od := g.OutDegree(graph.VertexID(v)); od > 0 {
				rt.fvals[v] = rt.values[v] / float64(od)
			}
		}
	}
	damp := rt.spec.Damping
	rt.pullFn = func(i int) {
		ss := rt.shards[i]
		ss.sent, ss.active, ss.updates, ss.maxDelta = 0, 0, 0, 0
		if combined {
			for m := range ss.pullStamp {
				ss.pullStamp[m] = -1
			}
		}
		s := rt.plan.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			ss.active++
			sum := 0.0
			if combined {
				tag := int32(v)
				nslots := int32(0)
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if g.OutDegree(u) == 0 {
						continue
					}
					m := rt.owner[u]
					if ss.pullStamp[m] != tag {
						ss.pullStamp[m] = tag
						ss.pullSlot[m] = nslots
						ss.pullAcc[nslots] = rt.fvals[u]
						nslots++
						continue
					}
					ss.pullAcc[ss.pullSlot[m]] += rt.fvals[u]
				}
				for k := int32(0); k < nslots; k++ {
					sum += ss.pullAcc[k]
				}
			} else {
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if g.OutDegree(u) == 0 {
						continue
					}
					sum += rt.fvals[u]
				}
			}
			next := damp + (1-damp)*sum
			d := next - rt.values[v]
			if d < 0 {
				d = -d
			}
			if d > ss.maxDelta {
				ss.maxDelta = d
			}
			if next != rt.values[v] {
				ss.updates++
				rt.values[v] = next
			}
			if od := g.OutDegree(graph.VertexID(v)); od > 0 {
				ss.sent += int64(od)
			}
		}
	}
}

// pullMinPhase is a WCC/SSSP superstep as a pull sweep: snapshot the
// frontier's outgoing message values, sweep every vertex scanning its
// incoming side for frontier members, then fold the new sender set and
// rerun a counting sweep for the delivery accounting the merge pass
// would have produced.
func (rt *runtime) pullMinPhase() int {
	delta := rt.spec.Delta
	for _, u := range rt.frontier.Members() {
		rt.fvals[u] = rt.values[u] + delta
	}
	// A monotone superstep's active count — vertices that received at
	// least one message, since every vertex has voted to halt since
	// superstep 0 — does not come from the sweep, which skips settled
	// vertices without looking at their incoming side. It is the
	// distinct-receiver tally of the frontier that sent: carried from
	// the previous pull superstep's counting pass, or counted off the
	// pending inbox arena when the previous superstep pushed.
	active := 0
	monotone := rt.spec.Monotone
	if monotone {
		if rt.arenaFresh {
			for _, l := range rt.inLen {
				if l > 0 {
					active++
				}
			}
		} else {
			active = rt.recvPrev
		}
	}
	rt.pool.ForEach(rt.plan.Count(), rt.pullFn)
	rt.nextFront.Clear()
	s := rt.superstep
	for _, ss := range rt.shards {
		if !monotone {
			active += int(ss.active)
		}
		rt.sentTotal += float64(ss.sent)
		rt.totalMsgs += float64(ss.sent)
		rt.updates += ss.updates
		if ss.maxDelta > rt.maxDelta {
			rt.maxDelta = ss.maxDelta
		}
		for _, u := range ss.senders {
			rt.nextFront.Add(u, rt.sendMass(u, s))
		}
	}
	rt.frontier, rt.nextFront = rt.nextFront, rt.frontier
	// Two interchangeable counting strategies, same totals: the sharded
	// receiver-side scan touches every edge, the sequential sender-side
	// scan only the new frontier's. Pick by comparing the sender-side
	// work against the full scan's wall-clock share per executing core.
	var recv int64
	if rt.countSeq != nil && rt.frontier.Edges()*int64(rt.pool.Parallelism()) < rt.totalMass {
		d := rt.countSeq()
		rt.deliveredTotal += float64(d.delivered)
		rt.crossTotal += float64(d.cross)
		recv = d.receivers
	} else {
		rt.pool.ForEach(rt.plan.Count(), rt.countFn)
		for _, d := range rt.merged {
			rt.deliveredTotal += float64(d.delivered)
			rt.crossTotal += float64(d.cross)
			recv += d.receivers
		}
	}
	rt.recvPrev = int(recv)
	rt.activeTotal = float64(active)
	return active
}

// minOver min-folds the frontier members of one neighbor list.
func minOver(fr *graph.Frontier, fvals []float64, nbrs []graph.VertexID, min float64, has bool) (float64, bool) {
	for _, u := range nbrs {
		if fr.Contains(u) && (!has || fvals[u] < min) {
			min, has = fvals[u], true
		}
	}
	return min, has
}

// buildMinKernel builds the min-kind sweep and counting closures once.
func (rt *runtime) buildMinKernel() {
	g := rt.cfg.Graph
	monotone := rt.spec.Monotone
	rt.pullFn = func(i int) {
		ss := rt.shards[i]
		ss.sent, ss.active, ss.updates, ss.maxDelta = 0, 0, 0, 0
		ss.senders = ss.senders[:0]
		fr := rt.frontier
		prevAll := rt.allShape(rt.superstep - 1)
		// WCC's superstep-1 rule: active-but-unchanged vertices still
		// send their label once (Compute's Superstep()==1 case).
		sendAnyway := rt.spec.Kind == PullMinAll && rt.superstep == 1
		s := rt.plan.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			if monotone && !math.IsInf(rt.values[v], 1) {
				// Settled: Monotone promises no message improves a finite
				// value, and the vertex halted when it last computed, so
				// the push path would min-fold its inbox and change
				// nothing. Its active contribution is recovered from the
				// distinct-receiver tally in pullMinPhase.
				continue
			}
			minMsg, has := minOver(fr, rt.fvals, g.InNeighbors(graph.VertexID(v)), 0, false)
			if prevAll {
				minMsg, has = minOver(fr, rt.fvals, g.OutNeighbors(graph.VertexID(v)), minMsg, has)
			}
			if !has && rt.halted[v] {
				continue // halted with no messages: skipped, exactly as computeFn would
			}
			ss.active++
			changed := false
			if has && minMsg < rt.values[v] {
				rt.values[v] = minMsg
				ss.updates++
				changed = true
			}
			if changed || sendAnyway {
				if d := rt.sendMass(graph.VertexID(v), rt.superstep); d > 0 {
					ss.sent += int64(d)
					ss.senders = append(ss.senders, graph.VertexID(v))
				}
			}
			rt.halted[v] = true // both kernels vote to halt every superstep
		}
	}
	// countSeq is the sender-side delivery count: the same totals as
	// countFn from one sequential pass over the new frontier's edges,
	// which beats the full sharded receiver scan whenever few vertices
	// changed. The combined count dedups (sender machine, receiver)
	// pairs with one mask word per receiver, so it needs the machine
	// count to fit a word; past that only the receiver-side scan runs.
	// Both variants also tally distinct receivers — the next monotone
	// pull superstep's active count (pullMinPhase stores it).
	if rt.cfg.Combine == nil || rt.cfg.M <= 64 {
		if rt.cfg.Combine != nil || monotone {
			rt.countMask = make([]uint64, g.NumVertices())
		}
		rt.countSeq = func() delivery {
			var d delivery
			fr := rt.frontier
			all := rt.allShape(rt.superstep)
			combined := rt.cfg.Combine != nil && rt.superstep >= rt.cfg.CombineFrom
			touched := rt.countTouched[:0]
			if combined {
				count := func(m int32, bit uint64, w graph.VertexID) {
					if rt.countMask[w]&bit == 0 {
						if rt.countMask[w] == 0 {
							touched = append(touched, w)
						}
						rt.countMask[w] |= bit
						d.delivered++
						if m != rt.owner[w] {
							d.cross++
						}
					}
				}
				for _, u := range fr.Members() {
					m := rt.owner[u]
					bit := uint64(1) << uint(m)
					for _, w := range g.OutNeighbors(u) {
						count(m, bit, w)
					}
					if all {
						for _, w := range g.InNeighbors(u) {
							count(m, bit, w)
						}
					}
				}
			} else {
				count := func(m int32, w graph.VertexID) {
					d.delivered++
					if m != rt.owner[w] {
						d.cross++
					}
					if monotone && rt.countMask[w] == 0 {
						rt.countMask[w] = 1
						touched = append(touched, w)
					}
				}
				for _, u := range fr.Members() {
					m := rt.owner[u]
					for _, w := range g.OutNeighbors(u) {
						count(m, w)
					}
					if all {
						for _, w := range g.InNeighbors(u) {
							count(m, w)
						}
					}
				}
			}
			d.receivers = int64(len(touched))
			for _, w := range touched {
				rt.countMask[w] = 0
			}
			rt.countTouched = touched
			return d
		}
	}
	rt.countFn = func(i int) {
		// Delivery accounting for the messages the new senders emit: the
		// merge pass counts one delivery per message without a combiner,
		// and one per distinct (sender machine, receiver) pair with one;
		// cross-machine likewise. Receiver v hears from sender u along
		// u's out-edges (u in in(v)) and, under the all-neighbors shape,
		// u's in-edges (u in out(v)).
		ss := rt.shards[i]
		fr := rt.frontier
		all := rt.allShape(rt.superstep)
		combined := rt.cfg.Combine != nil && rt.superstep >= rt.cfg.CombineFrom
		var d delivery
		s := rt.plan.Shard(i)
		if combined {
			for m := range ss.pullStamp {
				ss.pullStamp[m] = -1
			}
			for v := s.Lo; v < s.Hi; v++ {
				tag := int32(v)
				own := rt.owner[v]
				dv := d.delivered
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if fr.Contains(u) && ss.pullStamp[rt.owner[u]] != tag {
						ss.pullStamp[rt.owner[u]] = tag
						d.delivered++
						if rt.owner[u] != own {
							d.cross++
						}
					}
				}
				if all {
					for _, u := range g.OutNeighbors(graph.VertexID(v)) {
						if fr.Contains(u) && ss.pullStamp[rt.owner[u]] != tag {
							ss.pullStamp[rt.owner[u]] = tag
							d.delivered++
							if rt.owner[u] != own {
								d.cross++
							}
						}
					}
				}
				if d.delivered != dv {
					d.receivers++
				}
			}
		} else {
			for v := s.Lo; v < s.Hi; v++ {
				own := rt.owner[v]
				dv := d.delivered
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if fr.Contains(u) {
						d.delivered++
						if rt.owner[u] != own {
							d.cross++
						}
					}
				}
				if all {
					for _, u := range g.OutNeighbors(graph.VertexID(v)) {
						if fr.Contains(u) {
							d.delivered++
							if rt.owner[u] != own {
								d.cross++
							}
						}
					}
				}
				if d.delivered != dv {
					d.receivers++
				}
			}
		}
		rt.merged[i] = d
	}
}

// materializeInbox rebuilds the pending inbox arena from the sender
// frontier when a pull superstep is followed by a push one: the pull
// path never ran the merge pass, so the messages exist only implicitly.
// The rebuild replays them in the exact order the merge pass would have
// deposited them — ascending sender, out-edges then in-edges per sender
// — through the same deposit routine with the sending superstep's tag,
// so the arena (and the combiner state) is bit-identical to the one a
// push superstep would have left. Delivery counts from deposit are
// discarded: the pull superstep already accounted them.
func (rt *runtime) materializeInbox() {
	g := rt.cfg.Graph
	sent := rt.superstep - 1
	all := rt.allShape(sent)
	tag := int32(sent)
	members := rt.frontier.Members()
	if rt.cfg.probe != nil && len(members) > 0 {
		rt.cfg.probe.materialized++
	}
	cnt := rt.nextLen
	for i := range cnt {
		cnt[i] = 0
	}
	for _, u := range members {
		for _, w := range g.OutNeighbors(u) {
			cnt[w]++
		}
		if all {
			for _, w := range g.InNeighbors(u) {
				cnt[w]++
			}
		}
	}
	run := int32(0)
	for v := range cnt {
		rt.nextStart[v] = run
		run += cnt[v]
		cnt[v] = 0
	}
	rt.nextVals = par.Grow(rt.nextVals, int(run))
	delta := rt.spec.Delta
	for _, u := range members {
		val := rt.values[u] + delta
		srcM := rt.owner[u]
		for _, w := range g.OutNeighbors(u) {
			rt.deposit(srcM, w, val, tag)
		}
		if all {
			for _, w := range g.InNeighbors(u) {
				rt.deposit(srcM, w, val, tag)
			}
		}
	}
	rt.deliver()
}
