package bsp

import (
	"fmt"
	"math"
	"slices"

	"graphbench/internal/graph"
	"graphbench/internal/singlethread"
)

// The vertex programs of §3 plus the two extension workloads, written
// once against the BSP API and shared by Giraph, Blogel-V and Flink
// Gelly — mirroring the paper's methodology of keeping the algorithm
// uniform across systems.

// SumCombine is the PageRank message combiner.
func SumCombine(a, b float64) float64 { return a + b }

// MinCombine is the WCC/SSSP/K-hop message combiner.
func MinCombine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PageRankProgram implements §3.1: pr(v) = δ + (1−δ)·Σ pr(u)/outdeg(u),
// all vertices participating every iteration (the exact variant).
type PageRankProgram struct {
	Damping float64
}

// Init starts every vertex at rank 1.
func (p *PageRankProgram) Init(graph.VertexID) float64 { return 1 }

// Compute implements one PageRank superstep.
func (p *PageRankProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToOut(ctx.Value() / float64(d))
		}
		return
	}
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	next := p.Damping + (1-p.Damping)*sum
	d := next - ctx.Value()
	if d < 0 {
		d = -d
	}
	ctx.AggregateMaxDelta(d)
	ctx.SetValue(next)
	if deg := ctx.OutDegree(); deg > 0 {
		ctx.SendToOut(next / float64(deg))
	}
}

// WCCProgram implements HashMin (§3.2) with the paper's corrected
// first-superstep behaviour: superstep 0 sends each vertex id along
// out-edges, which both seeds label propagation and discovers reverse
// edges; later supersteps propagate minima along edges in both
// directions. Runs must set Config.UseInNeighbors and CombineFrom=1
// (messages in the first superstep must not be combined, §5.8).
type WCCProgram struct{}

// Init labels each vertex with its own id.
func (WCCProgram) Init(v graph.VertexID) float64 { return float64(v) }

// Compute implements one HashMin superstep.
func (WCCProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		ctx.SendToOut(ctx.Value())
		return // stay active so every vertex runs in superstep 1
	}
	min := ctx.Value()
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	switch {
	case min < ctx.Value():
		ctx.SetValue(min)
		ctx.SendToAllNeighbors(min)
	case ctx.Superstep() == 1:
		// Unchanged, but neighbors still need this vertex's label once.
		ctx.SendToAllNeighbors(ctx.Value())
	}
	ctx.VoteToHalt()
}

// SSSPProgram implements §3.3's BFS-style SSSP: hop distances from
// Source, one frontier level per superstep.
type SSSPProgram struct {
	Source graph.VertexID
}

// Init sets every distance to +Inf.
func (p *SSSPProgram) Init(graph.VertexID) float64 { return math.Inf(1) }

// Compute implements one SSSP superstep.
func (p *SSSPProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if ctx.Vertex() == p.Source {
			ctx.SetValue(0)
			ctx.SendToOut(1)
		}
		ctx.VoteToHalt()
		return
	}
	min := ctx.Value()
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if min < ctx.Value() {
		ctx.SetValue(min)
		ctx.SendToOut(min + 1)
	}
	ctx.VoteToHalt()
}

// KHopProgram is SSSP truncated at K hops (§3.3; the paper uses K=3).
type KHopProgram struct {
	Source graph.VertexID
	K      int
}

// Init sets every distance to +Inf.
func (p *KHopProgram) Init(graph.VertexID) float64 { return math.Inf(1) }

// Compute implements one bounded-BFS superstep.
func (p *KHopProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if ctx.Vertex() == p.Source {
			ctx.SetValue(0)
			if p.K > 0 {
				ctx.SendToOut(1)
			}
		}
		ctx.VoteToHalt()
		return
	}
	min := ctx.Value()
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if min < ctx.Value() {
		ctx.SetValue(min)
		if int(min)+1 <= p.K {
			ctx.SendToOut(min + 1)
		}
	}
	ctx.VoteToHalt()
}

// pairShift is the bit width of the second id in an encoded pair: two
// vertex ids share one float64 message, so both must stay below 2^26
// for the 52-bit mantissa to hold the pair exactly. Synthetic analogues
// are orders of magnitude smaller.
const pairShift = 26

// EncodePair packs two vertex ids into one float64 message — how the
// triangle program rides the flat message plane without per-message
// boxing. It panics if an id does not fit, which is a configuration
// error (the synthetic graphs are far below the bound).
func EncodePair(a, b graph.VertexID) float64 {
	if a < 0 || b < 0 || a >= 1<<pairShift || b >= 1<<pairShift {
		panic(fmt.Sprintf("bsp: vertex pair (%d,%d) exceeds the 2^%d message-encoding bound", a, b, pairShift))
	}
	return float64(int64(a)<<pairShift | int64(b))
}

// DecodePair unpacks a message encoded by EncodePair.
func DecodePair(m float64) (a, b graph.VertexID) {
	x := int64(m)
	return graph.VertexID(x >> pairShift), graph.VertexID(x & (1<<pairShift - 1))
}

// TriangleProgram implements degree-ordered (forward) triangle counting
// in three supersteps. The run must use the graph.ForwardOrient
// orientation as Config.Graph and pass its rank array:
//
//	superstep 0: every vertex u sends, for each pair (v, w) of its
//	  forward neighbors, the candidate pair (u, third) to the
//	  lower-ranked of {v, w} — the quadratic fan-out that makes this
//	  workload stress message planes;
//	superstep 1: a vertex probes each candidate's closing edge in its
//	  own forward list; each hit counts one triangle locally and sends
//	  one credit to each of the two other corners;
//	superstep 2: credits are folded into the per-vertex counts.
//
// Per-vertex values end as incident-triangle counts: every triangle
// adds one at each of its three corners, so sum(values)/3 is the global
// total. Credits may be sum-combined (CombineFrom 1); candidates must
// not be combined.
type TriangleProgram struct {
	Rank []int32
}

// Init starts every count at zero.
func (p *TriangleProgram) Init(graph.VertexID) float64 { return 0 }

// Compute implements one triangle-counting superstep.
func (p *TriangleProgram) Compute(ctx *Context, msgs []float64) {
	switch ctx.Superstep() {
	case 0:
		nbrs := ctx.OutNeighbors()
		u := ctx.Vertex()
		for i, v := range nbrs {
			for _, w := range nbrs[i+1:] {
				mid, third := v, w
				if p.Rank[mid] > p.Rank[third] {
					mid, third = third, mid
				}
				ctx.Send(mid, EncodePair(u, third))
			}
		}
	case 1:
		nbrs := ctx.OutNeighbors()
		count := ctx.Value()
		for _, m := range msgs {
			u, third := DecodePair(m)
			if _, ok := slices.BinarySearch(nbrs, third); ok {
				count++
				ctx.Send(u, 1)
				ctx.Send(third, 1)
			}
		}
		ctx.SetValue(count)
	default:
		sum := ctx.Value()
		for _, m := range msgs {
			sum += m
		}
		ctx.SetValue(sum)
	}
	ctx.VoteToHalt()
}

// LPAProgram implements synchronous label propagation. The run must use
// the undirected simple view (graph.Graph.Simple) as Config.Graph, with
// no combiner (label frequencies matter). Every vertex sends its label
// every round until the fixed cap, then halts; the runtime stops on
// quiescence one superstep later.
//
// The inbox slice is sorted in place — it is consumed by this vertex
// only and rebuilt by the next merge pass — so the most-frequent /
// max-tie-break scan allocates nothing per superstep.
type LPAProgram struct {
	Rounds int // synchronous rounds; superstep r computes round r
}

// Init labels each vertex with its own id.
func (p *LPAProgram) Init(v graph.VertexID) float64 { return float64(v) }

// Compute implements one LPA superstep.
func (p *LPAProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		ctx.SendToOut(ctx.Value())
		return // stay active: every vertex participates in every round
	}
	slices.Sort(msgs)
	label := singlethread.ModeMaxLabel(msgs, ctx.Value())
	ctx.SetValue(label)
	if ctx.Superstep() < p.Rounds {
		ctx.SendToOut(label)
		return
	}
	ctx.VoteToHalt()
}

// DistancesFromValues converts float vertex values to the int32 hop
// distances used by the oracles (-1 for unreached).
func DistancesFromValues(values []float64) []int32 {
	out := make([]int32, len(values))
	for i, v := range values {
		if math.IsInf(v, 1) {
			out[i] = -1
		} else {
			out[i] = int32(v)
		}
	}
	return out
}

// LabelsFromValues converts float vertex values to WCC labels.
func LabelsFromValues(values []float64) []graph.VertexID {
	out := make([]graph.VertexID, len(values))
	for i, v := range values {
		out[i] = graph.VertexID(v)
	}
	return out
}

// TrianglesFromValues converts float vertex values to the per-vertex
// triangle counts of the oracle.
func TrianglesFromValues(values []float64) []int64 {
	out := make([]int64, len(values))
	for i, v := range values {
		out[i] = int64(v)
	}
	return out
}

// CommunityLabelsFromValues converts float LPA values to canonical
// community labels (smallest member id per community).
func CommunityLabelsFromValues(values []float64) []graph.VertexID {
	return graph.CanonicalizeLabels(LabelsFromValues(values))
}
