package bsp

import (
	"math"

	"graphbench/internal/graph"
)

// The four vertex programs of §3, written once against the BSP API and
// shared by Giraph and Blogel-V — mirroring the paper's methodology of
// keeping the algorithm uniform across systems.

// SumCombine is the PageRank message combiner.
func SumCombine(a, b float64) float64 { return a + b }

// MinCombine is the WCC/SSSP/K-hop message combiner.
func MinCombine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PageRankProgram implements §3.1: pr(v) = δ + (1−δ)·Σ pr(u)/outdeg(u),
// all vertices participating every iteration (the exact variant).
type PageRankProgram struct {
	Damping float64
}

// Init starts every vertex at rank 1.
func (p *PageRankProgram) Init(graph.VertexID) float64 { return 1 }

// Compute implements one PageRank superstep.
func (p *PageRankProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToOut(ctx.Value() / float64(d))
		}
		return
	}
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	next := p.Damping + (1-p.Damping)*sum
	d := next - ctx.Value()
	if d < 0 {
		d = -d
	}
	ctx.AggregateMaxDelta(d)
	ctx.SetValue(next)
	if deg := ctx.OutDegree(); deg > 0 {
		ctx.SendToOut(next / float64(deg))
	}
}

// WCCProgram implements HashMin (§3.2) with the paper's corrected
// first-superstep behaviour: superstep 0 sends each vertex id along
// out-edges, which both seeds label propagation and discovers reverse
// edges; later supersteps propagate minima along edges in both
// directions. Runs must set Config.UseInNeighbors and CombineFrom=1
// (messages in the first superstep must not be combined, §5.8).
type WCCProgram struct{}

// Init labels each vertex with its own id.
func (WCCProgram) Init(v graph.VertexID) float64 { return float64(v) }

// Compute implements one HashMin superstep.
func (WCCProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		ctx.SendToOut(ctx.Value())
		return // stay active so every vertex runs in superstep 1
	}
	min := ctx.Value()
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	switch {
	case min < ctx.Value():
		ctx.SetValue(min)
		ctx.SendToAllNeighbors(min)
	case ctx.Superstep() == 1:
		// Unchanged, but neighbors still need this vertex's label once.
		ctx.SendToAllNeighbors(ctx.Value())
	}
	ctx.VoteToHalt()
}

// SSSPProgram implements §3.3's BFS-style SSSP: hop distances from
// Source, one frontier level per superstep.
type SSSPProgram struct {
	Source graph.VertexID
}

// Init sets every distance to +Inf.
func (p *SSSPProgram) Init(graph.VertexID) float64 { return math.Inf(1) }

// Compute implements one SSSP superstep.
func (p *SSSPProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if ctx.Vertex() == p.Source {
			ctx.SetValue(0)
			ctx.SendToOut(1)
		}
		ctx.VoteToHalt()
		return
	}
	min := ctx.Value()
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if min < ctx.Value() {
		ctx.SetValue(min)
		ctx.SendToOut(min + 1)
	}
	ctx.VoteToHalt()
}

// KHopProgram is SSSP truncated at K hops (§3.3; the paper uses K=3).
type KHopProgram struct {
	Source graph.VertexID
	K      int
}

// Init sets every distance to +Inf.
func (p *KHopProgram) Init(graph.VertexID) float64 { return math.Inf(1) }

// Compute implements one bounded-BFS superstep.
func (p *KHopProgram) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if ctx.Vertex() == p.Source {
			ctx.SetValue(0)
			if p.K > 0 {
				ctx.SendToOut(1)
			}
		}
		ctx.VoteToHalt()
		return
	}
	min := ctx.Value()
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if min < ctx.Value() {
		ctx.SetValue(min)
		if int(min)+1 <= p.K {
			ctx.SendToOut(min + 1)
		}
	}
	ctx.VoteToHalt()
}

// DistancesFromValues converts float vertex values to the int32 hop
// distances used by the oracles (-1 for unreached).
func DistancesFromValues(values []float64) []int32 {
	out := make([]int32, len(values))
	for i, v := range values {
		if math.IsInf(v, 1) {
			out[i] = -1
		} else {
			out[i] = int32(v)
		}
	}
	return out
}

// LabelsFromValues converts float vertex values to WCC labels.
func LabelsFromValues(values []float64) []graph.VertexID {
	out := make([]graph.VertexID, len(values))
	for i, v := range values {
		out[i] = graph.VertexID(v)
	}
	return out
}
