// Package bsp is the vertex-centric Bulk Synchronous Parallel runtime
// shared by the Pregel-style engines (Giraph in internal/pregel,
// Blogel-V in internal/blogel): per-machine vertex partitions, message
// passing with optional sender-side combiners, vote-to-halt semantics,
// aggregator-based stopping, and per-superstep resource charging
// against the simulated cluster.
//
// The runtime performs the real computation (values and messages are
// genuine) while charging modeled costs: CPU from vertex scans and
// message handling; network from combined cross-machine message volume;
// memory from receive buffers. Superstep wall time is the slowest
// machine plus barrier cost — BSP's straggler behaviour.
package bsp

import (
	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/sim"
)

// Program is a vertex program in the compute() style of Giraph and
// Blogel-V (§2.1): one function invoked per active vertex per superstep.
type Program interface {
	// Init returns the vertex's initial value.
	Init(v graph.VertexID) float64
	// Compute processes the messages delivered to v this superstep.
	Compute(ctx *Context, msgs []float64)
}

// Config describes one BSP execution.
type Config struct {
	Graph *graph.Graph
	Scale float64 // paper-scale multiplier; defaults to the graph's

	M           int                        // machines
	MachineOf   func(v graph.VertexID) int // vertex placement
	Profile     *sim.Profile               // cost profile
	Program     Program
	Combine     func(a, b float64) float64 // nil disables combining
	CombineFrom int                        // first superstep combining applies (WCC: 1)

	// ScanAll makes every superstep touch all owned vertices (Giraph's
	// behaviour — the source of Table 6's per-iteration floor on WRN);
	// when false only active vertices are touched (Blogel).
	ScanAll bool

	// UseInNeighbors exposes reverse edges to the program from
	// superstep 1 on (the WCC reverse-edge discovery of §5.8).
	UseInNeighbors bool

	MaxSupersteps int // safety bound; <=0 means DefaultMaxSupersteps

	// TimeDilation multiplies every superstep's charged time and
	// network volume: one synthetic superstep stands for TimeDilation
	// paper-scale supersteps (see engine.Dataset.IterDilation). Values
	// below 1 are treated as 1. IterStat.Seconds is reported per
	// paper-scale superstep (i.e. divided back by the dilation).
	TimeDilation float64

	// StopDeltaBelow stops after a superstep whose aggregated max
	// delta is below the threshold (PageRank tolerance criterion).
	StopDeltaBelow float64
	// FixedSupersteps stops after exactly this many supersteps past
	// superstep 0 (PageRank fixed-iteration criterion).
	FixedSupersteps int

	RecordIterStats bool
}

// DefaultMaxSupersteps bounds runaway executions; real runs end earlier
// by quiescence, tolerance, fixed iteration count, or simulated timeout.
const DefaultMaxSupersteps = 1 << 20

// Output is the result of a BSP execution.
type Output struct {
	Values     []float64
	Supersteps int // supersteps past the initial one (= iterations)
	IterStats  []engine.IterStat
	Messages   float64 // total messages produced (synthetic scale)
}

// Context is the per-vertex view handed to Program.Compute.
type Context struct {
	rt *runtime
	v  graph.VertexID
}

// Superstep returns the current superstep, starting at 0.
func (c *Context) Superstep() int { return c.rt.superstep }

// Vertex returns the vertex id.
func (c *Context) Vertex() graph.VertexID { return c.v }

// Value returns the vertex's current value.
func (c *Context) Value() float64 { return c.rt.values[c.v] }

// SetValue updates the vertex's value.
func (c *Context) SetValue(x float64) {
	if c.rt.values[c.v] != x {
		c.rt.updates++
	}
	c.rt.values[c.v] = x
}

// OutDegree returns the vertex's out-degree.
func (c *Context) OutDegree() int { return c.rt.cfg.Graph.OutDegree(c.v) }

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int { return c.rt.cfg.Graph.NumVertices() }

// Send delivers a message to dst for the next superstep.
func (c *Context) Send(dst graph.VertexID, val float64) { c.rt.send(c.v, dst, val) }

// SendToOut sends val to every out-neighbor.
func (c *Context) SendToOut(val float64) {
	for _, w := range c.rt.cfg.Graph.OutNeighbors(c.v) {
		c.rt.send(c.v, w, val)
	}
}

// SendToAllNeighbors sends val to out-neighbors and, when the run was
// configured with reverse-edge discovery, to in-neighbors as well.
func (c *Context) SendToAllNeighbors(val float64) {
	c.SendToOut(val)
	if c.rt.cfg.UseInNeighbors && c.rt.superstep >= 1 {
		for _, w := range c.rt.cfg.Graph.InNeighbors(c.v) {
			c.rt.send(c.v, w, val)
		}
	}
}

// VoteToHalt deactivates the vertex until a message arrives.
func (c *Context) VoteToHalt() { c.rt.halted[c.v] = true }

// AggregateMaxDelta feeds the superstep's max-delta aggregator, used by
// the PageRank tolerance stopping criterion.
func (c *Context) AggregateMaxDelta(d float64) {
	if d > c.rt.maxDelta {
		c.rt.maxDelta = d
	}
}

type runtime struct {
	cfg     Config
	cluster *sim.Cluster

	values []float64
	halted []bool
	owner  []int32 // vertex -> machine

	inbox     [][]float64
	nextInbox [][]float64

	superstep int
	updates   int
	maxDelta  float64

	// Per-superstep accounting. Totals are charged as cluster averages
	// times the profile's imbalance factor: at paper scale, hash
	// placement distributes load near-uniformly, and charging the tiny
	// synthetic per-machine counts directly would make the straggler a
	// granularity artifact rather than a property of the system.
	sentTotal      float64 // raw messages produced (CPU at senders)
	activeTotal    float64
	deliveredTotal float64 // post-combine messages delivered
	crossTotal     float64 // post-combine messages crossing machines

	// Sender-side combiner state per (machine, dst): the superstep the
	// slot was last written and the index of the slot in nextInbox[dst].
	stamp   [][]int32
	slotIdx [][]int32

	totalMsgs       float64
	lastStepSeconds float64
}

// Run executes the configured program on the cluster, charging costs as
// it goes. It returns the output and the first failure encountered
// (OOM while buffering messages, or TO), with the output reflecting
// progress up to the failure.
func Run(cluster *sim.Cluster, cfg Config) (*Output, error) {
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = DefaultMaxSupersteps
	}
	if cfg.Scale <= 0 {
		cfg.Scale = cfg.Graph.ScaleFactor()
	}
	if cfg.TimeDilation < 1 {
		cfg.TimeDilation = 1
	}
	n := cfg.Graph.NumVertices()
	rt := &runtime{
		cfg:       cfg,
		cluster:   cluster,
		values:    make([]float64, n),
		halted:    make([]bool, n),
		inbox:     make([][]float64, n),
		nextInbox: make([][]float64, n),
		owner:     make([]int32, n),
	}
	for v := 0; v < n; v++ {
		rt.values[v] = cfg.Program.Init(graph.VertexID(v))
		rt.owner[v] = int32(cfg.MachineOf(graph.VertexID(v)))
	}
	if cfg.Combine != nil {
		rt.stamp = make([][]int32, cfg.M)
		rt.slotIdx = make([][]int32, cfg.M)
		for m := 0; m < cfg.M; m++ {
			rt.stamp[m] = make([]int32, n)
			for i := range rt.stamp[m] {
				rt.stamp[m][i] = -1
			}
			rt.slotIdx[m] = make([]int32, n)
		}
	}

	out := &Output{}
	for rt.superstep = 0; rt.superstep < cfg.MaxSupersteps; rt.superstep++ {
		active := rt.computePhase()
		err := rt.chargeSuperstep()
		if cfg.RecordIterStats {
			out.IterStats = append(out.IterStats, engine.IterStat{
				Iteration: rt.superstep,
				Active:    active,
				Updates:   rt.updates,
				Seconds:   rt.lastStepSeconds,
			})
		}
		if err != nil {
			rt.fill(out)
			return out, err
		}
		if rt.shouldStop(active) {
			break
		}
		rt.deliver()
	}
	rt.fill(out)
	return out, nil
}

func (rt *runtime) fill(out *Output) {
	out.Values = rt.values
	out.Supersteps = rt.superstep
	out.Messages = rt.totalMsgs
}

// computePhase executes Compute for the active vertices and returns how
// many ran.
func (rt *runtime) computePhase() int {
	n := rt.cfg.Graph.NumVertices()
	rt.updates = 0
	rt.maxDelta = 0
	rt.sentTotal = 0
	rt.activeTotal = 0
	rt.deliveredTotal = 0
	rt.crossTotal = 0
	active := 0
	ctx := Context{rt: rt}
	for v := 0; v < n; v++ {
		msgs := rt.inbox[v]
		if rt.halted[v] && len(msgs) == 0 {
			continue
		}
		rt.halted[v] = false
		active++
		ctx.v = graph.VertexID(v)
		rt.cfg.Program.Compute(&ctx, msgs)
		rt.inbox[v] = nil
	}
	rt.activeTotal = float64(active)
	return active
}

func (rt *runtime) send(src, dst graph.VertexID, val float64) {
	srcM := rt.owner[src]
	dstM := rt.owner[dst]
	rt.sentTotal++
	rt.totalMsgs++

	if rt.cfg.Combine != nil && rt.superstep >= rt.cfg.CombineFrom {
		tag := int32(rt.superstep)
		if rt.stamp[srcM][dst] == tag {
			i := rt.slotIdx[srcM][dst]
			rt.nextInbox[dst][i] = rt.cfg.Combine(rt.nextInbox[dst][i], val)
			return // merged: no new wire message
		}
		rt.stamp[srcM][dst] = tag
		rt.slotIdx[srcM][dst] = int32(len(rt.nextInbox[dst]))
	}
	rt.nextInbox[dst] = append(rt.nextInbox[dst], val)
	rt.deliveredTotal++
	if srcM != dstM {
		rt.crossTotal++
	}
}

// chargeSuperstep charges this superstep's modeled costs: per-machine
// CPU for scans and message handling (inflated under memory pressure),
// network for cross-machine traffic, memory for receive buffers, plus
// the system's fixed coordination cost. Per-machine shares are the
// cluster average times the profile's imbalance factor.
func (rt *runtime) chargeSuperstep() error {
	p := rt.cfg.Profile
	cores := rt.cluster.Config().Cores
	capacity := rt.cluster.Config().MemoryBytes
	mf := float64(rt.cfg.M)
	imb := p.Imbalance
	if imb < 1 {
		imb = 1
	}

	// Receive buffers live for the duration of the superstep.
	bufPer := int64(rt.deliveredTotal / mf * imb * p.MsgMemBytes * rt.cfg.Scale)
	var bufErr error
	for m := 0; m < rt.cfg.M; m++ {
		if err := rt.cluster.Alloc(m, bufPer); err != nil && bufErr == nil {
			bufErr = err
		}
	}

	scanned := rt.activeTotal
	if rt.cfg.ScanAll {
		scanned = float64(rt.cfg.Graph.NumVertices())
	}
	// Dilation stretches only the per-iteration fixed work (vertex
	// scans, coordination): one synthetic superstep stands for dil
	// paper supersteps of overhead. Message volume is not dilated —
	// across a whole traversal it is O(|E|·updates), independent of
	// the diameter, so the synthetic totals already reflect paper
	// scale. This is Table 6's model: high-diameter runs are dominated
	// by the per-iteration floor, not by message traffic.
	dil := rt.cfg.TimeDilation
	costs := make([]sim.StepCost, rt.cfg.M)
	for m := 0; m < rt.cfg.M; m++ {
		compute := p.ScanSeconds(scanned/mf*imb*rt.cfg.Scale, cores)*dil +
			p.MsgSeconds((rt.sentTotal+rt.deliveredTotal)/mf*imb*rt.cfg.Scale, cores)
		compute *= p.PressureFactor(rt.cluster.Machine(m).MemUsed(), capacity)
		netBytes := rt.crossTotal / mf * imb * p.MsgBytes * rt.cfg.Scale
		costs[m] = sim.StepCost{
			ComputeSeconds: compute,
			NetSendBytes:   netBytes,
			NetRecvBytes:   netBytes,
		}
	}
	before := rt.cluster.Clock()
	err := rt.cluster.RunStep(costs)
	if err == nil && p.SuperstepFixed > 0 {
		err = rt.cluster.Advance(p.SuperstepFixed * dil)
	}
	rt.lastStepSeconds = (rt.cluster.Clock() - before) / dil
	rt.cluster.FreeAll(bufPer)
	if bufErr != nil {
		return bufErr
	}
	return err
}

func (rt *runtime) deliver() {
	rt.inbox, rt.nextInbox = rt.nextInbox, rt.inbox
	for i := range rt.nextInbox {
		rt.nextInbox[i] = nil
	}
}

func (rt *runtime) shouldStop(active int) bool {
	if active == 0 && rt.deliveredTotal == 0 {
		return true // global quiescence
	}
	if rt.superstep == 0 {
		return false
	}
	if rt.cfg.FixedSupersteps > 0 && rt.superstep >= rt.cfg.FixedSupersteps {
		return true
	}
	if rt.cfg.StopDeltaBelow > 0 && rt.maxDelta < rt.cfg.StopDeltaBelow {
		return true
	}
	return false
}
