// Package bsp is the vertex-centric Bulk Synchronous Parallel runtime
// shared by the Pregel-style engines (Giraph in internal/pregel,
// Blogel-V in internal/blogel): per-machine vertex partitions, message
// passing with optional sender-side combiners, vote-to-halt semantics,
// aggregator-based stopping, and per-superstep resource charging
// against the simulated cluster.
//
// The runtime performs the real computation (values and messages are
// genuine) while charging modeled costs: CPU from vertex scans and
// message handling; network from combined cross-machine message volume;
// memory from receive buffers. Superstep wall time is the slowest
// machine plus barrier cost — BSP's straggler behaviour.
package bsp

import (
	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/graph"
	"graphbench/internal/par"
	"graphbench/internal/sim"
)

// Program is a vertex program in the compute() style of Giraph and
// Blogel-V (§2.1): one function invoked per active vertex per superstep.
type Program interface {
	// Init returns the vertex's initial value.
	Init(v graph.VertexID) float64
	// Compute processes the messages delivered to v this superstep.
	Compute(ctx *Context, msgs []float64)
}

// Config describes one BSP execution.
type Config struct {
	Graph *graph.Graph
	Scale float64 // paper-scale multiplier; defaults to the graph's

	M           int                        // machines
	MachineOf   func(v graph.VertexID) int // vertex placement
	Profile     *sim.Profile               // cost profile
	Program     Program
	Combine     func(a, b float64) float64 // nil disables combining
	CombineFrom int                        // first superstep combining applies (WCC: 1)

	// ScanAll makes every superstep touch all owned vertices (Giraph's
	// behaviour — the source of Table 6's per-iteration floor on WRN);
	// when false only active vertices are touched (Blogel).
	ScanAll bool

	// UseInNeighbors exposes reverse edges to the program from
	// superstep 1 on (the WCC reverse-edge discovery of §5.8).
	UseInNeighbors bool

	MaxSupersteps int // safety bound; <=0 means DefaultMaxSupersteps

	// TimeDilation multiplies every superstep's charged time and
	// network volume: one synthetic superstep stands for TimeDilation
	// paper-scale supersteps (see engine.Dataset.DilationFor). Values
	// below 1 are treated as 1. IterStat.Seconds is reported per
	// paper-scale superstep (i.e. divided back by the dilation).
	TimeDilation float64

	// Shards is the number of vertex-range shards the compute/send and
	// merge phases run on: 0 means GOMAXPROCS, 1 forces sequential
	// execution. Shards are cut from the degree prefix sums
	// (edge-balanced, par.PlanPrefix) and executed by a persistent
	// worker pool whose goroutine count is capped at GOMAXPROCS. Any
	// value produces bit-identical outputs and modeled costs — sends
	// are recorded per (source shard, destination shard) bucket and
	// replayed in shard order, so every destination observes the exact
	// sequential message stream.
	Shards int

	// Pool, when non-nil, is an external persistent pool the shard
	// loops borrow instead of creating one per run (engine.Options.Pool
	// threaded through by the engines); its granularity supersedes
	// Shards.
	Pool *par.Pool

	// CheckpointEvery, when positive, snapshots the superstep state —
	// vertex-value plane, halted flags, pending inbox arena, aggregate
	// counters — every n supersteps and enables rollback-replay
	// recovery: a recoverable machine failure injected at a superstep
	// boundary (sim.Cluster.Boundary) rolls the run back to the last
	// checkpoint and replays, charging modeled checkpoint-write,
	// restart, and re-execution costs (Output.Recovery). Replayed
	// supersteps recompute the exact same state, so recovered outputs
	// are bit-identical to failure-free ones. Zero disables both
	// checkpointing and recovery, and a recoverable fault ends the run.
	CheckpointEvery int

	// Direction selects the traversal direction policy for programs
	// that provide a pull kernel (PullProgram): DirectionAuto (the
	// default) switches per superstep on frontier density,
	// DirectionPush forces the classic send-bucket message plane, and
	// DirectionPull forces pull sweeps from superstep 1 on. Superstep 0
	// always pushes. Outputs, per-superstep accounting, and modeled
	// costs are bit-identical under every policy at every shard count —
	// the direction changes only host wall-clock time.
	Direction engine.Direction

	// StopDeltaBelow stops after a superstep whose aggregated max
	// delta is below the threshold (PageRank tolerance criterion).
	StopDeltaBelow float64
	// FixedSupersteps stops after exactly this many supersteps past
	// superstep 0 (PageRank fixed-iteration criterion).
	FixedSupersteps int

	RecordIterStats bool

	// Governor, when enabled, bounds the run's host working set: the
	// run reserves its projected sizes against the shared budget and
	// degrades in tiers — shedding optional scratch under soft
	// pressure, switching to out-of-core spilled supersteps under hard
	// pressure (see ooc.go) — rather than growing without bound.
	// Outputs, IterStats, and modeled costs are bit-identical in every
	// mode; a budget below even the out-of-core floor fails the run
	// with an error unwrapping to govern.ErrBudget.
	Governor *govern.Governor

	// ShardPlan selects the cut strategy of the primary vertex-sweep
	// plan (weighted degree-work prefix vs uniform ranges). Outputs and
	// modeled costs are bit-identical under either plan; only host wall
	// time changes.
	ShardPlan engine.ShardPlan

	// MemoryTier, under a Governor, pre-picks the governed execution
	// tier: TierSpill goes straight to out-of-core streaming without
	// probing the in-core reservations first. Ignored without a
	// Governor; never changes results.
	MemoryTier engine.MemoryTier

	// probe, when non-nil, counts direction-machinery events; used only
	// by in-package tests to assert their scenarios are not vacuous.
	probe *directionProbe
}

// DefaultMaxSupersteps bounds runaway executions; real runs end earlier
// by quiescence, tolerance, fixed iteration count, or simulated timeout.
const DefaultMaxSupersteps = 1 << 20

// Output is the result of a BSP execution.
type Output struct {
	Values     []float64
	Supersteps int // supersteps past the initial one (= iterations)
	IterStats  []engine.IterStat
	Messages   float64 // total messages produced (synthetic scale)

	// Recovery is the fault-tolerance overhead: checkpoints written and
	// failures survived by rollback-replay (zero when CheckpointEvery
	// is 0 or no fault fired).
	Recovery engine.RecoveryCosts

	// Govern is the run's memory-governor ledger (zero when no
	// governor was configured): peak tracked bytes, spill volume, and
	// pressure reactions.
	Govern govern.RunStats
}

// Context is the per-vertex view handed to Program.Compute. It routes
// vertex-local state through the runtime (values, halted flags are
// owned by the vertex being computed) and everything cross-vertex —
// sends, update counts, the max-delta aggregator — through the compute
// shard, which merges into the runtime in shard order afterwards.
type Context struct {
	ss   *shardState
	rt   *runtime
	v    graph.VertexID
	srcM int32 // machine owning v, stamped once per vertex for sends
}

// Superstep returns the current superstep, starting at 0.
func (c *Context) Superstep() int { return c.rt.superstep }

// Vertex returns the vertex id.
func (c *Context) Vertex() graph.VertexID { return c.v }

// Value returns the vertex's current value.
func (c *Context) Value() float64 { return c.rt.values[c.v] }

// SetValue updates the vertex's value.
func (c *Context) SetValue(x float64) {
	if c.rt.values[c.v] != x {
		c.ss.updates++
	}
	c.rt.values[c.v] = x
}

// OutDegree returns the vertex's out-degree.
func (c *Context) OutDegree() int { return c.rt.cfg.Graph.OutDegree(c.v) }

// OutNeighbors returns the vertex's out-neighbors, sorted ascending.
// The slice aliases graph storage (or, out-of-core, the shard's
// streaming window, where it stays valid until the shard's next
// neighbor fetch) and must not be modified.
func (c *Context) OutNeighbors() []graph.VertexID {
	if c.ss.edgeOut != nil {
		return c.ss.edgeOut.neighbors(c.v)
	}
	return c.rt.cfg.Graph.OutNeighbors(c.v)
}

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int { return c.rt.cfg.Graph.NumVertices() }

// Send delivers a message to dst for the next superstep.
func (c *Context) Send(dst graph.VertexID, val float64) { c.ss.send(c.srcM, dst, val) }

// SendToOut sends val to every out-neighbor.
func (c *Context) SendToOut(val float64) {
	for _, w := range c.OutNeighbors() {
		c.ss.send(c.srcM, w, val)
	}
}

// SendToAllNeighbors sends val to out-neighbors and, when the run was
// configured with reverse-edge discovery, to in-neighbors as well.
func (c *Context) SendToAllNeighbors(val float64) {
	c.SendToOut(val)
	if c.rt.cfg.UseInNeighbors && c.rt.superstep >= 1 {
		if c.ss.edgeIn != nil {
			for _, w := range c.ss.edgeIn.neighbors(c.v) {
				c.ss.send(c.srcM, w, val)
			}
			return
		}
		for _, w := range c.rt.cfg.Graph.InNeighbors(c.v) {
			c.ss.send(c.srcM, w, val)
		}
	}
}

// VoteToHalt deactivates the vertex until a message arrives.
func (c *Context) VoteToHalt() { c.rt.halted[c.v] = true }

// AggregateMaxDelta feeds the superstep's max-delta aggregator, used by
// the PageRank tolerance stopping criterion.
func (c *Context) AggregateMaxDelta(d float64) {
	if d > c.ss.maxDelta {
		c.ss.maxDelta = d
	}
}

// bucket buffers the messages one compute shard sent to one destination
// shard, as parallel arrays rather than a slice of message structs: the
// counting pass streams only dst, the deposit pass streams all three,
// and the buffers are retained across supersteps (clear-by-truncate),
// so steady-state supersteps append into warm memory. The source vertex
// id is not stored — the combiner and cross-machine accounting only
// need the sender's machine, which the Context resolves once per
// computed vertex.
type bucket struct {
	dst  []graph.VertexID
	srcM []int32
	val  []float64
}

// shardState is the private state of one compute shard: the messages
// its vertices sent this superstep, bucketed by destination shard, and
// its slice of the superstep's accumulators. Buckets preserve program
// order, so concatenating them across source shards reproduces the
// sequential send stream per destination.
type shardState struct {
	shardOf  []int32  // vertex -> destination shard, shared read-only
	out      []bucket // indexed by destination shard
	ctx      Context  // reused per superstep: Compute takes *Context, which must not re-escape per call
	sent     int64
	active   int64
	updates  int
	maxDelta float64

	// Direction-optimization scratch, allocated only when the program
	// has a pull kernel and the direction policy allows pulling.
	senders   []graph.VertexID // vertices of this shard that sent this superstep, in order
	pullStamp []int32          // machine -> receiver tag, distinct-machine scratch
	pullSlot  []int32          // machine -> claimed slot (combined pull sums)
	pullAcc   []float64        // per-slot partial sums in first-claim order

	// Out-of-core state (nil on in-core runs, see ooc.go): streamed
	// edge blocks and the shard's bucket spill.
	edgeOut *edgeStream
	edgeIn  *edgeStream
	spill   *bucketSpill
}

// delivery is one destination shard's merge-pass accounting. receivers
// (distinct vertices delivered to) is tallied only by the pull-path
// counting closures; the push merge pass leaves it zero.
type delivery struct{ delivered, cross, receivers int64 }

type runtime struct {
	cfg     Config
	cluster *sim.Cluster
	pool    *par.Pool
	plan    par.Plan      // vertex-range shards, edge-balanced
	shards  []*shardState // one per plan shard
	shardOf []int32       // vertex -> shard, the send path's O(1) router

	values []float64
	halted []bool
	owner  []int32 // vertex -> machine

	// CSR-style superstep inboxes: vertex v's messages for the current
	// superstep are inVals[inStart[v] : inStart[v]+inLen[v]]. The next
	// superstep's inbox is laid out in the merge pass from per-shard
	// message counts and written into the twin arena; deliver() swaps
	// the two triples, so no per-vertex slice is ever allocated or
	// nil-ed. Arena indices are int32 (like graph offsets): a synthetic
	// superstep's raw message count stays far below 2^31.
	inVals    []float64
	inStart   []int32
	inLen     []int32
	nextVals  []float64
	nextStart []int32
	nextLen   []int32

	// Merge-phase scratch, reused across supersteps.
	shardBase []int32    // arena base offset per destination shard
	merged    []delivery // merge results, folded in shard order
	costs     []sim.StepCost

	// The two phase bodies, built once: passing fresh closures to
	// ForEach every superstep would heap-allocate them each time.
	computeFn func(i int)
	mergeFn   func(i int)

	superstep int
	updates   int
	maxDelta  float64

	// Per-superstep accounting. Totals are charged as cluster averages
	// times the profile's imbalance factor: at paper scale, hash
	// placement distributes load near-uniformly, and charging the tiny
	// synthetic per-machine counts directly would make the straggler a
	// granularity artifact rather than a property of the system.
	sentTotal      float64 // raw messages produced (CPU at senders)
	activeTotal    float64
	deliveredTotal float64 // post-combine messages delivered
	crossTotal     float64 // post-combine messages crossing machines

	// Sender-side combiner state per (machine, dst): the superstep the
	// slot was last written and the index of the slot in nextInbox[dst].
	stamp   [][]int32
	slotIdx [][]int32

	totalMsgs       float64
	lastStepSeconds float64

	// Direction-optimization state (see pull.go). frontier holds the
	// senders of the last completed superstep; fvals snapshots their
	// outgoing message values for the pull sweep; arenaFresh records
	// whether the inbox arena actually holds the pending superstep's
	// messages (false after a pull superstep, which bypasses it).
	spec         PullSpec
	trackSenders bool
	frontier     *graph.Frontier
	nextFront    *graph.Frontier
	fvals        []float64
	totalMass    int64 // total push mass: out-edges, plus in-edges under the all-neighbors shape
	arenaFresh   bool
	prevRaw      int     // raw messages sent by the previous superstep (checkpoint sizing)
	prD, prC     float64 // PullSum delivered/cross per superstep, cached from superstep 0
	snapFn       func(i int)
	pullFn       func(i int)
	countFn      func(i int)
	countSeq     func() delivery
	// countMask/countTouched are the sender-side counting scratch:
	// per-receiver machine bitmasks plus the list of receivers to reset.
	countMask    []uint64
	countTouched []graph.VertexID
	// recvPrev is the distinct-receiver count of the current frontier's
	// pending messages — the next monotone pull superstep's active
	// count. Set by the min-kind counting passes; consulted only while
	// arenaFresh is false (after a push the arena itself is counted).
	recvPrev int

	// Fault-tolerance state (Config.CheckpointEvery > 0): the latest
	// superstep checkpoint, accumulated recovery costs, and the replay
	// window re-executed after a rollback.
	ckpt      *checkpoint
	recovery  engine.RecoveryCosts
	replaying bool
	replayTo  int // last superstep index being replayed

	// Memory-governor state (Config.Governor enabled): the run's
	// budget lease and, under hard pressure, the out-of-core machinery.
	lease *govern.Lease
	oc    *oocState
}

// checkpoint is a superstep-entry snapshot: the vertex-value plane,
// halted flags, the pending inbox arena triple, and the aggregate
// counters — everything the remaining supersteps depend on. It is
// taken at the top of a superstep, before compute, so restoring it and
// re-running reproduces the exact sequential execution. The buffers
// are reused across snapshots (one live checkpoint at a time, like
// Giraph's rotating checkpoint directory).
type checkpoint struct {
	superstep int
	totalMsgs float64
	iterStats int // len(Output.IterStats) at snapshot time
	values    []float64
	halted    []bool
	inVals    []float64
	inStart   []int32
	inLen     []int32

	// Direction-optimization state: when the previous superstep pulled,
	// the pending messages exist only as the sender frontier, so the
	// checkpoint snapshots that instead of the (stale) arena.
	arenaFresh bool
	frontier   []graph.VertexID
	prevRaw    int
	recvPrev   int
}

// restartStartupFraction scales the profile's job-startup cost into
// the failure-detection + partition-rescheduling overhead a recovery
// pays before reloading the checkpoint.
const restartStartupFraction = 0.5

// Run executes the configured program on the cluster, charging costs as
// it goes. It returns the output and the first failure encountered
// (OOM while buffering messages, or TO), with the output reflecting
// progress up to the failure.
func Run(cluster *sim.Cluster, cfg Config) (*Output, error) {
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = DefaultMaxSupersteps
	}
	if cfg.Scale <= 0 {
		cfg.Scale = cfg.Graph.ScaleFactor()
	}
	if cfg.TimeDilation < 1 {
		cfg.TimeDilation = 1
	}
	n := cfg.Graph.NumVertices()
	pool, release := par.Use(cfg.Pool, cfg.Shards)
	defer release()
	rt := &runtime{
		cfg:       cfg,
		cluster:   cluster,
		pool:      pool,
		plan:      cfg.ShardPlan.Cut(cfg.Graph, pool.Workers()),
		values:    make([]float64, n),
		halted:    make([]bool, n),
		inStart:   make([]int32, n),
		inLen:     make([]int32, n),
		nextStart: make([]int32, n),
		nextLen:   make([]int32, n),
		owner:     make([]int32, n),
		costs:     make([]sim.StepCost, cfg.M),
	}
	rt.shardOf = rt.plan.FillShardOf(make([]int32, n))
	rt.shardBase = make([]int32, rt.plan.Count())
	rt.merged = make([]delivery, rt.plan.Count())
	for i := 0; i < rt.plan.Count(); i++ {
		ss := &shardState{shardOf: rt.shardOf, out: make([]bucket, rt.plan.Count())}
		ss.ctx = Context{ss: ss, rt: rt}
		rt.shards = append(rt.shards, ss)
	}

	rt.computeFn = func(i int) {
		ss := rt.shards[i]
		ss.sent, ss.active, ss.updates, ss.maxDelta = 0, 0, 0, 0
		ss.senders = ss.senders[:0]
		track := rt.trackSenders
		for d := range ss.out {
			b := &ss.out[d]
			b.dst, b.srcM, b.val = b.dst[:0], b.srcM[:0], b.val[:0]
		}
		s := rt.plan.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			msgs := rt.inVals[rt.inStart[v] : rt.inStart[v]+rt.inLen[v]]
			if rt.halted[v] && len(msgs) == 0 {
				continue
			}
			rt.halted[v] = false
			ss.active++
			ss.ctx.v = graph.VertexID(v)
			ss.ctx.srcM = rt.owner[v]
			before := ss.sent
			rt.cfg.Program.Compute(&ss.ctx, msgs)
			if track && ss.sent > before {
				ss.senders = append(ss.senders, graph.VertexID(v))
			}
		}
	}
	rt.mergeFn = func(i int) {
		// Count sub-pass: tally the raw messages bound for each of this
		// destination shard's vertices; nextLen doubles as the counter
		// array (each shard touches only its own vertex range).
		s := rt.plan.Shard(i)
		cnt := rt.nextLen
		for v := s.Lo; v < s.Hi; v++ {
			cnt[v] = 0
		}
		for _, ss := range rt.shards {
			for _, w := range ss.out[s.Index].dst {
				cnt[w]++
			}
		}
		// Layout sub-pass: finalize CSR offsets from the counts within
		// the shard's pre-assigned arena region, resetting nextLen to
		// act as the deposit write cursor.
		run := rt.shardBase[i]
		for v := s.Lo; v < s.Hi; v++ {
			rt.nextStart[v] = run
			run += rt.nextLen[v]
			rt.nextLen[v] = 0
		}
		// Deposit sub-pass: replay the buffers in source-shard order
		// into the arena and the combiner state.
		var d delivery
		tag := int32(rt.superstep)
		for _, ss := range rt.shards {
			b := &ss.out[s.Index]
			for k, dst := range b.dst {
				del, cross := rt.deposit(b.srcM[k], dst, b.val[k], tag)
				d.delivered += del
				d.cross += cross
			}
		}
		rt.merged[i] = d
	}
	out := &Output{}
	// The governor decides the execution mode before planes grow: it
	// may force push (shedding pull scratch) or swap in the out-of-core
	// phase bodies. It must run before setupDirection and the combiner
	// allocation below.
	if err := rt.setupGovernor(); err != nil {
		return out, err
	}
	defer rt.finishGovernor(out)
	for v := 0; v < n; v++ {
		rt.values[v] = cfg.Program.Init(graph.VertexID(v))
		rt.owner[v] = int32(cfg.MachineOf(graph.VertexID(v)))
	}
	rt.setupDirection()
	if cfg.Combine != nil {
		rt.stamp = make([][]int32, cfg.M)
		rt.slotIdx = make([][]int32, cfg.M)
		for m := 0; m < cfg.M; m++ {
			rt.stamp[m] = make([]int32, n)
			for i := range rt.stamp[m] {
				rt.stamp[m][i] = -1
			}
			rt.slotIdx[m] = make([]int32, n)
		}
	}

	rt.superstep = 0
	rt.arenaFresh = true
	for rt.superstep < cfg.MaxSupersteps {
		if cfg.CheckpointEvery > 0 && rt.superstep%cfg.CheckpointEvery == 0 &&
			(rt.ckpt == nil || rt.ckpt.superstep != rt.superstep) {
			if err := rt.takeCheckpoint(len(out.IterStats)); err != nil {
				rt.fill(out)
				return out, err
			}
		}
		pulled := rt.pullThisStep()
		var active int
		if pulled {
			active = rt.pullPhase()
		} else {
			if !rt.arenaFresh {
				rt.materializeInbox()
			}
			active = rt.computePhase()
		}
		if rt.oc != nil {
			if oerr := rt.oc.firstErr(); oerr != nil {
				rt.fill(out)
				return out, wrapBudget(oerr)
			}
		}
		err := rt.chargeSuperstep()
		if rt.replaying {
			// lastStepSeconds is per paper-scale superstep; the wall time
			// actually re-spent is the dilated charge.
			rt.recovery.ReplaySeconds += rt.lastStepSeconds * rt.cfg.TimeDilation
			if rt.superstep >= rt.replayTo {
				rt.replaying = false
			}
		}
		if cfg.RecordIterStats {
			out.IterStats = append(out.IterStats, engine.IterStat{
				Iteration: rt.superstep,
				Active:    active,
				Updates:   rt.updates,
				Seconds:   rt.lastStepSeconds,
			})
		}
		if err == nil {
			err = rt.cluster.Boundary(rt.superstep)
		}
		if err != nil {
			if rt.canRecover(err) {
				if rerr := rt.rollback(out); rerr != nil {
					rt.fill(out)
					return out, rerr
				}
				continue
			}
			rt.fill(out)
			return out, err
		}
		if rt.shouldStop(active) {
			break
		}
		rt.prevRaw = int(rt.sentTotal)
		if pulled {
			rt.arenaFresh = false
		} else {
			rt.finishPush()
			rt.deliver()
			rt.arenaFresh = true
		}
		rt.superstep++
	}
	rt.fill(out)
	return out, nil
}

func (rt *runtime) fill(out *Output) {
	out.Values = rt.values
	out.Supersteps = rt.superstep
	out.Messages = rt.totalMsgs
	out.Recovery = rt.recovery
}

// takeCheckpoint snapshots the superstep-entry state and charges the
// modeled checkpoint write: the state plane goes to disk with 3-way
// replication, two replicas crossing the network — the same cost shape
// as rdd.Context.Checkpoint. The superstep-0 checkpoint is free: the
// freshly loaded input is its own recovery point.
func (rt *runtime) takeCheckpoint(iterLen int) error {
	if rt.ckpt == nil {
		rt.ckpt = &checkpoint{}
	}
	ck := rt.ckpt
	ck.superstep = rt.superstep
	ck.totalMsgs = rt.totalMsgs
	ck.iterStats = iterLen
	ck.values = append(ck.values[:0], rt.values...)
	ck.halted = append(ck.halted[:0], rt.halted...)
	ck.arenaFresh = rt.arenaFresh
	ck.prevRaw = rt.prevRaw
	ck.recvPrev = rt.recvPrev
	if rt.arenaFresh {
		ck.inVals = append(ck.inVals[:0], rt.inVals...)
		ck.inStart = append(ck.inStart[:0], rt.inStart...)
		ck.inLen = append(ck.inLen[:0], rt.inLen...)
		if rt.oc != nil {
			// Spilled runs keep the inbox values in segment files;
			// checkpoint copies them next to the resident planes.
			if err := rt.oc.saveInbox(); err != nil {
				return err
			}
		}
	} else {
		// The previous superstep pulled: the pending messages exist only
		// as the sender frontier, which is far smaller than the arena it
		// stands for. The modeled write still charges the full message
		// plane (prevRaw) — a real system checkpoints the logical state,
		// not our representation trick.
		ck.inVals, ck.inStart, ck.inLen = ck.inVals[:0], ck.inStart[:0], ck.inLen[:0]
	}
	if rt.trackSenders {
		ck.frontier = append(ck.frontier[:0], rt.frontier.Members()...)
	}
	if rt.superstep == 0 {
		return nil
	}
	before := rt.cluster.Clock()
	per := rt.stateBytes(ck.prevRaw) / float64(rt.cfg.M)
	err := rt.cluster.UniformStep(sim.StepCost{
		DiskWriteBytes: per * 3,
		NetSendBytes:   per * 2,
		NetRecvBytes:   per * 2,
	})
	rt.recovery.CheckpointSeconds += rt.cluster.Clock() - before
	return err
}

// stateBytes is the paper-scale size of a checkpoint holding an
// inboxLen-message pending inbox: the vertex-value plane (8 B) plus
// halted flags (1 B) per vertex, message values (8 B), and the CSR
// offset plane (8 B per vertex).
func (rt *runtime) stateBytes(inboxLen int) float64 {
	n := float64(rt.cfg.Graph.NumVertices())
	return (n*9 + n*8 + float64(inboxLen)*8) * rt.cfg.Scale
}

// canRecover reports whether err is survivable here: recovery needs
// checkpointing on, a checkpoint in hand, and a recoverable failure.
func (rt *runtime) canRecover(err error) bool {
	return rt.cfg.CheckpointEvery > 0 && rt.ckpt != nil && sim.IsRecoverable(err)
}

// rollback restores the last checkpoint and arms replay: the failed
// machine's partitions are rescheduled (a fraction of job startup),
// every machine reads its checkpoint slice back from disk, and
// execution re-enters the checkpointed superstep. Combiner stamps
// reset to unclaimed — replayed supersteps reuse their original
// superstep tags, and a stale stamp would alias a dead arena slot.
// Recorded per-iteration stats roll back too, so replayed supersteps
// do not appear twice.
func (rt *runtime) rollback(out *Output) error {
	ck := rt.ckpt
	rt.recovery.Failures++
	before := rt.cluster.Clock()
	rerr := rt.cluster.Advance(rt.cfg.Profile.StartupSeconds(rt.cfg.M) * restartStartupFraction)
	if rerr == nil {
		rerr = rt.cluster.UniformStep(sim.StepCost{
			DiskReadBytes: rt.stateBytes(ck.prevRaw) / float64(rt.cfg.M),
		})
	}
	rt.recovery.RestartSeconds += rt.cluster.Clock() - before
	if rerr != nil {
		return rerr
	}
	copy(rt.values, ck.values)
	copy(rt.halted, ck.halted)
	if ck.arenaFresh {
		rt.inVals = append(rt.inVals[:0], ck.inVals...)
		copy(rt.inStart, ck.inStart)
		copy(rt.inLen, ck.inLen)
	}
	if rt.oc != nil {
		// Restore the checkpointed inbox segments and invalidate every
		// spill file written since; replay regenerates them.
		if rerr := rt.oc.restoreInbox(); rerr != nil {
			return rerr
		}
	}
	rt.arenaFresh = ck.arenaFresh
	rt.prevRaw = ck.prevRaw
	rt.recvPrev = ck.recvPrev
	if rt.trackSenders {
		rt.frontier.Clear()
		for _, u := range ck.frontier {
			rt.frontier.Add(u, rt.sendMass(u, ck.superstep-1))
		}
	}
	for m := range rt.stamp {
		st := rt.stamp[m]
		for i := range st {
			st[i] = -1
		}
	}
	if rt.cfg.RecordIterStats {
		out.IterStats = out.IterStats[:ck.iterStats]
	}
	rt.replayTo = rt.superstep
	rt.replaying = true
	rt.superstep = ck.superstep
	rt.totalMsgs = ck.totalMsgs
	return nil
}

// computePhase executes Compute for the active vertices and returns
// how many ran. It runs in two sharded dispatches — the only two
// barriers a superstep pays: compute/send, where each vertex-range
// shard runs its vertices in order and buffers sends by destination
// shard; and a fused merge, where each destination shard counts its
// vertices' incoming messages, lays its slice of the arena out in CSR
// form, and replays the buffers in source-shard order into it and the
// combiner state. The arena regions the merge shards write into are
// assigned between the two dispatches from the already-known bucket
// lengths — an O(shards²) scan on the coordinator, no per-vertex pass.
// Per-destination message order equals the sequential order, and every
// accumulator is either an integer-valued sum or a max, so outputs and
// modeled costs are bit-identical for any shard count.
func (rt *runtime) computePhase() int {
	rt.updates = 0
	rt.maxDelta = 0
	rt.sentTotal = 0
	rt.activeTotal = 0
	rt.deliveredTotal = 0
	rt.crossTotal = 0

	// Compute/send pass: vertex-range shards, program order per shard.
	rt.pool.ForEach(rt.plan.Count(), rt.computeFn)

	// Arena layout: each destination shard's region of the value arena
	// is the sum of the bucket lengths bound for it — including, out of
	// core, the messages already spilled to chunk files; the arena grows
	// (retaining capacity) to this superstep's raw send count. Spilled
	// runs skip the arena: each merge shard fills a region buffer and
	// seals it to a segment file instead.
	total := 0
	for d := range rt.shardBase {
		rt.shardBase[d] = int32(total)
		for _, ss := range rt.shards {
			total += len(ss.out[d].dst)
			if ss.spill != nil {
				total += ss.spill.counts[d]
			}
		}
	}
	if rt.oc == nil {
		rt.nextVals = par.Grow(rt.nextVals, total)
	}

	// Fused count+layout+deposit pass: destination shards, source-shard
	// order within each — combined messages fold into already-claimed
	// slots.
	rt.pool.ForEach(rt.plan.Count(), rt.mergeFn)

	active := 0
	for _, ss := range rt.shards {
		active += int(ss.active)
		rt.sentTotal += float64(ss.sent)
		rt.totalMsgs += float64(ss.sent)
		rt.updates += ss.updates
		if ss.maxDelta > rt.maxDelta {
			rt.maxDelta = ss.maxDelta
		}
	}
	for _, d := range rt.merged {
		rt.deliveredTotal += float64(d.delivered)
		rt.crossTotal += float64(d.cross)
	}
	rt.activeTotal = float64(active)
	return active
}

// send buffers one message in the sending shard, bucketed by the
// destination's shard — one array load on the precomputed router, not a
// division or binary search per message.
func (ss *shardState) send(srcM int32, dst graph.VertexID, val float64) {
	ss.sent++
	b := &ss.out[ss.shardOf[dst]]
	b.dst = append(b.dst, dst)
	b.srcM = append(b.srcM, srcM)
	b.val = append(b.val, val)
	if ss.spill != nil {
		ss.spill.noteSend(ss)
	}
}

// deposit applies one buffered message to the destination's arena
// slots, running the sender-side combiner exactly as the sequential
// runtime would; slotIdx records the combiner's slot as a global arena
// index. Only the goroutine owning dst's shard calls deposit for it, so
// the per-destination state needs no locking. The tag is the superstep
// the message was sent in — the merge pass passes the current one, the
// pull-to-push inbox materialization the previous one.
func (rt *runtime) deposit(srcM int32, dst graph.VertexID, val float64, tag int32) (delivered, cross int64) {
	if rt.cfg.Combine != nil && int(tag) >= rt.cfg.CombineFrom {
		if rt.stamp[srcM][dst] == tag {
			i := rt.slotIdx[srcM][dst]
			rt.nextVals[i] = rt.cfg.Combine(rt.nextVals[i], val)
			return 0, 0 // merged: no new wire message
		}
		rt.stamp[srcM][dst] = tag
		rt.slotIdx[srcM][dst] = rt.nextStart[dst] + rt.nextLen[dst]
	}
	rt.nextVals[rt.nextStart[dst]+rt.nextLen[dst]] = val
	rt.nextLen[dst]++
	delivered = 1
	if srcM != rt.owner[dst] {
		cross = 1
	}
	return delivered, cross
}

// chargeSuperstep charges this superstep's modeled costs: per-machine
// CPU for scans and message handling (inflated under memory pressure),
// network for cross-machine traffic, memory for receive buffers, plus
// the system's fixed coordination cost. Per-machine shares are the
// cluster average times the profile's imbalance factor.
func (rt *runtime) chargeSuperstep() error {
	p := rt.cfg.Profile
	cores := rt.cluster.Config().Cores
	capacity := rt.cluster.Config().MemoryBytes
	mf := float64(rt.cfg.M)
	imb := p.Imbalance
	if imb < 1 {
		imb = 1
	}

	// Receive buffers live for the duration of the superstep.
	bufPer := int64(rt.deliveredTotal / mf * imb * p.MsgMemBytes * rt.cfg.Scale)
	var bufErr error
	for m := 0; m < rt.cfg.M; m++ {
		if err := rt.cluster.Alloc(m, bufPer); err != nil && bufErr == nil {
			bufErr = err
		}
	}

	scanned := rt.activeTotal
	if rt.cfg.ScanAll {
		scanned = float64(rt.cfg.Graph.NumVertices())
	}
	// Dilation stretches only the per-iteration fixed work (vertex
	// scans, coordination): one synthetic superstep stands for dil
	// paper supersteps of overhead. Message volume is not dilated —
	// across a whole traversal it is O(|E|·updates), independent of
	// the diameter, so the synthetic totals already reflect paper
	// scale. This is Table 6's model: high-diameter runs are dominated
	// by the per-iteration floor, not by message traffic.
	dil := rt.cfg.TimeDilation
	costs := rt.costs // reused across supersteps; every field written below
	for m := 0; m < rt.cfg.M; m++ {
		compute := p.ScanSeconds(scanned/mf*imb*rt.cfg.Scale, cores)*dil +
			p.MsgSeconds((rt.sentTotal+rt.deliveredTotal)/mf*imb*rt.cfg.Scale, cores)
		compute *= p.PressureFactor(rt.cluster.Machine(m).MemUsed(), capacity)
		netBytes := rt.crossTotal / mf * imb * p.MsgBytes * rt.cfg.Scale
		costs[m] = sim.StepCost{
			ComputeSeconds: compute,
			NetSendBytes:   netBytes,
			NetRecvBytes:   netBytes,
		}
	}
	before := rt.cluster.Clock()
	err := rt.cluster.RunStep(costs)
	if err == nil && p.SuperstepFixed > 0 {
		err = rt.cluster.Advance(p.SuperstepFixed * dil)
	}
	rt.lastStepSeconds = (rt.cluster.Clock() - before) / dil
	rt.cluster.FreeAll(bufPer)
	if bufErr != nil {
		return bufErr
	}
	return err
}

// deliver publishes the merged arena as the next superstep's inbox by
// swapping the two arena triples — O(1), no per-vertex slice headers to
// nil. The swapped-out arena keeps its capacity and is rebuilt wholesale
// by the next merge (the count pass zeroes every length, the deposit
// pass rewrites every offset), so stale contents are never observed.
func (rt *runtime) deliver() {
	rt.inVals, rt.nextVals = rt.nextVals, rt.inVals
	rt.inStart, rt.nextStart = rt.nextStart, rt.inStart
	rt.inLen, rt.nextLen = rt.nextLen, rt.inLen
	if rt.oc != nil {
		rt.oc.flip()
	}
}

func (rt *runtime) shouldStop(active int) bool {
	if active == 0 && rt.deliveredTotal == 0 {
		return true // global quiescence
	}
	if rt.superstep == 0 {
		return false
	}
	if rt.cfg.FixedSupersteps > 0 && rt.superstep >= rt.cfg.FixedSupersteps {
		return true
	}
	if rt.cfg.StopDeltaBelow > 0 && rt.maxDelta < rt.cfg.StopDeltaBelow {
		return true
	}
	return false
}
