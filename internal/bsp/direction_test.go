package bsp

import (
	"testing"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
)

// lollipop builds the adversarial graph for direction switching: a
// dense bidirectional clique (supersteps go pull almost immediately)
// with a long path hanging off it (the frontier collapses to a single
// walking vertex, forcing the heuristic back to push mid-run while
// messages are still pending). It exercises both switch directions and
// the pull-to-push inbox materialization with a non-empty frontier.
func lollipop(clique, path int) *graph.Graph {
	n := clique + path
	b := graph.NewBuilder(n)
	for i := 0; i < clique; i++ {
		for j := 0; j < clique; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	for i := 0; i < path; i++ {
		src := graph.VertexID(clique - 1)
		if i > 0 {
			src = graph.VertexID(clique + i - 1)
		}
		b.AddEdge(src, graph.VertexID(clique+i))
	}
	return b.Build()
}

// directionConfigs is the workload matrix of TestDirectionSwitching:
// each entry runs under push, pull, and auto at shards 1 and 8.
func directionConfigs(g *graph.Graph) map[string]Config {
	return map[string]Config{
		"wcc": {
			Program:         WCCProgram{},
			Combine:         MinCombine,
			CombineFrom:     1,
			UseInNeighbors:  true,
			RecordIterStats: true,
		},
		"wcc-uncombined": {
			Program:         WCCProgram{},
			UseInNeighbors:  true,
			RecordIterStats: true,
		},
		"sssp": {
			Program:         &SSSPProgram{Source: 0},
			Combine:         MinCombine,
			RecordIterStats: true,
		},
		"pagerank": {
			Program:         &PageRankProgram{Damping: 0.15},
			Combine:         SumCombine,
			ScanAll:         true,
			FixedSupersteps: 8,
			RecordIterStats: true,
		},
	}
}

// TestDirectionSwitching runs the pull-kernel workloads on a lollipop
// graph whose frontier goes dense (pull) and then collapses to a
// walking singleton (back to push, with pending messages that must be
// materialized into the inbox arena). Every direction policy and shard
// count must match the push-only sequential baseline bit for bit:
// values, superstep count, message totals, and the full per-superstep
// stats trace.
func TestDirectionSwitching(t *testing.T) {
	g := lollipop(40, 60)
	for name, base := range directionConfigs(g) {
		t.Run(name, func(t *testing.T) {
			push := base
			push.Direction = engine.DirectionPush
			push.Shards = 1
			want := runOn(t, g, 4, push)

			for dirName, dir := range map[string]engine.Direction{
				"auto": engine.DirectionAuto,
				"pull": engine.DirectionPull,
				"push": engine.DirectionPush,
			} {
				for _, shards := range []int{1, 8} {
					if dir == engine.DirectionPush && shards == 1 {
						continue
					}
					cfg := base
					cfg.Direction = dir
					cfg.Shards = shards
					got := runOn(t, g, 4, cfg)
					label := name + "/" + dirName
					if got.Supersteps != want.Supersteps {
						t.Fatalf("%s shards=%d: supersteps %d, want %d", label, shards, got.Supersteps, want.Supersteps)
					}
					if got.Messages != want.Messages {
						t.Fatalf("%s shards=%d: messages %v, want %v", label, shards, got.Messages, want.Messages)
					}
					for v := range want.Values {
						if got.Values[v] != want.Values[v] {
							t.Fatalf("%s shards=%d: value[%d] = %v, want %v", label, shards, v, got.Values[v], want.Values[v])
						}
					}
					if len(got.IterStats) != len(want.IterStats) {
						t.Fatalf("%s shards=%d: %d iter stats, want %d", label, shards, len(got.IterStats), len(want.IterStats))
					}
					for i := range want.IterStats {
						if got.IterStats[i] != want.IterStats[i] {
							t.Fatalf("%s shards=%d: IterStats[%d] = %+v, want %+v",
								label, shards, i, got.IterStats[i], want.IterStats[i])
						}
					}
				}
			}
		})
	}
}

// TestDirectionSwitchingMaterializes guards against the switching test
// going vacuous: on the lollipop graph the auto policy must actually
// pull at least one superstep AND flip back to push with messages still
// pending (the path walk), so the inbox materialization path is known
// to be exercised.
func TestDirectionSwitchingMaterializes(t *testing.T) {
	g := lollipop(40, 60)
	cfg := Config{
		Program:        WCCProgram{},
		Combine:        MinCombine,
		CombineFrom:    1,
		UseInNeighbors: true,
		Shards:         1,
	}
	probe := &directionProbe{}
	cfg.probe = probe
	runOn(t, g, 4, cfg)
	if probe.pulled == 0 {
		t.Fatal("auto never pulled on the lollipop graph; switching test is vacuous")
	}
	if probe.materialized == 0 {
		t.Fatal("auto never materialized a non-empty inbox; the pull-to-push flip is untested")
	}
}
