// Package gas implements GraphLab/PowerGraph (§2.1.2, §2.2): the
// Gather-Apply-Scatter engine over vertex-cut (edge-disjoint)
// partitioning with vertex mirrors, in both synchronous and
// asynchronous modes.
//
// Mechanics reproduced from the paper:
//   - vertex-cut partitioning with Random and Auto (Grid/PDS/Oblivious)
//     strategies and their replication factors (Table 4, §4.4.1);
//   - two cores per machine reserved for communication by default,
//     with the all-cores trade-off of Figure 1;
//   - tolerance vs fixed-iteration stopping, and approximate PageRank
//     where converged vertices drop out (§5.2, Figure 4);
//   - no self-edge support: self-edges are dropped at load, so PageRank
//     values on graphs containing them are slightly off (§3.1.1);
//   - WCC needs no reverse-edge pass (edges are visible from both ends)
//     at the price of a larger memory footprint (§3.2);
//   - the asynchronous engine's distributed-lock memory accumulation
//     that grows with cluster size and OOMs PageRank on WRN at 128
//     machines (§5.3, Figure 10).
package gas

import (
	"fmt"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/hdfs"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// Profile is GraphLab's cost profile: C++ speeds, MPI startup, two of
// four cores reserved for communication.
var Profile = sim.Profile{
	Name: "graphlab", Lang: "C++",
	EdgeOpsPerSec:   120e6,
	VertexScanNs:    150,
	MsgCPUNs:        150,
	MsgBytes:        12,
	VertexBytes:     300, // per replica: value + gather state + mirror bookkeeping
	EdgeBytes:       80,  // edges visible from both ends (§3.2)
	MsgMemBytes:     16,
	PerMachineBase:  2 * sim.GB,
	Imbalance:       1.15,
	SuperstepFixed:  0.2,
	JobStartup:      2,
	JobStartupPerM:  0.05,
	PressurePenalty: 3,
	ComputeCores:    2, // default: 2 compute + 2 communication (Figure 1)
}

// asyncLockBytesPerUpdate is the modeled distributed-locking footprint
// accumulated per vertex update per machine in asynchronous mode,
// proportional to cluster size: more machines mean more outstanding
// remote locks per update (§5.3's "unexpected" WRN OOM at 128).
const asyncLockBytesPerUpdate = 0.06

// asyncSlowdown is the lock-contention multiplier on asynchronous
// compute time (§5.3: async PageRank is typically slower than sync).
const asyncSlowdown = 1.8

// GraphLab is the engine.
type GraphLab struct {
	Profile sim.Profile
}

// New returns a GraphLab engine with the default profile.
func New() *GraphLab { return &GraphLab{Profile: Profile} }

// Name implements engine.Engine.
func (g *GraphLab) Name() string { return "graphlab" }

// Variant returns the paper's run label, e.g. "GL-S-R-T" for
// synchronous, random partitioning, tolerance stopping.
func Variant(opt engine.Options, w engine.Workload) string {
	mode, part, stop := "S", "R", "T"
	if opt.Async {
		mode = "A"
	}
	if opt.Partitioning == "auto" {
		part = "A"
	}
	if w.MaxIterations > 0 {
		stop = "I"
	}
	return fmt.Sprintf("GL-%s-%s-%s", mode, part, stop)
}

// Run implements engine.Engine.
func (g *GraphLab) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: g.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	prof := g.Profile
	if opt.UseAllCores && !opt.Async {
		// Figure 1: synchronous mode benefits from computing on all
		// four cores; asynchronous mode cannot, because its vertices
		// compute and communicate at the same time (handled as extra
		// contention in runAsync).
		prof.ComputeCores = 0
	}
	m := c.Size()

	// MPI startup: no Hadoop/Spark infrastructure (§5.7).
	mark := c.Clock()
	if err := c.Advance(prof.StartupSeconds(m)); err != nil {
		res.Overhead = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Overhead = c.Clock() - mark

	// Load: parallel chunked HDFS read (C++ client: one thread per
	// chunk, §4.3), self-edge drop, vertex-cut partitioning, mirrors.
	mark = c.Clock()
	gr, err := d.LoadGraph(graph.FormatAdj)
	if err != nil {
		return res.Finish(c, err)
	}
	gr = gr.WithoutSelfEdges() // §3.1.1: GraphLab cannot represent self-edges

	kind := partitionKind(opt, m)
	vc := partition.BuildVertexCut(gr, m, kind, 7)
	res.ReplicationFactor = vc.ReplicationFactor()

	loaded, err := g.chargeLoad(c, &prof, d, gr, vc, kind)
	if err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	// Execute.
	mark = c.Clock()
	ex := &execution{
		cluster: c, prof: &prof, d: d, g: gr, vc: vc, w: w, opt: opt,
		res: res,
	}
	var execErr error
	if opt.Async {
		execErr = ex.runAsync()
	} else {
		execErr = ex.runSync()
	}
	res.Exec = c.Clock() - mark
	if execErr != nil {
		return res.Finish(c, execErr)
	}

	// Save.
	mark = c.Clock()
	resultBytes := int64(float64(gr.NumVertices()) * d.Scale * 16)
	if err := c.Advance(hdfs.WriteSeconds(resultBytes, m, c.Config().DiskBW, c.Config().NetBW)); err != nil {
		res.Save = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Save = c.Clock() - mark
	c.FreeAll(loaded)
	return res.Finish(c, nil)
}

func partitionKind(opt engine.Options, m int) partition.VertexCutKind {
	if opt.Partitioning == "auto" {
		return partition.AutoKind(m)
	}
	return partition.VCRandom
}

// chargeLoad charges HDFS read, partitioning CPU (Oblivious is far more
// expensive than the constrained hashes — the load-time cliff of §5.4),
// and the replica-weighted resident memory.
func (g *GraphLab) chargeLoad(c *sim.Cluster, prof *sim.Profile, d *engine.Dataset,
	gr *graph.Graph, vc *partition.VertexCut, kind partition.VertexCutKind) (int64, error) {

	m := c.Size()
	file, err := d.Open(graph.FormatAdj)
	if err != nil {
		return 0, err
	}
	readSec := hdfs.ParallelReadSeconds(file.PaperBytes, m, file.Chunks, c.Config().DiskBW)

	// Partitioning CPU per edge, by strategy.
	perEdgeNs := 15.0
	switch kind {
	case partition.VCGrid, partition.VCPDS:
		perEdgeNs = 30
	case partition.VCOblivious:
		perEdgeNs = 220 // greedy placement scans replica sets
	}
	edges := float64(gr.NumEdges()) * d.Scale
	partSec := edges * perEdgeNs * 1e-9 / float64(m*c.Config().Cores)

	// Mirror setup traffic: each replica beyond the master is announced.
	replicas := float64(vc.TotalReplicas()) * d.Scale
	netBytes := (replicas * 24) / float64(m)

	costs := make([]sim.StepCost, m)
	for i := range costs {
		costs[i] = sim.StepCost{
			ComputeSeconds: readSec/float64(m)*0 + partSec, // read charged as disk below
			DiskReadBytes:  float64(file.PaperBytes) / float64(m),
			NetSendBytes:   netBytes,
			NetRecvBytes:   netBytes,
		}
	}
	if err := c.RunStep(costs); err != nil {
		return 0, err
	}
	// The single-reader penalty when the file is one chunk (§4.3).
	if file.Chunks < m {
		if err := c.Advance(readSec - float64(file.PaperBytes)/float64(m)/c.Config().DiskBW); err != nil {
			return 0, err
		}
	}

	memBytes := replicas*prof.VertexBytes + float64(gr.NumEdges())*d.Scale*prof.EdgeBytes
	perMachine := int64(memBytes/float64(m)*prof.Imbalance) + prof.PerMachineBase
	for i := 0; i < m; i++ {
		if err := c.Alloc(i, perMachine); err != nil {
			return perMachine, err
		}
	}
	return perMachine, nil
}
