package gas

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

func TestAllWorkloadsCorrectSync(t *testing.T) {
	// WRN has no self-edges, so GraphLab computes exact results on it.
	// 32 machines: WRN does not fit on 16 (§5.2, tested below).
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 32, 1e-9, engine.Options{})
}

func TestAutoPartitioningCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 32, 1e-9, engine.Options{Partitioning: "auto"})
}

func TestSelfEdgesDropped(t *testing.T) {
	// §3.1.1: GraphLab cannot represent self-edges, so its PageRank on
	// Twitter (which has them) deviates from the true ranks but matches
	// the oracle computed on the self-edge-free graph.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	if f.Graph.SelfEdges() == 0 {
		t.Fatal("twitter fixture must contain self-edges for this test")
	}
	w := engine.NewPageRank()
	res := enginetest.RunOK(t, New(), f, 16, w, engine.Options{})

	clean := &enginetest.Fixture{Graph: f.Graph.WithoutSelfEdges(), Dataset: f.Dataset}
	enginetest.VerifyPageRank(t, clean, res, w, 1e-9)

	// And it must NOT match the true (self-edged) graph exactly.
	want, _, _ := singlethread.PageRank(f.Graph, w.Damping, w.Tolerance, 0)
	deviates := false
	for v := range want {
		if d := res.Ranks[v] - want[v]; d > 1e-6 || d < -1e-6 {
			deviates = true
			break
		}
	}
	if !deviates {
		t.Error("ranks identical despite dropped self-edges")
	}
}

func TestAsyncPageRankConverges(t *testing.T) {
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	w := engine.NewPageRank()
	res := enginetest.RunOK(t, New(), f, 32, w, engine.Options{Async: true})
	// Async converges to the same fixpoint but along a different path:
	// compare loosely.
	enginetest.VerifyPageRank(t, f, res, w, 0.05)
}

func TestAsyncSlowerThanSync(t *testing.T) {
	// §5.3: asynchronous PageRank is typically slower than synchronous.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	sync := enginetest.RunOK(t, New(), f, 32, engine.NewPageRankIters(10), engine.Options{})
	async := enginetest.RunOK(t, New(), f, 32, engine.NewPageRankIters(10), engine.Options{Async: true})
	if async.Exec <= sync.Exec {
		t.Fatalf("async exec %v not above sync %v", async.Exec, sync.Exec)
	}
}

func TestFigure1CoresTradeoff(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	w := engine.NewPageRankIters(30) // Figure 1 uses 30 iterations
	def := enginetest.RunOK(t, New(), f, 16, w, engine.Options{})
	all := enginetest.RunOK(t, New(), f, 16, w, engine.Options{UseAllCores: true})
	if all.Exec >= def.Exec {
		t.Fatalf("sync with all cores (%v) not faster than default (%v)", all.Exec, def.Exec)
	}
	gain := (def.Exec - all.Exec) / def.Exec
	if gain < 0.2 || gain > 0.6 {
		t.Errorf("all-cores gain = %.0f%%, paper reports ~40%%", gain*100)
	}

	defA := enginetest.RunOK(t, New(), f, 16, w, engine.Options{Async: true})
	allA := enginetest.RunOK(t, New(), f, 16, w, engine.Options{Async: true, UseAllCores: true})
	if allA.Exec < defA.Exec {
		t.Errorf("async with all cores (%v) should not beat default (%v)", allA.Exec, defA.Exec)
	}
}

func TestWRNLoadOOMAt16(t *testing.T) {
	// §5.2: GraphLab fails to load WRN on 16 machines regardless of
	// partitioning algorithm.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	for _, part := range []string{"random", "auto"} {
		res := New().Run(sim.NewSize(16), f.Dataset, engine.NewPageRank(), engine.Options{Partitioning: part})
		if res.Status != sim.OOM {
			t.Errorf("WRN PageRank at 16 machines (%s): status %v, want OOM", part, res.Status)
		}
	}
	// At 32 machines it loads and runs.
	res := New().Run(sim.NewSize(32), f.Dataset, engine.NewPageRank(), engine.Options{})
	if res.Status != sim.OK {
		t.Errorf("WRN PageRank at 32 machines: status %v, want OK (%v)", res.Status, res.Err)
	}
}

func TestAsyncWRNOOMAt128(t *testing.T) {
	// §5.3 / Figure 10: async PageRank on WRN OOMs at 128 machines from
	// accumulated distributed-lock memory, while sync completes.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	async := New().Run(sim.NewSize(128), f.Dataset, engine.NewPageRank(), engine.Options{Async: true, SampleMemory: true})
	if async.Status != sim.OOM {
		t.Fatalf("async WRN PageRank at 128: status %v, want OOM", async.Status)
	}
	sync := New().Run(sim.NewSize(128), f.Dataset, engine.NewPageRank(), engine.Options{SampleMemory: true})
	if sync.Status != sim.OK {
		t.Fatalf("sync WRN PageRank at 128: status %v, want OK (%v)", sync.Status, sync.Err)
	}
	// Figure 10's shape: async per-machine memory climbs monotonically;
	// sync stays flat after load.
	if len(async.MemTimeline) < 2 {
		t.Fatal("no async memory timeline")
	}
	first := async.MemTimeline[0].PerMach[0]
	last := async.MemTimeline[len(async.MemTimeline)-1].PerMach[0]
	if last <= first {
		t.Errorf("async memory did not grow: %d -> %d", first, last)
	}
}

func TestApproximatePageRankCheaper(t *testing.T) {
	// §5.2 / Figure 4: approximate PageRank lets converged vertices
	// drop out, so later iterations update far fewer vertices.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	w := engine.NewPageRank()
	exact := enginetest.RunOK(t, New(), f, 16, w, engine.Options{})
	approx := enginetest.RunOK(t, New(), f, 16, w, engine.Options{Approximate: true})
	if approx.Exec >= exact.Exec {
		t.Errorf("approximate exec %v not below exact %v", approx.Exec, exact.Exec)
	}
	// Updated-vertices ratio decays across iterations (Figure 4).
	if len(approx.PerIteration) < 3 {
		t.Fatal("no per-iteration stats")
	}
	early := approx.PerIteration[1].Active
	late := approx.PerIteration[len(approx.PerIteration)-1].Active
	if late >= early {
		t.Errorf("active set did not shrink: %d -> %d", early, late)
	}
	// Approximate ranks track exact ones only loosely: §3.1 notes that
	// letting converged vertices opt out "results in approximate
	// answers" — the drift is real, not a bug.
	enginetest.VerifyPageRankRelative(t, f, approx, w, 0.3)
}

func TestReplicationFactorReported(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	random := enginetest.RunOK(t, New(), f, 16, engine.NewKHop(f.Dataset.Source), engine.Options{})
	auto := enginetest.RunOK(t, New(), f, 16, engine.NewKHop(f.Dataset.Source), engine.Options{Partitioning: "auto"})
	if random.ReplicationFactor <= 1 || auto.ReplicationFactor <= 1 {
		t.Fatalf("replication factors missing: random=%v auto=%v", random.ReplicationFactor, auto.ReplicationFactor)
	}
	// Table 4: auto reduces replication versus random.
	if auto.ReplicationFactor >= random.ReplicationFactor {
		t.Errorf("auto replication %v not below random %v", auto.ReplicationFactor, random.ReplicationFactor)
	}
}

func TestAutoLoadTimeCliff(t *testing.T) {
	// §5.4: auto partitioning load time jumps when the machine count
	// admits no grid (32: oblivious) versus when it does (64: grid).
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	at64 := enginetest.RunOK(t, New(), f, 64, engine.NewKHop(f.Dataset.Source), engine.Options{Partitioning: "auto"})
	at32 := New().Run(sim.NewSize(32), f.Dataset, engine.NewKHop(f.Dataset.Source), engine.Options{Partitioning: "auto"})
	if at32.Status != sim.OK {
		t.Fatalf("UK khop at 32: %v", at32.Status)
	}
	// Per-machine load work at 32 should exceed 64's even though the
	// cluster is half the size — oblivious placement is the cliff.
	if at32.Load <= at64.Load {
		t.Errorf("oblivious load at 32 (%v) not above grid load at 64 (%v)", at32.Load, at64.Load)
	}
}

func TestVariantLabels(t *testing.T) {
	cases := []struct {
		opt  engine.Options
		w    engine.Workload
		want string
	}{
		{engine.Options{}, engine.NewPageRank(), "GL-S-R-T"},
		{engine.Options{Async: true, Partitioning: "auto"}, engine.NewPageRankIters(5), "GL-A-A-I"},
		{engine.Options{Partitioning: "auto"}, engine.NewPageRank(), "GL-S-A-T"},
	}
	for _, c := range cases {
		if got := Variant(c.opt, c.w); got != c.want {
			t.Errorf("Variant = %q, want %q", got, c.want)
		}
	}
}
