package gas

import (
	"math"
	"math/rand"
	"slices"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/par"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// execution holds one run's state: the GAS engine proper. Gather reads
// neighbor values through mirrors (charged as mirror-sync messages),
// Apply updates the master copy, Scatter signals neighbors.
type execution struct {
	cluster *sim.Cluster
	prof    *sim.Profile
	d       *engine.Dataset
	g       *graph.Graph
	vc      replicaCounter
	w       engine.Workload
	opt     engine.Options
	res     *engine.Result
	pool    *par.Pool
	release func()   // closes the pool when owned; no-op when borrowed
	plan    par.Plan // edge-balanced vertex shards over g

	values    []float64
	active    []bool
	replicasM []int16        // cached replicas-1 per vertex
	costs     []sim.StepCost // per-iteration charge buffer, reused
}

// replicaCounter is the part of partition.VertexCut the execution needs.
type replicaCounter interface {
	NumReplicas(v graph.VertexID) int
	ReplicationFactor() float64
}

func (ex *execution) init() {
	ex.pool, ex.release = par.Use(ex.opt.Pool, ex.opt.Shards)
	ex.plan = ex.opt.ShardPlan.Cut(ex.g, ex.pool.Workers())
	n := ex.g.NumVertices()
	ex.values = make([]float64, n)
	ex.active = make([]bool, n)
	ex.replicasM = make([]int16, n)
	ex.costs = make([]sim.StepCost, ex.cluster.Size())
	for v := 0; v < n; v++ {
		r := ex.vc.NumReplicas(graph.VertexID(v)) - 1
		if r < 0 {
			r = 0
		}
		ex.replicasM[v] = int16(r)
		switch ex.w.Kind {
		case engine.PageRank:
			ex.values[v] = 1
		case engine.WCC, engine.LPA:
			ex.values[v] = float64(v)
		case engine.Triangle:
			ex.values[v] = 0
		default:
			ex.values[v] = math.Inf(1)
		}
	}
}

func (ex *execution) dilation() float64 {
	return ex.d.DilationFor(ex.w.Kind)
}

// chargeIteration charges one engine iteration: edge operations for
// gather+scatter, mirror-synchronization messages, the per-iteration
// scheduler cost (dilated for traversal workloads), and memory pressure.
func (ex *execution) chargeIteration(activeCount, gatherEdges, scatterEdges, mirrorMsgs float64, slowdown float64) error {
	p := ex.prof
	c := ex.cluster
	m := float64(c.Size())
	imb := p.Imbalance
	cores := c.Config().Cores
	dil := ex.dilation()

	edgeSec := p.EdgeSeconds((gatherEdges+scatterEdges)/m*imb*ex.d.Scale, cores)
	msgSec := p.MsgSeconds(mirrorMsgs/m*imb*ex.d.Scale, cores)
	scanSec := p.ScanSeconds(activeCount/m*imb*ex.d.Scale, cores)
	netBytes := mirrorMsgs / m * imb * p.MsgBytes * ex.d.Scale

	costs := ex.costs // reused across iterations; every field written below
	for i := range costs {
		compute := (scanSec*dil + edgeSec + msgSec) * slowdown
		compute *= p.PressureFactor(c.Machine(i).MemUsed(), c.Config().MemoryBytes)
		costs[i] = sim.StepCost{
			ComputeSeconds: compute,
			NetSendBytes:   netBytes,
			NetRecvBytes:   netBytes,
		}
	}
	if err := c.RunStep(costs); err != nil {
		return err
	}
	return c.Advance(p.SuperstepFixed * dil)
}

// runSync executes the synchronous GAS engine. It owns the pool's
// lifecycle: the persistent workers live for exactly one engine run.
func (ex *execution) runSync() error {
	ex.init()
	defer ex.release()
	switch ex.w.Kind {
	case engine.PageRank:
		return ex.syncPageRank()
	case engine.Triangle:
		return ex.syncTriangles()
	case engine.LPA:
		return ex.syncLPA()
	default:
		return ex.syncPropagate()
	}
}

// syncPageRank runs synchronous PageRank. In exact mode every vertex
// recomputes every iteration; in approximate mode (§5.2) vertices whose
// change fell below tolerance deactivate, and reactivate only when an
// in-neighbor's rank changes — they still gather from inactive
// neighbors, which is the memory-for-accuracy trade GraphLab makes.
func (ex *execution) syncPageRank() error {
	n := ex.g.NumVertices()
	contrib := make([]float64, n)
	next := make([]float64, n)
	changed := make([]bool, n) // reused: cleared at the top of each sweep
	approx := ex.opt.Approximate
	for v := range ex.active {
		ex.active[v] = true
	}
	tol := ex.w.Tolerance
	if tol <= 0 {
		tol = 0.01
	}

	// Per-shard accumulators of one gather/apply/scatter sweep. All
	// counters are integer-valued, so folding them in shard order (or
	// any order) reproduces the sequential float sums exactly;
	// maxDelta is a max and equally order-free. The slab and the two
	// phase bodies are built once and reused every iteration, so a
	// steady-state sweep dispatches into warm memory with zero
	// allocations.
	type sweepAcc struct {
		active, gatherEdges, scatterEdges, mirrorMsgs, updates int64
		maxDelta                                               float64
	}
	accs := make([]sweepAcc, ex.plan.Count())

	// Scatter contributions: pure per-vertex writes.
	scatterFn := func(i int) {
		s := ex.plan.Shard(i)
		for v := s.Lo; v < s.Hi; v++ {
			if d := ex.g.OutDegree(graph.VertexID(v)); d > 0 {
				contrib[v] = ex.values[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
	}
	// Gather+apply: shards own disjoint vertex ranges; contrib and
	// values are read-only here, next/changed writes vertex-owned.
	gatherFn := func(i int) {
		s := ex.plan.Shard(i)
		var a sweepAcc
		for v := s.Lo; v < s.Hi; v++ {
			changed[v] = false
			if approx && !ex.active[v] {
				next[v] = ex.values[v]
				continue
			}
			a.active++
			a.gatherEdges += int64(ex.g.InDegree(graph.VertexID(v)))
			a.mirrorMsgs += 2 * int64(ex.replicasM[v])
			sum := 0.0
			for _, u := range ex.g.InNeighbors(graph.VertexID(v)) {
				sum += contrib[u]
			}
			nv := ex.w.Damping + (1-ex.w.Damping)*sum
			next[v] = nv
			d := math.Abs(nv - ex.values[v])
			if d > a.maxDelta {
				a.maxDelta = d
			}
			if d > tol/10 {
				a.updates++
				changed[v] = true
				a.scatterEdges += int64(ex.g.OutDegree(graph.VertexID(v)))
			}
		}
		accs[i] = a
	}

	iters := 0
	for {
		iters++
		ex.pool.ForEach(ex.plan.Count(), scatterFn)
		ex.pool.ForEach(ex.plan.Count(), gatherFn)
		var activeCount, gatherEdges, scatterEdges, mirrorMsgs, updates float64
		maxDelta := 0.0
		for _, a := range accs {
			activeCount += float64(a.active)
			gatherEdges += float64(a.gatherEdges)
			scatterEdges += float64(a.scatterEdges)
			mirrorMsgs += float64(a.mirrorMsgs)
			updates += float64(a.updates)
			if a.maxDelta > maxDelta {
				maxDelta = a.maxDelta
			}
		}
		ex.values, next = next, ex.values
		ex.res.PerIteration = append(ex.res.PerIteration, engine.IterStat{
			Iteration: iters, Active: int(activeCount), Updates: int(updates),
		})
		if err := ex.chargeIteration(activeCount, gatherEdges, scatterEdges, mirrorMsgs, 1); err != nil {
			ex.res.Iterations = iters
			ex.res.Ranks = ex.values
			return err
		}
		if approx {
			// Deactivate converged vertices; reactivate targets of
			// changed ranks. The reactivation set is a pure boolean OR, so
			// it can be built in either direction: scattering along the
			// changed vertices' out-edges touches Σ outdeg(changed) edges,
			// gathering along every vertex's in-edges (with an early break
			// on the first changed in-neighbor) touches at most |E| but
			// usually far fewer when most vertices changed. Flip on the
			// same edge-mass threshold the traversal frontiers use; both
			// directions produce the identical active set.
			for v := 0; v < n; v++ {
				ex.active[v] = false
			}
			anyActive := false
			if scatterEdges > float64(ex.g.NumEdges())/graph.FrontierAlpha {
				for w := 0; w < n; w++ {
					for _, u := range ex.g.InNeighbors(graph.VertexID(w)) {
						if changed[u] {
							ex.active[w] = true
							anyActive = true
							break
						}
					}
				}
			} else {
				for v := 0; v < n; v++ {
					if changed[v] {
						for _, w := range ex.g.OutNeighbors(graph.VertexID(v)) {
							ex.active[w] = true
							anyActive = true
						}
					}
				}
			}
			if !anyActive {
				break
			}
		}
		if ex.w.MaxIterations > 0 && iters >= ex.w.MaxIterations {
			break
		}
		if ex.w.MaxIterations <= 0 && maxDelta < tol {
			break
		}
	}
	ex.res.Iterations = iters
	ex.res.Ranks = ex.values
	return nil
}

// syncPropagate runs WCC / SSSP / K-hop: frontier-driven min-propagation.
// WCC gathers across both edge directions (GraphLab sees both ends of an
// edge, §3.2); SSSP and K-hop gather along in-edges only.
//
// The frontier sweep stays sequential: values updated early in a round
// are visible to later frontier vertices (Gauss–Seidel propagation), so
// a sharded version would change how far labels travel per round and
// with it the modeled iteration counts — breaking the bit-identical
// guarantee the determinism tests enforce.
func (ex *execution) syncPropagate() error {
	n := ex.g.NumVertices()
	// Two bitset frontiers, swapped each round: Add dedupes enqueues in
	// O(1) (the job a per-round map used to do, allocating every round)
	// and Clear resets only the set bits, so steady-state rounds are
	// allocation-free.
	frontier := graph.NewFrontier(n)
	next := graph.NewFrontier(n)
	switch ex.w.Kind {
	case engine.WCC:
		for v := 0; v < n; v++ {
			frontier.Add(graph.VertexID(v), 0)
		}
	default:
		// The source's distance is applied at init; its scatter seeds
		// the first frontier, whose members gather from it.
		ex.values[ex.d.Source] = 0
		for _, w := range ex.g.OutNeighbors(ex.d.Source) {
			if w != ex.d.Source {
				frontier.Add(w, 0)
			}
		}
	}

	iters := 0
	for frontier.Len() > 0 {
		iters++
		if ex.w.Kind == engine.KHop && iters > ex.w.K {
			break
		}
		var gatherEdges, scatterEdges, mirrorMsgs float64
		for _, v := range frontier.Members() {
			mirrorMsgs += 2 * float64(ex.replicasM[v])
			var newVal float64
			switch ex.w.Kind {
			case engine.WCC:
				gatherEdges += float64(ex.g.InDegree(v) + ex.g.OutDegree(v))
				newVal = ex.values[v]
				for _, u := range ex.g.InNeighbors(v) {
					if ex.values[u] < newVal {
						newVal = ex.values[u]
					}
				}
				for _, u := range ex.g.OutNeighbors(v) {
					if ex.values[u] < newVal {
						newVal = ex.values[u]
					}
				}
			default:
				gatherEdges += float64(ex.g.InDegree(v))
				newVal = ex.values[v]
				for _, u := range ex.g.InNeighbors(v) {
					if ex.values[u]+1 < newVal {
						newVal = ex.values[u] + 1
					}
				}
			}
			if newVal < ex.values[v] {
				ex.values[v] = newVal
				scatterEdges += float64(ex.g.OutDegree(v))
				for _, w := range ex.g.OutNeighbors(v) {
					if w != v {
						next.Add(w, 0)
					}
				}
				if ex.w.Kind == engine.WCC {
					scatterEdges += float64(ex.g.InDegree(v))
					for _, w := range ex.g.InNeighbors(v) {
						if w != v {
							next.Add(w, 0)
						}
					}
				}
			}
		}
		ex.res.PerIteration = append(ex.res.PerIteration, engine.IterStat{
			Iteration: iters, Active: frontier.Len(), Updates: next.Len(),
		})
		if err := ex.chargeIteration(float64(frontier.Len()), gatherEdges, scatterEdges, mirrorMsgs, 1); err != nil {
			ex.finishPropagate(iters)
			return err
		}
		// Keep only vertices that can still improve: swap the two
		// frontiers and clear the consumed one (O(members), not O(n)).
		frontier, next = next, frontier
		next.Clear()
	}
	ex.finishPropagate(iters)
	return nil
}

func (ex *execution) finishPropagate(iters int) {
	ex.res.Iterations = int(float64(iters)*ex.dilation() + 0.5)
	switch ex.w.Kind {
	case engine.WCC:
		labels := make([]graph.VertexID, len(ex.values))
		for i, v := range ex.values {
			labels[i] = graph.VertexID(v)
		}
		ex.res.Labels = labels
	default:
		dist := make([]int32, len(ex.values))
		for i, v := range ex.values {
			if math.IsInf(v, 1) {
				dist[i] = -1
			} else {
				dist[i] = int32(v)
			}
		}
		ex.res.Dist = dist
	}
}

// syncTriangles runs degree-ordered triangle counting as one gather-
// heavy GAS phase: every vertex gathers its forward neighborhood
// through mirrors, generates candidate pairs (the quadratic fan-out),
// probes closing edges, and scatters credits to triangle corners.
// Shards accumulate into private count arrays merged by integer sum, so
// any shard count produces bit-identical counts and modeled costs.
func (ex *execution) syncTriangles() error {
	o, rank := graph.ForwardOrient(ex.g)
	n := o.NumVertices()
	type triAcc struct {
		counts                  []int64
		cands, hits, mirrorMsgs int64
	}
	// Shard by the oriented graph's degree weights: the quadratic
	// candidate fan-out concentrates on the forward-heavy vertices.
	pl := par.PlanPrefix(o.WorkPrefix(), ex.pool.Workers())
	accs := par.MapPlan(ex.pool, pl, func(s par.Shard) triAcc {
		a := triAcc{counts: make([]int64, n)}
		for u := s.Lo; u < s.Hi; u++ {
			a.mirrorMsgs += 2 * int64(ex.replicasM[u])
			nbrs := o.OutNeighbors(graph.VertexID(u))
			for i, v := range nbrs {
				for _, w := range nbrs[i+1:] {
					lo, hi := v, w
					if rank[lo] > rank[hi] {
						lo, hi = hi, lo
					}
					a.cands++
					if o.HasEdge(lo, hi) {
						a.hits++
						a.counts[u]++
						a.counts[v]++
						a.counts[w]++
					}
				}
			}
		}
		return a
	})
	counts := make([]int64, n)
	var cands, hits, mirrorMsgs float64
	for _, a := range accs {
		for v, c := range a.counts {
			counts[v] += c
		}
		cands += float64(a.cands)
		hits += float64(a.hits)
		mirrorMsgs += float64(a.mirrorMsgs)
	}
	ex.res.Triangles = counts
	ex.res.Iterations = 1
	ex.res.PerIteration = append(ex.res.PerIteration, engine.IterStat{
		Iteration: 1, Active: n, Updates: int(hits),
	})
	// Gather probes the candidate pairs; scatter ships two credits per
	// triangle; candidates travel through mirrors like gather values.
	return ex.chargeIteration(float64(n), cands, 2*hits, mirrorMsgs+cands, 1)
}

// syncLPA runs synchronous label propagation over the undirected simple
// view: a fixed number of rounds in which every vertex gathers its
// neighbors' labels and applies the most-frequent / max-tie-break rule.
// The sweep shards over vertex ranges; each round reads only the
// previous round's labels, so outputs are bit-identical at any shard
// count.
func (ex *execution) syncLPA() error {
	u := ex.g.Simple()
	n := u.NumVertices()
	rounds := ex.w.LPAIterations()
	next := make([]float64, n)
	// Shard by the simple view's degrees (label gathering is edge
	// work); the round body is built once, so steady-state rounds
	// dispatch with zero allocations.
	pl := par.PlanPrefix(u.WorkPrefix(), ex.pool.Workers())
	scratch := par.ScratchFor[[]float64](ex.pool)
	type lpaAcc struct{ edges, updates, mirrorMsgs int64 }
	accs := make([]lpaAcc, pl.Count())

	finish := func(iters int) {
		ex.res.Iterations = iters
		labels := make([]graph.VertexID, n)
		for v, x := range ex.values {
			labels[v] = graph.VertexID(x)
		}
		ex.res.Labels = graph.CanonicalizeLabels(labels)
	}

	roundFn := func(i int) {
		s := pl.Shard(i)
		var a lpaAcc
		buf := *scratch.At(i)
		for v := s.Lo; v < s.Hi; v++ {
			nbrs := u.OutNeighbors(graph.VertexID(v))
			buf = buf[:0]
			for _, w := range nbrs {
				buf = append(buf, ex.values[w])
			}
			slices.Sort(buf)
			nv := singlethread.ModeMaxLabel(buf, ex.values[v])
			if nv != ex.values[v] {
				a.updates++
			}
			next[v] = nv
			a.edges += int64(len(nbrs))
			a.mirrorMsgs += 2 * int64(ex.replicasM[v])
		}
		*scratch.At(i) = buf
		accs[i] = a
	}

	for it := 1; it <= rounds; it++ {
		ex.pool.ForEach(pl.Count(), roundFn)
		var edges, updates, mirrorMsgs float64
		for _, a := range accs {
			edges += float64(a.edges)
			updates += float64(a.updates)
			mirrorMsgs += float64(a.mirrorMsgs)
		}
		ex.values, next = next, ex.values
		ex.res.PerIteration = append(ex.res.PerIteration, engine.IterStat{
			Iteration: it, Active: n, Updates: int(updates),
		})
		if err := ex.chargeIteration(float64(n), edges, edges, mirrorMsgs, 1); err != nil {
			finish(it)
			return err
		}
	}
	finish(rounds)
	return nil
}

// runAsync executes the asynchronous engine: chaotic Gauss–Seidel
// sweeps with immediate value visibility, lock-contention slowdown, and
// the distributed-lock memory accumulation of §5.3 / Figure 10. The
// sweep is inherently sequential — each vertex reads values written
// moments earlier in the same permutation pass — so it does not shard.
//
// The paper evaluates the asynchronous engine on PageRank only; for the
// extension workloads — whose algorithms are defined synchronously —
// the engine falls back to the synchronous implementations.
func (ex *execution) runAsync() error {
	ex.init()
	defer ex.release()
	switch ex.w.Kind {
	case engine.Triangle:
		return ex.syncTriangles()
	case engine.LPA:
		return ex.syncLPA()
	}
	n := ex.g.NumVertices()
	rng := rand.New(rand.NewSource(11))
	order := rng.Perm(n)

	slow := asyncSlowdown
	if ex.opt.UseAllCores {
		// Figure 1: async gains nothing from more compute threads —
		// context switching makes it slightly worse.
		slow *= 1.2
	}
	tol := ex.w.Tolerance
	if tol <= 0 {
		tol = 0.01
	}

	var lockBytes int64
	defer func() {
		if lockBytes > 0 {
			ex.cluster.FreeAll(lockBytes)
		}
	}()

	iters := 0
	for {
		iters++
		var updates, gatherEdges, mirrorMsgs float64
		maxDelta := 0.0
		for _, vi := range order {
			v := graph.VertexID(vi)
			switch ex.w.Kind {
			case engine.PageRank:
				gatherEdges += float64(ex.g.InDegree(v))
				mirrorMsgs += 2 * float64(ex.replicasM[v])
				sum := 0.0
				for _, u := range ex.g.InNeighbors(v) {
					if d := ex.g.OutDegree(u); d > 0 {
						sum += ex.values[u] / float64(d)
					}
				}
				nv := ex.w.Damping + (1-ex.w.Damping)*sum
				d := math.Abs(nv - ex.values[v])
				if d > maxDelta {
					maxDelta = d
				}
				if d > tol/10 {
					updates++
				}
				ex.values[v] = nv
			default:
				// Chaotic min-propagation.
				gatherEdges += float64(ex.g.InDegree(v))
				newVal := ex.values[v]
				for _, u := range ex.g.InNeighbors(v) {
					if ex.values[u]+1 < newVal {
						newVal = ex.values[u] + 1
					}
				}
				if ex.w.Kind == engine.WCC {
					newVal = math.Min(newVal, ex.values[v])
					for _, u := range ex.g.InNeighbors(v) {
						newVal = math.Min(newVal, ex.values[u])
					}
					for _, u := range ex.g.OutNeighbors(v) {
						newVal = math.Min(newVal, ex.values[u])
					}
				}
				if newVal < ex.values[v] {
					ex.values[v] = newVal
					updates++
					maxDelta = 1
				}
			}
		}
		ex.res.PerIteration = append(ex.res.PerIteration, engine.IterStat{
			Iteration: iters, Active: n, Updates: int(updates),
		})

		// Distributed-lock memory accumulates with every update and
		// grows with cluster size; it is not released until the engine
		// finishes (§5.3: "thousands of threads ... allocate memory for
		// vertices without releasing them").
		grow := int64(updates * ex.d.Scale * asyncLockBytesPerUpdate * float64(ex.cluster.Size()))
		lockBytes += grow
		var allocErr error
		for i := 0; i < ex.cluster.Size(); i++ {
			if err := ex.cluster.Alloc(i, grow); err != nil && allocErr == nil {
				allocErr = err
			}
		}
		if err := ex.chargeIteration(float64(n), gatherEdges, 0, mirrorMsgs, slow); err != nil {
			ex.asyncFinish(iters)
			return err
		}
		if allocErr != nil {
			ex.asyncFinish(iters)
			return allocErr
		}
		if ex.w.Kind == engine.PageRank {
			if ex.w.MaxIterations > 0 && iters >= ex.w.MaxIterations {
				break
			}
			if ex.w.MaxIterations <= 0 && maxDelta < tol {
				break
			}
		} else if updates == 0 {
			break
		}
		if ex.w.Kind == engine.KHop && iters > ex.w.K {
			break
		}
	}
	ex.asyncFinish(iters)
	return nil
}

func (ex *execution) asyncFinish(iters int) {
	if ex.w.Kind == engine.PageRank {
		ex.res.Iterations = iters
		ex.res.Ranks = ex.values
		return
	}
	ex.finishPropagate(iters)
}
