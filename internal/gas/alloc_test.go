package gas

import (
	"fmt"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/par"
	"graphbench/internal/partition"
	"graphbench/internal/sim"
)

// shardBudgets are the per-iteration allocation budgets by shard
// count: the sequential budget covers the PerIteration append
// (amortized) and runtime noise; the sharded budget is its double —
// with the persistent pool and the phase bodies hoisted out of the
// sweep loops, a steady-state sharded iteration dispatches into warm
// memory and allocates nothing extra.
var shardBudgets = map[int]float64{1: 8, 8: 16}

// TestSyncSweepAllocBudget locks in the arena-reuse behaviour of the
// synchronous PageRank sweep: once the contrib/next/changed buffers
// exist, each additional gather-apply iteration must cost only a
// constant handful of allocations, never O(vertices) or O(edges) — at
// any shard count. The marginal cost is measured by differencing a
// long run against a short one, so per-run setup cancels out.
func TestSyncSweepAllocBudget(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := datasets.Generate(datasets.WRN, datasets.Options{Scale: 2_000_000, Seed: 1})
	vc := partition.BuildVertexCut(g, 4, partition.VCRandom, 7)
	d := &engine.Dataset{Name: "wrn", Scale: 1, NumVertices: g.NumVertices()}
	for shards, budget := range shardBudgets {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(iters int) float64 {
				return testing.AllocsPerRun(3, func() {
					ex := &execution{
						cluster: sim.NewSize(4),
						prof:    &Profile,
						d:       d,
						g:       g,
						vc:      vc,
						w:       engine.Workload{Kind: engine.PageRank, Damping: 0.15, MaxIterations: iters},
						opt:     engine.Options{Shards: shards},
						res:     &engine.Result{},
					}
					if err := ex.runSync(); err != nil {
						panic(err)
					}
				})
			}
			short, long := run(5), run(45)
			perIter := (long - short) / 40
			if perIter > budget {
				t.Errorf("sync PageRank sweep allocates %.1f objects per iteration at %d shards, budget %.0f (short run %.0f, long run %.0f)",
					perIter, shards, budget, short, long)
			}
		})
	}
}

// TestSyncLPAAllocBudget extends the arena-reuse guarantee to the
// label-propagation sweep: per-shard label scratch buffers are retained
// across rounds, so each additional synchronous round must cost only a
// constant handful of allocations — never O(vertices) or O(edges).
func TestSyncLPAAllocBudget(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := datasets.Generate(datasets.Twitter, datasets.Options{Scale: 600_000, Seed: 1})
	vc := partition.BuildVertexCut(g, 4, partition.VCRandom, 7)
	d := &engine.Dataset{Name: "twitter", Scale: 1, NumVertices: g.NumVertices()}
	for shards, budget := range shardBudgets {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(rounds int) float64 {
				return testing.AllocsPerRun(3, func() {
					ex := &execution{
						cluster: sim.NewSize(4),
						prof:    &Profile,
						d:       d,
						g:       g,
						vc:      vc,
						w:       engine.Workload{Kind: engine.LPA, MaxIterations: rounds},
						opt:     engine.Options{Shards: shards},
						res:     &engine.Result{},
					}
					if err := ex.runSync(); err != nil {
						panic(err)
					}
				})
			}
			short, long := run(5), run(45)
			perIter := (long - short) / 40
			if perIter > budget {
				t.Errorf("sync LPA sweep allocates %.1f objects per round at %d shards, budget %.0f (short run %.0f, long run %.0f)",
					perIter, shards, budget, short, long)
			}
		})
	}
}
