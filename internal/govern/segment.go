// Checksummed spill segments: the on-disk format every out-of-core
// spill in this repository uses (inbox arenas, streamed edge blocks).
//
// A segment is a sequence of fixed-size pages of payload followed by a
// trailer. Payload bytes are stored contiguously — page k's payload
// occupies file bytes [k·PageBytes, (k+1)·PageBytes) — so readers can
// map a payload offset to a file offset with no per-page framing
// arithmetic, and a page-aligned read of an 8-aligned payload range
// stays 8-aligned in the read buffer (readers alias []int32/[]float64
// views onto it). The trailer holds one CRC-32C (Castagnoli) per page,
// the payload length, and a magic, and is written by Finish; a segment
// without a valid trailer is torn and refuses to open. Every page read
// is verified against its checksum.
package govern

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"
)

// PageBytes is the segment page size: a multiple of 8 so page-aligned
// windows keep float64 payloads aligned.
const PageBytes = 1 << 15 // 32 KiB

// segMagic terminates a finished segment's trailer.
const segMagic = 0x47425347 // "GBSG"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SegmentWriter writes one segment sequentially.
type SegmentWriter struct {
	f     *os.File
	lease *Lease
	crcs  []uint32
	cur   uint32 // running CRC of the partial last page
	fill  int    // bytes in the partial last page
	n     int64  // payload bytes written
	err   error
}

// CreateSegment creates (truncating) the segment file at path. Written
// bytes are recorded on the lease as spill volume at Finish.
func CreateSegment(path string, lease *Lease) (*SegmentWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("govern: create segment: %w", err)
	}
	return &SegmentWriter{f: f, lease: lease}, nil
}

// Write appends payload bytes, accumulating per-page checksums.
func (w *SegmentWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		k := PageBytes - w.fill
		if k > len(p) {
			k = len(p)
		}
		w.cur = crc32.Update(w.cur, crcTable, p[:k])
		if _, err := w.f.Write(p[:k]); err != nil {
			w.err = err
			return total - len(p), err
		}
		w.fill += k
		w.n += int64(k)
		if w.fill == PageBytes {
			w.crcs = append(w.crcs, w.cur)
			w.cur, w.fill = 0, 0
		}
		p = p[k:]
	}
	return total, nil
}

// Finish seals the segment: flushes the partial page's checksum, writes
// the trailer, and closes the file. The segment is unreadable until
// Finish succeeds.
func (w *SegmentWriter) Finish() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if w.fill > 0 {
		w.crcs = append(w.crcs, w.cur)
		w.cur, w.fill = 0, 0
	}
	tr := make([]byte, 0, len(w.crcs)*4+12)
	for _, c := range w.crcs {
		tr = binary.LittleEndian.AppendUint32(tr, c)
	}
	tr = binary.LittleEndian.AppendUint64(tr, uint64(w.n))
	tr = binary.LittleEndian.AppendUint32(tr, segMagic)
	if _, err := w.f.Write(tr); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.lease.AddSpill(w.n + int64(len(tr)))
	return nil
}

// SegmentReader reads pages back, verifying each against its checksum.
// Reads use ReadAt and are safe for concurrent use.
type SegmentReader struct {
	f    *os.File
	crcs []uint32
	size int64 // payload bytes
}

// OpenSegment opens a finished segment and validates its trailer.
func OpenSegment(path string) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("govern: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fail := func(format string, args ...any) (*SegmentReader, error) {
		f.Close()
		return nil, fmt.Errorf("govern: segment %s: "+format, append([]any{path}, args...)...)
	}
	if st.Size() < 12 {
		return fail("truncated (%d bytes)", st.Size())
	}
	var tail [12]byte
	if _, err := f.ReadAt(tail[:], st.Size()-12); err != nil {
		return fail("trailer: %v", err)
	}
	if binary.LittleEndian.Uint32(tail[8:]) != segMagic {
		return fail("bad magic (torn or foreign file)")
	}
	size := int64(binary.LittleEndian.Uint64(tail[:8]))
	npages := int((size + PageBytes - 1) / PageBytes)
	if want := size + int64(npages)*4 + 12; st.Size() != want {
		return fail("size %d, want %d for %d payload bytes", st.Size(), want, size)
	}
	crcBytes := make([]byte, npages*4)
	if _, err := f.ReadAt(crcBytes, size); err != nil {
		return fail("checksum table: %v", err)
	}
	crcs := make([]uint32, npages)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(crcBytes[i*4:])
	}
	return &SegmentReader{f: f, crcs: crcs, size: size}, nil
}

// Size returns the payload length in bytes.
func (r *SegmentReader) Size() int64 { return r.size }

// ReadPages fills buf (whose length must be a multiple of PageBytes)
// with consecutive pages starting at page, verifies each page read
// against its checksum, and returns the number of payload bytes read
// (short only at the segment's end).
func (r *SegmentReader) ReadPages(buf []byte, page int) (int, error) {
	if len(buf)%PageBytes != 0 {
		return 0, fmt.Errorf("govern: read buffer %d not page-aligned", len(buf))
	}
	off := int64(page) * PageBytes
	if off >= r.size {
		return 0, io.EOF
	}
	want := r.size - off
	if want > int64(len(buf)) {
		want = int64(len(buf))
	}
	if _, err := io.ReadFull(io.NewSectionReader(r.f, off, want), buf[:want]); err != nil {
		return 0, fmt.Errorf("govern: segment read: %w", err)
	}
	for i := 0; int64(i*PageBytes) < want; i++ {
		lo := int64(i * PageBytes)
		hi := lo + PageBytes
		if hi > want {
			hi = want
		}
		if got := crc32.Checksum(buf[lo:hi], crcTable); got != r.crcs[page+i] {
			return 0, fmt.Errorf("govern: segment page %d checksum mismatch (corrupt spill)", page+i)
		}
	}
	return int(want), nil
}

// Close closes the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }

// CopyFile copies src to dst (truncating dst) — used to checkpoint
// spill segments so a rollback can restore them byte-identically.
func CopyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// AlignedBytes returns a zeroed byte slice of length n whose backing
// array is 8-byte aligned (it is carved from a []uint64), so 8-aligned
// payload ranges read into it can be aliased as []float64/[]int64.
func AlignedBytes(n int) []byte {
	if n <= 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:n]
}
