// Package govern is the host-side memory governor: one byte budget that
// every large allocation of a run — snapshot arenas, BSP inbox arenas,
// send buckets, streaming windows — is charged against, with tiered
// degradation instead of an OOM kill when the budget tightens.
//
// The governor tracks the *working set the runtime controls*, not the Go
// heap: callers charge the byte sizes of the buffers they are about to
// grow and release them when the run ends. Under soft pressure runs
// shrink reusable scratch (forced-push traversal, demand-paged snapshot
// arenas); under hard pressure the BSP runtime switches to out-of-core
// supersteps that spill the message plane to checksummed segment files
// (see internal/bsp); and when even the out-of-core floor does not fit,
// charging fails with a typed ErrBudget that the serve path maps to
// 503 + Retry-After.
//
// A Governor is shared by every run of a core.Runner; each run holds a
// Lease, a child ledger whose Close returns everything the run still
// holds and deletes its spill directory, so a crashed or abandoned run
// can never leak budget or temp files.
package govern

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// ErrBudget is the sentinel all budget-rejection errors unwrap to. The
// serve path maps it to 503 + Retry-After and excludes it from circuit-
// breaker failure accounting: the request was fine, the moment was not.
var ErrBudget = errors.New("memory budget exceeded")

// BudgetError reports a charge that did not fit the budget.
type BudgetError struct {
	Need   int64 // bytes the charge needed
	Budget int64 // configured budget
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("memory budget exceeded: need %d bytes of %d budget", e.Need, e.Budget)
}

// Unwrap ties every BudgetError to the ErrBudget sentinel.
func (e *BudgetError) Unwrap() error { return ErrBudget }

// Pressure classifies how much of the budget is currently charged.
type Pressure int

const (
	// PressureNone: comfortably inside the budget.
	PressureNone Pressure = iota
	// PressureSoft: past SoftFraction — release reusable scratch,
	// prefer demand paging over pre-faulted arenas.
	PressureSoft
	// PressureHard: past HardFraction — new runs should go out-of-core.
	PressureHard
)

// SoftFraction and HardFraction are the budget fractions at which
// Pressure moves to soft and hard. The BSP runtime also uses
// SoftFraction as the headroom bound past which an in-core run sheds
// its optional scratch.
const (
	SoftFraction = 0.5
	HardFraction = 0.875
)

// Stats is a snapshot of a Governor's counters.
type Stats struct {
	BudgetBytes int64  `json:"budget_bytes"`
	UsedBytes   int64  `json:"used_bytes"`
	PeakBytes   int64  `json:"peak_bytes"`
	SpillBytes  int64  `json:"spill_bytes"`
	SoftEvents  uint64 `json:"soft_events"`
	HardEvents  uint64 `json:"hard_events"`
	Rejections  uint64 `json:"rejections"`
}

// RunStats is one run's slice of the ledger, surfaced on engine results
// and /metrics.
type RunStats struct {
	BudgetBytes int64
	PeakBytes   int64  // peak bytes the run held at once
	SpillBytes  int64  // bytes written to spill segments
	SoftEvents  uint64 // soft-pressure reactions (scratch shed, lazy arenas)
	HardEvents  uint64 // hard-pressure reactions (out-of-core supersteps)
	Spilled     bool   // true when the run executed out-of-core
}

// Governor is the shared budget ledger. The nil Governor is valid and
// disables all governing: every charge succeeds and records nothing.
type Governor struct {
	budget int64
	root   string // spill root; per-run directories live under it

	mu         sync.Mutex
	used       int64
	peak       int64
	spillBytes int64
	soft       uint64
	hard       uint64
	rejections uint64
}

// New creates a Governor with the given byte budget. Its spill root is
// created under dir (os.TempDir() when dir is empty) and removed by
// Close. A budget <= 0 returns nil: governing disabled.
func New(budget int64, dir string) (*Governor, error) {
	if budget <= 0 {
		return nil, nil
	}
	root, err := os.MkdirTemp(dir, "graphbench-spill-")
	if err != nil {
		return nil, fmt.Errorf("govern: spill root: %w", err)
	}
	return &Governor{budget: budget, root: root}, nil
}

// Enabled reports whether g governs anything (nil-safe).
func (g *Governor) Enabled() bool { return g != nil && g.budget > 0 }

// Budget returns the configured budget; 0 for the nil Governor.
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Root returns the spill root directory ("" for the nil Governor).
func (g *Governor) Root() string {
	if g == nil {
		return ""
	}
	return g.root
}

// Pressure classifies current usage against the budget (nil-safe).
func (g *Governor) Pressure() Pressure {
	if !g.Enabled() {
		return PressureNone
	}
	g.mu.Lock()
	used := g.used
	g.mu.Unlock()
	switch f := float64(used) / float64(g.budget); {
	case f >= HardFraction:
		return PressureHard
	case f >= SoftFraction:
		return PressureSoft
	}
	return PressureNone
}

// Stats snapshots the counters (zero value for the nil Governor).
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		BudgetBytes: g.budget,
		UsedBytes:   g.used,
		PeakBytes:   g.peak,
		SpillBytes:  g.spillBytes,
		SoftEvents:  g.soft,
		HardEvents:  g.hard,
		Rejections:  g.rejections,
	}
}

// Close removes the spill root. Outstanding leases must be closed first.
func (g *Governor) Close() error {
	if g == nil {
		return nil
	}
	return os.RemoveAll(g.root)
}

// Lease is one run's ledger against the shared Governor. The nil Lease
// is valid: charges succeed, stats are zero, Close is a no-op.
type Lease struct {
	g *Governor

	mu         sync.Mutex
	held       int64
	peak       int64
	spillBytes int64
	soft       uint64
	hard       uint64
	dir        string
	dirSeq     uint64
}

var leaseSeq struct {
	mu sync.Mutex
	n  uint64
}

// NewLease opens a run ledger (nil for the nil/disabled Governor).
func (g *Governor) NewLease() *Lease {
	if !g.Enabled() {
		return nil
	}
	return &Lease{g: g}
}

// Available returns the budget bytes not currently charged across the
// whole Governor. The nil Lease has effectively unlimited headroom.
func (l *Lease) Available() int64 {
	if l == nil {
		return math.MaxInt64
	}
	l.g.mu.Lock()
	defer l.g.mu.Unlock()
	if a := l.g.budget - l.g.used; a > 0 {
		return a
	}
	return 0
}

// TryCharge charges n bytes against the budget, failing with a
// *BudgetError (unwrapping to ErrBudget) when it does not fit. Charges
// of n <= 0 succeed and record nothing.
func (l *Lease) TryCharge(n int64) error {
	if l == nil || n <= 0 {
		return nil
	}
	g := l.g
	g.mu.Lock()
	if g.used+n > g.budget {
		g.rejections++
		need := g.used + n
		g.mu.Unlock()
		return &BudgetError{Need: need, Budget: g.budget}
	}
	g.used += n
	if g.used > g.peak {
		g.peak = g.used
	}
	g.mu.Unlock()
	l.mu.Lock()
	l.held += n
	if l.held > l.peak {
		l.peak = l.held
	}
	l.mu.Unlock()
	return nil
}

// Release returns n charged bytes to the budget.
func (l *Lease) Release(n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	if n > l.held {
		n = l.held
	}
	l.held -= n
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.used -= n
	l.g.mu.Unlock()
}

// AddSpill records n bytes written to spill segments (disk, not budget).
func (l *Lease) AddSpill(n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	l.spillBytes += n
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.spillBytes += n
	l.g.mu.Unlock()
}

// NoteSoft records one soft-pressure reaction.
func (l *Lease) NoteSoft() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.soft++
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.soft++
	l.g.mu.Unlock()
}

// NoteHard records one hard-pressure reaction.
func (l *Lease) NoteHard() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.hard++
	l.mu.Unlock()
	l.g.mu.Lock()
	l.g.hard++
	l.g.mu.Unlock()
}

// Dir returns the run's private spill directory, creating it on first
// use. Close removes it recursively.
func (l *Lease) Dir() (string, error) {
	if l == nil {
		return "", errors.New("govern: no lease")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dir != "" {
		return l.dir, nil
	}
	leaseSeq.mu.Lock()
	leaseSeq.n++
	seq := leaseSeq.n
	leaseSeq.mu.Unlock()
	dir := filepath.Join(l.g.root, fmt.Sprintf("run-%d", seq))
	if err := os.Mkdir(dir, 0o755); err != nil {
		return "", fmt.Errorf("govern: run spill dir: %w", err)
	}
	l.dir = dir
	return dir, nil
}

// Stats returns the run's ledger slice; valid after Close (peak, spill
// and event counts survive the release of held bytes).
func (l *Lease) Stats() RunStats {
	if l == nil {
		return RunStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return RunStats{
		BudgetBytes: l.g.budget,
		PeakBytes:   l.peak,
		SpillBytes:  l.spillBytes,
		SoftEvents:  l.soft,
		HardEvents:  l.hard,
		Spilled:     l.hard > 0,
	}
}

// Close releases everything the lease still holds and removes the run's
// spill directory. Idempotent.
func (l *Lease) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	held, dir := l.held, l.dir
	l.held, l.dir = 0, ""
	l.mu.Unlock()
	if held > 0 {
		l.g.mu.Lock()
		l.g.used -= held
		l.g.mu.Unlock()
	}
	if dir != "" {
		_ = os.RemoveAll(dir)
	}
}

// ParseBytes parses a human byte size: a plain integer byte count, or
// one with a k/m/g suffix (optionally ...b or ...ib, case-insensitive),
// all powers of 1024. The empty string parses to 0 (governing off).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, suf := range []struct {
		tail string
		mult int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(t, suf.tail) {
			t, mult = strings.TrimSuffix(t, suf.tail), suf.mult
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("govern: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("govern: negative byte size %q", s)
	}
	return v * mult, nil
}
