package govern

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSegment(t *testing.T, path string, payload []byte, lease *Lease) {
	t.Helper()
	w, err := CreateSegment(path, lease)
	if err != nil {
		t.Fatal(err)
	}
	// Write in ragged pieces so page accounting crosses Write calls.
	for off := 0; off < len(payload); {
		k := 1000 + off%4096
		if off+k > len(payload) {
			k = len(payload) - off
		}
		if _, err := w.Write(payload[off : off+k]); err != nil {
			t.Fatal(err)
		}
		off += k
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	// 2.5 pages: exercises full pages, a partial tail page, and reads
	// that start mid-segment.
	payload := make([]byte, PageBytes*2+PageBytes/2)
	rand.New(rand.NewSource(7)).Read(payload)
	path := filepath.Join(t.TempDir(), "a.seg")

	g, err := New(1<<20, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	l := g.NewLease()
	defer l.Close()

	writeSegment(t, path, payload, l)
	if sp := l.Stats().SpillBytes; sp <= int64(len(payload)) {
		t.Fatalf("spill bytes %d, want > payload %d (trailer included)", sp, len(payload))
	}

	r, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(payload))
	}

	// Whole-segment read.
	buf := AlignedBytes(3 * PageBytes)
	n, err := r.ReadPages(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("whole read: %d bytes, equal=%v", n, bytes.Equal(buf[:n], payload))
	}

	// Page-at-a-time windowed read.
	win := AlignedBytes(PageBytes)
	var got []byte
	for p := 0; ; p++ {
		n, err := r.ReadPages(win, p)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, win[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("windowed read differs from payload")
	}

	if _, err := r.ReadPages(make([]byte, PageBytes-1), 0); err == nil {
		t.Fatal("unaligned read buffer accepted")
	}
}

func TestSegmentDetectsCorruption(t *testing.T) {
	payload := make([]byte, PageBytes+123)
	rand.New(rand.NewSource(9)).Read(payload)
	path := filepath.Join(t.TempDir(), "b.seg")
	writeSegment(t, path, payload, nil)

	// Flip one payload bit in page 1.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[PageBytes+50] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := AlignedBytes(2 * PageBytes)
	// Page 0 is intact...
	if _, err := r.ReadPages(buf[:PageBytes], 0); err != nil {
		t.Fatalf("intact page rejected: %v", err)
	}
	// ...page 1 is not.
	_, err = r.ReadPages(buf[:PageBytes], 1)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt page read err = %v, want checksum mismatch", err)
	}
}

func TestSegmentRefusesTornFiles(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, PageBytes/2)
	rand.New(rand.NewSource(3)).Read(payload)

	// Unfinished: CreateSegment + Write but no Finish.
	torn := filepath.Join(dir, "torn.seg")
	w, err := CreateSegment(torn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	_ = w.f.Close()
	if _, err := OpenSegment(torn); err == nil {
		t.Fatal("opened a segment that was never finished")
	}

	// Truncated after Finish.
	cut := filepath.Join(dir, "cut.seg")
	writeSegment(t, cut, payload, nil)
	raw, err := os.ReadFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cut, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(cut); err == nil {
		t.Fatal("opened a truncated segment")
	}

	// Empty file.
	empty := filepath.Join(dir, "empty.seg")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(empty); err == nil {
		t.Fatal("opened an empty file as a segment")
	}
}

func TestCopyFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	want := []byte("spill checkpoint payload")
	if err := os.WriteFile(src, want, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CopyFile(dst, src); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CopyFile content %q, want %q", got, want)
	}
}

func TestAlignedBytes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, PageBytes} {
		b := AlignedBytes(n)
		if len(b) != n {
			t.Fatalf("AlignedBytes(%d) len %d", n, len(b))
		}
		for i, v := range b {
			if v != 0 {
				t.Fatalf("AlignedBytes(%d)[%d] = %d, want 0", n, i, v)
			}
		}
	}
}
