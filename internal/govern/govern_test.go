package govern

import (
	"errors"
	"os"
	"testing"
)

func TestNilGovernorIsDisabledAndSafe(t *testing.T) {
	var g *Governor
	if g.Enabled() {
		t.Fatal("nil governor reports enabled")
	}
	if g.Budget() != 0 || g.Root() != "" || g.Pressure() != PressureNone {
		t.Fatal("nil governor leaks state")
	}
	if g.Stats() != (Stats{}) {
		t.Fatal("nil governor has non-zero stats")
	}
	l := g.NewLease()
	if l != nil {
		t.Fatal("nil governor handed out a lease")
	}
	// The nil lease must be a no-op ledger, not a crash.
	if err := l.TryCharge(1 << 40); err != nil {
		t.Fatalf("nil lease rejected a charge: %v", err)
	}
	l.Release(1)
	l.AddSpill(1)
	l.NoteSoft()
	l.NoteHard()
	if l.Stats() != (RunStats{}) {
		t.Fatal("nil lease has non-zero stats")
	}
	l.Close()
	if err := g.Close(); err != nil {
		t.Fatalf("nil governor Close: %v", err)
	}
}

func TestNewZeroBudgetDisables(t *testing.T) {
	g, err := New(0, t.TempDir())
	if err != nil || g != nil {
		t.Fatalf("New(0) = (%v, %v), want (nil, nil)", g, err)
	}
}

func TestLedgerChargeReleasePeak(t *testing.T) {
	g, err := New(1000, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	l := g.NewLease()
	defer l.Close()

	if err := l.TryCharge(600); err != nil {
		t.Fatalf("charge within budget: %v", err)
	}
	if p := g.Pressure(); p != PressureSoft {
		t.Fatalf("pressure at 60%% = %v, want soft", p)
	}
	if got := l.Available(); got != 400 {
		t.Fatalf("Available = %d, want 400", got)
	}
	err = l.TryCharge(500)
	if err == nil {
		t.Fatal("overcommit charge succeeded")
	}
	var be *BudgetError
	if !errors.As(err, &be) || !errors.Is(err, ErrBudget) {
		t.Fatalf("rejection is %T (%v), want *BudgetError unwrapping to ErrBudget", err, err)
	}
	if be.Need != 1100 || be.Budget != 1000 {
		t.Fatalf("BudgetError{Need: %d, Budget: %d}, want {1100, 1000}", be.Need, be.Budget)
	}
	if err := l.TryCharge(300); err != nil {
		t.Fatalf("charge to 90%%: %v", err)
	}
	if p := g.Pressure(); p != PressureHard {
		t.Fatalf("pressure at 90%% = %v, want hard", p)
	}
	l.Release(700)
	if got := l.Available(); got != 800 {
		t.Fatalf("Available after release = %d, want 800", got)
	}
	l.AddSpill(4096)
	l.NoteSoft()
	l.NoteHard()

	st := g.Stats()
	if st.UsedBytes != 200 || st.PeakBytes != 900 || st.SpillBytes != 4096 ||
		st.SoftEvents != 1 || st.HardEvents != 1 || st.Rejections != 1 {
		t.Fatalf("governor stats %+v", st)
	}
	rs := l.Stats()
	if rs.PeakBytes != 900 || rs.SpillBytes != 4096 || !rs.Spilled {
		t.Fatalf("lease stats %+v", rs)
	}

	// Close releases everything still held and keeps the run stats.
	l.Close()
	if got := g.Stats().UsedBytes; got != 0 {
		t.Fatalf("used after lease close = %d, want 0", got)
	}
	if rs := l.Stats(); rs.PeakBytes != 900 || !rs.Spilled {
		t.Fatalf("lease stats lost after close: %+v", rs)
	}
}

func TestLeaseDirCreatedAndRemoved(t *testing.T) {
	g, err := New(1<<20, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	l := g.NewLease()
	dir, err := l.Dir()
	if err != nil {
		t.Fatal(err)
	}
	again, err := l.Dir()
	if err != nil || again != dir {
		t.Fatalf("second Dir() = (%q, %v), want (%q, nil)", again, err, dir)
	}
	if err := os.WriteFile(dir+"/seg", []byte("x"), 0o644); err != nil {
		t.Fatalf("spill dir not writable: %v", err)
	}
	l.Close()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("lease Close left spill dir behind (stat err %v)", err)
	}
	// Idempotent.
	l.Close()

	root := g.Root()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(root); !os.IsNotExist(err) {
		t.Fatalf("governor Close left spill root behind (stat err %v)", err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"123", 123, false},
		{"1k", 1024, false},
		{"1K", 1024, false},
		{"2kb", 2048, false},
		{"3kib", 3072, false},
		{"5m", 5 << 20, false},
		{"5MiB", 5 << 20, false},
		{"2g", 2 << 30, false},
		{"2GB", 2 << 30, false},
		{" 64 m ", 64 << 20, false},
		{"-1", 0, true},
		{"nope", 0, true},
		{"1q", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseBytes(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
