package graph

import (
	"bytes"
	"slices"
	"testing"
)

// fuzzVertices is the vertex budget FuzzDecode parses against: small
// enough that random bytes often hit the in-range/out-of-range id
// boundary, large enough for real adjacency structure.
const fuzzVertices = 32

// FuzzDecode drives the byte-level parser introduced with the
// zero-allocation message plane: arbitrary input must either fail with
// an error or produce a graph that round-trips exactly through
// Encode/Decode in the same format — and must never panic. The seed
// corpus in testdata/fuzz/FuzzDecode covers each format's grammar plus
// the malformed shapes the parser rejects.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("0 1 2 3\n5\n31 0\n"))
	f.Add([]byte("0 2 1 2\n1 0\n2 1 0\n"))
	f.Add([]byte("# comment\n\n 7 8 \n"))
	f.Add([]byte("0 99\n"))       // id out of range
	f.Add([]byte("0 3 1\n"))      // adj-long count mismatch
	f.Add([]byte("1 -2\n"))       // negative id
	f.Add([]byte("4294967296 1")) // overflow-sized id
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, format := range []Format{FormatAdj, FormatAdjLong, FormatEdge} {
			g, err := Decode(bytes.NewReader(data), format, fuzzVertices)
			if err != nil {
				continue // rejected input: an error, never a panic
			}
			var buf bytes.Buffer
			if err := Encode(g, format, &buf); err != nil {
				t.Fatalf("%v: encoding a decoded graph failed: %v", format, err)
			}
			g2, err := Decode(bytes.NewReader(buf.Bytes()), format, fuzzVertices)
			if err != nil {
				t.Fatalf("%v: re-decoding encoded output failed: %v\nencoded: %q", format, err, buf.Bytes())
			}
			if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
				t.Fatalf("%v: round trip changed shape: %d/%d vertices, %d/%d edges",
					format, g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
			}
			for v := 0; v < g.NumVertices(); v++ {
				if !slices.Equal(g.OutNeighbors(VertexID(v)), g2.OutNeighbors(VertexID(v))) {
					t.Fatalf("%v: round trip changed adjacency of %d: %v vs %v",
						format, v, g.OutNeighbors(VertexID(v)), g2.OutNeighbors(VertexID(v)))
				}
			}
			if g2.SelfEdges() != g.SelfEdges() {
				t.Fatalf("%v: round trip changed self-edge count: %d vs %d", format, g.SelfEdges(), g2.SelfEdges())
			}
		}
	})
}
