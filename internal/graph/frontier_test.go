package graph

import (
	"math/rand"
	"testing"
)

func TestFrontierBasics(t *testing.T) {
	f := NewFrontier(130) // spans three bitmap words
	if f.Len() != 0 || f.Edges() != 0 || f.Count() != 0 {
		t.Fatalf("new frontier not empty: len=%d edges=%d count=%d", f.Len(), f.Edges(), f.Count())
	}
	if !f.Add(5, 3) || !f.Add(129, 7) || !f.Add(64, 0) {
		t.Fatal("Add of fresh vertices returned false")
	}
	if f.Add(5, 100) {
		t.Fatal("Add of existing member returned true")
	}
	if f.Len() != 3 || f.Edges() != 10 || f.Count() != 3 {
		t.Fatalf("after adds: len=%d edges=%d count=%d", f.Len(), f.Edges(), f.Count())
	}
	for _, v := range []VertexID{5, 64, 129} {
		if !f.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	if f.Contains(6) || f.Contains(128) {
		t.Fatal("Contains reported a non-member")
	}
	got := f.Members()
	want := []VertexID{5, 129, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want insertion order %v", got, want)
		}
	}
	f.Clear()
	if f.Len() != 0 || f.Edges() != 0 || f.Count() != 0 || f.Contains(5) {
		t.Fatal("Clear left members behind")
	}
}

func TestFrontierDenseClearAndResize(t *testing.T) {
	f := NewFrontier(256)
	for v := 0; v < 256; v++ {
		f.Add(VertexID(v), 1)
	}
	f.Clear() // len(list) >= words: whole-bitmap memclr path
	if f.Count() != 0 || f.Len() != 0 {
		t.Fatal("dense Clear left bits set")
	}
	f.Add(200, 2)
	f.Resize(64)
	if f.Len() != 0 || f.Edges() != 0 || f.Count() != 0 {
		t.Fatal("Resize did not empty the frontier")
	}
	f.Add(63, 1)
	if !f.Contains(63) || f.Contains(62) {
		t.Fatal("membership broken after Resize")
	}
}

func TestFrontierDensityQueries(t *testing.T) {
	f := NewFrontier(100)
	if f.Dense(1000) {
		t.Fatal("empty frontier reported dense")
	}
	if !f.Sparse(100) {
		t.Fatal("empty frontier not sparse")
	}
	f.Add(0, 200)
	if !f.Dense(1000) { // 200 > 1000/FrontierAlpha = 125
		t.Fatal("edge-heavy frontier not dense")
	}
	for v := 1; v < 10; v++ {
		f.Add(VertexID(v), 0)
	}
	if f.Sparse(100) { // 10 members, threshold 100/FrontierBeta = 5
		t.Fatal("10-member frontier reported sparse at n=100")
	}
}

// pushOnlyBFS is the pre-Frontier push-only reference implementation.
func pushOnlyBFS(g *Graph, source VertexID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	if g.NumVertices() == 0 {
		return dist
	}
	dist[source] = 0
	frontier := []VertexID{source}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []VertexID
		for _, v := range frontier {
			for _, w := range g.OutNeighbors(v) {
				if dist[w] < 0 {
					dist[w] = level
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// TestBFSDirectionOptimizingMatchesPush proves the switching sweep is
// bit-identical to the push-only reference on random graphs, including
// shapes dense enough to force the pull path.
func TestBFSDirectionOptimizingMatchesPush(t *testing.T) {
	var tr Traversal
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		b := NewBuilder(n)
		m := rng.Intn(8 * n) // spans sparse chains to dense pull-mode blobs
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		src := VertexID(rng.Intn(n))
		want := pushOnlyBFS(g, src)
		got := tr.BFSDistances(g, src, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

// hashMinRoundsReference is the pre-Frontier map-based implementation.
func hashMinRoundsReference(g *Graph) int {
	u := g.Undirected()
	n := u.NumVertices()
	labels := make([]VertexID, n)
	for i := range labels {
		labels[i] = VertexID(i)
	}
	frontier := make([]VertexID, n)
	for i := range frontier {
		frontier[i] = VertexID(i)
	}
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		var next []VertexID
		updates := make(map[VertexID]VertexID)
		for _, v := range frontier {
			for _, w := range u.OutNeighbors(v) {
				if labels[v] < labels[w] {
					if cur, ok := updates[w]; !ok || labels[v] < cur {
						updates[w] = labels[v]
					}
				}
			}
		}
		for w, l := range updates {
			labels[w] = l
			next = append(next, w)
		}
		frontier = next
	}
	return rounds
}

func TestHashMinRoundsMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 1 + rng.Intn(60)
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		if got, want := HashMinRounds(g), hashMinRoundsReference(g); got != want {
			t.Fatalf("seed %d: HashMinRounds = %d, want %d", seed, got, want)
		}
	}
}

func TestEstimateDiameterUnchangedByFrontierReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	b := NewBuilder(n)
	for v := 1; v < n; v++ { // path graph plus chords: nontrivial diameter
		b.AddEdge(VertexID(v-1), VertexID(v))
	}
	for i := 0; i < 40; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	g := b.Build()
	want := 0
	{ // double-sweep using the one-shot wrapper, mirroring the old code path
		u := g.Undirected()
		r := rand.New(rand.NewSource(5))
		for s := 0; s < 3; s++ {
			start := VertexID(r.Intn(n))
			dist := BFSDistances(u, start)
			far, farD := start, int32(0)
			for v, d := range dist {
				if d > farD {
					far, farD = VertexID(v), d
				}
			}
			if ecc := Eccentricity(u, far); ecc > want {
				want = ecc
			}
		}
	}
	if got := EstimateDiameter(g, 3, 5); got != want {
		t.Fatalf("EstimateDiameter = %d, want %d", got, want)
	}
}
