package graph

import "math/bits"

// Direction-optimizing traversal thresholds (Beamer et al., "Direction-
// Optimizing Breadth-First Search"). A sweep switches from top-down push
// to bottom-up pull when the frontier's out-edge mass exceeds the
// unvisited edge mass divided by FrontierAlpha — the point where scanning
// the unvisited side's in-edges touches fewer edges than pushing along
// every frontier out-edge. It switches back to push when the frontier
// shrinks below NumVertices/FrontierBeta, where a full bottom-up scan
// would mostly visit vertices whose parents cannot be in the frontier.
// FrontierAlpha matches the remaining/8 rule the singlethread SSSP oracle
// has always used, so the shared heuristic and the oracle flip modes on
// the same superstep.
const (
	FrontierAlpha = 8
	FrontierBeta  = 20
)

// Frontier is a vertex set engineered for traversal sweeps: a dense
// bitmap for O(1) membership tests alongside a sparse insertion-ordered
// list for O(len) iteration, with the members' accumulated edge mass
// tracked on the side so density queries (Len, Edges) are O(1). The same
// set therefore serves both directions of a direction-optimizing sweep:
// push iterates Members, pull probes Contains.
//
// The zero value is an empty frontier for a zero-vertex graph; use
// NewFrontier or Resize to size it. Frontier is not safe for concurrent
// mutation; concurrent Contains probes against a quiescent frontier are
// fine.
type Frontier struct {
	bits  []uint64
	list  []VertexID
	edges int64
}

// NewFrontier returns an empty frontier over n vertices.
func NewFrontier(n int) *Frontier {
	f := &Frontier{}
	f.Resize(n)
	return f
}

// Resize empties the frontier and sizes it for n vertices, reusing the
// existing backing arrays when they are large enough.
func (f *Frontier) Resize(n int) {
	words := (n + 63) / 64
	if cap(f.bits) < words {
		f.bits = make([]uint64, words)
	} else {
		f.bits = f.bits[:words]
		clear(f.bits)
	}
	f.list = f.list[:0]
	f.edges = 0
}

// Add inserts v with the given edge weight (typically its out-degree for
// push-cost accounting) and reports whether v was newly added. Adding an
// existing member is a no-op.
func (f *Frontier) Add(v VertexID, degree int) bool {
	w, b := uint(v)>>6, uint64(1)<<(uint(v)&63)
	if f.bits[w]&b != 0 {
		return false
	}
	f.bits[w] |= b
	f.list = append(f.list, v)
	f.edges += int64(degree)
	return true
}

// Contains reports whether v is in the frontier.
func (f *Frontier) Contains(v VertexID) bool {
	return f.bits[uint(v)>>6]&(uint64(1)<<(uint(v)&63)) != 0
}

// Len returns the number of members. O(1).
func (f *Frontier) Len() int { return len(f.list) }

// Edges returns the accumulated edge mass of the members. O(1).
func (f *Frontier) Edges() int64 { return f.edges }

// Members returns the members in insertion order. The slice aliases
// internal storage: it is valid until the next Add, Clear, or Resize,
// and must not be modified.
func (f *Frontier) Members() []VertexID { return f.list }

// Clear empties the frontier, keeping capacity. Sparse frontiers clear
// only the set bits (O(len)); dense ones clear the whole bitmap with one
// memclr, whichever touches less memory.
func (f *Frontier) Clear() {
	if len(f.list) < len(f.bits) {
		for _, v := range f.list {
			f.bits[uint(v)>>6] &^= uint64(1) << (uint(v) & 63)
		}
	} else {
		clear(f.bits)
	}
	f.list = f.list[:0]
	f.edges = 0
}

// Dense reports whether a sweep over this frontier should run bottom-up
// (pull): true when the frontier's edge mass exceeds the unvisited edge
// mass divided by FrontierAlpha.
func (f *Frontier) Dense(unvisitedEdges int64) bool {
	return f.edges > unvisitedEdges/FrontierAlpha
}

// Sparse reports whether a pull-mode sweep should fall back to top-down
// push: true when fewer than n/FrontierBeta vertices remain in the
// frontier.
func (f *Frontier) Sparse(n int) bool {
	return len(f.list) < n/FrontierBeta
}

// Count returns the number of set bits by scanning the bitmap — used by
// tests to cross-check Len against the dense representation.
func (f *Frontier) Count() int {
	total := 0
	for _, w := range f.bits {
		total += bits.OnesCount64(w)
	}
	return total
}
