package graph

import (
	"testing"

	"graphbench/internal/par"
)

// TestBuildAllocBudget locks in the counting-sort Build: constructing a
// graph must cost a fixed number of allocations (the builder, the edge
// buffer, and the CSR output arrays), independent of edge count — the
// old comparator sort allocated through the sort.Interface boxing and
// its recursion.
func TestBuildAllocBudget(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const n, e = 2000, 8000
	edges := make([]Edge, 0, e)
	state := uint64(1)
	for i := 0; i < e; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		src := VertexID(state >> 33 % n)
		state = state*6364136223846793005 + 1442695040888963407
		dst := VertexID(state >> 33 % n)
		edges = append(edges, Edge{src, dst})
	}
	allocs := testing.AllocsPerRun(5, func() {
		b := NewBuilder(n)
		b.Reserve(len(edges))
		for _, ed := range edges {
			b.AddEdge(ed.Src, ed.Dst)
		}
		g := b.Build()
		if g.NumEdges() != len(edges) {
			panic("wrong edge count")
		}
	})
	const budget = 12
	if allocs > budget {
		t.Errorf("Build allocates %.0f objects for %d edges, budget %d", allocs, e, budget)
	}
}
