package graph

import (
	"slices"
	"sort"
)

// Simple returns the undirected simple view of g: every edge in both
// directions, duplicates removed, self-edges dropped. Triangle counting
// and label propagation are defined over this view, so every engine
// derives it the same way.
func (g *Graph) Simple() *Graph {
	return g.Undirected().WithoutSelfEdges()
}

// DegreeRank returns the degree-ordered total-order positions over the
// undirected simple view u: rank[v] < rank[w] iff (deg(v), v) <
// (deg(w), w). Hubs therefore rank last, which is what bounds forward
// degrees in the forward triangle algorithm.
func DegreeRank(u *Graph) []int32 {
	n := u.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		da, db := u.OutDegree(VertexID(a)), u.OutDegree(VertexID(b))
		if da != db {
			return da < db
		}
		return a < b
	})
	rank := make([]int32, n)
	for pos, v := range order {
		rank[v] = int32(pos)
	}
	return rank
}

// ForwardOrient builds the degree-ordered (forward) orientation of g:
// each undirected simple edge {v, w} becomes the single directed edge
// from the lower-ranked endpoint to the higher-ranked one, with rank by
// (degree, id) over the undirected simple view. It returns the oriented
// graph and the rank array. Every triangle a≺b≺c appears exactly once
// as the path a→b, a→c with closing edge b→c, which is the invariant
// the forward counting algorithm exploits — and because every engine
// orients identically, candidate message volume is comparable across
// systems.
func ForwardOrient(g *Graph) (*Graph, []int32) {
	u := g.Simple()
	rank := DegreeRank(u)
	b := NewBuilder(u.NumVertices())
	b.SetName(u.Name()).SetScaleFactor(u.ScaleFactor())
	b.Reserve(u.NumEdges() / 2)
	u.Edges(func(src, dst VertexID) bool {
		if rank[src] < rank[dst] {
			b.AddEdge(src, dst)
		}
		return true
	})
	return b.Build(), rank
}

// HasEdge reports whether the directed edge (src, dst) exists, by
// binary search over src's sorted out-neighbor run — the closing-edge
// probe of the forward triangle algorithm.
func (g *Graph) HasEdge(src, dst VertexID) bool {
	_, ok := slices.BinarySearch(g.OutNeighbors(src), dst)
	return ok
}

// CanonicalizeLabels rewrites a community labeling so that every class
// carries the smallest vertex id among its members — mirroring WCC's
// min-id canonical labels. This makes labelings comparable across
// engines and guarantees each label is a member vertex's id (the
// partition-validity property the oracle tests check). Labels must be
// valid vertex ids. The input slice is not modified.
func CanonicalizeLabels(labels []VertexID) []VertexID {
	minOf := make([]VertexID, len(labels))
	for i := range minOf {
		minOf[i] = -1
	}
	for v, l := range labels {
		if minOf[l] == -1 {
			minOf[l] = VertexID(v) // v ascending: first member is the min
		}
	}
	out := make([]VertexID, len(labels))
	for v, l := range labels {
		out[v] = minOf[l]
	}
	return out
}
