package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Format is one of the paper's three dataset file formats (§4.3).
type Format int

const (
	// FormatAdj is an adjacency list: "src dst1 dst2 ...". Vertices
	// without out-edges may be omitted. Used by Hadoop, HaLoop, Giraph,
	// and GraphLab in the paper.
	FormatAdj Format = iota
	// FormatAdjLong requires a line per vertex and a neighbor count:
	// "src count dst1 dst2 ...". Required by Blogel so that vertices
	// with only in-edges exist.
	FormatAdjLong
	// FormatEdge has one "src dst" line per edge. Used by GraphX and
	// Flink Gelly.
	FormatEdge
)

// String returns the format name used in file extensions and logs.
func (f Format) String() string {
	switch f {
	case FormatAdj:
		return "adj"
	case FormatAdjLong:
		return "adj-long"
	case FormatEdge:
		return "edge"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Encode writes g to w in the given format. The byte layout matches the
// paper's description so that loaders exercise realistic parsing work.
// Numbers are formatted through one reused scratch buffer, so encoding
// allocates nothing per vertex or edge.
func Encode(g *Graph, f Format, w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := lineEncoder{bw: bw}
	n := g.NumVertices()
	switch f {
	case FormatAdj:
		for v := 0; v < n; v++ {
			nbrs := g.OutNeighbors(VertexID(v))
			if len(nbrs) == 0 {
				continue
			}
			enc.vertexLine(VertexID(v), -1, nbrs)
		}
	case FormatAdjLong:
		for v := 0; v < n; v++ {
			nbrs := g.OutNeighbors(VertexID(v))
			enc.vertexLine(VertexID(v), len(nbrs), nbrs)
		}
	case FormatEdge:
		for v := 0; v < n; v++ {
			for _, wid := range g.OutNeighbors(VertexID(v)) {
				enc.writeInt(v)
				bw.WriteByte(' ')
				enc.writeInt(int(wid))
				bw.WriteByte('\n')
			}
		}
	default:
		return fmt.Errorf("graph: unknown format %v", f)
	}
	return bw.Flush()
}

// lineEncoder formats integers into a reused scratch buffer.
type lineEncoder struct {
	bw      *bufio.Writer
	scratch []byte
}

func (e *lineEncoder) writeInt(x int) {
	e.scratch = strconv.AppendInt(e.scratch[:0], int64(x), 10)
	e.bw.Write(e.scratch)
}

func (e *lineEncoder) vertexLine(v VertexID, count int, nbrs []VertexID) {
	e.writeInt(int(v))
	if count >= 0 {
		e.bw.WriteByte(' ')
		e.writeInt(count)
	}
	for _, w := range nbrs {
		e.bw.WriteByte(' ')
		e.writeInt(int(w))
	}
	e.bw.WriteByte('\n')
}

// Decode parses a graph in format f from r. numVertices must be the
// total vertex count: the adj and edge formats may omit sink-only or
// isolated vertices, which nonetheless exist in the graph.
//
// Parsing works directly on the scanner's byte buffer: fields are
// subslices collected into a reused token list and integers are decoded
// without going through strings, so the loader allocates nothing per
// line — the datasets load once per run in every engine, which made the
// old string-based parse the largest allocation source in the harness.
func Decode(r io.Reader, f Format, numVertices int) (*Graph, error) {
	b := NewBuilder(numVertices)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	var fields [][]byte // subslices of the current line, reused
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		fields = splitFields(fields[:0], line)
		switch f {
		case FormatAdj:
			src, err := parseID(fields[0], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			for _, fs := range fields[1:] {
				dst, err := parseID(fs, numVertices)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
				b.AddEdge(src, dst)
			}
		case FormatAdjLong:
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: adj-long needs at least 2 fields", lineNo)
			}
			src, err := parseID(fields[0], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			count, err := parseInt(fields[1])
			if err != nil || count != len(fields)-2 {
				return nil, fmt.Errorf("graph: line %d: neighbor count %q does not match %d neighbors", lineNo, fields[1], len(fields)-2)
			}
			for _, fs := range fields[2:] {
				dst, err := parseID(fs, numVertices)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
				b.AddEdge(src, dst)
			}
		case FormatEdge:
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: edge format needs 2 fields, got %d", lineNo, len(fields))
			}
			src, err := parseID(fields[0], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			dst, err := parseID(fields[1], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			b.AddEdge(src, dst)
		default:
			return nil, fmt.Errorf("graph: unknown format %v", f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// splitFields appends the whitespace-separated fields of line to dst as
// subslices — the allocation-free strings.Fields.
func splitFields(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		start := i
		for i < len(line) && !asciiSpace(line[i]) {
			i++
		}
		if i > start {
			dst = append(dst, line[start:i])
		}
	}
	return dst
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// parseInt decodes a decimal integer from s without allocating.
func parseInt(s []byte) (int, error) {
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	const cutoff = math.MaxInt / 10
	x := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid syntax")
		}
		d := int(c - '0')
		if x > cutoff || (x == cutoff && d > math.MaxInt%10) {
			return 0, fmt.Errorf("value out of range")
		}
		x = x*10 + d
	}
	if neg {
		x = -x
	}
	return x, nil
}

func parseID(s []byte, n int) (VertexID, error) {
	id, err := parseInt(s)
	if err != nil {
		return 0, fmt.Errorf("bad vertex id %q: %v", s, err)
	}
	if id < 0 || id >= n {
		return 0, fmt.Errorf("vertex id %d out of range [0,%d)", id, n)
	}
	return VertexID(id), nil
}

// EncodedSize returns the exact number of bytes Encode would produce.
// HDFS chunking and load-time accounting use it without materializing
// the encoding twice.
func EncodedSize(g *Graph, f Format) int64 {
	var cw countingWriter
	if err := Encode(g, f, &cw); err != nil {
		return 0
	}
	return cw.n
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
