package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format is one of the paper's three dataset file formats (§4.3).
type Format int

const (
	// FormatAdj is an adjacency list: "src dst1 dst2 ...". Vertices
	// without out-edges may be omitted. Used by Hadoop, HaLoop, Giraph,
	// and GraphLab in the paper.
	FormatAdj Format = iota
	// FormatAdjLong requires a line per vertex and a neighbor count:
	// "src count dst1 dst2 ...". Required by Blogel so that vertices
	// with only in-edges exist.
	FormatAdjLong
	// FormatEdge has one "src dst" line per edge. Used by GraphX and
	// Flink Gelly.
	FormatEdge
)

// String returns the format name used in file extensions and logs.
func (f Format) String() string {
	switch f {
	case FormatAdj:
		return "adj"
	case FormatAdjLong:
		return "adj-long"
	case FormatEdge:
		return "edge"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Encode writes g to w in the given format. The byte layout matches the
// paper's description so that loaders exercise realistic parsing work.
func Encode(g *Graph, f Format, w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	switch f {
	case FormatAdj:
		for v := 0; v < n; v++ {
			nbrs := g.OutNeighbors(VertexID(v))
			if len(nbrs) == 0 {
				continue
			}
			writeVertexLine(bw, VertexID(v), -1, nbrs)
		}
	case FormatAdjLong:
		for v := 0; v < n; v++ {
			nbrs := g.OutNeighbors(VertexID(v))
			writeVertexLine(bw, VertexID(v), len(nbrs), nbrs)
		}
	case FormatEdge:
		for v := 0; v < n; v++ {
			for _, wid := range g.OutNeighbors(VertexID(v)) {
				bw.WriteString(strconv.Itoa(v))
				bw.WriteByte(' ')
				bw.WriteString(strconv.Itoa(int(wid)))
				bw.WriteByte('\n')
			}
		}
	default:
		return fmt.Errorf("graph: unknown format %v", f)
	}
	return bw.Flush()
}

func writeVertexLine(bw *bufio.Writer, v VertexID, count int, nbrs []VertexID) {
	bw.WriteString(strconv.Itoa(int(v)))
	if count >= 0 {
		bw.WriteByte(' ')
		bw.WriteString(strconv.Itoa(count))
	}
	for _, w := range nbrs {
		bw.WriteByte(' ')
		bw.WriteString(strconv.Itoa(int(w)))
	}
	bw.WriteByte('\n')
}

// Decode parses a graph in format f from r. numVertices must be the
// total vertex count: the adj and edge formats may omit sink-only or
// isolated vertices, which nonetheless exist in the graph.
func Decode(r io.Reader, f Format, numVertices int) (*Graph, error) {
	b := NewBuilder(numVertices)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch f {
		case FormatAdj:
			src, err := parseID(fields[0], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			for _, fs := range fields[1:] {
				dst, err := parseID(fs, numVertices)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
				b.AddEdge(src, dst)
			}
		case FormatAdjLong:
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: adj-long needs at least 2 fields", lineNo)
			}
			src, err := parseID(fields[0], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			count, err := strconv.Atoi(fields[1])
			if err != nil || count != len(fields)-2 {
				return nil, fmt.Errorf("graph: line %d: neighbor count %q does not match %d neighbors", lineNo, fields[1], len(fields)-2)
			}
			for _, fs := range fields[2:] {
				dst, err := parseID(fs, numVertices)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
				b.AddEdge(src, dst)
			}
		case FormatEdge:
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: edge format needs 2 fields, got %d", lineNo, len(fields))
			}
			src, err := parseID(fields[0], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			dst, err := parseID(fields[1], numVertices)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			b.AddEdge(src, dst)
		default:
			return nil, fmt.Errorf("graph: unknown format %v", f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

func parseID(s string, n int) (VertexID, error) {
	id, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad vertex id %q: %v", s, err)
	}
	if id < 0 || id >= n {
		return 0, fmt.Errorf("vertex id %d out of range [0,%d)", id, n)
	}
	return VertexID(id), nil
}

// EncodedSize returns the exact number of bytes Encode would produce.
// HDFS chunking and load-time accounting use it without materializing
// the encoding twice.
func EncodedSize(g *Graph, f Format) int64 {
	var cw countingWriter
	if err := Encode(g, f, &cw); err != nil {
		return 0
	}
	return cw.n
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
