package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// chain returns 0->1->2->...->n-1.
func chain(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if s := g.Stats(); s.Vertices != 0 {
		t.Fatalf("stats on empty graph: %+v", s)
	}
}

func TestBuilderCSR(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(2, 0)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Build()

	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2}) {
		t.Errorf("out(0) = %v, want [1 2]", got)
	}
	if got := g.InNeighbors(2); !reflect.DeepEqual(got, []VertexID{0, 1}) {
		t.Errorf("in(2) = %v, want [0 1]", got)
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 0 {
		t.Errorf("vertex 3 should be isolated")
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestDedupe(t *testing.T) {
	b := NewBuilder(2).Dedupe(true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d after dedupe, want 2", g.NumEdges())
	}
}

func TestSelfEdgeAccounting(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 0)
	b.AddEdge(1, 2)
	b.AddEdge(2, 2)
	g := b.Build()
	if g.SelfEdges() != 2 {
		t.Fatalf("SelfEdges = %d, want 2", g.SelfEdges())
	}
	clean := g.WithoutSelfEdges()
	if clean.SelfEdges() != 0 || clean.NumEdges() != 1 {
		t.Fatalf("WithoutSelfEdges left %d self edges of %d", clean.SelfEdges(), clean.NumEdges())
	}
	if clean.NumVertices() != 3 {
		t.Fatalf("WithoutSelfEdges changed vertex count")
	}
	// No self edges: same graph must be returned unchanged.
	if clean.WithoutSelfEdges() != clean {
		t.Error("WithoutSelfEdges should be identity when no self edges exist")
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	g := b.Build()
	s := g.Stats()
	if s.MaxOutDegree != 3 {
		t.Errorf("MaxOutDegree = %d, want 3", s.MaxOutDegree)
	}
	if s.MaxInDegree != 2 {
		t.Errorf("MaxInDegree = %d, want 2", s.MaxInDegree)
	}
	if s.AvgOutDegree != 1.0 {
		t.Errorf("AvgOutDegree = %f, want 1.0", s.AvgOutDegree)
	}
}

func TestUndirected(t *testing.T) {
	g := chain(3).Undirected()
	if g.NumEdges() != 4 {
		t.Fatalf("undirected chain(3) has %d edges, want 4", g.NumEdges())
	}
	if !reflect.DeepEqual(g.OutNeighbors(1), []VertexID{0, 2}) {
		t.Errorf("out(1) = %v, want [0 2]", g.OutNeighbors(1))
	}
}

func TestUndirectedKeepsSelfEdge(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	g := b.Build().Undirected()
	if g.NumEdges() != 1 {
		t.Fatalf("undirected self-loop graph has %d edges, want 1", g.NumEdges())
	}
}

func TestScaleFactorDefault(t *testing.T) {
	g := NewBuilder(1).Build()
	if g.ScaleFactor() != 1 {
		t.Fatalf("default ScaleFactor = %f, want 1", g.ScaleFactor())
	}
	g2 := NewBuilder(1).SetScaleFactor(5000).Build()
	if g2.ScaleFactor() != 5000 {
		t.Fatalf("ScaleFactor = %f, want 5000", g2.ScaleFactor())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// A graph with an isolated vertex and a sink-only vertex, which
	// stresses the differences between the three formats.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	b.AddEdge(3, 0)
	g := b.Build() // vertex 2 isolated, vertex 4 isolated

	for _, f := range []Format{FormatAdj, FormatAdjLong, FormatEdge} {
		var buf bytes.Buffer
		if err := Encode(g, f, &buf); err != nil {
			t.Fatalf("%v: encode: %v", f, err)
		}
		got, err := Decode(&buf, f, g.NumVertices())
		if err != nil {
			t.Fatalf("%v: decode: %v", f, err)
		}
		if !sameGraph(g, got) {
			t.Errorf("%v: round trip mismatch", f)
		}
	}
}

func TestAdjLongHasLinePerVertex(t *testing.T) {
	g := chain(3)
	var buf bytes.Buffer
	if err := Encode(g, FormatAdjLong, &buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if lines != 3 {
		t.Fatalf("adj-long produced %d lines, want one per vertex (3)", lines)
	}
	// adj format omits the sink-only final vertex.
	buf.Reset()
	if err := Encode(g, FormatAdj, &buf); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte{'\n'}); lines != 2 {
		t.Fatalf("adj produced %d lines, want 2", lines)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name  string
		f     Format
		input string
	}{
		{"edge wrong fields", FormatEdge, "0 1 2\n"},
		{"edge bad id", FormatEdge, "0 x\n"},
		{"edge out of range", FormatEdge, "0 99\n"},
		{"adj-long bad count", FormatAdjLong, "0 3 1\n"},
		{"adj-long short line", FormatAdjLong, "0\n"},
		{"adj bad id", FormatAdj, "0 zz\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader([]byte(tc.input)), tc.f, 3); err == nil {
				t.Errorf("Decode(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestDecodeSkipsCommentsAndBlank(t *testing.T) {
	input := "# header\n\n0 1\n"
	g, err := Decode(bytes.NewReader([]byte(input)), FormatEdge, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	g := chain(50)
	for _, f := range []Format{FormatAdj, FormatAdjLong, FormatEdge} {
		var buf bytes.Buffer
		if err := Encode(g, f, &buf); err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(g, f); got != int64(buf.Len()) {
			t.Errorf("%v: EncodedSize = %d, Encode produced %d bytes", f, got, buf.Len())
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := chain(5)
	d := BFSDistances(g, 0)
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("BFS distances = %v, want %v", d, want)
	}
	// From the tail nothing is reachable (directed chain).
	d = BFSDistances(g, 4)
	for v := 0; v < 4; v++ {
		if d[v] != -1 {
			t.Errorf("dist[%d] = %d, want -1", v, d[v])
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := chain(10)
	if ecc := Eccentricity(g, 0); ecc != 9 {
		t.Fatalf("Eccentricity = %d, want 9", ecc)
	}
	if d := EstimateDiameter(g, 3, 1); d != 9 {
		t.Fatalf("EstimateDiameter = %d, want 9 for a chain", d)
	}
}

func TestLargestComponentFraction(t *testing.T) {
	// Two components: sizes 3 and 1.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if f := LargestComponentFraction(g); f != 0.75 {
		t.Fatalf("LargestComponentFraction = %f, want 0.75", f)
	}
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if !reflect.DeepEqual(a.OutNeighbors(VertexID(v)), b.OutNeighbors(VertexID(v))) {
			return false
		}
	}
	return true
}

// Property: encode/decode round trips for random graphs in all formats.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		b := NewBuilder(n).Dedupe(true)
		m := rng.Intn(60)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		for _, format := range []Format{FormatAdj, FormatAdjLong, FormatEdge} {
			var buf bytes.Buffer
			if err := Encode(g, format, &buf); err != nil {
				return false
			}
			got, err := Decode(&buf, format, n)
			if err != nil {
				return false
			}
			if !sameGraph(g, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: in-edges are exactly the transpose of out-edges.
func TestQuickTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(120); i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		var fwd, bwd []Edge
		g.Edges(func(s, d VertexID) bool { fwd = append(fwd, Edge{s, d}); return true })
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(VertexID(v)) {
				bwd = append(bwd, Edge{u, VertexID(v)})
			}
		}
		sortEdges(fwd)
		sortEdges(bwd)
		return reflect.DeepEqual(fwd, bwd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

func TestDecodeRejectsOverflowingIDs(t *testing.T) {
	// 2^64 wraps to exactly 0 in naive accumulation; the parser must
	// report it instead of silently inserting edge (0,5).
	for _, in := range []string{"18446744073709551616 5", "20000000000000000005 5", "99999999999999999999999 5"} {
		if _, err := Decode(bytes.NewReader([]byte(in)), FormatEdge, 10); err == nil {
			t.Errorf("Decode accepted overflowing vertex id in %q", in)
		}
	}
}
