package graph

import "math/rand"

// BFSDistances returns the hop distance from source to every vertex over
// the directed out-edges, with -1 for unreachable vertices. It is the
// shared traversal primitive used by diameter estimation and by the
// single-thread oracles.
func BFSDistances(g *Graph, source VertexID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	if g.NumVertices() == 0 {
		return dist
	}
	dist[source] = 0
	frontier := []VertexID{source}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []VertexID
		for _, v := range frontier {
			for _, w := range g.OutNeighbors(v) {
				if dist[w] < 0 {
					dist[w] = level
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from source.
func Eccentricity(g *Graph, source VertexID) int {
	max := int32(0)
	for _, d := range BFSDistances(g, source) {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// EstimateDiameter estimates the diameter of the undirected view of g by
// a double-sweep heuristic repeated from `samples` random seeds: BFS from
// a random vertex, then BFS again from the farthest vertex found. The
// result is a lower bound that is exact on trees and very tight on road
// networks, which is where diameter matters in the paper.
func EstimateDiameter(g *Graph, samples int, seed int64) int {
	u := g.Undirected()
	n := u.NumVertices()
	if n == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	best := 0
	for s := 0; s < samples; s++ {
		start := VertexID(rng.Intn(n))
		dist := BFSDistances(u, start)
		far, farD := start, int32(0)
		for v, d := range dist {
			if d > farD {
				far, farD = VertexID(v), d
			}
		}
		if ecc := Eccentricity(u, far); ecc > best {
			best = ecc
		}
	}
	return best
}

// HashMinRounds returns the number of synchronous label-propagation
// rounds HashMin WCC needs on g until fixpoint — the exact iteration
// count a BSP engine will take, used to normalize iteration dilation
// for down-scaled datasets.
func HashMinRounds(g *Graph) int {
	u := g.Undirected()
	n := u.NumVertices()
	labels := make([]VertexID, n)
	for i := range labels {
		labels[i] = VertexID(i)
	}
	frontier := make([]VertexID, n)
	for i := range frontier {
		frontier[i] = VertexID(i)
	}
	inFrontier := make([]bool, n)
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		var next []VertexID
		for i := range inFrontier {
			inFrontier[i] = false
		}
		updates := make(map[VertexID]VertexID)
		for _, v := range frontier {
			for _, w := range u.OutNeighbors(v) {
				if labels[v] < labels[w] {
					if cur, ok := updates[w]; !ok || labels[v] < cur {
						updates[w] = labels[v]
					}
				}
			}
		}
		for w, l := range updates {
			labels[w] = l
			if !inFrontier[w] {
				inFrontier[w] = true
				next = append(next, w)
			}
		}
		frontier = next
	}
	return rounds
}

// LargestComponentFraction returns the fraction of vertices inside the
// largest weakly connected component. Twitter has a single giant
// component (paper §4.4.1); the dataset generators assert this property.
func LargestComponentFraction(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	u := g.Undirected()
	seen := make([]bool, n)
	best := 0
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		size := 0
		stack := []VertexID{VertexID(v)}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, w := range u.OutNeighbors(x) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return float64(best) / float64(n)
}
