package graph

import "math/rand"

// Traversal holds the double-buffered Frontier scratch reused across BFS
// sweeps, so repeated callers (EstimateDiameter runs 2×samples sweeps per
// dataset) pay for the frontier buffers once instead of regrowing them
// from nil at every level of every sweep. The zero value is ready to use.
type Traversal struct {
	cur, next Frontier
}

// BFSDistances computes the hop distance from source to every vertex over
// the directed out-edges into dist, with -1 for unreachable vertices, and
// returns dist (allocating it when nil). The sweep is direction-
// optimizing: top-down push over the frontier's out-edges while the
// frontier is sparse, bottom-up pull over the unvisited vertices'
// in-edges once the frontier's edge mass dominates (see FrontierAlpha/
// FrontierBeta). Both directions assign identical levels, so the output
// never depends on the mode schedule.
func (t *Traversal) BFSDistances(g *Graph, source VertexID, dist []int32) []int32 {
	n := g.NumVertices()
	if dist == nil {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 {
		return dist
	}
	t.cur.Resize(n)
	t.next.Resize(n)
	cur, next := &t.cur, &t.next

	dist[source] = 0
	cur.Add(source, g.OutDegree(source))
	remaining := int64(g.NumEdges()) - cur.Edges() // out-edge mass of unvisited vertices
	pull := false
	for level := int32(1); cur.Len() > 0; level++ {
		if pull {
			if cur.Sparse(n) {
				pull = false
			}
		} else if cur.Dense(remaining) {
			pull = true
		}
		if pull {
			for v := 0; v < n; v++ {
				if dist[v] >= 0 {
					continue
				}
				for _, u := range g.InNeighbors(VertexID(v)) {
					if cur.Contains(u) {
						dist[v] = level
						next.Add(VertexID(v), g.OutDegree(VertexID(v)))
						break
					}
				}
			}
		} else {
			for _, v := range cur.Members() {
				for _, w := range g.OutNeighbors(v) {
					if dist[w] < 0 {
						dist[w] = level
						next.Add(w, g.OutDegree(w))
					}
				}
			}
		}
		remaining -= next.Edges()
		cur, next = next, cur
		next.Clear()
	}
	cur.Clear()
	return dist
}

// BFSDistances returns the hop distance from source to every vertex over
// the directed out-edges, with -1 for unreachable vertices. It is the
// shared traversal primitive used by diameter estimation and by the
// single-thread oracles. Callers running many sweeps should reuse a
// Traversal and pass a dist buffer instead; this wrapper allocates fresh
// scratch per call.
func BFSDistances(g *Graph, source VertexID) []int32 {
	var t Traversal
	return t.BFSDistances(g, source, nil)
}

// Eccentricity returns the maximum finite BFS distance from source.
func Eccentricity(g *Graph, source VertexID) int {
	max := int32(0)
	for _, d := range BFSDistances(g, source) {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// EstimateDiameter estimates the diameter of the undirected view of g by
// a double-sweep heuristic repeated from `samples` random seeds: BFS from
// a random vertex, then BFS again from the farthest vertex found. The
// result is a lower bound that is exact on trees and very tight on road
// networks, which is where diameter matters in the paper. All 2×samples
// sweeps share one Traversal and one distance buffer.
func EstimateDiameter(g *Graph, samples int, seed int64) int {
	u := g.Undirected()
	n := u.NumVertices()
	if n == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	var t Traversal
	dist := make([]int32, n)
	best := 0
	for s := 0; s < samples; s++ {
		start := VertexID(rng.Intn(n))
		t.BFSDistances(u, start, dist)
		far, farD := start, int32(0)
		for v, d := range dist {
			if d > farD {
				far, farD = VertexID(v), d
			}
		}
		t.BFSDistances(u, far, dist)
		ecc := int32(0)
		for _, d := range dist {
			if d > ecc {
				ecc = d
			}
		}
		if int(ecc) > best {
			best = int(ecc)
		}
	}
	return best
}

// HashMinRounds returns the number of synchronous label-propagation
// rounds HashMin WCC needs on g until fixpoint — the exact iteration
// count a BSP engine will take, used to normalize iteration dilation for
// down-scaled datasets. The sweep is direction-optimizing: dense rounds
// pull the minimum over each vertex's full neighbor list, sparse rounds
// push only the frontier's labels. Updates commit after the scan in both
// modes, so every round sees only the previous round's labels and the
// round count is identical to a push-only BSP engine's.
func HashMinRounds(g *Graph) int {
	u := g.Undirected()
	n := u.NumVertices()
	labels := make([]VertexID, n)
	for i := range labels {
		labels[i] = VertexID(i)
	}
	cur, next := NewFrontier(n), NewFrontier(n)
	for v := 0; v < n; v++ {
		cur.Add(VertexID(v), u.OutDegree(VertexID(v)))
	}
	totalEdges := int64(u.NumEdges())
	// cand[w] is the best label proposed for w this round (-1 = none);
	// touched lists the vertices with a proposal so commit and reset stay
	// O(updates) instead of allocating a map per round.
	cand := make([]VertexID, n)
	for i := range cand {
		cand[i] = -1
	}
	touched := make([]VertexID, 0, n)
	rounds := 0
	for cur.Len() > 0 {
		rounds++
		if cur.Dense(totalEdges) {
			// Pull: non-frontier neighbors hold labels the vertex already
			// absorbed in an earlier round, so the min over the full
			// neighbor list equals the min over frontier neighbors.
			for w := 0; w < n; w++ {
				best := labels[w]
				for _, x := range u.OutNeighbors(VertexID(w)) {
					if labels[x] < best {
						best = labels[x]
					}
				}
				if best < labels[w] {
					cand[w] = best
					touched = append(touched, VertexID(w))
				}
			}
		} else {
			for _, v := range cur.Members() {
				for _, w := range u.OutNeighbors(v) {
					if labels[v] < labels[w] {
						if cand[w] < 0 {
							cand[w] = labels[v]
							touched = append(touched, w)
						} else if labels[v] < cand[w] {
							cand[w] = labels[v]
						}
					}
				}
			}
		}
		next.Clear()
		for _, w := range touched {
			labels[w] = cand[w]
			cand[w] = -1
			next.Add(w, u.OutDegree(w))
		}
		touched = touched[:0]
		cur, next = next, cur
	}
	return rounds
}

// LargestComponentFraction returns the fraction of vertices inside the
// largest weakly connected component. Twitter has a single giant
// component (paper §4.4.1); the dataset generators assert this property.
func LargestComponentFraction(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	u := g.Undirected()
	seen := make([]bool, n)
	best := 0
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		size := 0
		stack := []VertexID{VertexID(v)}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, w := range u.OutNeighbors(x) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return float64(best) / float64(n)
}
