// Package graph provides the in-memory graph substrate shared by every
// engine in this repository: a compact CSR (compressed sparse row)
// representation with both out- and in-adjacency, degree statistics, and
// the three on-disk formats used in the paper (adj, adj-long, edge).
//
// Graphs are directed. Vertex identifiers are dense integers in
// [0, NumVertices). Each graph carries a ScaleFactor: the number of
// paper-scale vertices/edges that one synthetic vertex/edge stands for.
// Engines multiply resource charges by the scale factor so that memory
// and time accounting reflect the paper-scale datasets while the actual
// computation runs on a small synthetic analogue.
package graph

import (
	"fmt"
	"slices"
	"sync"
)

// VertexID identifies a vertex. IDs are dense: 0 <= id < NumVertices.
type VertexID int32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Graph is an immutable directed graph in CSR form.
//
// The zero value is an empty graph; use a Builder to construct one.
type Graph struct {
	name string

	outOffsets []int32
	outEdges   []VertexID
	inOffsets  []int32
	inEdges    []VertexID

	selfEdges int
	scale     float64

	workOnce   sync.Once
	workPrefix []int64
}

// Name returns the dataset name ("twitter", "wrn", ...), possibly empty.
func (g *Graph) Name() string { return g.name }

// ScaleFactor reports how many paper-scale vertices/edges one synthetic
// vertex/edge represents. It is 1 for graphs built directly from data.
func (g *Graph) ScaleFactor() float64 {
	if g.scale <= 0 {
		return 1
	}
	return g.scale
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.outOffsets) == 0 {
		return 0
	}
	return len(g.outOffsets) - 1
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outEdges) }

// SelfEdges returns the number of edges with Src == Dst.
func (g *Graph) SelfEdges() int { return g.selfEdges }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outOffsets[v+1] - g.outOffsets[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// OutNeighbors returns the out-neighbors of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outEdges[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the in-neighbors of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inEdges[g.inOffsets[v]:g.inOffsets[v+1]]
}

// Edges calls fn for every directed edge. It stops early if fn returns false.
func (g *Graph) Edges(fn func(src, dst VertexID) bool) {
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			if !fn(VertexID(v), w) {
				return
			}
		}
	}
}

// WorkPrefix returns the prefix-summed per-vertex work weights used by
// the runtimes' edge-balanced shard plans (par.PlanPrefix): entry v is
// the total weight of vertices [0, v), where a vertex weighs
// 1 + outdeg + indeg — one unit of scan work plus one per incident edge
// in either direction, covering sends along out-edges and inbox volume
// arriving along in-edges. Both degree terms come straight from the CSR
// offset arrays (which are themselves degree prefix sums), so the array
// is filled in one O(V) pass, computed on first use and cached: the
// graph is immutable, and every engine run over it shares the result.
func (g *Graph) WorkPrefix() []int64 {
	g.workOnce.Do(func() {
		n := g.NumVertices()
		p := make([]int64, n+1)
		for v := 1; v <= n; v++ {
			p[v] = int64(v) + int64(g.outOffsets[v]) + int64(g.inOffsets[v])
		}
		g.workPrefix = p
	})
	return g.workPrefix
}

// Stats summarizes degree structure; see Table 3 of the paper.
type Stats struct {
	Vertices     int
	Edges        int
	AvgOutDegree float64
	MaxOutDegree int
	MaxInDegree  int
	SelfEdges    int
}

// Stats computes degree statistics over the graph. Both maxima come
// from one pass over the raw offset arrays: each degree is the delta of
// adjacent offsets, so the loop runs bounds-check-free instead of
// paying two checked subtractions per vertex through the accessors.
func (g *Graph) Stats() Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges(), SelfEdges: g.selfEdges}
	if s.Vertices == 0 {
		return s
	}
	maxOut, maxIn := int32(0), int32(0)
	prevOut, prevIn := g.outOffsets[0], g.inOffsets[0]
	for v := 1; v <= s.Vertices; v++ {
		if d := g.outOffsets[v] - prevOut; d > maxOut {
			maxOut = d
		}
		prevOut = g.outOffsets[v]
		if d := g.inOffsets[v] - prevIn; d > maxIn {
			maxIn = d
		}
		prevIn = g.inOffsets[v]
	}
	s.MaxOutDegree, s.MaxInDegree = int(maxOut), int(maxIn)
	s.AvgOutDegree = float64(s.Edges) / float64(s.Vertices)
	return s
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	name     string
	n        int
	edges    []Edge
	scale    float64
	dedupe   bool
	haveDups bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, scale: 1}
}

// SetName records the dataset name on the built graph.
func (b *Builder) SetName(name string) *Builder { b.name = name; return b }

// SetScaleFactor records the paper-scale multiplier on the built graph.
func (b *Builder) SetScaleFactor(s float64) *Builder { b.scale = s; return b }

// Dedupe removes duplicate edges at Build time when enabled.
func (b *Builder) Dedupe(on bool) *Builder { b.dedupe = on; return b }

// Reserve preallocates capacity for n edges, so callers that know the
// final edge count (Undirected, WithoutSelfEdges, loaders with a header)
// avoid the append growth copies.
func (b *Builder) Reserve(n int) *Builder {
	if cap(b.edges) < n {
		edges := make([]Edge, len(b.edges), n)
		copy(edges, b.edges)
		b.edges = edges
	}
	return b
}

// AddEdge appends the directed edge (src, dst). It panics if either
// endpoint is out of range, since that is a programming error in the
// generator or loader, not a runtime condition.
func (b *Builder) AddEdge(src, dst VertexID) {
	if src < 0 || int(src) >= b.n || dst < 0 || int(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// NumEdges returns the number of edges accumulated so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build constructs the CSR graph. The Builder must not be reused after.
//
// Edge ordering is (Src, Dst) ascending, exactly as the former
// comparator sort produced, but via a two-pass counting sort over Src —
// count degrees, then scatter destinations straight into the CSR edge
// array — which is O(V+E) with no comparator dispatch. Each vertex's
// destination run is then sorted in place; runs are typically tiny
// (average degree), so this is the cheap tail of the work.
func (b *Builder) Build() *Graph {
	g := &Graph{name: b.name, scale: b.scale}
	g.outOffsets = make([]int32, b.n+1)
	for _, e := range b.edges {
		g.outOffsets[e.Src+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outOffsets[v+1] += g.outOffsets[v]
	}
	g.outEdges = make([]VertexID, len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, g.outOffsets[:b.n])
	for _, e := range b.edges {
		g.outEdges[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	for v := 0; v < b.n; v++ {
		slices.Sort(g.outEdges[g.outOffsets[v]:g.outOffsets[v+1]])
	}

	if b.dedupe && b.n > 0 {
		// Compact each sorted run in place, sliding offsets down.
		w := int32(0)
		readLo := g.outOffsets[0]
		for v := 0; v < b.n; v++ {
			readHi := g.outOffsets[v+1]
			g.outOffsets[v] = w
			for i := readLo; i < readHi; i++ {
				if i > readLo && g.outEdges[i] == g.outEdges[i-1] {
					continue
				}
				g.outEdges[w] = g.outEdges[i]
				w++
			}
			readLo = readHi
		}
		g.outOffsets[b.n] = w
		g.outEdges = g.outEdges[:w]
	}

	inDeg := make([]int32, b.n)
	for v := 0; v < b.n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			inDeg[w]++
			if w == VertexID(v) {
				g.selfEdges++
			}
		}
	}
	g.inOffsets = make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		g.inOffsets[v+1] = g.inOffsets[v] + inDeg[v]
	}
	g.inEdges = make([]VertexID, len(g.outEdges))
	copy(cursor, g.inOffsets[:b.n])
	for v := 0; v < b.n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			g.inEdges[cursor[w]] = VertexID(v)
			cursor[w]++
		}
	}
	// In-neighbor lists are filled in src order, hence already sorted.
	b.edges = nil
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// Undirected returns a new graph in which every edge (u,v) also appears
// as (v,u). Duplicate edges are removed. WCC and diameter estimation use
// the undirected view.
func (g *Graph) Undirected() *Graph {
	b := NewBuilder(g.NumVertices())
	b.SetName(g.name).SetScaleFactor(g.ScaleFactor()).Dedupe(true)
	b.Reserve(2*g.NumEdges() - g.selfEdges) // exact pre-dedupe edge count
	g.Edges(func(src, dst VertexID) bool {
		b.AddEdge(src, dst)
		if src != dst {
			b.AddEdge(dst, src)
		}
		return true
	})
	return b.Build()
}

// WithoutSelfEdges returns a copy of g with self-edges removed. GraphLab
// (PowerGraph) cannot represent self-edges (paper §3.1.1); the GAS engine
// uses this to mirror that limitation.
func (g *Graph) WithoutSelfEdges() *Graph {
	if g.selfEdges == 0 {
		return g
	}
	b := NewBuilder(g.NumVertices())
	b.SetName(g.name).SetScaleFactor(g.ScaleFactor())
	b.Reserve(g.NumEdges() - g.selfEdges) // exact final edge count
	g.Edges(func(src, dst VertexID) bool {
		if src != dst {
			b.AddEdge(src, dst)
		}
		return true
	})
	return b.Build()
}
