package graph

import "fmt"

// CSR exposes the raw arrays of a Graph for binary persistence
// (internal/snapshot). The slices alias the graph's internal storage
// and must not be modified.
type CSR struct {
	Name      string
	Scale     float64
	SelfEdges int

	OutOffsets []int32
	OutEdges   []VertexID
	InOffsets  []int32
	InEdges    []VertexID

	// WorkPrefix is the cached per-vertex work prefix sum (see
	// Graph.WorkPrefix). Optional on input to FromCSR; always set on
	// RawCSR output so snapshots persist it and loads skip the O(V)
	// recompute.
	WorkPrefix []int64
}

// RawCSR returns the graph's raw CSR arrays, computing the work prefix
// if it has not been needed yet. The slices alias internal storage.
func (g *Graph) RawCSR() CSR {
	out := g.outOffsets
	if out == nil {
		out = []int32{0} // zero-value Graph: normalize to an explicit empty CSR
	}
	in := g.inOffsets
	if in == nil {
		in = []int32{0}
	}
	return CSR{
		Name:       g.name,
		Scale:      g.ScaleFactor(),
		SelfEdges:  g.selfEdges,
		OutOffsets: out,
		OutEdges:   g.outEdges,
		InOffsets:  in,
		InEdges:    g.inEdges,
		WorkPrefix: g.WorkPrefix(),
	}
}

// FromCSR constructs a Graph that adopts the given arrays without
// copying them — the zero-copy half of snapshot loading. The caller
// must not modify the slices afterwards.
//
// Because the arrays may come from an untrusted file, FromCSR validates
// every invariant the engines rely on: offset arrays start at 0, are
// nondecreasing, and end at the edge count; every edge endpoint is in
// range; per-vertex neighbor runs are sorted (Builder.Build guarantees
// this, and the triangle/dedupe paths depend on it); in-degrees implied
// by InOffsets match the out-edge transpose; the self-edge count
// matches; and WorkPrefix, when present, equals the recomputed prefix.
// The checks are single linear passes over the arrays — far cheaper
// than the text parse they replace.
func FromCSR(c CSR) (*Graph, error) {
	n := len(c.OutOffsets) - 1
	if n < 0 {
		return nil, fmt.Errorf("graph: csr: empty out-offset array")
	}
	if len(c.InOffsets) != n+1 {
		return nil, fmt.Errorf("graph: csr: in-offset length %d, want %d", len(c.InOffsets), n+1)
	}
	if len(c.InEdges) != len(c.OutEdges) {
		return nil, fmt.Errorf("graph: csr: %d in-edges vs %d out-edges", len(c.InEdges), len(c.OutEdges))
	}
	if err := checkOffsets("out", c.OutOffsets, len(c.OutEdges)); err != nil {
		return nil, err
	}
	if err := checkOffsets("in", c.InOffsets, len(c.InEdges)); err != nil {
		return nil, err
	}
	// One pass over the out-edges checks ranges, run sortedness, the
	// self-edge count, and tallies the in-degrees of the transpose;
	// one pass over the in-edges checks ranges and sortedness.
	inDeg := make([]int32, n+1)
	selfEdges, err := checkRuns("out", c.OutOffsets, c.OutEdges, n, inDeg)
	if err != nil {
		return nil, err
	}
	if selfEdges != c.SelfEdges {
		return nil, fmt.Errorf("graph: csr: self-edge count %d, out-edges contain %d", c.SelfEdges, selfEdges)
	}
	if _, err := checkRuns("in", c.InOffsets, c.InEdges, n, nil); err != nil {
		return nil, err
	}
	// The in-offsets must describe the transpose of the out-edges:
	// vertex v's in-degree is the number of out-edges targeting v.
	for v := 0; v < n; v++ {
		if d := c.InOffsets[v+1] - c.InOffsets[v]; d != inDeg[v] {
			return nil, fmt.Errorf("graph: csr: vertex %d in-degree %d, out-edge transpose has %d", v, d, inDeg[v])
		}
	}
	if c.WorkPrefix != nil {
		if len(c.WorkPrefix) != n+1 {
			return nil, fmt.Errorf("graph: csr: work-prefix length %d, want %d", len(c.WorkPrefix), n+1)
		}
		for v := 0; v <= n; v++ {
			if want := int64(v) + int64(c.OutOffsets[v]) + int64(c.InOffsets[v]); c.WorkPrefix[v] != want {
				return nil, fmt.Errorf("graph: csr: work-prefix[%d] = %d, want %d", v, c.WorkPrefix[v], want)
			}
		}
	}
	g := &Graph{
		name:       c.Name,
		scale:      c.Scale,
		selfEdges:  c.SelfEdges,
		outOffsets: c.OutOffsets,
		outEdges:   c.OutEdges,
		inOffsets:  c.InOffsets,
		inEdges:    c.InEdges,
	}
	if c.WorkPrefix != nil {
		g.workOnce.Do(func() { g.workPrefix = c.WorkPrefix })
	}
	return g, nil
}

func checkOffsets(which string, off []int32, edges int) error {
	if off[0] != 0 {
		return fmt.Errorf("graph: csr: %s-offsets start at %d, want 0", which, off[0])
	}
	for v := 1; v < len(off); v++ {
		if off[v] < off[v-1] {
			return fmt.Errorf("graph: csr: %s-offsets decrease at vertex %d", which, v)
		}
	}
	if int(off[len(off)-1]) != edges {
		return fmt.Errorf("graph: csr: %s-offsets end at %d, want %d edges", which, off[len(off)-1], edges)
	}
	return nil
}

// checkRuns validates every neighbor id is in range and every
// per-vertex run is sorted nondecreasing. When deg is non-nil it also
// tallies per-target degrees (for the transpose check) and returns the
// number of self-referencing entries. Load-path validation is these
// two linear passes over the hot arrays, so the inner loop is kept
// minimal: the unsigned compare fuses the negative and upper-bound
// checks, and sortedness rides the value already in hand.
func checkRuns(which string, off []int32, edges []VertexID, n int, deg []int32) (int, error) {
	self, limit := 0, uint32(n)
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, e := range edges[off[v]:off[v+1]] {
			w := int32(e)
			if uint32(w) >= limit {
				return 0, fmt.Errorf("graph: csr: %s-edge of vertex %d targets %d, out of range [0,%d)", which, v, w, n)
			}
			if w < prev {
				return 0, fmt.Errorf("graph: csr: %s-neighbor run of vertex %d not sorted", which, v)
			}
			prev = w
			if deg != nil {
				deg[w]++
				if int(w) == v {
					self++
				}
			}
		}
	}
	return self, nil
}
