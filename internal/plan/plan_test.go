package plan

import (
	"reflect"
	"sync"
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/hdfs"
	"graphbench/internal/metrics"
	"graphbench/internal/sim"
)

// testProfile builds the profile of a paper dataset exactly the way
// core.TryDataset does, at the default scale and seed.
func testProfile(t testing.TB, name datasets.Name) *Profile {
	t.Helper()
	g := datasets.Generate(name, datasets.Options{Scale: datasets.DefaultScale, Seed: 1})
	src := datasets.SourceVertex(g, 42)
	d, err := engine.Prepare(hdfs.New(), g, "data/"+string(name), 64, src)
	if err != nil {
		t.Fatal(err)
	}
	d.DilationSSSP = datasets.TraversalDilation(name, g, src)
	d.DilationWCC = datasets.WCCDilation(name, g)
	return NewProfile(d, g)
}

var workloads = []string{"pagerank", "wcc", "sssp", "khop", "triangle", "lpa"}

// TestDecideDeterministic pins the planner's central contract: the
// same snapshot and request produce bit-identical decisions and traces
// — across fresh planners, across repeats on one planner, and under
// concurrent access (run with -race).
func TestDecideDeterministic(t *testing.T) {
	pr := testProfile(t, datasets.Twitter)
	for _, w := range workloads {
		for _, m := range []int{16, 64} {
			req := Request{Dataset: string(datasets.Twitter), Workload: w, Machines: m}
			a := New().Decide(pr, req)
			b := New().Decide(pr, req)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%d: fresh planners disagree:\n%s\nvs\n%s", w, m, a.Trace(), b.Trace())
			}
			if a.Trace() != b.Trace() {
				t.Fatalf("%s/%d: traces differ", w, m)
			}

			p := New()
			first := p.Decide(pr, req)
			const n = 8
			var wg sync.WaitGroup
			got := make([]*Decision, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = p.Decide(pr, req)
				}(i)
			}
			wg.Wait()
			for i, d := range got {
				if !reflect.DeepEqual(first, d) {
					t.Fatalf("%s/%d: concurrent decide %d diverged", w, m, i)
				}
			}
		}
	}
}

// TestDecideSticky: once a request cell is decided, telemetry cannot
// flip it — a repeat Decide after Observe returns the pinned decision,
// so downstream caches keyed on the decision stay stable.
func TestDecideSticky(t *testing.T) {
	pr := testProfile(t, datasets.Twitter)
	req := Request{Dataset: string(datasets.Twitter), Workload: "pagerank", Machines: 16}
	p := New()
	first := p.Decide(pr, req)

	// Feed back telemetry wildly different from the prediction, as a
	// tiny test-scale run produces.
	p.Observe(first, metrics.Resource{
		TimeSec: 1e6, CPUSec: 1e6, MemTotalBytes: 1 << 40, MemMaxBytes: 1 << 38,
		NetBytes: 1 << 40, Machines: req.Machines, Status: "OK",
	})
	if first.Realized == nil || first.RealizedScore == 0 {
		t.Fatal("Observe did not record realized cost on the decision")
	}

	second := p.Decide(pr, req)
	if second.Realized != nil || second.RealizedScore != 0 {
		t.Fatal("repeat decision carries a previous caller's realized cost")
	}
	first.Realized, first.RealizedScore = nil, 0
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("telemetry flipped a pinned decision:\n%s\nvs\n%s", first.Trace(), second.Trace())
	}
}

// TestDecideNeverWorseThanFixed is the planner's quality bound: by
// argmin construction, the chosen configuration's modeled cost never
// exceeds the best fixed configuration's — the documented bound is
// exactly zero, for every dataset class, workload, and cluster size.
func TestDecideNeverWorseThanFixed(t *testing.T) {
	for _, name := range []datasets.Name{datasets.Twitter, datasets.WRN, datasets.UK} {
		pr := testProfile(t, name)
		p := New()
		for _, w := range workloads {
			for _, m := range []int{16, 32, 64, 128} {
				d := p.Decide(pr, Request{Dataset: string(name), Workload: w, Machines: m})
				if len(d.Candidates) == 0 {
					t.Fatalf("%s/%s/%d: no candidates", name, w, m)
				}
				best := d.Candidates[0].Score
				for _, c := range d.Candidates {
					if c.Score < best {
						best = c.Score
					}
				}
				if d.Score > best {
					t.Errorf("%s/%s/%d: chose %s at %.3f, best fixed is %.3f",
						name, w, m, d.System, d.Score, best)
				}
			}
		}
	}
}

// TestDecideConfiguration spot-checks the configuration heuristics on
// profiles with known shapes.
func TestDecideConfiguration(t *testing.T) {
	twitter := testProfile(t, datasets.Twitter)
	wrn := testProfile(t, datasets.WRN)

	d := New().Decide(twitter, Request{Dataset: string(datasets.Twitter), Workload: "pagerank", Machines: 16})
	if d.ShardPlan != engine.ShardPlanWeighted {
		t.Errorf("twitter skew %.1f chose %s shard plan, want weighted", twitter.Skew, d.ShardPlan)
	}
	if d.Direction != engine.DirectionAuto {
		t.Error("pagerank should direction-optimize")
	}
	if d.Shards < 1 || d.Shards > maxShards {
		t.Errorf("shards %d out of range", d.Shards)
	}
	if d.MemoryTier != engine.TierAuto {
		t.Error("unbudgeted request picked a non-default memory tier")
	}

	d = New().Decide(wrn, Request{Dataset: string(datasets.WRN), Workload: "sssp", Machines: 16})
	if d.ShardPlan != engine.ShardPlanUniform {
		t.Errorf("wrn skew %.1f chose %s shard plan, want uniform", wrn.Skew, d.ShardPlan)
	}
	if d.Direction != engine.DirectionPush {
		t.Errorf("deep traversal (depth %d) should disable direction switching", wrn.DepthSSSP)
	}

	d = New().Decide(twitter, Request{
		Dataset: string(datasets.Twitter), Workload: "pagerank",
		Machines: 16, MemoryBudget: 1,
	})
	if d.MemoryTier != engine.TierSpill {
		t.Errorf("1-byte budget under a %d-byte working set kept tier %s", twitter.HostBytes, d.MemoryTier)
	}
}

// TestPredictCalibratedExact: a class reference dataset at an observed
// cluster size predicts from the exact grid cell, not the curve fit.
func TestPredictCalibratedExact(t *testing.T) {
	pr := testProfile(t, datasets.Twitter)
	for _, m := range []int{16, 32, 64, 128} {
		p := predict(pr, "giraph", "pagerank", m)
		if p.Source != "calibrated" {
			t.Fatalf("m=%d: source %q, want calibrated", m, p.Source)
		}
	}
	if p := predict(pr, "giraph", "pagerank", 48); p.Source != "curve" {
		t.Fatalf("unobserved cluster size: source %q, want curve", p.Source)
	}
}

// TestPredictFailures pins the failure predictors against known paper
// outcomes at full scale.
func TestPredictFailures(t *testing.T) {
	clueweb := &Profile{
		Dataset:       string(datasets.ClueWeb),
		Class:         ClassWeb,
		PaperVertices: datasets.SpecFor(datasets.ClueWeb).PaperVertices,
		PaperEdges:    datasets.SpecFor(datasets.ClueWeb).PaperEdges,
		Vertices:      9784, Edges: 425000,
		DepthSSSP: 40, DepthWCC: 40,
	}
	// Blogel-B's MPI partitioner overflows past 2^29 vertices.
	if p := predict(clueweb, "blogel-b", "pagerank", 128); p.Status != "MPI" {
		t.Errorf("clueweb blogel-b: status %q, want MPI", p.Status)
	}
	if clueweb.PaperVertices <= mpiVertexLimit {
		t.Fatal("test fixture no longer exceeds the MPI vertex limit")
	}
}

// TestClassify covers both the by-name path and the shape fallback.
func TestClassify(t *testing.T) {
	cases := []struct {
		dataset  string
		skew     float64
		diameter int
		want     string
	}{
		{"twitter", 0, 0, ClassSocial},
		{"wrn", 0, 0, ClassRoad},
		{"uk200705", 0, 0, ClassWeb},
		{"clueweb", 0, 0, ClassWeb},
		{"custom", 2.0, 128, ClassRoad},  // uniform degree, huge diameter
		{"custom", 30.0, 5, ClassSocial}, // power-law, tiny diameter
		{"custom", 6.0, 12, ClassWeb},    // in between
	}
	for _, c := range cases {
		if got := Classify(c.dataset, c.skew, c.diameter); got != c.want {
			t.Errorf("Classify(%q, %v, %d) = %q, want %q", c.dataset, c.skew, c.diameter, got, c.want)
		}
	}
}

// TestScore pins the composite cost formula and the failure penalty.
func TestScore(t *testing.T) {
	p := Prediction{Status: "OK", TimeSec: 100, MemTotal: 2 << 30, NetBytes: 4 << 30}
	got := Score(p, 16)
	want := 100.0 + WeightMemory*2 + WeightNetwork*4 + WeightMachines*16*100
	if got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	if got := Score(Prediction{Status: "TO", TimeSec: 1}, 16); got != FailurePenalty {
		t.Fatalf("failure score = %v, want the flat penalty %v", got, FailurePenalty)
	}
	if FailurePenalty != sim.TimeoutSeconds {
		t.Fatal("failure penalty drifted from the simulation timeout")
	}
}

func BenchmarkPlanner(b *testing.B) {
	pr := testProfile(b, datasets.Twitter)
	req := Request{Dataset: string(datasets.Twitter), Workload: "pagerank", Machines: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh planner each iteration: sticky decisions would turn
		// repeats into a map hit and benchmark nothing.
		if d := New().Decide(pr, req); d.System == "" {
			b.Fatal("empty decision")
		}
	}
}
