package plan

import (
	"graphbench/internal/metrics"
	"graphbench/internal/sim"
)

// Composite resource-cost weights. The planner optimizes a scalar
// blend of the resource-efficiency study's axes — wall time, total
// memory footprint, network traffic, and machine-seconds — rather than
// wall time alone, so a system that is marginally faster but hogs the
// cluster loses to a lean one:
//
//	Score = Time + WeightMemory·MemTotalGB + WeightNetwork·NetGB
//	      + WeightMachines·machines·Time
//
// Failed runs (any predicted status other than OK) score the flat
// FailurePenalty — the paper's 24-hour cap, which is what a failure
// costs an operator who had to wait for it.
const (
	// WeightMemory is seconds charged per GB of summed per-machine
	// peak memory.
	WeightMemory = 0.05
	// WeightNetwork is seconds charged per GB of network traffic.
	WeightNetwork = 0.05
	// WeightMachines is seconds charged per machine-second occupied
	// (the cluster-occupancy term).
	WeightMachines = 0.01
	// FailurePenalty is the score of a predicted failure: the paper's
	// execution cap in seconds.
	FailurePenalty = sim.TimeoutSeconds
)

const bytesPerGB = float64(1 << 30)

// Score collapses a prediction into the planner's scalar objective at
// a given cluster size. Lower is better.
func Score(p Prediction, machines int) float64 {
	if p.Status != "OK" {
		return FailurePenalty
	}
	return p.TimeSec +
		WeightMemory*(float64(p.MemTotal)/bytesPerGB) +
		WeightNetwork*(float64(p.NetBytes)/bytesPerGB) +
		WeightMachines*float64(machines)*p.TimeSec
}

// ResourceScore scores realized run telemetry on the same scale as
// Score, so predicted and realized costs are directly comparable.
func ResourceScore(r metrics.Resource) float64 {
	return Score(Prediction{
		Status:   r.Status,
		TimeSec:  r.TimeSec,
		CPUSec:   r.CPUSec,
		MemTotal: r.MemTotalBytes,
		MemMax:   r.MemMaxBytes,
		NetBytes: r.NetBytes,
	}, r.Machines)
}
