// Package plan is the adaptive engine/configuration planner: given a
// dataset profile and a request (workload, machine budget), it selects
// the distributed graph system and run configuration with the lowest
// predicted composite resource cost, and records a full decision trace
// so every choice is auditable.
//
// The paper's central output (Tables 6–10) is a static answer to
// "which system wins where". This package operationalizes it: the
// tables' modeled costs, condensed into a calibration table
// (model_data.go) of per-(system, workload, graph-class) cost curves
// and exact grid cells, become a cost model a planner can query at
// request time.
//
// # Decision inputs
//
// A Profile is the planner's snapshot of a prepared dataset: vertex
// and edge counts, degree skew, density, a sampled effective-diameter
// estimate, paper-scale traversal depths (SSSP eccentricity and
// hash-min WCC rounds, both dilation-adjusted), and an in-core
// working-set estimate. All fields are deterministic functions of the
// graph snapshot (the diameter sample seed is fixed), which makes
// decisions bit-deterministic per snapshot.
//
// # Cost model
//
// Each candidate system is forecast on four axes — wall time, CPU
// time, memory footprint, network traffic — either from the exact
// calibrated grid cell (when the request names a class reference
// dataset at an observed cluster size; modeled costs are
// bit-deterministic, so grid cells are ground truth, not samples) or
// by extrapolating the fitted a/m + b + c·m curves with work- and
// iteration-ratio scaling. Failure predictors encode the paper's
// failure taxonomy: Blogel-B's MPI int32 overflow past 2^29 vertices,
// HaLoop's shuffle failures on wide clusters with long loops,
// timeouts at the 24 h cap, and OOM above 92% of per-machine memory.
//
// The axes collapse into one scalar (see Score):
//
//	Score = Time + 0.05·MemTotalGB + 0.05·NetGB + 0.01·machines·Time
//
// with predicted failures scoring a flat 24 h penalty. The planner
// picks the argmin over candidates; ties break to the
// lexicographically first system key, so the choice is deterministic.
//
// Shard count, shard plan (weighted vs uniform), direction mode, and
// memory tier are then set by documented profile heuristics (see
// Decide) — these knobs never change modeled cost, only host wall
// time, so they ride along with the engine choice rather than being
// scored.
//
// # Telemetry feedback
//
// After a planned run executes, Planner.Observe feeds the realized
// metrics.Resource back into the model: later first-time decisions
// that consider that exact (dataset, workload, system, machines)
// configuration use the realized values in place of the prediction.
// Decisions themselves are sticky — the first Decide for a request
// cell is pinned for the planner's lifetime and repeats return it
// unchanged — so downstream result caches keyed on the decision stay
// stable while telemetry accumulates.
//
// # Trace format
//
// Every Decision carries its audit trail: the request, the profile,
// every candidate with status/score/source ("calibrated", "curve", or
// "observed"), the chosen configuration, and — after Observe — the
// realized cost beside the predicted one. Decision.Summary is the
// one-line form (the X-Graphserve-Plan response header);
// Decision.Trace is the multi-line block the graphbench planner
// artifact prints; the struct itself marshals to JSON for /metrics.
//
// # Regenerating the calibration table
//
// model_data.go is generated from a full experiment grid log:
//
//	go run ./cmd/graphbench -grid -log runs.jsonl
//
// at datasets.DefaultScale, then least-squares fitting value(m) =
// a/m + b + c·m per (system, workload, class, axis) over the observed
// cluster sizes, keeping the exact cells alongside the curves.
package plan
