package plan

import (
	"fmt"
	"strings"

	"graphbench/internal/engine"
	"graphbench/internal/metrics"
)

// Candidate is one scored configuration in a decision trace.
type Candidate struct {
	System     string     `json:"system"`
	Prediction Prediction `json:"prediction"`
	Score      float64    `json:"score"`
}

// Decision is the planner's answer to one Request, carrying the full
// audit trail: the inputs (request and profile), every candidate with
// its forecast and score, the chosen configuration, and — once the run
// executed and was Observed — the realized cost next to the predicted
// one.
type Decision struct {
	Request Request  `json:"request"`
	Profile *Profile `json:"profile"`

	// Chosen configuration.
	System     string            `json:"system"` // system key (core.SystemByKey resolves it)
	Machines   int               `json:"machines"`
	Shards     int               `json:"shards"`
	ShardPlan  engine.ShardPlan  `json:"-"`
	Direction  engine.Direction  `json:"-"`
	MemoryTier engine.MemoryTier `json:"-"`

	Predicted  Prediction  `json:"predicted"`
	Score      float64     `json:"score"`
	Candidates []Candidate `json:"candidates"`

	// Realized telemetry and its composite score, set by
	// Planner.Observe after the run.
	Realized      *metrics.Resource `json:"realized,omitempty"`
	RealizedScore float64           `json:"realized_score,omitempty"`
}

// Key identifies the decision's request cell.
func (d *Decision) Key() string { return d.Request.Key() }

// Summary is the one-line form of the decision, used in response
// headers and run logs:
//
//	system=giraph shards=12 plan=weighted dir=auto tier=auto score=123.4
func (d *Decision) Summary() string {
	return fmt.Sprintf("system=%s shards=%d plan=%s dir=%s tier=%s score=%.1f",
		d.System, d.Shards, d.ShardPlan, directionName(d.Direction), d.MemoryTier, d.Score)
}

// Trace renders the full audit trail as an indented multi-line block:
// inputs, every candidate score, the chosen configuration, and the
// realized cost when present.
func (d *Decision) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s @ %d machines\n", d.Request.Key(), d.Machines)
	p := d.Profile
	fmt.Fprintf(&b, "  profile: class=%s V=%d E=%d skew=%.1f diam=%d depth(sssp=%d wcc=%d)\n",
		p.Class, p.Vertices, p.Edges, p.Skew, p.Diameter, p.DepthSSSP, p.DepthWCC)
	fmt.Fprintf(&b, "  candidates:\n")
	for _, c := range d.Candidates {
		marker := " "
		if c.System == d.System {
			marker = "*"
		}
		fmt.Fprintf(&b, "  %s %-10s %-4s score=%10.1f time=%9.1fs mem=%s net=%s [%s]\n",
			marker, c.System, c.Prediction.Status, c.Score, c.Prediction.TimeSec,
			metrics.FmtBytes(c.Prediction.MemTotal), metrics.FmtBytes(c.Prediction.NetBytes),
			c.Prediction.Source)
	}
	fmt.Fprintf(&b, "  chosen: %s\n", d.Summary())
	if d.Realized != nil {
		fmt.Fprintf(&b, "  realized: status=%s time=%.1fs mem=%s net=%s score=%.1f\n",
			d.Realized.Status, d.Realized.TimeSec, metrics.FmtBytes(d.Realized.MemTotalBytes),
			metrics.FmtBytes(d.Realized.NetBytes), d.RealizedScore)
	}
	return b.String()
}

// directionName names a direction policy for traces (engine.Direction
// has no String method of its own).
func directionName(dir engine.Direction) string {
	switch dir {
	case engine.DirectionPush:
		return "push"
	case engine.DirectionPull:
		return "pull"
	default:
		return "auto"
	}
}
