package plan

import (
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is the documentation gate CI runs for
// this package: every exported type, function, method, constant, and
// variable must carry a doc comment. The planner is the subsystem
// operators reason about when a decision surprises them — undocumented
// surface here is a support incident later.
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := pkgs["plan"]
	if !ok {
		t.Fatalf("package plan not found in %v", pkgs)
	}
	d := doc.New(p, "graphbench/internal/plan", 0)

	var missing []string
	undocumented := func(kind, name, docText string) {
		if strings.TrimSpace(docText) == "" {
			missing = append(missing, kind+" "+name)
		}
	}
	for _, f := range d.Funcs {
		undocumented("func", f.Name, f.Doc)
	}
	for _, typ := range d.Types {
		undocumented("type", typ.Name, typ.Doc)
		for _, f := range typ.Funcs {
			undocumented("func", f.Name, f.Doc)
		}
		for _, m := range typ.Methods {
			undocumented("method", typ.Name+"."+m.Name, m.Doc)
		}
		for _, c := range typ.Consts {
			undocumented("const group", strings.Join(c.Names, ","), c.Doc)
		}
		for _, v := range typ.Vars {
			undocumented("var group", strings.Join(v.Names, ","), v.Doc)
		}
	}
	for _, c := range d.Consts {
		undocumented("const group", strings.Join(c.Names, ","), c.Doc)
	}
	for _, v := range d.Vars {
		undocumented("var group", strings.Join(v.Names, ","), v.Doc)
	}
	if d.Doc == "" {
		missing = append(missing, "package plan (package comment)")
	}
	if len(missing) > 0 {
		t.Fatalf("exported symbols without doc comments:\n  %s", strings.Join(missing, "\n  "))
	}
}
