package plan

import (
	"sort"

	"graphbench/internal/datasets"
	"graphbench/internal/sim"
)

// curve is one least-squares cost curve over the cluster size m:
// value(m) = a/m + b + c*m. The a term captures perfectly parallel
// work, b the serial floor, c the per-machine overhead (coordination,
// replicated state). Coefficients are fitted offline to the grid
// observations in model_data.go.
type curve struct{ a, b, c float64 }

func (c curve) at(m int) float64 {
	fm := float64(m)
	return c.a/fm + c.b + c.c*fm
}

// calibCell is one exact grid observation: the modeled outcome of
// (system, workload, class-reference dataset) at one cluster size.
// Because modeled costs are bit-deterministic, these are not samples
// but ground truth — when a request matches the reference workload
// shape the planner predicts from the cell, not the fitted curve.
type calibCell struct {
	Status string // sim failure code, or "OK"
	Time   float64
	MemTot float64
	MemMax float64
	Net    float64
	CPU    float64
}

// calibEntry aggregates the calibration of one (system, workload,
// graph class): fitted curves for every cost axis, the observed
// iteration count at the class reference, and the exact per-cluster-
// size cells.
type calibEntry struct {
	Time   curve
	MemMax curve
	MemTot curve
	Net    curve
	CPU    curve
	Iters  int
	At     map[int]calibCell
}

// calibration maps "systemKey|workload|class" to its entry; populated
// by the generated model_data.go.
var calibration map[string]*calibEntry

// Graph classes the cost model distinguishes. Each maps to the
// reference dataset whose grid observations calibrated the class.
const (
	ClassSocial = "social" // power-law, low diameter (reference: twitter)
	ClassRoad   = "road"   // near-uniform degree, huge diameter (reference: wrn)
	ClassWeb    = "web"    // power-law, locality, vertex-heavy (reference: uk200705)
)

// classRef maps each class to its calibration reference dataset.
var classRef = map[string]datasets.Name{
	ClassSocial: datasets.Twitter,
	ClassRoad:   datasets.WRN,
	ClassWeb:    datasets.UK,
}

// Classify places a dataset in a model class. The four paper datasets
// are classified by name; anything else falls back to profile shape
// (degree skew, then diameter).
func Classify(dataset string, skew float64, diameter int) string {
	switch datasets.Name(dataset) {
	case datasets.Twitter:
		return ClassSocial
	case datasets.WRN:
		return ClassRoad
	case datasets.UK, datasets.ClueWeb:
		return ClassWeb
	}
	if skew < 4 && diameter >= 64 {
		return ClassRoad
	}
	if skew >= 16 {
		return ClassSocial
	}
	return ClassWeb
}

// refWork returns the class reference dataset's paper-scale work units
// (edges + 2*vertices — the load/compute proxy the ratio path scales
// by).
func refWork(class string) float64 {
	spec := datasets.SpecFor(classRef[class])
	return float64(spec.PaperEdges) + 2*float64(spec.PaperVertices)
}

// Prediction is the cost model's forecast of one candidate
// configuration. All values are modeled (paper-scale) quantities, so
// they are bit-deterministic for a given profile.
type Prediction struct {
	Status     string  `json:"status"` // predicted sim status ("OK" or a failure code)
	TimeSec    float64 `json:"time_sec"`
	CPUSec     float64 `json:"cpu_sec"`
	MemTotal   int64   `json:"mem_total_bytes"` // sum of per-machine peaks
	MemMax     int64   `json:"mem_max_bytes"`   // largest per-machine peak
	NetBytes   int64   `json:"net_bytes"`
	Iterations int     `json:"iterations"`
	Source     string  `json:"source"` // "calibrated", "curve", or "observed"
}

// Failure-predictor constants. These encode the paper's failure
// taxonomy (Table 10) as decision rules over the profile.
const (
	// mpiVertexLimit is the GVD int32-coordinate overflow point of
	// Blogel-B's MPI partitioner: 2^31/4 paper-scale vertices.
	mpiVertexLimit = int64(1) << 29
	// oomFraction of a machine's memory at which the model predicts an
	// OOM kill (headroom below the hard limit is always consumed by
	// runtime overhead the ledger does not see).
	oomFraction = 0.92
	// shuffleIterLimit is HaLoop's shuffle-failure onset: wide clusters
	// re-shuffle the loop-invariant cache every iteration, and past
	// this many iterations the model predicts the SHFL failure.
	shuffleIterLimit = 5
	shuffleMachines  = 64
)

// predict forecasts the cost of running workload on system at m
// machines for the profiled graph. Requests for a class reference
// dataset at an observed cluster size return the exact grid cell
// (modeled costs are bit-deterministic, so the cell is ground truth,
// not a sample); everything else extrapolates on the fitted curves
// and applies the failure predictors.
func predict(pr *Profile, sysKey, workload string, m int) Prediction {
	e := calibration[sysKey+"|"+workload+"|"+pr.Class]
	if e == nil {
		return Prediction{Status: "UNSUP", TimeSec: sim.TimeoutSeconds, Source: "curve"}
	}
	if cell, ok := e.At[m]; ok && pr.Dataset == string(classRef[pr.Class]) {
		return Prediction{
			Status:     cell.Status,
			TimeSec:    cell.Time,
			CPUSec:     cell.CPU,
			MemTotal:   int64(cell.MemTot),
			MemMax:     int64(cell.MemMax),
			NetBytes:   int64(cell.Net),
			Iterations: e.Iters,
			Source:     "calibrated",
		}
	}
	ratio := pr.WorkUnits() / refWork(pr.Class)
	iterRatio := 1.0
	if e.Iters > 0 {
		switch workload {
		case "sssp", "khop":
			iterRatio = float64(pr.DepthSSSP) / float64(e.Iters)
		case "wcc":
			iterRatio = float64(pr.DepthWCC) / float64(e.Iters)
		}
	}

	p := Prediction{
		Status:     "OK",
		TimeSec:    (e.Time.a/float64(m)+e.Time.b)*ratio*iterRatio + e.Time.c*float64(m),
		CPUSec:     e.CPU.at(m) * ratio * iterRatio,
		MemTotal:   int64(e.MemTot.at(m) * ratio),
		MemMax:     int64(e.MemMax.at(m) * ratio),
		NetBytes:   int64(e.Net.at(m) * ratio * iterRatio),
		Iterations: int(float64(e.Iters)*iterRatio + 0.5),
		Source:     "curve",
	}
	switch {
	case sysKey == "blogel-b" && pr.PaperVertices > mpiVertexLimit:
		p.Status = "MPI"
	case sysKey == "haloop" && m >= shuffleMachines && p.Iterations > shuffleIterLimit:
		p.Status = "SHFL"
	case p.TimeSec >= sim.TimeoutSeconds:
		p.Status = "TO"
	case float64(p.MemMax) >= oomFraction*float64(sim.MemoryPerMachine):
		p.Status = "OOM"
	}
	return p
}

// modelSystems returns the system keys the cost model covers for a
// workload, in deterministic (sorted) order: the nine main-grid
// systems always, plus the four PageRank-only GraphLab variants when
// the workload is PageRank. The keys mirror core.Systems(); the
// planner deals in keys so the dependency points plan ← core.
func modelSystems(workload string) []string {
	keys := []string{
		"blogel-b", "blogel-v", "gelly", "giraph", "gl-s-a-i", "gl-s-r-i",
		"graphx", "hadoop", "haloop",
	}
	if workload == "pagerank" {
		keys = append(keys, "gl-a-a-t", "gl-a-r-t", "gl-s-a-t", "gl-s-r-t")
		sort.Strings(keys)
	}
	return keys
}
