package plan

import (
	"graphbench/internal/engine"
	"graphbench/internal/graph"
)

// diameterSamples and diameterSeed fix the sampled effective-diameter
// estimate: the double-sweep heuristic is randomized, so determinism of
// planner decisions requires pinning both. Two samples are enough for
// the class split (road networks are orders of magnitude above the
// threshold).
const (
	diameterSamples = 2
	diameterSeed    = int64(1)
)

// Profile is the planner's snapshot of one prepared dataset: the cheap
// graph statistics every decision is made from. Building one costs a
// few linear passes (degree stats, sampled BFS sweeps, hash-min
// rounds); decisions against it are pure table lookups. All fields are
// deterministic functions of the graph snapshot, which is what makes
// decisions bit-deterministic.
type Profile struct {
	Dataset  string  `json:"dataset"`
	Class    string  `json:"class"` // model class (social/road/web), see Classify
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	Scale    float64 `json:"scale"` // paper-scale multiplier of the snapshot

	// PaperVertices and PaperEdges are the scale-adjusted feature
	// sizes (host count × Scale) — the quantities the cost model and
	// the failure predictors are calibrated against.
	PaperVertices int64 `json:"paper_vertices"`
	PaperEdges    int64 `json:"paper_edges"`

	AvgOutDeg float64 `json:"avg_out_degree"`
	MaxOutDeg int     `json:"max_out_degree"`
	Skew      float64 `json:"skew"`    // MaxOutDeg / AvgOutDeg — degree-skew proxy
	Density   float64 `json:"density"` // Edges / Vertices

	// Diameter is the sampled effective-diameter estimate of the
	// undirected view (double-sweep from diameterSamples seeds).
	Diameter int `json:"diameter"`

	// DepthSSSP and DepthWCC are the paper-scale iteration counts of
	// the traversal workloads: synthetic depth × iteration dilation.
	// They feed the iteration-ratio term of the cost model and the
	// HaLoop shuffle predictor.
	DepthSSSP int `json:"depth_sssp"`
	DepthWCC  int `json:"depth_wcc"`

	// HostBytes estimates the in-core working set of one run on this
	// host (CSR both directions plus value/arena planes) — the input
	// to the memory-tier decision.
	HostBytes int64 `json:"host_bytes"`
}

// Host working-set estimate: bytes per vertex (values, halted flags,
// offsets, arena indexes) and per edge (two CSR directions plus inbox
// arena slots).
const (
	hostBytesPerVertex = 41
	hostBytesPerEdge   = 72
)

// NewProfile profiles a prepared dataset. The graph g must be the
// snapshot d was prepared from; the profile inherits its scale and
// dilation factors so depth features are paper-scale.
func NewProfile(d *engine.Dataset, g *graph.Graph) *Profile {
	st := g.Stats()
	p := &Profile{
		Dataset:       d.Name,
		Vertices:      st.Vertices,
		Edges:         st.Edges,
		Scale:         d.Scale,
		PaperVertices: int64(float64(st.Vertices) * d.Scale),
		PaperEdges:    int64(float64(st.Edges) * d.Scale),
		AvgOutDeg:     st.AvgOutDegree,
		MaxOutDeg:     st.MaxOutDegree,
		Diameter:      graph.EstimateDiameter(g, diameterSamples, diameterSeed),
		HostBytes:     int64(st.Vertices)*hostBytesPerVertex + int64(st.Edges)*hostBytesPerEdge,
	}
	if st.AvgOutDegree > 0 {
		p.Skew = float64(st.MaxOutDegree) / st.AvgOutDegree
	}
	if st.Vertices > 0 {
		p.Density = float64(st.Edges) / float64(st.Vertices)
	}
	ecc := graph.Eccentricity(g, d.Source)
	p.DepthSSSP = int(float64(ecc)*d.DilationFor(engine.SSSP) + 0.5)
	p.DepthWCC = int(float64(graph.HashMinRounds(g))*d.DilationFor(engine.WCC) + 0.5)
	p.Class = Classify(p.Dataset, p.Skew, p.Diameter)
	return p
}

// WorkUnits is the profile's paper-scale work proxy (edges + 2×
// vertices): the quantity load and compute charges scale with, and the
// ratio the curve path extrapolates by.
func (p *Profile) WorkUnits() float64 {
	return float64(p.PaperEdges) + 2*float64(p.PaperVertices)
}
