package plan

import (
	"fmt"
	"sync"

	"graphbench/internal/engine"
	"graphbench/internal/metrics"
)

// Request is one planning question: run this workload on this dataset
// with this machine budget — which configuration?
type Request struct {
	// Dataset names the prepared dataset the profile was built from.
	Dataset string `json:"dataset"`
	// Workload is the engine.Kind string ("pagerank", "wcc", "sssp",
	// "khop", "triangle", "lpa").
	Workload string `json:"workload"`
	// Machines is the cluster size of the run.
	Machines int `json:"machines"`
	// MemoryBudget, when positive, is the host-side byte budget the
	// run will execute under (the memory governor's budget); it drives
	// the memory-tier decision.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
}

// Key identifies the request cell for logs and caches.
func (r Request) Key() string {
	return fmt.Sprintf("%s|%s|%d", r.Dataset, r.Workload, r.Machines)
}

// obsKey identifies one observed configuration in the telemetry store.
type obsKey struct {
	dataset  string
	workload string
	system   string
	machines int
}

// Planner makes adaptive configuration decisions from dataset profiles
// and the calibrated cost model, and folds realized run telemetry back
// into future decisions. Safe for concurrent use.
//
// Determinism: the first Decide for a request cell is a pure function
// of (profile, request, telemetry store), and the decision is then
// pinned — repeating the request returns the same decision, so
// serving paths can cache on it and a cell never flip-flops as
// telemetry accumulates. Observed telemetry refines only cells that
// have not been decided yet.
type Planner struct {
	mu       sync.Mutex
	observed map[obsKey]metrics.Resource
	decided  map[string]*Decision // canonical decision per Request.Key()
}

// New returns an empty planner (no telemetry observed yet).
func New() *Planner {
	return &Planner{
		observed: make(map[obsKey]metrics.Resource),
		decided:  make(map[string]*Decision),
	}
}

// Configuration heuristics, documented here because tests pin them.
const (
	// verticesPerShard sizes the shard count: one shard per this many
	// work units (vertices+edges), clamped to [1, maxShards]. Small
	// graphs get few shards (per-shard dispatch overhead dominates);
	// large graphs cap at maxShards (diminishing returns past the
	// core count of any plausible host).
	verticesPerShard = 32768
	maxShards        = 64

	// skewThreshold is the degree-skew (max/avg out-degree) above
	// which the weighted (degree-balanced) shard plan pays for its
	// O(V) prefix consultation. Below it, uniform ranges are equally
	// balanced and cheaper to cut.
	skewThreshold = 4.0

	// deepTraversalDepth is the paper-scale traversal depth beyond
	// which direction-optimizing stops paying for SSSP/k-hop: road-
	// network-scale depths mean thousands of sparse frontiers where
	// the per-iteration density check is pure overhead.
	deepTraversalDepth = 32
)

// Decide selects the configuration for req given the dataset profile:
// engine (by minimum composite resource cost over the model's
// candidates), shard count, shard plan, direction mode, and memory
// tier. The returned decision carries the full trace — profile,
// scored candidates, chosen configuration, predicted cost — and is
// bit-deterministic for a given (profile, request, telemetry) state.
//
// Decisions are sticky: the first Decide for a request cell is pinned,
// and later calls for the same cell return a copy of it (each caller
// owns its Realized fields). Pinning keeps downstream cache keys and
// response headers stable even as Observe accumulates telemetry.
func (p *Planner) Decide(pr *Profile, req Request) *Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.decided[req.Key()]; ok {
		cp := *prev
		cp.Realized = nil
		cp.RealizedScore = 0
		return &cp
	}
	d := p.decide(pr, req)
	p.decided[req.Key()] = d
	cp := *d
	return &cp
}

// decide computes a fresh decision. Caller holds p.mu.
func (p *Planner) decide(pr *Profile, req Request) *Decision {
	d := &Decision{
		Request:  req,
		Profile:  pr,
		Machines: req.Machines,
	}

	for _, sys := range modelSystems(req.Workload) {
		pred := p.lookup(pr, sys, req)
		c := Candidate{System: sys, Prediction: pred, Score: Score(pred, req.Machines)}
		d.Candidates = append(d.Candidates, c)
		// Strict less-than: candidates arrive in sorted key order, so
		// ties resolve to the lexicographically first system and the
		// argmin is deterministic.
		if d.System == "" || c.Score < d.Score {
			d.System = sys
			d.Predicted = pred
			d.Score = c.Score
		}
	}

	work := pr.Vertices + pr.Edges
	d.Shards = (work + verticesPerShard - 1) / verticesPerShard
	if d.Shards < 1 {
		d.Shards = 1
	}
	if d.Shards > maxShards {
		d.Shards = maxShards
	}

	if pr.Skew >= skewThreshold {
		d.ShardPlan = engine.ShardPlanWeighted
	} else {
		d.ShardPlan = engine.ShardPlanUniform
	}

	switch req.Workload {
	case "pagerank", "wcc":
		// Dense stable frontiers: the per-iteration density check is
		// cheap and pull sweeps win the dense phases.
		d.Direction = engine.DirectionAuto
	case "sssp", "khop":
		if pr.DepthSSSP <= deepTraversalDepth {
			d.Direction = engine.DirectionAuto
		} else {
			d.Direction = engine.DirectionPush
		}
	default:
		// triangle, lpa: no monotone frontier shape for pull sweeps.
		d.Direction = engine.DirectionPush
	}

	if req.MemoryBudget > 0 && pr.HostBytes > req.MemoryBudget {
		// The in-core working set clearly exceeds the budget: skip the
		// doomed reservation probes and start out-of-core.
		d.MemoryTier = engine.TierSpill
	}
	return d
}

// lookup returns the cost forecast for one candidate, preferring
// realized telemetry over the model when this exact configuration has
// been observed. Caller holds p.mu.
func (p *Planner) lookup(pr *Profile, sys string, req Request) Prediction {
	k := obsKey{dataset: req.Dataset, workload: req.Workload, system: sys, machines: req.Machines}
	r, ok := p.observed[k]
	if !ok {
		return predict(pr, sys, req.Workload, req.Machines)
	}
	status := r.Status
	if status == "" {
		status = "OK"
	}
	return Prediction{
		Status:   status,
		TimeSec:  r.TimeSec,
		CPUSec:   r.CPUSec,
		MemTotal: r.MemTotalBytes,
		MemMax:   r.MemMaxBytes,
		NetBytes: r.NetBytes,
		Source:   "observed",
	}
}

// Observe feeds one run's realized telemetry back into the cost model:
// Decide calls for not-yet-decided cells matching (dataset, workload,
// system, machines) use the realized values instead of the prediction;
// already-decided cells keep their pinned decision. The realized cost
// is recorded on d (the caller's copy) for its trace.
func (p *Planner) Observe(d *Decision, r metrics.Resource) {
	d.Realized = &r
	d.RealizedScore = ResourceScore(r)
	k := obsKey{
		dataset:  d.Request.Dataset,
		workload: d.Request.Workload,
		system:   d.System,
		machines: r.Machines,
	}
	p.mu.Lock()
	p.observed[k] = r
	p.mu.Unlock()
}

// Observed reports how many distinct configurations have realized
// telemetry in the store.
func (p *Planner) Observed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.observed)
}
