// Package graphx implements GraphX on Spark (§2.5.2): a property graph
// of vertex and edge RDDs with vertex-cut partitioning and a Pregel API
// in which every iteration is several Spark stages (message generation
// over the edge RDD, aggregation, vertex join). GraphX inherits Spark's
// overheads — job scheduling, shuffles, long RDD lineages, and the
// partition placement skew — which make it the slowest native graph
// system in the study and unable to finish high-iteration workloads
// (§5.6).
package graphx

import (
	"math"

	"graphbench/internal/engine"
	"graphbench/internal/graph"
	"graphbench/internal/partition"
	"graphbench/internal/rdd"
	"graphbench/internal/sim"
	"graphbench/internal/singlethread"
)

// Profile is GraphX's cost profile (Scala on the JVM, Spark runtime).
var Profile = sim.Profile{
	Name: "graphx", Lang: "Scala",
	EdgeOpsPerSec:   50e6,
	RecordCPUNs:     800,
	MsgBytes:        16,
	VertexBytes:     120,        // per replica in the vertex RDD
	EdgeBytes:       90,         // edge RDD entry
	PerMachineBase:  8 * sim.GB, // executor + daemon heaps
	Imbalance:       1.15,
	JobStartup:      4,
	JobStartupPerM:  0.08,
	PressurePenalty: 12,
}

// lineageBytesPerVertexIter is the modeled lineage retention per vertex
// per (paper-scale) iteration: RDD metadata plus cached shuffle blocks
// that fault tolerance keeps alive (§5.6).
const lineageBytesPerVertexIter = 0.04

// stagesPerIteration is how many Spark stages one Pregel iteration
// spans ("every iteration consists of multiple Spark jobs").
const stagesPerIteration = 3

// rescheduleStartupFraction scales Spark startup into the overhead of
// detecting a lost executor and rescheduling its partitions.
const rescheduleStartupFraction = 0.2

// GraphX is the engine.
type GraphX struct {
	Profile sim.Profile
}

// New returns a GraphX engine with the default profile.
func New() *GraphX { return &GraphX{Profile: Profile} }

// Name implements engine.Engine.
func (g *GraphX) Name() string { return "graphx" }

// DefaultPartitions returns GraphX's default partition count for the
// dataset: the number of HDFS blocks of its edge-format file (§4.4.3).
func DefaultPartitions(d *engine.Dataset) int {
	f, err := d.Open(graph.FormatEdge)
	if err != nil {
		return 1
	}
	return f.Blocks()
}

// TunedPartitions returns the paper's tuned partition count (Table 5).
func TunedPartitions(d *engine.Dataset, machines int) int {
	return partition.TunedPartitions(DefaultPartitions(d), machines*sim.CoresPerMachine)
}

// Run implements engine.Engine.
func (g *GraphX) Run(c *sim.Cluster, d *engine.Dataset, w engine.Workload, opt engine.Options) *engine.Result {
	res := &engine.Result{System: g.Name(), Dataset: d.Name, Workload: w, Machines: c.Size()}
	if opt.SampleMemory {
		c.EnableSampling()
	}
	prof := g.Profile
	m := c.Size()

	parts := opt.NumPartitions
	if parts <= 0 {
		parts = DefaultPartitions(d)
	}
	sc := rdd.NewContext(c, &prof, d.Scale, parts, 17)

	// Spark standalone startup.
	mark := c.Clock()
	if err := c.Advance(prof.StartupSeconds(m)); err != nil {
		res.Overhead = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Overhead = c.Clock() - mark

	// Load: read the edge-format file, build vertex and edge RDDs with
	// vertex-cut partitioning.
	mark = c.Clock()
	gr, err := d.LoadGraph(graph.FormatEdge)
	if err != nil {
		return res.Finish(c, err)
	}
	vc := partition.BuildVertexCut(gr, m, partition.VCRandom, 7)
	res.ReplicationFactor = vc.ReplicationFactor()

	loaded, err := g.chargeLoad(c, sc, d, gr, vc)
	if err != nil {
		res.Load = c.Clock() - mark
		return res.Finish(c, err)
	}
	res.Load = c.Clock() - mark

	// Execute the Pregel iterations.
	mark = c.Clock()
	execErr := g.pregelLoop(sc, d, gr, w, opt, res)
	res.Exec = c.Clock() - mark
	sc.ReleaseLineage()
	if execErr != nil {
		return res.Finish(c, execErr)
	}

	// Save: write the result RDD to HDFS.
	mark = c.Clock()
	saveErr := sc.Checkpoint(float64(gr.NumVertices()) * 16)
	res.Save = c.Clock() - mark
	c.FreeAll(loaded)
	return res.Finish(c, saveErr)
}

func (g *GraphX) chargeLoad(c *sim.Cluster, sc *rdd.Context, d *engine.Dataset, gr *graph.Graph, vc *partition.VertexCut) (int64, error) {
	file, err := d.Open(graph.FormatEdge)
	if err != nil {
		return 0, err
	}
	m := float64(c.Size())
	// Read + parse the edge file as one stage, then a shuffle stage to
	// build the partitioned property graph.
	readPer := float64(file.PaperBytes) / m
	costs := make([]sim.StepCost, c.Size())
	for i := range costs {
		costs[i] = sim.StepCost{DiskReadBytes: readPer}
	}
	if err := c.RunStep(costs); err != nil {
		return 0, err
	}
	if err := sc.RunStage(rdd.StageCost{
		Records:      float64(gr.NumEdges()),
		ShuffleBytes: float64(gr.NumEdges()) * g.Profile.EdgeBytes * 0.3,
	}); err != nil {
		return 0, err
	}

	memBytes := float64(vc.TotalReplicas())*d.Scale*g.Profile.VertexBytes +
		float64(gr.NumEdges())*d.Scale*g.Profile.EdgeBytes
	per := int64(memBytes/m*g.Profile.Imbalance) + g.Profile.PerMachineBase
	for i := 0; i < c.Size(); i++ {
		if err := c.Alloc(i, per); err != nil {
			return per, err
		}
	}
	return per, nil
}

// pregelLoop performs the real computation (identical algorithms to the
// other systems) while charging each iteration as Spark stages plus
// lineage growth.
func (g *GraphX) pregelLoop(sc *rdd.Context, d *engine.Dataset, gr *graph.Graph, w engine.Workload, opt engine.Options, res *engine.Result) error {
	switch w.Kind {
	case engine.Triangle:
		return g.triangleStages(sc, d, gr, opt, res)
	case engine.LPA:
		return g.lpaStages(sc, d, gr, w, opt, res)
	}
	n := gr.NumVertices()
	dil := d.DilationFor(w.Kind)
	work := gr
	if w.Kind == engine.WCC {
		work = gr.Undirected()
	}

	values := make([]float64, n)
	contrib := make([]float64, n)
	next := make([]float64, n)
	for v := range values {
		switch w.Kind {
		case engine.PageRank:
			values[v] = 1
		case engine.WCC:
			values[v] = float64(v)
		default:
			values[v] = math.Inf(1)
		}
	}
	if w.Kind == engine.SSSP || w.Kind == engine.KHop {
		values[d.Source] = 0
	}

	iters := 0
	lastCkpt := 0
	for {
		iters++
		var msgs float64
		maxDelta := 0.0
		changed := 0

		switch w.Kind {
		case engine.PageRank:
			for v := 0; v < n; v++ {
				if deg := work.OutDegree(graph.VertexID(v)); deg > 0 {
					contrib[v] = values[v] / float64(deg)
					msgs += float64(deg)
				} else {
					contrib[v] = 0
				}
			}
			for v := 0; v < n; v++ {
				sum := 0.0
				for _, u := range work.InNeighbors(graph.VertexID(v)) {
					sum += contrib[u]
				}
				nv := w.Damping + (1-w.Damping)*sum
				if dd := math.Abs(nv - values[v]); dd > maxDelta {
					maxDelta = dd
				}
				next[v] = nv
			}
			values, next = next, values
		default:
			copy(next, values)
			for v := 0; v < n; v++ {
				if math.IsInf(values[v], 1) {
					continue
				}
				emit := values[v]
				if w.Kind != engine.WCC {
					emit++
				}
				for _, u := range work.OutNeighbors(graph.VertexID(v)) {
					msgs++
					if emit < next[u] {
						next[u] = emit
					}
				}
			}
			for v := range next {
				if next[v] != values[v] {
					changed++
				}
			}
			values, next = next, values
		}
		// Charge the iteration: GraphX joins the full vertex RDD and
		// scans the full edge RDD every iteration regardless of how
		// small the frontier is.
		perStage := rdd.StageCost{
			Records:      (float64(n) + float64(work.NumEdges())) / stagesPerIteration,
			ShuffleBytes: (msgs*g.Profile.MsgBytes + float64(n)*8) / stagesPerIteration,
			Dilation:     dil,
		}
		iterStart := sc.Cluster.Clock()
		var stageErr error
		for s := 0; s < stagesPerIteration; s++ {
			if stageErr = sc.RunStage(perStage); stageErr != nil {
				break
			}
		}
		res.PerIteration = append(res.PerIteration, engine.IterStat{
			Iteration: iters, Active: n, Updates: changed,
			Seconds: (sc.Cluster.Clock() - iterStart) / dil,
		})
		if stageErr == nil {
			if opt.CheckpointEvery > 0 && iters%opt.CheckpointEvery == 0 {
				stageErr = sc.Checkpoint(float64(n)*16 + float64(work.NumEdges())*12)
				if stageErr == nil {
					lastCkpt = iters
				}
			} else {
				stageErr = sc.ExtendLineage(int64(float64(n) * d.Scale * lineageBytesPerVertexIter * dil / float64(sc.Cluster.Size())))
			}
		}
		if stageErr == nil {
			if err := sc.Cluster.Boundary(iters - 1); err != nil {
				if opt.Recover && sim.IsRecoverable(err) {
					stageErr = g.recoverPartition(sc, (iters-lastCkpt)*stagesPerIteration, perStage, &res.Costs)
				} else {
					stageErr = err
				}
			}
		}
		if stageErr != nil {
			res.Iterations = int(float64(iters)*dil + 0.5)
			g.fill(res, w, values)
			return stageErr
		}

		switch w.Kind {
		case engine.PageRank:
			if w.MaxIterations > 0 && iters >= w.MaxIterations {
				goto done
			}
			if w.MaxIterations <= 0 && maxDelta < w.Tolerance {
				goto done
			}
		case engine.KHop:
			if iters >= w.K {
				goto done
			}
		default:
			if changed == 0 {
				goto done
			}
		}
	}
done:
	res.Iterations = int(float64(iters)*dil + 0.5)
	g.fill(res, w, values)
	return nil
}

// recoverPartition survives a lost machine the Spark way: the dead
// executor's partitions are rescheduled onto the survivors and
// recomputed from lineage — re-running the given number of stages'
// worth of work at the lost partition's 1/m share. When stages is zero
// or less the lineage was just truncated by a checkpoint, and the
// partitions are read back from the replicated checkpoint instead of
// recomputed. Costs accumulate into the run's RecoveryCosts.
func (g *GraphX) recoverPartition(sc *rdd.Context, stages int, perStage rdd.StageCost, costs *engine.RecoveryCosts) error {
	costs.Failures++
	m := float64(sc.Cluster.Size())
	before := sc.Cluster.Clock()
	if err := sc.Cluster.Advance(g.Profile.StartupSeconds(sc.Cluster.Size()) * rescheduleStartupFraction); err != nil {
		return err
	}
	costs.RestartSeconds += sc.Cluster.Clock() - before

	replay := rdd.StageCost{
		Records:      perStage.Records * float64(stages) / m,
		ShuffleBytes: perStage.ShuffleBytes * float64(stages) / m,
		Dilation:     perStage.Dilation,
	}
	if stages <= 0 {
		replay = rdd.StageCost{Records: perStage.Records / m}
	}
	before = sc.Cluster.Clock()
	err := sc.RunStage(replay)
	costs.ReplaySeconds += sc.Cluster.Clock() - before
	return err
}

// triangleStages runs degree-ordered triangle counting as three Spark
// stage groups over the edge RDD: orientation (degree join + filter),
// candidate generation + closing-edge join (the quadratic shuffle), and
// credit aggregation back onto the vertex RDD. GraphX's triplet view
// makes the join explicit; the computation is the oracle's forward
// algorithm.
func (g *GraphX) triangleStages(sc *rdd.Context, d *engine.Dataset, gr *graph.Graph, opt engine.Options, res *engine.Result) error {
	o, rank := graph.ForwardOrient(gr)
	n := o.NumVertices()
	// The real computation is the oracle's forward kernel.
	counts, hits64, cands64 := singlethread.ForwardCountTriangles(o, rank)
	cands, hits := float64(cands64), float64(hits64)
	res.Triangles = counts
	res.Iterations = 1
	res.PerIteration = append(res.PerIteration, engine.IterStat{Iteration: 1, Active: n, Updates: int(hits)})

	stages := []rdd.StageCost{
		{ // orientation: degree join over the edge RDD
			Records:      float64(gr.NumEdges()) + float64(n),
			ShuffleBytes: float64(gr.NumEdges()) * g.Profile.MsgBytes,
		},
		{ // candidate pairs joined against the oriented edge RDD
			Records:      float64(o.NumEdges()) + cands,
			ShuffleBytes: cands * g.Profile.MsgBytes,
		},
		{ // credit aggregation onto the vertex RDD
			Records:      3*hits + float64(n),
			ShuffleBytes: 3*hits*g.Profile.MsgBytes + float64(n)*8,
		},
	}
	for s, st := range stages {
		if err := sc.RunStage(st); err != nil {
			return err
		}
		if err := sc.Cluster.Boundary(s); err != nil {
			if opt.Recover && sim.IsRecoverable(err) {
				// Lineage reaches back to the load: replay all stages so
				// far at the lost partition's share.
				if rerr := g.recoverPartition(sc, s+1, st, &res.Costs); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
	}
	return sc.ExtendLineage(int64(float64(n) * d.Scale * lineageBytesPerVertexIter / float64(sc.Cluster.Size())))
}

// lpaStages runs synchronous label propagation: every round is the
// usual Pregel-iteration stage triplet (message generation over the
// full undirected edge RDD, aggregation, vertex join) — GraphX scans
// everything each round regardless of how many labels still change.
func (g *GraphX) lpaStages(sc *rdd.Context, d *engine.Dataset, gr *graph.Graph, w engine.Workload, opt engine.Options, res *engine.Result) error {
	u := gr.Simple()
	n := u.NumVertices()
	msgs := float64(u.NumEdges())

	iters := 0
	lastCkpt := 0
	labels, err := singlethread.LPAOnSimple(u, w.LPAIterations(), func(it, changed int) error {
		iters = it
		perStage := rdd.StageCost{
			Records:      (float64(n) + msgs) / stagesPerIteration,
			ShuffleBytes: (msgs*g.Profile.MsgBytes + float64(n)*8) / stagesPerIteration,
		}
		iterStart := sc.Cluster.Clock()
		var stageErr error
		for s := 0; s < stagesPerIteration; s++ {
			if stageErr = sc.RunStage(perStage); stageErr != nil {
				break
			}
		}
		res.PerIteration = append(res.PerIteration, engine.IterStat{
			Iteration: it, Active: n, Updates: changed,
			Seconds: sc.Cluster.Clock() - iterStart,
		})
		if stageErr != nil {
			return stageErr
		}
		if opt.CheckpointEvery > 0 && it%opt.CheckpointEvery == 0 {
			stageErr = sc.Checkpoint(float64(n)*16 + float64(u.NumEdges())*12)
			if stageErr == nil {
				lastCkpt = it
			}
		} else {
			stageErr = sc.ExtendLineage(int64(float64(n) * d.Scale * lineageBytesPerVertexIter / float64(sc.Cluster.Size())))
		}
		if stageErr != nil {
			return stageErr
		}
		if berr := sc.Cluster.Boundary(it - 1); berr != nil {
			if opt.Recover && sim.IsRecoverable(berr) {
				return g.recoverPartition(sc, (it-lastCkpt)*stagesPerIteration, perStage, &res.Costs)
			}
			return berr
		}
		return nil
	})
	res.Iterations = iters
	res.Labels = labels
	return err
}

func (g *GraphX) fill(res *engine.Result, w engine.Workload, values []float64) {
	switch w.Kind {
	case engine.PageRank:
		res.Ranks = values
	case engine.WCC:
		labels := make([]graph.VertexID, len(values))
		for i, v := range values {
			labels[i] = graph.VertexID(v)
		}
		res.Labels = labels
	default:
		dist := make([]int32, len(values))
		for i, v := range values {
			if math.IsInf(v, 1) {
				dist[i] = -1
			} else {
				dist[i] = int32(v)
			}
		}
		res.Dist = dist
	}
}
