package graphx

import (
	"testing"

	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/enginetest"
	"graphbench/internal/pregel"
	"graphbench/internal/rdd"
	"graphbench/internal/sim"
)

func TestAllWorkloadsCorrect(t *testing.T) {
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	enginetest.VerifyAllWorkloads(t, New(), f, 16, 1e-9,
		engine.Options{NumPartitions: 128})
}

func TestDefaultAndTunedPartitions(t *testing.T) {
	// Table 5: UK's edge file defaults to ~1200 partitions; tuned
	// values cap at twice the core count.
	f := enginetest.Prepare(t, datasets.UK, 400_000)
	def := DefaultPartitions(f.Dataset)
	if def < 1000 || def > 1400 {
		t.Errorf("UK default partitions = %d, want ~1200 (Table 5)", def)
	}
	if got := TunedPartitions(f.Dataset, 16); got != 128 {
		t.Errorf("tuned(16 machines) = %d, want 128", got)
	}
	if got := TunedPartitions(f.Dataset, 128); got != 1024 {
		t.Errorf("tuned(128 machines) = %d, want 1024", got)
	}
}

func TestSlowerThanGiraph(t *testing.T) {
	// §5.6: GraphX is slower than the native graph systems.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	w := engine.NewPageRankIters(10)
	gx := enginetest.RunOK(t, New(), f, 32, w, engine.Options{NumPartitions: 256})
	gir := enginetest.RunOK(t, pregel.New(), f, 32, w, engine.Options{})
	if gx.TotalTime() <= gir.TotalTime() {
		t.Errorf("GraphX total %v not above Giraph %v", gx.TotalTime(), gir.TotalTime())
	}
}

func TestWRNWCCFailsAllClusterSizes(t *testing.T) {
	// §5.6: "GraphX failed to compute WCC for the WRN dataset due to
	// memory or timeout errors in all cluster sizes" — RDD lineage
	// growth is the culprit.
	f := enginetest.Prepare(t, datasets.WRN, 2_000_000)
	for _, m := range []int{16, 32, 64, 128} {
		res := New().Run(sim.NewSize(m), f.Dataset, engine.NewWCC(), engine.Options{})
		if res.Status != sim.OOM && res.Status != sim.TO {
			t.Errorf("GraphX WRN WCC at %d: status %v, want OOM or TO", m, res.Status)
		}
	}
}

func TestCheckpointTradesMemoryForIO(t *testing.T) {
	// §5.6: checkpointing prevents long lineages but adds expensive
	// disk I/O. On a workload that fits, checkpointing must lower the
	// memory peak and raise the time.
	f := enginetest.Prepare(t, datasets.Twitter, 400_000)
	w := engine.NewPageRankIters(12)
	plain := enginetest.RunOK(t, New(), f, 32, w, engine.Options{NumPartitions: 256})
	ckpt := enginetest.RunOK(t, New(), f, 32, w, engine.Options{NumPartitions: 256, CheckpointEvery: 2})
	if ckpt.Exec <= plain.Exec {
		t.Errorf("checkpointed exec %v not above plain %v", ckpt.Exec, plain.Exec)
	}
	if ckpt.MemMax >= plain.MemMax {
		t.Errorf("checkpointed memory %v not below plain %v", ckpt.MemMax, plain.MemMax)
	}
}

func TestPartitionCountUShape(t *testing.T) {
	// Figure 2: both too few and too many partitions hurt.
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	w := engine.NewPageRankIters(5)
	exec := func(parts int) float64 {
		res := enginetest.RunOK(t, New(), f, 32, w, engine.Options{NumPartitions: parts})
		return res.Exec
	}
	few := exec(16)    // fewer than the 128 cores
	tuned := exec(256) // 2x cores
	many := exec(2048) // task overhead + skew
	if tuned >= few {
		t.Errorf("tuned partitions (%v) not faster than too-few (%v)", tuned, few)
	}
	if tuned >= many {
		t.Errorf("tuned partitions (%v) not faster than too-many (%v)", tuned, many)
	}
}

func TestStragglerReported(t *testing.T) {
	// Figure 11: at 1200 partitions on 128 machines placement is
	// heavily skewed.
	c := sim.NewSize(128)
	sc := rdd.NewContext(c, &Profile, 1, 1200, 17)
	if sc.Straggler() < 2.5 {
		t.Errorf("straggler = %v, want the Figure 11 skew (>= 2.5)", sc.Straggler())
	}
	total := 0
	for _, p := range sc.Placement() {
		total += p
	}
	if total != 1200 {
		t.Errorf("placement lost partitions: %d", total)
	}
}

func TestUK128WorseThan64ForWCC(t *testing.T) {
	// §5.8: GraphX WCC on UK at 128 machines was significantly worse
	// than at 64 — the placement skew at 1024 partitions dominates.
	f := enginetest.Prepare(t, datasets.UK, 1_000_000)
	at64 := enginetest.RunOK(t, New(), f, 64, engine.NewWCC(),
		engine.Options{NumPartitions: 512})
	at128 := enginetest.RunOK(t, New(), f, 128, engine.NewWCC(),
		engine.Options{NumPartitions: 1024})
	if at128.Exec <= at64.Exec {
		t.Errorf("GraphX UK WCC at 128 (%v) should be worse than at 64 (%v)", at128.Exec, at64.Exec)
	}
}
