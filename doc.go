// Package graphbench is a from-scratch Go reproduction of "Experimental
// Analysis of Distributed Graph Systems" (Ammar & Özsu, VLDB 2018): the
// eight systems under study reimplemented as engines over a simulated
// shared-nothing cluster, the paper's workloads plus extensions,
// synthetic analogues of the four datasets, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// See ARCHITECTURE.md for the package map, request data flow, and
// per-layer bit-identity contracts, docs/operations.md for operating
// the query server, ROADMAP.md for the plan, and PAPER.md for the
// source paper's abstract. The benchmarks in bench_test.go regenerate
// each artifact:
//
//	go test -bench=Table9 -benchtime=1x .
//	go test -bench=Figure6 -benchtime=1x .
//
// # Workloads
//
// Six workloads run uniformly across every engine — the paper's
// methodology (§3.3) of "the same algorithm on every system", extended
// beyond the paper's four:
//
//   - PageRank (§3.1): pr(v) = δ + (1−δ)·Σ pr(u)/outdeg(u), tolerance
//     or fixed-iteration stopping.
//   - WCC (§3.2): HashMin label propagation with reverse-edge
//     discovery; labels canonical to the component's minimum id.
//   - SSSP and K-hop (§3.3): BFS hop distances, K-hop truncated at 3.
//   - Triangle counting: the degree-ordered (forward) algorithm —
//     every engine orients edges by (degree, id) rank via
//     graph.ForwardOrient, enumerates forward-neighbor pairs (a
//     quadratic candidate fan-out, the workload's point), and probes
//     closing edges. Outputs are per-vertex incident-triangle counts;
//     their sum is three times the global total.
//   - LPA community detection: synchronous label propagation over the
//     undirected simple view — each round every vertex adopts the most
//     frequent neighbor label, ties broken toward the largest label,
//     for a fixed iteration cap (determinism; synchronous LPA can
//     oscillate). Final labels are canonical to the community's
//     smallest member id.
//
// Every workload is verified against the single-thread oracles in
// internal/singlethread: exactly (bit-identical at every shard count,
// internal/enginetest) for all but PageRank, which compares within
// summation-order tolerance. The oracles themselves carry
// property-based tests (triangle sum/relabeling invariants against a
// naive reference; LPA partition validity and stability).
//
// # Concurrency model
//
// Execution is parallel at two layers, both built on internal/par and
// both deterministic:
//
//   - The persistent worker runtime. A par.Pool launches its helper
//     goroutines once — par.New, owned by core.Runner for the
//     experiment matrix and by each engine run for its shard loops —
//     and every subsequent dispatch reuses them: ForEach writes the
//     job into the pool's reusable slot, wakes each parked helper with
//     one channel token, and the dispatching goroutine itself works
//     tickets alongside them, so a steady-state dispatch allocates
//     nothing (no goroutine spawns, no WaitGroup, no closure boxing —
//     the engines hoist their phase bodies into closures built once
//     per run). Helper count is capped at GOMAXPROCS; Workers() keeps
//     the configured shard granularity, so an 8-shard plan executes
//     bit-identically on any machine, down to a single core where the
//     whole dispatch runs inline on the caller. Pools are closed by
//     their owner at the end of the run (or by a finalizer when
//     abandoned). A panic in a task is re-raised at the dispatch site
//     as a *par.WorkerPanic, and stops the remaining tickets promptly:
//     no task starts after the panic is recorded, so partial side
//     effects are bounded by parallelism, not job size.
//
//   - Runtime sharding. The hot per-vertex loops — bsp.Run's
//     compute/send and merge phases, the GAS gather/apply sweeps, and
//     Blogel's block-mode rounds — split the vertex (or block) range
//     into contiguous shards over a par.Plan. Plans are edge-balanced
//     by default (par.PlanPrefix over graph.WorkPrefix, the
//     prefix-summed degrees): shard boundaries are drawn at weight
//     quantiles, so a power-law hub does not serialize the pass behind
//     one heavy shard. engine.Options.ShardPlan can select uniform
//     vertex-range cuts instead (the adaptive planner does, when
//     degree skew is low); either plan moves only which worker
//     computes which range, never the result. Each shard accumulates privately (message buffers,
//     counters, max-delta), and shard results merge in shard order:
//     messages replay per destination in the exact sequential order,
//     counters are integer-valued sums, aggregators are maxima.
//     Outputs and modeled costs are therefore bit-identical for every
//     shard count (engine.Options.Shards, 0 = GOMAXPROCS,
//     1 = sequential), which internal/enginetest's determinism tests
//     enforce. A BSP superstep pays exactly two dispatch barriers:
//     compute/send, then a fused count+layout+deposit merge whose
//     arena regions are assigned between the two from the send
//     buckets' lengths. Loops whose sequential semantics are Gauss–Seidel
//     (GraphLab's async engine, the frontier propagation sweep)
//     intentionally stay sequential: sharding them would change the
//     modeled execution.
//
//   - The experiment matrix. Every run owns a private sim.Cluster and
//     engine instance, so core.RunGrid and the harness artifact
//     generators execute independent runs concurrently on the
//     runner's persistent pool, sized by core.Runner.Workers — the
//     -parallel flag of cmd/graphbench (0 = GOMAXPROCS).
//     BenchmarkParallelSpeedup in bench_test.go tracks the wall-clock
//     win over the sequential path at both layers.
//
// # Direction-optimizing traversal
//
// Sweep-shaped loops across the codebase share one frontier abstraction
// and one push/pull heuristic (Beamer et al.'s direction-optimizing
// BFS, adapted to the simulator's bit-identity contract):
//
//   - graph.Frontier is a hybrid bitset frontier: a dense bitmap for
//     O(1) membership and deduplication, an insertion-ordered sparse
//     list so Members() replays in exact arrival order, and a running
//     out-edge mass. Dense(unvisited) (frontier edge mass >
//     unvisited/FrontierAlpha) votes for pulling; Sparse(n) (fewer
//     than n/FrontierBeta members) votes for pushing; the gap between
//     the two thresholds is the hysteresis band that stops the mode
//     from thrashing near the crossover.
//
//   - The single-thread primitives use it directly: BFSDistances
//     pushes sparse frontiers over out-edges and pulls dense ones over
//     the unvisited vertices' in-edges (both directions assign
//     identical levels), and HashMinRounds switches the same way with
//     deferred label commits, so its round count matches a push-only
//     BSP engine's exactly.
//
//   - bsp.Run generalizes the trick to the message plane. Programs
//     that expose a pull kernel (PullProgram: PageRank as a damped
//     sum, WCC and SSSP as neighborhood minima) can run any superstep
//     "inverted": instead of computing into send buckets, merging, and
//     delivering, each destination shard folds its vertices' in- (and,
//     for WCC's undirected discovery, out-) neighbors directly. The
//     engine.Options.Direction policy picks per superstep — push (the
//     default plane), pull, or auto, which applies the frontier
//     heuristic to the set of vertices that sent last superstep.
//     Monotone kernels (SSSP's hop-counting wavefront, where a finite
//     value never improves) get the full bottom-up win: the pull sweep
//     skips settled vertices outright, recovering their active counts
//     from the counting pass's distinct-receiver tally, so each
//     vertex's in-edges are scanned roughly once per run instead of
//     once per dense superstep. Switching back from pull with messages
//     still pending materializes the inbox arena from the frontier
//     before the next push superstep.
//
//   - The GAS engines flip the same way: the propagate sweep walks
//     frontier bitsets instead of queue slices, and the PageRank
//     scatter pass inverts into a gather over in-edges once the
//     scatter edge mass crosses the same threshold.
//
// Direction is a host-side execution strategy, not a modeled system
// difference: outputs, message counts, modeled costs, and per-superstep
// stats are bit-identical under push, pull, and auto at every shard
// count — pull supersteps reproduce the push plane's delivered/crossing
// accounting (including combiner semantics, PageRank's float summation
// order, and checkpoint/rollback state) rather than re-deriving it.
// internal/bsp's lollipop switching tests and internal/enginetest's
// direction-policy suite enforce the contract, including under
// injected-failure recovery.
//
// # Memory model
//
// The message plane is flat, reusable memory: no hot loop allocates per
// message, per vertex, or per round in steady state. Arena ownership
// follows the sharding:
//
//   - BSP inboxes are two arena triples (values, per-vertex start
//     offsets, per-vertex lengths). During a superstep the current
//     inbox arena is read-only for every shard; the twin "next" arena
//     is written exclusively by destination-shard owners — the fused
//     merge pass partitions it by vertex range, so shard i writes only
//     its vertices' counters, offsets, and value slots.
//     deliver() swaps the triples at the barrier between supersteps;
//     the swapped-out arena is recycled wholesale by the next merge
//     (every length re-zeroed, every offset rewritten), never freed.
//
//   - Send buckets (parallel dst/srcM/val arrays, one bucket per
//     (source shard, destination shard) pair) are written only by
//     their source shard during compute, read only by their
//     destination shard during merge, and recycled by truncation at
//     the start of the owner's next compute pass. The two phases are
//     separated by pool barriers, so ownership transfer needs no
//     locks.
//
//   - GAS and Blogel-B round state (frontier bitsets, HashMin
//     candidate arrays, block seed lists, proposal and write logs) is
//     private to one worker or one vertex/block range, reused across
//     rounds by truncation or swap, and merged in shard order on the
//     coordinating goroutine after each round's barrier.
//
// Allocation-budget tests (bsp, gas, graph) difference long runs
// against short ones to assert the steady-state cost per round stays a
// constant handful of objects, and BenchmarkMessagePlane plus
// scripts/bench.sh track allocs/op per date in BENCH_<date>.json.
//
// # Snapshots and the dataset cache
//
// Dataset fixtures round-trip through internal/snapshot: a versioned,
// checksummed, little-endian binary container that persists the
// already-built CSR arrays, so loading is O(sections) arena slicing
// plus linear validation instead of O(E) text parsing — the load-phase
// I/O wall the paper's billion-edge datasets put in front of every
// engine. The layout (format version 2):
//
//	┌────────────────────────────────────────────────────────────┐
//	│ header: magic, version, flags, V, E, self-edges, scale,    │
//	│         generation seed                                    │
//	│ section table: {kind, offset, bytes} per section           │
//	├────────────────────────────────────────────────────────────┤
//	│ name │ out-offsets │ out-edges │ in-offsets │ in-edges │   │
//	│ work-prefix sums          (each section 8-byte aligned)    │
//	├────────────────────────────────────────────────────────────┤
//	│ trailer: CRC-32C of everything above + end magic           │
//	└────────────────────────────────────────────────────────────┘
//
// A loader slurps the file into one arena — syscall.Mmap on linux
// (build-tagged; the mapping is released when the graph is collected),
// os.ReadFile elsewhere — and on little-endian hosts aliases each CSR
// array in place; graph.FromCSR then validates every invariant the
// engines rely on (offset monotonicity, id ranges, sorted neighbor
// runs, transpose degrees, self-edge and work-prefix consistency)
// before adopting the arrays without copying. Arbitrary bytes decode
// to an error, never a panic (FuzzSnapshotDecode).
//
// Versioning: snapshot.Version is bumped on any layout or semantics
// change, and readers reject other versions — a snapshot is a cache
// entry, not an archival format; the writer regenerates it. Unknown
// section kinds are ignored, leaving room for additive extensions.
//
// datasets.Cache layers a content-keyed store on top: entries live
// under a cache directory keyed by (dataset name, scale, seed, format
// version), so any parameter or format change misses cleanly, and a
// hit is bit-identical to regeneration because generation is
// deterministic in the key. The container also persists the generation
// seed (format v2), and the cache rejects an entry whose stored seed
// disagrees with the requested one — the CSR bytes alone cannot reveal
// that a renamed or mis-restored file came from a different seed.
// core.Runner consults the cache when SnapshotDir (or
// $GRAPHBENCH_SNAPSHOT_DIR, which CI points at a restored cache) is
// set; cmd/graphbench exposes it as -snapshot-dir and cmd/datagen
// writes standalone containers via -format csrbin. Engines never learn
// how a graph arrived, and the grid-level acceptance test asserts
// generated, cold-cache, and snapshot-loaded runs produce bit-identical
// results and modeled costs.
//
// # Serve mode
//
// cmd/graphserve (internal/serve) turns the study into a long-lived
// query service instead of a batch harness: dataset fixtures are
// prepared once at startup and answered from memory, and workload
// queries — PageRank top-k, WCC membership, SSSP distance, triangle
// counts, LPA communities — are HTTP GET endpoints returning JSON. A
// query that does not pin ?system= is configured by the adaptive
// planner (see Adaptive planning below); the decision summary travels
// in the X-Graphserve-Plan response header, never the body. Three
// pieces carry the load:
//
//   - Admission control. A scheduler owns MaxInFlight run slots, each
//     slot carrying its own persistent par.Pool, so every admitted run
//     dispatches onto warm parked workers (engines borrow the pool via
//     engine.Options.Pool rather than spawning their own). At most
//     MaxQueue requests wait behind busy slots; beyond that the server
//     sheds load with 429 + Retry-After rather than queueing without
//     bound. Every request runs under a deadline (504 on expiry).
//
//   - Single-flight result caching. Runs are deterministic in
//     (dataset, workload, system, machines, shards), so results are
//     memoized under that key and concurrent identical requests
//     coalesce onto one computation. Cache provenance travels only in
//     the X-Graphserve-Cache header (hit | miss | coalesced): bodies
//     are byte-identical between cold and cached serves, which the
//     load-generator test enforces byte-for-byte. Failed runs (OOM,
//     timeout — deterministic findings) are cached like successes;
//     only errors evict so the next request retries.
//
//   - Metrics. GET /metrics reports request counts by status code,
//     latency quantiles from a log-bucketed histogram
//     (metrics.Histogram), cache hit rate, queue depth, in-flight
//     runs, fault/retry/recovery counters, per-(dataset, workload)
//     breaker states, and — once a query has been planned — the
//     adaptive planner's decision log. GET /healthz is the readiness
//     probe.
//
// # Adaptive planning
//
// internal/plan chooses run configurations instead of taking them.
// Given a dataset profile — cheap, deterministic statistics of the
// prepared snapshot: counts, degree skew, a fixed-seed sampled
// diameter, dilation-adjusted traversal depths, an in-core
// working-set estimate — and a request (workload, machine budget),
// Planner.Decide scores every candidate system on a cost model
// calibrated from the full experiment grid: the exact grid cell when
// the request names a class reference dataset at an observed cluster
// size (modeled costs are bit-deterministic, so cells are ground
// truth), fitted a/m + b + c·m curves with work- and iteration-ratio
// scaling elsewhere, and the paper's failure taxonomy (Blogel-B's MPI
// overflow, HaLoop's shuffle failures, timeouts, OOM) as predictors.
// The candidates collapse to one scalar,
//
//	Score = Time + 0.05·MemTotalGB + 0.05·NetGB + 0.01·machines·Time
//
// (flat 24 h penalty for predicted failures), and the argmin wins,
// ties to the lexicographically first system key. Shard count, shard
// plan (edge-balanced weighted vs uniform range cuts), direction
// mode, and memory-governor tier are then set by documented profile
// heuristics. All four knobs are host execution strategy: outputs and
// modeled costs are bit-identical at any setting (enforced by
// internal/enginetest), so a decision is configuration, not
// computation.
//
// Every decision carries its full trace — the profile, every scored
// candidate with its prediction source, the chosen configuration, and
// after the run the realized cost, which core.Runner feeds back via
// Planner.Observe so not-yet-decided cells prefer realized telemetry
// over the model. Decisions are sticky per request cell and
// bit-deterministic per snapshot. Entry points: core.Runner.TryRunAuto;
// graphbench -plan auto (prints the trace); the planner artifact
// (-artifact planner), a twitter+wrn grid on which the planner's total
// composite cost beats every fixed (engine, machines) configuration;
// and serve mode, where unpinned queries are planned per request cell.
// examples/planner walks one decision end to end.
//
// # Fault tolerance & recovery
//
// internal/chaos injects deterministic machine-kill faults into the
// simulated cluster, and each engine recovers the way its real system
// does. A chaos.Plan{Seed, Kind, KillMachine, AtSuperstep} is a pure
// value: its one-shot Injector, attached via sim.Cluster.SetInjector,
// fires a recoverable sim.Failure (status KILL) the first time the run
// crosses the plan's boundary — a superstep for BSP engines, a job
// index for MapReduce chains, an iteration or stage for GraphX — and
// never again, so the whole failure schedule replays from the seed.
// chaos.Source derives per-attempt plans by hashing (seed, request
// key, attempt) for rate-based serve-path chaos.
//
// Recovery is opt-in via engine.Options.Recover and faithful to each
// architecture (§2 of the paper):
//
//   - BSP engines (Giraph, Blogel, Gelly) checkpoint vertex values,
//     halted flags, and the undelivered inbox every
//     Options.CheckpointEvery supersteps (default 5; superstep 0 is
//     free — it is the loaded input). A kill rolls state back to the
//     last checkpoint and replays the lost supersteps; checkpoint
//     writes, the restart, and the replayed work are charged to the
//     modeled clock.
//   - Hadoop and HaLoop re-run the failed job from its materialized
//     HDFS inputs — the MapReduce fault model needs no checkpoints.
//     HaLoop's shuffle bug stays fatal: it is deterministic, and
//     re-running reproduces it.
//   - GraphX recomputes the lost partitions from RDD lineage, replaying
//     the stages since the last periodic RDD checkpoint (or reading the
//     checkpoint back when it is the nearest ancestor).
//
// Because compute state is restored exactly and replayed compute is
// deterministic, a recovered run's outputs, iteration count, and
// status are bit-identical to the failure-free run; only the modeled
// clock grows, and Result.Costs itemizes the overhead (checkpoint,
// restart, replay seconds, failure count). The fault matrix in
// internal/enginetest enforces this for every engine × workload at
// every boundary.
//
// The serve path layers process-level resilience on top: runs killed
// by an injected fault are retried with exponential backoff + jitter
// (Config.MaxRetries), persistent compute errors open a per-(dataset,
// workload) circuit breaker that sheds with 503 + Retry-After until a
// half-open probe succeeds, a panic-recovery middleware turns handler
// panics into 500s, and SIGTERM/SIGINT drain the listener gracefully.
// Deterministic modeled findings (an OOM result) are cached successes,
// not breaker failures. cmd/graphserve exposes the knobs: -retries,
// -breaker-threshold, -breaker-cooldown, -chaos-rate, -chaos-seed,
// -recover.
//
// # Out-of-core execution & the memory governor
//
// internal/govern bounds the host-side working set of a run — the real
// bytes this process allocates, a separate ledger from the *modeled*
// cluster memory above. One Governor (core.Runner.MemoryBudget,
// $GRAPHBENCH_MEM_BUDGET, -mem-budget on cmd/graphbench and
// cmd/graphserve) is shared by all runs of a Runner; each run charges
// its large allocations — snapshot arenas, BSP inbox arenas, send
// buckets, combiner planes, streaming windows — against a per-run
// Lease and reacts to pressure in tiers:
//
//   - Soft (projected residency past half the headroom): the run sheds
//     optional scratch — traversal workloads force the push-direction
//     plane instead of keeping pull mirrors, and dataset fixtures load
//     demand-paged (snapshot.LoadLazy) instead of prefaulted.
//   - Hard (lean residency does not fit): the BSP runtime switches to
//     out-of-core supersteps. Edge blocks are re-laid into run-local
//     segment files and streamed through fixed windows (so derived
//     graphs — e.g. triangle counting's forward orientation — stream
//     too); send buckets flush to raw spill chunks past a threshold;
//     inbox arenas live in segment files, double-buffered like their
//     in-core twins. Replay order is preserved — spilled chunks in
//     flush order, then the in-memory remainder, per source shard — so
//     outputs, IterStats, and modeled costs stay bit-identical to
//     in-core execution at every shard count. Checkpoints copy the live
//     inbox segments; rollback restores them byte-for-byte, so chaos
//     kills mid-spill recover exactly (enforced by the spill fault
//     matrix in internal/enginetest).
//   - Reject (even the out-of-core floor does not fit): the run fails
//     with an error unwrapping to govern.ErrBudget and modeled status
//     OOM. The serve path maps it to 503 + Retry-After, never caches
//     it, and excludes it from breaker accounting — the request was
//     fine, the moment was not.
//
// Spill files are checksummed paged segments (govern.PageBytes pages,
// CRC-32C per page, a trailer with payload length and magic): a torn
// or bit-flipped segment refuses to open or read rather than feeding
// corrupt messages back into a superstep. Send-bucket chunks use raw
// triplet files ([dst][srcM][val] columns) with their CRCs held in
// memory, since they never outlive one superstep. All spill lives
// under a per-run directory that Lease.Close removes unconditionally —
// a crashed run cannot leak budget or temp files.
//
// Result.Govern reports the run's ledger slice (tracked peak, spill
// volume, pressure events); /metrics adds the governor's process-wide
// gauges. The acceptance test (internal/enginetest) pins bit-identity
// between spilled and in-core runs; BenchmarkSpill tracks the
// throughput cost of spilling against the same run unbounded.
package graphbench
