// Package graphbench is a from-scratch Go reproduction of "Experimental
// Analysis of Distributed Graph Systems" (Ammar & Özsu, VLDB 2018): the
// eight systems under study reimplemented as engines over a simulated
// shared-nothing cluster, the four workloads, synthetic analogues of
// the four datasets, and a harness that regenerates every table and
// figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the architecture and
// substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate each artifact:
//
//	go test -bench=Table9 -benchtime=1x .
//	go test -bench=Figure6 -benchtime=1x .
//
// # Concurrency model
//
// Execution is parallel at two layers, both built on internal/par and
// both deterministic:
//
//   - Runtime sharding. The hot per-vertex loops — bsp.Run's
//     compute/send phase, the GAS gather/apply sweeps, and Blogel's
//     block-mode rounds — split the vertex (or block) range into
//     contiguous shards, one per worker. Each shard accumulates
//     privately (message buffers, counters, max-delta), and shard
//     results merge in shard order: messages replay per destination in
//     the exact sequential order, counters are integer-valued sums,
//     aggregators are maxima. Outputs and modeled costs are therefore
//     bit-identical for every shard count (engine.Options.Shards,
//     0 = GOMAXPROCS, 1 = sequential), which
//     internal/enginetest's determinism tests enforce. Loops whose
//     sequential semantics are Gauss–Seidel (GraphLab's async engine,
//     the frontier propagation sweep) intentionally stay sequential:
//     sharding them would change the modeled execution.
//
//   - The experiment matrix. Every run owns a private sim.Cluster and
//     engine instance, so core.RunGrid and the harness artifact
//     generators execute independent runs concurrently on a pool
//     sized by core.Runner.Workers — the -parallel flag of
//     cmd/graphbench (0 = GOMAXPROCS). BenchmarkParallelSpeedup in
//     bench_test.go tracks the wall-clock win over the sequential
//     path.
package graphbench
