// Package graphbench is a from-scratch Go reproduction of "Experimental
// Analysis of Distributed Graph Systems" (Ammar & Özsu, VLDB 2018): the
// eight systems under study reimplemented as engines over a simulated
// shared-nothing cluster, the four workloads, synthetic analogues of
// the four datasets, and a harness that regenerates every table and
// figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the architecture and
// substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate each artifact:
//
//	go test -bench=Table9 -benchtime=1x .
//	go test -bench=Figure6 -benchtime=1x .
package graphbench
