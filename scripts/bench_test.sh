#!/usr/bin/env bash
# bench_test.sh — asserts that `bench.sh --latest` selects baselines by
# version-aware (date, numeric suffix) ordering, covering the cases
# plain lexicographic sorting gets wrong: three-digit suffixes (_100
# sorts lexicographically before _99) and dates mixed with suffixed
# same-day snapshots. Runs the real script against a sandbox copy of
# the repo layout, so the selection CI feeds --compare is the code
# under test.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/scripts"
cp scripts/bench.sh "$tmp/scripts/bench.sh"

fail=0
check() {
    local desc="$1" want="$2"
    shift 2
    rm -f "$tmp"/BENCH_*.json
    local f
    for f in "$@"; do
        : > "$tmp/$f"
    done
    local got
    got="$("$tmp/scripts/bench.sh" --latest)"
    if [ "$got" != "$want" ]; then
        echo "FAIL: $desc: got '$got', want '$want'" >&2
        fail=1
    else
        echo "ok: $desc -> $got"
    fi
}

check "single snapshot" \
    "BENCH_20260101.json" \
    BENCH_20260101.json

check "same-day suffix beats base" \
    "BENCH_20260101_02.json" \
    BENCH_20260101.json BENCH_20260101_02.json

check "two-digit suffix beats one-digit" \
    "BENCH_20260101_10.json" \
    BENCH_20260101.json BENCH_20260101_09.json BENCH_20260101_10.json

check "three-digit suffix beats _99 (lexicographic sorts it first)" \
    "BENCH_20260101_100.json" \
    BENCH_20260101_99.json BENCH_20260101_100.json

check "later date beats earlier date's high suffix" \
    "BENCH_20260102.json" \
    BENCH_20260101_55.json BENCH_20260102.json

check "non-snapshot names are ignored" \
    "BENCH_20260101.json" \
    BENCH_20260101.json BENCH_notes.json BENCH_20260101_xx.json

got="$(cd "$tmp" && rm -f BENCH_*.json; "$tmp/scripts/bench.sh" --latest)"
if [ -n "$got" ]; then
    echo "FAIL: no snapshots should print nothing, got '$got'" >&2
    fail=1
else
    echo "ok: no snapshots -> empty"
fi

if [ "$fail" -ne 0 ]; then
    echo "bench_test.sh: FAILED" >&2
    exit 1
fi
echo "bench_test.sh: all latest-baseline selection cases passed"
