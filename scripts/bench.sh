#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmark suite, record the results
# as BENCH_<date>.json in the repo root, and optionally gate against a
# previous trajectory file, so every PR from the zero-allocation message
# plane on leaves a comparable perf snapshot.
#
# Usage:
#   scripts/bench.sh                           # default suite
#   scripts/bench.sh --latest                  # print the latest snapshot file
#   scripts/bench.sh --compare BENCH_<d>.json  # also diff vs a previous snapshot,
#                                              # fail on >15% regression
#   scripts/bench.sh --compare FILE --metric allocs   # gate allocs/op only
#                                              # (machine-independent; what CI uses)
#   scripts/bench.sh --compare FILE --threshold 20    # custom regression %
#   BENCH='MessagePlane' scripts/bench.sh
#   BENCHTIME=50x scripts/bench.sh
#
# If BENCH_<date>.json already exists (a same-day snapshot), the new
# file is written as BENCH_<date>_02.json, _03.json, ... — snapshots
# are never overwritten, so the trajectory is append-only. The latest
# snapshot is selected by `--latest`, which sorts by (date, numeric
# suffix) — plain lexicographic `ls | sort | tail -1` breaks once a
# same-day suffix reaches three digits (_100 sorts before _99), so
# never use it for baseline selection.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-MessagePlane|Traversal|Table6|Snapshot|TextDecode|Spill|Planner}"
BENCHTIME="${BENCHTIME:-20x}"
COMPARE=""
THRESHOLD=15
METRIC=all

# latest_snapshot prints the newest BENCH_*.json by version-aware
# ordering: numeric date first, then numeric same-day suffix (an
# unsuffixed snapshot counts as suffix 1). Files not matching the
# snapshot naming scheme are ignored. Prints nothing when no snapshot
# exists.
latest_snapshot() {
    local f base date suf best="" best_date=0 best_suf=0
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        base="${f#BENCH_}"
        base="${base%.json}"
        date="${base%%_*}"
        case "$date" in ''|*[!0-9]*) continue ;; esac
        if [ "$base" = "$date" ]; then
            suf=1
        else
            suf="${base#*_}"
            case "$suf" in ''|*[!0-9]*) continue ;; esac
            suf=$((10#$suf))
        fi
        if [ "$date" -gt "$best_date" ] ||
           { [ "$date" -eq "$best_date" ] && [ "$suf" -gt "$best_suf" ]; }; then
            best="$f" best_date="$date" best_suf="$suf"
        fi
    done
    if [ -n "$best" ]; then
        printf '%s\n' "$best"
    fi
}

while [ $# -gt 0 ]; do
    case "$1" in
        --latest)
            latest_snapshot
            exit 0 ;;
        --compare)
            # An empty value (e.g. a glob that matched nothing in CI)
            # must fail loudly, not silently skip the gate.
            if [ -z "${2:-}" ]; then
                echo "bench.sh: --compare requires a baseline file" >&2
                exit 2
            fi
            COMPARE="$2"; shift 2 ;;
        --threshold) THRESHOLD="$2"; shift 2 ;;
        --metric)
            # Anything but the two known values must fail loudly: a
            # typo like 'alloc' would otherwise silently re-enable the
            # ns/op gate, which is nondeterministic on shared runners.
            case "${2:-}" in
                all|allocs) METRIC="$2" ;;
                *) echo "bench.sh: --metric must be 'all' or 'allocs', got '${2:-}'" >&2; exit 2 ;;
            esac
            shift 2 ;;
        *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
    esac
done
if [ -n "$COMPARE" ] && [ ! -f "$COMPARE" ]; then
    echo "bench.sh: baseline $COMPARE not found" >&2
    exit 2
fi

out="BENCH_$(date +%Y%m%d).json"
n=1
while [ -e "$out" ]; do
    n=$((n + 1))
    out="$(printf 'BENCH_%s_%02d.json' "$(date +%Y%m%d)" "$n")"
done

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE -bench="$BENCH" -benchmem -benchtime="$BENCHTIME" . | tee "$tmp"

awk -v date="$(date +%Y-%m-%d)" -v pattern="$BENCH" -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"bench\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"results\": [\n", date, pattern, benchtime
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"

if [ -z "$COMPARE" ]; then
    exit 0
fi

echo "comparing against $COMPARE (threshold ${THRESHOLD}%, metric $METRIC)"
awk -v thr="$THRESHOLD" -v metric="$METRIC" '
function num(key,    s) {
    if (match($0, "\"" key "\": [0-9]+")) {
        s = substr($0, RSTART, RLENGTH)
        sub(/.*: /, "", s)
        return s + 0
    }
    return -1
}
function bname(    s) {
    if (match($0, /"name": "[^"]+"/)) {
        s = substr($0, RSTART, RLENGTH)
        sub(/"name": "/, "", s)
        sub(/"$/, "", s)
        return s
    }
    return ""
}
# First file: the baseline snapshot.
FNR == NR {
    n = bname()
    if (n != "") { base_ns[n] = num("ns_per_op"); base_allocs[n] = num("allocs_per_op") }
    next
}
# gate compares one metric of one benchmark: fails loudly when the
# fresh value is missing, regressed beyond the threshold, or grew from
# a zero baseline (any growth from zero is a regression — zero allocs
# is the message plane target state).
function gate(name, label, base, fresh,    pct) {
    if (fresh < 0) {
        printf "  REGRESSION: %s %s missing from fresh snapshot (baseline %d)\n", name, label, base
        return 1
    }
    if (base == 0) {
        printf "  %-55s %s %12d -> %12d\n", name, label, base, fresh
        if (fresh > 0) {
            printf "  REGRESSION: %s %s grew from a zero baseline\n", name, label
            return 1
        }
        return 0
    }
    pct = (fresh - base) * 100.0 / base
    printf "  %-55s %s %12d -> %12d  (%+.1f%%)\n", name, label, base, fresh, pct
    if (pct > thr) {
        printf "  REGRESSION: %s %s worsened %.1f%% (> %d%%)\n", name, label, pct, thr
        return 1
    }
    return 0
}
# Second file: the fresh snapshot.
{
    n = bname()
    if (n == "" || !(n in base_ns)) next
    compared++
    ns = num("ns_per_op"); allocs = num("allocs_per_op")
    if (metric != "allocs" && base_ns[n] >= 0)
        bad += gate(n, "ns/op", base_ns[n], ns)
    if (base_allocs[n] >= 0)
        bad += gate(n, "allocs/op", base_allocs[n], allocs)
}
END {
    if (compared == 0) { print "  no common benchmarks to compare"; exit 1 }
    if (bad > 0) { printf "  %d regression(s) beyond %d%%\n", bad, thr; exit 1 }
    printf "  %d benchmark(s) within %d%% of baseline\n", compared, thr
}
' "$COMPARE" "$out"
