#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmark suite and record the
# results as BENCH_<date>.json in the repo root, so every PR from the
# zero-allocation message plane on leaves a comparable perf snapshot.
#
# Usage:
#   scripts/bench.sh                 # default suite (MessagePlane + Table6)
#   BENCH='MessagePlane' scripts/bench.sh
#   BENCHTIME=50x scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-MessagePlane|Table6}"
BENCHTIME="${BENCHTIME:-20x}"
out="BENCH_$(date +%Y%m%d).json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE -bench="$BENCH" -benchmem -benchtime="$BENCHTIME" . | tee "$tmp"

awk -v date="$(date +%Y-%m-%d)" -v pattern="$BENCH" -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"bench\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"results\": [\n", date, pattern, benchtime
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
