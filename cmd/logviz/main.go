// Command logviz is the reproduction of the paper's log visualization
// tool: it parses run logs (JSON lines produced by graphbench -log),
// filters them, and renders comparison charts in the terminal.
//
// Usage:
//
//	graphbench -grid -log runs.jsonl
//	logviz -log runs.jsonl -dataset twitter -workload pagerank
//	logviz -log runs.jsonl -system BV -chart phases
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"graphbench/internal/metrics"
)

func main() {
	var (
		logPath  = flag.String("log", "", "run log file (JSON lines); default stdin")
		system   = flag.String("system", "", "filter: system label")
		dataset  = flag.String("dataset", "", "filter: dataset")
		workload = flag.String("workload", "", "filter: workload")
		machines = flag.Int("machines", 0, "filter: cluster size")
		chart    = flag.String("chart", "total", "chart: total, phases, memory, network")
	)
	flag.Parse()

	in := os.Stdin
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "logviz:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	recs, err := metrics.ReadLog(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logviz:", err)
		os.Exit(1)
	}
	recs = metrics.Filter(recs, *system, *dataset, *workload, *machines)
	if len(recs) == 0 {
		fmt.Println("no matching records")
		return
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Dataset != recs[j].Dataset {
			return recs[i].Dataset < recs[j].Dataset
		}
		if recs[i].Workload != recs[j].Workload {
			return recs[i].Workload < recs[j].Workload
		}
		if recs[i].Machines != recs[j].Machines {
			return recs[i].Machines < recs[j].Machines
		}
		return recs[i].System < recs[j].System
	})

	switch *chart {
	case "total":
		render(recs, func(r metrics.Record) (float64, string) {
			return r.Total, metrics.FmtSeconds(r.Total)
		})
	case "phases":
		render(recs, func(r metrics.Record) (float64, string) {
			return r.Total, fmt.Sprintf("L%s E%s S%s O%s",
				metrics.FmtSeconds(r.Load), metrics.FmtSeconds(r.Exec),
				metrics.FmtSeconds(r.Save), metrics.FmtSeconds(r.Overhead))
		})
	case "memory":
		render(recs, func(r metrics.Record) (float64, string) {
			return float64(r.MemTotal), metrics.FmtBytes(r.MemTotal)
		})
	case "network":
		render(recs, func(r metrics.Record) (float64, string) {
			return float64(r.NetBytes), metrics.FmtBytes(r.NetBytes)
		})
	default:
		fmt.Fprintf(os.Stderr, "logviz: unknown chart %q\n", *chart)
		os.Exit(2)
	}
}

func render(recs []metrics.Record, metric func(metrics.Record) (float64, string)) {
	max := 0.0
	for _, r := range recs {
		if r.Status != "OK" {
			continue
		}
		if v, _ := metric(r); v > max {
			max = v
		}
	}
	group := ""
	for _, r := range recs {
		g := fmt.Sprintf("%s / %s / %d machines", r.Dataset, r.Workload, r.Machines)
		if g != group {
			group = g
			fmt.Printf("\n%s\n", group)
		}
		if r.Status != "OK" {
			fmt.Printf("  %-10s %s\n", r.System, r.Status)
			continue
		}
		v, label := metric(r)
		fmt.Printf("  %-10s %-40s %s\n", r.System, metrics.Bar(v, max, 40), label)
	}
}
