// Command datagen emits the synthetic dataset analogues in any of the
// paper's three text formats (adj, adj-long, edge) or as a binary CSR
// snapshot (csrbin, internal/snapshot) — the container cmd/graphbench
// reloads zero-copy via -snapshot-dir instead of regenerating.
//
// Usage:
//
//	datagen -dataset twitter -scale 100000 -format adj -out twitter.adj
//	datagen -dataset wrn -format edge           # to stdout
//	datagen -dataset twitter -format csrbin -out twitter.csrbin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphbench/internal/datasets"
	"graphbench/internal/graph"
	"graphbench/internal/snapshot"
)

func main() {
	var (
		dataset = flag.String("dataset", "twitter", "twitter, wrn, uk200705, clueweb")
		scale   = flag.Float64("scale", datasets.DefaultScale, "reduction factor")
		seed    = flag.Int64("seed", 1, "generation seed")
		format  = flag.String("format", "adj", "adj, adj-long, edge, or csrbin (binary CSR snapshot)")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print dataset statistics instead of data")
		preset  = flag.String("preset", "",
			"named fixture preset overriding -scale: scale-up (datasets.ScaleUpScale,\n"+
				"the bounded-memory CI fixture)")
	)
	flag.Parse()

	switch *preset {
	case "":
	case "scale-up":
		*scale = datasets.ScaleUpScale
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	var f graph.Format
	csrbin := false
	switch *format {
	case "adj":
		f = graph.FormatAdj
	case "adj-long":
		f = graph.FormatAdjLong
	case "edge":
		f = graph.FormatEdge
	case "csrbin":
		csrbin = true
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q\n", *format)
		os.Exit(2)
	}

	g := datasets.Generate(datasets.Name(*dataset), datasets.Options{Scale: *scale, Seed: *seed})
	if *stats {
		st := g.Stats()
		fmt.Printf("%s at scale 1/%g: %d vertices, %d edges, avg degree %.2f, max degree %d, self-edges %d\n",
			*dataset, *scale, st.Vertices, st.Edges, st.AvgOutDegree, st.MaxOutDegree, st.SelfEdges)
		fmt.Printf("estimated diameter: %d\n", graph.EstimateDiameter(g, 2, *seed))
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	var err error
	if csrbin {
		err = snapshot.Write(w, g, *seed)
	} else {
		err = graph.Encode(g, f, w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
