// Command graphbench regenerates the paper's tables and figures, runs
// individual experiments, or executes the full grid and writes a run
// log for cmd/logviz.
//
// Usage:
//
//	graphbench -artifact table9                # one artifact
//	graphbench -artifact all                   # everything
//	graphbench -run giraph -dataset twitter -workload pagerank -machines 32
//	graphbench -grid -log runs.jsonl           # full grid to a log file
//	graphbench -grid -parallel 1               # sequential (debug/baseline)
//	graphbench -grid -snapshot-dir .cache      # reuse binary CSR fixtures
//
// With -snapshot-dir (or $GRAPHBENCH_SNAPSHOT_DIR) the dataset
// fixtures are persisted as binary CSR snapshots (internal/snapshot)
// keyed by (name, scale, seed, format version): the first run
// generates and saves, later runs load zero-copy instead of
// regenerating. Results and modeled costs are bit-identical either
// way.
//
// Concurrency: every run owns a private simulated cluster, so the
// experiment matrix executes runs concurrently on a pool sized by
// -parallel (default GOMAXPROCS; 1 forces sequential). Inside each
// run the engines shard their vertex loops over -shards worker
// goroutines (default: GOMAXPROCS for a single -run, GOMAXPROCS
// divided across the concurrent runs inside a matrix, so the two
// layers compose to ~GOMAXPROCS goroutines). Both knobs change wall
// time only: shard accumulators merge in shard order, so outputs and
// modeled metrics are bit-identical at any setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphbench/internal/core"
	"graphbench/internal/datasets"
	"graphbench/internal/engine"
	"graphbench/internal/govern"
	"graphbench/internal/harness"
	"graphbench/internal/metrics"
	"graphbench/internal/sim"
)

func main() {
	var (
		artifact = flag.String("artifact", "", "table1..table10, fig1..fig13, or 'all'")
		scale    = flag.Float64("scale", datasets.DefaultScale, "dataset reduction factor")
		seed     = flag.Int64("seed", 1, "generation seed")
		runSys   = flag.String("run", "", "system key to run (see -list)")
		planMode = flag.String("plan", "",
			"'auto' lets the adaptive planner pick the system and run\n"+
				"configuration for -run cells (ignore -run's system key) and\n"+
				"prints the decision trace")
		dataset  = flag.String("dataset", "twitter", "dataset: twitter, wrn, uk200705, clueweb")
		workload = flag.String("workload", "pagerank", "workload: pagerank, wcc, sssp, khop, triangle, lpa")
		machines = flag.Int("machines", 16, "cluster size")
		grid     = flag.Bool("grid", false, "run the full main grid")
		logPath  = flag.String("log", "", "write run records (JSON lines) to this file")
		list     = flag.Bool("list", false, "list system keys")
		parallel = flag.Int("parallel", 0, "concurrent experiment runs (0 = GOMAXPROCS, 1 = sequential)")
		shards   = flag.Int("shards", 0, "vertex shards per engine run (0 = GOMAXPROCS, 1 = sequential)")
		snapDir  = flag.String("snapshot-dir", "",
			"cache dataset fixtures as binary CSR snapshots in this directory\n"+
				"(keyed by name/scale/seed/format version; later runs load instead of\n"+
				"regenerating; default $GRAPHBENCH_SNAPSHOT_DIR)")
		memBudget = flag.String("mem-budget", "",
			"host memory budget per process, e.g. 512m or 2g (0/empty = unbounded);\n"+
				"runs shed scratch and spill to disk under pressure instead of growing\n"+
				"past it; default $GRAPHBENCH_MEM_BUDGET")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.SortedKeys(), "\n"))
		return
	}

	r := core.NewRunner(*scale, *seed)
	r.Workers = *parallel
	r.Shards = *shards
	if *snapDir != "" {
		r.SnapshotDir = *snapDir
	}
	if *memBudget != "" {
		b, err := govern.ParseBytes(*memBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(2)
		}
		r.MemoryBudget = b
	}
	defer r.Close()
	switch {
	case *artifact != "":
		printArtifacts(r, *artifact, *scale, *seed)
	case *planMode != "":
		if *planMode != "auto" {
			fmt.Fprintf(os.Stderr, "graphbench: -plan must be 'auto', got %q\n", *planMode)
			os.Exit(2)
		}
		runAuto(r, *dataset, *workload, *machines, *logPath)
	case *runSys != "":
		runOne(r, *runSys, *dataset, *workload, *machines, *logPath)
	case *grid:
		runGrid(r, *logPath)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printArtifacts(r *core.Runner, which string, scale float64, seed int64) {
	artifacts := map[string]func() string{
		"table1":  harness.Table1Systems,
		"table2":  harness.Table2Dimensions,
		"table3":  func() string { return harness.Table3Datasets(scale, seed) },
		"table4":  func() string { return harness.Table4Replication(scale, seed) },
		"table5":  func() string { return harness.Table5Partitions(r) },
		"table6":  func() string { return harness.Table6IterTime(r) },
		"table7":  func() string { return harness.Table7ClueWeb(r) },
		"table8":  func() string { return harness.Table8GiraphMemory(r) },
		"table9":  func() string { return harness.Table9COST(r) },
		"table10": func() string { return harness.Table10WorkloadScaling(r) },
		"fig1":    func() string { return harness.Figure1Cores(r) },
		"fig2":    func() string { return harness.Figure2PartitionSweep(r) },
		"fig3":    func() string { return harness.Figure3BlogelNoHDFS(r) },
		"fig4":    func() string { return harness.Figure4ApproxPR(r) },
		"fig5":    func() string { return harness.Figure5Twitter(r) },
		"fig6":    func() string { return harness.Figure6PageRank(r) },
		"fig7":    func() string { return harness.Figure7KHop(r) },
		"fig8":    func() string { return harness.Figure8SSSP(r) },
		"fig9":    func() string { return harness.Figure9WCC(r) },
		"fig10":   func() string { return harness.Figure10AsyncMemory(r) },
		"fig11":   func() string { return harness.Figure11Imbalance(seed) },
		"fig12":   func() string { return harness.Figure12Vertica(r) },
		"fig13":   func() string { return harness.Figure13VerticaResources(r) },
		"planner": func() string { return harness.PlannerGrid(r) },
	}
	if which == "all" {
		order := []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
			"table8", "table9", "table10", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "planner"}
		for _, k := range order {
			fmt.Println(artifacts[k]())
		}
		return
	}
	fn, ok := artifacts[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "graphbench: unknown artifact %q\n", which)
		os.Exit(2)
	}
	fmt.Println(fn())
}

func parseKind(s string) (engine.Kind, error) {
	for _, k := range engine.ExtendedKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q", s)
}

func runOne(r *core.Runner, sysKey, dataset, workload string, machines int, logPath string) {
	var sys core.System
	if sysKey == "vertica" {
		sys = core.Vertica()
	} else {
		var err error
		sys, err = core.SystemByKey(sysKey)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbench:", err)
			os.Exit(2)
		}
	}
	kind, err := parseKind(workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(2)
	}
	res := r.Run(sys, datasets.Name(dataset), kind, machines)
	fmt.Printf("%s %s on %s, %d machines: %s\n", sys.Label, workload, dataset, machines, res.Status)
	if res.Status == sim.OK {
		fmt.Printf("  load %s  execute %s  save %s  overhead %s  total %s\n",
			metrics.FmtSeconds(res.Load), metrics.FmtSeconds(res.Exec),
			metrics.FmtSeconds(res.Save), metrics.FmtSeconds(res.Overhead),
			metrics.FmtSeconds(res.TotalTime()))
		fmt.Printf("  iterations %d  network %s  memory total %s (max/machine %s)\n",
			res.Iterations, metrics.FmtBytes(res.NetBytes),
			metrics.FmtBytes(res.MemTotal), metrics.FmtBytes(res.MemMax))
	} else if res.Err != nil {
		fmt.Printf("  %v\n", res.Err)
	}
	writeLog(logPath, []*engine.Result{res})
}

// runAuto is the -plan auto entry point: ask the adaptive planner for
// the cell's configuration, print the full decision trace, execute the
// decision, and print the realized outcome next to the prediction.
func runAuto(r *core.Runner, dataset, workload string, machines int, logPath string) {
	kind, err := parseKind(workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(2)
	}
	res, dec, err := r.TryRunAuto(nil, core.FaultOpts{}, datasets.Name(dataset), kind, machines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(2)
	}
	fmt.Print(dec.Trace())
	fmt.Printf("%s %s on %s, %d machines: %s\n", res.System, workload, dataset, machines, res.Status)
	if res.Status == sim.OK {
		fmt.Printf("  load %s  execute %s  save %s  overhead %s  total %s\n",
			metrics.FmtSeconds(res.Load), metrics.FmtSeconds(res.Exec),
			metrics.FmtSeconds(res.Save), metrics.FmtSeconds(res.Overhead),
			metrics.FmtSeconds(res.TotalTime()))
	} else if res.Err != nil {
		fmt.Printf("  %v\n", res.Err)
	}
	writeLog(logPath, []*engine.Result{res})
}

func runGrid(r *core.Runner, logPath string) {
	var cells []core.Cell
	for _, name := range []datasets.Name{datasets.Twitter, datasets.UK, datasets.WRN} {
		for _, kind := range engine.ExtendedKinds() {
			systems := core.MainGridSystems()
			if kind == engine.PageRank {
				systems = core.Systems()
			}
			for _, m := range core.ClusterSizes {
				for _, s := range systems {
					cells = append(cells, core.Cell{System: s, Dataset: name, Kind: kind, Machines: m})
				}
			}
		}
	}
	results := r.RunGrid(cells)
	okCount := 0
	for _, res := range results {
		if res.Status == sim.OK {
			okCount++
		}
	}
	fmt.Printf("grid complete: %d runs, %d finished, %d failed\n", len(results), okCount, len(results)-okCount)
	writeLog(logPath, results)
}

func writeLog(path string, results []*engine.Result) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	var recs []metrics.Record
	for _, res := range results {
		recs = append(recs, metrics.FromResult(res))
	}
	if err := metrics.WriteLog(f, recs); err != nil {
		fmt.Fprintln(os.Stderr, "graphbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d run records to %s\n", len(recs), path)
}
