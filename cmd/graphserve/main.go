// Command graphserve runs the study as a long-lived query service:
// dataset fixtures load once at startup, engine worker pools stay warm
// across requests, and workload queries are answered over HTTP as JSON
// (see internal/serve for the architecture).
//
// Start it, then query:
//
//	graphserve -addr :8080 -scale 100000 -parallel 2 &
//
//	# PageRank top-5 on twitter via Giraph on 16 machines
//	curl 'localhost:8080/v1/pagerank?dataset=twitter&system=giraph&machines=16&k=5'
//
//	# Which component is vertex 7 in, and how big is it?
//	curl 'localhost:8080/v1/wcc?dataset=wrn&vertex=7'
//
//	# Modeled hop distance from the benchmark source to vertex 42
//	curl 'localhost:8080/v1/sssp?dataset=uk200705&vertex=42&system=blogel-b'
//
//	# Global triangle count; add &vertex= for a per-vertex count
//	curl 'localhost:8080/v1/triangle?dataset=twitter&system=graphx'
//
//	# LPA community of vertex 3
//	curl 'localhost:8080/v1/lpa?dataset=twitter&vertex=3'
//
//	# Server health and metrics (latency quantiles, cache hit rate)
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//
// Queries that do not pin system= are configured by the adaptive
// planner (internal/plan): it profiles the dataset and picks the
// engine, shard count, shard plan, direction mode, and memory tier
// with the lowest predicted composite cost, and the decision summary
// travels in the X-Graphserve-Plan response header. Responses carry
// X-Graphserve-Cache: miss | hit | coalesced; bodies are byte-identical
// either way. When all -parallel slots are busy and the wait queue is
// full, the server answers 429 with Retry-After. See docs/operations.md
// for the full operator guide.
//
// Resilience: runs killed by a recoverable injected fault are retried
// (-retries) with backoff; persistent per-(dataset, workload) compute
// errors trip a circuit breaker (-breaker-threshold, -breaker-cooldown)
// that answers 503 + Retry-After until a probe succeeds; -chaos-rate
// injects seeded machine-kill faults for testing the whole stack; and
// -recover lets the engines absorb faults via checkpoint/retry/lineage
// recovery instead. SIGINT/SIGTERM drain gracefully: the listener stops,
// in-flight requests finish, worker pools shut down, and the process
// exits 0 after logging "drained cleanly". A second signal kills it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphbench/internal/chaos"
	"graphbench/internal/datasets"
	"graphbench/internal/govern"
	"graphbench/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scale    = flag.Float64("scale", datasets.DefaultScale, "dataset reduction factor")
		seed     = flag.Int64("seed", 1, "dataset generation seed")
		parallel = flag.Int("parallel", 2, "max concurrent runs (admission slots)")
		queue    = flag.Int("queue", 8, "max requests queued behind busy slots before 429")
		shards   = flag.Int("shards", 0, "engine shards per slot pool (0 = GOMAXPROCS/parallel)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		snapdir  = flag.String("snapshot-dir", os.Getenv("GRAPHBENCH_SNAPSHOT_DIR"),
			"binary CSR snapshot cache for dataset fixtures")
		retries = flag.Int("retries", 0,
			"retries for runs killed by a recoverable fault (0 = default 2, negative = none)")
		breakerThreshold = flag.Int("breaker-threshold", 0,
			"consecutive compute errors that open a (dataset, workload) breaker (0 = default 3)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0,
			"how long an open breaker rejects before half-opening (0 = default 2s)")
		chaosRate = flag.Float64("chaos-rate", 0,
			"fraction of run attempts that suffer an injected machine kill (0 = off)")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed of the chaos fault schedule")
		recov     = flag.Bool("recover", false,
			"absorb injected faults inside the engines (checkpoint/retry/lineage recovery)")
		memBudget = flag.String("mem-budget", os.Getenv("GRAPHBENCH_MEM_BUDGET"),
			"host memory budget for served runs, e.g. 512m or 2g (empty = unbounded);\n"+
				"runs spill to disk under pressure, and requests whose floor cannot fit\n"+
				"answer 503 + Retry-After; default $GRAPHBENCH_MEM_BUDGET")
	)
	flag.Parse()

	budget, err := govern.ParseBytes(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphserve:", err)
		os.Exit(2)
	}

	cfg := serve.Config{
		Scale:            *scale,
		Seed:             *seed,
		Shards:           *shards,
		SnapshotDir:      *snapdir,
		MaxInFlight:      *parallel,
		MaxQueue:         *queue,
		RequestTimeout:   *timeout,
		MaxRetries:       *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Recover:          *recov,
		MemBudget:        budget,
	}
	if *chaosRate > 0 {
		cfg.Chaos = chaos.NewSource(*chaosSeed, *chaosRate)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphserve:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "graphserve: listening on %s (scale 1/%g, %d slots)\n",
		*addr, *scale, *parallel)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "graphserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Restore default signal disposition so a second SIGINT/SIGTERM
	// force-kills a stuck drain instead of being swallowed.
	stop()

	// Graceful drain: stop accepting, let in-flight requests finish,
	// then release the worker pools.
	fmt.Fprintln(os.Stderr, "graphserve: draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "graphserve: drain incomplete:", err)
		os.Exit(1)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "graphserve: drained cleanly")
}
