// Command graphserve runs the study as a long-lived query service:
// dataset fixtures load once at startup, engine worker pools stay warm
// across requests, and workload queries are answered over HTTP as JSON
// (see internal/serve for the architecture).
//
// Start it, then query:
//
//	graphserve -addr :8080 -scale 100000 -parallel 2 &
//
//	# PageRank top-5 on twitter via Giraph on 16 machines
//	curl 'localhost:8080/v1/pagerank?dataset=twitter&system=giraph&machines=16&k=5'
//
//	# Which component is vertex 7 in, and how big is it?
//	curl 'localhost:8080/v1/wcc?dataset=wrn&vertex=7'
//
//	# Modeled hop distance from the benchmark source to vertex 42
//	curl 'localhost:8080/v1/sssp?dataset=uk200705&vertex=42&system=blogel-b'
//
//	# Global triangle count; add &vertex= for a per-vertex count
//	curl 'localhost:8080/v1/triangle?dataset=twitter&system=graphx'
//
//	# LPA community of vertex 3
//	curl 'localhost:8080/v1/lpa?dataset=twitter&vertex=3'
//
//	# Server health and metrics (latency quantiles, cache hit rate)
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//
// Responses carry X-Graphserve-Cache: miss | hit | coalesced; bodies
// are byte-identical either way. When all -parallel slots are busy and
// the wait queue is full, the server answers 429 with Retry-After.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphbench/internal/datasets"
	"graphbench/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scale    = flag.Float64("scale", datasets.DefaultScale, "dataset reduction factor")
		seed     = flag.Int64("seed", 1, "dataset generation seed")
		parallel = flag.Int("parallel", 2, "max concurrent runs (admission slots)")
		queue    = flag.Int("queue", 8, "max requests queued behind busy slots before 429")
		shards   = flag.Int("shards", 0, "engine shards per slot pool (0 = GOMAXPROCS/parallel)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		snapdir  = flag.String("snapshot-dir", os.Getenv("GRAPHBENCH_SNAPSHOT_DIR"),
			"binary CSR snapshot cache for dataset fixtures")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Scale:          *scale,
		Seed:           *seed,
		Shards:         *shards,
		SnapshotDir:    *snapdir,
		MaxInFlight:    *parallel,
		MaxQueue:       *queue,
		RequestTimeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphserve:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "graphserve: listening on %s (scale 1/%g, %d slots)\n",
		*addr, *scale, *parallel)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "graphserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish,
	// then release the worker pools.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutdownCtx)
	srv.Close()
}
